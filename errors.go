package asterixdb

import (
	"errors"
	"fmt"

	"asterixdb/internal/storage"
)

// Sentinel errors forming the API's error contract. They are aliases of the
// storage layer's sentinels, so an error that bubbles up from storage and an
// error minted by the catalog both satisfy the same errors.Is checks:
//
//	if errors.Is(err, asterixdb.ErrNotFound) { ... }
var (
	// ErrNotFound reports that a dataverse, type, dataset, index or function
	// named by a statement does not exist.
	ErrNotFound = storage.ErrNotFound
	// ErrExists reports that a DDL statement names an object that already
	// exists (without "if not exists").
	ErrExists = storage.ErrExists
)

// Error codes carried by Error.Code. The HTTP service layer maps them onto
// status codes; embedders can switch on them without parsing messages.
const (
	// CodeNotFound: a named object does not exist (HTTP 404).
	CodeNotFound = "not-found"
	// CodeExists: a named object already exists (HTTP 409).
	CodeExists = "exists"
	// CodeSyntax: the statement text failed to parse (HTTP 400).
	CodeSyntax = "syntax"
	// CodeInvalid: the statement parsed but is semantically invalid —
	// a bad parameter value, an insert body that is not a record (HTTP 400).
	CodeInvalid = "invalid"
	// CodeUnavailable: a cluster node required by the statement is down or
	// the cluster is not fully formed (HTTP 503). Retryable.
	CodeUnavailable = "unavailable"
	// CodeInternal: everything else (HTTP 500).
	CodeInternal = "internal"
)

// Error is the typed error the public API returns: a stable machine-readable
// Code plus a human-readable Message. It matches the exported sentinels via
// errors.Is, so both styles of handling work:
//
//	var ae *asterixdb.Error
//	if errors.As(err, &ae) && ae.Code == asterixdb.CodeSyntax { ... }
//	if errors.Is(err, asterixdb.ErrNotFound) { ... }
type Error struct {
	Code    string
	Message string
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Message }

// Is reports whether the error's code corresponds to a sentinel, making
// errors.Is(err, ErrNotFound) work on typed errors that do not wrap the
// sentinel directly.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrNotFound:
		return e.Code == CodeNotFound
	case ErrExists:
		return e.Code == CodeExists
	}
	return false
}

// errf mints a typed error with the given code.
func errf(code, format string, args ...any) error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// syntaxError wraps a parse failure so the service layer can answer 400.
func syntaxError(err error) error {
	if err == nil {
		return nil
	}
	return &Error{Code: CodeSyntax, Message: err.Error()}
}

// ErrorCode classifies any error returned by the API into one of the Code
// constants, unwrapping typed errors and storage sentinels.
func ErrorCode(err error) string {
	var ae *Error
	if errors.As(err, &ae) {
		return ae.Code
	}
	switch {
	case errors.Is(err, ErrNotFound):
		return CodeNotFound
	case errors.Is(err, ErrExists):
		return CodeExists
	}
	return CodeInternal
}
