package storage

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"asterixdb/internal/crashpoint"
	"asterixdb/internal/fsutil"
)

// checkpointMetaFile holds the last checkpoint's metadata, written atomically
// next to the WAL.
const checkpointMetaFile = "checkpoint.meta"

// checkpointMeta is the durable record of one checkpoint: when it ran, its
// lifetime ordinal, and the per-dataset WAL watermarks it established. The
// watermarks are informational — recovery trusts the per-component stamps,
// which survive even if this file is lost.
type checkpointMeta struct {
	Count      uint64            `json:"count"`
	UnixTime   int64             `json:"unix_time"`
	Watermarks map[string]uint64 `json:"watermarks"`
}

// Checkpoint bounds recovery work: for each dataset it captures the WAL
// low-water mark, flushes every tree (primary and secondaries) stamped with
// it, records the watermarks in checkpoint.meta, and finally compacts the
// WAL down to the minimum watermark. Operations below a dataset's watermark
// are inside durable components; after a crash, Recover replays only the
// bounded suffix past each tree's stamp — the log prefix is physically gone.
//
// Checkpoints assume every dataset present in the WAL has been re-registered
// (the metadata layer recreates datasets before serving), matching the old
// flush-everything-then-truncate behavior.
func (m *Manager) Checkpoint() error {
	m.ckptMu.Lock()
	defer m.ckptMu.Unlock()
	meta := checkpointMeta{UnixTime: time.Now().Unix(), Watermarks: map[string]uint64{}}
	keep := uint64(0)
	haveKeep := false
	for _, name := range m.Datasets() {
		ds, ok := m.Dataset(name)
		if !ok {
			continue // dropped while checkpointing
		}
		// The low-water mark is captured per dataset, before its flush: any
		// operation not yet fully applied keeps its LSN in the retained
		// suffix and is replayed on recovery. The WAL is forced before the
		// flush so the stamped components never outlive (under power
		// failure) the log records that commit their contents.
		low := m.wal.LowWater()
		if err := m.wal.Sync(); err != nil {
			return fmt.Errorf("storage: checkpoint %q: wal sync: %w", name, err)
		}
		if err := ds.flushAll(low); err != nil {
			return fmt.Errorf("storage: checkpoint %q: %w", name, err)
		}
		meta.Watermarks[name] = low
		if !haveKeep || low < keep {
			keep = low
			haveKeep = true
		}
	}
	if !haveKeep {
		keep = m.wal.LowWater()
	}
	crashpoint.Hit("ckpt-flushed")
	m.statsMu.Lock()
	meta.Count = m.ckptCount + 1
	m.statsMu.Unlock()
	data, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	if err := fsutil.WriteFileAtomic(filepath.Join(m.dir, checkpointMetaFile), data, 0o644); err != nil {
		return fmt.Errorf("storage: checkpoint meta: %w", err)
	}
	m.statsMu.Lock()
	m.ckptCount = meta.Count
	m.lastCkptUnix = meta.UnixTime
	m.statsMu.Unlock()
	crashpoint.Hit("ckpt-meta")
	// Drop the log prefix below every watermark. LSNs are stable across
	// compaction (the header records the base), so component stamps written
	// before this checkpoint stay meaningful.
	if err := m.wal.Compact(keep); err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	return nil
}

// loadCheckpointMeta restores checkpoint counters from a previous run's
// meta file. A missing or unreadable file just means "no checkpoint yet":
// the file is advisory, recovery never depends on it.
func (m *Manager) loadCheckpointMeta() {
	data, err := os.ReadFile(filepath.Join(m.dir, checkpointMetaFile))
	if err != nil {
		return
	}
	var meta checkpointMeta
	if json.Unmarshal(data, &meta) != nil {
		return
	}
	m.statsMu.Lock()
	m.ckptCount = meta.Count
	m.lastCkptUnix = meta.UnixTime
	m.statsMu.Unlock()
}

// ManagerStats is a point-in-time aggregate of the manager's durability
// machinery, for the /metrics endpoints.
type ManagerStats struct {
	// WALBytes is the current log size on disk.
	WALBytes int64
	// Checkpoints is the lifetime checkpoint count (persisted across
	// restarts in checkpoint.meta); LastCheckpointUnix is when the newest
	// one completed (0 = never).
	Checkpoints        uint64
	LastCheckpointUnix int64
	// Recovery summarizes the last Recover call in this process.
	Recovery RecoveryStats
	// Background scheduler state: queued tasks, tasks running right now, and
	// lifetime flush/merge totals executed in the background.
	BgQueueDepth int
	BgInFlight   int
	BgFlushes    uint64
	BgMerges     uint64
}

// Stats reports the manager-level durability counters.
func (m *Manager) Stats() ManagerStats {
	var s ManagerStats
	s.WALBytes = m.wal.SizeBytes()
	m.statsMu.Lock()
	s.Checkpoints = m.ckptCount
	s.LastCheckpointUnix = m.lastCkptUnix
	s.Recovery = m.recovery
	m.statsMu.Unlock()
	if m.sched != nil {
		s.BgQueueDepth, s.BgInFlight = m.sched.queueStats()
		s.BgFlushes = m.sched.flushes.Load()
		s.BgMerges = m.sched.merges.Load()
	}
	return s
}
