package storage

import (
	"fmt"
	"testing"

	"asterixdb/internal/adm"
	"asterixdb/internal/lsm"
)

func messageType() *adm.RecordType {
	return &adm.RecordType{
		Name: "MugshotMessageType",
		Open: false,
		Fields: []adm.FieldType{
			{Name: "message-id", Type: adm.Prim(adm.TagInt32)},
			{Name: "author-id", Type: adm.Prim(adm.TagInt32)},
			{Name: "timestamp", Type: adm.Prim(adm.TagDatetime)},
			{Name: "sender-location", Type: adm.Prim(adm.TagPoint), Optional: true},
			{Name: "message", Type: adm.Prim(adm.TagString)},
		},
	}
}

func message(id, author int, ts int64, text string, x, y float64) *adm.Record {
	return adm.NewRecord(
		adm.Field{Name: "message-id", Value: adm.Int32(int32(id))},
		adm.Field{Name: "author-id", Value: adm.Int32(int32(author))},
		adm.Field{Name: "timestamp", Value: adm.Datetime(ts)},
		adm.Field{Name: "sender-location", Value: adm.Point{X: x, Y: y}},
		adm.Field{Name: "message", Value: adm.String(text)},
	)
}

func newTestManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(t.TempDir(), Options{Partitions: 3, MemBudget: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func createMessages(t *testing.T, m *Manager, enc adm.Encoding) *Dataset {
	t.Helper()
	ds, err := m.CreateDataset(DatasetSpec{
		Name:       "MugshotMessages",
		Type:       messageType(),
		PrimaryKey: []string{"message-id"},
		Encoding:   enc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestInsertLookupDelete(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	const n = 200
	for i := 0; i < n; i++ {
		if err := ds.Insert(message(i, i%10, int64(1000*i), fmt.Sprintf("message %d", i), float64(i%50), float64(i%30))); err != nil {
			t.Fatal(err)
		}
	}
	count, err := ds.Count()
	if err != nil || count != n {
		t.Fatalf("Count = %d, %v", count, err)
	}
	rec, ok, err := ds.LookupPK(adm.Int32(42))
	if err != nil || !ok {
		t.Fatalf("LookupPK: %v, %v", ok, err)
	}
	if rec.Get("message").(adm.String) != "message 42" {
		t.Errorf("lookup returned %v", rec.Get("message"))
	}
	if _, ok, _ := ds.LookupPK(adm.Int32(99999)); ok {
		t.Error("lookup of absent key should fail")
	}
	deleted, err := ds.Delete(adm.Int32(42))
	if err != nil || !deleted {
		t.Fatalf("Delete: %v, %v", deleted, err)
	}
	if deleted, _ := ds.Delete(adm.Int32(42)); deleted {
		t.Error("double delete should report false")
	}
	if _, ok, _ := ds.LookupPK(adm.Int32(42)); ok {
		t.Error("deleted record still visible")
	}
	count, _ = ds.Count()
	if count != n-1 {
		t.Errorf("Count after delete = %d", count)
	}
}

func TestInsertValidation(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	// Closed type rejects extra fields.
	bad := message(1, 1, 0, "x", 0, 0).Set("extra", adm.Boolean(true))
	if err := ds.Insert(bad); err == nil {
		t.Error("closed type must reject extra fields")
	}
	// Missing primary key.
	noPK := adm.NewRecord(adm.Field{Name: "author-id", Value: adm.Int32(1)})
	if err := ds.Insert(noPK); err == nil {
		t.Error("record without primary key must be rejected")
	}
}

func TestUpsertReplacesSecondaryEntries(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	if err := ds.CreateIndex(IndexSpec{Name: "byAuthor", Fields: []string{"author-id"}, Kind: BTreeIndex}); err != nil {
		t.Fatal(err)
	}
	ds.Insert(message(1, 100, 0, "original", 0, 0))
	ds.Insert(message(1, 200, 0, "replacement", 0, 0))
	recs, err := ds.SearchSecondaryRange("byAuthor", adm.Int32(100), adm.Int32(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Errorf("stale secondary entry survived upsert: %d hits", len(recs))
	}
	recs, err = ds.SearchSecondaryRange("byAuthor", adm.Int32(200), adm.Int32(200))
	if err != nil || len(recs) != 1 {
		t.Errorf("new secondary entry missing: %d hits, %v", len(recs), err)
	}
}

func TestSecondaryBTreeRange(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	const n = 300
	for i := 0; i < n; i++ {
		if err := ds.Insert(message(i, i%10, int64(i)*1000, "hello", 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	// Index created after data exists must backfill.
	if err := ds.CreateIndex(IndexSpec{Name: "msTimestampIdx", Fields: []string{"timestamp"}, Kind: BTreeIndex}); err != nil {
		t.Fatal(err)
	}
	recs, err := ds.SearchSecondaryRange("msTimestampIdx", adm.Datetime(100000), adm.Datetime(150000))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 51 {
		t.Errorf("range returned %d records, want 51", len(recs))
	}
	for _, r := range recs {
		ts := int64(r.Get("timestamp").(adm.Datetime))
		if ts < 100000 || ts > 150000 {
			t.Errorf("record outside range: %d", ts)
		}
	}
	// Open-ended range.
	recs, err = ds.SearchSecondaryRange("msTimestampIdx", adm.Datetime(int64(n-5)*1000), nil)
	if err != nil || len(recs) != 5 {
		t.Errorf("open range returned %d records, %v", len(recs), err)
	}
	// Unknown index errors.
	if _, err := ds.SearchSecondaryRange("nope", nil, nil); err == nil {
		t.Error("unknown index should error")
	}
}

func TestSecondaryRTree(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	if err := ds.CreateIndex(IndexSpec{Name: "msSenderLocIndex", Fields: []string{"sender-location"}, Kind: RTreeIndex}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ds.Insert(message(i, 1, 0, "spatial", float64(i), float64(i)))
	}
	probe := adm.Rectangle{LowerLeft: adm.Point{X: 10, Y: 10}, UpperRight: adm.Point{X: 20, Y: 20}}
	recs, err := ds.SearchSecondaryRTree("msSenderLocIndex", probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 {
		t.Errorf("rtree search returned %d records, want 11", len(recs))
	}
}

func TestSecondaryInverted(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	if err := ds.CreateIndex(IndexSpec{Name: "msMessageIdx", Fields: []string{"message"}, Kind: KeywordIndex}); err != nil {
		t.Fatal(err)
	}
	ds.Insert(message(1, 1, 0, "going out tonight", 0, 0))
	ds.Insert(message(2, 1, 0, "tonight is the night", 0, 0))
	ds.Insert(message(3, 1, 0, "something else entirely", 0, 0))
	recs, err := ds.SearchSecondaryInverted("msMessageIdx", "tonight", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("keyword search returned %d records", len(recs))
	}
	// An ngram index supports fuzzy candidate generation.
	if err := ds.CreateIndex(IndexSpec{Name: "msMessageNGram", Fields: []string{"message"}, Kind: NGramIndex, GramLength: 3}); err != nil {
		t.Fatal(err)
	}
	recs, err = ds.SearchSecondaryInverted("msMessageNGram", "tonite", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Error("ngram candidates should include fuzzy matches of 'tonite'")
	}
}

func TestDropIndexAndDataset(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	if err := ds.CreateIndex(IndexSpec{Name: "byAuthor", Fields: []string{"author-id"}, Kind: BTreeIndex}); err != nil {
		t.Fatal(err)
	}
	if err := ds.CreateIndex(IndexSpec{Name: "byAuthor", Fields: []string{"author-id"}, Kind: BTreeIndex}); err == nil {
		t.Error("duplicate index should fail")
	}
	if err := ds.DropIndex("byAuthor"); err != nil {
		t.Fatal(err)
	}
	if err := ds.DropIndex("byAuthor"); err == nil {
		t.Error("dropping absent index should fail")
	}
	if err := m.DropDataset("MugshotMessages"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Dataset("MugshotMessages"); ok {
		t.Error("dataset still present after drop")
	}
	if err := m.DropDataset("MugshotMessages"); err == nil {
		t.Error("double drop should fail")
	}
}

func TestSchemaVsKeyOnlySizes(t *testing.T) {
	m := newTestManager(t)
	schema := createMessages(t, m, adm.SchemaEncoding)
	keyonly, err := m.CreateDataset(DatasetSpec{
		Name:       "MugshotMessagesKeyOnly",
		Type:       messageType(),
		PrimaryKey: []string{"message-id"},
		Encoding:   adm.KeyOnlyEncoding,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		rec := message(i, i%7, int64(i)*500, "some moderately long message text here", 1, 2)
		if err := schema.Insert(rec); err != nil {
			t.Fatal(err)
		}
		if err := keyonly.Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	sSize, _ := schema.SizeBytes()
	kSize, _ := keyonly.SizeBytes()
	if sSize >= kSize {
		t.Errorf("Schema encoding (%d bytes) should be smaller than KeyOnly (%d bytes)", sSize, kSize)
	}
}

func TestRecoveryAfterCrash(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, Options{Partitions: 2, Journaled: true, MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := m.CreateDataset(DatasetSpec{Name: "M", Type: messageType(), PrimaryKey: []string{"message-id"}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := ds.Insert(message(i, 1, int64(i), "durable", 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	ds.Delete(adm.Int32(7))
	// Crash without flushing: nothing reached a disk component, so recovery
	// must rebuild state purely from the WAL.
	m.Close()

	m2, err := NewManager(dir, Options{Partitions: 2, Journaled: true, MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	ds2, err := m2.CreateDataset(DatasetSpec{Name: "M", Type: messageType(), PrimaryKey: []string{"message-id"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	count, _ := ds2.Count()
	if count != 49 {
		t.Errorf("recovered %d records, want 49", count)
	}
	if _, ok, _ := ds2.LookupPK(adm.Int32(7)); ok {
		t.Error("deleted record reappeared after recovery")
	}
	if _, ok, _ := ds2.LookupPK(adm.Int32(8)); !ok {
		t.Error("live record missing after recovery")
	}
}

func TestCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, Options{Partitions: 2, MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ds, _ := m.CreateDataset(DatasetSpec{Name: "M", Type: messageType(), PrimaryKey: []string{"message-id"}})
	for i := 0; i < 20; i++ {
		ds.Insert(message(i, 1, 0, "x", 0, 0))
	}
	if err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// After a checkpoint the data lives in valid disk components; recovery
	// replays nothing but the data is still there.
	count, _ := ds.Count()
	if count != 20 {
		t.Errorf("Count after checkpoint = %d", count)
	}
}

func TestInsertBatchAndPartitioning(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	batch := make([]*adm.Record, 100)
	for i := range batch {
		batch[i] = message(i, 1, 0, "batched", 0, 0)
	}
	if _, err := ds.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	count, _ := ds.Count()
	if count != 100 {
		t.Errorf("Count = %d", count)
	}
	// Records should be spread across partitions by primary-key hash.
	nonEmpty := 0
	for p := 0; p < m.Partitions(); p++ {
		n := 0
		ds.ScanPartition(p, func(adm.Value) bool { n++; return true })
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("only %d partitions hold data; hash partitioning not effective", nonEmpty)
	}
}

func TestMergePolicyPlumbing(t *testing.T) {
	m, err := NewManager(t.TempDir(), Options{Partitions: 1, MemBudget: 512, MergePolicy: lsm.ConstantPolicy{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ds, _ := m.CreateDataset(DatasetSpec{Name: "M", Type: messageType(), PrimaryKey: []string{"message-id"}})
	for i := 0; i < 500; i++ {
		if err := ds.Insert(message(i, 1, int64(i), "padding padding padding padding", 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	count, _ := ds.Count()
	if count != 500 {
		t.Errorf("Count = %d", count)
	}
}

// TestScanPartitionVisitorOutsideLock is the regression test for the
// self-join deadlock: the scan visitor must run outside the partition lock,
// so a visitor can itself scan the same partition (as two pipelined scan
// operators over one dataset do when one blocks on the other's progress).
func TestScanPartitionVisitorOutsideLock(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	var recs []*adm.Record
	for i := 1; i <= 300; i++ {
		recs = append(recs, message(i, i%7, 1000, "body", 41, 80))
	}
	if _, err := ds.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	outer, inner := 0, 0
	err := ds.ScanPartition(0, func(adm.Value) bool {
		outer++
		if outer == 1 {
			if err := ds.ScanPartition(0, func(adm.Value) bool {
				inner++
				return true
			}); err != nil {
				t.Fatalf("nested scan: %v", err)
			}
			if inner == 0 {
				t.Fatal("nested scan saw no records")
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if outer == 0 {
		t.Fatal("outer scan saw no records")
	}
}
