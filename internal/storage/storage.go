// Package storage implements AsterixDB's native storage layer (Sections 2.2
// and 4.3 of the paper): datasets hash-partitioned on primary key across node
// partitions, a primary LSM B+-tree per partition, node-local secondary
// indexes (B+-tree, R-tree, inverted keyword / n-gram) that point at primary
// keys, record-level transactions via the txn package, and the
// secondary-search → sort PKs → primary-search → post-validation access path
// shown in Figure 6.
package storage

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"asterixdb/internal/adm"
	"asterixdb/internal/fsutil"
	"asterixdb/internal/invidx"
	"asterixdb/internal/lsm"
	"asterixdb/internal/rtree"
	"asterixdb/internal/spatial"
	"asterixdb/internal/txn"
)

// Sentinel errors for catalog lookups. Callers match them with errors.Is;
// the messages read as suffixes of the wrapped "storage: <object> ..." text.
var (
	// ErrExists reports that a dataset or index with the given name exists.
	ErrExists = errors.New("already exists")
	// ErrNotFound reports that a dataset or index does not exist.
	ErrNotFound = errors.New("does not exist")
)

// IndexKind enumerates secondary index kinds.
type IndexKind string

// Secondary index kinds, matching the DDL "type" clause.
const (
	BTreeIndex   IndexKind = "btree"
	RTreeIndex   IndexKind = "rtree"
	KeywordIndex IndexKind = "keyword"
	NGramIndex   IndexKind = "ngram"
)

// IndexSpec describes a secondary index on a dataset.
type IndexSpec struct {
	Name       string
	Fields     []string
	Kind       IndexKind
	GramLength int // ngram indexes only
}

// DatasetSpec describes a dataset to create.
type DatasetSpec struct {
	Name       string
	Type       *adm.RecordType
	PrimaryKey []string
	// Encoding selects the Schema or KeyOnly record layout (Table 2).
	Encoding adm.Encoding
}

// Options configure a storage Manager.
type Options struct {
	// Partitions is the number of storage partitions a dataset is hashed
	// across (the paper used 30 across 10 nodes; we default to 4).
	Partitions int
	// Journaled syncs the WAL on every commit (Table 4's durability setting).
	Journaled bool
	// MemBudget is the per-partition LSM in-memory component budget.
	MemBudget int
	// MergePolicy overrides the default LSM merge policy.
	MergePolicy lsm.MergePolicy
	// EagerDecode makes ScanPartition decode every record to the full Value
	// tree up front instead of emitting lazily-decoded records backed by
	// pooled arenas. The lazy path is the default; this knob exists for the
	// lazy-vs-eager differential tests and as an escape hatch.
	EagerDecode bool
	// Owns restricts which partitions this manager stores records for: a
	// cluster node controller owns a subset of the hash space, and inserts
	// skip records whose primary key hashes to a partition owned by another
	// node. Every partition's trees still exist on disk (non-owned ones stay
	// empty), so scans and index searches work unchanged. Nil owns all.
	Owns func(partition int) bool
	// DisableBackground turns off the background flush/merge scheduler:
	// over-budget in-memory components flush inline on the writing goroutine,
	// as early builds did. Mainly for tests that want deterministic flushes.
	DisableBackground bool
	// FlushWorkers sizes the background scheduler's worker pool
	// (default defaultFlushWorkers).
	FlushWorkers int
	// CheckpointWALBytes is the WAL size that triggers a background
	// checkpoint, bounding both log growth and recovery replay. Zero means
	// DefaultCheckpointWALBytes; negative disables the trigger.
	CheckpointWALBytes int64
}

// DefaultPartitions is the default number of storage partitions.
const DefaultPartitions = 4

// DefaultCheckpointWALBytes is the default WAL size that triggers a
// background checkpoint.
const DefaultCheckpointWALBytes = 8 << 20

// Manager owns every dataset of an AsterixDB instance: it provides dataset
// lifecycle, the shared lock manager and WAL, background flush/merge
// scheduling, checkpointing, and crash recovery.
type Manager struct {
	dir  string
	opts Options

	locks *txn.LockManager
	wal   *txn.WAL
	sched *scheduler

	// ckptMu serializes checkpoints (only one runs at a time).
	ckptMu sync.Mutex

	// statsMu guards the durability counters below.
	statsMu      sync.Mutex
	recovery     RecoveryStats
	ckptCount    uint64
	lastCkptUnix int64

	mu       sync.RWMutex
	datasets map[string]*Dataset
}

// NewManager creates (or reopens) a storage manager rooted at dir.
func NewManager(dir string, opts Options) (*Manager, error) {
	if opts.Partitions <= 0 {
		opts.Partitions = DefaultPartitions
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	// A crash can leave a half-written checkpoint.meta.tmp behind; the
	// durable one (if any) was renamed into place atomically.
	if err := fsutil.RemoveTempFiles(dir); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	wal, err := txn.OpenWAL(dir, opts.Journaled)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		dir:      dir,
		opts:     opts,
		locks:    txn.NewLockManager(),
		wal:      wal,
		datasets: map[string]*Dataset{},
	}
	m.loadCheckpointMeta()
	if !opts.DisableBackground {
		m.sched = newScheduler(m, opts.FlushWorkers)
	}
	return m, nil
}

// lsmOptions builds the per-tree LSM options: when the background scheduler
// is on, trees never flush inline — the scheduler owns that.
func (m *Manager) lsmOptions() lsm.Options {
	return lsm.Options{
		MemBudget:  m.opts.MemBudget,
		Policy:     m.opts.MergePolicy,
		Background: m.sched != nil,
	}
}

// memBudget is the effective per-tree in-memory budget.
func (m *Manager) memBudget() int {
	if m.opts.MemBudget > 0 {
		return m.opts.MemBudget
	}
	return lsm.DefaultMemBudget
}

// checkpointThreshold is the effective WAL-size checkpoint trigger
// (0 = disabled).
func (m *Manager) checkpointThreshold() int64 {
	switch {
	case m.opts.CheckpointWALBytes < 0:
		return 0
	case m.opts.CheckpointWALBytes == 0:
		return DefaultCheckpointWALBytes
	default:
		return m.opts.CheckpointWALBytes
	}
}

// Partitions returns the partition count used for new datasets.
func (m *Manager) Partitions() int { return m.opts.Partitions }

// CreateDataset creates a dataset with the given spec.
func (m *Manager) CreateDataset(spec DatasetSpec) (*Dataset, error) {
	if spec.Type == nil {
		return nil, fmt.Errorf("storage: dataset %q needs a record type", spec.Name)
	}
	if len(spec.PrimaryKey) == 0 {
		return nil, fmt.Errorf("storage: dataset %q needs a primary key", spec.Name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.datasets[spec.Name]; exists {
		return nil, fmt.Errorf("storage: dataset %q: %w", spec.Name, ErrExists)
	}
	ds := &Dataset{
		spec:    spec,
		manager: m,
		ser:     adm.NewSerializer(spec.Type, spec.Encoding),
	}
	for p := 0; p < m.opts.Partitions; p++ {
		dir := filepath.Join(m.dir, spec.Name, fmt.Sprintf("partition-%d", p))
		primary, err := lsm.Open(dir, m.lsmOptions())
		if err != nil {
			return nil, err
		}
		ds.partitions = append(ds.partitions, &partition{
			idNum:    p,
			primary:  primary,
			btrees:   map[string]*lsm.Tree{},
			rtrees:   map[string]*rtree.LSM{},
			inverted: map[string]*invidx.LSM{},
		})
	}
	m.datasets[spec.Name] = ds
	return ds, nil
}

// Dataset returns the named dataset.
func (m *Manager) Dataset(name string) (*Dataset, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ds, ok := m.datasets[name]
	return ds, ok
}

// Datasets lists dataset names in sorted order.
func (m *Manager) Datasets() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.datasets))
	for n := range m.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropDataset removes a dataset and its on-disk files.
func (m *Manager) DropDataset(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.datasets[name]; !ok {
		return fmt.Errorf("storage: dataset %q: %w", name, ErrNotFound)
	}
	delete(m.datasets, name)
	return os.RemoveAll(filepath.Join(m.dir, name))
}

// RecoveryStats summarizes the last Recover call.
type RecoveryStats struct {
	// Duration is the wall-clock time Recover took.
	Duration time.Duration
	// Records is the number of operation records decoded from the WAL.
	Records int
	// Replayed counts records applied because their LSN was at or past the
	// target tree's durable watermark; Skipped counts those already inside a
	// durable component. A checkpoint just before the crash makes Replayed
	// small regardless of log history length.
	Replayed int
	Skipped  int
	// TruncatedAt is non-zero if tail corruption made recovery truncate the
	// log at that LSN.
	TruncatedAt uint64
}

// Recover replays the WAL into the datasets. It must be called after the
// datasets and their indexes have been re-created (the metadata layer does
// this), and before serving queries. Every record carries the exact tree it
// targets (primary or a named secondary index) and the exact derived key
// bytes, and is applied only if its LSN is at or past that tree's durable
// watermark — so a flush that made one index durable but not another
// replays precisely the missing suffix into each.
func (m *Manager) Recover() error {
	start := time.Now()
	var st RecoveryStats
	walStats, err := m.wal.Replay(func(lsn uint64, rec txn.LogRecord) error {
		ds, ok := m.Dataset(rec.Dataset)
		if !ok {
			return nil // dataset since dropped
		}
		applied, aerr := ds.applyLogged(lsn, rec)
		if applied {
			st.Replayed++
		} else {
			st.Skipped++
		}
		return aerr
	})
	st.Records = walStats.Records
	st.TruncatedAt = walStats.TruncatedAt
	st.Duration = time.Since(start)
	m.statsMu.Lock()
	m.recovery = st
	m.statsMu.Unlock()
	if err != nil {
		return err
	}
	m.scheduleOverBudget()
	return nil
}

// scheduleOverBudget hands any tree that recovery (or a bulk load) left over
// its in-memory budget to the background scheduler.
func (m *Manager) scheduleOverBudget() {
	if m.sched == nil {
		return
	}
	budget := m.memBudget()
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, ds := range m.datasets {
		for _, p := range ds.partitions {
			var over []*lsm.Tree
			p.mu.Lock()
			for _, t := range p.allTrees() {
				if t.MemBytes() >= budget {
					over = append(over, t)
				}
			}
			p.mu.Unlock()
			for _, t := range over {
				m.sched.requestFlush(p, t)
			}
		}
	}
}

// maintain runs after a committed mutation on one partition: it queues
// over-budget trees for background flushing, triggers a checkpoint when the
// WAL has outgrown its threshold, and — if a tree is far past budget —
// stalls the writer briefly (backpressure) so the flush can catch up.
func (m *Manager) maintain(d *Dataset, part int) {
	if m.sched == nil {
		return
	}
	p := d.partitions[part]
	budget := m.memBudget()
	var over []*lsm.Tree
	var pressured *lsm.Tree
	p.mu.Lock()
	for _, t := range p.allTrees() {
		if t.MemBytes() >= budget {
			over = append(over, t)
			if pressured == nil && t.MemBytes() >= budget*backpressureLimit {
				pressured = t
			}
		}
	}
	p.mu.Unlock()
	for _, t := range over {
		m.sched.requestFlush(p, t)
	}
	if thr := m.checkpointThreshold(); thr > 0 && m.wal.SizeBytes() >= thr {
		m.sched.requestCheckpoint()
	}
	if pressured != nil {
		m.sched.waitForFlush(p, pressured, budget*backpressureLimit)
	}
}

// Close drains the background scheduler (queued flushes, merges and
// checkpoints still run) and then closes the WAL. Dataset components need no
// closing (they are plain files rewritten atomically).
func (m *Manager) Close() error {
	var schedErr error
	if m.sched != nil {
		schedErr = m.sched.close()
	}
	err := m.wal.Close()
	if schedErr != nil {
		return schedErr
	}
	return err
}

// ----------------------------------------------------------------------------
// Dataset
// ----------------------------------------------------------------------------

// Dataset is a stored, partitioned collection of records of one Datatype.
type Dataset struct {
	spec    DatasetSpec
	manager *Manager
	ser     *adm.Serializer

	mu         sync.RWMutex
	indexes    []IndexSpec
	partitions []*partition
}

// partition is one storage partition: a primary LSM B+-tree plus the local
// portion of every secondary index, each an LSM tree with its own durable
// watermark. The mutex is the node-local latch that makes individual index
// operations atomic (Section 4.4).
type partition struct {
	idNum int
	mu    sync.Mutex

	primary  *lsm.Tree
	btrees   map[string]*lsm.Tree
	rtrees   map[string]*rtree.LSM
	inverted map[string]*invidx.LSM
}

// allTrees lists every LSM tree in the partition (primary first). Caller
// holds p.mu.
func (p *partition) allTrees() []*lsm.Tree {
	trees := make([]*lsm.Tree, 0, 1+len(p.btrees)+len(p.rtrees)+len(p.inverted))
	trees = append(trees, p.primary)
	for _, t := range p.btrees {
		trees = append(trees, t)
	}
	for _, t := range p.rtrees {
		trees = append(trees, t.Tree())
	}
	for _, t := range p.inverted {
		trees = append(trees, t.Tree())
	}
	return trees
}

// treeFor resolves a WAL record's target tree: "" is the primary, anything
// else a secondary index name. Nil means the index was dropped since the
// record was logged. Caller holds p.mu.
func (p *partition) treeFor(index string) *lsm.Tree {
	if index == "" {
		return p.primary
	}
	if t := p.btrees[index]; t != nil {
		return t
	}
	if t := p.rtrees[index]; t != nil {
		return t.Tree()
	}
	if t := p.inverted[index]; t != nil {
		return t.Tree()
	}
	return nil
}

// Spec returns the dataset's specification.
func (d *Dataset) Spec() DatasetSpec { return d.spec }

// DatasetStats is a point-in-time aggregate of one dataset's LSM state
// across its partitions, for the /metrics endpoints.
type DatasetStats struct {
	// MemBytes is the primary in-memory component footprint.
	MemBytes int
	// Components counts the primary index's disk components; Flushes and
	// Merges are its lifetime flush/merge totals.
	Components int
	Flushes    int
	Merges     int
	// SecondaryComponents counts disk components across every LSM-backed
	// secondary index (B+-tree, R-tree and inverted alike).
	SecondaryComponents int
}

// Stats aggregates the dataset's LSM counters under each partition latch.
func (d *Dataset) Stats() DatasetStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var s DatasetStats
	for _, p := range d.partitions {
		p.mu.Lock()
		s.MemBytes += p.primary.MemBytes()
		s.Components += p.primary.Components()
		s.Flushes += p.primary.Flushes()
		s.Merges += p.primary.Merges()
		for _, t := range p.allTrees()[1:] {
			s.SecondaryComponents += t.Components()
		}
		p.mu.Unlock()
	}
	return s
}

// Indexes returns the dataset's secondary index specifications.
func (d *Dataset) Indexes() []IndexSpec {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]IndexSpec, len(d.indexes))
	copy(out, d.indexes)
	return out
}

// IndexByName returns the named secondary index spec.
func (d *Dataset) IndexByName(name string) (IndexSpec, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, ix := range d.indexes {
		if ix.Name == name {
			return ix, true
		}
	}
	return IndexSpec{}, false
}

// IndexOnField returns a secondary index whose first key field is the given
// field and whose kind matches, if one exists. The optimizer uses it to pick
// index access paths.
func (d *Dataset) IndexOnField(field string, kind IndexKind) (IndexSpec, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, ix := range d.indexes {
		if ix.Kind == kind && len(ix.Fields) > 0 && ix.Fields[0] == field {
			return ix, true
		}
	}
	return IndexSpec{}, false
}

// indexDir is the on-disk root of one secondary index partition.
func (d *Dataset) indexDir(p *partition, name string) string {
	return filepath.Join(d.manager.dir, d.spec.Name, fmt.Sprintf("partition-%d", p.idNum), "idx-"+name)
}

// tokenizerFor reconstructs an inverted index's tokenizer from its spec.
func tokenizerFor(ix IndexSpec) invidx.Tokenizer {
	if ix.Kind == NGramIndex {
		return invidx.NGramTokenizer(ix.GramLength)
	}
	return invidx.KeywordTokenizer
}

// CreateIndex adds a secondary index, opening (or reopening) its LSM trees
// and bulk-building it from existing data when it is brand new.
//
// Ordering matters for concurrent writers. Every partition's trees are
// opened BEFORE the spec is published in d.indexes: a writer that sees the
// spec must always find the tree, or applyRecordLocked would silently drop
// its derived records while the backfill scan may already be past its key.
// The publish happens under d.mu.Lock, which waits out every in-flight
// writer (writers hold d.mu.RLock from deriving their log records through
// applying them), so by the time the backfill scans a partition, any record
// whose group carries no entries for this index is already in the primary.
func (d *Dataset) CreateIndex(spec IndexSpec) error {
	d.mu.Lock()
	for _, ix := range d.indexes {
		if ix.Name == spec.Name {
			d.mu.Unlock()
			return fmt.Errorf("storage: index %q on %q: %w", spec.Name, d.spec.Name, ErrExists)
		}
	}
	if spec.Kind == NGramIndex && spec.GramLength <= 0 {
		spec.GramLength = 3
	}
	for i, p := range d.partitions {
		if err := d.openIndexPartition(p, spec); err != nil {
			// Unpublish the partial create so a retry starts clean.
			for _, q := range d.partitions[:i] {
				q.mu.Lock()
				delete(q.btrees, spec.Name)
				delete(q.rtrees, spec.Name)
				delete(q.inverted, spec.Name)
				q.mu.Unlock()
			}
			d.mu.Unlock()
			return err
		}
	}
	d.indexes = append(d.indexes, spec)
	d.mu.Unlock()

	for _, p := range d.partitions {
		if err := d.backfillIndexPartition(p, spec); err != nil {
			return err
		}
	}
	return nil
}

// openIndexPartition opens (or reopens) one partition's LSM tree for spec
// and installs it in the partition's index maps.
func (d *Dataset) openIndexPartition(p *partition, spec IndexSpec) error {
	dir := d.indexDir(p, spec.Name)
	opts := d.manager.lsmOptions()
	p.mu.Lock()
	defer p.mu.Unlock()
	switch spec.Kind {
	case BTreeIndex:
		t, err := lsm.Open(dir, opts)
		if err != nil {
			return err
		}
		p.btrees[spec.Name] = t
	case RTreeIndex:
		t, err := rtree.OpenLSM(dir, opts)
		if err != nil {
			return err
		}
		p.rtrees[spec.Name] = t
	case KeywordIndex, NGramIndex:
		t, err := invidx.OpenLSM(dir, opts, tokenizerFor(spec))
		if err != nil {
			return err
		}
		p.inverted[spec.Name] = t
	default:
		return fmt.Errorf("storage: unknown index kind %q", spec.Kind)
	}
	return nil
}

func (d *Dataset) backfillIndexPartition(p *partition, spec IndexSpec) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	tree := p.treeFor(spec.Name)
	if tree == nil {
		return fmt.Errorf("storage: index %q on %q: tree missing after create", spec.Name, d.spec.Name)
	}
	// Reopening after a restart: the index already has durable components,
	// and the WAL suffix carries every operation past its watermark, so
	// recovery completes it. A backfill scan here would read pre-recovery
	// primary state and is skipped.
	if tree.Components() > 0 {
		return nil
	}
	// Brand-new index (or one that crashed before its first flush): flush the
	// primary, then backfill by scanning it. The backfill itself is not
	// WAL-logged — it is reproduced by exactly this code path on recovery —
	// so everything it indexes must be durable primary state; operations
	// still in the WAL carry their own per-index records and are replayed on
	// top, in log order. The flush deliberately keeps the primary's existing
	// durable stamp: CreateIndex also runs on reopen BEFORE Recover, when the
	// WAL suffix is not yet applied, and advancing the stamp here would make
	// recovery skip it. The WAL is forced first so the flush can never make
	// an operation durable whose log records live only in the page cache.
	if err := d.manager.wal.Sync(); err != nil {
		return err
	}
	if err := p.primary.Flush(); err != nil {
		return err
	}
	var buildErr error
	p.primary.Scan(func(pk, raw []byte) bool {
		val, _, err := d.ser.Decode(raw)
		if err != nil {
			buildErr = err
			return false
		}
		rec := val.(*adm.Record)
		buildErr = p.indexInsert(d, spec, pk, rec)
		return buildErr == nil
	})
	return buildErr
}

// DropIndex removes a secondary index and its on-disk component files.
func (d *Dataset) DropIndex(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, ix := range d.indexes {
		if ix.Name == name {
			d.indexes = append(d.indexes[:i], d.indexes[i+1:]...)
			for _, p := range d.partitions {
				p.mu.Lock()
				delete(p.btrees, name)
				delete(p.rtrees, name)
				delete(p.inverted, name)
				p.mu.Unlock()
				if err := os.RemoveAll(d.indexDir(p, name)); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return fmt.Errorf("storage: index %q on %q: %w", name, d.spec.Name, ErrNotFound)
}

// PrimaryKeyOf extracts and encodes the record's primary key.
func (d *Dataset) PrimaryKeyOf(rec *adm.Record) ([]byte, error) {
	var key []byte
	for _, f := range d.spec.PrimaryKey {
		v := rec.Get(f)
		if adm.IsUnknown(v) {
			return nil, fmt.Errorf("storage: record for %q is missing primary key field %q", d.spec.Name, f)
		}
		key = adm.EncodeKey(key, v)
	}
	return key, nil
}

// partitionFor hash-partitions a primary key across the dataset's partitions.
func (d *Dataset) partitionFor(pk []byte) int {
	h := fnv.New32a()
	h.Write(pk)
	return int(h.Sum32()) % len(d.partitions)
}

// Insert validates and stores a record as one record-level transaction:
// WAL append, primary-key lock, primary and secondary index updates, commit.
func (d *Dataset) Insert(rec *adm.Record) error {
	_, err := d.InsertBatch([]*adm.Record{rec})
	return err
}

// InsertBatch stores several records under a single statement and returns how
// many were stored locally. Each record is still its own record-level
// transaction (the paper's model: an AQL statement that involves multiple
// records involves multiple independent record-level transactions), but the
// WAL is synced once at the end, which is what makes batched inserts cheaper
// in Table 4. Records hashing to a partition this manager does not own
// (Options.Owns) are validated but not stored — another cluster node owns
// them — and do not count toward the returned total.
func (d *Dataset) InsertBatch(recs []*adm.Record) (int, error) {
	stored := 0
	for _, rec := range recs {
		if err := adm.Validate(rec, d.spec.Type); err != nil {
			return stored, fmt.Errorf("storage: %q: %w", d.spec.Name, err)
		}
		pk, err := d.PrimaryKeyOf(rec)
		if err != nil {
			return stored, err
		}
		part := d.partitionFor(pk)
		if owns := d.manager.opts.Owns; owns != nil && !owns(part) {
			continue
		}
		raw, err := d.ser.Encode(nil, rec)
		if err != nil {
			return stored, err
		}
		tid := d.manager.wal.Begin()
		d.manager.locks.Lock(tid, pk)
		err = func() error {
			// The read lock spans deriving the log records through applying
			// them: CreateIndex publishes a new index spec under d.mu.Lock,
			// so it cannot land between our d.indexes snapshot and applyGroup
			// — a window in which the backfill scan could miss this record
			// while its group carries no records for the new index.
			d.mu.RLock()
			defer d.mu.RUnlock()
			oldRec, _, err := d.currentRecord(part, pk)
			if err != nil {
				return err
			}
			logRecs, err := d.buildLogRecords(tid, part, pk, oldRec, rec, raw)
			if err != nil {
				return err
			}
			_, release, err := d.manager.wal.AppendGroup(logRecs)
			if err != nil {
				return err
			}
			applyErr := d.applyGroup(part, logRecs)
			// Each record is its own record-level transaction: its commit
			// record is appended here, but the log is forced only once for
			// the whole statement (the Table 4 batching effect). The commit
			// must be appended BEFORE release(): once the group's LSNs leave
			// the in-flight set, a background flush may stamp a component past
			// the applied operations, and if their commit record were not in
			// the log yet, a crash would make recovery treat them as
			// uncommitted while the flushed tree durably kept their effects
			// (a no-steal violation diverging primary from secondaries).
			var commitErr error
			if applyErr == nil {
				commitErr = d.manager.wal.CommitNoSync(tid)
			}
			release()
			if applyErr != nil {
				return applyErr
			}
			return commitErr
		}()
		d.manager.locks.Unlock(tid, pk)
		if err != nil {
			return stored, err
		}
		stored++
		d.manager.maintain(d, part)
	}
	return stored, d.manager.wal.Sync()
}

// currentRecord reads and decodes the record stored under pk, if any. The
// caller holds the pk lock, so the read stays valid for the whole operation.
func (d *Dataset) currentRecord(part int, pk []byte) (*adm.Record, []byte, error) {
	p := d.partitions[part]
	p.mu.Lock()
	raw, ok := p.primary.Get(pk)
	p.mu.Unlock()
	if !ok {
		return nil, nil, nil
	}
	val, _, err := d.ser.Decode(raw)
	if err != nil {
		// A record we stored must decode; anything else is corruption worth
		// surfacing rather than silently leaving stale index entries behind.
		return nil, nil, fmt.Errorf("storage: %q: decode stored record: %w", d.spec.Name, err)
	}
	rec, _ := val.(*adm.Record)
	return rec, raw, nil
}

// buildLogRecords produces the WAL records for replacing oldRec (nil if pk
// was absent) with newRec (nil for a delete) under primary key pk: antimatter
// records for the old record's secondary entries, inserts for the new
// record's, and the primary operation last. Each secondary record names its
// index and carries the exact derived entry key, so recovery replays every
// access path from the log alone — never by re-deriving from primary state
// that may be newer than the crashed index.
//
// Caller holds d.mu (read): taking it again here would deadlock once a
// CreateIndex/DropIndex writer is queued (Go RWMutexes do not admit
// recursive read locks past a pending writer).
func (d *Dataset) buildLogRecords(tid txn.ID, part int, pk []byte, oldRec, newRec *adm.Record, raw []byte) ([]txn.LogRecord, error) {
	var recs []txn.LogRecord
	for _, ix := range d.indexes {
		if oldRec != nil {
			keys, _, err := secondaryEntries(ix, oldRec, pk)
			if err == nil { // old entries that failed to derive were never indexed
				for _, k := range keys {
					recs = append(recs, txn.LogRecord{
						Txn: tid, Kind: txn.OpDelete, Dataset: d.spec.Name, Partition: part, Index: ix.Name, Key: k,
					})
				}
			}
		}
		if newRec != nil {
			keys, vals, err := secondaryEntries(ix, newRec, pk)
			if err != nil {
				return nil, err
			}
			for i, k := range keys {
				recs = append(recs, txn.LogRecord{
					Txn: tid, Kind: txn.OpInsert, Dataset: d.spec.Name, Partition: part, Index: ix.Name, Key: k, Value: vals[i],
				})
			}
		}
	}
	kind := txn.OpDelete
	var value []byte
	if newRec != nil {
		kind = txn.OpInsert
		value = raw
	}
	return append(recs, txn.LogRecord{
		Txn: tid, Kind: kind, Dataset: d.spec.Name, Partition: part, Key: pk, Value: value,
	}), nil
}

// secondaryEntries derives the (key, value) entries a record contributes to
// one secondary index: the composite key for a B+-tree, the encoded rect+pk
// key for an R-tree, one posting key per distinct token for an inverted
// index. An unknown or untokenizable field contributes nothing.
func secondaryEntries(ix IndexSpec, rec *adm.Record, pk []byte) (keys, vals [][]byte, err error) {
	v := rec.Get(ix.Fields[0])
	if adm.IsUnknown(v) {
		return nil, nil, nil
	}
	switch ix.Kind {
	case BTreeIndex:
		return [][]byte{secondaryKey(ix, rec, pk)}, [][]byte{pk}, nil
	case RTreeIndex:
		mbr, err := spatial.MBR(v)
		if err != nil {
			return nil, nil, fmt.Errorf("storage: rtree index %q: %w", ix.Name, err)
		}
		return [][]byte{rtree.EncodeEntryKey(rectFromADM(mbr), pk)}, [][]byte{nil}, nil
	case KeywordIndex, NGramIndex:
		s, ok := v.(adm.String)
		if !ok {
			return nil, nil, nil
		}
		keys = invidx.PostingKeys(tokenizerFor(ix), pk, string(s))
		return keys, make([][]byte, len(keys)), nil
	}
	return nil, nil, fmt.Errorf("storage: unknown index kind %q", ix.Kind)
}

// applyGroup applies one operation's log records to the partition, in log
// order, under a single latch hold.
func (d *Dataset) applyGroup(part int, recs []txn.LogRecord) error {
	p := d.partitions[part]
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, rec := range recs {
		if err := p.applyRecordLocked(rec); err != nil {
			return err
		}
	}
	return nil
}

// applyRecordLocked applies one log record to its target tree. The same
// routine runs on the live path and during recovery replay, so the two can
// never drift. Caller holds p.mu.
func (p *partition) applyRecordLocked(rec txn.LogRecord) error {
	if rec.Index == "" {
		if rec.Kind == txn.OpInsert {
			return p.primary.Insert(rec.Key, rec.Value)
		}
		return p.primary.Delete(rec.Key)
	}
	if t := p.btrees[rec.Index]; t != nil {
		if rec.Kind == txn.OpInsert {
			return t.Insert(rec.Key, rec.Value)
		}
		return t.Delete(rec.Key)
	}
	if t := p.rtrees[rec.Index]; t != nil {
		return t.ApplyEntry(rec.Key, rec.Kind == txn.OpDelete)
	}
	if t := p.inverted[rec.Index]; t != nil {
		return t.ApplyEntry(rec.Key, rec.Kind == txn.OpDelete)
	}
	return nil // index dropped since the record was logged
}

// applyLogged applies one WAL record during recovery, gated on the target
// tree's durable watermark: records already inside a durable component are
// skipped, everything past it is re-applied (idempotently).
func (d *Dataset) applyLogged(lsn uint64, rec txn.LogRecord) (bool, error) {
	if rec.Partition < 0 || rec.Partition >= len(d.partitions) {
		return false, nil
	}
	p := d.partitions[rec.Partition]
	p.mu.Lock()
	defer p.mu.Unlock()
	tree := p.treeFor(rec.Index)
	if tree == nil || lsn < tree.DurableLSN() {
		return false, nil
	}
	return true, p.applyRecordLocked(rec)
}

// Delete removes the record with the given primary key value(s).
func (d *Dataset) Delete(pkValues ...adm.Value) (bool, error) {
	var pk []byte
	for _, v := range pkValues {
		pk = adm.EncodeKey(pk, v)
	}
	part := d.partitionFor(pk)
	tid := d.manager.wal.Begin()
	d.manager.locks.Lock(tid, pk)
	err := func() error {
		// Read lock and commit-before-release ordering: see InsertBatch.
		d.mu.RLock()
		defer d.mu.RUnlock()
		oldRec, oldRaw, err := d.currentRecord(part, pk)
		if err != nil {
			return err
		}
		if oldRaw == nil {
			return errNoSuchKey
		}
		logRecs, err := d.buildLogRecords(tid, part, pk, oldRec, nil, nil)
		if err != nil {
			return err
		}
		_, release, err := d.manager.wal.AppendGroup(logRecs)
		if err != nil {
			return err
		}
		applyErr := d.applyGroup(part, logRecs)
		var commitErr error
		if applyErr == nil {
			commitErr = d.manager.wal.CommitNoSync(tid)
		}
		release()
		if applyErr != nil {
			return applyErr
		}
		if commitErr != nil {
			return commitErr
		}
		return d.manager.wal.Sync()
	}()
	d.manager.locks.Unlock(tid, pk)
	if err == errNoSuchKey {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	d.manager.maintain(d, part)
	return true, nil
}

// errNoSuchKey is an internal sentinel: Delete on an absent key is not an
// error, just a false result.
var errNoSuchKey = errors.New("no such key")

// indexInsert adds one record to one secondary index partition (the
// CreateIndex backfill path; live mutations go through buildLogRecords and
// applyGroup instead). Caller holds p.mu.
func (p *partition) indexInsert(d *Dataset, ix IndexSpec, pk []byte, rec *adm.Record) error {
	keys, vals, err := secondaryEntries(ix, rec, pk)
	if err != nil {
		return err
	}
	for i, k := range keys {
		kind := txn.OpInsert
		if err := p.applyRecordLocked(txn.LogRecord{
			Kind: kind, Dataset: d.spec.Name, Partition: p.idNum, Index: ix.Name, Key: k, Value: vals[i],
		}); err != nil {
			return err
		}
	}
	return nil
}

// secondaryKey builds the composite key (secondary key bytes ++ primary key)
// stored in secondary B+-trees; the primary key suffix makes entries unique.
func secondaryKey(ix IndexSpec, rec *adm.Record, pk []byte) []byte {
	var key []byte
	for _, f := range ix.Fields {
		key = adm.EncodeKey(key, rec.Get(f))
	}
	return append(key, pk...)
}

func rectFromADM(r adm.Rectangle) rtree.Rect {
	return rtree.Rect{MinX: r.LowerLeft.X, MinY: r.LowerLeft.Y, MaxX: r.UpperRight.X, MaxY: r.UpperRight.Y}
}

// LookupPK returns the record with the given primary key value(s).
func (d *Dataset) LookupPK(pkValues ...adm.Value) (*adm.Record, bool, error) {
	var pk []byte
	for _, v := range pkValues {
		pk = adm.EncodeKey(pk, v)
	}
	p := d.partitions[d.partitionFor(pk)]
	p.mu.Lock()
	raw, ok := p.primary.Get(pk)
	p.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	val, _, err := d.ser.Decode(raw)
	if err != nil {
		return nil, false, err
	}
	rec, ok := val.(*adm.Record)
	return rec, ok, nil
}

// lookupPKBytes fetches a record by its encoded primary key.
func (d *Dataset) lookupPKBytes(pk []byte) (*adm.Record, bool, error) {
	p := d.partitions[d.partitionFor(pk)]
	p.mu.Lock()
	raw, ok := p.primary.Get(pk)
	p.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	val, _, err := d.ser.Decode(raw)
	if err != nil {
		return nil, false, err
	}
	rec, _ := val.(*adm.Record)
	return rec, rec != nil, nil
}

// PartitionCount returns the number of storage partitions.
func (d *Dataset) PartitionCount() int { return len(d.partitions) }

// FetchPKPartition fetches and decodes the record stored under the encoded
// primary key in one partition. Secondary indexes are partition-local and
// co-located with their records, so an encoded key obtained from partition
// p's secondary index always resolves in partition p's primary index: this is
// the primary-search stage of the compiled per-partition access path.
func (d *Dataset) FetchPKPartition(part int, pk []byte) (*adm.Record, bool, error) {
	if part < 0 || part >= len(d.partitions) {
		return nil, false, fmt.Errorf("storage: partition %d out of range", part)
	}
	p := d.partitions[part]
	p.mu.Lock()
	raw, ok := p.primary.Get(pk)
	p.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	val, _, err := d.ser.Decode(raw)
	if err != nil {
		return nil, false, err
	}
	rec, _ := val.(*adm.Record)
	return rec, rec != nil, nil
}

// SearchSecondaryRangePartition visits the encoded primary keys in one
// partition's secondary B+-tree whose secondary key lies in [lo, hi] (either
// bound may be nil for an open range). Keys are collected under the partition
// latch and visited outside it, so a pipelined consumer may block inside
// visit without wedging the partition. This is the per-partition secondary-
// search stage of the compiled access path; callers sort the keys, fetch the
// records, and post-validate.
func (d *Dataset) SearchSecondaryRangePartition(part int, indexName string, lo, hi adm.Value, visit func(pk []byte) bool) error {
	ix, ok := d.IndexByName(indexName)
	if !ok {
		return fmt.Errorf("storage: no index %q on %q", indexName, d.spec.Name)
	}
	if ix.Kind != BTreeIndex {
		return fmt.Errorf("storage: index %q is not a btree index", indexName)
	}
	if part < 0 || part >= len(d.partitions) {
		return fmt.Errorf("storage: partition %d out of range", part)
	}
	var loKey, hiKey []byte
	if lo != nil {
		loKey = adm.EncodeKey(nil, lo)
	}
	if hi != nil {
		hiKey = append(adm.EncodeKey(nil, hi), 0xFF) // include any PK suffix
	}
	p := d.partitions[part]
	p.mu.Lock()
	var it *lsm.Iterator
	if tree := p.btrees[indexName]; tree != nil {
		it = tree.NewIterator(loKey, hiKey)
	}
	p.mu.Unlock()
	if it == nil {
		return nil
	}
	// One iterator spans the whole search: keys are copied out in chunks
	// under the partition latch and visited outside it (so a pipelined
	// consumer may block inside visit without wedging the partition), and the
	// iterator resumes where it left off — re-seeking via its sequence check
	// if the index was mutated while the latch was released.
	for {
		var pks [][]byte
		done := false
		p.mu.Lock()
		for len(pks) < scanChunk {
			if !it.Next() {
				done = true
				break
			}
			pks = append(pks, append([]byte(nil), it.Value()...))
		}
		p.mu.Unlock()
		for _, pk := range pks {
			if !visit(pk) {
				return nil
			}
		}
		if done {
			return nil
		}
	}
}

// SearchRTreePartition visits the encoded primary keys in one partition's
// R-tree index whose stored MBR intersects the probe rectangle. Like the
// B+-tree variant, keys are visited outside the partition latch. The R-tree
// is an in-memory structure without a resumable cursor, so the candidate set
// is collected in one latch hold — a single traversal, not the per-chunk
// restart the LSM searches used to pay.
func (d *Dataset) SearchRTreePartition(part int, indexName string, probe adm.Rectangle, visit func(pk []byte) bool) error {
	ix, ok := d.IndexByName(indexName)
	if !ok || ix.Kind != RTreeIndex {
		return fmt.Errorf("storage: no rtree index %q on %q", indexName, d.spec.Name)
	}
	if part < 0 || part >= len(d.partitions) {
		return fmt.Errorf("storage: partition %d out of range", part)
	}
	probeRect := rectFromADM(probe)
	p := d.partitions[part]
	var pks [][]byte
	p.mu.Lock()
	if tree := p.rtrees[indexName]; tree != nil {
		tree.SearchIntersect(probeRect, func(e rtree.Entry) bool {
			pks = append(pks, append([]byte(nil), e.Value...))
			return true
		})
	}
	p.mu.Unlock()
	for _, pk := range pks {
		if !visit(pk) {
			return nil
		}
	}
	return nil
}

// SearchInvertedPartition visits the encoded primary keys in one partition's
// inverted index that conservatively match the probe: for a keyword index,
// documents containing every token of the probe; for an ngram index,
// documents containing every (unpadded) gram of the probe. Both candidate
// sets are supersets of the records satisfying tokenized-equality and
// substring (contains) predicates respectively, so callers post-validate.
// A probe shorter than the gram length produces no grams — the index cannot
// bound the candidate set — and is reported as an error.
func (d *Dataset) SearchInvertedPartition(part int, indexName, probe string, visit func(pk []byte) bool) error {
	ix, ok := d.IndexByName(indexName)
	if !ok || (ix.Kind != KeywordIndex && ix.Kind != NGramIndex) {
		return fmt.Errorf("storage: no inverted index %q on %q", indexName, d.spec.Name)
	}
	if part < 0 || part >= len(d.partitions) {
		return fmt.Errorf("storage: partition %d out of range", part)
	}
	var grams []string
	if ix.Kind == NGramIndex {
		grams = substringGrams(probe, ix.GramLength)
		if len(grams) == 0 {
			return fmt.Errorf("storage: inverted probe %q is shorter than gram length %d", probe, ix.GramLength)
		}
	}
	p := d.partitions[part]
	var pks [][]byte
	p.mu.Lock()
	if t := p.inverted[indexName]; t != nil {
		if ix.Kind == KeywordIndex {
			pks = t.Lookup(probe)
		} else {
			pks = t.LookupAll(grams)
		}
	}
	p.mu.Unlock()
	for _, pk := range pks {
		if !visit(pk) {
			return nil
		}
	}
	return nil
}

// substringGrams returns the unpadded lower-cased k-grams of s. Unlike
// fuzzy.NGramTokens it does not pad the ends: every gram of a substring probe
// is then guaranteed to appear among the indexed (padded) grams of any text
// containing the probe, which is what makes the conjunctive candidate set a
// superset of the true contains() matches.
func substringGrams(s string, k int) []string {
	runes := []rune(strings.ToLower(s))
	if k <= 0 || len(runes) < k {
		return nil
	}
	grams := make([]string, 0, len(runes)-k+1)
	for i := 0; i+k <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+k]))
	}
	return grams
}

// SearchSecondaryConjunctive runs the inverted-index access path across every
// partition and materializes the candidate records in primary-key order: the
// reference-interpreter counterpart of the per-partition pipeline the
// compiled jobs run. Callers post-validate the exact predicate.
func (d *Dataset) SearchSecondaryConjunctive(indexName, probe string) ([]*adm.Record, error) {
	return d.collectAndFetch(func(part int, visit func(pk []byte) bool) error {
		return d.SearchInvertedPartition(part, indexName, probe, visit)
	})
}

// collectAndFetch is the materializing half of every secondary access path:
// it runs a per-partition primary-key producer across all partitions, sorts
// the keys (the sort operator between the two searches in Figure 6), and
// fetches the records from the primary indexes. Callers post-validate.
func (d *Dataset) collectAndFetch(producer func(part int, visit func(pk []byte) bool) error) ([]*adm.Record, error) {
	var pks [][]byte
	for part := range d.partitions {
		err := producer(part, func(pk []byte) bool {
			pks = append(pks, pk)
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(pks, func(i, j int) bool { return string(pks[i]) < string(pks[j]) })
	out := make([]*adm.Record, 0, len(pks))
	for _, pk := range pks {
		rec, ok, err := d.lookupPKBytes(pk)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, rec)
		}
	}
	return out, nil
}

// SpatialProbeMBR normalizes an evaluated spatial probe for an R-tree search:
// it reports false for unknown or non-spatial values (the predicate above
// would be false/null everywhere). Both executors share it so the compiled
// path cannot drift from the interpreter oracle.
func SpatialProbeMBR(v adm.Value) (adm.Rectangle, bool) {
	if v == nil || adm.IsUnknown(v) {
		return adm.Rectangle{}, false
	}
	mbr, err := spatial.MBR(v)
	if err != nil {
		return adm.Rectangle{}, false
	}
	return mbr, true
}

// StringProbe normalizes an evaluated inverted-index probe: it reports false
// for unknown or non-string values, which match nothing.
func StringProbe(v adm.Value) (string, bool) {
	s, ok := v.(adm.String)
	return string(s), ok
}

// scanChunk is the number of records decoded per partition-lock acquisition
// during a scan.
const scanChunk = 64

// ScanPartition visits every record in one partition in primary-key order.
// Records are decoded in chunks under the partition lock and the visitor runs
// outside it: a pipelined consumer may block inside visit (on a full dataflow
// channel) without wedging the partition, and two scans of the same partition
// (a compiled self-join) cannot deadlock. One merge iterator spans the whole
// scan — each chunk resumes it instead of restarting a Range from the last
// key, which made long scans quadratic. The scan is still not atomic across
// the partition: records inserted mid-scan with keys beyond the scan cursor
// are visited (the iterator's staleness re-seek preserves exactly the old
// resume-strictly-after-last-key semantics).
// Records arrive as lazily-decoded *adm.LazyRecord values (unless
// Options.EagerDecode) viewing the LSM tree's own value bytes zero-copy:
// the iterator contract guarantees value slices stay readable and are never
// mutated in place, so no per-record copy is made. The slot directory is
// parsed — and the stored bytes validated — under the latch, but field
// decoding is deferred until an operator actually touches a field.
func (d *Dataset) ScanPartition(part int, visit func(adm.Value) bool) error {
	if part < 0 || part >= len(d.partitions) {
		return fmt.Errorf("storage: partition %d out of range", part)
	}
	p := d.partitions[part]
	p.mu.Lock()
	it := p.primary.NewIterator(nil, nil)
	p.mu.Unlock()
	lazy := !d.manager.opts.EagerDecode
	var arena *adm.Arena
	if lazy {
		// The arena only block-allocates LazyRecord headers here; emitted
		// records hold no reference to it. Release is nil-safe, so the eager
		// path threads through.
		arena = adm.AcquireArena()
	}
	defer arena.Release()
	chunk := make([]adm.Value, 0, scanChunk)
	for {
		chunk = chunk[:0]
		var decodeErr error
		done := false
		p.mu.Lock()
		for len(chunk) < scanChunk {
			if !it.Next() {
				done = true
				break
			}
			var val adm.Value
			var err error
			if lazy {
				val, _, err = d.ser.DecodeLazy(it.Value(), arena)
			} else {
				val, _, err = d.ser.Decode(it.Value())
			}
			if err != nil {
				decodeErr = err
				break
			}
			if val.Tag() == adm.TagRecord {
				chunk = append(chunk, val)
			}
		}
		p.mu.Unlock()
		if decodeErr != nil {
			return decodeErr
		}
		for _, rec := range chunk {
			if !visit(rec) {
				return nil
			}
		}
		if done {
			return nil
		}
	}
}

// Scan visits every record in the dataset (all partitions). Partitions are
// visited sequentially; the query runtime parallelizes by scanning partitions
// from separate operator instances instead.
func (d *Dataset) Scan(visit func(*adm.Record) bool) error {
	for part := range d.partitions {
		stop := false
		err := d.ScanPartition(part, func(v adm.Value) bool {
			r, ok := adm.AsRecord(v)
			if !ok {
				return true
			}
			if !visit(r) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// Count returns the number of records in the dataset.
func (d *Dataset) Count() (int, error) {
	n := 0
	err := d.Scan(func(*adm.Record) bool { n++; return true })
	return n, err
}

// SizeBytes returns the total encoded size of all records, the quantity
// compared across systems in Table 2.
func (d *Dataset) SizeBytes() (int64, error) {
	var total int64
	for _, p := range d.partitions {
		p.mu.Lock()
		p.primary.Scan(func(_, raw []byte) bool {
			total += int64(len(raw))
			return true
		})
		p.mu.Unlock()
	}
	return total, nil
}

// Flush flushes every partition's in-memory components (primary and all
// secondary indexes) to disk, stamped with the WAL low-water mark captured
// up front: every operation fully applied before the capture is inside the
// flushed components, so recovery replays only LSNs at or past the stamp.
// The WAL is forced first — a stamped component may become durable the
// moment it is renamed into place, so every log record below the stamp
// (including its transaction's commit record) must already be on stable
// storage, or a power failure could keep the component's effects while
// losing the records that mark them committed.
func (d *Dataset) Flush() error {
	low := d.manager.wal.LowWater()
	if err := d.manager.wal.Sync(); err != nil {
		return err
	}
	return d.flushAll(low)
}

func (d *Dataset) flushAll(stamp uint64) error {
	for _, p := range d.partitions {
		p.mu.Lock()
		var err error
		for _, t := range p.allTrees() {
			if err = t.FlushStamped(stamp); err != nil {
				break
			}
		}
		p.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// SearchSecondaryRange performs the paper's secondary-index access path for a
// range predicate lo <= field <= hi: search the secondary index in every
// partition, sort the resulting primary keys, look them up in the primary
// index, and post-validate each record against the predicate (Section 4.4's
// consistency check). Either bound may be nil for an open range.
func (d *Dataset) SearchSecondaryRange(indexName string, lo, hi adm.Value) ([]*adm.Record, error) {
	ix, ok := d.IndexByName(indexName)
	if !ok {
		return nil, fmt.Errorf("storage: no index %q on %q", indexName, d.spec.Name)
	}
	// Secondary lookups are routed to all partitions (the matching data could
	// be in any partition) and produce primary keys.
	recs, err := d.collectAndFetch(func(part int, visit func(pk []byte) bool) error {
		return d.SearchSecondaryRangePartition(part, indexName, lo, hi, visit)
	})
	if err != nil {
		return nil, err
	}
	out := recs[:0]
	for _, rec := range recs {
		// Post-validation select: the record fetched from the primary index
		// must still satisfy the secondary-key predicate.
		v := rec.Get(ix.Fields[0])
		if lo != nil {
			if c, err := adm.Compare(v, lo); err != nil || c < 0 {
				continue
			}
		}
		if hi != nil {
			if c, err := adm.Compare(v, hi); err != nil || c > 0 {
				continue
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

// SearchSecondaryRTree returns the records whose indexed spatial field
// intersects the probe rectangle, using the same secondary→primary access
// path with post-validation.
func (d *Dataset) SearchSecondaryRTree(indexName string, probe adm.Rectangle) ([]*adm.Record, error) {
	ix, ok := d.IndexByName(indexName)
	if !ok || ix.Kind != RTreeIndex {
		return nil, fmt.Errorf("storage: no rtree index %q on %q", indexName, d.spec.Name)
	}
	recs, err := d.collectAndFetch(func(part int, visit func(pk []byte) bool) error {
		return d.SearchRTreePartition(part, indexName, probe, visit)
	})
	if err != nil {
		return nil, err
	}
	out := recs[:0]
	for _, rec := range recs {
		v := rec.Get(ix.Fields[0])
		intersects, err := spatial.Intersect(v, probe)
		if err != nil || !intersects {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// SearchSecondaryInverted returns the records whose indexed text field
// contains the given token (keyword index) or shares at least minMatches
// grams with it (ngram index), post-validated by re-checking the stored text.
func (d *Dataset) SearchSecondaryInverted(indexName, probe string, minMatches int) ([]*adm.Record, error) {
	ix, ok := d.IndexByName(indexName)
	if !ok || (ix.Kind != KeywordIndex && ix.Kind != NGramIndex) {
		return nil, fmt.Errorf("storage: no inverted index %q on %q", indexName, d.spec.Name)
	}
	return d.collectAndFetch(func(part int, visit func(pk []byte) bool) error {
		p := d.partitions[part]
		var pks [][]byte
		p.mu.Lock()
		if t := p.inverted[indexName]; t != nil {
			if ix.Kind == KeywordIndex {
				pks = t.Lookup(probe)
			} else {
				pks = t.LookupAny(invidx.NGramTokenizer(ix.GramLength)(probe), minMatches)
			}
		}
		p.mu.Unlock()
		for _, pk := range pks {
			if !visit(pk) {
				return nil
			}
		}
		return nil
	})
}
