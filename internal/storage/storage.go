// Package storage implements AsterixDB's native storage layer (Sections 2.2
// and 4.3 of the paper): datasets hash-partitioned on primary key across node
// partitions, a primary LSM B+-tree per partition, node-local secondary
// indexes (B+-tree, R-tree, inverted keyword / n-gram) that point at primary
// keys, record-level transactions via the txn package, and the
// secondary-search → sort PKs → primary-search → post-validation access path
// shown in Figure 6.
package storage

import (
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"asterixdb/internal/adm"
	"asterixdb/internal/invidx"
	"asterixdb/internal/lsm"
	"asterixdb/internal/rtree"
	"asterixdb/internal/spatial"
	"asterixdb/internal/txn"
)

// Sentinel errors for catalog lookups. Callers match them with errors.Is;
// the messages read as suffixes of the wrapped "storage: <object> ..." text.
var (
	// ErrExists reports that a dataset or index with the given name exists.
	ErrExists = errors.New("already exists")
	// ErrNotFound reports that a dataset or index does not exist.
	ErrNotFound = errors.New("does not exist")
)

// IndexKind enumerates secondary index kinds.
type IndexKind string

// Secondary index kinds, matching the DDL "type" clause.
const (
	BTreeIndex   IndexKind = "btree"
	RTreeIndex   IndexKind = "rtree"
	KeywordIndex IndexKind = "keyword"
	NGramIndex   IndexKind = "ngram"
)

// IndexSpec describes a secondary index on a dataset.
type IndexSpec struct {
	Name       string
	Fields     []string
	Kind       IndexKind
	GramLength int // ngram indexes only
}

// DatasetSpec describes a dataset to create.
type DatasetSpec struct {
	Name       string
	Type       *adm.RecordType
	PrimaryKey []string
	// Encoding selects the Schema or KeyOnly record layout (Table 2).
	Encoding adm.Encoding
}

// Options configure a storage Manager.
type Options struct {
	// Partitions is the number of storage partitions a dataset is hashed
	// across (the paper used 30 across 10 nodes; we default to 4).
	Partitions int
	// Journaled syncs the WAL on every commit (Table 4's durability setting).
	Journaled bool
	// MemBudget is the per-partition LSM in-memory component budget.
	MemBudget int
	// MergePolicy overrides the default LSM merge policy.
	MergePolicy lsm.MergePolicy
	// EagerDecode makes ScanPartition decode every record to the full Value
	// tree up front instead of emitting lazily-decoded records backed by
	// pooled arenas. The lazy path is the default; this knob exists for the
	// lazy-vs-eager differential tests and as an escape hatch.
	EagerDecode bool
	// Owns restricts which partitions this manager stores records for: a
	// cluster node controller owns a subset of the hash space, and inserts
	// skip records whose primary key hashes to a partition owned by another
	// node. Every partition's trees still exist on disk (non-owned ones stay
	// empty), so scans and index searches work unchanged. Nil owns all.
	Owns func(partition int) bool
}

// DefaultPartitions is the default number of storage partitions.
const DefaultPartitions = 4

// Manager owns every dataset of an AsterixDB instance: it provides dataset
// lifecycle, the shared lock manager and WAL, and crash recovery.
type Manager struct {
	dir  string
	opts Options

	locks *txn.LockManager
	wal   *txn.WAL

	mu       sync.RWMutex
	datasets map[string]*Dataset
}

// NewManager creates (or reopens) a storage manager rooted at dir.
func NewManager(dir string, opts Options) (*Manager, error) {
	if opts.Partitions <= 0 {
		opts.Partitions = DefaultPartitions
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	wal, err := txn.OpenWAL(dir, opts.Journaled)
	if err != nil {
		return nil, err
	}
	return &Manager{
		dir:      dir,
		opts:     opts,
		locks:    txn.NewLockManager(),
		wal:      wal,
		datasets: map[string]*Dataset{},
	}, nil
}

// Partitions returns the partition count used for new datasets.
func (m *Manager) Partitions() int { return m.opts.Partitions }

// CreateDataset creates a dataset with the given spec.
func (m *Manager) CreateDataset(spec DatasetSpec) (*Dataset, error) {
	if spec.Type == nil {
		return nil, fmt.Errorf("storage: dataset %q needs a record type", spec.Name)
	}
	if len(spec.PrimaryKey) == 0 {
		return nil, fmt.Errorf("storage: dataset %q needs a primary key", spec.Name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, exists := m.datasets[spec.Name]; exists {
		return nil, fmt.Errorf("storage: dataset %q: %w", spec.Name, ErrExists)
	}
	ds := &Dataset{
		spec:    spec,
		manager: m,
		ser:     adm.NewSerializer(spec.Type, spec.Encoding),
	}
	for p := 0; p < m.opts.Partitions; p++ {
		dir := filepath.Join(m.dir, spec.Name, fmt.Sprintf("partition-%d", p))
		primary, err := lsm.Open(dir, lsm.Options{MemBudget: m.opts.MemBudget, Policy: m.opts.MergePolicy})
		if err != nil {
			return nil, err
		}
		ds.partitions = append(ds.partitions, &partition{
			idNum:    p,
			primary:  primary,
			btrees:   map[string]*lsm.Tree{},
			rtrees:   map[string]*rtree.Tree{},
			inverted: map[string]*invidx.Index{},
		})
	}
	m.datasets[spec.Name] = ds
	return ds, nil
}

// Dataset returns the named dataset.
func (m *Manager) Dataset(name string) (*Dataset, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ds, ok := m.datasets[name]
	return ds, ok
}

// Datasets lists dataset names in sorted order.
func (m *Manager) Datasets() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.datasets))
	for n := range m.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropDataset removes a dataset and its on-disk files.
func (m *Manager) DropDataset(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.datasets[name]; !ok {
		return fmt.Errorf("storage: dataset %q: %w", name, ErrNotFound)
	}
	delete(m.datasets, name)
	return os.RemoveAll(filepath.Join(m.dir, name))
}

// Recover replays the WAL into the datasets. It must be called after the
// datasets and their indexes have been re-created (the metadata layer does
// this), and before serving queries.
func (m *Manager) Recover() error {
	return m.wal.Replay(func(rec txn.LogRecord) error {
		ds, ok := m.Dataset(rec.Dataset)
		if !ok {
			return nil // dataset since dropped
		}
		switch rec.Kind {
		case txn.OpInsert:
			value, _, err := ds.ser.Decode(rec.Value)
			if err != nil {
				return err
			}
			recValue, ok := value.(*adm.Record)
			if !ok {
				return fmt.Errorf("storage: recovery decoded non-record for %q", rec.Dataset)
			}
			return ds.applyInsert(rec.Partition, rec.Key, recValue, rec.Value)
		case txn.OpDelete:
			return ds.applyDelete(rec.Partition, rec.Key)
		}
		return nil
	})
}

// Checkpoint flushes every dataset partition and truncates the WAL: all
// logged operations are now inside valid disk components.
func (m *Manager) Checkpoint() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for _, ds := range m.datasets {
		if err := ds.Flush(); err != nil {
			return err
		}
	}
	return m.wal.Truncate()
}

// Close closes the WAL. Dataset components need no closing (they are plain
// files rewritten atomically).
func (m *Manager) Close() error { return m.wal.Close() }

// ----------------------------------------------------------------------------
// Dataset
// ----------------------------------------------------------------------------

// Dataset is a stored, partitioned collection of records of one Datatype.
type Dataset struct {
	spec    DatasetSpec
	manager *Manager
	ser     *adm.Serializer

	mu         sync.RWMutex
	indexes    []IndexSpec
	partitions []*partition
}

// partition is one storage partition: a primary LSM B+-tree plus the local
// portion of every secondary index. The mutex is the node-local latch that
// makes individual index operations atomic (Section 4.4).
type partition struct {
	idNum int
	mu    sync.Mutex

	primary  *lsm.Tree
	btrees   map[string]*lsm.Tree
	rtrees   map[string]*rtree.Tree
	inverted map[string]*invidx.Index
}

// Spec returns the dataset's specification.
func (d *Dataset) Spec() DatasetSpec { return d.spec }

// DatasetStats is a point-in-time aggregate of one dataset's LSM state
// across its partitions, for the /metrics endpoints.
type DatasetStats struct {
	// MemBytes is the primary in-memory component footprint.
	MemBytes int
	// Components counts the primary index's disk components; Flushes and
	// Merges are its lifetime flush/merge totals.
	Components int
	Flushes    int
	Merges     int
	// SecondaryComponents counts disk components across the LSM-backed
	// secondary B+-trees (R-tree and inverted indexes are memory-resident).
	SecondaryComponents int
}

// Stats aggregates the dataset's LSM counters under each partition latch.
func (d *Dataset) Stats() DatasetStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var s DatasetStats
	for _, p := range d.partitions {
		p.mu.Lock()
		s.MemBytes += p.primary.MemBytes()
		s.Components += p.primary.Components()
		s.Flushes += p.primary.Flushes()
		s.Merges += p.primary.Merges()
		for _, t := range p.btrees {
			s.SecondaryComponents += t.Components()
		}
		p.mu.Unlock()
	}
	return s
}

// Indexes returns the dataset's secondary index specifications.
func (d *Dataset) Indexes() []IndexSpec {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]IndexSpec, len(d.indexes))
	copy(out, d.indexes)
	return out
}

// IndexByName returns the named secondary index spec.
func (d *Dataset) IndexByName(name string) (IndexSpec, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, ix := range d.indexes {
		if ix.Name == name {
			return ix, true
		}
	}
	return IndexSpec{}, false
}

// IndexOnField returns a secondary index whose first key field is the given
// field and whose kind matches, if one exists. The optimizer uses it to pick
// index access paths.
func (d *Dataset) IndexOnField(field string, kind IndexKind) (IndexSpec, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, ix := range d.indexes {
		if ix.Kind == kind && len(ix.Fields) > 0 && ix.Fields[0] == field {
			return ix, true
		}
	}
	return IndexSpec{}, false
}

// CreateIndex adds a secondary index and bulk-builds it from existing data.
func (d *Dataset) CreateIndex(spec IndexSpec) error {
	d.mu.Lock()
	for _, ix := range d.indexes {
		if ix.Name == spec.Name {
			d.mu.Unlock()
			return fmt.Errorf("storage: index %q on %q: %w", spec.Name, d.spec.Name, ErrExists)
		}
	}
	if spec.Kind == NGramIndex && spec.GramLength <= 0 {
		spec.GramLength = 3
	}
	d.indexes = append(d.indexes, spec)
	d.mu.Unlock()

	// Initialize per-partition structures and backfill from the primary index.
	for _, p := range d.partitions {
		p.mu.Lock()
		switch spec.Kind {
		case BTreeIndex:
			dir := filepath.Join(d.manager.dir, d.spec.Name, fmt.Sprintf("partition-%d", p.idNum), "idx-"+spec.Name)
			tree, err := lsm.Open(dir, lsm.Options{MemBudget: d.manager.opts.MemBudget, Policy: d.manager.opts.MergePolicy})
			if err != nil {
				p.mu.Unlock()
				return err
			}
			p.btrees[spec.Name] = tree
		case RTreeIndex:
			p.rtrees[spec.Name] = rtree.New()
		case KeywordIndex:
			p.inverted[spec.Name] = invidx.New(invidx.KeywordTokenizer)
		case NGramIndex:
			p.inverted[spec.Name] = invidx.New(invidx.NGramTokenizer(spec.GramLength))
		default:
			p.mu.Unlock()
			return fmt.Errorf("storage: unknown index kind %q", spec.Kind)
		}
		var buildErr error
		p.primary.Scan(func(pk, raw []byte) bool {
			val, _, err := d.ser.Decode(raw)
			if err != nil {
				buildErr = err
				return false
			}
			rec := val.(*adm.Record)
			buildErr = p.indexInsert(d, spec, pk, rec)
			return buildErr == nil
		})
		p.mu.Unlock()
		if buildErr != nil {
			return buildErr
		}
	}
	return nil
}

// DropIndex removes a secondary index.
func (d *Dataset) DropIndex(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, ix := range d.indexes {
		if ix.Name == name {
			d.indexes = append(d.indexes[:i], d.indexes[i+1:]...)
			for _, p := range d.partitions {
				p.mu.Lock()
				delete(p.btrees, name)
				delete(p.rtrees, name)
				delete(p.inverted, name)
				p.mu.Unlock()
			}
			return nil
		}
	}
	return fmt.Errorf("storage: index %q on %q: %w", name, d.spec.Name, ErrNotFound)
}

// PrimaryKeyOf extracts and encodes the record's primary key.
func (d *Dataset) PrimaryKeyOf(rec *adm.Record) ([]byte, error) {
	var key []byte
	for _, f := range d.spec.PrimaryKey {
		v := rec.Get(f)
		if adm.IsUnknown(v) {
			return nil, fmt.Errorf("storage: record for %q is missing primary key field %q", d.spec.Name, f)
		}
		key = adm.EncodeKey(key, v)
	}
	return key, nil
}

// partitionFor hash-partitions a primary key across the dataset's partitions.
func (d *Dataset) partitionFor(pk []byte) int {
	h := fnv.New32a()
	h.Write(pk)
	return int(h.Sum32()) % len(d.partitions)
}

// Insert validates and stores a record as one record-level transaction:
// WAL append, primary-key lock, primary and secondary index updates, commit.
func (d *Dataset) Insert(rec *adm.Record) error {
	_, err := d.InsertBatch([]*adm.Record{rec})
	return err
}

// InsertBatch stores several records under a single statement and returns how
// many were stored locally. Each record is still its own record-level
// transaction (the paper's model: an AQL statement that involves multiple
// records involves multiple independent record-level transactions), but the
// WAL is synced once at the end, which is what makes batched inserts cheaper
// in Table 4. Records hashing to a partition this manager does not own
// (Options.Owns) are validated but not stored — another cluster node owns
// them — and do not count toward the returned total.
func (d *Dataset) InsertBatch(recs []*adm.Record) (int, error) {
	stored := 0
	for _, rec := range recs {
		if err := adm.Validate(rec, d.spec.Type); err != nil {
			return stored, fmt.Errorf("storage: %q: %w", d.spec.Name, err)
		}
		pk, err := d.PrimaryKeyOf(rec)
		if err != nil {
			return stored, err
		}
		part := d.partitionFor(pk)
		if owns := d.manager.opts.Owns; owns != nil && !owns(part) {
			continue
		}
		raw, err := d.ser.Encode(nil, rec)
		if err != nil {
			return stored, err
		}
		tid := d.manager.wal.Begin()
		d.manager.locks.Lock(tid, pk)
		err = func() error {
			if err := d.manager.wal.Append(txn.LogRecord{
				Txn: tid, Kind: txn.OpInsert, Dataset: d.spec.Name, Partition: part, Key: pk, Value: raw,
			}); err != nil {
				return err
			}
			if err := d.applyInsert(part, pk, rec, raw); err != nil {
				return err
			}
			// Each record is its own record-level transaction: its commit
			// record is appended here, but the log is forced only once for
			// the whole statement (the Table 4 batching effect).
			return d.manager.wal.CommitNoSync(tid)
		}()
		d.manager.locks.Unlock(tid, pk)
		if err != nil {
			return stored, err
		}
		stored++
	}
	return stored, d.manager.wal.Sync()
}

// applyInsert performs the index updates for an insert on one partition.
func (d *Dataset) applyInsert(part int, pk []byte, rec *adm.Record, raw []byte) error {
	p := d.partitions[part]
	p.mu.Lock()
	defer p.mu.Unlock()
	// If a record with this key already exists its secondary entries must be
	// removed ("out with the old, in with the new").
	if oldRaw, ok := p.primary.Get(pk); ok {
		if oldVal, _, err := d.ser.Decode(oldRaw); err == nil {
			if oldRec, ok := oldVal.(*adm.Record); ok {
				p.indexDeleteAll(d, pk, oldRec)
			}
		}
	}
	if err := p.primary.Insert(pk, raw); err != nil {
		return err
	}
	for _, ix := range d.Indexes() {
		if err := p.indexInsert(d, ix, pk, rec); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the record with the given primary key value(s).
func (d *Dataset) Delete(pkValues ...adm.Value) (bool, error) {
	var pk []byte
	for _, v := range pkValues {
		pk = adm.EncodeKey(pk, v)
	}
	part := d.partitionFor(pk)
	tid := d.manager.wal.Begin()
	d.manager.locks.Lock(tid, pk)
	defer d.manager.locks.Unlock(tid, pk)
	p := d.partitions[part]
	p.mu.Lock()
	_, exists := p.primary.Get(pk)
	p.mu.Unlock()
	if !exists {
		return false, nil
	}
	if err := d.manager.wal.Append(txn.LogRecord{
		Txn: tid, Kind: txn.OpDelete, Dataset: d.spec.Name, Partition: part, Key: pk,
	}); err != nil {
		return false, err
	}
	if err := d.applyDelete(part, pk); err != nil {
		return false, err
	}
	return true, d.manager.wal.Commit(tid)
}

func (d *Dataset) applyDelete(part int, pk []byte) error {
	p := d.partitions[part]
	p.mu.Lock()
	defer p.mu.Unlock()
	if raw, ok := p.primary.Get(pk); ok {
		if val, _, err := d.ser.Decode(raw); err == nil {
			if rec, ok := val.(*adm.Record); ok {
				p.indexDeleteAll(d, pk, rec)
			}
		}
	}
	return p.primary.Delete(pk)
}

// indexInsert adds one record to one secondary index partition.
func (p *partition) indexInsert(d *Dataset, ix IndexSpec, pk []byte, rec *adm.Record) error {
	v := rec.Get(ix.Fields[0])
	if adm.IsUnknown(v) {
		return nil // optional / missing fields are simply not indexed
	}
	switch ix.Kind {
	case BTreeIndex:
		return p.btrees[ix.Name].Insert(secondaryKey(ix, rec, pk), pk)
	case RTreeIndex:
		mbr, err := spatial.MBR(v)
		if err != nil {
			return fmt.Errorf("storage: rtree index %q: %w", ix.Name, err)
		}
		p.rtrees[ix.Name].Insert(rectFromADM(mbr), pk)
		return nil
	case KeywordIndex, NGramIndex:
		if s, ok := v.(adm.String); ok {
			p.inverted[ix.Name].Insert(pk, string(s))
		}
		return nil
	}
	return fmt.Errorf("storage: unknown index kind %q", ix.Kind)
}

// indexDeleteAll removes a record from every secondary index partition.
func (p *partition) indexDeleteAll(d *Dataset, pk []byte, rec *adm.Record) {
	for _, ix := range d.Indexes() {
		v := rec.Get(ix.Fields[0])
		if adm.IsUnknown(v) {
			continue
		}
		switch ix.Kind {
		case BTreeIndex:
			if t := p.btrees[ix.Name]; t != nil {
				t.Delete(secondaryKey(ix, rec, pk))
			}
		case RTreeIndex:
			if t := p.rtrees[ix.Name]; t != nil {
				if mbr, err := spatial.MBR(v); err == nil {
					t.Delete(rectFromADM(mbr), pk)
				}
			}
		case KeywordIndex, NGramIndex:
			if t := p.inverted[ix.Name]; t != nil {
				if s, ok := v.(adm.String); ok {
					t.Delete(pk, string(s))
				}
			}
		}
	}
}

// secondaryKey builds the composite key (secondary key bytes ++ primary key)
// stored in secondary B+-trees; the primary key suffix makes entries unique.
func secondaryKey(ix IndexSpec, rec *adm.Record, pk []byte) []byte {
	var key []byte
	for _, f := range ix.Fields {
		key = adm.EncodeKey(key, rec.Get(f))
	}
	return append(key, pk...)
}

func rectFromADM(r adm.Rectangle) rtree.Rect {
	return rtree.Rect{MinX: r.LowerLeft.X, MinY: r.LowerLeft.Y, MaxX: r.UpperRight.X, MaxY: r.UpperRight.Y}
}

// LookupPK returns the record with the given primary key value(s).
func (d *Dataset) LookupPK(pkValues ...adm.Value) (*adm.Record, bool, error) {
	var pk []byte
	for _, v := range pkValues {
		pk = adm.EncodeKey(pk, v)
	}
	p := d.partitions[d.partitionFor(pk)]
	p.mu.Lock()
	raw, ok := p.primary.Get(pk)
	p.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	val, _, err := d.ser.Decode(raw)
	if err != nil {
		return nil, false, err
	}
	rec, ok := val.(*adm.Record)
	return rec, ok, nil
}

// lookupPKBytes fetches a record by its encoded primary key.
func (d *Dataset) lookupPKBytes(pk []byte) (*adm.Record, bool, error) {
	p := d.partitions[d.partitionFor(pk)]
	p.mu.Lock()
	raw, ok := p.primary.Get(pk)
	p.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	val, _, err := d.ser.Decode(raw)
	if err != nil {
		return nil, false, err
	}
	rec, _ := val.(*adm.Record)
	return rec, rec != nil, nil
}

// PartitionCount returns the number of storage partitions.
func (d *Dataset) PartitionCount() int { return len(d.partitions) }

// FetchPKPartition fetches and decodes the record stored under the encoded
// primary key in one partition. Secondary indexes are partition-local and
// co-located with their records, so an encoded key obtained from partition
// p's secondary index always resolves in partition p's primary index: this is
// the primary-search stage of the compiled per-partition access path.
func (d *Dataset) FetchPKPartition(part int, pk []byte) (*adm.Record, bool, error) {
	if part < 0 || part >= len(d.partitions) {
		return nil, false, fmt.Errorf("storage: partition %d out of range", part)
	}
	p := d.partitions[part]
	p.mu.Lock()
	raw, ok := p.primary.Get(pk)
	p.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	val, _, err := d.ser.Decode(raw)
	if err != nil {
		return nil, false, err
	}
	rec, _ := val.(*adm.Record)
	return rec, rec != nil, nil
}

// SearchSecondaryRangePartition visits the encoded primary keys in one
// partition's secondary B+-tree whose secondary key lies in [lo, hi] (either
// bound may be nil for an open range). Keys are collected under the partition
// latch and visited outside it, so a pipelined consumer may block inside
// visit without wedging the partition. This is the per-partition secondary-
// search stage of the compiled access path; callers sort the keys, fetch the
// records, and post-validate.
func (d *Dataset) SearchSecondaryRangePartition(part int, indexName string, lo, hi adm.Value, visit func(pk []byte) bool) error {
	ix, ok := d.IndexByName(indexName)
	if !ok {
		return fmt.Errorf("storage: no index %q on %q", indexName, d.spec.Name)
	}
	if ix.Kind != BTreeIndex {
		return fmt.Errorf("storage: index %q is not a btree index", indexName)
	}
	if part < 0 || part >= len(d.partitions) {
		return fmt.Errorf("storage: partition %d out of range", part)
	}
	var loKey, hiKey []byte
	if lo != nil {
		loKey = adm.EncodeKey(nil, lo)
	}
	if hi != nil {
		hiKey = append(adm.EncodeKey(nil, hi), 0xFF) // include any PK suffix
	}
	p := d.partitions[part]
	p.mu.Lock()
	var it *lsm.Iterator
	if tree := p.btrees[indexName]; tree != nil {
		it = tree.NewIterator(loKey, hiKey)
	}
	p.mu.Unlock()
	if it == nil {
		return nil
	}
	// One iterator spans the whole search: keys are copied out in chunks
	// under the partition latch and visited outside it (so a pipelined
	// consumer may block inside visit without wedging the partition), and the
	// iterator resumes where it left off — re-seeking via its sequence check
	// if the index was mutated while the latch was released.
	for {
		var pks [][]byte
		done := false
		p.mu.Lock()
		for len(pks) < scanChunk {
			if !it.Next() {
				done = true
				break
			}
			pks = append(pks, append([]byte(nil), it.Value()...))
		}
		p.mu.Unlock()
		for _, pk := range pks {
			if !visit(pk) {
				return nil
			}
		}
		if done {
			return nil
		}
	}
}

// SearchRTreePartition visits the encoded primary keys in one partition's
// R-tree index whose stored MBR intersects the probe rectangle. Like the
// B+-tree variant, keys are visited outside the partition latch. The R-tree
// is an in-memory structure without a resumable cursor, so the candidate set
// is collected in one latch hold — a single traversal, not the per-chunk
// restart the LSM searches used to pay.
func (d *Dataset) SearchRTreePartition(part int, indexName string, probe adm.Rectangle, visit func(pk []byte) bool) error {
	ix, ok := d.IndexByName(indexName)
	if !ok || ix.Kind != RTreeIndex {
		return fmt.Errorf("storage: no rtree index %q on %q", indexName, d.spec.Name)
	}
	if part < 0 || part >= len(d.partitions) {
		return fmt.Errorf("storage: partition %d out of range", part)
	}
	probeRect := rectFromADM(probe)
	p := d.partitions[part]
	var pks [][]byte
	p.mu.Lock()
	if tree := p.rtrees[indexName]; tree != nil {
		tree.SearchIntersect(probeRect, func(e rtree.Entry) bool {
			pks = append(pks, append([]byte(nil), e.Value...))
			return true
		})
	}
	p.mu.Unlock()
	for _, pk := range pks {
		if !visit(pk) {
			return nil
		}
	}
	return nil
}

// SearchInvertedPartition visits the encoded primary keys in one partition's
// inverted index that conservatively match the probe: for a keyword index,
// documents containing every token of the probe; for an ngram index,
// documents containing every (unpadded) gram of the probe. Both candidate
// sets are supersets of the records satisfying tokenized-equality and
// substring (contains) predicates respectively, so callers post-validate.
// A probe shorter than the gram length produces no grams — the index cannot
// bound the candidate set — and is reported as an error.
func (d *Dataset) SearchInvertedPartition(part int, indexName, probe string, visit func(pk []byte) bool) error {
	ix, ok := d.IndexByName(indexName)
	if !ok || (ix.Kind != KeywordIndex && ix.Kind != NGramIndex) {
		return fmt.Errorf("storage: no inverted index %q on %q", indexName, d.spec.Name)
	}
	if part < 0 || part >= len(d.partitions) {
		return fmt.Errorf("storage: partition %d out of range", part)
	}
	var grams []string
	if ix.Kind == NGramIndex {
		grams = substringGrams(probe, ix.GramLength)
		if len(grams) == 0 {
			return fmt.Errorf("storage: inverted probe %q is shorter than gram length %d", probe, ix.GramLength)
		}
	}
	p := d.partitions[part]
	var pks [][]byte
	p.mu.Lock()
	if t := p.inverted[indexName]; t != nil {
		if ix.Kind == KeywordIndex {
			pks = t.Lookup(probe)
		} else {
			pks = t.LookupAll(grams)
		}
	}
	p.mu.Unlock()
	for _, pk := range pks {
		if !visit(pk) {
			return nil
		}
	}
	return nil
}

// substringGrams returns the unpadded lower-cased k-grams of s. Unlike
// fuzzy.NGramTokens it does not pad the ends: every gram of a substring probe
// is then guaranteed to appear among the indexed (padded) grams of any text
// containing the probe, which is what makes the conjunctive candidate set a
// superset of the true contains() matches.
func substringGrams(s string, k int) []string {
	runes := []rune(strings.ToLower(s))
	if k <= 0 || len(runes) < k {
		return nil
	}
	grams := make([]string, 0, len(runes)-k+1)
	for i := 0; i+k <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+k]))
	}
	return grams
}

// SearchSecondaryConjunctive runs the inverted-index access path across every
// partition and materializes the candidate records in primary-key order: the
// reference-interpreter counterpart of the per-partition pipeline the
// compiled jobs run. Callers post-validate the exact predicate.
func (d *Dataset) SearchSecondaryConjunctive(indexName, probe string) ([]*adm.Record, error) {
	return d.collectAndFetch(func(part int, visit func(pk []byte) bool) error {
		return d.SearchInvertedPartition(part, indexName, probe, visit)
	})
}

// collectAndFetch is the materializing half of every secondary access path:
// it runs a per-partition primary-key producer across all partitions, sorts
// the keys (the sort operator between the two searches in Figure 6), and
// fetches the records from the primary indexes. Callers post-validate.
func (d *Dataset) collectAndFetch(producer func(part int, visit func(pk []byte) bool) error) ([]*adm.Record, error) {
	var pks [][]byte
	for part := range d.partitions {
		err := producer(part, func(pk []byte) bool {
			pks = append(pks, pk)
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(pks, func(i, j int) bool { return string(pks[i]) < string(pks[j]) })
	out := make([]*adm.Record, 0, len(pks))
	for _, pk := range pks {
		rec, ok, err := d.lookupPKBytes(pk)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, rec)
		}
	}
	return out, nil
}

// SpatialProbeMBR normalizes an evaluated spatial probe for an R-tree search:
// it reports false for unknown or non-spatial values (the predicate above
// would be false/null everywhere). Both executors share it so the compiled
// path cannot drift from the interpreter oracle.
func SpatialProbeMBR(v adm.Value) (adm.Rectangle, bool) {
	if v == nil || adm.IsUnknown(v) {
		return adm.Rectangle{}, false
	}
	mbr, err := spatial.MBR(v)
	if err != nil {
		return adm.Rectangle{}, false
	}
	return mbr, true
}

// StringProbe normalizes an evaluated inverted-index probe: it reports false
// for unknown or non-string values, which match nothing.
func StringProbe(v adm.Value) (string, bool) {
	s, ok := v.(adm.String)
	return string(s), ok
}

// scanChunk is the number of records decoded per partition-lock acquisition
// during a scan.
const scanChunk = 64

// ScanPartition visits every record in one partition in primary-key order.
// Records are decoded in chunks under the partition lock and the visitor runs
// outside it: a pipelined consumer may block inside visit (on a full dataflow
// channel) without wedging the partition, and two scans of the same partition
// (a compiled self-join) cannot deadlock. One merge iterator spans the whole
// scan — each chunk resumes it instead of restarting a Range from the last
// key, which made long scans quadratic. The scan is still not atomic across
// the partition: records inserted mid-scan with keys beyond the scan cursor
// are visited (the iterator's staleness re-seek preserves exactly the old
// resume-strictly-after-last-key semantics).
// Records arrive as lazily-decoded *adm.LazyRecord values (unless
// Options.EagerDecode) viewing the LSM tree's own value bytes zero-copy:
// the iterator contract guarantees value slices stay readable and are never
// mutated in place, so no per-record copy is made. The slot directory is
// parsed — and the stored bytes validated — under the latch, but field
// decoding is deferred until an operator actually touches a field.
func (d *Dataset) ScanPartition(part int, visit func(adm.Value) bool) error {
	if part < 0 || part >= len(d.partitions) {
		return fmt.Errorf("storage: partition %d out of range", part)
	}
	p := d.partitions[part]
	p.mu.Lock()
	it := p.primary.NewIterator(nil, nil)
	p.mu.Unlock()
	lazy := !d.manager.opts.EagerDecode
	var arena *adm.Arena
	if lazy {
		// The arena only block-allocates LazyRecord headers here; emitted
		// records hold no reference to it. Release is nil-safe, so the eager
		// path threads through.
		arena = adm.AcquireArena()
	}
	defer arena.Release()
	chunk := make([]adm.Value, 0, scanChunk)
	for {
		chunk = chunk[:0]
		var decodeErr error
		done := false
		p.mu.Lock()
		for len(chunk) < scanChunk {
			if !it.Next() {
				done = true
				break
			}
			var val adm.Value
			var err error
			if lazy {
				val, _, err = d.ser.DecodeLazy(it.Value(), arena)
			} else {
				val, _, err = d.ser.Decode(it.Value())
			}
			if err != nil {
				decodeErr = err
				break
			}
			if val.Tag() == adm.TagRecord {
				chunk = append(chunk, val)
			}
		}
		p.mu.Unlock()
		if decodeErr != nil {
			return decodeErr
		}
		for _, rec := range chunk {
			if !visit(rec) {
				return nil
			}
		}
		if done {
			return nil
		}
	}
}

// Scan visits every record in the dataset (all partitions). Partitions are
// visited sequentially; the query runtime parallelizes by scanning partitions
// from separate operator instances instead.
func (d *Dataset) Scan(visit func(*adm.Record) bool) error {
	for part := range d.partitions {
		stop := false
		err := d.ScanPartition(part, func(v adm.Value) bool {
			r, ok := adm.AsRecord(v)
			if !ok {
				return true
			}
			if !visit(r) {
				stop = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
	return nil
}

// Count returns the number of records in the dataset.
func (d *Dataset) Count() (int, error) {
	n := 0
	err := d.Scan(func(*adm.Record) bool { n++; return true })
	return n, err
}

// SizeBytes returns the total encoded size of all records, the quantity
// compared across systems in Table 2.
func (d *Dataset) SizeBytes() (int64, error) {
	var total int64
	for _, p := range d.partitions {
		p.mu.Lock()
		p.primary.Scan(func(_, raw []byte) bool {
			total += int64(len(raw))
			return true
		})
		p.mu.Unlock()
	}
	return total, nil
}

// Flush flushes every partition's in-memory components to disk.
func (d *Dataset) Flush() error {
	for _, p := range d.partitions {
		p.mu.Lock()
		err := p.primary.Flush()
		if err == nil {
			for _, t := range p.btrees {
				if err = t.Flush(); err != nil {
					break
				}
			}
		}
		p.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// SearchSecondaryRange performs the paper's secondary-index access path for a
// range predicate lo <= field <= hi: search the secondary index in every
// partition, sort the resulting primary keys, look them up in the primary
// index, and post-validate each record against the predicate (Section 4.4's
// consistency check). Either bound may be nil for an open range.
func (d *Dataset) SearchSecondaryRange(indexName string, lo, hi adm.Value) ([]*adm.Record, error) {
	ix, ok := d.IndexByName(indexName)
	if !ok {
		return nil, fmt.Errorf("storage: no index %q on %q", indexName, d.spec.Name)
	}
	// Secondary lookups are routed to all partitions (the matching data could
	// be in any partition) and produce primary keys.
	recs, err := d.collectAndFetch(func(part int, visit func(pk []byte) bool) error {
		return d.SearchSecondaryRangePartition(part, indexName, lo, hi, visit)
	})
	if err != nil {
		return nil, err
	}
	out := recs[:0]
	for _, rec := range recs {
		// Post-validation select: the record fetched from the primary index
		// must still satisfy the secondary-key predicate.
		v := rec.Get(ix.Fields[0])
		if lo != nil {
			if c, err := adm.Compare(v, lo); err != nil || c < 0 {
				continue
			}
		}
		if hi != nil {
			if c, err := adm.Compare(v, hi); err != nil || c > 0 {
				continue
			}
		}
		out = append(out, rec)
	}
	return out, nil
}

// SearchSecondaryRTree returns the records whose indexed spatial field
// intersects the probe rectangle, using the same secondary→primary access
// path with post-validation.
func (d *Dataset) SearchSecondaryRTree(indexName string, probe adm.Rectangle) ([]*adm.Record, error) {
	ix, ok := d.IndexByName(indexName)
	if !ok || ix.Kind != RTreeIndex {
		return nil, fmt.Errorf("storage: no rtree index %q on %q", indexName, d.spec.Name)
	}
	recs, err := d.collectAndFetch(func(part int, visit func(pk []byte) bool) error {
		return d.SearchRTreePartition(part, indexName, probe, visit)
	})
	if err != nil {
		return nil, err
	}
	out := recs[:0]
	for _, rec := range recs {
		v := rec.Get(ix.Fields[0])
		intersects, err := spatial.Intersect(v, probe)
		if err != nil || !intersects {
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

// SearchSecondaryInverted returns the records whose indexed text field
// contains the given token (keyword index) or shares at least minMatches
// grams with it (ngram index), post-validated by re-checking the stored text.
func (d *Dataset) SearchSecondaryInverted(indexName, probe string, minMatches int) ([]*adm.Record, error) {
	ix, ok := d.IndexByName(indexName)
	if !ok || (ix.Kind != KeywordIndex && ix.Kind != NGramIndex) {
		return nil, fmt.Errorf("storage: no inverted index %q on %q", indexName, d.spec.Name)
	}
	return d.collectAndFetch(func(part int, visit func(pk []byte) bool) error {
		p := d.partitions[part]
		var pks [][]byte
		p.mu.Lock()
		if t := p.inverted[indexName]; t != nil {
			if ix.Kind == KeywordIndex {
				pks = t.Lookup(probe)
			} else {
				pks = t.LookupAny(invidx.NGramTokenizer(ix.GramLength)(probe), minMatches)
			}
		}
		p.mu.Unlock()
		for _, pk := range pks {
			if !visit(pk) {
				return nil
			}
		}
		return nil
	})
}
