package storage

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"asterixdb/internal/adm"
	"asterixdb/internal/fuzzy"
	"asterixdb/internal/spatial"
)

// consistencyWords is the text vocabulary for the index-consistency workload;
// small enough that keyword and ngram probes hit real posting lists.
var consistencyWords = []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}

// randomMessage builds one record with pseudo-random indexed field values.
func randomMessage(rng *rand.Rand, id int) *adm.Record {
	n := 1 + rng.Intn(4)
	parts := make([]string, n)
	for i := range parts {
		parts[i] = consistencyWords[rng.Intn(len(consistencyWords))]
	}
	return message(id, rng.Intn(20), int64(rng.Intn(100000)), strings.Join(parts, " "),
		rng.Float64()*100, rng.Float64()*100)
}

// scanAll returns every live record keyed by its primary key value.
func scanAll(t *testing.T, ds *Dataset) map[int32]*adm.Record {
	t.Helper()
	out := map[int32]*adm.Record{}
	if err := ds.Scan(func(r *adm.Record) bool {
		out[int32(r.Get("message-id").(adm.Int32))] = r
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// idsOf collects the primary keys of a record slice as a set.
func idsOf(recs []*adm.Record) map[int32]bool {
	out := map[int32]bool{}
	for _, r := range recs {
		out[int32(r.Get("message-id").(adm.Int32))] = true
	}
	return out
}

// assertSameIDs fails unless got and want contain exactly the same keys.
func assertSameIDs(t *testing.T, label string, got, want map[int32]bool) {
	t.Helper()
	for id := range want {
		if !got[id] {
			t.Errorf("%s: index search missed record %d", label, id)
		}
	}
	for id := range got {
		if !want[id] {
			t.Errorf("%s: index search returned record %d that the scan predicate rejects", label, id)
		}
	}
}

// TestSecondaryIndexConsistencyUnderMutation interleaves inserts, overwrites,
// deletes and LSM flushes, then checks that every secondary index returns
// exactly the records a full scan plus the equivalent predicate returns:
// B+-tree range search, R-tree intersection search, keyword token search, and
// the ngram conjunctive candidate search (whose predicate is "contains every
// gram of the probe").
func TestSecondaryIndexConsistencyUnderMutation(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	for _, spec := range []IndexSpec{
		{Name: "tsIdx", Fields: []string{"timestamp"}, Kind: BTreeIndex},
		{Name: "locIdx", Fields: []string{"sender-location"}, Kind: RTreeIndex},
		{Name: "kwIdx", Fields: []string{"message"}, Kind: KeywordIndex},
		{Name: "ngIdx", Fields: []string{"message"}, Kind: NGramIndex, GramLength: 3},
	} {
		if err := ds.CreateIndex(spec); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(11))
	live := map[int32]bool{}
	nextID := 1
	for round := 0; round < 6; round++ {
		// Insert a batch of fresh records.
		var batch []*adm.Record
		for i := 0; i < 60; i++ {
			batch = append(batch, randomMessage(rng, nextID))
			live[int32(nextID)] = true
			nextID++
		}
		if _, err := ds.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		// Overwrite some existing keys with new field values ("out with the
		// old, in with the new": the old secondary entries must disappear).
		for i := 0; i < 10; i++ {
			id := 1 + rng.Intn(nextID-1)
			if !live[int32(id)] {
				continue
			}
			if err := ds.Insert(randomMessage(rng, id)); err != nil {
				t.Fatal(err)
			}
		}
		// Delete some records.
		for i := 0; i < 15; i++ {
			id := 1 + rng.Intn(nextID-1)
			if _, err := ds.Delete(adm.Int32(int32(id))); err != nil {
				t.Fatal(err)
			}
			delete(live, int32(id))
		}
		// Flush every other round so disk components participate.
		if round%2 == 1 {
			if err := ds.Flush(); err != nil {
				t.Fatal(err)
			}
		}

		all := scanAll(t, ds)
		if len(all) != len(live) {
			t.Fatalf("round %d: scan found %d records, want %d", round, len(all), len(live))
		}

		// B+-tree range.
		lo, hi := adm.Datetime(20000), adm.Datetime(70000)
		recs, err := ds.SearchSecondaryRange("tsIdx", lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int32]bool{}
		for id, r := range all {
			ts := r.Get("timestamp")
			if c1, _ := adm.Compare(ts, lo); c1 >= 0 {
				if c2, _ := adm.Compare(ts, hi); c2 <= 0 {
					want[id] = true
				}
			}
		}
		assertSameIDs(t, fmt.Sprintf("round %d btree", round), idsOf(recs), want)

		// R-tree intersection.
		probe := adm.Rectangle{LowerLeft: adm.Point{X: 20, Y: 20}, UpperRight: adm.Point{X: 60, Y: 70}}
		recs, err = ds.SearchSecondaryRTree("locIdx", probe)
		if err != nil {
			t.Fatal(err)
		}
		want = map[int32]bool{}
		for id, r := range all {
			if ok, err := spatial.Intersect(r.Get("sender-location"), probe); err == nil && ok {
				want[id] = true
			}
		}
		assertSameIDs(t, fmt.Sprintf("round %d rtree", round), idsOf(recs), want)

		// Keyword token search: candidates are exactly the records whose
		// token set contains the probe word.
		word := consistencyWords[rng.Intn(len(consistencyWords))]
		recs, err = ds.SearchSecondaryConjunctive("kwIdx", word)
		if err != nil {
			t.Fatal(err)
		}
		want = map[int32]bool{}
		for id, r := range all {
			for _, tok := range fuzzy.WordTokens(string(r.Get("message").(adm.String))) {
				if tok == word {
					want[id] = true
					break
				}
			}
		}
		assertSameIDs(t, fmt.Sprintf("round %d keyword", round), idsOf(recs), want)

		// NGram conjunctive search: candidates are exactly the records whose
		// text contains every (unpadded) gram of the probe — a superset of the
		// contains() matches that the query layer post-validates.
		probeStr := word[:3] + word[1:4]
		recs, err = ds.SearchSecondaryConjunctive("ngIdx", probeStr)
		if err != nil {
			t.Fatal(err)
		}
		grams := substringGrams(probeStr, 3)
		want = map[int32]bool{}
		for id, r := range all {
			text := strings.ToLower(string(r.Get("message").(adm.String)))
			hasAll := true
			for _, g := range grams {
				if !strings.Contains(text, g) {
					hasAll = false
					break
				}
			}
			if hasAll {
				want[id] = true
			}
			// Every true contains() match must be among the candidates.
			if strings.Contains(text, probeStr) && !want[id] {
				t.Errorf("round %d: ngram candidates exclude a true contains match (record %d)", round, id)
			}
		}
		assertSameIDs(t, fmt.Sprintf("round %d ngram", round), idsOf(recs), want)
	}
}

// TestCreateIndexConcurrentWithWriters races CreateIndex against live
// inserts and deletes. The publish ordering must make every record reach
// the new index exactly once: a writer that saw the published spec logs and
// applies its own entries (the trees exist before the spec is visible), and
// a writer that did not is fully applied before the backfill scan runs
// (publish waits out in-flight writers under d.mu). A regression here shows
// up as records missing from the index until the next restart's WAL replay.
func TestCreateIndexConcurrentWithWriters(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	rng := rand.New(rand.NewSource(23))
	for i := 1; i <= 100; i++ {
		if err := ds.Insert(randomMessage(rng, i)); err != nil {
			t.Fatal(err)
		}
	}

	const writers = 4
	const perWriter = 150
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			<-start
			for i := 0; i < perWriter; i++ {
				id := 101 + w*perWriter + i
				if err := ds.Insert(randomMessage(rng, id)); err != nil {
					t.Error(err)
					return
				}
				// Deletes against the preloaded range exercise antimatter
				// racing the backfill scan.
				if i%7 == 0 {
					if _, err := ds.Delete(adm.Int32(int32(1 + rng.Intn(100)))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	close(start)
	for _, spec := range []IndexSpec{
		{Name: "tsIdx", Fields: []string{"timestamp"}, Kind: BTreeIndex},
		{Name: "locIdx", Fields: []string{"sender-location"}, Kind: RTreeIndex},
		{Name: "kwIdx", Fields: []string{"message"}, Kind: KeywordIndex},
	} {
		if err := ds.CreateIndex(spec); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	all := scanAll(t, ds)
	want := map[int32]bool{}
	for id := range all {
		want[id] = true
	}

	recs, err := ds.SearchSecondaryRange("tsIdx", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameIDs(t, "btree full range", idsOf(recs), want)

	probe := adm.Rectangle{LowerLeft: adm.Point{X: -1, Y: -1}, UpperRight: adm.Point{X: 101, Y: 101}}
	recs, err = ds.SearchSecondaryRTree("locIdx", probe)
	if err != nil {
		t.Fatal(err)
	}
	assertSameIDs(t, "rtree full rect", idsOf(recs), want)

	for _, word := range consistencyWords {
		recs, err = ds.SearchSecondaryConjunctive("kwIdx", word)
		if err != nil {
			t.Fatal(err)
		}
		kwWant := map[int32]bool{}
		for id, r := range all {
			for _, tok := range fuzzy.WordTokens(string(r.Get("message").(adm.String))) {
				if tok == word {
					kwWant[id] = true
					break
				}
			}
		}
		assertSameIDs(t, "keyword "+word, idsOf(recs), kwWant)
	}
}

// TestPartitionSearchPrimitivesAgreeWithMaterializedPath checks that the
// per-partition primitives the compiled jobs run on (secondary search
// emitting PKs, partition-local primary fetch) reconstruct exactly the
// records the materializing access path returns.
func TestPartitionSearchPrimitivesAgreeWithMaterializedPath(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	for _, spec := range []IndexSpec{
		{Name: "tsIdx", Fields: []string{"timestamp"}, Kind: BTreeIndex},
		{Name: "locIdx", Fields: []string{"sender-location"}, Kind: RTreeIndex},
		{Name: "kwIdx", Fields: []string{"message"}, Kind: KeywordIndex},
	} {
		if err := ds.CreateIndex(spec); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(23))
	var batch []*adm.Record
	for i := 1; i <= 150; i++ {
		batch = append(batch, randomMessage(rng, i))
	}
	if _, err := ds.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}

	collect := func(search func(part int, visit func(pk []byte) bool) error) map[int32]bool {
		t.Helper()
		got := map[int32]bool{}
		for part := 0; part < ds.PartitionCount(); part++ {
			err := search(part, func(pk []byte) bool {
				rec, ok, err := ds.FetchPKPartition(part, pk)
				if err != nil || !ok {
					t.Fatalf("partition %d: primary fetch failed for secondary key: %v %v", part, ok, err)
				}
				got[int32(rec.Get("message-id").(adm.Int32))] = true
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return got
	}

	lo, hi := adm.Datetime(10000), adm.Datetime(80000)
	recs, err := ds.SearchSecondaryRange("tsIdx", lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(func(part int, visit func([]byte) bool) error {
		return ds.SearchSecondaryRangePartition(part, "tsIdx", lo, hi, visit)
	})
	assertSameIDs(t, "btree partitions", got, idsOf(recs))

	probe := adm.Rectangle{LowerLeft: adm.Point{X: 10, Y: 10}, UpperRight: adm.Point{X: 80, Y: 80}}
	// The per-partition primitive emits candidates (no post-validation), which
	// for point fields and a rectangle probe coincide with the exact matches.
	recs, err = ds.SearchSecondaryRTree("locIdx", probe)
	if err != nil {
		t.Fatal(err)
	}
	got = collect(func(part int, visit func([]byte) bool) error {
		return ds.SearchRTreePartition(part, "locIdx", probe, visit)
	})
	assertSameIDs(t, "rtree partitions", got, idsOf(recs))

	recs, err = ds.SearchSecondaryConjunctive("kwIdx", "delta")
	if err != nil {
		t.Fatal(err)
	}
	got = collect(func(part int, visit func([]byte) bool) error {
		return ds.SearchInvertedPartition(part, "kwIdx", "delta", visit)
	})
	assertSameIDs(t, "keyword partitions", got, idsOf(recs))
}
