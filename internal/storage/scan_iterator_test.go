package storage

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"asterixdb/internal/adm"
)

// This file covers the resumable-iterator scan contract under concurrent
// mutation: a paused ScanPartition (its visitor blocked, the partition latch
// released) must neither deadlock concurrent writers nor violate the
// documented visit semantics — every record present for the whole scan and
// never deleted is visited exactly once, in key order; records inserted ahead
// of the cursor may be visited; records deleted ahead of the cursor are not.

// TestScanPausedUnderMutation drip-feeds a scan through a visitor that blocks
// on an unbuffered channel while a writer goroutine interleaves inserts,
// overwrites, deletes and flushes into the same partition.
func TestScanPausedUnderMutation(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)

	// All records land in one partition so the scan and the mutations
	// genuinely contend on one latch: find ids mapping to partition 0.
	var ids []int
	for id := 1; len(ids) < 400; id++ {
		rec := message(id, id, int64(id), fmt.Sprintf("msg %d", id), 1, 1)
		pk, err := ds.PrimaryKeyOf(rec)
		if err != nil {
			t.Fatal(err)
		}
		if ds.partitionFor(pk) == 0 {
			ids = append(ids, id)
		}
	}
	initial := ids[:200]  // inserted before the scan
	incoming := ids[200:] // inserted while the scan is paused
	for _, id := range initial {
		if err := ds.Insert(message(id, id, int64(id), fmt.Sprintf("msg %d", id), 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a slice of the initial records mid-scan: the victims are spread
	// across the key range so some fall behind and some ahead of the cursor.
	var deleted []int
	for i := 10; i < len(initial); i += 20 {
		deleted = append(deleted, initial[i])
	}

	visited := make(chan int) // visitor hands each id over and blocks
	scanErr := make(chan error, 1)
	go func() {
		scanErr <- ds.ScanPartition(0, func(v adm.Value) bool {
			r, _ := adm.AsRecord(v)
			visited <- int(r.Get("message-id").(adm.Int32))
			return true
		})
	}()

	var mu sync.Mutex
	mutated := false
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		fail := func(err error) bool {
			if err != nil {
				mu.Lock()
				if writerErr == nil {
					writerErr = err
				}
				mu.Unlock()
				return true
			}
			return false
		}
		for _, id := range incoming {
			if fail(ds.Insert(message(id, id, int64(id), "incoming", 1, 1))) {
				return
			}
		}
		for _, id := range deleted {
			if _, err := ds.Delete(adm.Int32(int32(id))); fail(err) {
				return
			}
		}
		if fail(ds.Flush()) {
			return
		}
		mu.Lock()
		mutated = true
		mu.Unlock()
	}()

	seen := map[int]int{}
	var order []int
	timeout := time.After(30 * time.Second)
	drained := false
	for !drained {
		select {
		case id := <-visited:
			seen[id]++
			order = append(order, id)
		case err := <-scanErr:
			if err != nil {
				t.Fatal(err)
			}
			drained = true
		case <-timeout:
			t.Fatal("scan deadlocked against concurrent mutation")
		}
	}
	wg.Wait()
	mu.Lock()
	we, done := writerErr, mutated
	mu.Unlock()
	if we != nil {
		t.Fatal(we)
	}
	if !done {
		t.Fatal("writer did not finish")
	}

	// Exactly-once for every id, in id order (int32 keys encode order-
	// preservingly, and all visited ids share one partition).
	for id, n := range seen {
		if n != 1 {
			t.Errorf("id %d visited %d times", id, n)
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Errorf("visit order violated: %d after %d", order[i], order[i-1])
		}
	}
	// Initial records that were never deleted must all appear.
	isDeleted := map[int]bool{}
	for _, id := range deleted {
		isDeleted[id] = true
	}
	for _, id := range initial {
		if !isDeleted[id] && seen[id] == 0 {
			t.Errorf("surviving record %d missed by the scan", id)
		}
	}
}

// TestSecondarySearchPausedUnderMutation does the same for the chunked
// secondary B+-tree range search: the visitor pauses while the index is
// mutated and flushed, and the resumed iterator must keep its exactly-once,
// in-order contract over the surviving entries.
func TestSecondarySearchPausedUnderMutation(t *testing.T) {
	m := newTestManager(t)
	ds := createMessages(t, m, adm.SchemaEncoding)
	if err := ds.CreateIndex(IndexSpec{Name: "authorIdx", Fields: []string{"author-id"}, Kind: BTreeIndex}); err != nil {
		t.Fatal(err)
	}
	var part0 []int
	for id := 1; len(part0) < 300; id++ {
		rec := message(id, id, int64(id), "m", 1, 1)
		pk, err := ds.PrimaryKeyOf(rec)
		if err != nil {
			t.Fatal(err)
		}
		if ds.partitionFor(pk) == 0 {
			part0 = append(part0, id)
		}
	}
	initial, incoming := part0[:150], part0[150:]
	for _, id := range initial {
		if err := ds.Insert(message(id, id, int64(id), "m", 1, 1)); err != nil {
			t.Fatal(err)
		}
	}

	visited := make(chan []byte)
	searchErr := make(chan error, 1)
	go func() {
		searchErr <- ds.SearchSecondaryRangePartition(0, "authorIdx", nil, nil, func(pk []byte) bool {
			visited <- pk
			return true
		})
	}()
	go func() {
		for _, id := range incoming {
			if err := ds.Insert(message(id, id, int64(id), "m", 1, 1)); err != nil {
				searchErr <- err
				return
			}
		}
		_ = ds.Flush()
	}()

	seen := map[string]int{}
	timeout := time.After(30 * time.Second)
	for {
		select {
		case pk := <-visited:
			seen[string(pk)]++
		case err := <-searchErr:
			if err != nil {
				t.Fatal(err)
			}
			for pk, n := range seen {
				if n != 1 {
					t.Errorf("pk %x visited %d times", pk, n)
				}
			}
			if len(seen) < len(initial) {
				t.Errorf("visited %d pks, want at least the %d initial entries", len(seen), len(initial))
			}
			return
		case <-timeout:
			t.Fatal("secondary search deadlocked against concurrent mutation")
		}
	}
}
