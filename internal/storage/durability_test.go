package storage

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"asterixdb/internal/adm"
)

// reopenWithDDL reopens a manager on dir and re-runs the messages DDL (DDL
// is not journaled), without recovering yet.
func reopenWithDDL(t *testing.T, dir string, specs []IndexSpec) (*Manager, *Dataset) {
	t.Helper()
	m, err := NewManager(dir, Options{Partitions: 3, MemBudget: 4 << 10, Journaled: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	ds := createMessages(t, m, adm.SchemaEncoding)
	for _, spec := range specs {
		if err := ds.CreateIndex(spec); err != nil {
			t.Fatal(err)
		}
	}
	return m, ds
}

// TestSecondaryIndexesSurviveReopen is the tentpole property at the storage
// API level: after a hard close (no checkpoint, no clean shutdown flush),
// reopen + DDL + Recover must restore every access path — primary, B+-tree,
// R-tree, keyword and n-gram — to exactly the committed writes, partly from
// each index's own durable LSM components and partly from bounded WAL replay.
func TestSecondaryIndexesSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	specs := []IndexSpec{
		{Name: "byAuthor", Fields: []string{"author-id"}, Kind: BTreeIndex},
		{Name: "byLoc", Fields: []string{"sender-location"}, Kind: RTreeIndex},
		{Name: "byText", Fields: []string{"message"}, Kind: KeywordIndex},
		{Name: "byGram", Fields: []string{"message"}, Kind: NGramIndex, GramLength: 3},
	}

	m1, err := NewManager(dir, Options{Partitions: 3, MemBudget: 4 << 10, Journaled: true})
	if err != nil {
		t.Fatal(err)
	}
	ds1 := createMessages(t, m1, adm.SchemaEncoding)
	for _, spec := range specs {
		if err := ds1.CreateIndex(spec); err != nil {
			t.Fatal(err)
		}
	}
	texts := []string{"crash safe durability", "torn component", "antimatter entry", "bounded replay"}
	for i := 0; i < 60; i++ {
		if err := ds1.Insert(message(i, i%7, int64(i), texts[i%len(texts)], float64(i%20), float64(i%11))); err != nil {
			t.Fatal(err)
		}
	}
	// Flush part of the history so recovery exercises the skip path, then
	// keep mutating so the WAL holds a suffix for every index.
	if err := ds1.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 60; i < 90; i++ {
		if err := ds1.Insert(message(i, i%7, int64(i), texts[i%len(texts)], float64(i%20), float64(i%11))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 90; i += 9 {
		if _, err := ds1.Delete(adm.Int32(int32(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Upsert: moves records to new secondary keys; the old entries must die.
	if err := ds1.Insert(message(5, 99, 5, "moved elsewhere", 77, 77)); err != nil {
		t.Fatal(err)
	}
	// Abandon m1 without Close: the WAL file stays as the crash left it.

	m2, ds2 := reopenWithDDL(t, dir, specs)
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	st := m2.Stats()
	if st.Recovery.Replayed == 0 || st.Recovery.Skipped == 0 {
		t.Errorf("recovery should both replay the suffix and skip the durable prefix: %+v", st.Recovery)
	}

	// Primary contents.
	want := map[int]string{}
	for i := 0; i < 90; i++ {
		want[i] = texts[i%len(texts)]
	}
	for i := 0; i < 90; i += 9 {
		delete(want, i)
	}
	want[5] = "moved elsewhere"
	count, err := ds2.Count()
	if err != nil || count != len(want) {
		t.Fatalf("Count after recovery = %d (%v), want %d", count, err, len(want))
	}

	// B+-tree path: author 99 only matches the upserted record; author of a
	// deleted record matches nothing stale.
	recs, err := ds2.SearchSecondaryRange("byAuthor", adm.Int32(99), adm.Int32(99))
	if err != nil || len(recs) != 1 || recs[0].Get("message").(adm.String) != "moved elsewhere" {
		t.Fatalf("byAuthor search after recovery = %v, %v", recs, err)
	}

	// R-tree path: the upserted record moved to (77,77); its old location
	// must not resurrect it.
	probe := adm.Rectangle{LowerLeft: adm.Point{X: 76, Y: 76}, UpperRight: adm.Point{X: 78, Y: 78}}
	recs, err = ds2.SearchSecondaryRTree("byLoc", probe)
	if err != nil || len(recs) != 1 || int(recs[0].Get("message-id").(adm.Int32)) != 5 {
		t.Fatalf("byLoc search after recovery = %v, %v", recs, err)
	}

	// Inverted paths, cross-checked against a full scan oracle.
	for _, probe := range []string{"durability", "antimatter", "bounded"} {
		recs, err = ds2.SearchSecondaryConjunctive("byText", probe)
		if err != nil {
			t.Fatal(err)
		}
		got := map[int]bool{}
		for _, r := range recs {
			got[int(r.Get("message-id").(adm.Int32))] = true
		}
		for id, text := range want {
			if want, have := containsWord(text, probe), got[id]; want != have {
				t.Errorf("keyword %q id %d: index=%v scan=%v", probe, id, have, want)
			}
		}
	}
	recs, err = ds2.SearchSecondaryConjunctive("byGram", "antimatter")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		id := int(r.Get("message-id").(adm.Int32))
		if _, live := want[id]; !live {
			t.Errorf("ngram search returned deleted id %d", id)
		}
	}
}

func containsWord(text, word string) bool {
	for _, w := range splitWords(text) {
		if w == word {
			return true
		}
	}
	return false
}

func splitWords(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ' ' {
			if cur != "" {
				out = append(out, cur)
			}
			cur = ""
		} else {
			cur += string(r)
		}
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}

// TestRecoverySkipsFullyDurableHistory: once everything is flushed, replay
// applies nothing (the component stamps gate it out).
func TestRecoverySkipsFullyDurableHistory(t *testing.T) {
	dir := t.TempDir()
	m1, err := NewManager(dir, Options{Partitions: 3, MemBudget: 4 << 10, Journaled: true})
	if err != nil {
		t.Fatal(err)
	}
	ds1 := createMessages(t, m1, adm.SchemaEncoding)
	for i := 0; i < 40; i++ {
		if err := ds1.Insert(message(i, i, int64(i), "x", 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds1.Flush(); err != nil {
		t.Fatal(err)
	}

	m2, ds2 := reopenWithDDL(t, dir, nil)
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	if st := m2.Stats(); st.Recovery.Replayed != 0 {
		t.Errorf("Recovery.Replayed = %d after full flush, want 0 (%+v)", st.Recovery.Replayed, st.Recovery)
	}
	if count, _ := ds2.Count(); count != 40 {
		t.Errorf("Count = %d, want 40", count)
	}
}

// TestCheckpointBoundsReplayAndPersistsMeta: a checkpoint compacts the WAL,
// so recovery decodes only the post-checkpoint suffix; checkpoint counters
// survive restarts via checkpoint.meta.
func TestCheckpointBoundsReplayAndPersistsMeta(t *testing.T) {
	dir := t.TempDir()
	m1, err := NewManager(dir, Options{Partitions: 3, MemBudget: 4 << 10, Journaled: true})
	if err != nil {
		t.Fatal(err)
	}
	ds1 := createMessages(t, m1, adm.SchemaEncoding)
	for i := 0; i < 50; i++ {
		if err := ds1.Insert(message(i, i, int64(i), "pre-checkpoint", 0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := m1.Stats(); st.Checkpoints != 1 || st.LastCheckpointUnix == 0 {
		t.Fatalf("checkpoint counters = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointMetaFile)); err != nil {
		t.Fatalf("checkpoint.meta missing: %v", err)
	}
	const suffixOps = 7
	for i := 100; i < 100+suffixOps; i++ {
		if err := ds1.Insert(message(i, i, int64(i), "post-checkpoint", 0, 0)); err != nil {
			t.Fatal(err)
		}
	}

	m2, ds2 := reopenWithDDL(t, dir, nil)
	if err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	st := m2.Stats()
	if st.Checkpoints != 1 {
		t.Errorf("Checkpoints after reopen = %d, want 1 (checkpoint.meta not reloaded)", st.Checkpoints)
	}
	// Each insert logs one primary record (no secondary indexes here); the
	// compacted log holds only the 7 post-checkpoint operations.
	if st.Recovery.Replayed != suffixOps {
		t.Errorf("Recovery.Replayed = %d, want %d (checkpoint did not bound replay)", st.Recovery.Replayed, suffixOps)
	}
	if count, _ := ds2.Count(); count != 50+suffixOps {
		t.Errorf("Count = %d, want %d", count, 50+suffixOps)
	}
}

// TestCloseDrainsBackgroundWorkers: Manager.Close must drain the scheduler
// and leave zero goroutines behind.
func TestCloseDrainsBackgroundWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	m, err := NewManager(t.TempDir(), Options{Partitions: 2, MemBudget: 1 << 10, FlushWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ds := createMessages(t, m, adm.SchemaEncoding)
	for i := 0; i < 300; i++ {
		if err := ds.Insert(message(i, i, int64(i), "fill the memtable to force background flushes", float64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Background flushes must actually have happened (the writes above blow
	// through the 1 KiB budget many times over).
	if st := m.Stats(); st.BgFlushes == 0 {
		t.Errorf("BgFlushes = 0 after 300 over-budget inserts; scheduler never ran")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines after Close = %d, want <= %d (scheduler leaked workers)", now, before)
	}
}

// TestBackgroundFlushKeepsQueriesCorrect: with the scheduler racing the
// writer, reads must still see exactly the committed data.
func TestBackgroundFlushKeepsQueriesCorrect(t *testing.T) {
	m, err := NewManager(t.TempDir(), Options{Partitions: 2, MemBudget: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	ds := createMessages(t, m, adm.SchemaEncoding)
	if err := ds.CreateIndex(IndexSpec{Name: "byAuthor", Fields: []string{"author-id"}, Kind: BTreeIndex}); err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		if err := ds.Insert(message(i, i%10, int64(i), "background flush torture", float64(i%30), 0)); err != nil {
			t.Fatal(err)
		}
		if i%17 == 0 {
			if recs, err := ds.SearchSecondaryRange("byAuthor", adm.Int32(3), adm.Int32(3)); err != nil || len(recs) != (i+7)/10 {
				t.Fatalf("at i=%d: byAuthor=3 returned %d records (%v), want %d", i, len(recs), err, (i+7)/10)
			}
		}
	}
	if count, err := ds.Count(); err != nil || count != n {
		t.Fatalf("Count = %d, %v", count, err)
	}
}

// TestDropIndexRemovesComponentFiles: dropping an index must delete its
// on-disk LSM directory, not leak it.
func TestDropIndexRemovesComponentFiles(t *testing.T) {
	dir := t.TempDir()
	m, err := NewManager(dir, Options{Partitions: 2, MemBudget: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	ds := createMessages(t, m, adm.SchemaEncoding)
	if err := ds.CreateIndex(IndexSpec{Name: "byAuthor", Fields: []string{"author-id"}, Kind: BTreeIndex}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		ds.Insert(message(i, i, int64(i), "x", 0, 0))
	}
	if err := ds.Flush(); err != nil {
		t.Fatal(err)
	}
	idxDir := filepath.Join(dir, "MugshotMessages", "partition-0", "idx-byAuthor")
	if _, err := os.Stat(idxDir); err != nil {
		t.Fatalf("index dir missing before drop: %v", err)
	}
	if err := ds.DropIndex("byAuthor"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(idxDir); !os.IsNotExist(err) {
		t.Errorf("index dir still present after DropIndex: %v", err)
	}
}
