package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"asterixdb/internal/lsm"
)

// scheduler runs flushes, merges and WAL-size-triggered checkpoints on a
// per-Manager worker pool, so ingest latency is decoupled from component
// maintenance (the paper's background flush/merge threads). Flush work is
// deduplicated per tree; merges follow each flush and run their I/O outside
// the partition latch via lsm.MergePlan, concurrent with resumable
// iterators (whose mutation-sequence re-seek tolerates component churn).
type scheduler struct {
	m *Manager

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []schedTask
	queued map[*lsm.Tree]bool
	// ckptQueued dedups checkpoint requests while one is pending.
	ckptQueued bool
	closed     bool
	inflight   int

	wg sync.WaitGroup

	flushes     atomic.Uint64
	merges      atomic.Uint64
	checkpoints atomic.Uint64

	// firstErr records the first background failure; Manager.Close returns
	// it so background errors cannot vanish silently.
	errOnce  sync.Once
	firstErr error
}

type schedTaskKind int

const (
	taskFlush schedTaskKind = iota
	taskCheckpoint
)

type schedTask struct {
	kind schedTaskKind
	p    *partition
	tree *lsm.Tree
}

// defaultFlushWorkers is the background pool size when Options.FlushWorkers
// is zero.
const defaultFlushWorkers = 2

func newScheduler(m *Manager, workers int) *scheduler {
	if workers <= 0 {
		workers = defaultFlushWorkers
	}
	s := &scheduler{m: m, queued: map[*lsm.Tree]bool{}}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// requestFlush enqueues a flush (followed by a merge check) for one tree.
// Duplicate requests for a tree already queued are dropped; a tree being
// flushed right now is re-queued (it may have grown again).
func (s *scheduler) requestFlush(p *partition, tree *lsm.Tree) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.queued[tree] {
		return
	}
	s.queued[tree] = true
	s.queue = append(s.queue, schedTask{kind: taskFlush, p: p, tree: tree})
	s.cond.Signal()
}

// requestCheckpoint enqueues a WAL-size-triggered checkpoint, deduplicated
// while one is queued or running.
func (s *scheduler) requestCheckpoint() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.ckptQueued {
		return
	}
	s.ckptQueued = true
	s.queue = append(s.queue, schedTask{kind: taskCheckpoint})
	s.cond.Signal()
}

// queueStats reports queue depth and in-flight task count.
func (s *scheduler) queueStats() (depth, inflight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue), s.inflight
}

func (s *scheduler) recordErr(err error) {
	if err == nil {
		return
	}
	s.errOnce.Do(func() { s.firstErr = err })
}

// close drains the scheduler: queued tasks still run, then the workers
// exit. It returns the first background error, if any.
func (s *scheduler) close() error {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.firstErr
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return
		}
		task := s.queue[0]
		s.queue = s.queue[1:]
		if task.kind == taskFlush {
			delete(s.queued, task.tree)
		}
		s.inflight++
		s.mu.Unlock()

		var err error
		switch task.kind {
		case taskFlush:
			err = s.runFlush(task)
		case taskCheckpoint:
			err = s.runCheckpoint()
		}
		s.recordErr(err)

		s.mu.Lock()
		s.inflight--
		s.mu.Unlock()
	}
}

// runFlush flushes one tree under its partition latch, then runs any merges
// the policy asks for, with the merge I/O outside the latch.
func (s *scheduler) runFlush(task schedTask) error {
	low := s.m.wal.LowWater()
	// Force the WAL up to the captured mark before the flush: the stamped
	// component is fsync'd and renamed into place, so under a power failure
	// it can survive while page-cache-only log records (operations and their
	// commits) vanish — recovery would then skip records the component
	// durably contains, diverging the trees of one transaction.
	if err := s.m.wal.Sync(); err != nil {
		return fmt.Errorf("storage: background flush: wal sync: %w", err)
	}
	task.p.mu.Lock()
	err := task.tree.FlushStamped(low)
	task.p.mu.Unlock()
	if err != nil {
		return fmt.Errorf("storage: background flush: %w", err)
	}
	s.flushes.Add(1)
	return s.runMerges(task.p, task.tree)
}

// runMerges repeatedly plans a merge under the latch, executes it outside
// (the inputs are immutable), and installs the result under the latch.
// Queries and the resumable iterators keep running against the partition
// throughout; only the plan and splice steps hold the latch.
func (s *scheduler) runMerges(p *partition, tree *lsm.Tree) error {
	for {
		p.mu.Lock()
		plan, err := tree.PlanMerge()
		p.mu.Unlock()
		if err != nil {
			return fmt.Errorf("storage: background merge plan: %w", err)
		}
		if plan == nil {
			return nil
		}
		if err := plan.Execute(); err != nil {
			p.mu.Lock()
			tree.AbortMerge(plan)
			p.mu.Unlock()
			return fmt.Errorf("storage: background merge: %w", err)
		}
		p.mu.Lock()
		err = tree.InstallMerge(plan)
		p.mu.Unlock()
		if err != nil {
			return fmt.Errorf("storage: background merge install: %w", err)
		}
		s.merges.Add(1)
	}
}

func (s *scheduler) runCheckpoint() error {
	defer func() {
		s.mu.Lock()
		s.ckptQueued = false
		s.mu.Unlock()
	}()
	if err := s.m.Checkpoint(); err != nil {
		return fmt.Errorf("storage: background checkpoint: %w", err)
	}
	s.checkpoints.Add(1)
	return nil
}

// backpressureLimit is the hard in-memory cap as a multiple of the flush
// budget: writers stall (bounded) once a tree is this far past its budget,
// giving the background flush a chance to catch up instead of letting the
// memtable grow without bound.
const backpressureLimit = 2

// backpressureWait is the poll interval while stalled; backpressureMax
// bounds the total stall so a wedged flush cannot hang writers forever.
const (
	backpressureWait = 2 * time.Millisecond
	backpressureMax  = 2 * time.Second
)

// waitForFlush blocks while tree's in-memory component is over the hard
// cap, up to backpressureMax. Called without any locks held.
func (s *scheduler) waitForFlush(p *partition, tree *lsm.Tree, hardCap int) {
	deadline := time.Now().Add(backpressureMax)
	for {
		p.mu.Lock()
		over := tree.MemBytes() >= hardCap
		p.mu.Unlock()
		if !over || time.Now().After(deadline) {
			return
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return
		}
		time.Sleep(backpressureWait)
	}
}
