// Package metrics is a dependency-free metrics registry that renders in
// the Prometheus text exposition format (version 0.0.4). It exists so
// asterixd, asterixcc, and asterixnc can expose a GET /metrics endpoint
// without pulling in the Prometheus client library: the engine only
// needs counters, gauges, histograms, and callback-backed collectors.
//
// Concurrency: all series types are safe for concurrent use. Counter,
// Gauge, and Histogram update through atomics; registration and
// rendering take the registry lock. Callback-backed series (GaugeFunc,
// CounterFunc, Collect) are invoked during rendering while the registry
// lock is held, so callbacks must not register new metrics.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value pair attached to a series.
type Label struct {
	Name  string
	Value string
}

// L builds a Label; it keeps call sites short.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing value.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by v (which may be negative).
func (g *Gauge) Add(v float64) { addFloat(&g.bits, v) }

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// DurationBuckets are the default latency histogram bounds, in seconds.
// They span sub-millisecond index lookups to multi-second spilling scans.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations into cumulative buckets.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // one per bound, plus +Inf at the end
	sumBits atomic.Uint64
	total   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloat(&h.sumBits, v)
	h.total.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// series is one rendered line: a fixed label set plus a value source.
type series struct {
	labels []Label
	value  func() float64
}

// family groups the series sharing one metric name.
type family struct {
	name    string
	typ     string // "counter", "gauge", or "histogram"
	help    string
	series  []*series
	hist    []*histSeries
	collect func(emit func(value float64, labels ...Label))
}

type histSeries struct {
	labels []Label
	h      *Histogram
}

// Registry holds metric families and renders them.
type Registry struct {
	mu     sync.Mutex
	order  []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) familyLocked(name, typ, help string) *family {
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
		}
		return f
	}
	f := &family{name: name, typ: typ, help: help}
	r.byName[name] = f
	r.order = append(r.order, f)
	return f
}

func (r *Registry) addSeries(name, typ, help string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, typ, help)
	f.series = append(f.series, s)
}

// Counter registers (or extends) a counter family and returns the series
// for the given label set.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.addSeries(name, "counter", help, &series{labels: labels, value: c.Value})
	return c
}

// Gauge registers (or extends) a gauge family and returns the series for
// the given label set.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.addSeries(name, "gauge", help, &series{labels: labels, value: g.Value})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.addSeries(name, "gauge", help, &series{labels: labels, value: fn})
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time; fn must be monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.addSeries(name, "counter", help, &series{labels: labels, value: fn})
}

// Histogram registers a histogram series with the given bucket bounds
// (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, "histogram", help)
	f.hist = append(f.hist, &histSeries{labels: labels, h: h})
	return h
}

// Collect registers a callback-backed family for dynamic label sets
// (e.g. one gauge per dataset). fn is invoked at scrape time and calls
// emit once per series.
func (r *Registry) Collect(name, typ, help string, fn func(emit func(value float64, labels ...Label))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, typ, help)
	f.collect = fn
}

// WriteTo renders every family in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.order {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			writeSample(&b, f.name, "", s.labels, s.value())
		}
		for _, hs := range f.hist {
			writeHistogram(&b, f.name, hs)
		}
		if f.collect != nil {
			f.collect(func(value float64, labels ...Label) {
				writeSample(&b, f.name, "", labels, value)
			})
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func writeHistogram(b *strings.Builder, name string, hs *histSeries) {
	var cum uint64
	for i, bound := range hs.h.bounds {
		cum += hs.h.counts[i].Load()
		le := strconv.FormatFloat(bound, 'g', -1, 64)
		writeSample(b, name, "_bucket", append(hs.labels[:len(hs.labels):len(hs.labels)], L("le", le)), float64(cum))
	}
	cum += hs.h.counts[len(hs.h.bounds)].Load()
	writeSample(b, name, "_bucket", append(hs.labels[:len(hs.labels):len(hs.labels)], L("le", "+Inf")), float64(cum))
	writeSample(b, name, "_sum", hs.labels, math.Float64frombits(hs.h.sumBits.Load()))
	writeSample(b, name, "_count", hs.labels, float64(hs.h.total.Load()))
}

func writeSample(b *strings.Builder, name, suffix string, labels []Label, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l.Name)
			b.WriteString(`="`)
			b.WriteString(escapeValue(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte('\n')
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Handler serves the registry in the Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if _, err := r.WriteTo(w); err != nil {
			return // client went away mid-scrape; nothing to clean up
		}
	})
}
