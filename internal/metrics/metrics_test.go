package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total", "Total queries.", L("mode", "sync"), L("status", "success"))
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	g := r.Gauge("active", "Active queries.")
	g.Set(4)
	g.Dec()
	out := render(t, r)
	for _, want := range []string{
		"# HELP queries_total Total queries.",
		"# TYPE queries_total counter",
		`queries_total{mode="sync",status="success"} 3`,
		"# TYPE active gauge",
		"active 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestSharedFamilyRendersOneHeader(t *testing.T) {
	r := NewRegistry()
	r.Counter("q_total", "h", L("mode", "a")).Inc()
	r.Counter("q_total", "h", L("mode", "b")).Add(2)
	out := render(t, r)
	if n := strings.Count(out, "# TYPE q_total counter"); n != 1 {
		t.Errorf("want one TYPE header, got %d:\n%s", n, out)
	}
	if !strings.Contains(out, `q_total{mode="a"} 1`) || !strings.Contains(out, `q_total{mode="b"} 2`) {
		t.Errorf("missing series:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`latency_seconds_bucket{le="0.01"} 1`,
		`latency_seconds_bucket{le="0.1"} 3`,
		`latency_seconds_bucket{le="1"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_sum 5.605`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
}

func TestHistogramBoundaryGoesInBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1})
	h.Observe(1) // le="1" is inclusive in the Prometheus convention
	out := render(t, r)
	if !strings.Contains(out, `lat_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not in its bucket:\n%s", out)
	}
}

func TestFuncsAndCollect(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("mem_bytes", "Mem.", func() float64 { return 42 })
	r.CounterFunc("spills_total", "Spills.", func() float64 { return 7 })
	r.Collect("lsm_components", "gauge", "Per-dataset components.", func(emit func(float64, ...Label)) {
		emit(3, L("dataset", "D"))
		emit(1, L("dataset", `we"ird`))
	})
	out := render(t, r)
	for _, want := range []string{
		"mem_bytes 42",
		"spills_total 7",
		`lsm_components{dataset="D"} 3`,
		`lsm_components{dataset="we\"ird"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("d", "", DurationBuckets)
	g := r.Gauge("g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.003)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("counter=%v gauge=%v hist=%d, want 8000 each", c.Value(), g.Value(), h.Count())
	}
}

func TestMismatchedTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on counter/gauge name collision")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "")
	r.Gauge("m", "")
}
