// LSM persistence for the inverted secondary index. The durable truth is an
// lsm.Tree whose keys are (uvarint token length ‖ token ‖ primary key) with
// nil values: one entry per posting. Lookups are prefix range scans over the
// token — the length prefix makes each token's postings contiguous and
// un-confusable with tokens it prefixes — so, unlike the R-tree, no
// in-memory accelerator is needed and reopening is instant.

package invidx

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"asterixdb/internal/lsm"
)

// EncodeTokenKey builds the LSM key for one posting.
func EncodeTokenKey(token string, pk []byte) []byte {
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(token)))
	key := make([]byte, 0, n+len(token)+len(pk))
	key = append(key, lenBuf[:n]...)
	key = append(key, token...)
	return append(key, pk...)
}

// DecodeTokenKey splits a posting key into token and primary key.
func DecodeTokenKey(key []byte) (string, []byte, error) {
	tokenLen, n := binary.Uvarint(key)
	if n <= 0 || uint64(len(key)-n) < tokenLen {
		return "", nil, fmt.Errorf("invidx: malformed posting key (%d bytes)", len(key))
	}
	token := string(key[n : n+int(tokenLen)])
	return token, key[n+int(tokenLen):], nil
}

// LSM is a persistent inverted index partition. Callers must serialize all
// operations (the storage layer's partition latch), same as lsm.Tree.
type LSM struct {
	tree     *lsm.Tree
	tokenize Tokenizer
}

// OpenLSM creates or reopens a persistent inverted index rooted at dir.
func OpenLSM(dir string, opts lsm.Options, tokenize Tokenizer) (*LSM, error) {
	tree, err := lsm.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	return &LSM{tree: tree, tokenize: tokenize}, nil
}

// Tree exposes the underlying LSM tree for flush/merge scheduling and
// durability watermark queries.
func (ix *LSM) Tree() *lsm.Tree { return ix.tree }

// EntryKeys returns the posting keys a document contributes: one per
// distinct token of text. The storage layer logs exactly these keys to the
// WAL, so recovery applies postings without re-tokenizing.
func (ix *LSM) EntryKeys(docKey []byte, text string) [][]byte {
	return PostingKeys(ix.tokenize, docKey, text)
}

// PostingKeys is EntryKeys for callers that hold a tokenizer but not the
// index itself (the storage layer derives WAL records without the partition
// latch). Tokenizers are pure functions, so this is safe concurrently.
func PostingKeys(tokenize Tokenizer, docKey []byte, text string) [][]byte {
	toks := tokenize(text)
	seen := make(map[string]struct{}, len(toks))
	keys := make([][]byte, 0, len(toks))
	for _, tok := range toks {
		if _, dup := seen[tok]; dup {
			continue
		}
		seen[tok] = struct{}{}
		keys = append(keys, EncodeTokenKey(tok, docKey))
	}
	return keys
}

// Insert indexes text under the given document key.
func (ix *LSM) Insert(docKey []byte, text string) error {
	for _, key := range ix.EntryKeys(docKey, text) {
		if err := ix.tree.Insert(key, nil); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes the document key from every posting list of text's tokens.
func (ix *LSM) Delete(docKey []byte, text string) error {
	for _, key := range ix.EntryKeys(docKey, text) {
		if err := ix.tree.Delete(key); err != nil {
			return err
		}
	}
	return nil
}

// ApplyEntry applies one raw posting entry (as logged in the WAL): an upsert
// or an antimatter delete. Idempotent, for recovery replay.
func (ix *LSM) ApplyEntry(key []byte, antimatter bool) error {
	if antimatter {
		return ix.tree.Delete(key)
	}
	return ix.tree.Insert(key, nil)
}

// scanToken visits the document keys in token's posting range, in key order.
func (ix *LSM) scanToken(token string, visit func(pk []byte) bool) {
	prefix := EncodeTokenKey(token, nil)
	ix.tree.Range(prefix, nil, func(key, _ []byte) bool {
		if !bytes.HasPrefix(key, prefix) {
			return false
		}
		return visit(key[len(prefix):])
	})
}

// Lookup returns the sorted document keys whose text contained the token.
func (ix *LSM) Lookup(token string) [][]byte {
	toks := ix.tokenize(token)
	if len(toks) == 1 {
		var out [][]byte
		ix.scanToken(toks[0], func(pk []byte) bool {
			out = append(out, append([]byte(nil), pk...))
			return true
		})
		return out
	}
	// Multi-token probes (e.g. a phrase run through the keyword tokenizer)
	// return the conjunction of their posting lists.
	return ix.LookupAll(toks)
}

// LookupAll returns the sorted document keys that contain every given token.
func (ix *LSM) LookupAll(tokens []string) [][]byte {
	if len(tokens) == 0 {
		return nil
	}
	acc := ix.postingSet(tokens[0])
	for _, tok := range tokens[1:] {
		if len(acc) == 0 {
			return nil
		}
		next := ix.postingSet(tok)
		for k := range acc {
			if _, ok := next[k]; !ok {
				delete(acc, k)
			}
		}
	}
	return setToKeys(acc)
}

// LookupAny returns the sorted document keys that contain at least
// minMatches of the given tokens. This is the candidate-generation step of
// T-occurrence style fuzzy search: callers verify candidates against the
// real similarity predicate afterwards.
func (ix *LSM) LookupAny(tokens []string, minMatches int) [][]byte {
	if minMatches <= 0 {
		minMatches = 1
	}
	counts := map[string]int{}
	for _, tok := range tokens {
		ix.scanToken(tok, func(pk []byte) bool {
			counts[string(pk)]++
			return true
		})
	}
	set := map[string]struct{}{}
	for k, c := range counts {
		if c >= minMatches {
			set[k] = struct{}{}
		}
	}
	return setToKeys(set)
}

func (ix *LSM) postingSet(token string) map[string]struct{} {
	set := map[string]struct{}{}
	ix.scanToken(token, func(pk []byte) bool {
		set[string(pk)] = struct{}{}
		return true
	})
	return set
}

// Len returns the number of live postings (not documents).
func (ix *LSM) Len() int { return ix.tree.Len() }
