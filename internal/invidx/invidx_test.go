package invidx

import (
	"fmt"
	"testing"
)

func TestKeywordIndex(t *testing.T) {
	ix := New(KeywordTokenizer)
	ix.Insert([]byte("1"), "big data management systems")
	ix.Insert([]byte("2"), "big data analytics")
	ix.Insert([]byte("3"), "parallel database systems")
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
	keys := ix.Lookup("data")
	if len(keys) != 2 || string(keys[0]) != "1" || string(keys[1]) != "2" {
		t.Errorf("Lookup(data) = %q", keys)
	}
	if got := ix.Lookup("nosuchtoken"); got != nil {
		t.Errorf("Lookup of absent token = %q", got)
	}
	// Multi-token lookup is a conjunction.
	keys = ix.Lookup("big systems")
	if len(keys) != 1 || string(keys[0]) != "1" {
		t.Errorf("Lookup(big systems) = %q", keys)
	}
	both := ix.LookupAll([]string{"data", "analytics"})
	if len(both) != 1 || string(both[0]) != "2" {
		t.Errorf("LookupAll = %q", both)
	}
	if got := ix.LookupAll(nil); got != nil {
		t.Errorf("LookupAll(nil) = %q", got)
	}
}

func TestLookupAny(t *testing.T) {
	ix := New(KeywordTokenizer)
	ix.Insert([]byte("a"), "red green blue")
	ix.Insert([]byte("b"), "red yellow")
	ix.Insert([]byte("c"), "purple")
	got := ix.LookupAny([]string{"red", "green", "yellow"}, 2)
	if len(got) != 2 {
		t.Errorf("LookupAny(min 2) = %q", got)
	}
	got = ix.LookupAny([]string{"red"}, 0)
	if len(got) != 2 {
		t.Errorf("LookupAny with min 0 should default to 1, got %q", got)
	}
}

func TestDelete(t *testing.T) {
	ix := New(KeywordTokenizer)
	ix.Insert([]byte("1"), "hello world")
	ix.Insert([]byte("2"), "hello asterix")
	ix.Delete([]byte("1"), "hello world")
	if ix.Len() != 1 {
		t.Errorf("Len after delete = %d", ix.Len())
	}
	if keys := ix.Lookup("world"); keys != nil {
		t.Errorf("Lookup(world) after delete = %q", keys)
	}
	if keys := ix.Lookup("hello"); len(keys) != 1 || string(keys[0]) != "2" {
		t.Errorf("Lookup(hello) after delete = %q", keys)
	}
	// Deleting something that was never inserted is a no-op.
	ix.Delete([]byte("9"), "hello")
	if ix.Len() != 1 {
		t.Errorf("Len after no-op delete = %d", ix.Len())
	}
}

func TestNGramIndex(t *testing.T) {
	ix := New(NGramTokenizer(3))
	ix.Insert([]byte("1"), "tonight")
	ix.Insert([]byte("2"), "tonite")
	ix.Insert([]byte("3"), "tomorrow")
	// Candidate generation for fuzzy search: documents sharing enough 3-grams
	// with the probe include the true fuzzy matches.
	probe := NGramTokenizer(3)("tonight")
	candidates := ix.LookupAny(probe, 3)
	found := map[string]bool{}
	for _, c := range candidates {
		found[string(c)] = true
	}
	if !found["1"] {
		t.Error("exact match missing from candidates")
	}
	if !found["2"] {
		t.Error("fuzzy match 'tonite' missing from candidates")
	}
	if found["3"] {
		t.Error("'tomorrow' should not be a candidate at this threshold")
	}
	if ix.Tokens() == 0 {
		t.Error("Tokens should be non-zero")
	}
}

func TestDuplicateInsert(t *testing.T) {
	ix := New(KeywordTokenizer)
	ix.Insert([]byte("1"), "dup dup dup")
	ix.Insert([]byte("1"), "dup dup dup")
	if ix.Len() != 1 {
		t.Errorf("Len after duplicate insert = %d", ix.Len())
	}
	if keys := ix.Lookup("dup"); len(keys) != 1 {
		t.Errorf("Lookup(dup) = %q", keys)
	}
}

func BenchmarkInsert(b *testing.B) {
	ix := New(KeywordTokenizer)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Insert([]byte(fmt.Sprintf("%d", i)), "the quick brown fox jumps over the lazy dog")
	}
}
