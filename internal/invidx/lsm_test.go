package invidx

import (
	"bytes"
	"fmt"
	"testing"

	"asterixdb/internal/lsm"
)

func TestTokenKeyRoundTrip(t *testing.T) {
	key := EncodeTokenKey("hello", []byte{1, 2, 3})
	tok, pk, err := DecodeTokenKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if tok != "hello" || !bytes.Equal(pk, []byte{1, 2, 3}) {
		t.Fatalf("round trip = %q %v", tok, pk)
	}
	if _, _, err := DecodeTokenKey([]byte{200}); err == nil {
		t.Fatal("malformed key decoded without error")
	}
}

func TestLSMLookupMatchesInMemoryIndex(t *testing.T) {
	docs := []string{
		"the quick brown fox",
		"the lazy dog",
		"quick dogs and lazy foxes",
		"completely unrelated text",
	}
	mem := New(KeywordTokenizer)
	disk, err := OpenLSM(t.TempDir(), lsm.Options{Background: true}, KeywordTokenizer)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range docs {
		pk := []byte(fmt.Sprintf("pk%d", i))
		mem.Insert(pk, d)
		if err := disk.Insert(pk, d); err != nil {
			t.Fatal(err)
		}
	}
	// Delete one doc and flush so lookups span mem + disk components.
	mem.Delete([]byte("pk1"), docs[1])
	if err := disk.Delete([]byte("pk1"), docs[1]); err != nil {
		t.Fatal(err)
	}
	if err := disk.Tree().Flush(); err != nil {
		t.Fatal(err)
	}

	for _, probe := range []string{"quick", "lazy", "the", "missing"} {
		want := mem.Lookup(probe)
		got := disk.Lookup(probe)
		if fmt.Sprint(want) != fmt.Sprint(got) {
			t.Errorf("Lookup(%q): lsm %q, in-memory %q", probe, got, want)
		}
	}
	if w, g := mem.LookupAll([]string{"quick", "lazy"}), disk.LookupAll([]string{"quick", "lazy"}); fmt.Sprint(w) != fmt.Sprint(g) {
		t.Errorf("LookupAll: lsm %q, mem %q", g, w)
	}
	if w, g := mem.LookupAny([]string{"quick", "lazy", "dog"}, 2), disk.LookupAny([]string{"quick", "lazy", "dog"}, 2); fmt.Sprint(w) != fmt.Sprint(g) {
		t.Errorf("LookupAny: lsm %q, mem %q", g, w)
	}
}

func TestLSMPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenLSM(dir, lsm.Options{Background: true}, NGramTokenizer(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert([]byte("a"), "durable"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert([]byte("b"), "volatile"); err != nil {
		t.Fatal(err)
	}
	if err := ix.Tree().Flush(); err != nil {
		t.Fatal(err)
	}

	ix2, err := OpenLSM(dir, lsm.Options{Background: true}, NGramTokenizer(3))
	if err != nil {
		t.Fatal(err)
	}
	got := ix2.LookupAll(NGramTokenizer(3)("durable"))
	if len(got) != 1 || string(got[0]) != "a" {
		t.Fatalf("LookupAll after reopen = %q, want [a]", got)
	}
}
