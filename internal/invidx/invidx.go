// Package invidx implements an in-memory inverted index mapping text tokens
// to the primary keys of the records containing them. It backs AsterixDB's
// "keyword" and "ngram(k)" secondary indexes (Sections 2.2 and 4.3) and the
// indexed fuzzy joins of Section 3.
package invidx

import (
	"sort"

	"asterixdb/internal/fuzzy"
)

// Tokenizer converts a field value into index tokens.
type Tokenizer func(text string) []string

// KeywordTokenizer tokenizes into lower-cased words (the "keyword" index).
func KeywordTokenizer(text string) []string { return fuzzy.WordTokens(text) }

// NGramTokenizer returns a tokenizer producing k-grams (the "ngram(k)" index).
func NGramTokenizer(k int) Tokenizer {
	return func(text string) []string { return fuzzy.NGramTokens(text, k) }
}

// Index is an in-memory inverted index from token to the set of document keys
// (encoded primary keys) that contain it.
type Index struct {
	tokenize Tokenizer
	postings map[string]map[string]struct{}
	docs     int
}

// New returns an empty inverted index using the given tokenizer.
func New(tokenize Tokenizer) *Index {
	return &Index{tokenize: tokenize, postings: map[string]map[string]struct{}{}}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return ix.docs }

// Tokens returns the number of distinct tokens in the index.
func (ix *Index) Tokens() int { return len(ix.postings) }

// Insert indexes text under the given document key.
func (ix *Index) Insert(docKey []byte, text string) {
	key := string(docKey)
	added := false
	for _, tok := range ix.tokenize(text) {
		m, ok := ix.postings[tok]
		if !ok {
			m = map[string]struct{}{}
			ix.postings[tok] = m
		}
		if _, dup := m[key]; !dup {
			m[key] = struct{}{}
			added = true
		}
	}
	if added {
		ix.docs++
	}
}

// Delete removes the document key from every posting list of text's tokens.
func (ix *Index) Delete(docKey []byte, text string) {
	key := string(docKey)
	removed := false
	for _, tok := range ix.tokenize(text) {
		if m, ok := ix.postings[tok]; ok {
			if _, present := m[key]; present {
				delete(m, key)
				removed = true
			}
			if len(m) == 0 {
				delete(ix.postings, tok)
			}
		}
	}
	if removed && ix.docs > 0 {
		ix.docs--
	}
}

// Lookup returns the sorted document keys whose text contained the token.
func (ix *Index) Lookup(token string) [][]byte {
	toks := ix.tokenize(token)
	if len(toks) == 1 {
		return setToKeys(ix.postings[toks[0]])
	}
	// Multi-token probes (e.g. a phrase run through the keyword tokenizer)
	// return the conjunction of their posting lists.
	return ix.LookupAll(toks)
}

// LookupAll returns the sorted document keys that contain every given token.
func (ix *Index) LookupAll(tokens []string) [][]byte {
	if len(tokens) == 0 {
		return nil
	}
	acc := ix.postings[tokens[0]]
	for _, tok := range tokens[1:] {
		next := ix.postings[tok]
		merged := map[string]struct{}{}
		for k := range acc {
			if _, ok := next[k]; ok {
				merged[k] = struct{}{}
			}
		}
		acc = merged
		if len(acc) == 0 {
			return nil
		}
	}
	return setToKeys(acc)
}

// LookupAny returns the sorted document keys that contain at least minMatches
// of the given tokens. This is the candidate-generation step of T-occurrence
// style fuzzy search: callers verify candidates against the real similarity
// predicate afterwards.
func (ix *Index) LookupAny(tokens []string, minMatches int) [][]byte {
	if minMatches <= 0 {
		minMatches = 1
	}
	counts := map[string]int{}
	for _, tok := range tokens {
		for k := range ix.postings[tok] {
			counts[k]++
		}
	}
	set := map[string]struct{}{}
	for k, c := range counts {
		if c >= minMatches {
			set[k] = struct{}{}
		}
	}
	return setToKeys(set)
}

func setToKeys(set map[string]struct{}) [][]byte {
	if len(set) == 0 {
		return nil
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]byte, len(keys))
	for i, k := range keys {
		out[i] = []byte(k)
	}
	return out
}
