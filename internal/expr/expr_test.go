package expr

import (
	"testing"
	"time"

	"asterixdb/internal/adm"
	"asterixdb/internal/aql"
	"asterixdb/internal/temporal"
)

func evalString(t *testing.T, ctx *Context, env Env, src string) adm.Value {
	t.Helper()
	e, err := aql.ParseQuery(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(ctx, env, e)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func fixedCtx() *Context {
	ctx := NewContext()
	ctx.Clock = temporal.FixedClock{T: time.Date(2014, 3, 1, 0, 0, 0, 0, time.UTC)}
	return ctx
}

func TestArithmeticAndComparison(t *testing.T) {
	ctx := fixedCtx()
	cases := map[string]string{
		`1 + 1`:                    "2",
		`1 + 2 * 3`:                "7",
		`10 / 4`:                   "2.5",
		`7 % 3`:                    "1",
		`2 < 3`:                    "true",
		`"abc" = "abc"`:            "true",
		`3 >= 4`:                   "false",
		`1 = null`:                 "null",
		`not(false)`:               "true",
		`if (1 < 2) then 7 else 8`: "7",
	}
	for src, want := range cases {
		got := evalString(t, ctx, Env{}, src)
		// Normalize numeric renderings: 2 may render with an i64 suffix.
		s := got.String()
		if s != want && s != want+"i64" {
			t.Errorf("%s = %s, want %s", src, s, want)
		}
	}
}

func TestFieldAccessAndConstructors(t *testing.T) {
	ctx := fixedCtx()
	rec := adm.NewRecord(
		adm.Field{Name: "name", Value: adm.String("Ann")},
		adm.Field{Name: "address", Value: adm.NewRecord(adm.Field{Name: "zip", Value: adm.String("98765")})},
	)
	env := Env{"u": rec}
	if got := evalString(t, ctx, env, `$u.address.zip`); got.(adm.String) != "98765" {
		t.Errorf("nested field access = %v", got)
	}
	if got := evalString(t, ctx, env, `$u.nosuch`); got.Tag() != adm.TagMissing {
		t.Errorf("missing field = %v", got)
	}
	v := evalString(t, ctx, env, `{ "n": $u.name, "tags": {{ "a", "b" }}, "list": [1, 2] }`)
	out := v.(*adm.Record)
	if out.Get("n").(adm.String) != "Ann" {
		t.Errorf("record constructor = %v", out)
	}
	if len(out.Get("tags").(*adm.UnorderedList).Items) != 2 {
		t.Error("bag constructor wrong")
	}
}

func TestBuiltinsAndUDF(t *testing.T) {
	ctx := fixedCtx()
	if got := evalString(t, ctx, Env{}, `string-length("hello")`); mustInt(got) != 5 {
		t.Errorf("string-length = %v", got)
	}
	if got := evalString(t, ctx, Env{}, `count([1, 2, 3])`); mustInt(got) != 3 {
		t.Errorf("count = %v", got)
	}
	if got := evalString(t, ctx, Env{}, `avg([2, 4])`); got.(adm.Double) != 3 {
		t.Errorf("avg = %v", got)
	}
	// AQL null semantics vs SQL semantics.
	if got := evalString(t, ctx, Env{}, `avg([2, null, 4])`); got.Tag() != adm.TagNull {
		t.Errorf("avg with null = %v", got)
	}
	if got := evalString(t, ctx, Env{}, `sql-avg([2, null, 4])`); got.(adm.Double) != 3 {
		t.Errorf("sql-avg with null = %v", got)
	}
	if got := evalString(t, ctx, Env{}, `edit-distance("kitten", "sitting")`); mustInt(got) != 3 {
		t.Errorf("edit-distance = %v", got)
	}
	if got := evalString(t, ctx, Env{}, `spatial-distance(create-point(0.0, 0.0), create-point(3.0, 4.0))`); got.(adm.Double) != 5 {
		t.Errorf("spatial-distance = %v", got)
	}
	if got := evalString(t, ctx, Env{}, `current-datetime()`); got.Tag() != adm.TagDatetime {
		t.Errorf("current-datetime = %v", got)
	}
	// Datetime arithmetic with durations.
	if got := evalString(t, ctx, Env{}, `datetime("2014-01-31T00:00:00") - duration("P30D")`); got.(adm.Datetime).String() != `datetime("2014-01-01T00:00:00.000")` {
		t.Errorf("datetime - duration = %v", got)
	}
	// UDFs.
	body, err := aql.ParseQuery(`$x + 1`)
	if err != nil {
		t.Fatal(err)
	}
	ctx.Functions["incr"] = UserFunction{Params: []string{"x"}, Body: body}
	if got := evalString(t, ctx, Env{}, `incr(41)`); mustInt(got) != 42 {
		t.Errorf("UDF = %v", got)
	}
	if _, err := Eval(ctx, Env{}, &aql.CallExpr{Func: "no-such-function"}); err == nil {
		t.Error("unknown function should error")
	}
}

func TestQuantifiersAndFuzzy(t *testing.T) {
	ctx := fixedCtx()
	env := Env{"list": &adm.OrderedList{Items: []adm.Value{adm.Int32(1), adm.Int32(2), adm.Int32(3)}}}
	if got := evalString(t, ctx, env, `some $x in $list satisfies $x > 2`); !adm.Truthy(got) {
		t.Error("some should hold")
	}
	if got := evalString(t, ctx, env, `every $x in $list satisfies $x > 2`); adm.Truthy(got) {
		t.Error("every should not hold")
	}
	ctx.SimFunction, ctx.SimThreshold = "edit-distance", 3
	if got := evalString(t, ctx, Env{}, `"tonight" ~= "tonite"`); !adm.Truthy(got) {
		t.Error("edit-distance fuzzy match should hold")
	}
	ctx.SimFunction, ctx.SimThreshold = "jaccard", 0.3
	env2 := Env{
		"a": &adm.UnorderedList{Items: []adm.Value{adm.String("x"), adm.String("y")}},
		"b": &adm.UnorderedList{Items: []adm.Value{adm.String("y"), adm.String("z")}},
	}
	if got := evalString(t, ctx, env2, `$a ~= $b`); !adm.Truthy(got) {
		t.Error("jaccard fuzzy match should hold at 0.3")
	}
}

func TestFLWOREvaluation(t *testing.T) {
	ctx := fixedCtx()
	ctx.Datasets = func(_, name string) ([]*adm.Record, error) {
		var out []*adm.Record
		for i := 1; i <= 10; i++ {
			out = append(out, adm.NewRecord(
				adm.Field{Name: "id", Value: adm.Int32(int32(i))},
				adm.Field{Name: "grp", Value: adm.Int32(int32(i % 2))},
			))
		}
		return out, nil
	}
	e, err := aql.ParseQuery(`
for $x in dataset Nums
where $x.id > 4
group by $g := $x.grp with $x
let $cnt := count($x)
order by $g
return { "grp": $g, "cnt": $cnt };`)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := EvalFLWOR(ctx, Env{}, e.(*aql.FLWORExpr))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 {
		t.Fatalf("FLWOR returned %d groups", len(vals))
	}
	first := vals[0].(*adm.Record)
	if mustInt(first.Get("grp")) != 0 || mustInt(first.Get("cnt")) != 3 {
		t.Errorf("first group = %v", first)
	}
	// Positional variables.
	e2, _ := aql.ParseQuery(`for $x at $i in [ "a", "b", "c" ] where $i >= 2 return $i;`)
	vals, err = EvalFLWOR(ctx, Env{}, e2.(*aql.FLWORExpr))
	if err != nil || len(vals) != 2 {
		t.Fatalf("positional FLWOR = %v, %v", vals, err)
	}
	// Limit with offset.
	e3, _ := aql.ParseQuery(`for $x in [1, 2, 3, 4, 5] limit 2 offset 1 return $x;`)
	vals, err = EvalFLWOR(ctx, Env{}, e3.(*aql.FLWORExpr))
	if err != nil || len(vals) != 2 || mustInt(vals[0]) != 2 {
		t.Fatalf("limit/offset FLWOR = %v, %v", vals, err)
	}
}

func TestErrorsAndUnknowns(t *testing.T) {
	ctx := fixedCtx()
	if _, err := Eval(ctx, Env{}, &aql.VariableRef{Name: "nope"}); err == nil {
		t.Error("unbound variable should error")
	}
	if _, err := Eval(ctx, Env{}, &aql.DatasetRef{Name: "D"}); err == nil {
		t.Error("dataset ref without reader should error")
	}
	if got := evalString(t, ctx, Env{}, `1 / 0`); got.Tag() != adm.TagNull {
		t.Errorf("division by zero = %v", got)
	}
	if got := evalString(t, ctx, Env{}, `is-null(null)`); !adm.Truthy(got) {
		t.Error("is-null(null) should be true")
	}
}

func mustInt(v adm.Value) int64 {
	n, _ := adm.NumericAsInt64(v)
	return n
}
