// Package expr evaluates AQL expressions over ADM values. It provides the
// built-in function library (string, temporal, spatial, fuzzy, aggregate
// functions from Table 1), the semantics of the fuzzy ~= operator driven by
// the simfunction/simthreshold prologue parameters, quantified expressions,
// and full FLWOR evaluation for nested subqueries (AsterixDB's subplan
// operator). The query runtime's physical operators call into this package to
// evaluate their predicates, projections, and aggregates.
package expr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"asterixdb/internal/adm"
	"asterixdb/internal/aql"
	"asterixdb/internal/fuzzy"
	"asterixdb/internal/spatial"
	"asterixdb/internal/temporal"
)

// DatasetReader resolves a dataset reference to its records; the engine wires
// it to the storage layer (and to external datasets).
type DatasetReader func(dataverse, name string) ([]*adm.Record, error)

// UserFunction is a user-defined function (Query 8): parameter names plus a
// body expression.
type UserFunction struct {
	Params []string
	Body   aql.Expr
}

// Context carries everything expression evaluation needs beyond the variable
// bindings: the dataset reader for nested FLWORs, registered UDFs, the clock
// behind current-datetime(), and the fuzzy-matching prologue settings.
type Context struct {
	Datasets  DatasetReader
	Functions map[string]UserFunction
	Clock     temporal.Clock
	// SimFunction is "edit-distance" or "jaccard"; SimThreshold its threshold.
	SimFunction  string
	SimThreshold float64
}

// NewContext returns a context with the system clock and Jaccard 0.5 fuzzy
// defaults (matching AsterixDB's defaults).
func NewContext() *Context {
	return &Context{
		Functions:    map[string]UserFunction{},
		Clock:        temporal.SystemClock{},
		SimFunction:  "jaccard",
		SimThreshold: 0.5,
	}
}

// Env is a set of variable bindings.
type Env map[string]adm.Value

// With returns a copy of the environment with one extra binding.
func (e Env) With(name string, v adm.Value) Env {
	out := make(Env, len(e)+1)
	for k, val := range e {
		out[k] = val
	}
	out[name] = v
	return out
}

// Eval evaluates an AQL expression under the given bindings.
func Eval(ctx *Context, env Env, e aql.Expr) (adm.Value, error) {
	switch x := e.(type) {
	case *aql.Literal:
		return x.Value, nil
	case *aql.VariableRef:
		v, ok := env[x.Name]
		if !ok {
			return nil, fmt.Errorf("expr: unbound variable $%s", x.Name)
		}
		return v, nil
	case *aql.FieldAccess:
		base, err := Eval(ctx, env, x.Base)
		if err != nil {
			return nil, err
		}
		return fieldOf(base, x.Field), nil
	case *aql.IndexAccess:
		return evalIndexAccess(ctx, env, x)
	case *aql.RecordConstructor:
		rec := &adm.Record{}
		for _, f := range x.Fields {
			v, err := Eval(ctx, env, f.Value)
			if err != nil {
				return nil, err
			}
			rec.Fields = append(rec.Fields, adm.Field{Name: f.Name, Value: v})
		}
		return rec, nil
	case *aql.ListConstructor:
		items := make([]adm.Value, 0, len(x.Items))
		for _, it := range x.Items {
			v, err := Eval(ctx, env, it)
			if err != nil {
				return nil, err
			}
			items = append(items, v)
		}
		if x.Ordered {
			return &adm.OrderedList{Items: items}, nil
		}
		return &adm.UnorderedList{Items: items}, nil
	case *aql.BinaryExpr:
		return evalBinary(ctx, env, x)
	case *aql.UnaryExpr:
		return evalUnary(ctx, env, x)
	case *aql.QuantifiedExpr:
		return evalQuantified(ctx, env, x)
	case *aql.IfExpr:
		cond, err := Eval(ctx, env, x.Cond)
		if err != nil {
			return nil, err
		}
		if adm.Truthy(cond) {
			return Eval(ctx, env, x.Then)
		}
		return Eval(ctx, env, x.Else)
	case *aql.CallExpr:
		return evalCall(ctx, env, x)
	case *aql.DatasetRef:
		return evalDatasetRef(ctx, x)
	case *aql.FLWORExpr:
		items, err := evalFLWORList(ctx, env, x)
		if err != nil {
			return nil, err
		}
		return &adm.OrderedList{Items: items}, nil
	}
	return nil, fmt.Errorf("expr: cannot evaluate %T", e)
}

// EvalBool evaluates a predicate expression; NULL/MISSING and non-booleans
// evaluate to false, matching AQL's where-clause semantics.
func EvalBool(ctx *Context, env Env, e aql.Expr) (bool, error) {
	v, err := Eval(ctx, env, e)
	if err != nil {
		return false, err
	}
	return adm.Truthy(v), nil
}

func evalDatasetRef(ctx *Context, ref *aql.DatasetRef) (adm.Value, error) {
	if ctx.Datasets == nil {
		return nil, fmt.Errorf("expr: no dataset reader configured for dataset %s", ref.Name)
	}
	recs, err := ctx.Datasets(ref.Dataverse, ref.Name)
	if err != nil {
		return nil, err
	}
	items := make([]adm.Value, len(recs))
	for i, r := range recs {
		items[i] = r
	}
	return &adm.OrderedList{Items: items}, nil
}

func evalIndexAccess(ctx *Context, env Env, x *aql.IndexAccess) (adm.Value, error) {
	base, err := Eval(ctx, env, x.Base)
	if err != nil {
		return nil, err
	}
	idx, err := Eval(ctx, env, x.Index)
	if err != nil {
		return nil, err
	}
	n, ok := adm.NumericAsInt64(idx)
	if !ok {
		return adm.Null{}, nil
	}
	items, ok := listItems(base)
	if !ok || n < 0 || int(n) >= len(items) {
		return adm.Missing{}, nil
	}
	return items[n], nil
}

// FieldOf resolves a field access on a value with the evaluator's exact
// semantics (records resolve the field, everything else is MISSING). The
// translator's direct-projection fast path uses it to skip environment
// binding and expression dispatch for `$x.field` return clauses.
func FieldOf(v adm.Value, field string) adm.Value { return fieldOf(v, field) }

func fieldOf(v adm.Value, field string) adm.Value {
	switch rec := v.(type) {
	case *adm.Record:
		return rec.Get(field)
	case *adm.LazyRecord:
		// The hot path: resolve one field out of the byte slab without
		// materializing the record.
		return rec.Get(field)
	}
	return adm.Missing{}
}

func listItems(v adm.Value) ([]adm.Value, bool) {
	switch l := v.(type) {
	case *adm.OrderedList:
		return l.Items, true
	case *adm.UnorderedList:
		return l.Items, true
	}
	return nil, false
}

// IterationItems returns the items a for-clause iterates for a source value:
// the elements of a list, nothing for NULL/MISSING, or the value itself as a
// singleton. The compiled unnest and subplan operators share it so their
// semantics cannot drift from the interpreter's for-clause.
func IterationItems(v adm.Value) []adm.Value {
	if items, ok := listItems(v); ok {
		return items
	}
	if adm.IsUnknown(v) {
		return nil
	}
	return []adm.Value{v}
}

// ----------------------------------------------------------------------------
// Operators
// ----------------------------------------------------------------------------

func evalBinary(ctx *Context, env Env, x *aql.BinaryExpr) (adm.Value, error) {
	// and/or short-circuit.
	switch x.Op {
	case aql.OpAnd:
		l, err := EvalBool(ctx, env, x.Left)
		if err != nil {
			return nil, err
		}
		if !l {
			return adm.Boolean(false), nil
		}
		r, err := EvalBool(ctx, env, x.Right)
		if err != nil {
			return nil, err
		}
		return adm.Boolean(r), nil
	case aql.OpOr:
		l, err := EvalBool(ctx, env, x.Left)
		if err != nil {
			return nil, err
		}
		if l {
			return adm.Boolean(true), nil
		}
		r, err := EvalBool(ctx, env, x.Right)
		if err != nil {
			return nil, err
		}
		return adm.Boolean(r), nil
	}
	left, err := Eval(ctx, env, x.Left)
	if err != nil {
		return nil, err
	}
	right, err := Eval(ctx, env, x.Right)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case aql.OpEq, aql.OpNeq, aql.OpLt, aql.OpLe, aql.OpGt, aql.OpGe:
		return evalComparison(x.Op, left, right)
	case aql.OpAdd, aql.OpSub, aql.OpMul, aql.OpDiv, aql.OpMod:
		return evalArithmetic(x.Op, left, right)
	case aql.OpFuzzyEq:
		return evalFuzzyEq(ctx, left, right)
	}
	return nil, fmt.Errorf("expr: unsupported operator %q", x.Op)
}

func evalComparison(op aql.BinaryOp, left, right adm.Value) (adm.Value, error) {
	if adm.IsUnknown(left) || adm.IsUnknown(right) {
		return adm.Null{}, nil
	}
	c, err := adm.Compare(left, right)
	if err != nil {
		return adm.Null{}, nil
	}
	switch op {
	case aql.OpEq:
		return adm.Boolean(c == 0), nil
	case aql.OpNeq:
		return adm.Boolean(c != 0), nil
	case aql.OpLt:
		return adm.Boolean(c < 0), nil
	case aql.OpLe:
		return adm.Boolean(c <= 0), nil
	case aql.OpGt:
		return adm.Boolean(c > 0), nil
	case aql.OpGe:
		return adm.Boolean(c >= 0), nil
	}
	return adm.Null{}, nil
}

func evalArithmetic(op aql.BinaryOp, left, right adm.Value) (adm.Value, error) {
	if adm.IsUnknown(left) || adm.IsUnknown(right) {
		return adm.Null{}, nil
	}
	// Datetime/date/duration arithmetic.
	if left.Tag().IsTemporal() || right.Tag().IsTemporal() {
		return evalTemporalArithmetic(op, left, right)
	}
	l, lok := adm.NumericAsDouble(left)
	r, rok := adm.NumericAsDouble(right)
	if !lok || !rok {
		return nil, fmt.Errorf("expr: arithmetic on non-numeric values %s and %s", left.Tag(), right.Tag())
	}
	bothInt := isIntTag(left.Tag()) && isIntTag(right.Tag())
	var out float64
	switch op {
	case aql.OpAdd:
		out = l + r
	case aql.OpSub:
		out = l - r
	case aql.OpMul:
		out = l * r
	case aql.OpDiv:
		if r == 0 {
			return adm.Null{}, nil
		}
		out = l / r
		bothInt = false
	case aql.OpMod:
		if r == 0 {
			return adm.Null{}, nil
		}
		li, _ := adm.NumericAsInt64(left)
		ri, _ := adm.NumericAsInt64(right)
		return adm.Int64(li % ri), nil
	}
	if bothInt {
		return adm.Int64(int64(out)), nil
	}
	return adm.Double(out), nil
}

func isIntTag(t adm.TypeTag) bool {
	switch t {
	case adm.TagInt8, adm.TagInt16, adm.TagInt32, adm.TagInt64:
		return true
	}
	return false
}

func evalTemporalArithmetic(op aql.BinaryOp, left, right adm.Value) (adm.Value, error) {
	dur, isDur := asDuration(right)
	switch op {
	case aql.OpAdd:
		if isDur {
			return temporal.AddDuration(left, dur)
		}
		if ld, ok := asDuration(left); ok {
			return temporal.AddDuration(right, ld)
		}
	case aql.OpSub:
		if isDur {
			return temporal.SubtractDuration(left, dur)
		}
		if left.Tag() == right.Tag() {
			d, err := temporal.Subtract(left, right)
			if err != nil {
				return nil, err
			}
			return d, nil
		}
	}
	return nil, fmt.Errorf("expr: unsupported temporal arithmetic %s %s %s", left.Tag(), op, right.Tag())
}

func asDuration(v adm.Value) (adm.Duration, bool) {
	switch d := v.(type) {
	case adm.Duration:
		return d, true
	case adm.YearMonthDuration:
		return adm.Duration{Months: int32(d)}, true
	case adm.DayTimeDuration:
		return adm.Duration{Millis: int64(d)}, true
	}
	return adm.Duration{}, false
}

func evalUnary(ctx *Context, env Env, x *aql.UnaryExpr) (adm.Value, error) {
	v, err := Eval(ctx, env, x.Operand)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "not":
		if adm.IsUnknown(v) {
			return adm.Null{}, nil
		}
		return adm.Boolean(!adm.Truthy(v)), nil
	case "-":
		d, ok := adm.NumericAsDouble(v)
		if !ok {
			return nil, fmt.Errorf("expr: cannot negate %s", v.Tag())
		}
		if isIntTag(v.Tag()) {
			n, _ := adm.NumericAsInt64(v)
			return adm.Int64(-n), nil
		}
		return adm.Double(-d), nil
	}
	return nil, fmt.Errorf("expr: unknown unary operator %q", x.Op)
}

func evalQuantified(ctx *Context, env Env, x *aql.QuantifiedExpr) (adm.Value, error) {
	src, err := Eval(ctx, env, x.Source)
	if err != nil {
		return nil, err
	}
	items, ok := listItems(src)
	if !ok {
		if adm.IsUnknown(src) {
			items = nil
		} else {
			items = []adm.Value{src}
		}
	}
	for _, item := range items {
		sat, err := EvalBool(ctx, env.With(x.Var, item), x.Satisfies)
		if err != nil {
			return nil, err
		}
		if x.Every && !sat {
			return adm.Boolean(false), nil
		}
		if !x.Every && sat {
			return adm.Boolean(true), nil
		}
	}
	return adm.Boolean(x.Every), nil
}

// evalFuzzyEq implements ~= with the context's simfunction/simthreshold.
func evalFuzzyEq(ctx *Context, left, right adm.Value) (adm.Value, error) {
	if adm.IsUnknown(left) || adm.IsUnknown(right) {
		return adm.Null{}, nil
	}
	switch ctx.SimFunction {
	case "edit-distance":
		ls, lok := left.(adm.String)
		rs, rok := right.(adm.String)
		if !lok || !rok {
			return adm.Boolean(false), nil
		}
		threshold := int(ctx.SimThreshold)
		ok, _ := fuzzy.EditDistanceCheck(string(ls), string(rs), threshold)
		return adm.Boolean(ok), nil
	case "jaccard":
		sim, err := fuzzy.SimilarityJaccard(left, right)
		if err != nil {
			return adm.Boolean(false), nil
		}
		return adm.Boolean(sim >= ctx.SimThreshold), nil
	}
	return nil, fmt.Errorf("expr: unknown simfunction %q", ctx.SimFunction)
}

// ----------------------------------------------------------------------------
// FLWOR evaluation (nested subqueries / subplans)
// ----------------------------------------------------------------------------

// EvalFLWOR evaluates a FLWOR expression and returns the sequence of returned
// values. The engine uses it for correlated subqueries appearing inside
// return clauses (the paper's nested left outer-join, Query 4) and as the
// reference implementation the optimized physical plans must agree with.
func EvalFLWOR(ctx *Context, env Env, fl *aql.FLWORExpr) ([]adm.Value, error) {
	return evalFLWORList(ctx, env, fl)
}

func evalFLWORList(ctx *Context, env Env, fl *aql.FLWORExpr) ([]adm.Value, error) {
	envs := []Env{env}
	for _, clause := range fl.Clauses {
		var err error
		envs, err = applyClause(ctx, envs, clause)
		if err != nil {
			return nil, err
		}
	}
	out := make([]adm.Value, 0, len(envs))
	for _, e := range envs {
		v, err := Eval(ctx, e, fl.Return)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ApplyClause applies one FLWOR clause to a set of bindings. The query
// engine's physical group-by, order and limit operators reuse it so their
// semantics are exactly the interpreter's.
func ApplyClause(ctx *Context, envs []Env, clause aql.FLWORClause) ([]Env, error) {
	return applyClause(ctx, envs, clause)
}

func applyClause(ctx *Context, envs []Env, clause aql.FLWORClause) ([]Env, error) {
	switch c := clause.(type) {
	case *aql.ForClause:
		var out []Env
		for _, env := range envs {
			src, err := Eval(ctx, env, c.Source)
			if err != nil {
				return nil, err
			}
			for i, item := range IterationItems(src) {
				e := env.With(c.Var, item)
				if c.PosVar != "" {
					e = e.With(c.PosVar, adm.Int64(i+1))
				}
				out = append(out, e)
			}
		}
		return out, nil
	case *aql.LetClause:
		out := make([]Env, 0, len(envs))
		for _, env := range envs {
			v, err := Eval(ctx, env, c.Expr)
			if err != nil {
				return nil, err
			}
			out = append(out, env.With(c.Var, v))
		}
		return out, nil
	case *aql.WhereClause:
		var out []Env
		for _, env := range envs {
			keep, err := EvalBool(ctx, env, c.Cond)
			if err != nil {
				return nil, err
			}
			if keep {
				out = append(out, env)
			}
		}
		return out, nil
	case *aql.GroupByClause:
		return applyGroupBy(ctx, envs, c)
	case *aql.OrderByClause:
		return applyOrderBy(ctx, envs, c)
	case *aql.LimitClause:
		return applyLimit(ctx, envs, c)
	}
	return nil, fmt.Errorf("expr: unsupported FLWOR clause %T", clause)
}

func applyGroupBy(ctx *Context, envs []Env, c *aql.GroupByClause) ([]Env, error) {
	type group struct {
		keyVals []adm.Value
		members []Env
	}
	groups := map[string]*group{}
	var order []string
	for _, env := range envs {
		keyVals := make([]adm.Value, len(c.Keys))
		var keyBytes []byte
		for i, k := range c.Keys {
			v, err := Eval(ctx, env, k.Expr)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			keyBytes = adm.EncodeKey(keyBytes, v)
		}
		ks := string(keyBytes)
		g, ok := groups[ks]
		if !ok {
			g = &group{keyVals: keyVals}
			groups[ks] = g
			order = append(order, ks)
		}
		g.members = append(g.members, env)
	}
	out := make([]Env, 0, len(order))
	for _, ks := range order {
		g := groups[ks]
		env := Env{}
		for i, k := range c.Keys {
			env[k.Var] = g.keyVals[i]
		}
		// Each "with" variable becomes the bag of its values across the group.
		for _, with := range c.With {
			items := make([]adm.Value, 0, len(g.members))
			for _, m := range g.members {
				if v, ok := m[with]; ok {
					items = append(items, v)
				}
			}
			env[with] = &adm.OrderedList{Items: items}
		}
		out = append(out, env)
	}
	return out, nil
}

func applyOrderBy(ctx *Context, envs []Env, c *aql.OrderByClause) ([]Env, error) {
	type keyed struct {
		env  Env
		keys []adm.Value
	}
	rows := make([]keyed, len(envs))
	for i, env := range envs {
		keys := make([]adm.Value, len(c.Terms))
		for j, term := range c.Terms {
			v, err := Eval(ctx, env, term.Expr)
			if err != nil {
				return nil, err
			}
			keys[j] = v
		}
		rows[i] = keyed{env: env, keys: keys}
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for t, term := range c.Terms {
			cmp, err := adm.Compare(rows[i].keys[t], rows[j].keys[t])
			if err != nil {
				sortErr = err
				return false
			}
			if cmp == 0 {
				continue
			}
			if term.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	out := make([]Env, len(rows))
	for i, r := range rows {
		out[i] = r.env
	}
	return out, nil
}

func applyLimit(ctx *Context, envs []Env, c *aql.LimitClause) ([]Env, error) {
	limV, err := Eval(ctx, Env{}, c.Limit)
	if err != nil {
		return nil, err
	}
	lim, ok := adm.NumericAsInt64(limV)
	if !ok {
		return nil, fmt.Errorf("expr: limit must be numeric")
	}
	offset := int64(0)
	if c.Offset != nil {
		offV, err := Eval(ctx, Env{}, c.Offset)
		if err != nil {
			return nil, err
		}
		offset, _ = adm.NumericAsInt64(offV)
	}
	if offset > int64(len(envs)) {
		return nil, nil
	}
	envs = envs[offset:]
	if lim < int64(len(envs)) {
		envs = envs[:lim]
	}
	return envs, nil
}

// ----------------------------------------------------------------------------
// Function calls
// ----------------------------------------------------------------------------

func evalCall(ctx *Context, env Env, call *aql.CallExpr) (adm.Value, error) {
	name := strings.ToLower(call.Func)
	// User-defined functions shadow nothing built-in (AQL resolves built-ins
	// first), so check built-ins before UDFs, except that unknown built-ins
	// fall through to UDF lookup.
	args := make([]adm.Value, len(call.Args))
	// Aggregates evaluate their argument specially (it is usually a FLWOR),
	// but the argument still produces a list value, so normal evaluation works.
	for i, a := range call.Args {
		v, err := Eval(ctx, env, a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	if fn, ok := builtins[name]; ok {
		return fn(ctx, args)
	}
	if udf, ok := ctx.Functions[call.Func]; ok {
		if len(args) != len(udf.Params) {
			return nil, fmt.Errorf("expr: function %s expects %d arguments, got %d", call.Func, len(udf.Params), len(args))
		}
		fnEnv := Env{}
		for i, p := range udf.Params {
			fnEnv[p] = args[i]
		}
		return Eval(ctx, fnEnv, udf.Body)
	}
	return nil, fmt.Errorf("expr: unknown function %q", call.Func)
}

type builtinFunc func(ctx *Context, args []adm.Value) (adm.Value, error)

var builtins map[string]builtinFunc

func init() {
	builtins = map[string]builtinFunc{
		// Aggregates with AQL null semantics (any null -> null) and their
		// SQL-92 "best guess" variants.
		"count":     aggCount,
		"sql-count": aggCount,
		"sum":       func(c *Context, a []adm.Value) (adm.Value, error) { return aggSum(a, false) },
		"sql-sum":   func(c *Context, a []adm.Value) (adm.Value, error) { return aggSum(a, true) },
		"avg":       func(c *Context, a []adm.Value) (adm.Value, error) { return aggAvg(a, false) },
		"sql-avg":   func(c *Context, a []adm.Value) (adm.Value, error) { return aggAvg(a, true) },
		"min":       func(c *Context, a []adm.Value) (adm.Value, error) { return aggMinMax(a, false, false) },
		"sql-min":   func(c *Context, a []adm.Value) (adm.Value, error) { return aggMinMax(a, false, true) },
		"max":       func(c *Context, a []adm.Value) (adm.Value, error) { return aggMinMax(a, true, false) },
		"sql-max":   func(c *Context, a []adm.Value) (adm.Value, error) { return aggMinMax(a, true, true) },

		// String functions.
		"string-length": func(c *Context, a []adm.Value) (adm.Value, error) {
			s, err := argString(a, 0, "string-length")
			if err != nil {
				return adm.Null{}, nil
			}
			return adm.Int64(len(s)), nil
		},
		"lowercase": func(c *Context, a []adm.Value) (adm.Value, error) {
			s, err := argString(a, 0, "lowercase")
			if err != nil {
				return adm.Null{}, nil
			}
			return adm.String(strings.ToLower(s)), nil
		},
		"uppercase": func(c *Context, a []adm.Value) (adm.Value, error) {
			s, err := argString(a, 0, "uppercase")
			if err != nil {
				return adm.Null{}, nil
			}
			return adm.String(strings.ToUpper(s)), nil
		},
		"contains": func(c *Context, a []adm.Value) (adm.Value, error) {
			s, err1 := argString(a, 0, "contains")
			sub, err2 := argString(a, 1, "contains")
			if err1 != nil || err2 != nil {
				return adm.Boolean(false), nil
			}
			return adm.Boolean(fuzzy.Contains(s, sub)), nil
		},
		"like": func(c *Context, a []adm.Value) (adm.Value, error) {
			s, err1 := argString(a, 0, "like")
			pat, err2 := argString(a, 1, "like")
			if err1 != nil || err2 != nil {
				return adm.Boolean(false), nil
			}
			return adm.Boolean(fuzzy.Like(s, pat)), nil
		},
		"matches": func(c *Context, a []adm.Value) (adm.Value, error) {
			s, err1 := argString(a, 0, "matches")
			pat, err2 := argString(a, 1, "matches")
			if err1 != nil || err2 != nil {
				return adm.Boolean(false), nil
			}
			return adm.Boolean(fuzzy.Matches(s, pat)), nil
		},
		"replace": func(c *Context, a []adm.Value) (adm.Value, error) {
			s, err1 := argString(a, 0, "replace")
			old, err2 := argString(a, 1, "replace")
			new, err3 := argString(a, 2, "replace")
			if err1 != nil || err2 != nil || err3 != nil {
				return adm.Null{}, nil
			}
			return adm.String(fuzzy.Replace(s, old, new)), nil
		},
		"word-tokens": func(c *Context, a []adm.Value) (adm.Value, error) {
			s, err := argString(a, 0, "word-tokens")
			if err != nil {
				return &adm.OrderedList{}, nil
			}
			toks := fuzzy.WordTokens(s)
			items := make([]adm.Value, len(toks))
			for i, t := range toks {
				items[i] = adm.String(t)
			}
			return &adm.OrderedList{Items: items}, nil
		},
		"gram-tokens": func(c *Context, a []adm.Value) (adm.Value, error) {
			s, err := argString(a, 0, "gram-tokens")
			if err != nil {
				return &adm.OrderedList{}, nil
			}
			k := int64(3)
			if len(a) > 1 {
				k, _ = adm.NumericAsInt64(a[1])
			}
			toks := fuzzy.NGramTokens(s, int(k))
			items := make([]adm.Value, len(toks))
			for i, t := range toks {
				items[i] = adm.String(t)
			}
			return &adm.OrderedList{Items: items}, nil
		},

		// Fuzzy similarity functions.
		"edit-distance": func(c *Context, a []adm.Value) (adm.Value, error) {
			s1, err1 := argString(a, 0, "edit-distance")
			s2, err2 := argString(a, 1, "edit-distance")
			if err1 != nil || err2 != nil {
				return adm.Null{}, nil
			}
			return adm.Int64(fuzzy.EditDistance(s1, s2)), nil
		},
		"edit-distance-check": func(c *Context, a []adm.Value) (adm.Value, error) {
			s1, err1 := argString(a, 0, "edit-distance-check")
			s2, err2 := argString(a, 1, "edit-distance-check")
			if err1 != nil || err2 != nil || len(a) < 3 {
				return adm.Null{}, nil
			}
			threshold, _ := adm.NumericAsInt64(a[2])
			ok, d := fuzzy.EditDistanceCheck(s1, s2, int(threshold))
			return &adm.OrderedList{Items: []adm.Value{adm.Boolean(ok), adm.Int64(d)}}, nil
		},
		"edit-distance-contains": func(c *Context, a []adm.Value) (adm.Value, error) {
			s1, err1 := argString(a, 0, "edit-distance-contains")
			s2, err2 := argString(a, 1, "edit-distance-contains")
			if err1 != nil || err2 != nil || len(a) < 3 {
				return adm.Null{}, nil
			}
			threshold, _ := adm.NumericAsInt64(a[2])
			return adm.Boolean(fuzzy.EditDistanceContains(s1, s2, int(threshold))), nil
		},
		"similarity-jaccard": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 2 {
				return adm.Null{}, nil
			}
			sim, err := fuzzy.SimilarityJaccard(a[0], a[1])
			if err != nil {
				return adm.Null{}, nil
			}
			return adm.Double(sim), nil
		},
		"similarity-jaccard-check": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 3 {
				return adm.Null{}, nil
			}
			threshold, ok := adm.NumericAsDouble(a[2])
			if !ok {
				return adm.Null{}, nil
			}
			sim, err := fuzzy.SimilarityJaccard(a[0], a[1])
			if err != nil {
				return adm.Null{}, nil
			}
			return &adm.OrderedList{Items: []adm.Value{adm.Boolean(sim >= threshold), adm.Double(sim)}}, nil
		},

		// Spatial functions.
		"spatial-distance": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 2 {
				return adm.Null{}, nil
			}
			d, err := spatial.SpatialDistance(a[0], a[1])
			if err != nil {
				return adm.Null{}, nil
			}
			return d, nil
		},
		"spatial-area": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 1 {
				return adm.Null{}, nil
			}
			area, err := spatial.Area(a[0])
			if err != nil {
				return adm.Null{}, nil
			}
			return adm.Double(area), nil
		},
		"spatial-intersect": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 2 {
				return adm.Null{}, nil
			}
			ok, err := spatial.Intersect(a[0], a[1])
			if err != nil {
				return adm.Null{}, nil
			}
			return adm.Boolean(ok), nil
		},
		"spatial-cell": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 4 {
				return adm.Null{}, nil
			}
			p, ok1 := a[0].(adm.Point)
			origin, ok2 := a[1].(adm.Point)
			xs, ok3 := adm.NumericAsDouble(a[2])
			ys, ok4 := adm.NumericAsDouble(a[3])
			if !ok1 || !ok2 || !ok3 || !ok4 {
				return adm.Null{}, nil
			}
			cell, err := spatial.Cell(p, origin, xs, ys)
			if err != nil {
				return adm.Null{}, nil
			}
			return cell, nil
		},
		"create-point": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 2 {
				return adm.Null{}, nil
			}
			x, ok1 := adm.NumericAsDouble(a[0])
			y, ok2 := adm.NumericAsDouble(a[1])
			if !ok1 || !ok2 {
				return adm.Null{}, nil
			}
			return adm.Point{X: x, Y: y}, nil
		},
		"create-rectangle": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 2 {
				return adm.Null{}, nil
			}
			ll, ok1 := a[0].(adm.Point)
			ur, ok2 := a[1].(adm.Point)
			if !ok1 || !ok2 {
				return adm.Null{}, nil
			}
			return adm.Rectangle{LowerLeft: ll, UpperRight: ur}, nil
		},
		"create-circle": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 2 {
				return adm.Null{}, nil
			}
			center, ok1 := a[0].(adm.Point)
			r, ok2 := adm.NumericAsDouble(a[1])
			if !ok1 || !ok2 {
				return adm.Null{}, nil
			}
			return adm.Circle{Center: center, Radius: r}, nil
		},

		// Temporal functions.
		"current-datetime": func(c *Context, a []adm.Value) (adm.Value, error) {
			return temporal.CurrentDatetime(c.Clock), nil
		},
		"current-date": func(c *Context, a []adm.Value) (adm.Value, error) {
			return temporal.CurrentDate(c.Clock), nil
		},
		"current-time": func(c *Context, a []adm.Value) (adm.Value, error) {
			return temporal.CurrentTime(c.Clock), nil
		},
		"datetime":  constructorFunc("datetime"),
		"date":      constructorFunc("date"),
		"time":      constructorFunc("time"),
		"duration":  constructorFunc("duration"),
		"point":     constructorFunc("point"),
		"rectangle": constructorFunc("rectangle"),
		"circle":    constructorFunc("circle"),
		"interval-bin": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 3 {
				return adm.Null{}, nil
			}
			d, ok := asDuration(a[2])
			if !ok {
				return adm.Null{}, nil
			}
			bin, err := temporal.IntervalBin(a[0], a[1], d)
			if err != nil {
				return adm.Null{}, nil
			}
			return bin, nil
		},
		"interval-start-from-datetime": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 2 {
				return adm.Null{}, nil
			}
			dt, ok := a[0].(adm.Datetime)
			d, ok2 := asDuration(a[1])
			if !ok || !ok2 {
				return adm.Null{}, nil
			}
			iv, err := temporal.IntervalStartFromDatetime(dt, d)
			if err != nil {
				return adm.Null{}, nil
			}
			return iv, nil
		},
		"interval-before":      intervalRelation(temporal.Before),
		"interval-after":       intervalRelation(temporal.After),
		"interval-meets":       intervalRelation(temporal.Meets),
		"interval-overlapping": intervalRelation(temporal.Overlapping),
		"interval-covers":      intervalRelation(temporal.Covers),
		"adjust-datetime-for-timezone": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 2 {
				return adm.Null{}, nil
			}
			dt, ok := a[0].(adm.Datetime)
			tz, ok2 := a[1].(adm.String)
			if !ok || !ok2 {
				return adm.Null{}, nil
			}
			out, err := temporal.AdjustDatetimeForTimezone(dt, string(tz))
			if err != nil {
				return adm.Null{}, nil
			}
			return out, nil
		},

		// Null/missing handling and misc.
		"is-null": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 1 {
				return adm.Boolean(true), nil
			}
			return adm.Boolean(adm.IsUnknown(a[0])), nil
		},
		"is-missing": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 1 {
				return adm.Boolean(true), nil
			}
			return adm.Boolean(a[0].Tag() == adm.TagMissing), nil
		},
		"not": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 1 || adm.IsUnknown(a[0]) {
				return adm.Null{}, nil
			}
			return adm.Boolean(!adm.Truthy(a[0])), nil
		},
		"len": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 1 {
				return adm.Null{}, nil
			}
			if items, ok := listItems(a[0]); ok {
				return adm.Int64(len(items)), nil
			}
			return adm.Null{}, nil
		},
		"string": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 1 {
				return adm.Null{}, nil
			}
			if s, ok := a[0].(adm.String); ok {
				return s, nil
			}
			return adm.String(a[0].String()), nil
		},
		"int32": func(c *Context, a []adm.Value) (adm.Value, error) {
			if len(a) < 1 {
				return adm.Null{}, nil
			}
			if s, ok := a[0].(adm.String); ok {
				n, err := strconv.ParseInt(string(s), 10, 32)
				if err != nil {
					return adm.Null{}, nil
				}
				return adm.Int32(n), nil
			}
			n, ok := adm.NumericAsInt64(a[0])
			if !ok {
				return adm.Null{}, nil
			}
			return adm.Int32(int32(n)), nil
		},
	}
}

func constructorFunc(typeName string) builtinFunc {
	return func(c *Context, a []adm.Value) (adm.Value, error) {
		if len(a) < 1 {
			return adm.Null{}, nil
		}
		switch v := a[0].(type) {
		case adm.String:
			out, err := adm.Construct(typeName, string(v))
			if err != nil {
				return adm.Null{}, nil
			}
			return out, nil
		default:
			// Already the right type (e.g. datetime($x) where $x is a datetime).
			return v, nil
		}
	}
}

func intervalRelation(rel func(a, b adm.Interval) bool) builtinFunc {
	return func(c *Context, args []adm.Value) (adm.Value, error) {
		if len(args) < 2 {
			return adm.Null{}, nil
		}
		a, ok1 := args[0].(adm.Interval)
		b, ok2 := args[1].(adm.Interval)
		if !ok1 || !ok2 {
			return adm.Null{}, nil
		}
		return adm.Boolean(rel(a, b)), nil
	}
}

func argString(args []adm.Value, i int, fn string) (string, error) {
	if i >= len(args) {
		return "", fmt.Errorf("expr: %s: missing argument %d", fn, i)
	}
	s, ok := args[i].(adm.String)
	if !ok {
		return "", fmt.Errorf("expr: %s: argument %d is %s, not string", fn, i, args[i].Tag())
	}
	return string(s), nil
}

// ----------------------------------------------------------------------------
// Aggregates
// ----------------------------------------------------------------------------

func aggItems(args []adm.Value) []adm.Value {
	if len(args) == 0 {
		return nil
	}
	if items, ok := listItems(args[0]); ok {
		return items
	}
	return args
}

func aggCount(_ *Context, args []adm.Value) (adm.Value, error) {
	return adm.Int64(len(aggItems(args))), nil
}

func aggSum(args []adm.Value, sqlSemantics bool) (adm.Value, error) {
	items := aggItems(args)
	sum := 0.0
	n := 0
	for _, it := range items {
		if adm.IsUnknown(it) {
			if sqlSemantics {
				continue
			}
			return adm.Null{}, nil
		}
		d, ok := adm.NumericAsDouble(it)
		if !ok {
			return adm.Null{}, nil
		}
		sum += d
		n++
	}
	if n == 0 {
		return adm.Null{}, nil
	}
	return adm.Double(sum), nil
}

func aggAvg(args []adm.Value, sqlSemantics bool) (adm.Value, error) {
	items := aggItems(args)
	sum := 0.0
	n := 0
	for _, it := range items {
		if adm.IsUnknown(it) {
			if sqlSemantics {
				continue
			}
			// AQL semantics: the average of a set containing null is null.
			return adm.Null{}, nil
		}
		d, ok := adm.NumericAsDouble(it)
		if !ok {
			return adm.Null{}, nil
		}
		sum += d
		n++
	}
	if n == 0 {
		return adm.Null{}, nil
	}
	return adm.Double(sum / float64(n)), nil
}

func aggMinMax(args []adm.Value, max, sqlSemantics bool) (adm.Value, error) {
	items := aggItems(args)
	var best adm.Value
	for _, it := range items {
		if adm.IsUnknown(it) {
			if sqlSemantics {
				continue
			}
			return adm.Null{}, nil
		}
		if best == nil {
			best = it
			continue
		}
		c, err := adm.Compare(it, best)
		if err != nil {
			return adm.Null{}, nil
		}
		if (max && c > 0) || (!max && c < 0) {
			best = it
		}
	}
	if best == nil {
		return adm.Null{}, nil
	}
	return best, nil
}
