package hyracks

import (
	"sort"
	"sync"
	"time"

	"asterixdb/internal/runfile"
)

// This file is the job-profiling layer: when Job.Profile is set,
// executeStream gives every operator instance an instProf counter block
// and collects the results into a JobProfile exposed on the cursor once
// the job has finished. The disabled path costs one nil pointer per
// frame refill and per frame send — nothing per tuple — so the zero-copy
// scan hot path is unaffected (the readpath CI guard enforces this).

// OperatorStats is the executed-plan annotation for one operator
// instance — or, inside a fused chain, one component stage of it. Fused
// and unfused runs of the same plan produce rows with the same Name
// values, so profiles are comparable across execution shapes; rows from
// distributed runs additionally carry the producing node's name.
type OperatorStats struct {
	// Op is the operator's index in the executed (post-fusion) job.
	Op int `json:"op"`
	// Stage is the component's position inside a fused chain, or -1 for
	// an operator that ran unfused.
	Stage int `json:"stage"`
	// Name is the operator's plan label (e.g. "datasource-scan(D)").
	Name      string `json:"name"`
	Partition int    `json:"partition"`
	Node      string `json:"node,omitempty"`
	TuplesIn  int64  `json:"tuplesIn"`
	TuplesOut int64  `json:"tuplesOut"`
	FramesIn  int64  `json:"framesIn"`
	FramesOut int64  `json:"framesOut"`
	// WallNanos is the wall time the instance spent in Run. Components of
	// a fused chain run interleaved in one goroutine, so each component
	// row of a chain reports the whole chain's wall time.
	WallNanos int64 `json:"wallNanos"`
	// FirstOutNanos is when the instance emitted its first tuple,
	// relative to Run start — a proxy for the blocking phase of sorts,
	// joins, and aggregates (zero when nothing was emitted).
	FirstOutNanos int64 `json:"firstOutNanos"`
}

// OperatorSpill is the spill activity of one blocking operator, summed
// over its instances: run files created, tuples/bytes written to them,
// and the high-water mark of budget-accounted resident bytes.
type OperatorSpill struct {
	Op   int    `json:"op"`
	Name string `json:"name"`
	Node string `json:"node,omitempty"`
	runfile.SpillStats
}

// JobProfile is the executed-plan profile of one job run. In a
// distributed run each node produces one JobProfile and the controller
// merges them with MergeProfiles.
type JobProfile struct {
	// Operators holds one row per operator instance (per fused-chain
	// component), ordered by (Op, Stage, Partition, Node).
	Operators []OperatorStats `json:"operators"`
	// Spill holds one row per budgeted blocking operator.
	Spill []OperatorSpill `json:"operatorSpill,omitempty"`
	// JobSpill is the job-wide spill/budget accounting.
	JobSpill *runfile.Stats `json:"jobSpill,omitempty"`
}

// OutByName sums TuplesOut over partitions, stages, and nodes, keyed by
// operator name. It is the comparison form: fused vs unfused and
// single-process vs distributed runs of one plan agree on it.
func (p *JobProfile) OutByName() map[string]int64 {
	out := make(map[string]int64, len(p.Operators))
	for _, r := range p.Operators {
		out[r.Name] += r.TuplesOut
	}
	return out
}

// InByName sums TuplesIn over partitions, stages, and nodes by name.
func (p *JobProfile) InByName() map[string]int64 {
	in := make(map[string]int64, len(p.Operators))
	for _, r := range p.Operators {
		in[r.Name] += r.TuplesIn
	}
	return in
}

// SetNode stamps every row with the producing node's name; an NC calls
// it before shipping its profile to the controller.
func (p *JobProfile) SetNode(node string) {
	for i := range p.Operators {
		p.Operators[i].Node = node
	}
	for i := range p.Spill {
		p.Spill[i].Node = node
	}
}

// MergeProfiles combines per-node profiles into one cluster-wide
// profile: operator and spill rows are concatenated (each already
// node-labeled) and re-sorted into canonical order, and the job-wide
// spill counters are summed — except PeakResident, which is the max
// across nodes since each node's peak is an independent high-water mark.
func MergeProfiles(parts []*JobProfile) *JobProfile {
	var merged *JobProfile
	for _, p := range parts {
		if p == nil {
			continue
		}
		if merged == nil {
			merged = &JobProfile{}
		}
		merged.Operators = append(merged.Operators, p.Operators...)
		merged.Spill = append(merged.Spill, p.Spill...)
		if p.JobSpill != nil {
			if merged.JobSpill == nil {
				merged.JobSpill = &runfile.Stats{}
			}
			merged.JobSpill.RunsCreated += p.JobSpill.RunsCreated
			merged.JobSpill.TuplesSpilled += p.JobSpill.TuplesSpilled
			merged.JobSpill.BytesSpilled += p.JobSpill.BytesSpilled
			merged.JobSpill.LiveRuns += p.JobSpill.LiveRuns
			if p.JobSpill.PeakResident > merged.JobSpill.PeakResident {
				merged.JobSpill.PeakResident = p.JobSpill.PeakResident
			}
		}
	}
	if merged == nil {
		return nil
	}
	sortOperatorStats(merged.Operators)
	sort.Slice(merged.Spill, func(i, j int) bool {
		a, b := merged.Spill[i], merged.Spill[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Node < b.Node
	})
	return merged
}

func sortOperatorStats(rows []OperatorStats) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Partition != b.Partition {
			return a.Partition < b.Partition
		}
		return a.Node < b.Node
	})
}

// SpillBudgeted is implemented by operators that spill through a
// per-operator runfile.Budget; the profile finalizer uses it to read
// each operator's SpillObserver without knowing the operator types
// (translator-private operators implement it too).
type SpillBudgeted interface {
	SpillBudget() *runfile.Budget
}

// SpillBudget implements SpillBudgeted.
func (o *SortOp) SpillBudget() *runfile.Budget { return o.Spill }

// SpillBudget implements SpillBudgeted.
func (o *HybridHashJoinOp) SpillBudget() *runfile.Budget { return o.Spill }

// SpillBudget implements SpillBudgeted.
func (o *HashGroupOp) SpillBudget() *runfile.Budget { return o.Spill }

// instProf is one operator instance's counter block. It is owned by the
// instance goroutine — plain fields, no atomics — and published to the
// job's collector exactly once, when the instance exits.
type instProf struct {
	start     time.Time
	tuplesIn  int64
	framesIn  int64
	tuplesOut int64
	framesOut int64
	firstOut  int64
	wall      int64
	// stages[i] counts component i's output when the instance is a fused
	// chain; nil otherwise.
	stages []int64
}

// profCollector accumulates finished instances' rows for one job run.
type profCollector struct {
	mu   sync.Mutex
	rows []OperatorStats
}

// add converts one finished instance's counters into profile rows. A
// fused chain expands into one row per component: component i's input is
// component i-1's output (the head's input is the instance's port
// input), edge frame counts attach to the chain's head and tail, and
// every component reports the chain's wall time.
func (pc *profCollector) add(opIdx, partition int, op Operator, ip *instProf) {
	if fused, ok := op.(*FusedOp); ok && ip.stages != nil {
		rows := make([]OperatorStats, len(fused.Ops))
		prevOut := ip.tuplesIn
		last := len(fused.Ops) - 1
		for i, comp := range fused.Ops {
			r := OperatorStats{
				Op:        opIdx,
				Stage:     i,
				Name:      comp.Name(),
				Partition: partition,
				TuplesIn:  prevOut,
				TuplesOut: ip.stages[i],
				WallNanos: ip.wall,
			}
			if i == 0 {
				r.FramesIn = ip.framesIn
			}
			if i == last {
				r.FramesOut = ip.framesOut
				r.FirstOutNanos = ip.firstOut
			}
			prevOut = ip.stages[i]
			rows[i] = r
		}
		pc.mu.Lock()
		pc.rows = append(pc.rows, rows...)
		pc.mu.Unlock()
		return
	}
	pc.mu.Lock()
	pc.rows = append(pc.rows, OperatorStats{
		Op:            opIdx,
		Stage:         -1,
		Name:          op.Name(),
		Partition:     partition,
		TuplesIn:      ip.tuplesIn,
		TuplesOut:     ip.tuplesOut,
		FramesIn:      ip.framesIn,
		FramesOut:     ip.framesOut,
		WallNanos:     ip.wall,
		FirstOutNanos: ip.firstOut,
	})
	pc.mu.Unlock()
}

// finalize assembles the JobProfile once every instance has exited and
// the spill manager is closed (so its counters are final).
func (pc *profCollector) finalize(job *Job) *JobProfile {
	pc.mu.Lock()
	rows := pc.rows
	pc.rows = nil
	pc.mu.Unlock()
	sortOperatorStats(rows)
	jp := &JobProfile{Operators: rows}
	for i, op := range job.Operators {
		sb, ok := op.(SpillBudgeted)
		if !ok {
			continue
		}
		b := sb.SpillBudget()
		if b == nil || b.Obs == nil {
			continue
		}
		jp.Spill = append(jp.Spill, OperatorSpill{Op: i, Name: op.Name(), SpillStats: b.Obs.Snapshot()})
	}
	if job.Spill != nil {
		s := job.Spill.Stats()
		jp.JobSpill = &s
	}
	return jp
}

// runProfiled mirrors FusedOp.Run with each component's output counted
// into stages. The two must stay in lockstep: same composition order,
// same error capture, same head-driving loop.
func (o *FusedOp) runProfiled(partition int, ins []*In, emit func(Tuple) bool, stages []int64) error {
	var stageErr error
	down := emit
	start := 0
	src, isSrc := o.Ops[0].(*SourceOp)
	if isSrc {
		start = 1
	}
	for i := len(o.Ops) - 1; i >= start; i-- {
		count := &stages[i]
		downstream := down
		st := o.Ops[i].(PushStage).Stage(partition, func(t Tuple) bool {
			*count++
			return downstream(t)
		})
		down = func(t Tuple) bool {
			more, err := st(t)
			if err != nil {
				if stageErr == nil {
					stageErr = err
				}
				return false
			}
			return more
		}
	}
	if isSrc {
		feed := down
		headCount := &stages[0]
		if err := src.Produce(partition, func(t Tuple) bool {
			*headCount++
			return feed(t)
		}); err != nil && stageErr == nil {
			stageErr = err
		}
		return stageErr
	}
	for {
		t, ok := ins[0].Next()
		if !ok {
			return stageErr
		}
		if !down(t) {
			return stageErr
		}
	}
}
