package hyracks

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the streaming face of the runtime: ExecuteStream runs a job
// and hands its sink output back as a pull-based frame cursor instead of a
// materialized [][]Tuple slab. Execute (hyracks.go) is now a thin wrapper
// that drains a cursor and restores the deterministic per-instance gather
// order the materializing API always had. ExecuteStreamDist (dist.go) runs
// the same machinery with some operator instances placed on other nodes.

// streamBuffer is the capacity, in frames, of the channel connecting the
// job's sink instances to the cursor. Together with the per-edge channel
// buffers it bounds how many tuples a job holds in flight ahead of a slow
// consumer: O(frameSize x (operators + streamBuffer)), never the full result.
const streamBuffer = 8

// Frame is one batch of sink output: the tuples one sink instance emitted in
// order, tagged with the sink operator index and instance partition so a
// consumer that wants the materializing API's deterministic (operator,
// partition) gather order can rebuild it.
type Frame struct {
	// Op is the sink operator's index in Job.Operators.
	Op int
	// Partition is the sink instance that produced the frame.
	Partition int
	// Tuples holds the frame's tuples in emit order.
	Tuples []Tuple
}

// Cursor is a pull-based stream over an executing job's sink output. Frames
// arrive in completion order across sink instances (within one instance,
// emit order is preserved); a single-instance sink therefore yields a fully
// deterministic stream. The consumer must call Close (or cancel the context
// passed to ExecuteStream) to release the job's goroutines; closing
// mid-stream propagates through the runtime's upstream-cancellation
// machinery and stops the scans feeding the job.
type Cursor struct {
	frames chan Frame
	// closed tells sink instances to stop producing; their emit functions
	// return false, which cascades cancellation upstream.
	closed    chan struct{}
	closeOnce sync.Once
	// done is closed once every operator goroutine has exited and err is
	// final.
	done chan struct{}

	mu      sync.Mutex
	jobErr  error       // first operator error
	ctxErr  error       // context cancellation, if it ended the stream
	profile *JobProfile // set before done closes when Job.Profile was on

	stopped atomic.Bool // set by Close: Next must not serve buffered tuples
	cur     Frame
	idx     int
}

// Profile returns the run's JobProfile. It is nil until the job has
// finished (every operator goroutine exited) and always nil when the job
// ran without Job.Profile.
func (c *Cursor) Profile() *JobProfile {
	select {
	case <-c.done:
	default:
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.profile
}

// SetProfile attaches an externally assembled profile; the cluster
// controller uses it on gather cursors, where the per-node profiles
// arrive over the wire. It must be called before the cursor finishes.
func (c *Cursor) SetProfile(p *JobProfile) {
	c.mu.Lock()
	c.profile = p
	c.mu.Unlock()
}

// NextFrame returns the next sink output frame, or false once the stream is
// exhausted (job finished, cursor closed, or context cancelled). Check Err
// after the final frame.
func (c *Cursor) NextFrame() (Frame, bool) {
	f, ok := <-c.frames
	return f, ok
}

// Next returns the next sink tuple, iterating frames transparently. Frames
// consumed through Next are recycled into the frame pool once the cursor has
// moved past them (the returned Tuple slice headers stay valid — recycling
// only clears the frame's own array); frames taken via NextFrame belong to
// the caller and are never recycled.
func (c *Cursor) Next() (Tuple, bool) {
	if c.stopped.Load() {
		return nil, false
	}
	for c.idx >= len(c.cur.Tuples) {
		f, ok := c.NextFrame()
		if !ok {
			return nil, false
		}
		putFrame(c.cur.Tuples)
		c.cur, c.idx = f, 0
	}
	t := c.cur.Tuples[c.idx]
	c.idx++
	return t, true
}

// Err returns the error that terminated the stream: the context's error if
// cancellation ended it, otherwise the first operator error, otherwise nil.
// It is fully determined once Next/NextFrame has returned false.
func (c *Cursor) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ctxErr != nil {
		return c.ctxErr
	}
	return c.jobErr
}

// Close stops the job: sink instances observe the close on their next emit,
// return, and cancellation cascades to the sources. Close blocks until every
// operator goroutine has exited (so a caller asserting goroutine counts can
// rely on it) and returns the first operator error, if any. It is idempotent
// and safe to call concurrently with Next.
func (c *Cursor) Close() error {
	c.stopped.Store(true)
	c.closeOnce.Do(func() { close(c.closed) })
	<-c.done
	// Drain any frames buffered between the sinks and the consumer so the
	// channel's memory is released promptly.
	for range c.frames {
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobErr
}

func (c *Cursor) recordJobErr(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	if c.jobErr == nil {
		c.jobErr = err
	}
	c.mu.Unlock()
}

// ExecuteStream starts the job and returns a Cursor over its sink output.
// Execution is identical to Execute — one goroutine per operator instance,
// frame-batched bounded channels, upstream cancellation — except that sink
// instances feed the cursor's bounded channel instead of buffering their
// output, so a pure streaming pipeline holds only O(frame x operators)
// tuples in flight regardless of result size. Cancelling ctx or closing the
// cursor terminates the job's goroutines.
func ExecuteStream(ctx context.Context, job *Job) (*Cursor, error) {
	cur, _, err := executeStream(ctx, job, nil)
	return cur, err
}

// executeStream is the shared execution core. With a nil spec every operator
// instance is local and the run is exactly the historical single-process
// ExecuteStream. With a spec, only instances the spec declares local get
// goroutines and channels; frames routed to remote instances are serialized
// through spec.Send, and frames arriving from remote producers are injected
// through the returned DistRun.
func executeStream(ctx context.Context, job *Job, spec *DistSpec) (*Cursor, *DistRun, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, err := job.Stages(); err != nil {
		return nil, nil, err
	}
	frameSize := job.FrameSize
	if frameSize <= 0 {
		frameSize = defaultFrameSize
	}
	nOps := len(job.Operators)

	// Splice structural passthrough operators out of the dataflow; they stay
	// in the job description but cost nothing at run time. The post-splice
	// edge slice is the plan every node of a distributed run derives
	// identically (PlanEdges), so an edge's index doubles as its wire
	// identity.
	edges, spliced := spliceEdges(job)

	isLocal := func(op, p int) bool {
		if spec == nil {
			return true
		}
		return spec.Local(op, p)
	}

	// Number of input ports per operator.
	ports := make([]int, nOps)
	for _, e := range edges {
		if e.Port < 0 {
			return nil, nil, fmt.Errorf("hyracks: negative input port %d", e.Port)
		}
		if e.Port+1 > ports[e.To] {
			ports[e.To] = e.Port + 1
		}
	}

	// inputs[op][port][partition] feeds each instance; instDone[op][partition]
	// is closed when that instance's Run returns, unblocking producers.
	// Remote instances keep nil slots in both, so partition-indexed routing
	// math is identical in local and distributed runs.
	inputs := make([][][]chan []Tuple, nOps)
	instDone := make([][]chan struct{}, nOps)
	alive := make([]int32, nOps)
	for i, op := range job.Operators {
		par := op.Parallelism()
		if par <= 0 {
			return nil, nil, fmt.Errorf("hyracks: operator %s has parallelism %d", op.Name(), par)
		}
		if spliced[i] {
			continue
		}
		inputs[i] = make([][]chan []Tuple, ports[i])
		for q := range inputs[i] {
			inputs[i][q] = make([]chan []Tuple, par)
		}
		instDone[i] = make([]chan struct{}, par)
		for p := 0; p < par; p++ {
			if !isLocal(i, p) {
				continue
			}
			alive[i]++
			for q := range inputs[i] {
				inputs[i][q][p] = make(chan []Tuple, channelBuffer)
			}
			instDone[i][p] = make(chan struct{})
		}
	}

	// remaining[op][port] counts producer instances that may still feed the
	// port's local consumer channels; when it reaches zero those channels are
	// closed. Local producer instances always count (they retire via
	// producerDone at teardown). A remote producer instance counts only if it
	// can target a local consumer instance — it retires via the wire
	// end-of-stream record its node sends when the instance exits
	// (DistRun.InjectEOS).
	remaining := make([][]int, nOps)
	for i := range remaining {
		remaining[i] = make([]int, ports[i])
	}
	for ei := range edges {
		e := edges[ei]
		par := job.Operators[e.From].Parallelism()
		for p := 0; p < par; p++ {
			if isLocal(e.From, p) {
				remaining[e.To][e.Port]++
			} else if remoteProducerTargetsLocal(e, p, job, isLocal) {
				remaining[e.To][e.Port]++
			}
		}
	}
	// A declared port with no producers would never be closed: close it now so
	// consumers see an immediate end of stream instead of deadlocking.
	closeInputs := func(op, port int) {
		for _, ch := range inputs[op][port] {
			if ch != nil {
				close(ch)
			}
		}
	}
	for i := range remaining {
		for q, r := range remaining[i] {
			if r == 0 {
				closeInputs(i, q)
			}
		}
	}
	var remainingMu sync.Mutex
	producerDone := func(to, port int) {
		remainingMu.Lock()
		remaining[to][port]--
		if remaining[to][port] == 0 {
			closeInputs(to, port)
		}
		remainingMu.Unlock()
	}

	cur := &Cursor{
		frames: make(chan Frame, streamBuffer),
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}

	var run *DistRun
	var failed chan struct{}
	if spec != nil {
		failed = make(chan struct{})
		run = &DistRun{
			job:          job,
			edges:        edges,
			inputs:       inputs,
			instDone:     instDone,
			producerDone: producerDone,
			failed:       failed,
			cur:          cur,
		}
	}

	isSink := make([]bool, nOps)
	for i := range job.Operators {
		if !spliced[i] && len(outgoing(edges, i)) == 0 {
			isSink[i] = true
		}
	}

	// When profiling, every instance gets a private counter block and
	// publishes it here on exit; the unprofiled path keeps all prof
	// pointers nil, so the hot loops pay only dead nil checks.
	var prof *profCollector
	if job.Profile {
		prof = &profCollector{}
	}

	var wg sync.WaitGroup
	for opIdx, op := range job.Operators {
		if spliced[opIdx] {
			continue
		}
		outEdges, outIdx := outgoingIndexed(edges, opIdx)
		for p := 0; p < op.Parallelism(); p++ {
			if !isLocal(opIdx, p) {
				continue
			}
			wg.Add(1)
			go func(opIdx, p int, op Operator, outEdges []Edge, outIdx []int) {
				defer wg.Done()
				outs := make([]*outPort, len(outEdges))
				for i, e := range outEdges {
					o := &outPort{
						edge:      e,
						edgeIdx:   outIdx[i],
						consumers: inputs[e.To][e.Port],
						done:      instDone[e.To],
						alive:     &alive[e.To],
						bufs:      make([][]Tuple, len(inputs[e.To][e.Port])),
						frameSize: frameSize,
					}
					if spec != nil {
						o.dist = spec
						o.failed = failed
						o.onSendErr = cur.recordJobErr
						for _, ch := range o.consumers {
							if ch == nil {
								o.hasRemote = true
								o.remoteLive = true
								break
							}
						}
					}
					outs[i] = o
				}
				// Sink instances batch their output into frames and feed the
				// cursor; emit reports false once the cursor is closed, which
				// is how cancellation enters the job. The instance's first
				// frame is flushed eagerly (one tuple) so time-to-first-row
				// tracks the first tuple produced, not the first full frame.
				var ip *instProf // non-nil only when profiling
				var sinkBuf []Tuple
				sinkStopped := false
				sinkSentFirst := false
				sendFrame := func() bool {
					if len(sinkBuf) == 0 {
						return !sinkStopped
					}
					f := Frame{Op: opIdx, Partition: p, Tuples: sinkBuf}
					sinkBuf = nil
					select {
					case cur.frames <- f:
						sinkSentFirst = true
						if ip != nil {
							ip.framesOut++
						}
						return true
					case <-cur.closed:
						sinkStopped = true
						return false
					}
				}
				emit := func(t Tuple) bool {
					if len(outs) == 0 {
						if sinkStopped {
							return false
						}
						if sinkBuf == nil {
							sinkBuf = getFrame(frameSize)
						}
						sinkBuf = append(sinkBuf, t)
						if len(sinkBuf) >= frameSize || !sinkSentFirst {
							return sendFrame()
						}
						return true
					}
					live := false
					for _, o := range outs {
						o.push(p, t)
						if atomic.LoadInt32(o.alive) > 0 || o.remoteAlive() {
							live = true
						}
					}
					return live
				}
				ins := make([]*In, ports[opIdx])
				for q := range ins {
					ins[q] = &In{ch: inputs[opIdx][q][p], failed: failed}
				}
				var runErr error
				if prof == nil {
					runErr = op.Run(p, ins, emit)
				} else {
					ip = &instProf{start: time.Now()}
					for _, o := range outs {
						o.prof = ip
					}
					for q := range ins {
						ins[q].prof = ip
					}
					inner := emit
					pemit := func(t Tuple) bool {
						ip.tuplesOut++
						if ip.firstOut == 0 {
							ip.firstOut = int64(time.Since(ip.start))
						}
						return inner(t)
					}
					if fused, ok := op.(*FusedOp); ok {
						ip.stages = make([]int64, len(fused.Ops))
						runErr = fused.runProfiled(p, ins, pemit, ip.stages)
					} else {
						runErr = op.Run(p, ins, pemit)
					}
					ip.wall = int64(time.Since(ip.start))
				}
				if runErr != nil {
					cur.recordJobErr(runErr)
				}
				if isSink[opIdx] {
					sendFrame() // flush the final partial frame
				}
				// Instance teardown: flush partial frames, unblock producers
				// targeting this instance, then retire it as a producer —
				// locally via producerDone, and toward remote consumers via
				// the spec's end-of-stream record.
				for _, o := range outs {
					o.flush()
				}
				if ip != nil {
					// Published only now: the teardown flushes above still
					// count frames out.
					prof.add(opIdx, p, op, ip)
				}
				close(instDone[opIdx][p])
				atomic.AddInt32(&alive[opIdx], -1)
				for i, e := range outEdges {
					producerDone(e.To, e.Port)
					if spec != nil && outs[i].hasRemote {
						if err := spec.SendEOS(outIdx[i], p); err != nil {
							cur.recordJobErr(err)
						}
					}
				}
			}(opIdx, p, op, outEdges, outIdx)
		}
	}

	// Context watcher: cancellation closes the cursor, which stops the sinks
	// and cascades upstream exactly like an explicit Close.
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			cur.mu.Lock()
			cur.ctxErr = ctx.Err()
			cur.mu.Unlock()
			cur.closeOnce.Do(func() { close(cur.closed) })
			if run != nil {
				// Unblock consumers waiting on frames a remote producer will
				// never deliver; local end-of-stream accounting still runs.
				run.failOnce.Do(func() { close(failed) })
			}
		case <-cur.done:
		}
	}()

	// Completion: once every instance has exited the stream is final. The
	// job's spill manager (if any) is closed first, removing any run files
	// an operator left behind — this runs on every termination path, so a
	// caller that has observed Close/done can rely on zero leaked files.
	go func() {
		wg.Wait()
		if job.Spill != nil {
			if err := job.Spill.Close(); err != nil {
				cur.recordJobErr(err)
			}
		}
		if prof != nil {
			// After Spill.Close so the job-wide spill counters are final.
			p := prof.finalize(job)
			cur.mu.Lock()
			cur.profile = p
			cur.mu.Unlock()
		}
		close(cur.done)
		<-watcherDone
		close(cur.frames)
	}()
	return cur, run, nil
}

// outgoingIndexed returns the edges leaving op together with each edge's
// index in the full post-splice edge slice (its wire identity).
func outgoingIndexed(edges []Edge, op int) ([]Edge, []int) {
	var out []Edge
	var idx []int
	for i, e := range edges {
		if e.From == op {
			out = append(out, e)
			idx = append(idx, i)
		}
	}
	return out, idx
}

// remoteProducerTargetsLocal reports whether remote producer instance p of
// edge e can route tuples to a consumer instance on this node. Partition-
// preserving connectors pin each producer instance to one consumer instance;
// the M:N kinds can reach every consumer instance.
func remoteProducerTargetsLocal(e Edge, p int, job *Job, isLocal func(op, p int) bool) bool {
	consPar := job.Operators[e.To].Parallelism()
	switch e.Connector.Kind {
	case MToNPartitioning, HashPartitioningShuffle, MToNReplicating, MToNPartitioningMerging:
		for c := 0; c < consPar; c++ {
			if isLocal(e.To, c) {
				return true
			}
		}
		return false
	default: // OneToOne, LocalityAwareMToNPartition: p -> p % consPar
		return isLocal(e.To, p%consPar)
	}
}
