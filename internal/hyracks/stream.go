package hyracks

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// This file is the streaming face of the runtime: ExecuteStream runs a job
// and hands its sink output back as a pull-based frame cursor instead of a
// materialized [][]Tuple slab. Execute (hyracks.go) is now a thin wrapper
// that drains a cursor and restores the deterministic per-instance gather
// order the materializing API always had.

// streamBuffer is the capacity, in frames, of the channel connecting the
// job's sink instances to the cursor. Together with the per-edge channel
// buffers it bounds how many tuples a job holds in flight ahead of a slow
// consumer: O(frameSize x (operators + streamBuffer)), never the full result.
const streamBuffer = 8

// Frame is one batch of sink output: the tuples one sink instance emitted in
// order, tagged with the sink operator index and instance partition so a
// consumer that wants the materializing API's deterministic (operator,
// partition) gather order can rebuild it.
type Frame struct {
	// Op is the sink operator's index in Job.Operators.
	Op int
	// Partition is the sink instance that produced the frame.
	Partition int
	// Tuples holds the frame's tuples in emit order.
	Tuples []Tuple
}

// Cursor is a pull-based stream over an executing job's sink output. Frames
// arrive in completion order across sink instances (within one instance,
// emit order is preserved); a single-instance sink therefore yields a fully
// deterministic stream. The consumer must call Close (or cancel the context
// passed to ExecuteStream) to release the job's goroutines; closing
// mid-stream propagates through the runtime's upstream-cancellation
// machinery and stops the scans feeding the job.
type Cursor struct {
	frames chan Frame
	// closed tells sink instances to stop producing; their emit functions
	// return false, which cascades cancellation upstream.
	closed    chan struct{}
	closeOnce sync.Once
	// done is closed once every operator goroutine has exited and err is
	// final.
	done chan struct{}

	mu     sync.Mutex
	jobErr error // first operator error
	ctxErr error // context cancellation, if it ended the stream

	stopped atomic.Bool // set by Close: Next must not serve buffered tuples
	cur     Frame
	idx     int
}

// NextFrame returns the next sink output frame, or false once the stream is
// exhausted (job finished, cursor closed, or context cancelled). Check Err
// after the final frame.
func (c *Cursor) NextFrame() (Frame, bool) {
	f, ok := <-c.frames
	return f, ok
}

// Next returns the next sink tuple, iterating frames transparently. Frames
// consumed through Next are recycled into the frame pool once the cursor has
// moved past them (the returned Tuple slice headers stay valid — recycling
// only clears the frame's own array); frames taken via NextFrame belong to
// the caller and are never recycled.
func (c *Cursor) Next() (Tuple, bool) {
	if c.stopped.Load() {
		return nil, false
	}
	for c.idx >= len(c.cur.Tuples) {
		f, ok := c.NextFrame()
		if !ok {
			return nil, false
		}
		putFrame(c.cur.Tuples)
		c.cur, c.idx = f, 0
	}
	t := c.cur.Tuples[c.idx]
	c.idx++
	return t, true
}

// Err returns the error that terminated the stream: the context's error if
// cancellation ended it, otherwise the first operator error, otherwise nil.
// It is fully determined once Next/NextFrame has returned false.
func (c *Cursor) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.ctxErr != nil {
		return c.ctxErr
	}
	return c.jobErr
}

// Close stops the job: sink instances observe the close on their next emit,
// return, and cancellation cascades to the sources. Close blocks until every
// operator goroutine has exited (so a caller asserting goroutine counts can
// rely on it) and returns the first operator error, if any. It is idempotent
// and safe to call concurrently with Next.
func (c *Cursor) Close() error {
	c.stopped.Store(true)
	c.closeOnce.Do(func() { close(c.closed) })
	<-c.done
	// Drain any frames buffered between the sinks and the consumer so the
	// channel's memory is released promptly.
	for range c.frames {
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobErr
}

func (c *Cursor) recordJobErr(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	if c.jobErr == nil {
		c.jobErr = err
	}
	c.mu.Unlock()
}

// ExecuteStream starts the job and returns a Cursor over its sink output.
// Execution is identical to Execute — one goroutine per operator instance,
// frame-batched bounded channels, upstream cancellation — except that sink
// instances feed the cursor's bounded channel instead of buffering their
// output, so a pure streaming pipeline holds only O(frame x operators)
// tuples in flight regardless of result size. Cancelling ctx or closing the
// cursor terminates the job's goroutines.
func ExecuteStream(ctx context.Context, job *Job) (*Cursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if _, err := job.Stages(); err != nil {
		return nil, err
	}
	frameSize := job.FrameSize
	if frameSize <= 0 {
		frameSize = defaultFrameSize
	}
	nOps := len(job.Operators)

	// Splice structural passthrough operators out of the dataflow; they stay
	// in the job description but cost nothing at run time.
	edges, spliced := spliceEdges(job)

	// Number of input ports per operator.
	ports := make([]int, nOps)
	for _, e := range edges {
		if e.Port < 0 {
			return nil, fmt.Errorf("hyracks: negative input port %d", e.Port)
		}
		if e.Port+1 > ports[e.To] {
			ports[e.To] = e.Port + 1
		}
	}

	// inputs[op][port][partition] feeds each instance; instDone[op][partition]
	// is closed when that instance's Run returns, unblocking producers.
	inputs := make([][][]chan []Tuple, nOps)
	instDone := make([][]chan struct{}, nOps)
	alive := make([]int32, nOps)
	for i, op := range job.Operators {
		par := op.Parallelism()
		if par <= 0 {
			return nil, fmt.Errorf("hyracks: operator %s has parallelism %d", op.Name(), par)
		}
		if spliced[i] {
			continue
		}
		alive[i] = int32(par)
		inputs[i] = make([][]chan []Tuple, ports[i])
		for q := range inputs[i] {
			inputs[i][q] = make([]chan []Tuple, par)
			for p := range inputs[i][q] {
				inputs[i][q][p] = make(chan []Tuple, channelBuffer)
			}
		}
		instDone[i] = make([]chan struct{}, par)
		for p := range instDone[i] {
			instDone[i][p] = make(chan struct{})
		}
	}

	// remaining[op][port] counts producer instances still running; when it
	// reaches zero the port's input channels are closed.
	remaining := make([][]int, nOps)
	for i := range remaining {
		remaining[i] = make([]int, ports[i])
	}
	for _, e := range edges {
		remaining[e.To][e.Port] += job.Operators[e.From].Parallelism()
	}
	// A declared port with no producers would never be closed: close it now so
	// consumers see an immediate end of stream instead of deadlocking.
	for i := range remaining {
		for q, r := range remaining[i] {
			if r == 0 {
				for _, ch := range inputs[i][q] {
					close(ch)
				}
			}
		}
	}
	var remainingMu sync.Mutex
	producerDone := func(e Edge) {
		remainingMu.Lock()
		remaining[e.To][e.Port]--
		if remaining[e.To][e.Port] == 0 {
			for _, ch := range inputs[e.To][e.Port] {
				close(ch)
			}
		}
		remainingMu.Unlock()
	}

	cur := &Cursor{
		frames: make(chan Frame, streamBuffer),
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}

	isSink := make([]bool, nOps)
	for i := range job.Operators {
		if !spliced[i] && len(outgoing(edges, i)) == 0 {
			isSink[i] = true
		}
	}

	var wg sync.WaitGroup
	for opIdx, op := range job.Operators {
		if spliced[opIdx] {
			continue
		}
		outEdges := outgoing(edges, opIdx)
		for p := 0; p < op.Parallelism(); p++ {
			wg.Add(1)
			go func(opIdx, p int, op Operator, outEdges []Edge) {
				defer wg.Done()
				outs := make([]*outPort, len(outEdges))
				for i, e := range outEdges {
					outs[i] = &outPort{
						edge:      e,
						consumers: inputs[e.To][e.Port],
						done:      instDone[e.To],
						alive:     &alive[e.To],
						bufs:      make([][]Tuple, len(inputs[e.To][e.Port])),
						frameSize: frameSize,
					}
				}
				// Sink instances batch their output into frames and feed the
				// cursor; emit reports false once the cursor is closed, which
				// is how cancellation enters the job. The instance's first
				// frame is flushed eagerly (one tuple) so time-to-first-row
				// tracks the first tuple produced, not the first full frame.
				var sinkBuf []Tuple
				sinkStopped := false
				sinkSentFirst := false
				sendFrame := func() bool {
					if len(sinkBuf) == 0 {
						return !sinkStopped
					}
					f := Frame{Op: opIdx, Partition: p, Tuples: sinkBuf}
					sinkBuf = nil
					select {
					case cur.frames <- f:
						sinkSentFirst = true
						return true
					case <-cur.closed:
						sinkStopped = true
						return false
					}
				}
				emit := func(t Tuple) bool {
					if len(outs) == 0 {
						if sinkStopped {
							return false
						}
						if sinkBuf == nil {
							sinkBuf = getFrame(frameSize)
						}
						sinkBuf = append(sinkBuf, t)
						if len(sinkBuf) >= frameSize || !sinkSentFirst {
							return sendFrame()
						}
						return true
					}
					live := false
					for _, o := range outs {
						o.push(p, t)
						if atomic.LoadInt32(o.alive) > 0 {
							live = true
						}
					}
					return live
				}
				ins := make([]*In, ports[opIdx])
				for q := range ins {
					ins[q] = &In{ch: inputs[opIdx][q][p]}
				}
				if err := op.Run(p, ins, emit); err != nil {
					cur.recordJobErr(err)
				}
				if isSink[opIdx] {
					sendFrame() // flush the final partial frame
				}
				// Instance teardown: flush partial frames, unblock producers
				// targeting this instance, then retire it as a producer.
				for _, o := range outs {
					o.flush()
				}
				close(instDone[opIdx][p])
				atomic.AddInt32(&alive[opIdx], -1)
				for _, e := range outEdges {
					producerDone(e)
				}
			}(opIdx, p, op, outEdges)
		}
	}

	// Context watcher: cancellation closes the cursor, which stops the sinks
	// and cascades upstream exactly like an explicit Close.
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			cur.mu.Lock()
			cur.ctxErr = ctx.Err()
			cur.mu.Unlock()
			cur.closeOnce.Do(func() { close(cur.closed) })
		case <-cur.done:
		}
	}()

	// Completion: once every instance has exited the stream is final. The
	// job's spill manager (if any) is closed first, removing any run files
	// an operator left behind — this runs on every termination path, so a
	// caller that has observed Close/done can rely on zero leaked files.
	go func() {
		wg.Wait()
		if job.Spill != nil {
			if err := job.Spill.Close(); err != nil {
				cur.recordJobErr(err)
			}
		}
		close(cur.done)
		<-watcherDone
		close(cur.frames)
	}()
	return cur, nil
}
