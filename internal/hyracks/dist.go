package hyracks

import (
	"context"
	"fmt"
	"sync"
)

// This file is the runtime's distribution seam. A cluster layer (see
// internal/cluster) runs the SAME job plan on every node: each node derives
// the identical post-splice edge list via PlanEdges, spawns goroutines only
// for the operator instances its placement declares local, serializes frames
// bound for remote instances through DistSpec.Send, and injects frames
// arriving off the wire through DistRun.Inject. Same-node edges keep using
// the bounded channels (and remain eligible for FuseJob fusion); only edges
// whose endpoints straddle nodes touch the network.

// PlanEdges returns the job's post-splice edge list and the spliced-operator
// mask, exactly as the execution core computes them. Because splicing is a
// pure function of the job description, every node that compiles the same
// job derives the same slice — an edge's index in it is the identity used on
// the wire (DistSpec.Send / DistRun.Inject agree on it).
func PlanEdges(job *Job) ([]Edge, []bool) {
	return spliceEdges(job)
}

// DistSpec tells executeStream which operator instances run on this node and
// how to ship frames to instances elsewhere. All three hooks must be safe
// for concurrent use by multiple producer goroutines.
type DistSpec struct {
	// Local reports whether instance p of operator op runs on this node.
	// It must be a pure function, identical on every node (placement is
	// deterministic), and is consulted only for non-spliced operators.
	Local func(op, p int) bool
	// Send ships one frame for post-splice edge idx to remote consumer
	// instance toPart. It is called synchronously from the producing
	// instance's goroutine; the tuples slice is recycled after Send returns,
	// so implementations must serialize (not retain) it. A returned error
	// marks the remote side dead for that producer and is recorded as the
	// job error.
	Send func(edge, toPart int, tuples []Tuple) error
	// SendEOS announces that local producer instance fromPart of edge idx
	// has finished, retiring it from the remote consumers' producer counts.
	// The cluster layer routes it to every node holding consumer instances
	// the producer could target (for partition-preserving connectors, just
	// the node owning instance fromPart%consumerParallelism).
	SendEOS func(edge, fromPart int) error
}

// DistRun is the receive side of a distributed job on one node: the cluster
// layer feeds it frames and end-of-stream records read off the wire, and
// fails it when a peer dies. All methods are safe for concurrent use.
type DistRun struct {
	job          *Job
	edges        []Edge
	inputs       [][][]chan []Tuple
	instDone     [][]chan struct{}
	producerDone func(to, port int)
	failed       chan struct{}
	failOnce     sync.Once
	cur          *Cursor
}

// Inject delivers one frame from a remote producer to local consumer
// instance toPart of post-splice edge idx. It blocks until the frame is
// accepted, the consumer instance has finished (frame dropped), or the job
// has failed. Corrupt wire coordinates return an error rather than panic.
//
// Safety: the input channel closes only after every producer of the port has
// retired, and a producer's end-of-stream record travels the same ordered
// connection as its frames — so a frame being injected always precedes its
// producer's retirement and can never race a channel close.
func (r *DistRun) Inject(edge, toPart int, tuples []Tuple) error {
	if edge < 0 || edge >= len(r.edges) {
		return fmt.Errorf("hyracks: inject on unknown edge %d (job has %d)", edge, len(r.edges))
	}
	e := r.edges[edge]
	chs := r.inputs[e.To][e.Port]
	if toPart < 0 || toPart >= len(chs) {
		return fmt.Errorf("hyracks: inject edge %d partition %d out of range [0,%d)", edge, toPart, len(chs))
	}
	ch := chs[toPart]
	if ch == nil {
		return fmt.Errorf("hyracks: inject edge %d partition %d is not local", edge, toPart)
	}
	select {
	case ch <- tuples:
	case <-r.instDone[e.To][toPart]:
		// Consumer instance finished early; the frame is discarded.
	case <-r.failed:
	}
	return nil
}

// InjectEOS retires one remote producer instance of post-splice edge idx:
// the wire counterpart of the local producerDone teardown. The cluster layer
// calls it once per end-of-stream record received; when the port's last
// producer (local or remote) retires, its input channels close and local
// consumers see end of stream.
func (r *DistRun) InjectEOS(edge int) error {
	if edge < 0 || edge >= len(r.edges) {
		return fmt.Errorf("hyracks: eos on unknown edge %d (job has %d)", edge, len(r.edges))
	}
	e := r.edges[edge]
	r.producerDone(e.To, e.Port)
	return nil
}

// Fail aborts the job from outside: a peer node died, so frames and
// end-of-stream records this node is waiting for will never arrive. It
// records err as the job error, closes the failure signal (unblocking
// consumers parked in In.Next and producers parked in Inject), and closes
// the cursor so sink instances stop. It deliberately closes no data
// channels — those close only through the producer-retirement invariant, so
// in-flight sends never race a close. Idempotent.
func (r *DistRun) Fail(err error) {
	r.failOnce.Do(func() {
		r.cur.recordJobErr(err)
		close(r.failed)
		r.cur.closeOnce.Do(func() { close(r.cur.closed) })
	})
}

// ExecuteStreamDist starts the job's local slice on this node: goroutines
// and channels exist only for instances spec.Local claims, frames cross
// node boundaries through spec.Send/SendEOS, and the returned DistRun
// receives the inbound side. The returned Cursor streams the output of the
// sink instances placed on THIS node; a coordinator gathers the per-node
// cursors (see NewGatherCursor) into the global result.
func ExecuteStreamDist(ctx context.Context, job *Job, spec *DistSpec) (*Cursor, *DistRun, error) {
	if spec == nil || spec.Local == nil || spec.Send == nil || spec.SendEOS == nil {
		return nil, nil, fmt.Errorf("hyracks: ExecuteStreamDist requires a complete DistSpec")
	}
	return executeStream(ctx, job, spec)
}

// NewGatherCursor builds a Cursor fed by an external gatherer instead of a
// running job: the coordinator of a distributed run pushes frames received
// from the nodes' result streams and finishes the cursor when every node has
// reported completion (or one has failed). push delivers one frame, blocking
// while the consumer lags; it returns false once the consumer has closed the
// cursor or finish has been called, at which point the gatherer should stop
// (and propagate cancellation to the nodes). finish(err) ends the stream,
// recording err (may be nil) as the job error; it is idempotent and must be
// called on every termination path — Close blocks until it runs.
func NewGatherCursor() (cur *Cursor, push func(Frame) bool, finish func(error)) {
	c := &Cursor{
		frames: make(chan Frame, streamBuffer),
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	// Pushers may race finish (a node dies while another node's frames are
	// still arriving), so a single pump goroutine owns c.frames: pushers hand
	// frames to it through in, and only the pump ever closes c.frames.
	in := make(chan Frame)
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case f := <-in:
				// A frame already handed over must still reach the consumer
				// even if finish fires first — a graceful finish (all nodes
				// done) races the delivery of the final frame. Only a closed
				// (abandoned) cursor may drop it.
				select {
				case c.frames <- f:
				case <-c.closed:
				}
			case <-stop:
				close(c.frames)
				return
			}
		}
	}()
	var finishOnce sync.Once
	fin := func(err error) {
		finishOnce.Do(func() {
			c.recordJobErr(err)
			close(stop)
			close(c.done)
		})
	}
	p := func(f Frame) bool {
		select {
		case in <- f:
			return true
		case <-c.closed:
			return false
		case <-stop:
			return false
		}
	}
	return c, p, fin
}
