package hyracks

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"asterixdb/internal/adm"
)

// buildScanSelectAggJob assembles a small job: a partitioned source emitting
// integers, a select keeping even values, a per-partition local sum, and a
// single global sum — the same local/global split shape as Figure 6.
func buildScanSelectAggJob(partitions, perPartition int) *Job {
	job := &Job{}
	src := job.Add(&SourceOp{
		Label:      "source",
		Partitions: partitions,
		Produce: func(p int, emit func(Tuple) bool) error {
			for i := 0; i < perPartition; i++ {
				if !emit(Tuple{adm.Int64(int64(p*perPartition + i))}) {
					return nil
				}
			}
			return nil
		},
	})
	sel := job.Add(&SelectOp{
		Label:      "select-even",
		Partitions: partitions,
		Pred:       func(t Tuple) (bool, error) { n, _ := adm.NumericAsInt64(t[0]); return n%2 == 0, nil },
	})
	local := job.Add(&AggregateOp{
		Label:      "local-sum",
		Partitions: partitions,
		NewFold:    sumFold,
	})
	global := job.Add(&AggregateOp{
		Label:      "global-sum",
		Partitions: 1,
		NewFold:    sumFold,
	})
	job.Connect(src, sel, Connector{Kind: OneToOne})
	job.Connect(sel, local, Connector{Kind: OneToOne})
	job.Connect(local, global, Connector{Kind: MToNReplicating})
	return job
}

// sumFold is a streaming integer-sum fold for AggregateOp.
func sumFold() (func(Tuple) error, func() (Tuple, error)) {
	sum := int64(0)
	step := func(t Tuple) error {
		n, _ := adm.NumericAsInt64(t[0])
		sum += n
		return nil
	}
	finish := func() (Tuple, error) { return Tuple{adm.Int64(sum)}, nil }
	return step, finish
}

func TestExecuteScanSelectAggregate(t *testing.T) {
	const partitions, per = 4, 100
	job := buildScanSelectAggJob(partitions, per)
	results, err := Execute(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %v", results)
	}
	want := int64(0)
	for i := 0; i < partitions*per; i++ {
		if i%2 == 0 {
			want += int64(i)
		}
	}
	got, _ := adm.NumericAsInt64(results[0][0])
	if got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestStages(t *testing.T) {
	job := buildScanSelectAggJob(2, 10)
	stages, err := job.Stages()
	if err != nil {
		t.Fatal(err)
	}
	// source+select in stage 0, local agg blocks (stage 1), global agg (stage 2).
	if len(stages) != 3 {
		t.Fatalf("stages = %v", stages)
	}
	if len(stages[0]) != 2 {
		t.Errorf("stage 0 = %v", stages[0])
	}
}

func TestDescribe(t *testing.T) {
	job := buildScanSelectAggJob(2, 10)
	desc := job.Describe()
	for _, want := range []string{"source", "select-even", "local-sum", "global-sum", "MToNReplicatingConnector"} {
		if !strings.Contains(desc, want) {
			t.Errorf("Describe missing %q:\n%s", want, desc)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	job := &Job{}
	a := job.Add(&SourceOp{Label: "a", Partitions: 1, Produce: func(int, func(Tuple) bool) error { return nil }})
	b := job.Add(&SelectOp{Label: "b", Partitions: 1, Pred: func(Tuple) (bool, error) { return true, nil }})
	job.Connect(a, b, Connector{Kind: OneToOne})
	job.Connect(b, a, Connector{Kind: OneToOne})
	if _, err := job.Stages(); err == nil {
		t.Error("cycle should be detected")
	}
	if _, err := Execute(job); err == nil {
		t.Error("executing a cyclic job should fail")
	}
}

func TestSortLimitAndHashGroup(t *testing.T) {
	job := &Job{}
	src := job.Add(&SourceOp{
		Label: "source", Partitions: 2,
		Produce: func(p int, emit func(Tuple) bool) error {
			for i := 0; i < 50; i++ {
				if !emit(Tuple{adm.Int32(int32(i % 5)), adm.Int32(int32(i))}) {
					return nil
				}
			}
			return nil
		},
	})
	group := job.Add(&HashGroupOp{
		Label: "group", Partitions: 2, KeyColumns: []int{0},
		Reduce: func(key Tuple, rows []Tuple) (Tuple, error) {
			return Tuple{key[0], adm.Int64(int64(len(rows)))}, nil
		},
	})
	sorted := job.Add(&SortOp{Label: "sort", Partitions: 1, Columns: []int{0}})
	limit := job.Add(&LimitOp{Label: "limit", Partitions: 1, N: 3})
	job.Connect(src, group, Connector{Kind: MToNPartitioning, HashColumns: []int{0}})
	job.Connect(group, sorted, Connector{Kind: MToNReplicating})
	job.Connect(sorted, limit, Connector{Kind: OneToOne})
	results, err := Execute(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("limit produced %d tuples", len(results))
	}
	// Hash partitioning on the key column means every group lands in exactly
	// one group instance, so each group's count must be 20 (2 partitions x 10).
	for _, r := range results {
		n, _ := adm.NumericAsInt64(r[1])
		if n != 20 {
			t.Errorf("group %v count = %d, want 20", r[0], n)
		}
	}
}

func TestHybridHashJoin(t *testing.T) {
	job := &Job{}
	probe := job.Add(&SourceOp{
		Label: "probe", Partitions: 2,
		Produce: func(p int, emit func(Tuple) bool) error {
			for i := 0; i < 10; i++ {
				if !emit(Tuple{adm.Int32(int32(i))}) {
					return nil
				}
			}
			return nil
		},
	})
	build := job.Add(&SourceOp{
		Label: "build", Partitions: 1,
		Produce: func(p int, emit func(Tuple) bool) error {
			for i := 0; i < 20; i += 2 {
				if !emit(Tuple{adm.Int32(int32(i)), adm.String(fmt.Sprintf("even-%d", i))}) {
					return nil
				}
			}
			return nil
		},
	})
	join := job.Add(&HybridHashJoinOp{
		Label: "join", Partitions: 2,
		BuildKey: func(t Tuple) adm.Value { return t[0] },
		ProbeKey: func(t Tuple) adm.Value { return t[0] },
		Combine:  func(probe, build Tuple) Tuple { return Tuple{probe[0], build[1]} },
	})
	job.Connect(probe, join, Connector{Kind: MToNPartitioning, HashColumns: []int{0}})
	job.ConnectPort(build, join, 1, Connector{Kind: MToNPartitioning, HashColumns: []int{0}})
	results, err := Execute(job)
	if err != nil {
		t.Fatal(err)
	}
	// Each probe partition emits 0..9; even keys match. 2 partitions x 5 = 10.
	if len(results) != 10 {
		t.Errorf("join produced %d tuples, want 10", len(results))
	}
}

func TestOperatorError(t *testing.T) {
	job := &Job{}
	src := job.Add(&SourceOp{
		Label: "source", Partitions: 1,
		Produce: func(int, func(Tuple) bool) error { return fmt.Errorf("boom") },
	})
	sink := job.Add(&AssignOp{Label: "assign", Partitions: 1, Fn: func(t Tuple) (Tuple, error) { return t, nil }})
	job.Connect(src, sink, Connector{Kind: OneToOne})
	if _, err := Execute(job); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("expected operator error, got %v", err)
	}
}

// TestLimitCancelsUpstreamScan is the cancellation contract: once a limit has
// forwarded its N tuples it returns, and the sources feeding it must observe
// emit() == false and stop scanning instead of producing their entire input.
func TestLimitCancelsUpstreamScan(t *testing.T) {
	const partitions, perPartition, limitN = 2, 200_000, 5
	var produced atomic.Int64
	job := &Job{}
	src := job.Add(&SourceOp{
		Label: "source", Partitions: partitions,
		Produce: func(p int, emit func(Tuple) bool) error {
			for i := 0; i < perPartition; i++ {
				produced.Add(1)
				if !emit(Tuple{adm.Int64(int64(i))}) {
					return nil
				}
			}
			return nil
		},
	})
	sel := job.Add(&SelectOp{
		Label: "select", Partitions: partitions,
		Pred: func(Tuple) (bool, error) { return true, nil },
	})
	limit := job.Add(&LimitOp{Label: "limit", Partitions: 1, N: limitN})
	job.Connect(src, sel, Connector{Kind: OneToOne})
	job.Connect(sel, limit, Connector{Kind: MToNPartitioningMerging})
	results, err := Execute(job)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != limitN {
		t.Fatalf("limit produced %d tuples, want %d", len(results), limitN)
	}
	total := int64(partitions * perPartition)
	if got := produced.Load(); got >= total/2 {
		t.Errorf("sources produced %d of %d tuples; limit should have cancelled the scans early", got, total)
	}
}

// TestEarlyConsumerReturnDoesNotDeadlock exercises the per-instance done
// channels: a consumer that errors out mid-stream must not leave producers
// blocked on its input channel.
func TestEarlyConsumerReturnDoesNotDeadlock(t *testing.T) {
	job := &Job{}
	src := job.Add(&SourceOp{
		Label: "source", Partitions: 4,
		Produce: func(p int, emit func(Tuple) bool) error {
			for i := 0; i < 10_000; i++ {
				if !emit(Tuple{adm.Int64(int64(i))}) {
					return nil
				}
			}
			return nil
		},
	})
	n := 0
	sink := job.Add(&AssignOp{
		Label: "failing-assign", Partitions: 1,
		Fn: func(t Tuple) (Tuple, error) {
			n++
			if n > 3 {
				return nil, fmt.Errorf("synthetic failure")
			}
			return t, nil
		},
	})
	job.Connect(src, sink, Connector{Kind: MToNPartitioningMerging})
	if _, err := Execute(job); err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("expected synthetic failure, got %v", err)
	}
}
