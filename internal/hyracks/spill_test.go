package hyracks

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"asterixdb/internal/adm"
	"asterixdb/internal/runfile"
)

// These tests exercise the out-of-core operator paths directly, with a
// runfile.Manager the test owns, so they can assert the three acceptance
// properties: identical results to the unconstrained run, actual spilling
// with bounded in-memory tuple residency, and zero run files left on disk.

// padding makes each tuple ~120 bytes resident so small budgets force
// multi-round spilling at modest tuple counts.
var padding = adm.String("0123456789012345678901234567890123456789012345678901234567890123456789")

func intTuple(k, v int) Tuple {
	return Tuple{adm.Int64(int64(k)), adm.Int64(int64(v)), padding}
}

// runToSink executes the job and returns every sink tuple in deterministic
// (operator, partition) gather order.
func runToSink(t *testing.T, job *Job) []Tuple {
	t.Helper()
	out, err := Execute(job)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func encodeTuples(t *testing.T, tuples []Tuple) []string {
	t.Helper()
	out := make([]string, len(tuples))
	for i, tup := range tuples {
		var b []byte
		for _, c := range tup {
			b = adm.EncodeKey(b, c)
		}
		out[i] = string(b)
	}
	return out
}

func assertSameTuples(t *testing.T, name string, got, want []Tuple, ordered bool) {
	t.Helper()
	g, w := encodeTuples(t, got), encodeTuples(t, want)
	if !ordered {
		sort.Strings(g)
		sort.Strings(w)
	}
	if len(g) != len(w) {
		t.Fatalf("%s: got %d tuples, want %d", name, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: tuple %d differs", name, i)
		}
	}
}

// assertSpilledAndClean asserts the run actually spilled, stayed within the
// budget (plus one tuple of slack per instance: an instance must always be
// able to buffer the tuple in hand), and left nothing behind.
func assertSpilledAndClean(t *testing.T, mgr *runfile.Manager, budget int64, spillDir string) {
	t.Helper()
	st := mgr.Stats()
	if st.RunsCreated == 0 {
		t.Fatalf("expected spilling, but no runs were created (stats %+v)", st)
	}
	slack := int64(1024) // one oversized tuple of headroom per accounting step
	if st.PeakResident > budget+slack {
		t.Fatalf("peak resident %d bytes exceeds budget %d (+%d slack)", st.PeakResident, budget, slack)
	}
	if st.LiveRuns != 0 {
		t.Fatalf("%d run files still live after the job", st.LiveRuns)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	var leaked []string
	filepath.Walk(spillDir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			leaked = append(leaked, path)
		}
		return nil
	})
	if len(leaked) > 0 {
		t.Fatalf("leaked run files: %v", leaked)
	}
}

func sourceOf(tuples []Tuple) *SourceOp {
	return &SourceOp{
		Label:      "source",
		Partitions: 1,
		Produce: func(_ int, emit func(Tuple) bool) error {
			for _, t := range tuples {
				if !emit(t) {
					return nil
				}
			}
			return nil
		},
	}
}

func sinkJob(ops ...Operator) (*Job, []int) {
	job := &Job{}
	ids := make([]int, len(ops))
	for i, op := range ops {
		ids[i] = job.Add(op)
	}
	return job, ids
}

// TestExternalSortSpills sorts an input several times the budget and checks
// the output matches the in-memory sort exactly (same stable order).
func TestExternalSortSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var input []Tuple
	for i := 0; i < 3000; i++ {
		input = append(input, intTuple(rng.Intn(200), i))
	}
	sortOp := func(spill *runfile.Budget) *SortOp {
		return &SortOp{Label: "sort", Partitions: 1, Columns: []int{0}, Spill: spill}
	}
	run := func(spill *runfile.Budget) []Tuple {
		job, ids := sinkJob(sourceOf(input), sortOp(spill))
		job.Connect(ids[0], ids[1], Connector{Kind: OneToOne})
		return runToSink(t, job)
	}
	want := run(nil)

	const budget = 16 << 10 // ~360KB of input against a 16KB budget
	dir := t.TempDir()
	mgr := runfile.NewManager(dir, budget)
	got := run(&runfile.Budget{M: mgr, PerInstance: budget})
	// The external sort must reproduce the stable in-memory order exactly:
	// equal keys (200 distinct keys over 3000 rows) stay in arrival order.
	assertSameTuples(t, "external-sort", got, want, true)
	assertSpilledAndClean(t, mgr, budget, dir)
	if st := mgr.Stats(); st.RunsCreated < 3 {
		t.Fatalf("expected multiple sorted runs, got %d", st.RunsCreated)
	}
}

// TestExternalSortManyRunsMultiPassMerge drives the run count past the merge
// fan-in cap so the multi-pass merge path runs, and checks order and
// stability survive it.
func TestExternalSortManyRunsMultiPassMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var input []Tuple
	for i := 0; i < 4000; i++ {
		input = append(input, intTuple(rng.Intn(50), i))
	}
	const budget = 2 << 10 // ~15 tuples per run -> hundreds of runs
	dir := t.TempDir()
	mgr := runfile.NewManager(dir, budget)
	job, ids := sinkJob(sourceOf(input),
		&SortOp{Label: "sort", Partitions: 1, Columns: []int{0},
			Spill: &runfile.Budget{M: mgr, PerInstance: budget}})
	job.Connect(ids[0], ids[1], Connector{Kind: OneToOne})
	got := runToSink(t, job)

	if len(got) != len(input) {
		t.Fatalf("sorted %d tuples, want %d", len(got), len(input))
	}
	lastKey, lastOrd := int64(-1), int64(-1)
	for i, tup := range got {
		k, _ := adm.NumericAsInt64(tup[0])
		ord, _ := adm.NumericAsInt64(tup[1])
		if k < lastKey {
			t.Fatalf("tuple %d out of order: key %d after %d", i, k, lastKey)
		}
		if k == lastKey && ord < lastOrd {
			t.Fatalf("stability violated at tuple %d: ordinal %d after %d within key %d", i, ord, lastOrd, k)
		}
		lastKey, lastOrd = k, ord
	}
	if st := mgr.Stats(); st.RunsCreated <= mergeFanIn {
		t.Fatalf("test did not exceed the merge fan-in: %d runs", st.RunsCreated)
	}
	assertSpilledAndClean(t, mgr, budget, dir)
}

// TestMergeReadersChargedAgainstBudget merges a full fan-in of runs directly
// and asserts the readers' I/O buffers appear in the accounted peak — the bug
// was merge readers allocating bufio buffers entirely outside the budget —
// while the whole fan-in still fits the budget share plus slack.
func TestMergeReadersChargedAgainstBudget(t *testing.T) {
	const budget = 4 << 10
	dir := t.TempDir()
	mgr := runfile.NewManager(dir, budget)
	spill := &runfile.Budget{M: mgr, PerInstance: budget}
	o := &SortOp{Label: "sort", Partitions: 1, Columns: []int{0}, Spill: spill}

	var runs []*runfile.Run
	for i := 0; i < mergeFanIn; i++ {
		r, err := writeRun(spill, []Tuple{intTuple(i, 0), intTuple(i+mergeFanIn, 1)})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	bufSize, reserve := mergeReaderBudget(budget)
	if int64(bufSize)*(mergeFanIn+1) != reserve {
		t.Fatalf("reserve %d does not cover %d cursors of %d bytes", reserve, mergeFanIn+1, bufSize)
	}
	if reserve > budget/2 {
		t.Fatalf("reserve %d exceeds half the %d budget", reserve, budget)
	}

	mem := spill.NewInstance()
	var out []Tuple
	err := o.mergeRuns(mem, bufSize, runs, nil, func(tp Tuple) error {
		out = append(out, tp)
		return nil
	})
	mem.Close()
	for _, r := range runs {
		r.Release()
	}
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2*mergeFanIn {
		t.Fatalf("merged %d tuples, want %d", len(out), 2*mergeFanIn)
	}
	st := mgr.Stats()
	if st.PeakResident < int64(mergeFanIn*bufSize) {
		t.Fatalf("merge readers not charged: peak %d < %d open-reader bytes",
			st.PeakResident, mergeFanIn*bufSize)
	}
	if st.PeakResident > budget+1024 {
		t.Fatalf("merge peak %d exceeds budget %d (+1024 slack)", st.PeakResident, budget)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
}

func joinJob(build, probe []Tuple, spill *runfile.Budget) *Job {
	job := &Job{}
	probeSrc := job.Add(sourceOf(probe))
	buildSrc := job.Add(sourceOf(build))
	join := job.Add(&HybridHashJoinOp{
		Label:      "join",
		Partitions: 1,
		BuildKey:   func(t Tuple) adm.Value { return t[0] },
		ProbeKey:   func(t Tuple) adm.Value { return t[0] },
		Combine: func(p, b Tuple) Tuple {
			return Tuple{p[0], p[1], b[1]}
		},
		Spill: spill,
	})
	job.Connect(probeSrc, join, Connector{Kind: OneToOne})
	job.ConnectPort(buildSrc, join, 1, Connector{Kind: OneToOne})
	return job
}

// TestDynamicHashJoinSpills joins a build side several times the budget and
// compares against the in-memory join.
func TestDynamicHashJoinSpills(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var build, probe []Tuple
	for i := 0; i < 2500; i++ {
		build = append(build, intTuple(rng.Intn(500), i))
	}
	for i := 0; i < 1200; i++ {
		probe = append(probe, intTuple(rng.Intn(500), 100000+i))
	}
	want := runToSink(t, joinJob(build, probe, nil))

	const budget = 16 << 10
	dir := t.TempDir()
	mgr := runfile.NewManager(dir, budget)
	got := runToSink(t, joinJob(build, probe, &runfile.Budget{M: mgr, PerInstance: budget}))
	assertSameTuples(t, "dynamic-hash-join", got, want, false)
	assertSpilledAndClean(t, mgr, budget, dir)
}

// TestDynamicHashJoinPathologicalSkew gives every build tuple the same key,
// so recursive repartitioning can never subdivide the spilled partition; the
// join must detect no-progress and finish through the block nested-loop
// fallback instead of recursing forever or blowing the budget.
func TestDynamicHashJoinPathologicalSkew(t *testing.T) {
	var build, probe []Tuple
	for i := 0; i < 2000; i++ {
		build = append(build, intTuple(7, i))
	}
	for i := 0; i < 40; i++ {
		probe = append(probe, intTuple(7, 100000+i))
	}
	want := runToSink(t, joinJob(build, probe, nil))
	if len(want) != 2000*40 {
		t.Fatalf("cross size sanity: got %d", len(want))
	}

	const budget = 8 << 10
	dir := t.TempDir()
	mgr := runfile.NewManager(dir, budget)
	got := runToSink(t, joinJob(build, probe, &runfile.Budget{M: mgr, PerInstance: budget}))
	assertSameTuples(t, "skew-join", got, want, false)
	assertSpilledAndClean(t, mgr, budget, dir)
}

// TestDynamicHashJoinEarlyStop closes demand mid-probe (via a limit) and
// checks no run files survive.
func TestDynamicHashJoinEarlyStop(t *testing.T) {
	var build, probe []Tuple
	for i := 0; i < 2000; i++ {
		build = append(build, intTuple(i, i))
		probe = append(probe, intTuple(i, 100000+i))
	}
	const budget = 8 << 10
	dir := t.TempDir()
	mgr := runfile.NewManager(dir, budget)
	job := joinJob(build, probe, &runfile.Budget{M: mgr, PerInstance: budget})
	lim := job.Add(&LimitOp{Label: "limit", Partitions: 1, N: 5})
	job.Connect(2, lim, Connector{Kind: OneToOne})
	got := runToSink(t, job)
	if len(got) != 5 {
		t.Fatalf("limit returned %d tuples", len(got))
	}
	assertSpilledAndClean(t, mgr, budget, dir)
}

func groupJob(input []Tuple, spill *runfile.Budget) *Job {
	job := &Job{}
	src := job.Add(sourceOf(input))
	grp := job.Add(&HashGroupOp{
		Label:      "group",
		Partitions: 1,
		KeyColumns: []int{0},
		Reduce: func(key Tuple, rows []Tuple) (Tuple, error) {
			sum := int64(0)
			for _, r := range rows {
				v, _ := adm.NumericAsInt64(r[1])
				sum += v
			}
			// Also keep the bag of ordinals so within-group arrival order is
			// part of the asserted result.
			items := make([]adm.Value, len(rows))
			for i, r := range rows {
				items[i] = r[1]
			}
			return Tuple{key[0], adm.Int64(sum), &adm.OrderedList{Items: items}}, nil
		},
		Spill: spill,
	})
	job.Connect(src, grp, Connector{Kind: OneToOne})
	return job
}

// TestSpillableGroupBySpills groups an input several times the budget and
// compares groups (including within-group row order) against the in-memory
// operator.
func TestSpillableGroupBySpills(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	var input []Tuple
	for i := 0; i < 3000; i++ {
		input = append(input, intTuple(rng.Intn(300), i))
	}
	want := runToSink(t, groupJob(input, nil))

	const budget = 16 << 10
	dir := t.TempDir()
	mgr := runfile.NewManager(dir, budget)
	got := runToSink(t, groupJob(input, &runfile.Budget{M: mgr, PerInstance: budget}))
	assertSameTuples(t, "spill-group-by", got, want, false)
	assertSpilledAndClean(t, mgr, budget, dir)
}

// TestSpillableGroupByOneGiantGroup is the group-by skew case: a single
// group larger than the budget must still aggregate correctly (its rows have
// to be materialized for Reduce), with repartitioning giving up at the
// recursion cap instead of looping.
func TestSpillableGroupByOneGiantGroup(t *testing.T) {
	var input []Tuple
	for i := 0; i < 2000; i++ {
		input = append(input, intTuple(9, i))
	}
	want := runToSink(t, groupJob(input, nil))
	const budget = 8 << 10
	dir := t.TempDir()
	mgr := runfile.NewManager(dir, budget)
	got := runToSink(t, groupJob(input, &runfile.Budget{M: mgr, PerInstance: budget}))
	assertSameTuples(t, "giant-group", got, want, false)
	st := mgr.Stats()
	if st.RunsCreated == 0 {
		t.Fatal("expected the giant group to spill")
	}
	if st.LiveRuns != 0 {
		t.Fatalf("%d live runs leaked", st.LiveRuns)
	}
	mgr.Close()
	_ = fmt.Sprintf("%v", got)
}
