package hyracks

import (
	"fmt"
	"io"
	"strings"

	"asterixdb/internal/adm"
	"asterixdb/internal/runfile"
)

// This file implements fold-as-you-go aggregation for HashGroupOp: when the
// translator proves every consumer of a group-by's with-variables is an
// aggregate call (count/sum/avg/min/max, plain or sql-), the operator keeps
// one small accumulator per (group, aggregate) instead of materializing the
// group's row bag. Memory per group drops from O(rows) to O(1), and the
// spill path writes accumulator tuples — merged on reload — rather than raw
// rows. Row bags are materialized only when a with-variable is genuinely
// used as a bag.

// GroupAgg describes one incremental aggregate computed by a HashGroupOp
// running in fold-as-you-go mode.
type GroupAgg struct {
	// Func is the aggregate: count, sum, avg, min or max, optionally with
	// the "sql-" prefix for unknown-skipping semantics. Semantics mirror the
	// expression evaluator's builtin aggregates exactly (the differential
	// oracle evaluates those over the materialized bag).
	Func string
	// Col is the input tuple column the aggregate folds.
	Col int
}

// aggAccum is the running state of one aggregate in one group. One struct
// covers all five functions: count uses n; sum/avg use sum, n and bad;
// min/max use best and bad (best == nil means no comparable item yet).
type aggAccum struct {
	n    int64
	sum  float64
	best adm.Value
	bad  bool
}

// accumCols is the number of tuple columns one accumulator serializes to in
// a spilled accumulator run: {n, sum, best (nil when absent), bad}.
const accumCols = 4

// accumMemSize is the budget-accounting estimate for one accumulator's
// fixed part; a retained min/max value is accounted separately as it is
// (re)assigned.
const accumMemSize = 48

// aggFn is a GroupAgg.Func parsed once per operator run, so the per-row
// fold does not re-scan the function string.
type aggFn struct {
	base string // count, sum, avg, min, max
	sql  bool   // sql- prefix: skip unknowns instead of poisoning
}

func parseAggFn(fn string) aggFn {
	return aggFn{base: strings.TrimPrefix(fn, "sql-"), sql: strings.HasPrefix(fn, "sql-")}
}

func parseAggFns(aggs []GroupAgg) []aggFn {
	fns := make([]aggFn, len(aggs))
	for i, ag := range aggs {
		fns[i] = parseAggFn(ag.Func)
	}
	return fns
}

// bestDelta is the budget-accounting change from replacing an accumulator's
// retained value.
func bestDelta(old, new adm.Value) int64 {
	var d int64
	if new != nil {
		d += runfile.ValueMemSize(new)
	}
	if old != nil {
		d -= runfile.ValueMemSize(old)
	}
	return d
}

// fold updates the accumulator with one input value, mirroring the builtin
// aggregates' one-pass semantics. The returned delta is the change in
// resident bytes from any value the accumulator newly retains (min/max keep
// their best value alive).
func (a *aggAccum) fold(fn aggFn, v adm.Value) int64 {
	if fn.base == "count" {
		a.n++ // count counts every item, unknowns included
		return 0
	}
	if a.bad {
		return 0
	}
	if v == nil || adm.IsUnknown(v) {
		if !fn.sql {
			a.bad = true // AQL semantics: an unknown item poisons the result
		}
		return 0
	}
	switch fn.base {
	case "sum", "avg":
		d, ok := adm.NumericAsDouble(v)
		if !ok {
			a.bad = true
			return 0
		}
		a.sum += d
		a.n++
	case "min", "max":
		if a.best == nil {
			a.best = v
			return bestDelta(nil, v)
		}
		c, err := adm.Compare(v, a.best)
		if err != nil {
			a.bad = true
			return 0
		}
		if (fn.base == "max" && c > 0) || (fn.base == "min" && c < 0) {
			old := a.best
			a.best = v
			return bestDelta(old, v)
		}
	}
	return 0
}

// merge combines another accumulator of the same aggregate into a (used when
// a spilled partition's accumulator runs reload), returning the resident-
// byte delta like fold.
func (a *aggAccum) merge(fn aggFn, b *aggAccum) int64 {
	if fn.base == "count" {
		a.n += b.n
		return 0
	}
	if b.bad {
		a.bad = true
	}
	if a.bad {
		return 0
	}
	switch fn.base {
	case "sum", "avg":
		a.sum += b.sum
		a.n += b.n
	case "min", "max":
		if b.best == nil {
			return 0
		}
		if a.best == nil {
			a.best = b.best
			return bestDelta(nil, b.best)
		}
		c, err := adm.Compare(b.best, a.best)
		if err != nil {
			a.bad = true
			return 0
		}
		if (fn.base == "max" && c > 0) || (fn.base == "min" && c < 0) {
			old := a.best
			a.best = b.best
			return bestDelta(old, b.best)
		}
	}
	return 0
}

// finish produces the aggregate's final value.
func (a *aggAccum) finish(fn aggFn) adm.Value {
	switch fn.base {
	case "count":
		return adm.Int64(a.n)
	case "sum":
		if a.bad || a.n == 0 {
			return adm.Null{}
		}
		return adm.Double(a.sum)
	case "avg":
		if a.bad || a.n == 0 {
			return adm.Null{}
		}
		return adm.Double(a.sum / float64(a.n))
	case "min", "max":
		if a.bad || a.best == nil {
			return adm.Null{}
		}
		return a.best
	}
	return adm.Null{}
}

// encode appends the accumulator's serialized columns to a tuple.
func (a *aggAccum) encode(t Tuple) Tuple {
	return append(t, adm.Int64(a.n), adm.Double(a.sum), a.best, adm.Boolean(a.bad))
}

// decodeAccum reads one accumulator back from its serialized columns.
func decodeAccum(cols []adm.Value) (aggAccum, error) {
	if len(cols) < accumCols {
		return aggAccum{}, fmt.Errorf("hyracks: truncated accumulator tuple")
	}
	n, ok1 := cols[0].(adm.Int64)
	sum, ok2 := cols[1].(adm.Double)
	bad, ok3 := cols[3].(adm.Boolean)
	if !ok1 || !ok2 || !ok3 {
		return aggAccum{}, fmt.Errorf("hyracks: malformed accumulator tuple")
	}
	return aggAccum{n: int64(n), sum: float64(sum), best: cols[2], bad: bool(bad)}, nil
}

// aggGroup is one group's key and accumulators.
type aggGroup struct {
	key  Tuple
	accs []aggAccum
}

// aggPartition is one intra-instance hash partition of the incremental group
// table: resident groups until chosen as a spill victim, an accumulator run
// file after.
type aggPartition struct {
	groups map[string]*aggGroup
	order  []string
	bytes  int64
	w      *runfile.Writer
}

// runIncremental is HashGroupOp's fold-as-you-go path, entered when Aggs is
// set. Input rows fold directly into per-group accumulators; under memory
// pressure (many distinct groups) the largest partition's accumulators spill
// as (key, state) tuples and are merged on reload, recursively repartitioned
// at the next level-salted hash if a partition alone still exceeds the
// budget. No input row is ever materialized.
func (o *HashGroupOp) runIncremental(ins []*In, emit func(Tuple) bool) error {
	var mem *runfile.Instance
	if o.Spill != nil {
		mem = o.Spill.NewInstance()
		defer mem.Close()
	}
	next := func() (Tuple, bool, error) {
		t, more := ins[0].Next()
		return t, more, nil
	}
	err := o.aggStream(mem, 0, next, false, emit)
	if err == errStopDemand {
		return nil
	}
	return err
}

// spillContribution routes one stream tuple into an already-spilled
// partition's run: accumulator tuples pass through unchanged, raw rows fold
// into a one-row accumulator tuple first (merged with the rest on reload).
func (o *HashGroupOp) spillContribution(w *runfile.Writer, t Tuple, nk int, fns []aggFn, fromAcc bool) error {
	out := make(Tuple, 0, nk+len(o.Aggs)*accumCols)
	if fromAcc {
		out = append(out, t...)
	} else {
		for _, col := range o.KeyColumns {
			out = append(out, t[col])
		}
		for i, ag := range o.Aggs {
			var acc aggAccum
			acc.fold(fns[i], t[ag.Col])
			out = acc.encode(out)
		}
	}
	return w.Write(out)
}

// aggStream consumes a stream of either raw input rows (fromAcc false; keys
// at o.KeyColumns, aggregates folded from their Col) or reloaded accumulator
// tuples (fromAcc true; keys at columns [0, nk), accumulators merged from
// the trailing columns).
func (o *HashGroupOp) aggStream(mem *runfile.Instance, level int, next func() (Tuple, bool, error), fromAcc bool, emit func(Tuple) bool) error {
	nk := len(o.KeyColumns)
	fns := parseAggFns(o.Aggs)
	parts := make([]*aggPartition, spillFanout)
	for i := range parts {
		parts[i] = &aggPartition{groups: map[string]*aggGroup{}}
	}
	defer func() {
		for _, pt := range parts {
			if pt.w != nil {
				pt.w.Abort()
			}
		}
	}()
	atCap := level >= spillMaxLevel

	spillVictim := func() (bool, error) {
		vi := -1
		for i, pt := range parts {
			if pt.w == nil && len(pt.order) > 0 && (vi < 0 || pt.bytes > parts[vi].bytes) {
				vi = i
			}
		}
		if vi < 0 {
			return false, nil
		}
		pt := parts[vi]
		w, err := o.Spill.NewRun()
		if err != nil {
			return false, err
		}
		for _, ks := range pt.order {
			g := pt.groups[ks]
			t := make(Tuple, 0, nk+len(o.Aggs)*accumCols)
			t = append(t, g.key...)
			for i := range g.accs {
				t = g.accs[i].encode(t)
			}
			if err := w.Write(t); err != nil {
				w.Abort()
				return false, err
			}
		}
		pt.w = w
		mem.Release(pt.bytes)
		pt.groups, pt.order, pt.bytes = nil, nil, 0
		return true, nil
	}

	var scratch []byte
	for {
		t, more, err := next()
		if err != nil {
			return err
		}
		if !more {
			break
		}
		// Key columns: the operator's KeyColumns for raw rows, the leading
		// columns for reloaded accumulator tuples.
		scratch = scratch[:0]
		var key Tuple
		if fromAcc {
			key = t[:nk]
			for _, v := range key {
				scratch = adm.EncodeKey(scratch, v)
			}
		} else {
			for _, col := range o.KeyColumns {
				scratch = adm.EncodeKey(scratch, t[col])
			}
		}
		pt := parts[spillHash(level, scratch)]
		if pt.w != nil {
			if err := o.spillContribution(pt.w, t, nk, fns, fromAcc); err != nil {
				return err
			}
			continue
		}
		ks := string(scratch)
		g := pt.groups[ks]
		if g == nil {
			sz := int64(64+len(ks)) + int64(len(o.Aggs))*accumMemSize
			if mem != nil && !atCap {
				for !mem.Fits(sz) && pt.w == nil {
					ok, err := spillVictim()
					if err != nil {
						return err
					}
					if !ok {
						break
					}
				}
				if pt.w != nil {
					// This partition just became the victim; re-route the
					// tuple to its run.
					if err := o.spillContribution(pt.w, t, nk, fns, fromAcc); err != nil {
						return err
					}
					continue
				}
			}
			key2 := make(Tuple, nk)
			if fromAcc {
				copy(key2, t[:nk])
			} else {
				for i, col := range o.KeyColumns {
					key2[i] = t[col]
				}
			}
			g = &aggGroup{key: key2, accs: make([]aggAccum, len(o.Aggs))}
			pt.groups[ks] = g
			pt.order = append(pt.order, ks)
			if mem != nil {
				mem.Add(sz)
			}
			pt.bytes += sz
		}
		// Fold or merge the contribution; retained min/max values change the
		// group's resident footprint, so the deltas feed the accounting.
		var delta int64
		if fromAcc {
			pos := nk
			for i := range o.Aggs {
				acc, err := decodeAccum(t[pos : pos+accumCols])
				if err != nil {
					return err
				}
				delta += g.accs[i].merge(fns[i], &acc)
				pos += accumCols
			}
		} else {
			for i, ag := range o.Aggs {
				delta += g.accs[i].fold(fns[i], t[ag.Col])
			}
		}
		if delta != 0 {
			if mem != nil {
				mem.Add(delta)
			}
			pt.bytes += delta
		}
	}

	// Emit resident partitions first (releasing their memory), then merge
	// the spilled partitions' accumulator runs with the freed budget.
	for _, pt := range parts {
		if pt.w != nil {
			continue
		}
		for _, ks := range pt.order {
			g := pt.groups[ks]
			out := make(Tuple, 0, nk+len(o.Aggs))
			out = append(out, g.key...)
			for i := range o.Aggs {
				out = append(out, g.accs[i].finish(fns[i]))
			}
			if !emit(out) {
				return errStopDemand
			}
		}
		if mem != nil {
			mem.Release(pt.bytes)
		}
		pt.groups, pt.order, pt.bytes = nil, nil, 0
	}
	for _, pt := range parts {
		if pt.w == nil {
			continue
		}
		run, err := pt.w.Finish()
		pt.w = nil
		if err != nil {
			return err
		}
		rd, err := run.Open()
		if err != nil {
			run.Release()
			return err
		}
		err = o.aggStream(mem, level+1, func() (Tuple, bool, error) {
			cols, err := rd.Next()
			if err == io.EOF {
				return nil, false, nil
			}
			if err != nil {
				return nil, false, err
			}
			return Tuple(cols), true, nil
		}, true, emit)
		rd.Close()
		run.Release()
		if err != nil {
			return err
		}
	}
	return nil
}
