package hyracks

import (
	"errors"
	"io"

	"asterixdb/internal/adm"
	"asterixdb/internal/runfile"
)

// This file holds the out-of-core implementations of the blocking operators:
// the external merge sort behind SortOp, the robust dynamic hybrid hash join
// behind HybridHashJoinOp, and the spillable pre-aggregation behind
// HashGroupOp. Each is taken only when the operator carries a Spill budget
// (a share of the job's Config.MemoryBudget assigned by the translator);
// without one the in-memory paths in hyracks.go run unchanged.
//
// All three share the same discipline: tuples are accounted against the
// instance's budget share with runfile.TupleMemSize, spilling moves whole
// victim partitions (or sorted runs) into runfile run files, and every run
// is released by the operator on its way out — with the job's
// runfile.Manager as the backstop that removes anything left behind on any
// termination path.

const (
	// spillFanout is the number of intra-instance partitions the join build
	// side and the group-by hash table split into.
	spillFanout = 8
	// spillMaxLevel caps recursive repartitioning. Beyond it the join falls
	// back to the budget-chunked block nested-loop join and the group-by
	// groups in memory (a single group's rows must be materialized for
	// Reduce regardless).
	spillMaxLevel = 5
	// mergeFanIn caps how many sorted runs one merge pass reads, bounding
	// the merge's buffered-reader memory; more runs merge in multiple
	// passes.
	mergeFanIn = 16
)

// errStopDemand signals, through the recursive spill helpers, that emit
// returned false: every consumer is gone and the operator should unwind
// (cleaning up its runs) without reporting an error.
var errStopDemand = errors.New("hyracks: downstream demand gone")

// mergeReaderBufCap mirrors runfile's default reader buffer size; a merge
// reader never benefits from more than that.
const mergeReaderBufCap = 16 << 10

// mergeReaderBudget sizes the merge phase's buffered run readers against the
// operator's per-instance budget share. The merge holds up to mergeFanIn
// readers plus the in-memory tail open at once, and each reader's bufio
// buffer is real resident memory, so it must be accounted like everything
// else. The returned reserve — one buffer per potential cursor, at most half
// the share — is charged during accumulation (making the sort spill that
// much earlier) and exchanged at merge time for the actual per-reader
// charges, so the operator's accounted peak never exceeds its share in
// either phase.
func mergeReaderBudget(per int64) (bufSize int, reserve int64) {
	b := per / (2 * (mergeFanIn + 1))
	if b > mergeReaderBufCap {
		b = mergeReaderBufCap
	}
	if b < 64 {
		b = 64
	}
	return int(b), b * (mergeFanIn + 1)
}

// spillHash assigns a key to an intra-operator partition. The level salt
// decorrelates it both from the connector hash that routed tuples to this
// instance (which hashes the bare key bytes) and from the parent level's
// split, so recursive repartitioning actually subdivides skewed partitions.
//
// The raw FNV sum must be avalanched before truncating to the fanout:
// FNV's low bits evolve as a walk over only the low bits of each input
// byte, so `sum % 8` under a different level salt is merely a permutation
// of the previous level's buckets — every key of a spilled partition would
// re-land in one sub-partition and recursion would never subdivide. The
// murmur3 finalizer mixes every input bit into the bucket choice.
func spillHash(level int, key []byte) int {
	// Inlined FNV-1a (salt folded in first): this runs once per tuple on
	// every spill hot path, and hash.Hash32 would allocate per call.
	const (
		fnvOffset = 2166136261
		fnvPrime  = 16777619
	)
	x := uint32(fnvOffset)
	x = (x ^ 0xA5) * fnvPrime
	x = (x ^ uint32(byte(level))) * fnvPrime
	for _, b := range key {
		x = (x ^ uint32(b)) * fnvPrime
	}
	x ^= x >> 16
	x *= 0x85ebca6b
	x ^= x >> 13
	x *= 0xc2b2ae35
	x ^= x >> 16
	return int(x % uint32(spillFanout))
}

// writeRun spills tuples, in order, into a fresh run file attributed to
// the owning operator's budget.
func writeRun(b *runfile.Budget, rows []Tuple) (*runfile.Run, error) {
	w, err := b.NewRun()
	if err != nil {
		return nil, err
	}
	for _, t := range rows {
		if err := w.Write(t); err != nil {
			w.Abort()
			return nil, err
		}
	}
	return w.Finish()
}

// ----------------------------------------------------------------------------
// External merge sort (SortOp)
// ----------------------------------------------------------------------------

// runExternal is SortOp's out-of-core path: in-memory runs are sorted and
// spilled when the budget share fills, and emission k-way-merges the spilled
// runs with the final in-memory run, stably (ties resolve to the earlier
// run, preserving the stable-sort contract of the in-memory path).
func (o *SortOp) runExternal(ins []*In, emit func(Tuple) bool) error {
	mem := o.Spill.NewInstance()
	defer mem.Close()
	readerBuf, readerReserve := mergeReaderBudget(o.Spill.PerInstance)
	mem.Add(readerReserve)
	var runs []*runfile.Run
	defer func() {
		for _, r := range runs {
			r.Release()
		}
	}()

	var rows []Tuple
	var rowBytes int64
	for {
		t, more := ins[0].Next()
		if !more {
			break
		}
		sz := runfile.TupleMemSize(t)
		if !mem.Fits(sz) && len(rows) > 0 {
			if err := o.sortRows(rows); err != nil {
				return err
			}
			run, err := writeRun(o.Spill, rows)
			if err != nil {
				return err
			}
			runs = append(runs, run)
			mem.Release(rowBytes)
			rowBytes = 0
			rows = rows[:0]
		}
		mem.Add(sz)
		rowBytes += sz
		rows = append(rows, t)
	}
	if err := o.sortRows(rows); err != nil {
		return err
	}
	if len(runs) == 0 {
		for _, t := range rows {
			if !emit(t) {
				return nil
			}
		}
		return nil
	}

	// The merge phase begins: exchange the up-front reservation for the
	// actual per-reader charges mergeRuns makes as it opens each run.
	mem.Release(readerReserve)

	// Multi-pass merge: reduce the run count below the fan-in cap by merging
	// the oldest runs into one (keeping it at the front preserves run order,
	// and with it stability).
	for len(runs) > mergeFanIn {
		w, err := o.Spill.NewRun()
		if err != nil {
			return err
		}
		if err := o.mergeRuns(mem, readerBuf, runs[:mergeFanIn], nil, func(t Tuple) error { return w.Write(t) }); err != nil {
			w.Abort()
			return err
		}
		merged, err := w.Finish()
		if err != nil {
			return err
		}
		for _, r := range runs[:mergeFanIn] {
			r.Release()
		}
		runs = append([]*runfile.Run{merged}, runs[mergeFanIn:]...)
	}

	err := o.mergeRuns(mem, readerBuf, runs, rows, func(t Tuple) error {
		if !emit(t) {
			return errStopDemand
		}
		return nil
	})
	if err == errStopDemand {
		return nil
	}
	return err
}

// sortCursor iterates one sorted source during a merge: either a run file or
// the final in-memory run.
type sortCursor struct {
	r    *runfile.Reader // nil for the in-memory tail
	rows []Tuple
	idx  int
	cur  Tuple
	done bool
}

func (c *sortCursor) advance() error {
	if c.r == nil {
		if c.idx >= len(c.rows) {
			c.done = true
			return nil
		}
		c.cur = c.rows[c.idx]
		c.idx++
		return nil
	}
	cols, err := c.r.Next()
	if err == io.EOF {
		c.done = true
		return nil
	}
	if err != nil {
		return err
	}
	c.cur = Tuple(cols)
	return nil
}

// mergeRuns merges the sorted runs (plus an optional in-memory tail, which
// ranks after every run) into the sink. The cursor count is small (at most
// mergeFanIn+1) so each step selects the minimum by linear scan; ties pick
// the lowest cursor index, which is run-creation order — the stability rule.
// Each open reader's bufSize I/O buffer is charged against mem for as long
// as the reader is open.
func (o *SortOp) mergeRuns(mem *runfile.Instance, bufSize int, runs []*runfile.Run, tail []Tuple, sink func(Tuple) error) error {
	cursors := make([]*sortCursor, 0, len(runs)+1)
	defer func() {
		for _, c := range cursors {
			if c.r != nil {
				c.r.Close()
				mem.Release(int64(bufSize))
			}
		}
	}()
	for _, r := range runs {
		rd, err := r.OpenSized(bufSize)
		if err != nil {
			return err
		}
		mem.Add(int64(bufSize))
		cursors = append(cursors, &sortCursor{r: rd})
	}
	if tail != nil {
		cursors = append(cursors, &sortCursor{rows: tail})
	}
	for _, c := range cursors {
		if err := c.advance(); err != nil {
			return err
		}
	}
	for {
		var min *sortCursor
		for _, c := range cursors {
			if c.done {
				continue
			}
			if min == nil {
				min = c
				continue
			}
			cmp, err := o.compareTuples(c.cur, min.cur)
			if err != nil {
				return err
			}
			if cmp < 0 {
				min = c
			}
		}
		if min == nil {
			return nil
		}
		if err := sink(min.cur); err != nil {
			return err
		}
		if err := min.advance(); err != nil {
			return err
		}
	}
}

// ----------------------------------------------------------------------------
// Robust dynamic hybrid hash join (HybridHashJoinOp)
// ----------------------------------------------------------------------------

// joinPartition is one intra-instance slice of the build side: resident rows
// until the partition is chosen as a spill victim, a run-file writer after.
type joinPartition struct {
	rows  []Tuple
	bytes int64
	w     *runfile.Writer
}

// runSpilling is the dynamic hybrid hash join. Build tuples split across
// spillFanout partitions; under memory pressure the largest resident
// partition is evicted to a run file (dynamic victim selection — partitions
// stay resident as long as the actual data allows, rather than a static
// hybrid split). Probe tuples against resident partitions stream straight
// through; those destined for spilled partitions are deferred to probe run
// files and joined recursively afterwards.
func (o *HybridHashJoinOp) runSpilling(ins []*In, emit func(Tuple) bool) error {
	mem := o.Spill.NewInstance()
	defer mem.Close()

	parts := make([]*joinPartition, spillFanout)
	for i := range parts {
		parts[i] = &joinPartition{}
	}
	probeW := make([]*runfile.Writer, spillFanout)
	var pending []*runfile.Run
	defer func() {
		// Abandoned writers and runs on error/early-return paths.
		for _, pt := range parts {
			if pt.w != nil {
				pt.w.Abort()
			}
		}
		for _, w := range probeW {
			if w != nil {
				w.Abort()
			}
		}
		for _, r := range pending {
			r.Release()
		}
	}()

	spillVictim := func() (bool, error) {
		vi := -1
		for i, pt := range parts {
			if pt.w == nil && len(pt.rows) > 0 && (vi < 0 || pt.bytes > parts[vi].bytes) {
				vi = i
			}
		}
		if vi < 0 {
			return false, nil
		}
		pt := parts[vi]
		w, err := o.Spill.NewRun()
		if err != nil {
			return false, err
		}
		for _, t := range pt.rows {
			if err := w.Write(t); err != nil {
				w.Abort()
				return false, err
			}
		}
		pt.w = w
		mem.Release(pt.bytes)
		pt.rows, pt.bytes = nil, 0
		return true, nil
	}

	// Join Build activity.
	var scratch []byte
	for {
		t, more := ins[1].Next()
		if !more {
			break
		}
		scratch = adm.EncodeKey(scratch[:0], o.BuildKey(t))
		pt := parts[spillHash(0, scratch)]
		if pt.w == nil {
			sz := runfile.TupleMemSize(t)
			for !mem.Fits(sz) && pt.w == nil {
				ok, err := spillVictim()
				if err != nil {
					return err
				}
				if !ok {
					break // nothing evictable; overshoot by this tuple
				}
			}
			if pt.w == nil {
				mem.Add(sz)
				pt.rows = append(pt.rows, t)
				pt.bytes += sz
				continue
			}
		}
		if err := pt.w.Write(t); err != nil {
			return err
		}
	}

	// Hash table over the partitions that stayed resident.
	table := map[string][]Tuple{}
	for _, pt := range parts {
		for _, t := range pt.rows {
			scratch = adm.EncodeKey(scratch[:0], o.BuildKey(t))
			k := string(scratch)
			table[k] = append(table[k], t)
		}
	}

	// Join Probe activity: stream against resident partitions, defer the
	// rest to per-partition probe run files.
	for {
		t, more := ins[0].Next()
		if !more {
			break
		}
		scratch = adm.EncodeKey(scratch[:0], o.ProbeKey(t))
		pi := spillHash(0, scratch)
		if parts[pi].w == nil {
			for _, b := range table[string(scratch)] {
				if !emit(o.Combine(t, b)) {
					return nil
				}
			}
			continue
		}
		if probeW[pi] == nil {
			w, err := o.Spill.NewRun()
			if err != nil {
				return err
			}
			probeW[pi] = w
		}
		if err := probeW[pi].Write(t); err != nil {
			return err
		}
	}

	// Release the resident build memory before recursing into spilled pairs.
	table = nil
	for _, pt := range parts {
		if pt.w == nil && pt.bytes > 0 {
			mem.Release(pt.bytes)
			pt.rows, pt.bytes = nil, 0
		}
	}

	// Recursive phase: join each spilled (build, probe) pair.
	for pi, pt := range parts {
		if pt.w == nil {
			continue
		}
		bRun, err := pt.w.Finish()
		pt.w = nil
		if err != nil {
			return err
		}
		pending = append(pending, bRun)
		var pRun *runfile.Run
		if probeW[pi] != nil {
			pRun, err = probeW[pi].Finish()
			probeW[pi] = nil
			if err != nil {
				return err
			}
			pending = append(pending, pRun)
		}
		err = o.joinRuns(mem, bRun, pRun, 1, emit)
		bRun.Release()
		pRun.Release()
		if err == errStopDemand {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// joinRuns joins one spilled (build, probe) pair: loading the build side
// when it fits the budget share, repartitioning both sides at the next hash
// level when it does not, and falling back to the block nested-loop join at
// the recursion cap or when repartitioning makes no progress (every build
// tuple has the same key — the pathological-skew case repartitioning can
// never subdivide).
func (o *HybridHashJoinOp) joinRuns(mem *runfile.Instance, build, probe *runfile.Run, level int, emit func(Tuple) bool) error {
	if build == nil || probe == nil || build.Tuples() == 0 || probe.Tuples() == 0 {
		return nil
	}
	if build.MemBytes() <= o.Spill.PerInstance {
		return o.hashJoinRunPair(mem, build, probe, emit)
	}
	if level >= spillMaxLevel {
		return o.blockJoinRunPair(mem, build, probe, emit)
	}
	bSubs, err := o.partitionRun(build, level, o.BuildKey)
	if err != nil {
		releaseRuns(bSubs)
		return err
	}
	pSubs, err := o.partitionRun(probe, level, o.ProbeKey)
	if err != nil {
		releaseRuns(bSubs)
		releaseRuns(pSubs)
		return err
	}
	defer releaseRuns(bSubs)
	defer releaseRuns(pSubs)
	for i := range bSubs {
		b, p := bSubs[i], pSubs[i]
		var err error
		if b != nil && b.Tuples() == build.Tuples() && b.MemBytes() > o.Spill.PerInstance {
			// No progress: the whole parent landed in one child and still
			// does not fit. Rehashing deeper cannot help; go robust.
			err = o.blockJoinRunPair(mem, b, p, emit)
		} else {
			err = o.joinRuns(mem, b, p, level+1, emit)
		}
		if b != nil {
			b.Release()
		}
		if p != nil {
			p.Release()
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func releaseRuns(runs []*runfile.Run) {
	for _, r := range runs {
		if r != nil {
			r.Release()
		}
	}
}

// partitionRun splits a run into spillFanout sub-runs by the level-salted
// hash of each tuple's key; empty sub-partitions return nil.
func (o *HybridHashJoinOp) partitionRun(run *runfile.Run, level int, key func(Tuple) adm.Value) ([]*runfile.Run, error) {
	writers := make([]*runfile.Writer, spillFanout)
	abort := func() {
		for _, w := range writers {
			if w != nil {
				w.Abort()
			}
		}
	}
	rd, err := run.Open()
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	var scratch []byte
	for {
		cols, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			abort()
			return nil, err
		}
		t := Tuple(cols)
		scratch = adm.EncodeKey(scratch[:0], key(t))
		pi := spillHash(level, scratch)
		if writers[pi] == nil {
			w, err := o.Spill.NewRun()
			if err != nil {
				abort()
				return nil, err
			}
			writers[pi] = w
		}
		if err := writers[pi].Write(t); err != nil {
			abort()
			return nil, err
		}
	}
	subs := make([]*runfile.Run, spillFanout)
	for i, w := range writers {
		if w == nil {
			continue
		}
		r, err := w.Finish()
		writers[i] = nil
		if err != nil {
			abort()
			releaseRuns(subs)
			return nil, err
		}
		subs[i] = r
	}
	return subs, nil
}

// hashJoinRunPair loads the whole build run into a hash table (it fits the
// budget share) and streams the probe run through it.
func (o *HybridHashJoinOp) hashJoinRunPair(mem *runfile.Instance, build, probe *runfile.Run, emit func(Tuple) bool) error {
	if probe == nil || probe.Tuples() == 0 {
		return nil
	}
	table := map[string][]Tuple{}
	var loaded int64
	defer func() { mem.Release(loaded) }()
	br, err := build.Open()
	if err != nil {
		return err
	}
	var scratch []byte
	for {
		cols, err := br.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			br.Close()
			return err
		}
		t := Tuple(cols)
		sz := runfile.TupleMemSize(t)
		mem.Add(sz)
		loaded += sz
		scratch = adm.EncodeKey(scratch[:0], o.BuildKey(t))
		table[string(scratch)] = append(table[string(scratch)], t)
	}
	br.Close()
	pr, err := probe.Open()
	if err != nil {
		return err
	}
	defer pr.Close()
	for {
		cols, err := pr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		t := Tuple(cols)
		scratch = adm.EncodeKey(scratch[:0], o.ProbeKey(t))
		for _, b := range table[string(scratch)] {
			if !emit(o.Combine(t, b)) {
				return errStopDemand
			}
		}
	}
}

// blockJoinRunPair is the safe fallback for build runs that can never fit:
// the build run is read in budget-sized chunks and the probe run is
// re-streamed once per chunk. Memory stays bounded at one chunk regardless
// of key skew; the cost is extra probe passes, not failure.
func (o *HybridHashJoinOp) blockJoinRunPair(mem *runfile.Instance, build, probe *runfile.Run, emit func(Tuple) bool) error {
	if probe == nil || probe.Tuples() == 0 {
		return nil
	}
	br, err := build.Open()
	if err != nil {
		return err
	}
	defer br.Close()
	var scratch []byte
	buildDone := false
	for !buildDone {
		table := map[string][]Tuple{}
		var chunkBytes int64
		chunkTuples := 0
		for {
			cols, err := br.Next()
			if err == io.EOF {
				buildDone = true
				break
			}
			if err != nil {
				mem.Release(chunkBytes)
				return err
			}
			t := Tuple(cols)
			sz := runfile.TupleMemSize(t)
			mem.Add(sz)
			chunkBytes += sz
			scratch = adm.EncodeKey(scratch[:0], o.BuildKey(t))
			table[string(scratch)] = append(table[string(scratch)], t)
			chunkTuples++
			if !mem.Fits(1) {
				break // chunk at capacity; next tuple starts a new chunk
			}
		}
		if chunkTuples == 0 {
			mem.Release(chunkBytes)
			break
		}
		pr, err := probe.Open()
		if err != nil {
			mem.Release(chunkBytes)
			return err
		}
		for {
			cols, err := pr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				pr.Close()
				mem.Release(chunkBytes)
				return err
			}
			t := Tuple(cols)
			scratch = adm.EncodeKey(scratch[:0], o.ProbeKey(t))
			for _, b := range table[string(scratch)] {
				if !emit(o.Combine(t, b)) {
					pr.Close()
					mem.Release(chunkBytes)
					return errStopDemand
				}
			}
		}
		pr.Close()
		mem.Release(chunkBytes)
	}
	return nil
}

// ----------------------------------------------------------------------------
// Spillable pre-aggregation (HashGroupOp)
// ----------------------------------------------------------------------------

// runSpilling is HashGroupOp's out-of-core path.
func (o *HashGroupOp) runSpilling(ins []*In, emit func(Tuple) bool) error {
	mem := o.Spill.NewInstance()
	defer mem.Close()
	err := o.groupStream(mem, 0, func() (Tuple, bool, error) {
		t, more := ins[0].Next()
		return t, more, nil
	}, emit)
	if err == errStopDemand {
		return nil
	}
	return err
}

// spillGroup is one group's materialized state.
type spillGroup struct {
	key  Tuple
	rows []Tuple
}

// groupPartition is one intra-instance hash partition of the group table:
// resident groups until chosen as a spill victim, a raw-tuple run file
// after.
type groupPartition struct {
	groups map[string]*spillGroup
	order  []string
	bytes  int64
	w      *runfile.Writer
}

// groupStream consumes a tuple stream, grouping into spillFanout hash
// partitions. Under pressure the largest resident partition's raw tuples
// spill to a run file (per-group arrival order is preserved, so
// with-variable bags reload identically); spilled partitions re-aggregate
// recursively at the next hash level. At the recursion cap the partition
// groups in memory regardless — Reduce needs a group's full row set, so a
// single oversized group is materialized either way; the cap just stops
// futile repartitioning.
func (o *HashGroupOp) groupStream(mem *runfile.Instance, level int, next func() (Tuple, bool, error), emit func(Tuple) bool) error {

	parts := make([]*groupPartition, spillFanout)
	for i := range parts {
		parts[i] = &groupPartition{groups: map[string]*spillGroup{}}
	}
	defer func() {
		for _, pt := range parts {
			if pt.w != nil {
				pt.w.Abort()
			}
		}
	}()
	atCap := level >= spillMaxLevel

	spillVictim := func() (bool, error) {
		vi := -1
		for i, pt := range parts {
			if pt.w == nil && len(pt.order) > 0 && (vi < 0 || pt.bytes > parts[vi].bytes) {
				vi = i
			}
		}
		if vi < 0 {
			return false, nil
		}
		pt := parts[vi]
		w, err := o.Spill.NewRun()
		if err != nil {
			return false, err
		}
		for _, ks := range pt.order {
			for _, t := range pt.groups[ks].rows {
				if err := w.Write(t); err != nil {
					w.Abort()
					return false, err
				}
			}
		}
		pt.w = w
		mem.Release(pt.bytes)
		pt.groups, pt.order, pt.bytes = nil, nil, 0
		return true, nil
	}

	var scratch []byte
	for {
		t, more, err := next()
		if err != nil {
			return err
		}
		if !more {
			break
		}
		scratch = scratch[:0]
		for _, col := range o.KeyColumns {
			scratch = adm.EncodeKey(scratch, t[col])
		}
		pt := parts[spillHash(level, scratch)]
		if pt.w != nil {
			if err := pt.w.Write(t); err != nil {
				return err
			}
			continue
		}
		ks := string(scratch)
		sz := runfile.TupleMemSize(t)
		if pt.groups[ks] == nil {
			sz += 64 + int64(len(ks)) // new group: key copy + map entry
		}
		if !atCap {
			for !mem.Fits(sz) && pt.w == nil {
				ok, err := spillVictim()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
			}
			if pt.w != nil {
				if err := pt.w.Write(t); err != nil {
					return err
				}
				continue
			}
		}
		g := pt.groups[ks]
		if g == nil {
			key := make(Tuple, 0, len(o.KeyColumns))
			for _, col := range o.KeyColumns {
				key = append(key, t[col])
			}
			g = &spillGroup{key: key}
			pt.groups[ks] = g
			pt.order = append(pt.order, ks)
		}
		g.rows = append(g.rows, t)
		mem.Add(sz)
		pt.bytes += sz
	}

	// Emit every resident partition first (releasing its memory), then
	// re-aggregate the spilled partitions with the freed budget.
	for _, pt := range parts {
		if pt.w != nil {
			continue
		}
		for _, ks := range pt.order {
			g := pt.groups[ks]
			out, err := o.Reduce(g.key, g.rows)
			if err != nil {
				return err
			}
			if out != nil && !emit(out) {
				return errStopDemand
			}
		}
		mem.Release(pt.bytes)
		pt.groups, pt.order, pt.bytes = nil, nil, 0
	}
	for _, pt := range parts {
		if pt.w == nil {
			continue
		}
		run, err := pt.w.Finish()
		pt.w = nil
		if err != nil {
			return err
		}
		rd, err := run.Open()
		if err != nil {
			run.Release()
			return err
		}
		err = o.groupStream(mem, level+1, func() (Tuple, bool, error) {
			cols, err := rd.Next()
			if err == io.EOF {
				return nil, false, nil
			}
			if err != nil {
				return nil, false, err
			}
			return Tuple(cols), true, nil
		}, emit)
		rd.Close()
		run.Release()
		if err != nil {
			return err
		}
	}
	return nil
}
