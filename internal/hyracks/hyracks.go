// Package hyracks implements a data-parallel dataflow runtime modelled on the
// Hyracks layer of the Asterix software stack (Section 4.1 of the paper).
// Jobs are DAGs of Operators and Connectors; Operators expand into Activities
// whose blocking edges partition the job into Stages; each Stage runs its
// operator instances (one per partition) in parallel and Connectors
// redistribute tuples between them.
package hyracks

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"asterixdb/internal/adm"
)

// Tuple is one row flowing between operators: a fixed-width slice of ADM
// values whose column meaning is established by the producing operator.
type Tuple []adm.Value

// ConnectorKind enumerates the connector types Hyracks provides.
type ConnectorKind string

// The six connector kinds listed in Section 4.1.
const (
	OneToOne                   ConnectorKind = "OneToOneConnector"
	MToNPartitioning           ConnectorKind = "MToNPartitioningConnector"
	MToNReplicating            ConnectorKind = "MToNReplicatingConnector"
	MToNPartitioningMerging    ConnectorKind = "MToNPartitioningMergingConnector"
	LocalityAwareMToNPartition ConnectorKind = "LocalityAwareMToNPartitioningConnector"
	HashPartitioningShuffle    ConnectorKind = "HashPartitioningShuffleConnector"
)

// Operator is one node of a Hyracks job DAG. Implementations consume their
// input partitions and produce output partitions; blocking operators consume
// all input before emitting (which introduces a Stage boundary).
type Operator interface {
	// Name identifies the operator in EXPLAIN output and the Figure 6 test.
	Name() string
	// Parallelism is the number of instances evaluated in parallel.
	Parallelism() int
	// Blocking reports whether the operator must consume all of its input
	// before producing any output (e.g. sort, the build side of a hash join,
	// a global aggregate).
	Blocking() bool
	// Run executes one instance of the operator for the given partition. The
	// input channel is nil for source operators; the emit function forwards a
	// tuple downstream.
	Run(partition int, in <-chan Tuple, emit func(Tuple)) error
}

// Connector routes tuples from a producer operator to a consumer operator.
type Connector struct {
	Kind ConnectorKind
	// HashColumns selects the columns hashed by partitioning connectors.
	HashColumns []int
}

// Edge wires the output of one operator to the input of another through a
// connector.
type Edge struct {
	From      int // operator index
	To        int // operator index
	Connector Connector
}

// Job is a DAG of operators and connectors, the unit Hyracks accepts for
// execution.
type Job struct {
	Operators []Operator
	Edges     []Edge
}

// Add appends an operator and returns its index.
func (j *Job) Add(op Operator) int {
	j.Operators = append(j.Operators, op)
	return len(j.Operators) - 1
}

// Connect wires from -> to with the given connector.
func (j *Job) Connect(from, to int, c Connector) {
	j.Edges = append(j.Edges, Edge{From: from, To: to, Connector: c})
}

// Describe renders the job in a compact textual form (one operator per line,
// bottom-up, with the connector that feeds its consumer), the format asserted
// by the Figure 6 test and printed by EXPLAIN.
func (j *Job) Describe() string {
	var sb strings.Builder
	for i, op := range j.Operators {
		sb.WriteString(op.Name())
		for _, e := range j.Edges {
			if e.From == i {
				fmt.Fprintf(&sb, "  --%s-->  %s", e.Connector.Kind, j.Operators[e.To].Name())
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Stages partitions the job's operators into stages separated by blocking
// operators: a stage can start only after the stages producing its blocked
// inputs have completed. The returned slices contain operator indexes in
// topological order.
func (j *Job) Stages() ([][]int, error) {
	order, err := j.topoOrder()
	if err != nil {
		return nil, err
	}
	stageOf := make([]int, len(j.Operators))
	for _, idx := range order {
		stage := 0
		for _, e := range j.Edges {
			if e.To != idx {
				continue
			}
			s := stageOf[e.From]
			// A blocking consumer starts a new stage after its producers.
			if j.Operators[idx].Blocking() {
				s++
			}
			if s > stage {
				stage = s
			}
		}
		stageOf[idx] = stage
	}
	maxStage := 0
	for _, s := range stageOf {
		if s > maxStage {
			maxStage = s
		}
	}
	stages := make([][]int, maxStage+1)
	for _, idx := range order {
		stages[stageOf[idx]] = append(stages[stageOf[idx]], idx)
	}
	return stages, nil
}

func (j *Job) topoOrder() ([]int, error) {
	indeg := make([]int, len(j.Operators))
	for _, e := range j.Edges {
		indeg[e.To]++
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range j.Edges {
			if e.From == n {
				indeg[e.To]--
				if indeg[e.To] == 0 {
					queue = append(queue, e.To)
				}
			}
		}
	}
	if len(order) != len(j.Operators) {
		return nil, fmt.Errorf("hyracks: job graph has a cycle")
	}
	return order, nil
}

// Execute runs the job and returns the tuples emitted by sink operators
// (operators with no outgoing edge), gathered across their partitions.
// Each operator instance runs in its own goroutine; connectors are
// implemented as channel fan-out/fan-in with hash partitioning, replication
// or merging as requested.
func Execute(job *Job) ([]Tuple, error) {
	if _, err := job.Stages(); err != nil {
		return nil, err
	}
	// Channels feeding each operator instance.
	inputs := make([][]chan Tuple, len(job.Operators))
	producerCount := make([]int, len(job.Operators))
	for i, op := range job.Operators {
		inputs[i] = make([]chan Tuple, op.Parallelism())
		for p := range inputs[i] {
			inputs[i][p] = make(chan Tuple, 1024)
		}
	}
	for _, e := range job.Edges {
		producerCount[e.To] += job.Operators[e.From].Parallelism()
	}

	var mu sync.Mutex
	var results []Tuple
	var firstErr error
	recordErr := func(err error) {
		mu.Lock()
		if firstErr == nil && err != nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// remaining producers per consumer; when it reaches zero the consumer's
	// input channels are closed.
	remaining := make([]int, len(job.Operators))
	copy(remaining, producerCount)
	var remainingMu sync.Mutex
	producerDone := func(consumer int) {
		remainingMu.Lock()
		remaining[consumer]--
		if remaining[consumer] == 0 {
			for _, ch := range inputs[consumer] {
				close(ch)
			}
		}
		remainingMu.Unlock()
	}

	var wg sync.WaitGroup
	for opIdx, op := range job.Operators {
		outEdges := outgoing(job, opIdx)
		for p := 0; p < op.Parallelism(); p++ {
			wg.Add(1)
			go func(opIdx, p int, op Operator, outEdges []Edge) {
				defer wg.Done()
				emit := func(t Tuple) {
					if len(outEdges) == 0 {
						mu.Lock()
						results = append(results, t)
						mu.Unlock()
						return
					}
					for _, e := range outEdges {
						routeTuple(job, e, p, t, inputs[e.To])
					}
				}
				var in <-chan Tuple
				if producerCount[opIdx] > 0 {
					in = inputs[opIdx][p]
				}
				if err := op.Run(p, in, emit); err != nil {
					recordErr(err)
					// Drain the input so producers do not block forever.
					if in != nil {
						for range in {
						}
					}
				}
				for _, e := range outEdges {
					producerDone(e.To)
				}
			}(opIdx, p, op, outEdges)
		}
	}
	wg.Wait()
	return results, firstErr
}

func outgoing(job *Job, op int) []Edge {
	var out []Edge
	for _, e := range job.Edges {
		if e.From == op {
			out = append(out, e)
		}
	}
	return out
}

// routeTuple applies the edge's connector semantics to deliver a tuple from
// producer partition p to the consumer's input channels.
func routeTuple(job *Job, e Edge, producerPartition int, t Tuple, consumers []chan Tuple) {
	switch e.Connector.Kind {
	case OneToOne, LocalityAwareMToNPartition:
		consumers[producerPartition%len(consumers)] <- t
	case MToNReplicating:
		for _, ch := range consumers {
			ch <- t
		}
	case MToNPartitioning, HashPartitioningShuffle, MToNPartitioningMerging:
		h := fnv.New32a()
		for _, col := range e.Connector.HashColumns {
			if col < len(t) {
				h.Write(adm.EncodeKey(nil, t[col]))
			}
		}
		consumers[int(h.Sum32())%len(consumers)] <- t
	default:
		consumers[producerPartition%len(consumers)] <- t
	}
}

// ----------------------------------------------------------------------------
// Operator library
//
// Hyracks provides a library of operators (the paper counts 53); the subset
// below covers what AQL physical plans need: source scans, select, assign
// (projection / expression evaluation), sort, limit, hash group/aggregate,
// local and global aggregation, nested-loop and hash joins, and index search
// descriptors used by compiled access paths.
// ----------------------------------------------------------------------------

// SourceOp produces tuples from a per-partition source function.
type SourceOp struct {
	Label      string
	Partitions int
	// Produce is called once per partition and must call emit for every tuple.
	Produce func(partition int, emit func(Tuple)) error
}

// Name implements Operator.
func (o *SourceOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *SourceOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *SourceOp) Blocking() bool { return false }

// Run implements Operator.
func (o *SourceOp) Run(partition int, _ <-chan Tuple, emit func(Tuple)) error {
	return o.Produce(partition, emit)
}

// SelectOp filters tuples by a predicate.
type SelectOp struct {
	Label      string
	Partitions int
	Pred       func(Tuple) (bool, error)
}

// Name implements Operator.
func (o *SelectOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *SelectOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *SelectOp) Blocking() bool { return false }

// Run implements Operator.
func (o *SelectOp) Run(_ int, in <-chan Tuple, emit func(Tuple)) error {
	for t := range in {
		ok, err := o.Pred(t)
		if err != nil {
			return err
		}
		if ok {
			emit(t)
		}
	}
	return nil
}

// AssignOp maps each input tuple to an output tuple (projection or computed
// columns).
type AssignOp struct {
	Label      string
	Partitions int
	Fn         func(Tuple) (Tuple, error)
}

// Name implements Operator.
func (o *AssignOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *AssignOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *AssignOp) Blocking() bool { return false }

// Run implements Operator.
func (o *AssignOp) Run(_ int, in <-chan Tuple, emit func(Tuple)) error {
	for t := range in {
		out, err := o.Fn(t)
		if err != nil {
			return err
		}
		if out != nil {
			emit(out)
		}
	}
	return nil
}

// SortOp sorts its input by the given columns (all ascending unless Desc).
type SortOp struct {
	Label      string
	Partitions int
	Columns    []int
	Desc       []bool
}

// Name implements Operator.
func (o *SortOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *SortOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *SortOp) Blocking() bool { return true }

// Run implements Operator.
func (o *SortOp) Run(_ int, in <-chan Tuple, emit func(Tuple)) error {
	var rows []Tuple
	for t := range in {
		rows = append(rows, t)
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for k, col := range o.Columns {
			c, err := adm.Compare(rows[i][col], rows[j][col])
			if err != nil {
				sortErr = err
				return false
			}
			if c == 0 {
				continue
			}
			if len(o.Desc) > k && o.Desc[k] {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	for _, t := range rows {
		emit(t)
	}
	return nil
}

// LimitOp forwards at most N tuples (per instance; plans constrain it to a
// single partition for a global limit).
type LimitOp struct {
	Label      string
	Partitions int
	N          int
}

// Name implements Operator.
func (o *LimitOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *LimitOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *LimitOp) Blocking() bool { return false }

// Run implements Operator.
func (o *LimitOp) Run(_ int, in <-chan Tuple, emit func(Tuple)) error {
	n := 0
	for t := range in {
		if n < o.N {
			emit(t)
			n++
		}
		// keep draining so upstream operators do not block
	}
	return nil
}

// AggregateOp folds its entire input into a single output tuple. Used for
// both the Local and Global halves of the aggregation split in Figure 6.
type AggregateOp struct {
	Label      string
	Partitions int
	// Fold receives every input tuple of the partition and returns the
	// aggregate tuple to emit.
	Fold func(rows []Tuple) (Tuple, error)
}

// Name implements Operator.
func (o *AggregateOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *AggregateOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *AggregateOp) Blocking() bool { return true }

// Run implements Operator.
func (o *AggregateOp) Run(_ int, in <-chan Tuple, emit func(Tuple)) error {
	var rows []Tuple
	for t := range in {
		rows = append(rows, t)
	}
	out, err := o.Fold(rows)
	if err != nil {
		return err
	}
	if out != nil {
		emit(out)
	}
	return nil
}

// HashGroupOp groups its input by key columns and emits one tuple per group
// produced by the Reduce function (the HashGroup operator from the paper's
// aggregation operators).
type HashGroupOp struct {
	Label      string
	Partitions int
	KeyColumns []int
	Reduce     func(key Tuple, rows []Tuple) (Tuple, error)
}

// Name implements Operator.
func (o *HashGroupOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *HashGroupOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *HashGroupOp) Blocking() bool { return true }

// Run implements Operator.
func (o *HashGroupOp) Run(_ int, in <-chan Tuple, emit func(Tuple)) error {
	groups := map[string][]Tuple{}
	keys := map[string]Tuple{}
	var order []string
	for t := range in {
		var kb []byte
		key := make(Tuple, 0, len(o.KeyColumns))
		for _, col := range o.KeyColumns {
			kb = adm.EncodeKey(kb, t[col])
			key = append(key, t[col])
		}
		ks := string(kb)
		if _, ok := groups[ks]; !ok {
			order = append(order, ks)
			keys[ks] = key
		}
		groups[ks] = append(groups[ks], t)
	}
	for _, ks := range order {
		out, err := o.Reduce(keys[ks], groups[ks])
		if err != nil {
			return err
		}
		if out != nil {
			emit(out)
		}
	}
	return nil
}

// HybridHashJoinOp joins two inputs on equality of key columns. The build
// side is read from Build (a blocking activity); the probe side streams from
// the operator's input channel. This mirrors the HybridHash Join operator's
// two Activities (Join Build and Join Probe) described in Section 4.1.
type HybridHashJoinOp struct {
	Label      string
	Partitions int
	// Build produces the build-side tuples for this partition.
	Build func(partition int, emit func(Tuple)) error
	// BuildKey / ProbeKey extract the join keys.
	BuildKey func(Tuple) adm.Value
	ProbeKey func(Tuple) adm.Value
	// Combine merges a probe tuple with a matching build tuple.
	Combine func(probe, build Tuple) Tuple
}

// Name implements Operator.
func (o *HybridHashJoinOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *HybridHashJoinOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *HybridHashJoinOp) Blocking() bool { return true }

// Run implements Operator.
func (o *HybridHashJoinOp) Run(partition int, in <-chan Tuple, emit func(Tuple)) error {
	// Join Build activity.
	table := map[string][]Tuple{}
	err := o.Build(partition, func(t Tuple) {
		k := string(adm.EncodeKey(nil, o.BuildKey(t)))
		table[k] = append(table[k], t)
	})
	if err != nil {
		return err
	}
	// Join Probe activity.
	for t := range in {
		k := string(adm.EncodeKey(nil, o.ProbeKey(t)))
		for _, b := range table[k] {
			emit(o.Combine(t, b))
		}
	}
	return nil
}
