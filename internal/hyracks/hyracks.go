// Package hyracks implements a data-parallel dataflow runtime modelled on the
// Hyracks layer of the Asterix software stack (Section 4.1 of the paper).
// Jobs are DAGs of Operators and Connectors; Operators expand into Activities
// whose blocking edges partition the job into Stages; each Stage runs its
// operator instances (one per partition) in parallel and Connectors
// redistribute tuples between them.
//
// # Execution model
//
// Execute spawns one goroutine per operator instance (an operator with
// parallelism N has N instances). Tuples stream between instances through
// bounded channels; a Connector decides which consumer instance receives each
// tuple (hash partitioning, replication, or partition-preserving one-to-one).
// Operators with more than one input (the hybrid hash join) read from
// numbered input ports: port 1 carries the blocking build side, port 0 the
// streaming probe side.
//
// Tuples are never materialized between pipelined operators: a select feeding
// an assign hands tuples over as they are produced, and only genuinely
// blocking operators (sort, group, aggregate, the join build) buffer their
// input. Tuples travel between instances in fixed-size frames (batches), as
// in Hyracks proper, so the per-tuple channel cost is amortized across a
// frame.
//
// # Cancellation
//
// The emit function handed to Operator.Run reports downstream demand: it
// returns false once every consumer instance has returned, at which point the
// producer should stop producing. This is how a LimitOp that has seen enough
// tuples stops the datasource scans feeding it instead of draining them.
// Internally each instance owns a done channel that is closed when its Run
// returns; producers blocked on a full input channel select on that done
// channel, so an early-returning consumer can never deadlock its upstream.
//
// # Streaming
//
// ExecuteStream is the primary entry point: it starts the job and returns a
// pull-based frame Cursor fed by a bounded channel, so result size never
// dictates memory. Closing the cursor, or cancelling its context, re-uses the
// emit-demand machinery above to stop the whole job. Execute is the
// materializing wrapper that drains a cursor to completion.
//
// # Determinism
//
// Execute gathers sink output per sink-instance and concatenates it in
// partition order, so a shuffle-free pipeline (scan -> select -> assign ->
// sink over one-to-one connectors) reproduces the storage scan order exactly.
// A Cursor delivers frames in arrival order across sink instances (emit order
// within an instance), so multi-instance sinks interleave nondeterministically
// — the same contract as a merging connector; plans that need a total order
// end in a parallelism-1 sort, whose stream is deterministic.
package hyracks

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"asterixdb/internal/adm"
	"asterixdb/internal/runfile"
)

// Tuple is one row flowing between operators: a fixed-width slice of ADM
// values whose column meaning is established by the producing operator.
type Tuple []adm.Value

// In iterates one operator instance's input port. It pulls tuple frames off
// the port's channel and hands tuples out one at a time; Next reports false
// when every producer has finished and the stream is exhausted.
type In struct {
	ch <-chan []Tuple
	// failed is non-nil only in distributed runs: it is closed when the job
	// is failed from outside (a remote node died), unblocking consumers whose
	// remote producers will never deliver the end-of-stream that would close
	// ch. Single-process runs keep the plain channel-receive fast path.
	failed <-chan struct{}
	// prof, when profiling, counts arriving frames/tuples at frame-refill
	// granularity; nil on the unprofiled path.
	prof *instProf
	cur  []Tuple
	idx  int
}

// Next returns the next input tuple, or false at end of stream. An exhausted
// frame returns to the frame pool before the next one is pulled: every
// interior frame has exactly one consumer, so once the consumer has moved
// past it nothing can reference it again.
func (in *In) Next() (Tuple, bool) {
	for in.idx >= len(in.cur) {
		if in.cur != nil {
			putFrame(in.cur)
			in.cur = nil
		}
		var f []Tuple
		var ok bool
		if in.failed == nil {
			f, ok = <-in.ch
		} else {
			select {
			case f, ok = <-in.ch:
			case <-in.failed:
				return nil, false
			}
		}
		if !ok {
			return nil, false
		}
		if in.prof != nil {
			in.prof.framesIn++
			in.prof.tuplesIn += int64(len(f))
		}
		in.cur, in.idx = f, 0
	}
	t := in.cur[in.idx]
	in.idx++
	return t, true
}

// framePool recycles the []Tuple frames that travel interior edges and feed
// the sink cursor: outPort.push and the sink emit path acquire; In.Next and
// Cursor.Next release after the consumer has moved past a frame. Frames
// handed out via Cursor.NextFrame belong to the caller and are never pooled.
// Frames abandoned on teardown (a consumer that returned early, a producer
// whose send lost to the done signal) simply fall to the garbage collector —
// a pooling miss, never a reuse hazard, because a frame enters the pool only
// from the single place that owns it at that point in its lifecycle.
var framePool sync.Pool

// getFrame returns an empty frame with at least frameSize capacity.
func getFrame(frameSize int) []Tuple {
	if v := framePool.Get(); v != nil {
		return v.([]Tuple)[:0]
	}
	return make([]Tuple, 0, frameSize)
}

// putFrame clears a frame's tuple references (so recycling cannot pin
// records) and returns it to the pool.
func putFrame(f []Tuple) {
	if cap(f) == 0 {
		return
	}
	f = f[:cap(f)]
	for i := range f {
		f[i] = nil
	}
	framePool.Put(f[:0])
}

// ConnectorKind enumerates the connector types Hyracks provides.
type ConnectorKind string

// The six connector kinds listed in Section 4.1.
const (
	OneToOne                   ConnectorKind = "OneToOneConnector"
	MToNPartitioning           ConnectorKind = "MToNPartitioningConnector"
	MToNReplicating            ConnectorKind = "MToNReplicatingConnector"
	MToNPartitioningMerging    ConnectorKind = "MToNPartitioningMergingConnector"
	LocalityAwareMToNPartition ConnectorKind = "LocalityAwareMToNPartitioningConnector"
	HashPartitioningShuffle    ConnectorKind = "HashPartitioningShuffleConnector"
)

// Operator is one node of a Hyracks job DAG. Implementations consume their
// input partitions and produce output partitions; blocking operators consume
// all input before emitting (which introduces a Stage boundary).
type Operator interface {
	// Name identifies the operator in EXPLAIN output and the Figure 6 test.
	Name() string
	// Parallelism is the number of instances evaluated in parallel.
	Parallelism() int
	// Blocking reports whether the operator must consume all of its input
	// before producing any output (e.g. sort, the build side of a hash join,
	// a global aggregate).
	Blocking() bool
	// Run executes one instance of the operator for the given partition.
	// ins holds one tuple stream per input port (empty for source operators;
	// ins[0] is the primary input). The emit function forwards a tuple
	// downstream and returns false once no consumer wants further tuples,
	// at which point Run should return early.
	Run(partition int, ins []*In, emit func(Tuple) bool) error
}

// Connector routes tuples from a producer operator to a consumer operator.
type Connector struct {
	Kind ConnectorKind
	// HashColumns selects the columns hashed by partitioning connectors.
	HashColumns []int
}

// Edge wires the output of one operator to an input port of another through a
// connector. Port 0 is the primary input; the hybrid hash join reads its
// build side from port 1.
type Edge struct {
	From      int // operator index
	To        int // operator index
	Port      int // consumer input port
	Connector Connector
}

// Job is a DAG of operators and connectors, the unit Hyracks accepts for
// execution.
type Job struct {
	Operators []Operator
	Edges     []Edge
	// FrameSize overrides the number of tuples shipped per channel send.
	// Zero means the default; the translator derives a smaller frame from the
	// job's memory budget so tiny-budget runs exercise real frame boundaries.
	FrameSize int
	// Spill is the job's run-file manager when a memory budget is configured.
	// The runtime closes it after the last operator instance exits — on every
	// termination path — which removes any run files still on disk.
	Spill *runfile.Manager
	// Profile enables per-operator instrumentation: the run's JobProfile is
	// available from Cursor.Profile once the job has finished.
	Profile bool
}

// Add appends an operator and returns its index.
func (j *Job) Add(op Operator) int {
	j.Operators = append(j.Operators, op)
	return len(j.Operators) - 1
}

// Connect wires from -> to (input port 0) with the given connector.
func (j *Job) Connect(from, to int, c Connector) {
	j.ConnectPort(from, to, 0, c)
}

// ConnectPort wires from -> to on the given consumer input port.
func (j *Job) ConnectPort(from, to, port int, c Connector) {
	j.Edges = append(j.Edges, Edge{From: from, To: to, Port: port, Connector: c})
}

// Describe renders the job in a compact textual form (one operator per line,
// bottom-up, with the connector that feeds its consumer), the format asserted
// by the Figure 6 test and printed by EXPLAIN.
func (j *Job) Describe() string {
	var sb strings.Builder
	for i, op := range j.Operators {
		sb.WriteString(op.Name())
		for _, e := range j.Edges {
			if e.From == i {
				fmt.Fprintf(&sb, "  --%s-->  %s", e.Connector.Kind, j.Operators[e.To].Name())
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Stages partitions the job's operators into stages separated by blocking
// operators: a stage can start only after the stages producing its blocked
// inputs have completed. The returned slices contain operator indexes in
// topological order.
func (j *Job) Stages() ([][]int, error) {
	order, err := j.topoOrder()
	if err != nil {
		return nil, err
	}
	stageOf := make([]int, len(j.Operators))
	for _, idx := range order {
		stage := 0
		for _, e := range j.Edges {
			if e.To != idx {
				continue
			}
			s := stageOf[e.From]
			// A blocking consumer starts a new stage after its producers.
			if j.Operators[idx].Blocking() {
				s++
			}
			if s > stage {
				stage = s
			}
		}
		stageOf[idx] = stage
	}
	maxStage := 0
	for _, s := range stageOf {
		if s > maxStage {
			maxStage = s
		}
	}
	stages := make([][]int, maxStage+1)
	for _, idx := range order {
		stages[stageOf[idx]] = append(stages[stageOf[idx]], idx)
	}
	return stages, nil
}

func (j *Job) topoOrder() ([]int, error) {
	indeg := make([]int, len(j.Operators))
	for _, e := range j.Edges {
		indeg[e.To]++
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	sort.Ints(queue)
	var order []int
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range j.Edges {
			if e.From == n {
				indeg[e.To]--
				if indeg[e.To] == 0 {
					queue = append(queue, e.To)
				}
			}
		}
	}
	if len(order) != len(j.Operators) {
		return nil, fmt.Errorf("hyracks: job graph has a cycle")
	}
	return order, nil
}

// defaultFrameSize is the number of tuples shipped per channel send when the
// job does not set its own FrameSize. Like Hyracks' fixed-size frames it
// amortizes the cross-instance handoff cost; it also bounds how many tuples a
// producer buffers before a consumer sees them (and therefore how far a scan
// overruns a limit's cancellation).
const defaultFrameSize = 64

// FrameSizeForBudget derives a job frame size (in tuples) from a memory
// budget (in bytes): unconstrained jobs use the default, constrained jobs
// shrink the frame so in-flight channel buffers scale down with the budget
// and tiny-budget tests cross real frame boundaries deterministically.
func FrameSizeForBudget(budget int64) int {
	if budget <= 0 {
		return defaultFrameSize
	}
	fs := int(budget / 4096)
	if fs < 4 {
		return 4
	}
	if fs > defaultFrameSize {
		return defaultFrameSize
	}
	return fs
}

// channelBuffer is the per-instance input channel capacity in frames. It
// bounds how far a producer can run ahead of a consumer.
const channelBuffer = 16

// outPort is the producer-side state for one out edge: per-consumer-instance
// frame buffers plus the channels and done signals of the consumer. In a
// distributed run, consumer instances placed on other nodes have a nil
// channel slot; frames routed to them are serialized through the DistSpec's
// Send hook instead. An outPort belongs to exactly one producer-instance
// goroutine, so the remote-liveness fields need no synchronization.
type outPort struct {
	edge      Edge
	edgeIdx   int // index into the job's post-splice edge plan (wire identity)
	consumers []chan []Tuple
	done      []chan struct{}
	alive     *int32
	bufs      [][]Tuple
	frameSize int
	scratch   []byte // reused hash-key encoding buffer
	// prof, when profiling, counts frames leaving the instance; nil on the
	// unprofiled path.
	prof *instProf

	// Distributed-run fields; all nil/false in single-process mode.
	dist       *DistSpec
	hasRemote  bool            // any consumer instance lives on another node
	remoteLive bool            // remote consumers still accept frames
	failed     <-chan struct{} // job-level failure signal
	onSendErr  func(error)
}

// remoteAlive reports whether remote consumer instances still demand tuples.
// Remote demand is optimistic: it stays true until the job fails or a wire
// send errors, because per-instance remote completion is not tracked.
func (o *outPort) remoteAlive() bool {
	if !o.hasRemote || !o.remoteLive {
		return false
	}
	select {
	case <-o.failed:
		o.remoteLive = false
		return false
	default:
		return true
	}
}

// send ships a full or final frame to consumer instance p, dropping it if
// that instance already returned. Frames bound for a remote instance are
// serialized synchronously through the DistSpec; a wire error marks the
// remote side dead (demand collapses) and is surfaced once via onSendErr.
func (o *outPort) send(p int) {
	f := o.bufs[p]
	if len(f) == 0 {
		return
	}
	o.bufs[p] = nil
	if o.prof != nil {
		o.prof.framesOut++
	}
	if o.consumers[p] == nil { // remote consumer instance
		if o.remoteAlive() {
			if err := o.dist.Send(o.edgeIdx, p, f); err != nil {
				o.remoteLive = false
				if o.onSendErr != nil {
					o.onSendErr(err)
				}
			}
		}
		putFrame(f)
		return
	}
	select {
	case o.consumers[p] <- f:
	case <-o.done[p]:
		// Consumer instance finished early; the frame is discarded.
	}
}

// push routes one tuple into the port's frame buffers, flushing frames as
// they fill.
func (o *outPort) push(producerPartition int, t Tuple) {
	var p int
	switch o.edge.Connector.Kind {
	case MToNReplicating:
		for p := range o.consumers {
			if o.bufs[p] == nil {
				o.bufs[p] = getFrame(o.frameSize)
			}
			o.bufs[p] = append(o.bufs[p], t)
			if len(o.bufs[p]) >= o.frameSize {
				o.send(p)
			}
		}
		return
	case MToNPartitioning, HashPartitioningShuffle:
		p = o.hashPartition(t)
	case MToNPartitioningMerging:
		if len(o.edge.Connector.HashColumns) > 0 {
			p = o.hashPartition(t)
		} else {
			p = 0 // pure N:1 merge into instance 0
		}
	default: // OneToOne, LocalityAwareMToNPartition
		p = producerPartition % len(o.consumers)
	}
	if o.bufs[p] == nil {
		o.bufs[p] = getFrame(o.frameSize)
	}
	o.bufs[p] = append(o.bufs[p], t)
	if len(o.bufs[p]) >= o.frameSize {
		o.send(p)
	}
}

// flush ships every partially filled frame and recycles frames that were
// acquired but never received a tuple.
func (o *outPort) flush() {
	for p := range o.bufs {
		if f := o.bufs[p]; len(f) == 0 {
			if f != nil {
				o.bufs[p] = nil
				putFrame(f)
			}
			continue
		}
		o.send(p)
	}
}

// Execute runs the job and returns the tuples emitted by sink operators
// (operators with no outgoing edge). It drains an ExecuteStream cursor and
// re-buckets frames per sink instance, so output is concatenated in
// (operator, partition) order and shuffle-free pipelines produce
// deterministic results, exactly as before the streaming API existed.
// Callers that do not need the whole result materialized should use
// ExecuteStream directly.
func Execute(job *Job) ([]Tuple, error) {
	cur, err := ExecuteStream(context.Background(), job)
	if err != nil {
		return nil, err
	}
	// Draining to exhaustion shuts the cursor down, but the deferred Close
	// (idempotent) also covers panics in a sink's tuple handling.
	defer cur.Close()
	buckets := make(map[int][][]Tuple) // sink op -> per-partition tuples
	for {
		f, ok := cur.NextFrame()
		if !ok {
			break
		}
		parts := buckets[f.Op]
		if parts == nil {
			parts = make([][]Tuple, job.Operators[f.Op].Parallelism())
			buckets[f.Op] = parts
		}
		parts[f.Partition] = append(parts[f.Partition], f.Tuples...)
	}
	var results []Tuple
	for i := range job.Operators {
		for _, part := range buckets[i] {
			results = append(results, part...)
		}
	}
	return results, cur.Err()
}

func outgoing(edges []Edge, op int) []Edge {
	var out []Edge
	for _, e := range edges {
		if e.From == op {
			out = append(out, e)
		}
	}
	return out
}

// hashPartition selects the consumer instance for a tuple by hashing the
// connector's hash columns. It must be a pure function of the column values
// so equal keys always land in the same instance; the port's scratch buffer
// is reused across tuples to keep the key encoding allocation-free.
func (o *outPort) hashPartition(t Tuple) int {
	h := fnv.New32a()
	for _, col := range o.edge.Connector.HashColumns {
		if col < len(t) {
			o.scratch = adm.EncodeKey(o.scratch[:0], t[col])
			h.Write(o.scratch)
		}
	}
	// Reduce in uint32 space: int(Sum32()) is negative for large hashes on
	// 32-bit platforms and Go's % would preserve the sign.
	return int(h.Sum32() % uint32(len(o.consumers)))
}

// ----------------------------------------------------------------------------
// Operator library
//
// Hyracks provides a library of operators (the paper counts 53); the subset
// below covers what AQL physical plans need: source scans, select, assign
// (projection / expression evaluation), flat-map (index nested-loop probes),
// sort, limit, hash group/aggregate, local and global aggregation, and the
// two-activity hybrid hash join.
// ----------------------------------------------------------------------------

// PassthroughOp forwards its input unchanged. It exists so structural
// operators (the primary-key sort and primary-index search of the Figure 6
// access path, whose work SearchSecondaryRange already performed) appear in
// the job description; Execute splices non-sink passthroughs out of the
// dataflow entirely, so they cost nothing at run time.
type PassthroughOp struct {
	Label      string
	Partitions int
}

// Name implements Operator.
func (o *PassthroughOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *PassthroughOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *PassthroughOp) Blocking() bool { return false }

// Run implements Operator (used only when the passthrough is a sink or could
// not be spliced).
func (o *PassthroughOp) Run(_ int, ins []*In, emit func(Tuple) bool) error {
	for {
		t, more := ins[0].Next()
		if !more {
			return nil
		}
		if !emit(t) {
			return nil
		}
	}
}

// spliceEdges returns the job's edge list with every spliceable passthrough
// operator removed: its single port-0 input edge is fused with each of its
// output edges. An operator is spliceable when it is a *PassthroughOp with
// exactly one one-to-one input from a producer of equal parallelism and at
// least one output edge (a passthrough sink still runs).
func spliceEdges(job *Job) ([]Edge, []bool) {
	edges := append([]Edge(nil), job.Edges...)
	spliced := make([]bool, len(job.Operators))
	for changed := true; changed; {
		changed = false
		for i, op := range job.Operators {
			po, ok := op.(*PassthroughOp)
			if !ok || spliced[i] {
				continue
			}
			in, out := -1, 0
			multiIn := false
			for j := range edges {
				if edges[j].To == i {
					if in >= 0 {
						multiIn = true
					}
					in = j
				}
				if edges[j].From == i {
					out++
				}
			}
			if multiIn || in < 0 || out == 0 {
				continue
			}
			e := edges[in]
			if e.Port != 0 || e.Connector.Kind != OneToOne ||
				job.Operators[e.From].Parallelism() != po.Partitions {
				continue
			}
			for j := range edges {
				if edges[j].From == i {
					edges[j].From = e.From
				}
			}
			edges = append(edges[:in], edges[in+1:]...)
			spliced[i] = true
			changed = true
		}
	}
	return edges, spliced
}

// SourceOp produces tuples from a per-partition source function.
type SourceOp struct {
	Label      string
	Partitions int
	// Produce is called once per partition and must call emit for every
	// tuple; when emit returns false the source should stop producing.
	Produce func(partition int, emit func(Tuple) bool) error
}

// Name implements Operator.
func (o *SourceOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *SourceOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *SourceOp) Blocking() bool { return false }

// Run implements Operator.
func (o *SourceOp) Run(partition int, _ []*In, emit func(Tuple) bool) error {
	return o.Produce(partition, emit)
}

// SelectOp filters tuples by a predicate.
type SelectOp struct {
	Label      string
	Partitions int
	Pred       func(Tuple) (bool, error)
}

// Name implements Operator.
func (o *SelectOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *SelectOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *SelectOp) Blocking() bool { return false }

// Run implements Operator.
func (o *SelectOp) Run(_ int, ins []*In, emit func(Tuple) bool) error {
	for {
		t, more := ins[0].Next()
		if !more {
			return nil
		}
		ok, err := o.Pred(t)
		if err != nil {
			return err
		}
		if ok && !emit(t) {
			return nil
		}
	}
}

// AssignOp maps each input tuple to an output tuple (projection or computed
// columns). Returning a nil tuple from Fn drops the input tuple.
type AssignOp struct {
	Label      string
	Partitions int
	Fn         func(Tuple) (Tuple, error)
}

// Name implements Operator.
func (o *AssignOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *AssignOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *AssignOp) Blocking() bool { return false }

// Run implements Operator.
func (o *AssignOp) Run(_ int, ins []*In, emit func(Tuple) bool) error {
	for {
		t, more := ins[0].Next()
		if !more {
			return nil
		}
		out, err := o.Fn(t)
		if err != nil {
			return err
		}
		if out != nil && !emit(out) {
			return nil
		}
	}
}

// FlatMapOp expands each input tuple into zero or more output tuples; the
// compiled index nested-loop join probes a dataset index per input tuple with
// it.
type FlatMapOp struct {
	Label      string
	Partitions int
	Fn         func(partition int, t Tuple, emit func(Tuple) bool) error
}

// Name implements Operator.
func (o *FlatMapOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *FlatMapOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *FlatMapOp) Blocking() bool { return false }

// Run implements Operator.
func (o *FlatMapOp) Run(partition int, ins []*In, emit func(Tuple) bool) error {
	stop := false
	wrapped := func(t Tuple) bool {
		if !emit(t) {
			stop = true
			return false
		}
		return true
	}
	for {
		t, more := ins[0].Next()
		if !more {
			return nil
		}
		if err := o.Fn(partition, t, wrapped); err != nil {
			return err
		}
		if stop {
			return nil
		}
	}
}

// SortOp sorts its input by the given columns (all ascending unless Desc).
// With a Spill budget it runs as an external merge sort: in-memory sorted
// runs are spilled to run files at the budget and merged on emit; without
// one it buffers and sorts the whole partition in memory as before.
type SortOp struct {
	Label      string
	Partitions int
	Columns    []int
	Desc       []bool
	// Spill is the operator's share of the job memory budget; nil means
	// unconstrained in-memory sorting.
	Spill *runfile.Budget
}

// Name implements Operator.
func (o *SortOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *SortOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *SortOp) Blocking() bool { return true }

// compareTuples orders two tuples by the operator's sort columns.
func (o *SortOp) compareTuples(a, b Tuple) (int, error) {
	for k, col := range o.Columns {
		c, err := adm.Compare(a[col], b[col])
		if err != nil {
			return 0, err
		}
		if c == 0 {
			continue
		}
		if len(o.Desc) > k && o.Desc[k] {
			return -c, nil
		}
		return c, nil
	}
	return 0, nil
}

// sortRows stably sorts rows in place by the operator's sort columns.
func (o *SortOp) sortRows(rows []Tuple) error {
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		c, err := o.compareTuples(rows[i], rows[j])
		if err != nil {
			sortErr = err
			return false
		}
		return c < 0
	})
	return sortErr
}

// Run implements Operator.
func (o *SortOp) Run(_ int, ins []*In, emit func(Tuple) bool) error {
	if o.Spill != nil {
		return o.runExternal(ins, emit)
	}
	var rows []Tuple
	for {
		t, more := ins[0].Next()
		if !more {
			break
		}
		rows = append(rows, t)
	}
	if err := o.sortRows(rows); err != nil {
		return err
	}
	for _, t := range rows {
		if !emit(t) {
			return nil
		}
	}
	return nil
}

// LimitOp skips Offset tuples, forwards at most N, and then returns, which
// cancels the producers feeding it instead of draining them (per instance;
// plans constrain it to a single partition for a global limit).
type LimitOp struct {
	Label      string
	Partitions int
	N          int
	Offset     int
}

// Name implements Operator.
func (o *LimitOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *LimitOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *LimitOp) Blocking() bool { return false }

// Run implements Operator.
func (o *LimitOp) Run(_ int, ins []*In, emit func(Tuple) bool) error {
	skipped, n := 0, 0
	for n < o.N {
		t, more := ins[0].Next()
		if !more {
			return nil
		}
		if skipped < o.Offset {
			skipped++
			continue
		}
		if !emit(t) {
			return nil
		}
		n++
	}
	return nil
}

// AggregateOp folds its entire input into a single output tuple. Used for
// both the Local and Global halves of the aggregation split in Figure 6.
//
// The fold is streaming: each instance consumes its input one tuple at a
// time in O(1) state, so the operator holds no materialized buffer and needs
// no memory budget (it used to buffer the whole partition for a batch Fold,
// charged against the job budget; the streaming rewrite deleted that buffer
// and its accounting).
type AggregateOp struct {
	Label      string
	Partitions int
	// NewFold returns a fresh streaming fold for one instance run: step is
	// called once per input tuple in arrival order, then finish once at end
	// of input, returning the aggregate tuple to emit (nil emits nothing).
	NewFold func() (step func(Tuple) error, finish func() (Tuple, error))
}

// Name implements Operator.
func (o *AggregateOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *AggregateOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *AggregateOp) Blocking() bool { return true }

// Run implements Operator.
func (o *AggregateOp) Run(_ int, ins []*In, emit func(Tuple) bool) error {
	step, finish := o.NewFold()
	for {
		t, more := ins[0].Next()
		if !more {
			break
		}
		if err := step(t); err != nil {
			return err
		}
	}
	out, err := finish()
	if err != nil {
		return err
	}
	if out != nil {
		emit(out)
	}
	return nil
}

// HashGroupOp groups its input by key columns and emits one tuple per group
// produced by the Reduce function (the HashGroup operator from the paper's
// aggregation operators). With a Spill budget it pre-aggregates with
// spillable hash partitions: under memory pressure a victim partition's raw
// tuples move to a run file and are re-aggregated per spilled partition
// afterwards (recursively repartitioned if a partition alone exceeds the
// budget).
type HashGroupOp struct {
	Label      string
	Partitions int
	KeyColumns []int
	Reduce     func(key Tuple, rows []Tuple) (Tuple, error)
	// Aggs switches the operator to fold-as-you-go mode: instead of
	// materializing each group's rows for Reduce, one accumulator per
	// (group, aggregate) is folded incrementally and the output tuple is the
	// key columns followed by one finished value per aggregate. The
	// translator sets it when every consumer of the group's with-variables
	// is a foldable aggregate call; Reduce is ignored when Aggs is set.
	Aggs []GroupAgg
	// Spill is the operator's share of the job memory budget; nil means
	// unconstrained in-memory grouping.
	Spill *runfile.Budget
}

// Name implements Operator.
func (o *HashGroupOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *HashGroupOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *HashGroupOp) Blocking() bool { return true }

// Run implements Operator.
func (o *HashGroupOp) Run(_ int, ins []*In, emit func(Tuple) bool) error {
	if o.Aggs != nil {
		return o.runIncremental(ins, emit)
	}
	if o.Spill != nil {
		return o.runSpilling(ins, emit)
	}
	groups := map[string][]Tuple{}
	keys := map[string]Tuple{}
	var order []string
	for {
		t, more := ins[0].Next()
		if !more {
			break
		}
		var kb []byte
		key := make(Tuple, 0, len(o.KeyColumns))
		for _, col := range o.KeyColumns {
			kb = adm.EncodeKey(kb, t[col])
			key = append(key, t[col])
		}
		ks := string(kb)
		if _, ok := groups[ks]; !ok {
			order = append(order, ks)
			keys[ks] = key
		}
		groups[ks] = append(groups[ks], t)
	}
	for _, ks := range order {
		out, err := o.Reduce(keys[ks], groups[ks])
		if err != nil {
			return err
		}
		if out != nil && !emit(out) {
			return nil
		}
	}
	return nil
}

// HybridHashJoinOp joins two inputs on equality of join keys. The build side
// streams in on input port 1 and is fully consumed into a hash table first
// (the blocking Join Build activity); the probe side then streams through
// port 0 (Join Probe). This mirrors the HybridHash Join operator's two
// Activities described in Section 4.1. Both sides must be partitioned on the
// join key by their incoming connectors so equal keys meet in one instance.
//
// With a Spill budget the operator runs as a robust dynamic hybrid hash
// join (Jahangiri et al., "Design Trade-offs for a Robust Dynamic Hybrid
// Hash Join"): the build side splits into intra-instance partitions, victim
// partitions spill to run files under memory pressure, probe tuples destined
// for spilled partitions are deferred to their own run files, and spilled
// pairs are joined recursively with level-salted rehashing — falling back to
// a budget-chunked block nested-loop join on pathological skew.
type HybridHashJoinOp struct {
	Label      string
	Partitions int
	// BuildKey / ProbeKey extract the join keys.
	BuildKey func(Tuple) adm.Value
	ProbeKey func(Tuple) adm.Value
	// Combine merges a probe tuple with a matching build tuple.
	Combine func(probe, build Tuple) Tuple
	// Spill is the operator's share of the job memory budget; nil means the
	// build side is buffered entirely in memory.
	Spill *runfile.Budget
}

// Name implements Operator.
func (o *HybridHashJoinOp) Name() string { return o.Label }

// Parallelism implements Operator.
func (o *HybridHashJoinOp) Parallelism() int { return o.Partitions }

// Blocking implements Operator.
func (o *HybridHashJoinOp) Blocking() bool { return true }

// Run implements Operator.
func (o *HybridHashJoinOp) Run(_ int, ins []*In, emit func(Tuple) bool) error {
	if len(ins) < 2 {
		return fmt.Errorf("hyracks: %s requires a build input on port 1", o.Label)
	}
	if o.Spill != nil {
		return o.runSpilling(ins, emit)
	}
	// Join Build activity. The key-encoding buffer is reused across tuples;
	// only the map-key insertion copies it.
	table := map[string][]Tuple{}
	var scratch []byte
	for {
		t, more := ins[1].Next()
		if !more {
			break
		}
		scratch = adm.EncodeKey(scratch[:0], o.BuildKey(t))
		k := string(scratch) // the only remaining per-tuple copy: the map key
		table[k] = append(table[k], t)
	}
	// Join Probe activity.
	for {
		t, more := ins[0].Next()
		if !more {
			return nil
		}
		scratch = adm.EncodeKey(scratch[:0], o.ProbeKey(t))
		for _, b := range table[string(scratch)] {
			if !emit(o.Combine(t, b)) {
				return nil
			}
		}
	}
}
