package hyracks

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"asterixdb/internal/adm"
)

// intSourceJob builds a scan -> select pipeline whose sources count every
// produced tuple, for asserting how far production ran.
func intSourceJob(partitions, perPartition int, produced *atomic.Int64) *Job {
	job := &Job{}
	src := job.Add(&SourceOp{
		Label: "source", Partitions: partitions,
		Produce: func(p int, emit func(Tuple) bool) error {
			for i := 0; i < perPartition; i++ {
				produced.Add(1)
				if !emit(Tuple{adm.Int64(int64(p*perPartition + i))}) {
					return nil
				}
			}
			return nil
		},
	})
	sel := job.Add(&SelectOp{
		Label: "select", Partitions: partitions,
		Pred: func(Tuple) (bool, error) { return true, nil },
	})
	job.Connect(src, sel, Connector{Kind: OneToOne})
	return job
}

// TestFramePoolRecyclingKeepsResults cycles many frames through the frame
// pool across repeated multi-hop jobs (shuffle edges force interior frames,
// which In.Next recycles) and checks every value survives intact — a
// use-after-release would surface as corrupted or duplicated tuples, and
// under -race as a report.
func TestFramePoolRecyclingKeepsResults(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		job := &Job{}
		src := job.Add(&SourceOp{
			Label: "source", Partitions: 2,
			Produce: func(p int, emit func(Tuple) bool) error {
				for i := 0; i < 300; i++ {
					if !emit(Tuple{adm.Int64(int64(p*300 + i))}) {
						return nil
					}
				}
				return nil
			},
		})
		asn := job.Add(&AssignOp{
			Label: "assign", Partitions: 2,
			Fn: func(t Tuple) (Tuple, error) { return t, nil },
		})
		agg := job.Add(&AggregateOp{
			Label: "sum", Partitions: 1,
			NewFold: func() (func(Tuple) error, func() (Tuple, error)) {
				sum := int64(0)
				step := func(t Tuple) error {
					sum += int64(t[0].(adm.Int64))
					return nil
				}
				finish := func() (Tuple, error) { return Tuple{adm.Int64(sum)}, nil }
				return step, finish
			},
		})
		job.Connect(src, asn, Connector{Kind: MToNPartitioning, HashColumns: []int{0}})
		job.Connect(asn, agg, Connector{Kind: MToNPartitioningMerging})
		out, err := Execute(job)
		if err != nil {
			t.Fatal(err)
		}
		want := int64(599 * 600 / 2) // 0..599
		if len(out) != 1 || int64(out[0][0].(adm.Int64)) != want {
			t.Fatalf("iter %d: sum = %v, want %d (frame recycling corrupted tuples?)", iter, out, want)
		}
	}
}

// TestFramePoolEarlyCloseAndCancel interleaves early cursor Close and context
// cancellation with pooled frames in flight; abandoned frames must fall to GC
// (never double-enter the pool), so later iterations keep producing correct
// results. Run under -race this is the frame-lifecycle regression test.
func TestFramePoolEarlyCloseAndCancel(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		var produced atomic.Int64
		cur, err := ExecuteStream(ctx, intSourceJob(3, 10_000, &produced))
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		for i := 0; i < iter*3; i++ {
			if _, ok := cur.Next(); !ok {
				break
			}
		}
		if iter%2 == 0 {
			cancel() // cancel with frames in flight, then Close
		}
		cur.Close()
		cancel()
	}
	// After all that churn the pool must still hand out clean frames.
	var produced atomic.Int64
	cur, err := ExecuteStream(context.Background(), intSourceJob(2, 500, &produced))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	n := 0
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
		n++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("post-churn stream returned %d tuples, want 1000", n)
	}
}

func TestExecuteStreamDrainsCompletely(t *testing.T) {
	var produced atomic.Int64
	cur, err := ExecuteStream(context.Background(), intSourceJob(3, 500, &produced))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	n := 0
	for {
		_, ok := cur.Next()
		if !ok {
			break
		}
		n++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3*500 {
		t.Errorf("streamed %d tuples, want %d", n, 3*500)
	}
}

// TestExecuteStreamBoundedInFlight is the no-materialization guarantee: with
// the consumer paused after the first frame, the sources must stall once the
// per-edge channel buffers and the cursor's frame buffer fill, far short of
// the full input.
func TestExecuteStreamBoundedInFlight(t *testing.T) {
	const partitions, perPartition = 2, 500_000
	var produced atomic.Int64
	cur, err := ExecuteStream(context.Background(), intSourceJob(partitions, perPartition, &produced))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if _, ok := cur.Next(); !ok {
		t.Fatalf("no first tuple: %v", cur.Err())
	}
	// Let producers run as far as the buffers allow, then check they stalled.
	time.Sleep(100 * time.Millisecond)
	// Upper bound on tuples in flight: every channel hop (per partition) plus
	// the shared frame channel, all frame-batched, plus a frame being built in
	// each instance. The pipeline has 2 hops (source->select, select->cursor).
	bound := int64(partitions * (2*channelBuffer + streamBuffer + 4) * defaultFrameSize)
	if got := produced.Load(); got > bound {
		t.Errorf("sources produced %d tuples against a paused consumer; want <= %d (bounded in-flight)", got, bound)
	}
}

// TestExecuteStreamCloseStopsSources asserts the cancellation contract:
// closing the cursor early terminates every operator goroutine (Close blocks
// until they exit) without draining the scans.
func TestExecuteStreamCloseStopsSources(t *testing.T) {
	const partitions, perPartition = 4, 1_000_000
	var produced atomic.Int64
	cur, err := ExecuteStream(context.Background(), intSourceJob(partitions, perPartition, &produced))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, ok := cur.Next(); !ok {
			t.Fatalf("stream ended early: %v", cur.Err())
		}
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	total := int64(partitions * perPartition)
	if got := produced.Load(); got >= total/2 {
		t.Errorf("sources produced %d of %d tuples after early Close; cancellation should have stopped them", got, total)
	}
	if _, ok := cur.Next(); ok {
		t.Error("Next returned a tuple after Close")
	}
}

func TestExecuteStreamContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var produced atomic.Int64
	cur, err := ExecuteStream(ctx, intSourceJob(2, 1_000_000, &produced))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; i < 5; i++ {
		if _, ok := cur.Next(); !ok {
			t.Fatalf("stream ended early: %v", cur.Err())
		}
	}
	cancel()
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
	}
	if err := cur.Err(); !errors.Is(err, context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", err)
	}
}

func TestExecuteStreamOperatorError(t *testing.T) {
	job := &Job{}
	src := job.Add(&SourceOp{
		Label: "source", Partitions: 1,
		Produce: func(int, func(Tuple) bool) error { return fmt.Errorf("boom") },
	})
	sink := job.Add(&AssignOp{Label: "assign", Partitions: 1, Fn: func(t Tuple) (Tuple, error) { return t, nil }})
	job.Connect(src, sink, Connector{Kind: OneToOne})
	cur, err := ExecuteStream(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
	}
	if err := cur.Err(); err == nil || err.Error() != "boom" {
		t.Errorf("Err() = %v, want boom", err)
	}
	if err := cur.Close(); err == nil {
		t.Error("Close should report the operator error")
	}
}

// TestExecuteStreamSingleSinkOrderDeterministic: a parallelism-1 sort sink
// must stream its tuples in sorted order — the ordered-query guarantee.
func TestExecuteStreamSingleSinkOrderDeterministic(t *testing.T) {
	job := &Job{}
	src := job.Add(&SourceOp{
		Label: "source", Partitions: 3,
		Produce: func(p int, emit func(Tuple) bool) error {
			for i := 0; i < 100; i++ {
				if !emit(Tuple{adm.Int64(int64(i*3 + p))}) {
					return nil
				}
			}
			return nil
		},
	})
	sorted := job.Add(&SortOp{Label: "sort", Partitions: 1, Columns: []int{0}})
	job.Connect(src, sorted, Connector{Kind: MToNPartitioningMerging})
	cur, err := ExecuteStream(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	prev := int64(-1)
	n := 0
	for {
		tup, ok := cur.Next()
		if !ok {
			break
		}
		v, _ := adm.NumericAsInt64(tup[0])
		if v <= prev {
			t.Fatalf("stream out of order: %d after %d", v, prev)
		}
		prev = v
		n++
	}
	if n != 300 {
		t.Errorf("streamed %d tuples, want 300", n)
	}
}
