package hyracks

import "strings"

// This file implements one-to-one operator fusion: a job-build-time pass
// that collapses maximal chains of non-blocking, same-parallelism operators
// linked by port-0 OneToOne edges (datasource-scan -> select -> assign ->
// distribute-result is the canonical shape) into a single FusedOp whose Run
// composes the stage functions. Every fused edge saves one goroutine and one
// frame-channel handoff per partition; a typical scan pipeline at
// parallelism P collapses from 4P goroutines and 3P channel hops to P
// goroutines and none. The pass runs in translator.BuildJob (unless fusion
// is disabled), so the fused shape is visible in EXPLAIN output and tests
// can assert exactly what fused.

// PushStage is implemented by non-blocking operators that can run as one
// stage of a fused pipeline: instead of pulling from an input channel, the
// stage exposes a push function that processes one tuple at a time.
type PushStage interface {
	Operator
	// Stage returns the push function for one instance, bound to its
	// downstream emit. The returned function processes one input tuple
	// (calling emit zero or more times) and reports whether the stage wants
	// more input — false stops the upstream, exactly like emit returning
	// false does between unfused operators (a satisfied limit, a closed
	// cursor).
	Stage(partition int, emit func(Tuple) bool) func(Tuple) (more bool, err error)
}

// Stage implements PushStage.
func (o *SelectOp) Stage(_ int, emit func(Tuple) bool) func(Tuple) (bool, error) {
	return func(t Tuple) (bool, error) {
		ok, err := o.Pred(t)
		if err != nil {
			return false, err
		}
		if ok && !emit(t) {
			return false, nil
		}
		return true, nil
	}
}

// Stage implements PushStage.
func (o *AssignOp) Stage(_ int, emit func(Tuple) bool) func(Tuple) (bool, error) {
	return func(t Tuple) (bool, error) {
		out, err := o.Fn(t)
		if err != nil {
			return false, err
		}
		if out != nil && !emit(out) {
			return false, nil
		}
		return true, nil
	}
}

// Stage implements PushStage.
func (o *FlatMapOp) Stage(partition int, emit func(Tuple) bool) func(Tuple) (bool, error) {
	stop := false
	wrapped := func(t Tuple) bool {
		if !emit(t) {
			stop = true
			return false
		}
		return true
	}
	return func(t Tuple) (bool, error) {
		if err := o.Fn(partition, t, wrapped); err != nil {
			return false, err
		}
		return !stop, nil
	}
}

// Stage implements PushStage.
func (o *LimitOp) Stage(_ int, emit func(Tuple) bool) func(Tuple) (bool, error) {
	skipped, n := 0, 0
	return func(t Tuple) (bool, error) {
		if n >= o.N {
			return false, nil
		}
		if skipped < o.Offset {
			skipped++
			return true, nil
		}
		if !emit(t) {
			return false, nil
		}
		n++
		return n < o.N, nil
	}
}

// Stage implements PushStage.
func (o *PassthroughOp) Stage(_ int, emit func(Tuple) bool) func(Tuple) (bool, error) {
	return func(t Tuple) (bool, error) {
		return emit(t), nil
	}
}

// FusedOp is a maximal chain of one-to-one operators running as a single
// operator: one goroutine per partition executes every stage back to back,
// with no frames, channels or handoffs between them. Ops[0] may be a
// SourceOp (the chain then has no input port); every other element
// implements PushStage.
type FusedOp struct {
	Ops []Operator
}

// Name renders the chain so EXPLAIN shows exactly what fused.
func (o *FusedOp) Name() string {
	names := make([]string, len(o.Ops))
	for i, op := range o.Ops {
		names[i] = op.Name()
	}
	return "fused[" + strings.Join(names, " -> ") + "]"
}

// Parallelism implements Operator.
func (o *FusedOp) Parallelism() int { return o.Ops[0].Parallelism() }

// Blocking implements Operator (only non-blocking operators fuse).
func (o *FusedOp) Blocking() bool { return false }

// Run composes the chain's stage functions and drives them from the head:
// the source's Produce when the head is a SourceOp, otherwise the instance's
// input port. A stage error stops the pipeline and is reported exactly like
// the unfused operator's Run returning it.
func (o *FusedOp) Run(partition int, ins []*In, emit func(Tuple) bool) error {
	var stageErr error
	down := emit
	start := 0
	src, isSrc := o.Ops[0].(*SourceOp)
	if isSrc {
		start = 1
	}
	for i := len(o.Ops) - 1; i >= start; i-- {
		st := o.Ops[i].(PushStage).Stage(partition, down)
		down = func(t Tuple) bool {
			more, err := st(t)
			if err != nil {
				if stageErr == nil {
					stageErr = err
				}
				return false
			}
			return more
		}
	}
	if isSrc {
		if err := src.Produce(partition, down); err != nil && stageErr == nil {
			stageErr = err
		}
		return stageErr
	}
	for {
		t, ok := ins[0].Next()
		if !ok {
			return stageErr
		}
		if !down(t) {
			return stageErr
		}
	}
}

// FlatOperators returns the job's operators with fused chains expanded: each
// FusedOp appears followed by its component operators. Tooling and tests
// that inspect post-fusion jobs share it instead of hand-unwrapping FusedOp.
// (A fused component's own Parallelism equals its chain's — equal
// parallelism is a fusion precondition.)
func (j *Job) FlatOperators() []Operator {
	out := make([]Operator, 0, len(j.Operators))
	for _, op := range j.Operators {
		out = append(out, op)
		if fused, ok := op.(*FusedOp); ok {
			out = append(out, fused.Ops...)
		}
	}
	return out
}

// FuseJob rewrites a job with every fusable chain collapsed into a FusedOp.
// An edge From -> To fuses when it is the producer's only output and the
// consumer's only input (any port), it is a port-0 OneToOne connector (or an
// MToNPartitioningMerging connector whose producer has a single instance —
// nothing to merge, so it degenerates to one-to-one), both operators are
// non-blocking with equal parallelism, the consumer is a PushStage, and the
// producer is a PushStage or a SourceOp. The input job is not modified; if
// nothing fuses it is returned unchanged.
func FuseJob(job *Job) *Job {
	n := len(job.Operators)
	inCount := make([]int, n)
	outCount := make([]int, n)
	for _, e := range job.Edges {
		inCount[e.To]++
		outCount[e.From]++
	}
	next := make([]int, n)
	prev := make([]int, n)
	for i := range next {
		next[i], prev[i] = -1, -1
	}
	fused := 0
	for _, e := range job.Edges {
		if e.Port != 0 {
			continue
		}
		switch e.Connector.Kind {
		case OneToOne:
		case MToNPartitioningMerging:
			// A merging connector with a single producer instance degenerates
			// to a one-to-one handoff: there is nothing to merge and (with the
			// equal-parallelism check below) exactly one consumer instance, so
			// the edge fuses like any other pipelined hop.
			if job.Operators[e.From].Parallelism() != 1 {
				continue
			}
		default:
			continue
		}
		if outCount[e.From] != 1 || inCount[e.To] != 1 {
			continue
		}
		from, to := job.Operators[e.From], job.Operators[e.To]
		if from.Blocking() || to.Blocking() || from.Parallelism() != to.Parallelism() {
			continue
		}
		if _, ok := to.(PushStage); !ok {
			continue
		}
		switch from.(type) {
		case *SourceOp, PushStage:
		default:
			continue
		}
		next[e.From], prev[e.To] = e.To, e.From
		fused++
	}
	if fused == 0 {
		return job
	}

	out := &Job{FrameSize: job.FrameSize, Spill: job.Spill, Profile: job.Profile}
	mapped := make([]int, n)
	for i := range mapped {
		mapped[i] = -1
	}
	for i, op := range job.Operators {
		if prev[i] != -1 {
			continue // interior or tail: emitted with its chain head
		}
		if next[i] == -1 {
			mapped[i] = out.Add(op)
			continue
		}
		var chain []Operator
		for j := i; j != -1; j = next[j] {
			chain = append(chain, job.Operators[j])
		}
		idx := out.Add(&FusedOp{Ops: chain})
		for j := i; j != -1; j = next[j] {
			mapped[j] = idx
		}
	}
	for _, e := range job.Edges {
		if next[e.From] == e.To {
			continue // internal to a chain
		}
		out.ConnectPort(mapped[e.From], mapped[e.To], e.Port, e.Connector)
	}
	return out
}
