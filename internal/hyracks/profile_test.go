package hyracks

import (
	"context"
	"testing"

	"asterixdb/internal/adm"
	"asterixdb/internal/runfile"
)

// profileTestJob builds source(n rows) -> select(even) -> sink; the chain
// is fully one-to-one so FuseJob collapses it into a single FusedOp.
func profileTestJob(n int) *Job {
	job := &Job{Profile: true}
	src := job.Add(&SourceOp{
		Label:      "source",
		Partitions: 1,
		Produce: func(_ int, emit func(Tuple) bool) error {
			for i := 0; i < n; i++ {
				if !emit(Tuple{adm.Int64(i)}) {
					return nil
				}
			}
			return nil
		},
	})
	sel := job.Add(&SelectOp{
		Label:      "select",
		Partitions: 1,
		Pred:       func(t Tuple) (bool, error) { return int64(t[0].(adm.Int64))%2 == 0, nil },
	})
	sink := job.Add(&PassthroughOp{Label: "sink", Partitions: 1})
	job.Connect(src, sel, Connector{Kind: OneToOne})
	job.Connect(sel, sink, Connector{Kind: OneToOne})
	return job
}

func runProfile(t *testing.T, job *Job) (*JobProfile, int) {
	t.Helper()
	cur, err := ExecuteStream(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for {
		_, ok := cur.Next()
		if !ok {
			break
		}
		rows++
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	p := cur.Profile()
	if p == nil {
		t.Fatal("Profile() nil after Close on a Profile job")
	}
	return p, rows
}

func TestProfileCountsUnfused(t *testing.T) {
	const n = 1000
	p, rows := runProfile(t, profileTestJob(n))
	if rows != n/2 {
		t.Fatalf("rows = %d, want %d", rows, n/2)
	}
	out := p.OutByName()
	if out["source"] != n || out["select"] != n/2 || out["sink"] != n/2 {
		t.Fatalf("OutByName = %v", out)
	}
	in := p.InByName()
	if in["select"] != n || in["sink"] != n/2 {
		t.Fatalf("InByName = %v", in)
	}
	for _, r := range p.Operators {
		if r.Stage != -1 {
			t.Fatalf("unfused run has staged row %+v", r)
		}
		if r.WallNanos <= 0 {
			t.Fatalf("row %s has no wall time", r.Name)
		}
	}
	// Edge frame counts must agree across each hop.
	var bySel, bySink OperatorStats
	for _, r := range p.Operators {
		switch r.Name {
		case "select":
			bySel = r
		case "sink":
			bySink = r
		}
	}
	if bySel.FramesIn == 0 || bySel.FramesOut == 0 || bySink.FramesIn != bySel.FramesOut {
		t.Fatalf("frame counts select=%+v sink=%+v", bySel, bySink)
	}
}

func TestProfileFusedMatchesUnfused(t *testing.T) {
	const n = 1000
	unfused, _ := runProfile(t, profileTestJob(n))
	fusedJob := FuseJob(profileTestJob(n))
	if len(fusedJob.Operators) != 1 {
		t.Fatalf("chain did not fuse: %d operators", len(fusedJob.Operators))
	}
	fused, _ := runProfile(t, fusedJob)
	for i, r := range fused.Operators {
		if r.Stage != i {
			t.Fatalf("fused row %d has stage %d", i, r.Stage)
		}
	}
	fo, uo := fused.OutByName(), unfused.OutByName()
	fi, ui := fused.InByName(), unfused.InByName()
	for _, name := range []string{"source", "select", "sink"} {
		if fo[name] != uo[name] {
			t.Errorf("%s: fused out %d != unfused out %d", name, fo[name], uo[name])
		}
		if fi[name] != ui[name] {
			t.Errorf("%s: fused in %d != unfused in %d", name, fi[name], ui[name])
		}
	}
}

func TestProfileDisabledIsNil(t *testing.T) {
	job := profileTestJob(10)
	job.Profile = false
	cur, err := ExecuteStream(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if cur.Profile() != nil {
		t.Fatal("Profile() non-nil on an unprofiled job")
	}
}

func TestProfileNilBeforeDone(t *testing.T) {
	job := profileTestJob(10)
	cur, err := ExecuteStream(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	// The job may still be running; Profile must not block or race.
	_ = cur.Profile()
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if cur.Profile() == nil {
		t.Fatal("Profile() nil after Close")
	}
}

func TestProfileSpillAttribution(t *testing.T) {
	const n = 500
	mgr := runfile.NewManager(t.TempDir(), 2048)
	job := &Job{Profile: true, Spill: mgr}
	src := job.Add(&SourceOp{
		Label:      "source",
		Partitions: 1,
		Produce: func(_ int, emit func(Tuple) bool) error {
			for i := n; i > 0; i-- {
				if !emit(Tuple{adm.Int64(i)}) {
					return nil
				}
			}
			return nil
		},
	})
	sort := job.Add(&SortOp{
		Label:      "sort",
		Partitions: 1,
		Columns:    []int{0},
		Spill:      &runfile.Budget{M: mgr, PerInstance: 512, Obs: &runfile.SpillObserver{}},
	})
	job.Connect(src, sort, Connector{Kind: OneToOne})

	p, rows := runProfile(t, job)
	if rows != n {
		t.Fatalf("rows = %d, want %d", rows, n)
	}
	if len(p.Spill) != 1 || p.Spill[0].Name != "sort" {
		t.Fatalf("Spill rows = %+v", p.Spill)
	}
	s := p.Spill[0]
	if s.Runs == 0 || s.SpilledTuples == 0 || s.SpilledBytes == 0 || s.PeakBytes == 0 {
		t.Fatalf("sort spill counters not populated: %+v", s)
	}
	if p.JobSpill == nil || p.JobSpill.RunsCreated < int(s.Runs) {
		t.Fatalf("job spill %+v inconsistent with operator spill %+v", p.JobSpill, s)
	}
	if p.JobSpill.LiveRuns != 0 {
		t.Fatalf("job finished with %d live runs", p.JobSpill.LiveRuns)
	}
}

func TestMergeProfiles(t *testing.T) {
	a := &JobProfile{
		Operators: []OperatorStats{{Op: 0, Stage: -1, Name: "scan", Partition: 0, TuplesOut: 3, Node: "nc1"}},
		Spill:     []OperatorSpill{{Op: 1, Name: "sort", Node: "nc1", SpillStats: runfile.SpillStats{Runs: 2, SpilledBytes: 100, PeakBytes: 40}}},
		JobSpill:  &runfile.Stats{RunsCreated: 2, BytesSpilled: 100, PeakResident: 40},
	}
	b := &JobProfile{
		Operators: []OperatorStats{{Op: 0, Stage: -1, Name: "scan", Partition: 1, TuplesOut: 4, Node: "nc0"}},
		JobSpill:  &runfile.Stats{RunsCreated: 1, BytesSpilled: 50, PeakResident: 70},
	}
	m := MergeProfiles([]*JobProfile{a, nil, b})
	if m.OutByName()["scan"] != 7 {
		t.Fatalf("merged OutByName = %v", m.OutByName())
	}
	// Canonical order: partition 0 (nc1) before partition 1 (nc0).
	if m.Operators[0].Partition != 0 || m.Operators[1].Partition != 1 {
		t.Fatalf("merged rows out of order: %+v", m.Operators)
	}
	if m.JobSpill.RunsCreated != 3 || m.JobSpill.BytesSpilled != 150 || m.JobSpill.PeakResident != 70 {
		t.Fatalf("merged job spill = %+v", m.JobSpill)
	}
	if len(m.Spill) != 1 || m.Spill[0].Node != "nc1" {
		t.Fatalf("merged spill rows = %+v", m.Spill)
	}
	if MergeProfiles([]*JobProfile{nil, nil}) != nil {
		t.Fatal("MergeProfiles of all-nil parts should be nil")
	}
}
