package hyracks

import (
	"fmt"
	"strings"
	"testing"

	"asterixdb/internal/adm"
)

// mkSource produces ints [0, n) per partition, tagged with the partition.
func mkSource(par, n int) *SourceOp {
	return &SourceOp{
		Label:      "src",
		Partitions: par,
		Produce: func(p int, emit func(Tuple) bool) error {
			for i := 0; i < n; i++ {
				if !emit(Tuple{adm.Int64(p), adm.Int64(i)}) {
					return nil
				}
			}
			return nil
		},
	}
}

// TestFuseJobCollapsesChain fuses source -> select -> assign -> limit into a
// single operator and checks the fused job produces exactly the unfused
// results.
func TestFuseJobCollapsesChain(t *testing.T) {
	build := func() *Job {
		job := &Job{}
		src := job.Add(mkSource(1, 100))
		sel := job.Add(&SelectOp{Label: "select", Partitions: 1, Pred: func(t Tuple) (bool, error) {
			return int64(t[1].(adm.Int64))%2 == 0, nil
		}})
		asn := job.Add(&AssignOp{Label: "assign", Partitions: 1, Fn: func(t Tuple) (Tuple, error) {
			return append(append(Tuple{}, t...), adm.Int64(int64(t[1].(adm.Int64))*10)), nil
		}})
		lim := job.Add(&LimitOp{Label: "limit", Partitions: 1, N: 7, Offset: 2})
		job.Connect(src, sel, Connector{Kind: OneToOne})
		job.Connect(sel, asn, Connector{Kind: OneToOne})
		job.Connect(asn, lim, Connector{Kind: OneToOne})
		return job
	}

	plain := build()
	want, err := Execute(plain)
	if err != nil {
		t.Fatal(err)
	}

	fused := FuseJob(build())
	if len(fused.Operators) != 1 {
		t.Fatalf("fused job has %d operators, want 1:\n%s", len(fused.Operators), fused.Describe())
	}
	name := fused.Operators[0].Name()
	for _, part := range []string{"fused[", "src", "select", "assign", "limit"} {
		if !strings.Contains(name, part) {
			t.Errorf("fused operator name %q is missing %q", name, part)
		}
	}
	got, err := Execute(fused)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) != 7 {
		t.Fatalf("fused result %d rows, unfused %d rows, want 7", len(got), len(want))
	}
	for i := range want {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("row %d: fused %v, unfused %v", i, got[i], want[i])
		}
	}
}

// TestFuseJobRespectsBoundaries checks that blocking operators, partitioning
// connectors, fan-out and parallelism changes all stop a chain.
func TestFuseJobRespectsBoundaries(t *testing.T) {
	job := &Job{}
	src := job.Add(mkSource(2, 10))
	sel := job.Add(&SelectOp{Label: "select", Partitions: 2, Pred: func(Tuple) (bool, error) { return true, nil }})
	srt := job.Add(&SortOp{Label: "sort", Partitions: 1, Columns: []int{1}})
	asn := job.Add(&AssignOp{Label: "assign", Partitions: 1, Fn: func(t Tuple) (Tuple, error) { return t, nil }})
	job.Connect(src, sel, Connector{Kind: OneToOne})
	job.Connect(sel, srt, Connector{Kind: MToNPartitioningMerging}) // merge: not fusable
	job.Connect(srt, asn, Connector{Kind: OneToOne})                // sort is blocking: not fusable

	fused := FuseJob(job)
	if len(fused.Operators) != len(job.Operators)-1 {
		t.Fatalf("got %d operators, want %d:\n%s", len(fused.Operators), len(job.Operators)-1, fused.Describe())
	}
	// src+select fused (OneToOne, same parallelism); sort and assign did not.
	found := false
	for _, op := range fused.Operators {
		if f, ok := op.(*FusedOp); ok {
			found = true
			if len(f.Ops) != 2 || f.Parallelism() != 2 {
				t.Errorf("unexpected fused chain %s (par %d)", f.Name(), f.Parallelism())
			}
		}
	}
	if !found {
		t.Fatalf("no fused operator in:\n%s", fused.Describe())
	}

	// Fan-out blocks fusion entirely.
	job2 := &Job{}
	s2 := job2.Add(mkSource(1, 5))
	a := job2.Add(&AssignOp{Label: "a", Partitions: 1, Fn: func(t Tuple) (Tuple, error) { return t, nil }})
	b := job2.Add(&AssignOp{Label: "b", Partitions: 1, Fn: func(t Tuple) (Tuple, error) { return t, nil }})
	job2.Connect(s2, a, Connector{Kind: OneToOne})
	job2.Connect(s2, b, Connector{Kind: OneToOne})
	if fused2 := FuseJob(job2); len(fused2.Operators) != 3 {
		t.Fatalf("fan-out fused: %s", fused2.Describe())
	}

	// A join build port (port 1) blocks fusion into the join.
	job3 := &Job{}
	probe := job3.Add(mkSource(1, 5))
	bld := job3.Add(mkSource(1, 5))
	join := job3.Add(&HybridHashJoinOp{
		Label: "join", Partitions: 1,
		BuildKey: func(t Tuple) adm.Value { return t[1] },
		ProbeKey: func(t Tuple) adm.Value { return t[1] },
		Combine:  func(p, b Tuple) Tuple { return append(append(Tuple{}, p...), b...) },
	})
	job3.Connect(probe, join, Connector{Kind: OneToOne})
	job3.ConnectPort(bld, join, 1, Connector{Kind: OneToOne})
	if fused3 := FuseJob(job3); len(fused3.Operators) != 3 {
		t.Fatalf("join ports fused: %s", fused3.Describe())
	}
}

// TestFuseJobCrossesDegenerateMergingEdge is the regression test for the
// fusion gap: a MToNPartitioningMerging edge whose producer has exactly one
// instance is a one-to-one handoff in disguise (nothing to merge), yet it
// used to stop fusion cold. A serial source -> merging -> select -> assign
// chain must now collapse into a single fused operator — visible in the job
// description — and still produce the unfused results.
func TestFuseJobCrossesDegenerateMergingEdge(t *testing.T) {
	build := func() *Job {
		job := &Job{}
		src := job.Add(mkSource(1, 50))
		sel := job.Add(&SelectOp{Label: "select", Partitions: 1, Pred: func(t Tuple) (bool, error) {
			return int64(t[1].(adm.Int64))%3 == 0, nil
		}})
		asn := job.Add(&AssignOp{Label: "assign", Partitions: 1, Fn: func(t Tuple) (Tuple, error) {
			return append(append(Tuple{}, t...), adm.Int64(int64(t[1].(adm.Int64))+1)), nil
		}})
		job.Connect(src, sel, Connector{Kind: MToNPartitioningMerging})
		job.Connect(sel, asn, Connector{Kind: OneToOne})
		return job
	}

	want, err := Execute(build())
	if err != nil {
		t.Fatal(err)
	}
	fused := FuseJob(build())
	if len(fused.Operators) != 1 {
		t.Fatalf("serial merging edge did not fuse: %d operators\n%s",
			len(fused.Operators), fused.Describe())
	}
	desc := fused.Describe()
	if !strings.Contains(desc, "fused[") {
		t.Fatalf("job description does not show the fused chain:\n%s", desc)
	}
	got, err := Execute(fused)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fused result %d rows, unfused %d", len(got), len(want))
	}
	for i := range want {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("row %d: fused %v, unfused %v", i, got[i], want[i])
		}
	}

	// The same shape with a parallel producer must NOT fuse: the merging
	// connector is then a real merge boundary.
	job := &Job{}
	src := job.Add(mkSource(2, 10))
	sel := job.Add(&SelectOp{Label: "select", Partitions: 2, Pred: func(Tuple) (bool, error) { return true, nil }})
	asn := job.Add(&AssignOp{Label: "assign", Partitions: 1, Fn: func(t Tuple) (Tuple, error) { return t, nil }})
	job.Connect(src, sel, Connector{Kind: OneToOne})
	job.Connect(sel, asn, Connector{Kind: MToNPartitioningMerging})
	if f := FuseJob(job); len(f.Operators) != 2 {
		t.Fatalf("parallel merging edge fused:\n%s", f.Describe())
	}
}

// TestFusedLimitStopsSource checks the cancellation contract survives fusion:
// a fused limit must stop its in-chain source early, not drain it.
func TestFusedLimitStopsSource(t *testing.T) {
	produced := 0
	job := &Job{}
	src := job.Add(&SourceOp{
		Label:      "src",
		Partitions: 1,
		Produce: func(_ int, emit func(Tuple) bool) error {
			for i := 0; i < 1_000_000; i++ {
				produced++
				if !emit(Tuple{adm.Int64(i)}) {
					return nil
				}
			}
			return nil
		},
	})
	lim := job.Add(&LimitOp{Label: "limit", Partitions: 1, N: 5})
	job.Connect(src, lim, Connector{Kind: OneToOne})
	fused := FuseJob(job)
	if len(fused.Operators) != 1 {
		t.Fatalf("limit chain did not fuse:\n%s", fused.Describe())
	}
	out, err := Execute(fused)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("got %d rows, want 5", len(out))
	}
	if produced > 6 {
		t.Fatalf("source produced %d tuples; the fused limit must cancel it at 5", produced)
	}
}

// TestFusedStageErrorPropagates checks a mid-chain stage error surfaces as
// the job error and stops the source, exactly like an unfused operator error.
func TestFusedStageErrorPropagates(t *testing.T) {
	produced := 0
	job := &Job{}
	src := job.Add(&SourceOp{
		Label:      "src",
		Partitions: 1,
		Produce: func(_ int, emit func(Tuple) bool) error {
			for i := 0; i < 1000; i++ {
				produced++
				if !emit(Tuple{adm.Int64(i)}) {
					return nil
				}
			}
			return nil
		},
	})
	asn := job.Add(&AssignOp{Label: "assign", Partitions: 1, Fn: func(t Tuple) (Tuple, error) {
		if int64(t[0].(adm.Int64)) == 3 {
			return nil, fmt.Errorf("boom at 3")
		}
		return t, nil
	}})
	job.Connect(src, asn, Connector{Kind: OneToOne})
	fused := FuseJob(job)
	if len(fused.Operators) != 1 {
		t.Fatalf("chain did not fuse:\n%s", fused.Describe())
	}
	_, err := Execute(fused)
	if err == nil || !strings.Contains(err.Error(), "boom at 3") {
		t.Fatalf("fused stage error = %v, want boom", err)
	}
	if produced > 5 {
		t.Fatalf("source produced %d tuples after the stage error", produced)
	}
}
