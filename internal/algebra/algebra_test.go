package algebra

import (
	"strings"
	"testing"

	"asterixdb/internal/aql"
)

// fakeCatalog exposes one dataset with timestamp B+-tree, sender-location
// R-tree, and message keyword/ngram indexes.
type fakeCatalog struct{}

func (fakeCatalog) DatasetInfo(_, name string) DatasetInfo {
	if name != "MugshotMessages" && name != "MugshotUsers" {
		return DatasetInfo{}
	}
	info := DatasetInfo{Exists: true, Partitions: 4,
		BTreeIndexes: map[string]string{}, RTreeIndexes: map[string]string{},
		KeywordIndexes: map[string]string{}, NGramIndexes: map[string]string{}, NGramLengths: map[string]int{}}
	if name == "MugshotMessages" {
		info.BTreeIndexes["timestamp"] = "msTimestampIdx"
		info.RTreeIndexes["sender-location"] = "msSenderLocIndex"
		info.KeywordIndexes["message"] = "msMessageIdx"
		info.NGramIndexes["message"] = "msMessageNGramIdx"
		info.NGramLengths["message"] = 3
	}
	return info
}

func compile(t *testing.T, src string, opts Options) *Plan {
	t.Helper()
	e, err := aql.ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	fl, ok := e.(*aql.FLWORExpr)
	if !ok {
		t.Fatalf("not a FLWOR: %T", e)
	}
	plan, err := Build(fl)
	if err != nil {
		t.Fatal(err)
	}
	return Optimize(plan, fakeCatalog{}, opts)
}

func TestIndexAccessPathRewrite(t *testing.T) {
	plan := compile(t, `
for $m in dataset MugshotMessages
where $m.timestamp >= datetime("2014-01-01T00:00:00") and $m.timestamp < datetime("2014-04-01T00:00:00")
return $m;`, Options{})
	explain := Explain(plan)
	for _, want := range []string{"btree-search (secondary msTimestampIdx", "sort (primary keys)", "btree-search (primary MugshotMessages)", "select"} {
		if !strings.Contains(explain, want) {
			t.Errorf("explain missing %q:\n%s", want, explain)
		}
	}
	// Disabling the rule keeps the scan.
	plan = compile(t, `
for $m in dataset MugshotMessages
where $m.timestamp >= datetime("2014-01-01T00:00:00")
return $m;`, Options{DisableIndexAccess: true})
	if strings.Contains(Explain(plan), "btree-search (secondary") {
		t.Error("index access path introduced despite being disabled")
	}
	// A predicate on an unindexed field keeps the scan.
	plan = compile(t, `
for $m in dataset MugshotMessages
where $m.author-id = 7
return $m;`, Options{})
	if strings.Contains(Explain(plan), "btree-search (secondary") {
		t.Error("index access path introduced for unindexed field")
	}
}

func TestRTreeAccessPathRewrite(t *testing.T) {
	plan := compile(t, `
for $m in dataset MugshotMessages
where spatial-intersect($m.sender-location, create-rectangle(create-point(41.0, 80.0), create-point(42.0, 81.0)))
return $m;`, Options{})
	explain := Explain(plan)
	for _, want := range []string{"rtree-search (secondary msSenderLocIndex", "sort (primary keys)", "btree-search (primary MugshotMessages)", "select"} {
		if !strings.Contains(explain, want) {
			t.Errorf("explain missing %q:\n%s", want, explain)
		}
	}
	// Reversed argument order also qualifies.
	plan = compile(t, `
for $m in dataset MugshotMessages
where spatial-intersect(create-point(41.0, 80.0), $m.sender-location)
return $m;`, Options{})
	if !strings.Contains(Explain(plan), "rtree-search (secondary") {
		t.Errorf("reversed spatial-intersect not rewritten:\n%s", Explain(plan))
	}
}

func TestInvertedAccessPathRewrite(t *testing.T) {
	// contains with a long-enough literal uses the ngram index.
	plan := compile(t, `
for $m in dataset MugshotMessages
where contains($m.message, "data")
return $m;`, Options{})
	if !strings.Contains(Explain(plan), "inverted-search (secondary msMessageNGramIdx") {
		t.Errorf("contains not rewritten to ngram search:\n%s", Explain(plan))
	}
	// A probe shorter than the gram length cannot bound the candidates.
	plan = compile(t, `
for $m in dataset MugshotMessages
where contains($m.message, "da")
return $m;`, Options{})
	if strings.Contains(Explain(plan), "inverted-search") {
		t.Errorf("short contains probe must not use the ngram index:\n%s", Explain(plan))
	}
	// Tokenized equality uses the keyword index.
	plan = compile(t, `
for $m in dataset MugshotMessages
where (some $w in word-tokens($m.message) satisfies $w = "tonight")
return $m;`, Options{})
	if !strings.Contains(Explain(plan), "inverted-search (secondary msMessageIdx") {
		t.Errorf("tokenized equality not rewritten to keyword search:\n%s", Explain(plan))
	}
	// DisableIndexAccess keeps the scan.
	plan = compile(t, `
for $m in dataset MugshotMessages
where contains($m.message, "data")
return $m;`, Options{DisableIndexAccess: true})
	if strings.Contains(Explain(plan), "inverted-search") {
		t.Error("inverted access path introduced despite being disabled")
	}
}

func TestCorrelatedUnnestBecomesOperator(t *testing.T) {
	plan := compile(t, `
for $m in dataset MugshotMessages
for $t in $m.tags
return $t;`, Options{})
	if !strings.Contains(Explain(plan), "unnest $t") {
		t.Errorf("correlated for-clause not compiled as unnest:\n%s", Explain(plan))
	}
	// An uncorrelated non-dataset source stays a standalone subplan source.
	plan = compile(t, `
for $m in dataset MugshotMessages
for $x in [1, 2, 3]
return $x;`, Options{})
	explain := Explain(plan)
	if !strings.Contains(explain, "subplan") || strings.Contains(explain, "unnest") {
		t.Errorf("uncorrelated list source should stay a subplan source:\n%s", explain)
	}
}

func TestPositionalVariableCompiles(t *testing.T) {
	plan := compile(t, `for $m at $i in dataset MugshotMessages return $i;`, Options{})
	if !strings.Contains(Explain(plan), "datasource-scan MugshotMessages -> $m at $i") {
		t.Errorf("positional for-clause not recorded on the scan:\n%s", Explain(plan))
	}
	// A positional scan keeps its full scan: an index access path would emit
	// only the matching records and lose the full-scan positions.
	plan = compile(t, `
for $m at $i in dataset MugshotMessages
where $m.timestamp >= datetime("2014-01-01T00:00:00")
return $i;`, Options{})
	if strings.Contains(Explain(plan), "btree-search") {
		t.Errorf("positional scan must not be rewritten to an index access path:\n%s", Explain(plan))
	}
	// Likewise the indexnl hint degrades to a position-preserving hash join
	// when the probed side carries the positional variable.
	plan = compile(t, `
for $u in dataset MugshotUsers
for $m at $i in dataset MugshotMessages
where $m.author-id /*+ indexnl */ = $u.id
return $i;`, Options{})
	if strings.Contains(Explain(plan), string(IndexNestedLoop)) {
		t.Errorf("indexnl over a positional scan must degrade to hash join:\n%s", Explain(plan))
	}
	// Correlated positional sources become unnests that carry the variable.
	plan = compile(t, `
for $m in dataset MugshotMessages
for $t at $j in $m.tags
return $j;`, Options{})
	if !strings.Contains(Explain(plan), "unnest $t at $j") {
		t.Errorf("correlated positional for-clause not compiled as positional unnest:\n%s", Explain(plan))
	}
}

func TestPKSortAblation(t *testing.T) {
	plan := compile(t, `
for $m in dataset MugshotMessages
where $m.timestamp >= datetime("2014-01-01T00:00:00")
return $m;`, Options{DisablePKSort: true})
	if strings.Contains(Explain(plan), "sort (primary keys)") {
		t.Error("PK sort present despite being disabled")
	}
}

func TestEquijoinBecomesHashJoin(t *testing.T) {
	plan := compile(t, `
for $u in dataset MugshotUsers
for $m in dataset MugshotMessages
where $m.author-id = $u.id
return { "u": $u.name };`, Options{})
	explain := Explain(plan)
	if !strings.Contains(explain, "join (hybrid-hash-join)") {
		t.Errorf("equijoin not rewritten to hash join:\n%s", explain)
	}
}

func TestIndexNLHint(t *testing.T) {
	plan := compile(t, `
for $u in dataset MugshotUsers
for $m in dataset MugshotMessages
where $m.author-id /*+ indexnl */ = $u.id
return $u;`, Options{})
	if !strings.Contains(Explain(plan), "join (index-nested-loop-join)") {
		t.Errorf("indexnl hint ignored:\n%s", Explain(plan))
	}
}

func TestWrapAggregate(t *testing.T) {
	base := compile(t, `for $m in dataset MugshotMessages return string-length($m.message);`, Options{})
	split := WrapAggregate(base, "avg", false)
	explain := Explain(split)
	if !strings.Contains(explain, "aggregate (local-avg)") || !strings.Contains(explain, "aggregate (global-avg)") {
		t.Errorf("aggregate split missing:\n%s", explain)
	}
	noSplit := WrapAggregate(base, "avg", true)
	if strings.Contains(Explain(noSplit), "local-avg") {
		t.Errorf("split applied despite being disabled:\n%s", Explain(noSplit))
	}
}

func TestBuildRejectsEmptyFLWOR(t *testing.T) {
	if _, err := Build(&aql.FLWORExpr{Return: &aql.Literal{}}); err == nil {
		t.Error("FLWOR without clauses should be rejected")
	}
}

func TestGroupOrderLimitPreserved(t *testing.T) {
	plan := compile(t, `
for $m in dataset MugshotMessages
group by $a := $m.author-id with $m
let $cnt := count($m)
order by $cnt desc
limit 3
return { "a": $a };`, Options{})
	explain := Explain(plan)
	for _, want := range []string{"group-by $a", "order", "limit"} {
		if !strings.Contains(explain, want) {
			t.Errorf("explain missing %q:\n%s", want, explain)
		}
	}
}
