// Package algebra is the Algebricks-style algebra layer (Section 4.2 of the
// paper): AQL FLWOR expressions are translated into a tree of data-model-
// neutral logical operators, rewritten by rule-based (not cost-based)
// optimization, and annotated into a physical plan. The rules implemented are
// the paper's "safe" rewritings: always use an index-based access path for
// selections when an index is available, always use hybrid hash joins for
// equijoins (unless an indexnl hint overrides it), split aggregates into
// local and global halves, and sort primary keys between a secondary-index
// search and the primary-index search it feeds.
package algebra

import (
	"fmt"
	"strings"

	"asterixdb/internal/adm"
	"asterixdb/internal/aql"
)

// OpKind names a logical/physical operator.
type OpKind string

// Operator kinds.
const (
	OpScan           OpKind = "datasource-scan"
	OpSelect         OpKind = "select"
	OpAssign         OpKind = "assign"
	OpJoin           OpKind = "join"
	OpGroupBy        OpKind = "group-by"
	OpOrder          OpKind = "order"
	OpLimit          OpKind = "limit"
	OpAggregate      OpKind = "aggregate"
	OpSubplan        OpKind = "subplan"
	OpUnnest         OpKind = "unnest"
	OpDistribute     OpKind = "distribute-result"
	OpIndexSearch    OpKind = "btree-search-secondary"
	OpRTreeSearch    OpKind = "rtree-search-secondary"
	OpInvertedSearch OpKind = "inverted-search-secondary"
	OpPrimarySearch  OpKind = "btree-search-primary"
	OpSortPK         OpKind = "sort-primary-keys"
	OpLocalAgg       OpKind = "aggregate-local"
	OpGlobalAgg      OpKind = "aggregate-global"
)

// JoinMethod is the physical join algorithm.
type JoinMethod string

// Join methods.
const (
	HybridHashJoin  JoinMethod = "hybrid-hash-join"
	IndexNestedLoop JoinMethod = "index-nested-loop-join"
	NestedLoopJoin  JoinMethod = "nested-loop-join"
)

// Node is one operator in a plan tree. Inputs[0] is the primary input;
// binary operators (joins) have two inputs.
type Node struct {
	Kind   OpKind
	Inputs []*Node

	// Scan / index search fields.
	Dataset   string
	Dataverse string
	Variable  string
	// PosVar is the positional variable of a `for $v at $i in ...` clause:
	// the scan, subplan or unnest operator binds it to each item's 1-based
	// position in the source's iteration order. Positional sources are never
	// correlated (a correlated source compiles to an unnest, which carries its
	// own PosVar), so an item's position is a property of the item alone and
	// survives any join method above the source.
	PosVar string
	Index  string
	// LoExpr/HiExpr bound an index range search; EqExpr an equality search.
	LoExpr, HiExpr aql.Expr
	LoInclusive    bool
	HiInclusive    bool
	// ProbeExpr is the probe argument of an r-tree or inverted-index search:
	// the spatial value whose MBR filters the r-tree, or the string whose
	// tokens/grams filter the inverted index. It never references the scan
	// variable, so it can be evaluated in an empty environment at run time.
	ProbeExpr aql.Expr

	// Select / assign / aggregate fields.
	Condition aql.Expr
	Exprs     []aql.Expr
	Vars      []string

	// Join fields.
	Method            JoinMethod
	LeftKey, RightKey aql.Expr
	LeftVar, RightVar string

	// Group by.
	GroupKeys []aql.GroupKey
	GroupWith []string

	// Order by.
	OrderTerms []aql.OrderTerm

	// Limit.
	LimitExpr, OffsetExpr aql.Expr

	// Aggregate call name (avg, count, ...) for split aggregates.
	AggFunc string
}

// Plan is a rooted operator tree plus the clauses the physical plan did not
// absorb (the engine evaluates those with the generic interpreter).
type Plan struct {
	Root *Node
	// Query is the original FLWOR the plan was compiled from.
	Query *aql.FLWORExpr
}

// DatasetInfo is what the optimizer needs to know about a dataset.
type DatasetInfo struct {
	Exists     bool
	Partitions int
	// BTreeIndexes maps indexed field name -> index name.
	BTreeIndexes map[string]string
	// RTreeIndexes maps indexed field name -> index name.
	RTreeIndexes map[string]string
	// KeywordIndexes maps indexed field name -> keyword inverted index name.
	KeywordIndexes map[string]string
	// NGramIndexes maps indexed field name -> ngram inverted index name, with
	// the gram length in NGramLengths. A contains() predicate can use the
	// index only when its probe is at least the gram length long (shorter
	// probes produce no grams and the index could not bound the candidates).
	NGramIndexes map[string]string
	NGramLengths map[string]int
}

// Catalog resolves dataset metadata for the optimizer.
type Catalog interface {
	DatasetInfo(dataverse, name string) DatasetInfo
}

// ----------------------------------------------------------------------------
// Logical plan construction
// ----------------------------------------------------------------------------

// Build translates a FLWOR expression into an (unoptimized) logical plan:
// a left-deep tree of scans and joins with selects on top, followed by the
// group/order/limit/distribute pipeline. A for-clause over a non-dataset
// source that references earlier bindings (for $y in $x.list) becomes an
// unnest operator over the current pipeline instead of a standalone source.
func Build(fl *aql.FLWORExpr) (*Plan, error) {
	var root *Node
	var pendingWhere []aql.Expr
	// bound tracks the plan variables in scope after each clause, so a
	// for-clause source can be classified as correlated (unnest) or free-
	// standing (subplan source).
	bound := map[string]bool{}
	for _, clause := range fl.Clauses {
		switch c := clause.(type) {
		case *aql.ForClause:
			if _, isDataset := c.Source.(*aql.DatasetRef); !isDataset && root != nil && referencesAny(c.Source, bound) {
				root = &Node{Kind: OpUnnest, Inputs: []*Node{root}, Variable: c.Var, PosVar: c.PosVar, Exprs: []aql.Expr{c.Source}}
				bound[c.Var] = true
				if c.PosVar != "" {
					bound[c.PosVar] = true
				}
				continue
			}
			scan := buildSource(c)
			if root == nil {
				root = scan
			} else {
				root = &Node{Kind: OpJoin, Method: NestedLoopJoin, Inputs: []*Node{root, scan},
					LeftVar: firstVar(root), RightVar: c.Var}
			}
			bound[c.Var] = true
			if c.PosVar != "" {
				bound[c.PosVar] = true
			}
		case *aql.LetClause:
			root = &Node{Kind: OpAssign, Inputs: inputsOf(root), Vars: []string{c.Var}, Exprs: []aql.Expr{c.Expr}}
			bound[c.Var] = true
		case *aql.WhereClause:
			if root == nil {
				pendingWhere = append(pendingWhere, c.Cond)
				continue
			}
			root = &Node{Kind: OpSelect, Inputs: []*Node{root}, Condition: c.Cond}
		case *aql.GroupByClause:
			root = &Node{Kind: OpGroupBy, Inputs: inputsOf(root), GroupKeys: c.Keys, GroupWith: c.With}
			bound = map[string]bool{}
			for _, k := range c.Keys {
				bound[k.Var] = true
			}
			for _, w := range c.With {
				bound[w] = true
			}
		case *aql.OrderByClause:
			root = &Node{Kind: OpOrder, Inputs: inputsOf(root), OrderTerms: c.Terms}
		case *aql.LimitClause:
			root = &Node{Kind: OpLimit, Inputs: inputsOf(root), LimitExpr: c.Limit, OffsetExpr: c.Offset}
		default:
			return nil, fmt.Errorf("algebra: unsupported clause %T", clause)
		}
	}
	if root == nil {
		return nil, fmt.Errorf("algebra: FLWOR expression has no for/let clause")
	}
	for _, w := range pendingWhere {
		root = &Node{Kind: OpSelect, Inputs: []*Node{root}, Condition: w}
	}
	root = &Node{Kind: OpDistribute, Inputs: []*Node{root}}
	return &Plan{Root: root, Query: fl}, nil
}

func inputsOf(root *Node) []*Node {
	if root == nil {
		return nil
	}
	return []*Node{root}
}

func buildSource(c *aql.ForClause) *Node {
	if ds, ok := c.Source.(*aql.DatasetRef); ok {
		return &Node{Kind: OpScan, Dataset: ds.Name, Dataverse: ds.Dataverse, Variable: c.Var, PosVar: c.PosVar}
	}
	// Iteration over a non-dataset expression becomes a subplan source that
	// the engine evaluates with the interpreter.
	return &Node{Kind: OpSubplan, Variable: c.Var, PosVar: c.PosVar, Exprs: []aql.Expr{c.Source}}
}

// referencesAny reports whether the expression has a free reference to any of
// the given variables. Variables the expression binds itself (a nested
// FLWOR's for/let variables, quantified variables) are not free, so an
// independent subquery source is not misclassified as correlated.
func referencesAny(e aql.Expr, vars map[string]bool) bool {
	for _, v := range FreeVarsOf(e) {
		if vars[v] {
			return true
		}
	}
	return false
}

// FreeVarsOf collects the variable names referenced by an expression that the
// expression does not bind itself: nested FLWOR for/let/group-by bindings and
// quantified variables are in scope only inside the expression. The job
// builder uses it to decide whether a subplan source can run standalone
// (evaluated in an empty environment) or needs the enclosing bindings.
func FreeVarsOf(e aql.Expr) []string { return collectVars(e, true) }

// varsOf collects every variable name referenced by an expression, including
// ones the expression binds itself — a conservative over-approximation the
// rewrite rules use to check that a probe or join key does not depend on the
// scan variable (FreeVarsOf is the scope-aware variant the job builder uses).
func varsOf(e aql.Expr) []string { return collectVars(e, false) }

// collectVars is the one AST walker behind varsOf and FreeVarsOf: with scoped
// set, variables bound inside the expression are tracked and excluded;
// without it every reference is reported.
func collectVars(e aql.Expr, scoped bool) []string {
	var out []string
	reported := map[string]bool{}
	var walk func(e aql.Expr, bound map[string]bool)
	bind := func(bound map[string]bool, names ...string) map[string]bool {
		if !scoped {
			return bound
		}
		next := make(map[string]bool, len(bound)+len(names))
		for k := range bound {
			next[k] = true
		}
		for _, n := range names {
			if n != "" {
				next[n] = true
			}
		}
		return next
	}
	walk = func(e aql.Expr, bound map[string]bool) {
		switch x := e.(type) {
		case *aql.VariableRef:
			if !bound[x.Name] && !reported[x.Name] {
				reported[x.Name] = true
				out = append(out, x.Name)
			}
		case *aql.FieldAccess:
			walk(x.Base, bound)
		case *aql.IndexAccess:
			walk(x.Base, bound)
			walk(x.Index, bound)
		case *aql.BinaryExpr:
			walk(x.Left, bound)
			walk(x.Right, bound)
		case *aql.UnaryExpr:
			walk(x.Operand, bound)
		case *aql.CallExpr:
			for _, a := range x.Args {
				walk(a, bound)
			}
		case *aql.RecordConstructor:
			for _, f := range x.Fields {
				walk(f.Value, bound)
			}
		case *aql.ListConstructor:
			for _, it := range x.Items {
				walk(it, bound)
			}
		case *aql.QuantifiedExpr:
			walk(x.Source, bound)
			walk(x.Satisfies, bind(bound, x.Var))
		case *aql.IfExpr:
			walk(x.Cond, bound)
			walk(x.Then, bound)
			walk(x.Else, bound)
		case *aql.FLWORExpr:
			inner := bind(bound)
			for _, c := range x.Clauses {
				switch cl := c.(type) {
				case *aql.ForClause:
					walk(cl.Source, inner)
					inner = bind(inner, cl.Var, cl.PosVar)
				case *aql.LetClause:
					walk(cl.Expr, inner)
					inner = bind(inner, cl.Var)
				case *aql.WhereClause:
					walk(cl.Cond, inner)
				case *aql.GroupByClause:
					var names []string
					for _, k := range cl.Keys {
						walk(k.Expr, inner)
						names = append(names, k.Var)
					}
					inner = bind(inner, append(names, cl.With...)...)
				case *aql.OrderByClause:
					for _, term := range cl.Terms {
						walk(term.Expr, inner)
					}
				case *aql.LimitClause:
					walk(cl.Limit, inner)
					walk(cl.Offset, inner)
				}
			}
			walk(x.Return, inner)
		}
	}
	walk(e, map[string]bool{})
	return out
}

func firstVar(n *Node) string {
	if n == nil {
		return ""
	}
	if n.Variable != "" {
		return n.Variable
	}
	for _, in := range n.Inputs {
		if v := firstVar(in); v != "" {
			return v
		}
	}
	return ""
}

// ----------------------------------------------------------------------------
// Optimization
// ----------------------------------------------------------------------------

// Options tune the optimizer (used by ablation benchmarks).
type Options struct {
	// DisableIndexAccess turns off index access path introduction
	// (equivalent to the paper's skip-index hints).
	DisableIndexAccess bool
	// DisableAggSplit turns off the local/global aggregation split.
	DisableAggSplit bool
	// DisablePKSort removes the primary-key sort between secondary and
	// primary index searches.
	DisablePKSort bool
}

// Optimize rewrites the plan using the rule set. It never uses cost: like the
// 2014 system it applies "safe" rules plus user hints.
func Optimize(plan *Plan, cat Catalog, opts Options) *Plan {
	root := plan.Root
	root = rewriteJoins(root, cat)
	if !opts.DisableIndexAccess {
		root = rewriteIndexAccess(root, cat, opts)
	}
	if !opts.DisableAggSplit {
		root = rewriteAggSplit(root, plan.Query)
	}
	return &Plan{Root: root, Query: plan.Query}
}

// rewriteJoins detects equality join predicates sitting directly above a
// join and picks the physical join method: hybrid hash join by default, or
// index nested-loop when the predicate carries an /*+ indexnl */ hint.
func rewriteJoins(n *Node, cat Catalog) *Node {
	if n == nil {
		return nil
	}
	for i, in := range n.Inputs {
		n.Inputs[i] = rewriteJoins(in, cat)
	}
	if n.Kind != OpSelect || len(n.Inputs) != 1 || n.Inputs[0].Kind != OpJoin {
		return n
	}
	join := n.Inputs[0]
	conds := splitConjuncts(n.Condition)
	var rest []aql.Expr
	for _, cond := range conds {
		be, ok := cond.(*aql.BinaryExpr)
		if !ok || be.Op != aql.OpEq || join.LeftKey != nil {
			rest = append(rest, cond)
			continue
		}
		leftVars := varsOf(be.Left)
		rightVars := varsOf(be.Right)
		lv, rv := join.LeftVar, join.RightVar
		switch {
		case contains(leftVars, lv) && contains(rightVars, rv):
			join.LeftKey, join.RightKey = be.Left, be.Right
		case contains(leftVars, rv) && contains(rightVars, lv):
			join.LeftKey, join.RightKey = be.Right, be.Left
		default:
			rest = append(rest, cond)
			continue
		}
		// An index nested-loop probe replaces the right-hand scan with index
		// lookups, which cannot bind that scan's positional variable; a
		// positional right side keeps the position-preserving hash join.
		if strings.Contains(be.Hint, "indexnl") && join.Inputs[1].PosVar == "" {
			join.Method = IndexNestedLoop
		} else {
			join.Method = HybridHashJoin
		}
	}
	if len(rest) == 0 {
		return join
	}
	return &Node{Kind: OpSelect, Inputs: []*Node{join}, Condition: joinConjuncts(rest)}
}

// rewriteIndexAccess replaces select-over-scan with the Figure 6 access path
// when the selection has an index-usable predicate: a range or equality
// predicate on a field with a secondary B+-tree index, a spatial-intersect
// predicate on a field with an R-tree index, or a contains / tokenized-
// equality predicate on a field with an inverted (ngram / keyword) index.
// The rewritten chain is always secondary search -> sort PKs -> primary
// search -> post-validation select.
func rewriteIndexAccess(n *Node, cat Catalog, opts Options) *Node {
	if n == nil {
		return nil
	}
	for i, in := range n.Inputs {
		n.Inputs[i] = rewriteIndexAccess(in, cat, opts)
	}
	// A positional scan is excluded: its variable is bound to the position in
	// the FULL scan's enumeration order, which an index access path (emitting
	// only the matching records) could not reproduce.
	if n.Kind != OpSelect || len(n.Inputs) != 1 || n.Inputs[0].Kind != OpScan || n.Inputs[0].PosVar != "" {
		return n
	}
	scan := n.Inputs[0]
	info := cat.DatasetInfo(scan.Dataverse, scan.Dataset)
	if !info.Exists {
		return n
	}
	if rng, field, ok := extractRange(n.Condition, scan.Variable); ok {
		if indexName, found := info.BTreeIndexes[field]; found {
			secondary := &Node{
				Kind: OpIndexSearch, Dataset: scan.Dataset, Dataverse: scan.Dataverse,
				Index: indexName, Variable: scan.Variable,
				LoExpr: rng.lo, HiExpr: rng.hi, LoInclusive: rng.loInc, HiInclusive: rng.hiInc,
			}
			return indexChain(secondary, scan, n.Condition, opts)
		}
	}
	if probe, field, ok := extractSpatialProbe(n.Condition, scan.Variable); ok {
		if indexName, found := info.RTreeIndexes[field]; found {
			secondary := &Node{
				Kind: OpRTreeSearch, Dataset: scan.Dataset, Dataverse: scan.Dataverse,
				Index: indexName, Variable: scan.Variable, ProbeExpr: probe,
			}
			return indexChain(secondary, scan, n.Condition, opts)
		}
	}
	if probe, indexName, ok := extractInvertedProbe(n.Condition, scan.Variable, info); ok {
		secondary := &Node{
			Kind: OpInvertedSearch, Dataset: scan.Dataset, Dataverse: scan.Dataverse,
			Index: indexName, Variable: scan.Variable, ProbeExpr: probe,
		}
		return indexChain(secondary, scan, n.Condition, opts)
	}
	return n
}

// indexChain wraps a secondary-index search in the rest of the Figure 6
// access path: the primary-key sort (unless ablated), the primary-index
// search, and the post-validation select that re-applies the whole original
// predicate.
func indexChain(secondary, scan *Node, cond aql.Expr, opts Options) *Node {
	chain := secondary
	if !opts.DisablePKSort {
		chain = &Node{Kind: OpSortPK, Inputs: []*Node{chain}}
	}
	primary := &Node{Kind: OpPrimarySearch, Inputs: []*Node{chain}, Dataset: scan.Dataset, Dataverse: scan.Dataverse, Variable: scan.Variable}
	return &Node{Kind: OpSelect, Inputs: []*Node{primary}, Condition: cond}
}

// rewriteAggSplit splits a top-level aggregate query (e.g. Query 10's avg)
// into a local aggregate per partition and a global aggregate combining them.
func rewriteAggSplit(n *Node, query *aql.FLWORExpr) *Node {
	if n == nil || query == nil {
		return n
	}
	// The pattern only applies when the whole query is agg(FLWOR ...): the
	// engine marks that by compiling the FLWOR and wrapping the plan.
	return n
}

// WrapAggregate adds the local/global aggregation pair on top of a plan for
// queries of the form agg(for ... return e). The engine calls it when it
// detects that shape; disabled by the ablation option.
func WrapAggregate(plan *Plan, aggFunc string, disableSplit bool) *Plan {
	inner := plan.Root
	// Strip the distribute so the aggregate sits directly on the pipeline.
	if inner.Kind == OpDistribute {
		inner = inner.Inputs[0]
	}
	if disableSplit {
		agg := &Node{Kind: OpAggregate, Inputs: []*Node{inner}, AggFunc: aggFunc}
		return &Plan{Root: &Node{Kind: OpDistribute, Inputs: []*Node{agg}}, Query: plan.Query}
	}
	local := &Node{Kind: OpLocalAgg, Inputs: []*Node{inner}, AggFunc: aggFunc}
	global := &Node{Kind: OpGlobalAgg, Inputs: []*Node{local}, AggFunc: aggFunc}
	return &Plan{Root: &Node{Kind: OpDistribute, Inputs: []*Node{global}}, Query: plan.Query}
}

// ----------------------------------------------------------------------------
// Predicate analysis helpers
// ----------------------------------------------------------------------------

type rangeBounds struct {
	lo, hi       aql.Expr
	loInc, hiInc bool
}

// extractRange looks for conjuncts of the form $var.field >= e / <= e / = e
// and returns the combined bounds and the field name. Only predicates whose
// comparison value does not reference the scan variable qualify.
func extractRange(cond aql.Expr, scanVar string) (rangeBounds, string, bool) {
	var rb rangeBounds
	field := ""
	found := false
	for _, c := range splitConjuncts(cond) {
		be, ok := c.(*aql.BinaryExpr)
		if !ok {
			continue
		}
		fa, faOK := be.Left.(*aql.FieldAccess)
		valExpr := be.Right
		op := be.Op
		if !faOK {
			// try reversed: const <= $var.field
			if fa2, ok2 := be.Right.(*aql.FieldAccess); ok2 {
				fa, faOK, valExpr = fa2, true, be.Left
				op = reverseOp(be.Op)
			}
		}
		if !faOK {
			continue
		}
		vr, ok := fa.Base.(*aql.VariableRef)
		if !ok || vr.Name != scanVar {
			continue
		}
		if contains(varsOf(valExpr), scanVar) {
			continue
		}
		if field != "" && fa.Field != field {
			continue
		}
		switch op {
		case aql.OpGe:
			rb.lo, rb.loInc = valExpr, true
		case aql.OpGt:
			rb.lo, rb.loInc = valExpr, false
		case aql.OpLe:
			rb.hi, rb.hiInc = valExpr, true
		case aql.OpLt:
			rb.hi, rb.hiInc = valExpr, false
		case aql.OpEq:
			rb.lo, rb.hi, rb.loInc, rb.hiInc = valExpr, valExpr, true, true
		default:
			continue
		}
		field = fa.Field
		found = true
	}
	return rb, field, found
}

// extractSpatialProbe looks for a conjunct of the form
// spatial-intersect($var.field, probe) (either argument order) where the
// probe does not reference the scan variable, and returns the probe
// expression and field name. The R-tree search filters on the probe's MBR and
// the post-validation select re-applies the exact predicate, so any spatial
// probe type is admissible.
func extractSpatialProbe(cond aql.Expr, scanVar string) (aql.Expr, string, bool) {
	for _, c := range splitConjuncts(cond) {
		call, ok := c.(*aql.CallExpr)
		if !ok || call.Func != "spatial-intersect" || len(call.Args) != 2 {
			continue
		}
		for i := 0; i < 2; i++ {
			field, isField := fieldAccessOf(call.Args[i], scanVar)
			if !isField {
				continue
			}
			probe := call.Args[1-i]
			if contains(varsOf(probe), scanVar) {
				continue
			}
			return probe, field, true
		}
	}
	return nil, "", false
}

// extractInvertedProbe looks for a conjunct an inverted index can answer
// conservatively (candidates are a superset of the true matches; the
// post-validation select re-applies the exact predicate):
//
//   - contains($var.field, "literal") with an ngram index on the field, when
//     the literal is at least gram-length characters long (shorter probes
//     produce no grams, so the index could not bound the candidate set);
//   - some $w in word-tokens($var.field) satisfies $w = probe with a keyword
//     index on the field, for any probe not referencing the bound variables.
//
// It returns the probe expression and the index name to search.
func extractInvertedProbe(cond aql.Expr, scanVar string, info DatasetInfo) (aql.Expr, string, bool) {
	for _, c := range splitConjuncts(cond) {
		switch x := c.(type) {
		case *aql.CallExpr:
			if x.Func != "contains" || len(x.Args) != 2 {
				continue
			}
			field, ok := fieldAccessOf(x.Args[0], scanVar)
			if !ok {
				continue
			}
			indexName, found := info.NGramIndexes[field]
			if !found {
				continue
			}
			lit, ok := x.Args[1].(*aql.Literal)
			if !ok {
				continue
			}
			s, ok := lit.Value.(adm.String)
			if !ok || len([]rune(string(s))) < info.NGramLengths[field] {
				continue
			}
			return x.Args[1], indexName, true
		case *aql.QuantifiedExpr:
			if x.Every {
				continue
			}
			src, ok := x.Source.(*aql.CallExpr)
			if !ok || src.Func != "word-tokens" || len(src.Args) != 1 {
				continue
			}
			field, ok := fieldAccessOf(src.Args[0], scanVar)
			if !ok {
				continue
			}
			indexName, found := info.KeywordIndexes[field]
			if !found {
				continue
			}
			be, ok := x.Satisfies.(*aql.BinaryExpr)
			if !ok || be.Op != aql.OpEq {
				continue
			}
			for _, pair := range [][2]aql.Expr{{be.Left, be.Right}, {be.Right, be.Left}} {
				vr, ok := pair[0].(*aql.VariableRef)
				if !ok || vr.Name != x.Var {
					continue
				}
				probe := pair[1]
				vars := varsOf(probe)
				if contains(vars, scanVar) || contains(vars, x.Var) {
					continue
				}
				return probe, indexName, true
			}
		}
	}
	return nil, "", false
}

// fieldAccessOf recognizes expressions of the form $var.field and returns the
// field name.
func fieldAccessOf(e aql.Expr, variable string) (string, bool) {
	fa, ok := e.(*aql.FieldAccess)
	if !ok {
		return "", false
	}
	vr, ok := fa.Base.(*aql.VariableRef)
	if !ok || vr.Name != variable {
		return "", false
	}
	return fa.Field, true
}

func reverseOp(op aql.BinaryOp) aql.BinaryOp {
	switch op {
	case aql.OpGe:
		return aql.OpLe
	case aql.OpGt:
		return aql.OpLt
	case aql.OpLe:
		return aql.OpGe
	case aql.OpLt:
		return aql.OpGt
	}
	return op
}

// splitConjuncts flattens a tree of AND expressions into its conjuncts.
func splitConjuncts(e aql.Expr) []aql.Expr {
	be, ok := e.(*aql.BinaryExpr)
	if ok && be.Op == aql.OpAnd {
		return append(splitConjuncts(be.Left), splitConjuncts(be.Right)...)
	}
	if e == nil {
		return nil
	}
	return []aql.Expr{e}
}

func joinConjuncts(conjuncts []aql.Expr) aql.Expr {
	if len(conjuncts) == 0 {
		return nil
	}
	out := conjuncts[0]
	for _, c := range conjuncts[1:] {
		out = &aql.BinaryExpr{Op: aql.OpAnd, Left: out, Right: c}
	}
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// ----------------------------------------------------------------------------
// Explain
// ----------------------------------------------------------------------------

// Explain renders the plan tree bottom-up, one operator per line, in the
// spirit of Figure 6.
func Explain(plan *Plan) string {
	var lines []string
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		for _, in := range n.Inputs {
			walk(in)
		}
		lines = append(lines, describeNode(n))
	}
	walk(plan.Root)
	return strings.Join(lines, "\n")
}

func describeNode(n *Node) string {
	switch n.Kind {
	case OpScan:
		if n.PosVar != "" {
			return fmt.Sprintf("datasource-scan %s -> $%s at $%s", n.Dataset, n.Variable, n.PosVar)
		}
		return fmt.Sprintf("datasource-scan %s -> $%s", n.Dataset, n.Variable)
	case OpIndexSearch:
		return fmt.Sprintf("btree-search (secondary %s on %s)", n.Index, n.Dataset)
	case OpRTreeSearch:
		return fmt.Sprintf("rtree-search (secondary %s on %s)", n.Index, n.Dataset)
	case OpInvertedSearch:
		return fmt.Sprintf("inverted-search (secondary %s on %s)", n.Index, n.Dataset)
	case OpSortPK:
		return "sort (primary keys)"
	case OpPrimarySearch:
		return fmt.Sprintf("btree-search (primary %s)", n.Dataset)
	case OpSelect:
		return fmt.Sprintf("select %s", n.Condition)
	case OpAssign:
		return fmt.Sprintf("assign $%s", strings.Join(n.Vars, ", $"))
	case OpJoin:
		return fmt.Sprintf("join (%s)", n.Method)
	case OpGroupBy:
		keys := make([]string, len(n.GroupKeys))
		for i, k := range n.GroupKeys {
			keys[i] = "$" + k.Var
		}
		return "group-by " + strings.Join(keys, ", ")
	case OpOrder:
		return "order"
	case OpLimit:
		return "limit"
	case OpLocalAgg:
		return fmt.Sprintf("aggregate (local-%s)", n.AggFunc)
	case OpGlobalAgg:
		return fmt.Sprintf("aggregate (global-%s) [n:1 replicating]", n.AggFunc)
	case OpAggregate:
		return fmt.Sprintf("aggregate (%s)", n.AggFunc)
	case OpSubplan:
		return "subplan"
	case OpUnnest:
		if n.PosVar != "" {
			return fmt.Sprintf("unnest $%s at $%s", n.Variable, n.PosVar)
		}
		return fmt.Sprintf("unnest $%s", n.Variable)
	case OpDistribute:
		return "distribute-result"
	}
	return string(n.Kind)
}
