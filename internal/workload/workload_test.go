package workload

import (
	"testing"

	"asterixdb/internal/adm"
)

func TestGenerationIsDeterministicAndValid(t *testing.T) {
	cfg := Config{Users: 50, Messages: 200, Tweets: 30, Seed: 9}
	g1, g2 := New(cfg), New(cfg)
	for i := 1; i <= 10; i++ {
		if g1.User(i).String() != g2.User(i).String() {
			t.Fatalf("user %d not deterministic", i)
		}
		if g1.Message(i).String() != g2.Message(i).String() {
			t.Fatalf("message %d not deterministic", i)
		}
	}
	userType, msgType := UserType(), MessageType()
	for _, u := range g1.Users() {
		if err := adm.Validate(u, userType); err != nil {
			t.Fatalf("user does not validate: %v", err)
		}
	}
	for _, m := range g1.Messages() {
		if err := adm.Validate(m, msgType); err != nil {
			t.Fatalf("message does not validate: %v", err)
		}
	}
	if len(g1.Tweets()) != cfg.Tweets {
		t.Errorf("tweets = %d", len(g1.Tweets()))
	}
	if err := adm.Validate(g1.Tweet(1), TweetType()); err != nil {
		t.Errorf("tweet does not validate: %v", err)
	}
}

func TestParamsSelectivities(t *testing.T) {
	g := New(Config{Users: 100, Messages: 1000, Seed: 1})
	p := g.Params()
	if p.SmallHi <= p.SmallLo || p.LargeHi <= p.LargeLo {
		t.Fatalf("bad windows: %+v", p)
	}
	countIn := func(lo, hi adm.Datetime) int {
		n := 0
		for _, m := range g.Messages() {
			ts := m.Get("timestamp").(adm.Datetime)
			if ts >= lo && ts <= hi {
				n++
			}
		}
		return n
	}
	small := countIn(p.SmallLo, p.SmallHi)
	large := countIn(p.LargeLo, p.LargeHi)
	if small == 0 || large == 0 || large <= small {
		t.Errorf("selectivities wrong: small=%d large=%d", small, large)
	}
	// The small window targets ~1%, the large ~10%.
	if small > 30 || large < 80 {
		t.Errorf("selectivities off target: small=%d large=%d", small, large)
	}
}

func TestKeyOnlyTypesDeclareOnlyPrimaryKey(t *testing.T) {
	for _, rt := range []*adm.RecordType{KeyOnlyUserType(), KeyOnlyMessageType(), KeyOnlyTweetType()} {
		if len(rt.Fields) != 1 || !rt.Open {
			t.Errorf("KeyOnly type %q should be open with one declared field", rt.Name)
		}
	}
}
