package workload

import "asterixdb/internal/runfile"

// This file is the shared definition of the out-of-core benchmark: the
// budget sweep, the workload queries, the DDL, and the BENCH_spill.json row
// schema are used by both the go-test benchmark (BenchmarkSpillBudgets) and
// the asterixbench CLI (-spill), so the two writers can never drift into
// incompatible trajectory formats.

// SpillBudgetLevels is the budget sweep: unconstrained, lightly
// constrained, heavily constrained.
var SpillBudgetLevels = []int64{0, 256 << 10, 32 << 10}

// SpillBenchDDL creates the Mugshot datasets the spill queries run over.
const SpillBenchDDL = `
create type SpillBenchUserType as closed { id: int32, alias: string, name: string, user-since: datetime,
  address: { street: string, city: string, state: string, zip: string, country: string },
  friend-ids: {{ int32 }}, employment: [{ organization-name: string, start-date: date, end-date: date? }] }
create type SpillBenchMsgType as closed { message-id: int32, author-id: int32, timestamp: datetime, in-response-to: int32?,
  sender-location: point?, tags: {{ string }}, message: string }
create dataset MugshotUsers(SpillBenchUserType) primary key id;
create dataset MugshotMessages(SpillBenchMsgType) primary key message-id;`

// SpillBenchQueries are one workload per spillable blocking operator.
var SpillBenchQueries = []struct {
	Name  string
	Query string
}{
	{"scan-join", `
for $u in dataset MugshotUsers
for $m in dataset MugshotMessages
where $m.author-id = $u.id
return { "u": $u.id, "m": $m.message-id };`},
	{"sort", `
for $m in dataset MugshotMessages
order by $m.message, $m.message-id
return $m.message-id;`},
	{"group-by", `
for $m in dataset MugshotMessages
group by $a := $m.author-id with $m
return { "a": $a, "n": count($m) };`},
}

// SpillTrajectoryRow is one measurement in BENCH_spill.json.
type SpillTrajectoryRow struct {
	Workload          string `json:"workload"`
	BudgetBytes       int64  `json:"budget_bytes"`
	NsPerOp           int64  `json:"ns_per_op"`
	FrameSize         int    `json:"frame_size"`
	RunsCreated       int    `json:"runs_created"`
	TuplesSpilled     int64  `json:"tuples_spilled"`
	BytesSpilled      int64  `json:"bytes_spilled"`
	PeakResidentBytes int64  `json:"peak_resident_bytes"`
	Rows              int    `json:"rows"`
}

// NewSpillRow assembles one trajectory row from a measured latency and the
// executed job's spill counters (spill is nil for unconstrained jobs), so
// both BENCH_spill.json writers fill the stats fields identically.
func NewSpillRow(name string, budgetBytes, nsPerOp int64, frameSize, resultRows int, spill *runfile.Manager) SpillTrajectoryRow {
	row := SpillTrajectoryRow{
		Workload:    name,
		BudgetBytes: budgetBytes,
		NsPerOp:     nsPerOp,
		FrameSize:   frameSize,
		Rows:        resultRows,
	}
	if spill != nil {
		st := spill.Stats()
		row.RunsCreated = st.RunsCreated
		row.TuplesSpilled = st.TuplesSpilled
		row.BytesSpilled = st.BytesSpilled
		row.PeakResidentBytes = st.PeakResident
	}
	return row
}
