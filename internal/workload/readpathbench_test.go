package workload

import (
	"strings"
	"testing"
)

func TestReadPathRegressions(t *testing.T) {
	baseline := []ReadPathRow{
		{Workload: "full-scan", Records: 10_000, NsPerRecord: 300},
		{Workload: "full-scan", Records: 100_000, NsPerRecord: 250},
		{Workload: "first-row", Records: 100_000, Ns: 400_000},
		{Workload: "pipeline-fused", Records: 100_000, NsPerRecord: 600},
	}

	t.Run("within tolerance passes", func(t *testing.T) {
		measured := []ReadPathRow{
			{Workload: "full-scan", Records: 10_000, NsPerRecord: 330},
			{Workload: "full-scan", Records: 100_000, NsPerRecord: 290},
		}
		if fails := ReadPathRegressions(baseline, measured, 0.20); len(fails) != 0 {
			t.Fatalf("expected no failures, got %v", fails)
		}
	})

	t.Run("regressed tier fails with a readable message", func(t *testing.T) {
		measured := []ReadPathRow{
			{Workload: "full-scan", Records: 10_000, NsPerRecord: 310},
			{Workload: "full-scan", Records: 100_000, NsPerRecord: 320},
		}
		fails := ReadPathRegressions(baseline, measured, 0.20)
		if len(fails) != 1 {
			t.Fatalf("expected 1 failure, got %v", fails)
		}
		if !strings.Contains(fails[0], "100000") || !strings.Contains(fails[0], "320.00") {
			t.Fatalf("failure message missing tier or measurement: %q", fails[0])
		}
	})

	t.Run("only full-scan rows gate", func(t *testing.T) {
		// Latency and pipeline rows are CI-noise-dominated and must never
		// fail the build, however bad they look.
		measured := []ReadPathRow{
			{Workload: "first-row", Records: 100_000, Ns: 40_000_000},
			{Workload: "pipeline-fused", Records: 100_000, NsPerRecord: 9000},
		}
		if fails := ReadPathRegressions(baseline, measured, 0.20); len(fails) != 0 {
			t.Fatalf("non-full-scan rows must not gate, got %v", fails)
		}
	})

	t.Run("tiers missing from either side are skipped", func(t *testing.T) {
		// A reduced-scale CI sweep (no 1M tier) against a full-scale
		// baseline, and a new tier with no baseline yet, both pass.
		measured := []ReadPathRow{
			{Workload: "full-scan", Records: 100_000, NsPerRecord: 260},
			{Workload: "full-scan", Records: 1_000_000, NsPerRecord: 5000},
		}
		if fails := ReadPathRegressions(baseline, measured, 0.20); len(fails) != 0 {
			t.Fatalf("unmatched tiers must be skipped, got %v", fails)
		}
	})

	t.Run("zero per-record baselines are ignored", func(t *testing.T) {
		zeroBase := []ReadPathRow{{Workload: "full-scan", Records: 100_000}}
		measured := []ReadPathRow{{Workload: "full-scan", Records: 100_000, NsPerRecord: 260}}
		if fails := ReadPathRegressions(zeroBase, measured, 0.20); len(fails) != 0 {
			t.Fatalf("zero baseline must not gate, got %v", fails)
		}
	})
}
