// Package workload generates the synthetic users / messages / tweets datasets
// used by the paper's performance study (Section 5.3.1) and the query
// parameters (selectivities, key ranges) for the Table 3 queries. Generation
// is deterministic given a seed so benchmark runs are reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"asterixdb/internal/adm"
)

// Config scales the generated data. The paper used hundreds of gigabytes on a
// 10-node cluster; benchmarks here use laptop-scale cardinalities — the shape
// of the results (index vs scan, join degradation, encoding overheads) is
// what is reproduced, not the absolute sizes.
type Config struct {
	Users    int
	Messages int
	Tweets   int
	Seed     int64
}

// DefaultConfig is the scale used by the bench harness.
var DefaultConfig = Config{Users: 2000, Messages: 10000, Tweets: 5000, Seed: 42}

// Generator produces deterministic synthetic records.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// New returns a generator for the given configuration.
func New(cfg Config) *Generator {
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

var (
	firstNames = []string{"Margarita", "Isbel", "Emory", "Nicholas", "Von", "Willis", "Suzanna", "Nila", "Woodrow", "Bram"}
	lastNames  = []string{"Stoddard", "Dull", "Unk", "Stroh", "Kemble", "Wyche", "Tillson", "Milom", "Nehling", "Hatch"}
	cities     = []string{"San Hugo", "Portland", "Irvine", "Mountain View", "Seattle", "Riverside", "San Jose", "Sunnyvale"}
	states     = []string{"CA", "OR", "WA", "AZ", "NV"}
	countries  = []string{"USA", "USA", "USA", "Canada", "Mexico"}
	orgs       = []string{"Codetechno", "Hexviafind", "geomedia", "Zamcorporation", "Labzatron", "Kongreen", "physcane", "Salthex"}
	words      = []string{"love", "big", "data", "systems", "tonight", "parallel", "database", "scalable", "asterix", "query",
		"index", "storage", "feed", "ingest", "cluster", "social", "network", "platform", "fuzzy", "spatial"}
	tags = []string{"big-data", "systems", "databases", "asterixdb", "nosql", "analytics", "social", "cloud"}
)

// baseEpochMillis is 2014-01-01T00:00:00Z, the start of the timestamp range.
const baseEpochMillis = int64(1388534400000)

// timestampRangeMillis spans 90 days of message timestamps.
const timestampRangeMillis = int64(90 * 24 * 3600 * 1000)

// User generates the i-th user record (ids start at 1).
func (g *Generator) User(i int) *adm.Record {
	rng := rand.New(rand.NewSource(g.cfg.Seed + int64(i)))
	first := firstNames[rng.Intn(len(firstNames))]
	last := lastNames[rng.Intn(len(lastNames))]
	nFriends := 1 + rng.Intn(8)
	friends := make([]adm.Value, nFriends)
	for f := range friends {
		friends[f] = adm.Int32(int32(1 + rng.Intn(g.cfg.Users)))
	}
	nJobs := 1 + rng.Intn(2)
	jobs := make([]adm.Value, nJobs)
	for j := range jobs {
		job := adm.NewRecord(
			adm.Field{Name: "organization-name", Value: adm.String(orgs[rng.Intn(len(orgs))])},
			adm.Field{Name: "start-date", Value: adm.Date(int32(12000 + rng.Intn(4000)))},
		)
		if rng.Intn(2) == 0 {
			job = job.Set("end-date", adm.Date(int32(16000+rng.Intn(500))))
		}
		jobs[j] = job
	}
	since := baseEpochMillis - int64(rng.Intn(4*365*24*3600))*1000
	return adm.NewRecord(
		adm.Field{Name: "id", Value: adm.Int32(int32(i))},
		adm.Field{Name: "alias", Value: adm.String(fmt.Sprintf("%s%d", first, i))},
		adm.Field{Name: "name", Value: adm.String(first + last)},
		adm.Field{Name: "user-since", Value: adm.Datetime(since)},
		adm.Field{Name: "address", Value: adm.NewRecord(
			adm.Field{Name: "street", Value: adm.String(fmt.Sprintf("%d Main St", 1+rng.Intn(999)))},
			adm.Field{Name: "city", Value: adm.String(cities[rng.Intn(len(cities))])},
			adm.Field{Name: "state", Value: adm.String(states[rng.Intn(len(states))])},
			adm.Field{Name: "zip", Value: adm.String(fmt.Sprintf("%05d", 90000+rng.Intn(9999)))},
			adm.Field{Name: "country", Value: adm.String(countries[rng.Intn(len(countries))])},
		)},
		adm.Field{Name: "friend-ids", Value: &adm.UnorderedList{Items: friends}},
		adm.Field{Name: "employment", Value: &adm.OrderedList{Items: jobs}},
	)
}

// Message generates the i-th message record (ids start at 1). Message
// timestamps are spread uniformly over a 90-day window starting 2014-01-01,
// which is what the Table 3 selectivity parameters slice into.
func (g *Generator) Message(i int) *adm.Record {
	rng := rand.New(rand.NewSource(g.cfg.Seed*31 + int64(i)))
	author := 1 + rng.Intn(maxInt(g.cfg.Users, 1))
	nWords := 4 + rng.Intn(12)
	text := ""
	for w := 0; w < nWords; w++ {
		text += " " + words[rng.Intn(len(words))]
	}
	nTags := 1 + rng.Intn(3)
	tagItems := make([]adm.Value, nTags)
	for t := range tagItems {
		tagItems[t] = adm.String(tags[rng.Intn(len(tags))])
	}
	ts := baseEpochMillis + int64(i)*(timestampRangeMillis/int64(maxInt(g.cfg.Messages, 1)))
	rec := adm.NewRecord(
		adm.Field{Name: "message-id", Value: adm.Int32(int32(i))},
		adm.Field{Name: "author-id", Value: adm.Int32(int32(author))},
		adm.Field{Name: "timestamp", Value: adm.Datetime(ts)},
		adm.Field{Name: "in-response-to", Value: responseTo(rng, i)},
		adm.Field{Name: "sender-location", Value: adm.Point{X: 20 + rng.Float64()*30, Y: 70 + rng.Float64()*30}},
		adm.Field{Name: "tags", Value: &adm.UnorderedList{Items: tagItems}},
		adm.Field{Name: "message", Value: adm.String(text)},
	)
	return rec
}

func responseTo(rng *rand.Rand, i int) adm.Value {
	if i <= 1 || rng.Intn(3) != 0 {
		return adm.Null{}
	}
	return adm.Int32(int32(1 + rng.Intn(i-1)))
}

// Tweet generates the i-th tweet record, the third dataset of Table 2: like a
// message but with a flat user sub-record and send-time field.
func (g *Generator) Tweet(i int) *adm.Record {
	rng := rand.New(rand.NewSource(g.cfg.Seed*77 + int64(i)))
	text := ""
	for w := 0; w < 6+rng.Intn(10); w++ {
		text += " " + words[rng.Intn(len(words))]
	}
	return adm.NewRecord(
		adm.Field{Name: "tweetid", Value: adm.Int64(int64(i))},
		adm.Field{Name: "user", Value: adm.NewRecord(
			adm.Field{Name: "screen-name", Value: adm.String(fmt.Sprintf("user%d", 1+rng.Intn(maxInt(g.cfg.Users, 1))))},
			adm.Field{Name: "followers-count", Value: adm.Int32(int32(rng.Intn(100000)))},
		)},
		adm.Field{Name: "sender-location", Value: adm.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}},
		adm.Field{Name: "send-time", Value: adm.Datetime(baseEpochMillis + int64(rng.Intn(90*24*3600))*1000)},
		adm.Field{Name: "message-text", Value: adm.String(text)},
	)
}

// Users generates all user records.
func (g *Generator) Users() []*adm.Record {
	out := make([]*adm.Record, g.cfg.Users)
	for i := range out {
		out[i] = g.User(i + 1)
	}
	return out
}

// Messages generates all message records.
func (g *Generator) Messages() []*adm.Record {
	out := make([]*adm.Record, g.cfg.Messages)
	for i := range out {
		out[i] = g.Message(i + 1)
	}
	return out
}

// Tweets generates all tweet records.
func (g *Generator) Tweets() []*adm.Record {
	out := make([]*adm.Record, g.cfg.Tweets)
	for i := range out {
		out[i] = g.Tweet(i + 1)
	}
	return out
}

// UserType returns the MugshotUserType record type (open).
func UserType() *adm.RecordType {
	address := &adm.RecordType{Name: "", Open: true, Fields: []adm.FieldType{
		{Name: "street", Type: adm.Prim(adm.TagString)},
		{Name: "city", Type: adm.Prim(adm.TagString)},
		{Name: "state", Type: adm.Prim(adm.TagString)},
		{Name: "zip", Type: adm.Prim(adm.TagString)},
		{Name: "country", Type: adm.Prim(adm.TagString)},
	}}
	employment := &adm.RecordType{Name: "EmploymentType", Open: true, Fields: []adm.FieldType{
		{Name: "organization-name", Type: adm.Prim(adm.TagString)},
		{Name: "start-date", Type: adm.Prim(adm.TagDate)},
		{Name: "end-date", Type: adm.Prim(adm.TagDate), Optional: true},
	}}
	return &adm.RecordType{Name: "MugshotUserType", Open: true, Fields: []adm.FieldType{
		{Name: "id", Type: adm.Prim(adm.TagInt32)},
		{Name: "alias", Type: adm.Prim(adm.TagString)},
		{Name: "name", Type: adm.Prim(adm.TagString)},
		{Name: "user-since", Type: adm.Prim(adm.TagDatetime)},
		{Name: "address", Type: address},
		{Name: "friend-ids", Type: &adm.UnorderedListType{Item: adm.Prim(adm.TagInt32)}},
		{Name: "employment", Type: &adm.OrderedListType{Item: employment}},
	}}
}

// KeyOnlyUserType returns the user type declaring only the primary key (the
// "KeyOnly" open-type configuration of Table 2).
func KeyOnlyUserType() *adm.RecordType {
	return &adm.RecordType{Name: "MugshotUserType", Open: true, Fields: []adm.FieldType{
		{Name: "id", Type: adm.Prim(adm.TagInt32)},
	}}
}

// MessageType returns the MugshotMessageType record type (closed).
func MessageType() *adm.RecordType {
	return &adm.RecordType{Name: "MugshotMessageType", Open: false, Fields: []adm.FieldType{
		{Name: "message-id", Type: adm.Prim(adm.TagInt32)},
		{Name: "author-id", Type: adm.Prim(adm.TagInt32)},
		{Name: "timestamp", Type: adm.Prim(adm.TagDatetime)},
		{Name: "in-response-to", Type: adm.Prim(adm.TagInt32), Optional: true},
		{Name: "sender-location", Type: adm.Prim(adm.TagPoint), Optional: true},
		{Name: "tags", Type: &adm.UnorderedListType{Item: adm.Prim(adm.TagString)}},
		{Name: "message", Type: adm.Prim(adm.TagString)},
	}}
}

// KeyOnlyMessageType returns the message type declaring only the primary key.
// It must be open so the undeclared fields are admitted.
func KeyOnlyMessageType() *adm.RecordType {
	return &adm.RecordType{Name: "MugshotMessageType", Open: true, Fields: []adm.FieldType{
		{Name: "message-id", Type: adm.Prim(adm.TagInt32)},
	}}
}

// TweetType returns the tweet record type.
func TweetType() *adm.RecordType {
	user := &adm.RecordType{Open: true, Fields: []adm.FieldType{
		{Name: "screen-name", Type: adm.Prim(adm.TagString)},
		{Name: "followers-count", Type: adm.Prim(adm.TagInt32)},
	}}
	return &adm.RecordType{Name: "TweetMessageType", Open: true, Fields: []adm.FieldType{
		{Name: "tweetid", Type: adm.Prim(adm.TagInt64)},
		{Name: "user", Type: user},
		{Name: "sender-location", Type: adm.Prim(adm.TagPoint)},
		{Name: "send-time", Type: adm.Prim(adm.TagDatetime)},
		{Name: "message-text", Type: adm.Prim(adm.TagString)},
	}}
}

// KeyOnlyTweetType returns the tweet type declaring only the primary key.
func KeyOnlyTweetType() *adm.RecordType {
	return &adm.RecordType{Name: "TweetMessageType", Open: true, Fields: []adm.FieldType{
		{Name: "tweetid", Type: adm.Prim(adm.TagInt64)},
	}}
}

// QueryParams are the Table 3 query parameters: the small and large
// selectivity timestamp windows over the message dataset.
type QueryParams struct {
	// Small window selects ~300 records; Large ~3000 (joins) or ~30000
	// (aggregates) at the paper's scale — here they are the same fractions of
	// the generated data.
	SmallLo, SmallHi adm.Datetime
	LargeLo, LargeHi adm.Datetime
	// LookupKey is a primary key present in the message dataset.
	LookupKey adm.Int32
}

// Params derives selectivity windows from the generator's configuration: the
// small window covers 1% of the messages, the large window 10%.
func (g *Generator) Params() QueryParams {
	per := timestampRangeMillis / int64(maxInt(g.cfg.Messages, 1))
	smallCount := maxInt(g.cfg.Messages/100, 1)
	largeCount := maxInt(g.cfg.Messages/10, 1)
	return QueryParams{
		SmallLo:   adm.Datetime(baseEpochMillis),
		SmallHi:   adm.Datetime(baseEpochMillis + per*int64(smallCount)),
		LargeLo:   adm.Datetime(baseEpochMillis),
		LargeHi:   adm.Datetime(baseEpochMillis + per*int64(largeCount)),
		LookupKey: adm.Int32(int32(g.cfg.Messages / 2)),
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
