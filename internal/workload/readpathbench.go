package workload

import "fmt"

// This file is the shared definition of the read-path benchmark: the dataset
// sizes, the workload queries, and the BENCH_readpath.json row schema are
// used by both the go-test benchmarks (BenchmarkReadPathScan and friends)
// and the asterixbench CLI (-readpath), so the two writers can never drift
// into incompatible formats.

// ReadPathSizes is the dataset-size sweep for the scan-scaling measurement.
// Per-record scan time must stay flat across it: before the resumable LSM
// iterator, every scan chunk restarted a full Range merge and per-record
// time grew roughly linearly with dataset size.
var ReadPathSizes = []int{10_000, 100_000, 1_000_000}

// ReadPathDDL creates the scan dataset.
const ReadPathDDL = `
create type ReadPathType as closed { id: int32, k: int32 };
create dataset Big(ReadPathType) primary key id;`

// Read-path workload queries.
const (
	// ReadPathScanQuery is the full-scan drain.
	ReadPathScanQuery = `for $x in dataset Big return $x.k;`
	// ReadPathFirstRowQuery is the limit-over-scan whose time-to-first-row
	// the streaming cursor measures.
	ReadPathFirstRowQuery = `for $x in dataset Big limit 20000 return $x;`
	// ReadPathPipelineQuery is the scan -> select -> assign -> distribute
	// chain compared fused vs unfused.
	ReadPathPipelineQuery = `for $x in dataset Big where $x.k >= 10 let $v := $x.k + 1 return $v;`
)

// ReadPathRegressions compares a fresh benchmark run against a committed
// baseline and reports every full-scan tier whose per-record time regressed
// by more than tolerance (0.20 = 20%). Only full-scan rows guard the build:
// ns/record over 10k+ records is the one number stable enough to gate on,
// where the sub-millisecond latency workloads (first-row) are pure CI-runner
// noise. Tiers present in only one of the two runs (e.g. a reduced-scale CI
// sweep against a full-scale baseline) are skipped, not failed.
func ReadPathRegressions(baseline, measured []ReadPathRow, tolerance float64) []string {
	base := make(map[int]float64)
	for _, r := range baseline {
		if r.Workload == "full-scan" && r.NsPerRecord > 0 {
			base[r.Records] = r.NsPerRecord
		}
	}
	var failures []string
	for _, r := range measured {
		if r.Workload != "full-scan" || r.NsPerRecord <= 0 {
			continue
		}
		b, ok := base[r.Records]
		if !ok {
			continue
		}
		if r.NsPerRecord > b*(1+tolerance) {
			failures = append(failures, fmt.Sprintf(
				"full-scan @ %d records: %.2f ns/record vs baseline %.2f (+%.0f%%, tolerance %.0f%%)",
				r.Records, r.NsPerRecord, b, (r.NsPerRecord/b-1)*100, tolerance*100))
		}
	}
	return failures
}

// ReadPathRow is one measurement in BENCH_readpath.json.
type ReadPathRow struct {
	// Workload is full-scan, first-row, pipeline-fused or pipeline-unfused.
	Workload string `json:"workload"`
	// Records is the dataset size the measurement ran against.
	Records int `json:"records"`
	// Ns is the median latency of the measured operation in nanoseconds.
	Ns int64 `json:"ns"`
	// NsPerRecord is Ns divided by Records for throughput workloads (zero
	// for latency-only workloads such as first-row).
	NsPerRecord float64 `json:"ns_per_record,omitempty"`
	// Rows is the number of result rows drained (sanity check).
	Rows int `json:"rows,omitempty"`
}
