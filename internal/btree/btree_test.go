package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%d", i)) }

func TestPutGet(t *testing.T) {
	tr := New()
	const n = 2000
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if replaced := tr.Put(key(i), val(i)); replaced {
			t.Fatalf("Put(%d) reported replacement on first insert", i)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok := tr.Get(key(i))
		if !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get(%d) = %q, %v", i, got, ok)
		}
	}
	if _, ok := tr.Get([]byte("absent")); ok {
		t.Error("Get of absent key should fail")
	}
	// Replacement keeps size constant.
	if replaced := tr.Put(key(7), []byte("new")); !replaced {
		t.Error("Put of existing key should report replacement")
	}
	if tr.Len() != n {
		t.Errorf("Len after replace = %d", tr.Len())
	}
	got, _ := tr.Get(key(7))
	if string(got) != "new" {
		t.Errorf("replaced value = %q", got)
	}
}

func TestScanOrder(t *testing.T) {
	tr := New()
	const n = 500
	for _, i := range rand.New(rand.NewSource(2)).Perm(n) {
		tr.Put(key(i), val(i))
	}
	var keys [][]byte
	tr.Scan(func(e Entry) bool {
		keys = append(keys, e.Key)
		return true
	})
	if len(keys) != n {
		t.Fatalf("Scan visited %d entries", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("scan out of order at %d: %q >= %q", i, keys[i-1], keys[i])
		}
	}
}

func TestRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), val(i))
	}
	var got []string
	tr.Range(key(10), key(19), func(e Entry) bool {
		got = append(got, string(e.Key))
		return true
	})
	if len(got) != 10 || got[0] != string(key(10)) || got[9] != string(key(19)) {
		t.Errorf("Range(10..19) = %v", got)
	}
	// Open-ended ranges.
	count := 0
	tr.Range(nil, key(4), func(Entry) bool { count++; return true })
	if count != 5 {
		t.Errorf("Range(nil..4) visited %d", count)
	}
	count = 0
	tr.Range(key(95), nil, func(Entry) bool { count++; return true })
	if count != 5 {
		t.Errorf("Range(95..nil) visited %d", count)
	}
	// Early termination.
	count = 0
	tr.Range(nil, nil, func(Entry) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early-terminated range visited %d", count)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 300
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i))
	}
	for i := 0; i < n; i += 2 {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Delete(key(0)) {
		t.Error("double delete should report false")
	}
	if tr.Len() != n/2 {
		t.Errorf("Len after deletes = %d", tr.Len())
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(key(i))
		if i%2 == 0 && ok {
			t.Fatalf("deleted key %d still present", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("surviving key %d missing", i)
		}
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	if _, ok := tr.Min(); ok {
		t.Error("Min of empty tree should report false")
	}
	for _, i := range []int{5, 3, 9, 1, 7} {
		tr.Put(key(i), val(i))
	}
	mn, _ := tr.Min()
	mx, _ := tr.Max()
	if string(mn.Key) != string(key(1)) || string(mx.Key) != string(key(9)) {
		t.Errorf("Min/Max = %q/%q", mn.Key, mx.Key)
	}
}

func TestBytesAccounting(t *testing.T) {
	tr := New()
	tr.Put([]byte("a"), []byte("12345"))
	if tr.Bytes() != 6 {
		t.Errorf("Bytes = %d", tr.Bytes())
	}
	tr.Put([]byte("a"), []byte("1"))
	if tr.Bytes() != 2 {
		t.Errorf("Bytes after shrink-replace = %d", tr.Bytes())
	}
	tr.Delete([]byte("a"))
	if tr.Bytes() != 0 {
		t.Errorf("Bytes after delete = %d", tr.Bytes())
	}
}

func TestPropertyMatchesSortedMap(t *testing.T) {
	// The tree must behave exactly like a sorted map for any key set.
	f := func(keys []uint16) bool {
		tr := New()
		ref := map[string]string{}
		for i, k := range keys {
			ks := fmt.Sprintf("%05d", k)
			vs := fmt.Sprintf("v%d", i)
			tr.Put([]byte(ks), []byte(vs))
			ref[ks] = vs
		}
		if tr.Len() != len(ref) {
			return false
		}
		var want []string
		for k := range ref {
			want = append(want, k)
		}
		sort.Strings(want)
		var got []string
		tr.Scan(func(e Entry) bool {
			got = append(got, string(e.Key))
			if ref[string(e.Key)] != string(e.Value) {
				return false
			}
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Put(key(i), val(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % n))
	}
}

// TestCursor exercises the leaf-chain cursor: seek to existing and missing
// keys, iterate to the end, and survive empty leaves left by deletes.
func TestCursor(t *testing.T) {
	tr := New()
	for i := 0; i < 500; i += 2 { // even keys only
		k := []byte(fmt.Sprintf("k%06d", i))
		tr.Put(k, []byte(fmt.Sprintf("v%d", i)))
	}
	// Seek to an absent (odd) key lands on its even successor.
	c := tr.Seek([]byte(fmt.Sprintf("k%06d", 101)))
	if !c.Valid() || string(c.Key()) != fmt.Sprintf("k%06d", 102) {
		t.Fatalf("seek landed on %q", c.Key())
	}
	// Full walk from the beginning is sorted and complete.
	n := 0
	var prev []byte
	for c = tr.Seek(nil); c.Valid(); c.Next() {
		if prev != nil && bytes.Compare(c.Key(), prev) <= 0 {
			t.Fatalf("keys out of order: %q after %q", c.Key(), prev)
		}
		prev = append(prev[:0], c.Key()...)
		n++
	}
	if n != 250 {
		t.Fatalf("cursor visited %d entries, want 250", n)
	}
	// Seek past the end is invalid.
	if c := tr.Seek([]byte("z")); c.Valid() {
		t.Fatalf("seek past end valid at %q", c.Key())
	}
	// Empty the first leaf's worth of keys; the cursor must skip the husk.
	for i := 0; i < 128; i += 2 {
		tr.Delete([]byte(fmt.Sprintf("k%06d", i)))
	}
	c = tr.Seek(nil)
	if !c.Valid() || string(c.Key()) != fmt.Sprintf("k%06d", 128) {
		t.Fatalf("cursor after deletes starts at %q", c.Key())
	}
}
