// Package btree implements an in-memory B+-tree over byte-string keys, the
// building block that the LSM framework "LSM-ifies" into AsterixDB's primary
// and secondary B+-tree indexes (Section 4.3 of the paper).
//
// Keys and values are opaque byte slices; keys compare bytewise, which matches
// the order-preserving key encoding produced by adm.EncodeKey.
package btree

import (
	"bytes"
	"sort"
)

// degree is the maximum number of keys per node. 64 keeps nodes around a
// cache line multiple without making the tree too deep for test-sized data.
const degree = 64

// Entry is a key/value pair stored in the tree.
type Entry struct {
	Key   []byte
	Value []byte
}

// Tree is an in-memory B+-tree. It is not safe for concurrent mutation; the
// storage layer serializes writers per partition (the paper's node-local
// latches) and the LSM layer makes flushed components immutable.
type Tree struct {
	root  *node
	size  int
	bytes int
}

type node struct {
	leaf     bool
	keys     [][]byte
	values   [][]byte // leaf only, parallel to keys
	children []*node  // interior only, len(children) == len(keys)+1
	next     *node    // leaf chain for range scans
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of entries in the tree.
func (t *Tree) Len() int { return t.size }

// Bytes returns the approximate memory footprint of keys and values, used by
// the LSM in-memory component budget.
func (t *Tree) Bytes() int { return t.bytes }

// Get returns the value stored under key, or (nil, false).
func (t *Tree) Get(key []byte) ([]byte, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return n.values[i], true
	}
	return nil, false
}

// Put inserts or replaces the value under key and reports whether the key was
// already present.
func (t *Tree) Put(key, value []byte) bool {
	replaced, split, sepKey, right := t.insert(t.root, key, value)
	if split != nil {
		newRoot := &node{
			keys:     [][]byte{sepKey},
			children: []*node{t.root, right},
		}
		t.root = newRoot
	}
	if !replaced {
		t.size++
		t.bytes += len(key) + len(value)
	}
	return replaced
}

// Delete removes key from the tree and reports whether it was present.
// Underflowed nodes are not rebalanced: LSM components are write-once and the
// in-memory component is discarded after each flush, so transient slack is
// bounded and harmless.
func (t *Tree) Delete(key []byte) bool {
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		t.bytes -= len(n.keys[i]) + len(n.values[i])
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.values = append(n.values[:i], n.values[i+1:]...)
		t.size--
		return true
	}
	return false
}

// insert descends into n; it returns whether an existing key was replaced and,
// when n split, the separator key and new right sibling.
func (t *Tree) insert(n *node, key, value []byte) (replaced bool, splitLeft *node, sepKey []byte, right *node) {
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			t.bytes += len(value) - len(n.values[i])
			n.values[i] = value
			return true, nil, nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.values = append(n.values, nil)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = value
		if len(n.keys) > degree {
			sep, r := n.splitLeaf()
			return false, n, sep, r
		}
		return false, nil, nil, nil
	}
	ci := childIndex(n.keys, key)
	replaced, childSplit, childSep, childRight := t.insert(n.children[ci], key, value)
	if childSplit != nil {
		n.keys = append(n.keys, nil)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = childSep
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = childRight
		if len(n.keys) > degree {
			sep, r := n.splitInterior()
			return replaced, n, sep, r
		}
	}
	return replaced, nil, nil, nil
}

// childIndex returns the index of the child to descend into for key.
func childIndex(keys [][]byte, key []byte) int {
	return sort.Search(len(keys), func(i int) bool { return bytes.Compare(keys[i], key) > 0 })
}

func (n *node) splitLeaf() (sepKey []byte, right *node) {
	mid := len(n.keys) / 2
	right = &node{
		leaf:   true,
		keys:   append([][]byte(nil), n.keys[mid:]...),
		values: append([][]byte(nil), n.values[mid:]...),
		next:   n.next,
	}
	n.keys = n.keys[:mid]
	n.values = n.values[:mid]
	n.next = right
	return right.keys[0], right
}

func (n *node) splitInterior() (sepKey []byte, right *node) {
	mid := len(n.keys) / 2
	sepKey = n.keys[mid]
	right = &node{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]*node(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return sepKey, right
}

// Scan visits every entry in key order until visit returns false.
func (t *Tree) Scan(visit func(Entry) bool) {
	t.Range(nil, nil, visit)
}

// Range visits entries with lo <= key <= hi in key order until visit returns
// false. A nil lo means "from the beginning"; a nil hi means "to the end".
func (t *Tree) Range(lo, hi []byte, visit func(Entry) bool) {
	n := t.root
	for !n.leaf {
		if lo == nil {
			n = n.children[0]
		} else {
			n = n.children[childIndex(n.keys, lo)]
		}
	}
	start := 0
	if lo != nil {
		start = sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], lo) >= 0 })
	}
	for n != nil {
		for i := start; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) > 0 {
				return
			}
			if !visit(Entry{Key: n.keys[i], Value: n.values[i]}) {
				return
			}
		}
		n = n.next
		start = 0
	}
}

// Cursor is a position inside the tree's leaf chain, the building block of
// the LSM layer's resumable merge iterator. A cursor is valid only as long as
// the tree is not mutated: Put and Delete may split or shrink leaves under
// it. The LSM iterator detects mutation through the tree's sequence number
// and re-seeks, so a stale cursor is never advanced.
type Cursor struct {
	n   *node
	idx int
}

// Seek returns a cursor positioned at the first entry with key >= k (at the
// first entry of the tree when k is nil). The cursor is invalid when no such
// entry exists.
func (t *Tree) Seek(k []byte) Cursor {
	n := t.root
	for !n.leaf {
		if k == nil {
			n = n.children[0]
		} else {
			n = n.children[childIndex(n.keys, k)]
		}
	}
	idx := 0
	if k != nil {
		idx = sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], k) >= 0 })
	}
	c := Cursor{n: n, idx: idx}
	c.skipEmpty()
	return c
}

// skipEmpty moves the cursor off exhausted leaves (a leaf can be empty after
// unbalanced deletes).
func (c *Cursor) skipEmpty() {
	for c.n != nil && c.idx >= len(c.n.keys) {
		c.n = c.n.next
		c.idx = 0
	}
}

// Valid reports whether the cursor points at an entry.
func (c *Cursor) Valid() bool { return c.n != nil }

// Key returns the entry key under the cursor.
func (c *Cursor) Key() []byte { return c.n.keys[c.idx] }

// Value returns the entry value under the cursor.
func (c *Cursor) Value() []byte { return c.n.values[c.idx] }

// Next advances the cursor to the next entry in key order.
func (c *Cursor) Next() {
	c.idx++
	c.skipEmpty()
}

// Min returns the smallest entry, or false when the tree is empty.
func (t *Tree) Min() (Entry, bool) {
	var out Entry
	found := false
	t.Scan(func(e Entry) bool {
		out, found = e, true
		return false
	})
	return out, found
}

// Max returns the largest entry, or false when the tree is empty.
func (t *Tree) Max() (Entry, bool) {
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	// The rightmost leaf can be empty only when the whole tree is empty or
	// after unbalanced deletes; walk the leaf chain from the root in that case.
	if len(n.keys) > 0 {
		return Entry{Key: n.keys[len(n.keys)-1], Value: n.values[len(n.keys)-1]}, true
	}
	var out Entry
	found := false
	t.Scan(func(e Entry) bool {
		out, found = e, true
		return true
	})
	return out, found
}
