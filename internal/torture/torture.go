// Package torture is the crash-recovery torture harness: a child process
// runs a deterministic, seeded workload against a storage.Manager with every
// index kind attached and SIGKILLs itself at a randomized durability event
// (WAL append/sync, flush, merge install, checkpoint, atomic rename — see
// internal/crashpoint). The driver then reopens the directory in-process,
// runs recovery, and asserts the surviving state is exactly the acknowledged
// writes: no lost acks, no resurrected deletes, no index/primary divergence,
// no torn components, no leftover temp files, and a replay bounded by the
// checkpoint interval.
package torture

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"asterixdb/internal/adm"
	"asterixdb/internal/crashpoint"
	"asterixdb/internal/invidx"
	"asterixdb/internal/storage"
)

// Config describes one torture workload; the driver and the child must use
// identical values so the driver can regenerate the child's operations.
type Config struct {
	Dir             string
	Seed            int64
	Ops             int
	CheckpointEvery int
}

// Env var names the driver uses to pass Config to the re-exec'd child.
const (
	EnvChild = "ASTERIX_TORTURE_CHILD"
	EnvDir   = "ASTERIX_TORTURE_DIR"
	EnvSeed  = "ASTERIX_TORTURE_SEED"
	EnvOps   = "ASTERIX_TORTURE_OPS"
	EnvCkpt  = "ASTERIX_TORTURE_CKPT"
)

// ConfigFromEnv rebuilds the child's Config from the environment.
func ConfigFromEnv() Config {
	atoi := func(s string) int { n, _ := strconv.Atoi(s); return n }
	seed, _ := strconv.ParseInt(os.Getenv(EnvSeed), 10, 64)
	return Config{
		Dir:             os.Getenv(EnvDir),
		Seed:            seed,
		Ops:             atoi(os.Getenv(EnvOps)),
		CheckpointEvery: atoi(os.Getenv(EnvCkpt)),
	}
}

func (c Config) env() []string {
	return []string{
		EnvChild + "=1",
		EnvDir + "=" + c.Dir,
		EnvSeed + "=" + strconv.FormatInt(c.Seed, 10),
		EnvOps + "=" + strconv.Itoa(c.Ops),
		EnvCkpt + "=" + strconv.Itoa(c.CheckpointEvery),
	}
}

// Op is one deterministic workload operation.
type Op struct {
	Delete bool
	ID     int64
	Val    int64
	X, Y   float64
	Text   string
	Name   string
}

// idSpace keeps keys colliding often, so upserts and deletes of live records
// (the interesting antimatter cases) happen constantly.
const idSpace = 48

var words = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel",
}

// Ops deterministically expands a seed into the workload's operations. The
// driver calls it to reconstruct exactly what the child was doing.
func Ops(seed int64, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, n)
	for i := range ops {
		op := Op{ID: int64(rng.Intn(idSpace))}
		if rng.Intn(100) < 25 {
			op.Delete = true
		} else {
			op.Val = int64(rng.Intn(1000))
			op.X = float64(rng.Intn(100))
			op.Y = float64(rng.Intn(100))
			op.Text = words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
			op.Name = words[rng.Intn(len(words))] + words[rng.Intn(len(words))]
		}
		ops[i] = op
	}
	return ops
}

// Model computes the exact live-record state after applying ops[0..upto].
func Model(seed int64, n, upto int) map[int64]Op {
	state := map[int64]Op{}
	for i, op := range Ops(seed, n) {
		if i > upto {
			break
		}
		if op.Delete {
			delete(state, op.ID)
		} else {
			state[op.ID] = op
		}
	}
	return state
}

func tortureType() *adm.RecordType {
	return &adm.RecordType{
		Name: "TortureType",
		Fields: []adm.FieldType{
			{Name: "id", Type: adm.Prim(adm.TagInt64)},
			{Name: "val", Type: adm.Prim(adm.TagInt64)},
			{Name: "loc", Type: adm.Prim(adm.TagPoint)},
			{Name: "text", Type: adm.Prim(adm.TagString)},
			{Name: "name", Type: adm.Prim(adm.TagString)},
		},
	}
}

func record(op Op) *adm.Record {
	return adm.NewRecord(
		adm.Field{Name: "id", Value: adm.Int64(op.ID)},
		adm.Field{Name: "val", Value: adm.Int64(op.Val)},
		adm.Field{Name: "loc", Value: adm.Point{X: op.X, Y: op.Y}},
		adm.Field{Name: "text", Value: adm.String(op.Text)},
		adm.Field{Name: "name", Value: adm.String(op.Name)},
	)
}

// open creates/reopens the torture manager with every index kind declared —
// the same DDL the child ran, which is the recovery contract (DDL is not
// journaled). A tiny memory budget keeps flushes and merges constant.
func open(cfg Config) (*storage.Manager, *storage.Dataset, error) {
	m, err := storage.NewManager(cfg.Dir, storage.Options{
		Partitions:         2,
		Journaled:          true,
		MemBudget:          2 << 10,
		CheckpointWALBytes: -1, // checkpoints are explicit, for determinism
	})
	if err != nil {
		return nil, nil, err
	}
	ds, err := m.CreateDataset(storage.DatasetSpec{
		Name:       "Torture",
		Type:       tortureType(),
		PrimaryKey: []string{"id"},
		Encoding:   adm.SchemaEncoding,
	})
	if err != nil {
		return nil, nil, err
	}
	for _, spec := range []storage.IndexSpec{
		{Name: "by_val", Fields: []string{"val"}, Kind: storage.BTreeIndex},
		{Name: "by_loc", Fields: []string{"loc"}, Kind: storage.RTreeIndex},
		{Name: "by_text", Fields: []string{"text"}, Kind: storage.KeywordIndex},
		{Name: "by_name", Fields: []string{"name"}, Kind: storage.NGramIndex, GramLength: 3},
	} {
		if err := ds.CreateIndex(spec); err != nil {
			return nil, nil, err
		}
	}
	return m, ds, nil
}

// RunChild executes the workload, printing "ACK <i>" after each committed
// operation. If a crashpoint is armed the process dies mid-workload; if not,
// it finishes and prints "EVENTS <n>" (the total crashpoint event count, used
// by the driver to calibrate its random kill targets).
func RunChild(cfg Config, out io.Writer) error {
	m, ds, err := open(cfg)
	if err != nil {
		return err
	}
	if err := m.Recover(); err != nil {
		return err
	}
	for i, op := range Ops(cfg.Seed, cfg.Ops) {
		if op.Delete {
			_, err = ds.Delete(adm.Int64(op.ID))
		} else {
			err = ds.Insert(record(op))
		}
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		if cfg.CheckpointEvery > 0 && (i+1)%cfg.CheckpointEvery == 0 {
			if err := m.Checkpoint(); err != nil {
				return fmt.Errorf("checkpoint after op %d: %w", i, err)
			}
		}
		fmt.Fprintf(out, "ACK %d\n", i)
	}
	if err := m.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "EVENTS %d\n", crashpoint.Count())
	return nil
}

// maxLogRecordsPerOp is a generous ceiling on WAL records one operation can
// produce (primary op + commit + old/new entries for four indexes, the ngram
// index contributing a couple of dozen posting keys). The replay-bound
// assertion uses it to turn "bounded log suffix" into a concrete number.
const maxLogRecordsPerOp = 128

// Verify reopens the torture directory, recovers, and checks every
// durability property. lastAck is the highest ACKed op index (-1 if none);
// completed means the child exited cleanly. The one-op ambiguity window
// (op lastAck+1 may have committed before the kill landed) is resolved by
// accepting either model.
func Verify(cfg Config, lastAck int, completed bool) error {
	m, ds, err := open(cfg)
	if err != nil {
		return fmt.Errorf("reopen: %w", err)
	}
	defer m.Close()
	if err := m.Recover(); err != nil {
		return fmt.Errorf("recover: %w", err)
	}

	// Bounded replay: a checkpoint every CheckpointEvery ops compacts the
	// WAL, so recovery must never replay more than about two intervals (the
	// current one plus, if the kill landed mid-checkpoint, the previous one).
	stats := m.Stats()
	if cfg.CheckpointEvery > 0 {
		bound := (2*cfg.CheckpointEvery + 2) * maxLogRecordsPerOp
		if stats.Recovery.Replayed > bound {
			return fmt.Errorf("recovery replayed %d records, want <= %d (checkpoint every %d ops did not bound the log suffix)",
				stats.Recovery.Replayed, bound, cfg.CheckpointEvery)
		}
	}

	// Recovered primary state must be exactly the acknowledged writes
	// (modulo the one op that may have committed without its ack).
	got := map[int64]Op{}
	err = ds.Scan(func(rec *adm.Record) bool {
		op := Op{
			ID:  int64(rec.Get("id").(adm.Int64)),
			Val: int64(rec.Get("val").(adm.Int64)),
		}
		pt := rec.Get("loc").(adm.Point)
		op.X, op.Y = pt.X, pt.Y
		op.Text = string(rec.Get("text").(adm.String))
		op.Name = string(rec.Get("name").(adm.String))
		got[op.ID] = op
		return true
	})
	if err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	candidates := []int{lastAck}
	if !completed && lastAck+1 < cfg.Ops {
		candidates = append(candidates, lastAck+1)
	}
	matched := false
	var diffs []string
	for _, upto := range candidates {
		want := Model(cfg.Seed, cfg.Ops, upto)
		if diff := diffStates(got, want); diff == "" {
			matched = true
			break
		} else {
			diffs = append(diffs, fmt.Sprintf("vs model(op<=%d): %s", upto, diff))
		}
	}
	if !matched {
		return fmt.Errorf("recovered state matches no acknowledged prefix (lastAck=%d):\n%s",
			lastAck, strings.Join(diffs, "\n"))
	}

	if err := verifyIndexes(ds, got); err != nil {
		return err
	}
	return verifyNoTempFiles(cfg.Dir)
}

func diffStates(got, want map[int64]Op) string {
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			return fmt.Sprintf("id %d lost (acknowledged write missing)", id)
		}
		if g != w {
			return fmt.Sprintf("id %d = %+v, want %+v", id, g, w)
		}
	}
	for id := range got {
		if _, ok := want[id]; !ok {
			return fmt.Sprintf("id %d present but was deleted/never acknowledged", id)
		}
	}
	return ""
}

// verifyIndexes cross-checks every secondary access path against the
// recovered primary state: each index must return exactly the records a full
// scan predicate produces. This is where a crash that left an index behind
// (or ahead of) the primary shows up.
func verifyIndexes(ds *storage.Dataset, state map[int64]Op) error {
	ids := func(recs []*adm.Record) map[int64]bool {
		set := map[int64]bool{}
		for _, r := range recs {
			set[int64(r.Get("id").(adm.Int64))] = true
		}
		return set
	}
	check := func(index string, gotSet map[int64]bool, match func(Op) bool) error {
		for id, op := range state {
			if match(op) && !gotSet[id] {
				return fmt.Errorf("index %s lost id %d (%+v)", index, id, op)
			}
		}
		for id := range gotSet {
			op, live := state[id]
			if !live {
				return fmt.Errorf("index %s returned deleted id %d", index, id)
			}
			if !match(op) {
				return fmt.Errorf("index %s returned id %d (%+v) which does not match", index, id, op)
			}
		}
		return nil
	}

	// B+-tree: a bounded range probe.
	lo, hi := int64(250), int64(750)
	recs, err := ds.SearchSecondaryRange("by_val", adm.Int64(lo), adm.Int64(hi))
	if err != nil {
		return err
	}
	if err := check("by_val", ids(recs), func(op Op) bool { return op.Val >= lo && op.Val <= hi }); err != nil {
		return err
	}

	// R-tree: a window probe (points intersect iff inside the window).
	win := adm.Rectangle{LowerLeft: adm.Point{X: 20, Y: 20}, UpperRight: adm.Point{X: 70, Y: 70}}
	recs, err = ds.SearchSecondaryRTree("by_loc", win)
	if err != nil {
		return err
	}
	inWin := func(op Op) bool {
		return op.X >= win.LowerLeft.X && op.X <= win.UpperRight.X && op.Y >= win.LowerLeft.Y && op.Y <= win.UpperRight.Y
	}
	if err := check("by_loc", ids(recs), inWin); err != nil {
		return err
	}

	// Keyword: probe every vocabulary word; matches are records whose text
	// contains the word as a token.
	for _, w := range words {
		recs, err = ds.SearchSecondaryInverted("by_text", w, 0)
		if err != nil {
			return err
		}
		word := w
		hasTok := func(op Op) bool {
			for _, tok := range strings.Fields(op.Text) {
				if tok == word {
					return true
				}
			}
			return false
		}
		if err := check("by_text:"+w, ids(recs), hasTok); err != nil {
			return err
		}
	}

	// N-gram: a T-occurrence probe. The oracle replicates the index's exact
	// candidate semantics — count how many of the probe's grams (duplicates
	// included) appear among the record's distinct grams.
	tokenize := invidx.NGramTokenizer(3)
	probe := words[0] + words[1]
	const minMatches = 4
	recs, err = ds.SearchSecondaryInverted("by_name", probe, minMatches)
	if err != nil {
		return err
	}
	probeGrams := tokenize(probe)
	gramMatch := func(op Op) bool {
		have := map[string]bool{}
		for _, g := range tokenize(op.Name) {
			have[g] = true
		}
		n := 0
		for _, g := range probeGrams {
			if have[g] {
				n++
			}
		}
		return n >= minMatches
	}
	return check("by_name", ids(recs), gramMatch)
}

// verifyNoTempFiles asserts the crash left no *.tmp files anywhere under the
// data directory: every component and meta file either renamed into place
// atomically or was cleaned up on reopen.
func verifyNoTempFiles(dir string) error {
	return filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".tmp") {
			return fmt.Errorf("leftover temp file after recovery: %s", path)
		}
		return nil
	})
}

// Driver orchestrates kill-&-recover cycles against a re-exec'd child.
type Driver struct {
	// Exe is the binary to exec as the child (usually os.Args[0], with the
	// child branch gated on EnvChild in TestMain or main).
	Exe  string
	Seed int64
	Ops  int
	// CheckpointEvery is the child's explicit checkpoint interval.
	CheckpointEvery int
	// Root is the scratch directory; each cycle works in a fresh subdir.
	Root string
	Logf func(format string, args ...any)
}

func (d *Driver) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// Calibrate runs one uncrashed child and returns its total crashpoint event
// count, the range the random kill targets are drawn from.
func (d *Driver) Calibrate() (int, error) {
	cfg := Config{Dir: filepath.Join(d.Root, "calibrate"), Seed: d.Seed, Ops: d.Ops, CheckpointEvery: d.CheckpointEvery}
	out, err := d.spawn(cfg, 0)
	if err != nil {
		return 0, fmt.Errorf("calibration child failed: %w\n%s", err, out)
	}
	_, events, _ := parseChild(out)
	if events <= 0 {
		return 0, fmt.Errorf("calibration child reported no events:\n%s", out)
	}
	if err := Verify(cfg, d.Ops-1, true); err != nil {
		return 0, fmt.Errorf("calibration verify: %w", err)
	}
	return events, nil
}

// RunCycles runs n kill-&-recover cycles and returns the first failure.
func (d *Driver) RunCycles(n int) error {
	events, err := d.Calibrate()
	if err != nil {
		return err
	}
	d.logf("torture: seed=%d ops=%d ckpt-every=%d crashpoint-events=%d cycles=%d",
		d.Seed, d.Ops, d.CheckpointEvery, events, n)
	rng := rand.New(rand.NewSource(d.Seed))
	for cycle := 0; cycle < n; cycle++ {
		cfg := Config{
			Dir:             filepath.Join(d.Root, fmt.Sprintf("cycle-%d", cycle)),
			Seed:            rng.Int63(),
			Ops:             d.Ops,
			CheckpointEvery: d.CheckpointEvery,
		}
		target := 1 + rng.Intn(events)
		out, runErr := d.spawn(cfg, target)
		lastAck, _, sawEvents := parseChild(out)
		completed := runErr == nil && sawEvents
		if runErr != nil && lastAck < 0 && !bytes.Contains(out, []byte("ACK")) && !killedBySignal(runErr) {
			// The child failed outright before doing any work — a harness
			// bug, not a crash under test.
			return fmt.Errorf("cycle %d (seed=%d target=%d): child error: %w\n%s", cycle, cfg.Seed, target, runErr, out)
		}
		d.logf("torture: cycle=%d seed=%d target=%d acked=%d killed=%v", cycle, cfg.Seed, target, lastAck, !completed)
		if err := Verify(cfg, lastAck, completed); err != nil {
			return fmt.Errorf("cycle %d (seed=%d target=%d acked=%d): %w", cycle, cfg.Seed, target, lastAck, err)
		}
		os.RemoveAll(cfg.Dir)
	}
	return nil
}

func (d *Driver) spawn(cfg Config, crashTarget int) ([]byte, error) {
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	cmd := exec.Command(d.Exe)
	cmd.Env = append(os.Environ(), cfg.env()...)
	if crashTarget > 0 {
		cmd.Env = append(cmd.Env, crashpoint.EnvVar+"="+strconv.Itoa(crashTarget))
	}
	return cmd.CombinedOutput()
}

func killedBySignal(err error) bool {
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		return false
	}
	return exitErr.ExitCode() == -1 // terminated by signal (SIGKILL)
}

// parseChild extracts the highest ACKed op index and the EVENTS total from a
// child's output. lastAck is -1 when nothing was acknowledged.
func parseChild(out []byte) (lastAck, events int, sawEvents bool) {
	lastAck = -1
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if n, ok := strings.CutPrefix(line, "ACK "); ok {
			if v, err := strconv.Atoi(n); err == nil && v > lastAck {
				lastAck = v
			}
		} else if n, ok := strings.CutPrefix(line, "EVENTS "); ok {
			if v, err := strconv.Atoi(n); err == nil {
				events = v
				sawEvents = true
			}
		}
	}
	return lastAck, events, sawEvents
}
