package torture

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// TestMain doubles as the torture child: the driver re-execs this test
// binary with EnvChild set, and the child branch runs the workload instead
// of the test suite (and dies at its crashpoint).
func TestMain(m *testing.M) {
	if os.Getenv(EnvChild) == "1" {
		if err := RunChild(ConfigFromEnv(), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestCrashTorture kill -9s a child workload at randomized durability events
// and asserts exact recovery each time. The default cycle count keeps CI
// fast; set ASTERIX_TORTURE_CYCLES (e.g. 200) for a long local soak.
func TestCrashTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("crash torture spawns many child processes; skipped in -short")
	}
	cycles := 20
	if env := os.Getenv("ASTERIX_TORTURE_CYCLES"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			cycles = n
		}
	}
	d := &Driver{
		Exe:             os.Args[0],
		Seed:            20140814, // the paper's VLDB volume date, fixed for reproducibility
		Ops:             120,
		CheckpointEvery: 25,
		Root:            t.TempDir(),
		Logf:            t.Logf,
	}
	if err := d.RunCycles(cycles); err != nil {
		t.Fatal(err)
	}
}
