package aql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVariable // $name
	tokString   // "..."
	tokInt
	tokFloat
	tokSymbol // punctuation and operators
	tokHint   // /*+ ... */
)

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokString:
		return `"` + t.text + `"`
	case tokVariable:
		return "$" + t.text
	default:
		return t.text
	}
}

// lexer turns AQL source text into tokens. Ordinary comments are skipped;
// optimizer hint comments (/*+ ... */) are preserved as hint tokens.
type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the whole input up front; AQL statements are short enough
// that a streaming lexer buys nothing.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		l.tokens = append(l.tokens, tok)
		if tok.kind == tokEOF {
			return l.tokens, nil
		}
	}
}

// multi-character symbols, longest first.
var multiSymbols = []string{":=", "<=", ">=", "!=", "~=", "}}", "{{"}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]

	// Optimizer hint comment.
	if strings.HasPrefix(l.src[l.pos:], "/*+") {
		end := strings.Index(l.src[l.pos:], "*/")
		if end < 0 {
			return token{}, fmt.Errorf("aql: unterminated hint comment at offset %d", start)
		}
		text := strings.TrimSpace(l.src[l.pos+3 : l.pos+end])
		l.pos += end + 2
		return token{kind: tokHint, text: text, pos: start}, nil
	}

	// Variables.
	if c == '$' {
		l.pos++
		name := l.readIdent()
		if name == "" {
			return token{}, fmt.Errorf("aql: expected variable name after '$' at offset %d", start)
		}
		return token{kind: tokVariable, text: name, pos: start}, nil
	}

	// Strings (double or single quoted).
	if c == '"' || c == '\'' {
		s, err := l.readString(c)
		if err != nil {
			return token{}, err
		}
		return token{kind: tokString, text: s, pos: start}, nil
	}

	// Numbers.
	if c >= '0' && c <= '9' {
		return l.readNumber(), nil
	}

	// Identifiers and keywords.
	if unicode.IsLetter(rune(c)) || c == '_' {
		id := l.readIdent()
		return token{kind: tokIdent, text: id, pos: start}, nil
	}

	// Multi-character symbols.
	for _, sym := range multiSymbols {
		if strings.HasPrefix(l.src[l.pos:], sym) {
			l.pos += len(sym)
			return token{kind: tokSymbol, text: sym, pos: start}, nil
		}
	}

	// Single-character symbols.
	switch c {
	case '(', ')', '{', '}', '[', ']', ',', ';', ':', '.', '=', '<', '>', '+', '-', '*', '/', '%', '?':
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	}
	return token{}, fmt.Errorf("aql: unexpected character %q at offset %d", c, start)
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// Line comments.
		if strings.HasPrefix(l.src[l.pos:], "//") || strings.HasPrefix(l.src[l.pos:], "--") {
			nl := strings.IndexByte(l.src[l.pos:], '\n')
			if nl < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += nl + 1
			continue
		}
		// Block comments that are NOT hints.
		if strings.HasPrefix(l.src[l.pos:], "/*") && !strings.HasPrefix(l.src[l.pos:], "/*+") {
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += end + 4
			continue
		}
		return
	}
}

// readIdent consumes an identifier; AQL identifiers may contain '-', matching
// ADM field names like "user-since", but a '-' followed by a space or digit
// boundary is left for the expression parser to treat as minus.
func (l *lexer) readIdent() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
			l.pos++
			continue
		}
		// Allow '-' inside identifiers only when followed by a letter, so
		// "user-since" lexes as one identifier but "a - 1" does not.
		if c == '-' && l.pos+1 < len(l.src) && unicode.IsLetter(rune(l.src[l.pos+1])) && l.pos > start {
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) readString(quote byte) (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			return sb.String(), nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			esc := l.src[l.pos]
			switch esc {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				sb.WriteByte(esc)
			}
			l.pos++
			continue
		}
		sb.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("aql: unterminated string at offset %d", start)
}

func (l *lexer) readNumber() token {
	start := l.pos
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			isFloat = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) &&
			(l.src[l.pos+1] == '-' || l.src[l.pos+1] == '+' || (l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9')) {
			isFloat = true
			l.pos += 2
			continue
		}
		break
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	return token{kind: kind, text: l.src[start:l.pos], pos: start}
}
