package aql

import (
	"strings"
	"testing"

	"asterixdb/internal/adm"
)

func parseOne(t *testing.T, src string) Statement {
	t.Helper()
	stmts, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if len(stmts) != 1 {
		t.Fatalf("Parse(%q) returned %d statements", src, len(stmts))
	}
	return stmts[0]
}

func TestParseDataDefinition1(t *testing.T) {
	// Data definition 1 from the paper: dataverse + three types.
	src := `
drop dataverse TinySocial if exists;
create dataverse TinySocial;
use dataverse TinySocial;

create type EmploymentType as open {
  organization-name: string,
  start-date: date,
  end-date: date?
}

create type MugshotUserType as {
  id: int32,
  alias: string,
  name: string,
  user-since: datetime,
  address: {
    street: string,
    city: string,
    state: string,
    zip: string,
    country: string
  },
  friend-ids: {{ int32 }},
  employment: [EmploymentType]
}

create type MugshotMessageType as closed {
  message-id: int32,
  author-id: int32,
  timestamp: datetime,
  in-response-to: int32?,
  sender-location: point?,
  tags: {{ string }},
  message: string
}
`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmts) != 6 {
		t.Fatalf("got %d statements, want 6", len(stmts))
	}
	if d, ok := stmts[0].(*DropDataverse); !ok || !d.IfExists || d.Name != "TinySocial" {
		t.Errorf("stmt 0 = %#v", stmts[0])
	}
	if _, ok := stmts[1].(*CreateDataverse); !ok {
		t.Errorf("stmt 1 = %#v", stmts[1])
	}
	if u, ok := stmts[2].(*DataverseDecl); !ok || u.Name != "TinySocial" {
		t.Errorf("stmt 2 = %#v", stmts[2])
	}
	emp := stmts[3].(*CreateType)
	if emp.Name != "EmploymentType" || !emp.Definition.Open || len(emp.Definition.Fields) != 3 {
		t.Errorf("EmploymentType = %#v", emp)
	}
	if !emp.Definition.Fields[2].Optional {
		t.Error("end-date should be optional")
	}
	user := stmts[4].(*CreateType)
	if !user.Definition.Open {
		t.Error("MugshotUserType should default to open")
	}
	addr := user.Definition.Fields[4]
	if addr.Name != "address" || addr.Type.Record == nil || len(addr.Type.Record.Fields) != 5 {
		t.Errorf("address field = %#v", addr)
	}
	friends := user.Definition.Fields[5]
	if friends.Type.UnorderedItem == nil || friends.Type.UnorderedItem.Name != "int32" {
		t.Errorf("friend-ids field = %#v", friends)
	}
	employment := user.Definition.Fields[6]
	if employment.Type.OrderedItem == nil || employment.Type.OrderedItem.Name != "EmploymentType" {
		t.Errorf("employment field = %#v", employment)
	}
	msg := stmts[5].(*CreateType)
	if msg.Definition.Open {
		t.Error("MugshotMessageType should be closed")
	}
}

func TestParseDataDefinition2(t *testing.T) {
	src := `
create dataset MugshotUsers(MugshotUserType) primary key id;
create dataset MugshotMessages(MugshotMessageType) primary key message-id;
create index msUserSinceIdx on MugshotUsers(user-since);
create index msTimestampIdx on MugshotMessages(timestamp);
create index msAuthorIdx on MugshotMessages(author-id) type btree;
create index msSenderLocIndex on MugshotMessages(sender-location) type rtree;
create index msMessageIdx on MugshotMessages(message) type keyword;
`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmts) != 7 {
		t.Fatalf("got %d statements", len(stmts))
	}
	ds := stmts[0].(*CreateDataset)
	if ds.Name != "MugshotUsers" || ds.TypeName != "MugshotUserType" || len(ds.PrimaryKey) != 1 || ds.PrimaryKey[0] != "id" {
		t.Errorf("MugshotUsers = %#v", ds)
	}
	idx := stmts[2].(*CreateIndex)
	if idx.Kind != IndexBTree || idx.Fields[0] != "user-since" {
		t.Errorf("default index kind = %#v", idx)
	}
	if stmts[5].(*CreateIndex).Kind != IndexRTree {
		t.Error("rtree index kind not parsed")
	}
	if stmts[6].(*CreateIndex).Kind != IndexKeyword {
		t.Error("keyword index kind not parsed")
	}
}

func TestParseExternalDatasetAndFeed(t *testing.T) {
	src := `
create external dataset AccessLog(AccessLogType) using localfs
  (("path"="localhost:///tmp/log.csv"),
   ("format"="delimited-text"),
   ("delimiter"="|"));

create feed socket_feed using socket_adaptor
  (("sockets"="127.0.0.1:10001"),
   ("addressType"="IP"),
   ("type-name"="MugshotMessageType"),
   ("format"="adm"));

connect feed socket_feed to dataset MugshotMessages;
disconnect feed socket_feed from dataset MugshotMessages;
`
	stmts, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ext := stmts[0].(*CreateDataset)
	if !ext.External || ext.Adaptor != "localfs" || ext.Properties["delimiter"] != "|" {
		t.Errorf("external dataset = %#v", ext)
	}
	feed := stmts[1].(*CreateFeed)
	if feed.Adaptor != "socket_adaptor" || feed.Properties["format"] != "adm" {
		t.Errorf("feed = %#v", feed)
	}
	conn := stmts[2].(*ConnectFeed)
	if conn.Feed != "socket_feed" || conn.Dataset != "MugshotMessages" {
		t.Errorf("connect = %#v", conn)
	}
	if _, ok := stmts[3].(*DisconnectFeed); !ok {
		t.Errorf("disconnect = %#v", stmts[3])
	}
}

func TestParseQuery1MetadataScan(t *testing.T) {
	q := parseOne(t, `for $ds in dataset Metadata.Dataset return $ds;`).(*QueryStatement)
	fl := q.Body.(*FLWORExpr)
	forClause := fl.Clauses[0].(*ForClause)
	ds := forClause.Source.(*DatasetRef)
	if ds.Dataverse != "Metadata" || ds.Name != "Dataset" {
		t.Errorf("dataset ref = %#v", ds)
	}
	if _, ok := fl.Return.(*VariableRef); !ok {
		t.Errorf("return = %#v", fl.Return)
	}
}

func TestParseQuery2RangeScan(t *testing.T) {
	q := parseOne(t, `
for $user in dataset MugshotUsers
where $user.user-since >= datetime('2010-07-22T00:00:00')
  and $user.user-since <= datetime('2012-07-29T23:59:59')
return $user;`).(*QueryStatement)
	fl := q.Body.(*FLWORExpr)
	if len(fl.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(fl.Clauses))
	}
	where := fl.Clauses[1].(*WhereClause)
	and := where.Cond.(*BinaryExpr)
	if and.Op != OpAnd {
		t.Errorf("top op = %v", and.Op)
	}
	ge := and.Left.(*BinaryExpr)
	if ge.Op != OpGe {
		t.Errorf("left op = %v", ge.Op)
	}
	// datetime('...') folds into a Datetime literal.
	lit, ok := ge.Right.(*Literal)
	if !ok || lit.Value.Tag() != adm.TagDatetime {
		t.Errorf("datetime literal = %#v", ge.Right)
	}
	fa := ge.Left.(*FieldAccess)
	if fa.Field != "user-since" {
		t.Errorf("field access = %#v", fa)
	}
}

func TestParseQuery3Equijoin(t *testing.T) {
	q := parseOne(t, `
for $user in dataset MugshotUsers
for $message in dataset MugshotMessages
where $message.author-id = $user.id
  and $user.user-since >= datetime('2010-07-22T00:00:00')
return { "uname": $user.name, "message": $message.message };`).(*QueryStatement)
	fl := q.Body.(*FLWORExpr)
	if len(fl.Clauses) != 3 {
		t.Fatalf("clauses = %d", len(fl.Clauses))
	}
	rc := fl.Return.(*RecordConstructor)
	if len(rc.Fields) != 2 || rc.Fields[0].Name != "uname" {
		t.Errorf("record constructor = %#v", rc)
	}
}

func TestParseQuery4NestedOuterJoin(t *testing.T) {
	q := parseOne(t, `
for $user in dataset MugshotUsers
where $user.user-since >= datetime('2010-07-22T00:00:00')
return {
  "uname": $user.name,
  "messages":
    for $message in dataset MugshotMessages
    where $message.author-id = $user.id
    return $message.message
};`).(*QueryStatement)
	rc := q.Body.(*FLWORExpr).Return.(*RecordConstructor)
	if _, ok := rc.Fields[1].Value.(*FLWORExpr); !ok {
		t.Errorf("nested FLWOR not parsed: %#v", rc.Fields[1].Value)
	}
}

func TestParseQuery5SpatialJoin(t *testing.T) {
	q := parseOne(t, `
for $t in dataset MugshotMessages
return {
  "message": $t.message,
  "nearby-messages":
    for $t2 in dataset MugshotMessages
    where spatial-distance($t.sender-location, $t2.sender-location) <= 1
    return { "msgtxt": $t2.message }
};`).(*QueryStatement)
	nested := q.Body.(*FLWORExpr).Return.(*RecordConstructor).Fields[1].Value.(*FLWORExpr)
	cond := nested.Clauses[1].(*WhereClause).Cond.(*BinaryExpr)
	call := cond.Left.(*CallExpr)
	if call.Func != "spatial-distance" || len(call.Args) != 2 {
		t.Errorf("call = %#v", call)
	}
}

func TestParseQuery6FuzzySelection(t *testing.T) {
	stmts, err := Parse(`
set simfunction "edit-distance";
set simthreshold "3";
for $msu in dataset MugshotUsers
for $msm in dataset MugshotMessages
where $msu.id = $msm.author-id
  and (some $word in word-tokens($msm.message) satisfies $word ~= "tonight")
return { "name": $msu.name, "message": $msm.message };`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
	set := stmts[0].(*SetStatement)
	if set.Name != "simfunction" || set.Value != "edit-distance" {
		t.Errorf("set = %#v", set)
	}
	fl := stmts[2].(*QueryStatement).Body.(*FLWORExpr)
	where := fl.Clauses[2].(*WhereClause).Cond.(*BinaryExpr)
	quant, ok := where.Right.(*QuantifiedExpr)
	if !ok || quant.Every {
		t.Fatalf("quantifier = %#v", where.Right)
	}
	fz := quant.Satisfies.(*BinaryExpr)
	if fz.Op != OpFuzzyEq {
		t.Errorf("fuzzy op = %v", fz.Op)
	}
}

func TestParseQuery7Existential(t *testing.T) {
	q := parseOne(t, `
for $msu in dataset MugshotUsers
where (some $e in $msu.employment satisfies is-null($e.end-date) and $e.job-kind = "part-time")
return $msu;`).(*QueryStatement)
	where := q.Body.(*FLWORExpr).Clauses[1].(*WhereClause)
	if _, ok := where.Cond.(*QuantifiedExpr); !ok {
		t.Errorf("cond = %#v", where.Cond)
	}
}

func TestParseQuery8And9FunctionDefinitionAndUse(t *testing.T) {
	stmts, err := Parse(`
create function unemployed() {
  for $msu in dataset MugshotUsers
  where (every $e in $msu.employment satisfies not(is-null($e.end-date)))
  return { "name": $msu.name, "address": $msu.address }
};

for $un in unemployed()
where $un.address.zip = "98765"
return $un;`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	fn := stmts[0].(*CreateFunction)
	if fn.Name != "unemployed" || len(fn.Params) != 0 {
		t.Errorf("function = %#v", fn)
	}
	if _, ok := fn.Body.(*FLWORExpr); !ok {
		t.Errorf("function body = %#v", fn.Body)
	}
	use := stmts[1].(*QueryStatement).Body.(*FLWORExpr)
	call := use.Clauses[0].(*ForClause).Source.(*CallExpr)
	if call.Func != "unemployed" {
		t.Errorf("call = %#v", call)
	}
	// $un.address.zip is a chained field access.
	where := use.Clauses[1].(*WhereClause).Cond.(*BinaryExpr)
	fa := where.Left.(*FieldAccess)
	if fa.Field != "zip" || fa.Base.(*FieldAccess).Field != "address" {
		t.Errorf("chained field access = %#v", fa)
	}
}

func TestParseQuery10Aggregation(t *testing.T) {
	q := parseOne(t, `
avg(
  for $m in dataset MugshotMessages
  where $m.timestamp >= datetime("2014-01-01T00:00:00")
    and $m.timestamp < datetime("2014-04-01T00:00:00")
  return string-length($m.message)
)`).(*QueryStatement)
	call := q.Body.(*CallExpr)
	if call.Func != "avg" || len(call.Args) != 1 {
		t.Fatalf("call = %#v", call)
	}
	if _, ok := call.Args[0].(*FLWORExpr); !ok {
		t.Errorf("avg argument = %#v", call.Args[0])
	}
}

func TestParseQuery11GroupBy(t *testing.T) {
	q := parseOne(t, `
for $msg in dataset MugshotMessages
where $msg.timestamp >= datetime("2014-02-20T00:00:00")
  and $msg.timestamp < datetime("2014-02-21T00:00:00")
group by $aid := $msg.author-id with $msg
let $cnt := count($msg)
order by $cnt desc
limit 3
return { "author": $aid, "no messages": $cnt };`).(*QueryStatement)
	fl := q.Body.(*FLWORExpr)
	var haveGroup, haveOrder, haveLimit, haveLet bool
	for _, c := range fl.Clauses {
		switch x := c.(type) {
		case *GroupByClause:
			haveGroup = true
			if x.Keys[0].Var != "aid" || x.With[0] != "msg" {
				t.Errorf("group by = %#v", x)
			}
		case *OrderByClause:
			haveOrder = true
			if !x.Terms[0].Desc {
				t.Error("order by should be desc")
			}
		case *LimitClause:
			haveLimit = true
		case *LetClause:
			haveLet = true
		}
	}
	if !haveGroup || !haveOrder || !haveLimit || !haveLet {
		t.Errorf("missing clauses: group=%v order=%v limit=%v let=%v", haveGroup, haveOrder, haveLimit, haveLet)
	}
}

func TestParseQuery12ActiveUsers(t *testing.T) {
	q := parseOne(t, `
let $end := current-datetime()
let $start := $end - duration("P30D")
for $user in dataset MugshotUsers
where some $logrecord in dataset AccessLog satisfies $user.alias = $logrecord.user
  and datetime($logrecord.time) >= $start
  and datetime($logrecord.time) <= $end
group by $country := $user.address.country with $user
return { "country": $country, "active users": count($user) }`).(*QueryStatement)
	fl := q.Body.(*FLWORExpr)
	let1 := fl.Clauses[0].(*LetClause)
	if let1.Var != "end" {
		t.Errorf("first let = %#v", let1)
	}
	let2 := fl.Clauses[1].(*LetClause)
	sub := let2.Expr.(*BinaryExpr)
	if sub.Op != OpSub {
		t.Errorf("datetime arithmetic = %#v", sub)
	}
}

func TestParseQuery13FuzzyJoin(t *testing.T) {
	stmts, err := Parse(`
set simfunction "jaccard";
set simthreshold "0.3";
for $msg in dataset MugshotMessages
let $msgsSimilarTags := (
  for $m2 in dataset MugshotMessages
  where $m2.tags ~= $msg.tags and $m2.message-id != $msg.message-id
  return $m2.message
)
where count($msgsSimilarTags) > 0
return { "message": $msg.message, "similarly tagged": $msgsSimilarTags };`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	fl := stmts[2].(*QueryStatement).Body.(*FLWORExpr)
	let := fl.Clauses[1].(*LetClause)
	if _, ok := let.Expr.(*FLWORExpr); !ok {
		t.Errorf("let expression = %#v", let.Expr)
	}
}

func TestParseQuery14IndexHint(t *testing.T) {
	q := parseOne(t, `
for $user in dataset MugshotUsers
for $message in dataset MugshotMessages
where $message.author-id /*+ indexnl */ = $user.id
return { "uname": $user.name, "message": $message.message };`).(*QueryStatement)
	where := q.Body.(*FLWORExpr).Clauses[2].(*WhereClause)
	be := where.Cond.(*BinaryExpr)
	if be.Hint != "indexnl" {
		t.Errorf("hint = %q", be.Hint)
	}
}

func TestParseUpdates(t *testing.T) {
	stmts, err := Parse(`
insert into dataset MugshotUsers
(
  {
    "id": 11,
    "alias": "John",
    "name": "JohnDoe",
    "address": { "street": "789 Jane St", "city": "San Harry", "zip": "98767", "state": "CA", "country": "USA" },
    "user-since": datetime("2010-08-15T08:10:00"),
    "friend-ids": {{ 5, 9, 11 }},
    "employment": [ { "organization-name": "Kongreen", "start-date": date("2012-06-05") } ]
  }
);

delete $user from dataset MugshotUsers where $user.id = 11;
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ins := stmts[0].(*InsertStatement)
	if ins.Dataset != "MugshotUsers" {
		t.Errorf("insert dataset = %q", ins.Dataset)
	}
	rc := ins.Body.(*RecordConstructor)
	if len(rc.Fields) != 7 {
		t.Errorf("insert record has %d fields", len(rc.Fields))
	}
	del := stmts[1].(*DeleteStatement)
	if del.Var != "user" || del.Dataset != "MugshotUsers" || del.Where == nil {
		t.Errorf("delete = %#v", del)
	}
}

func TestParseArithmeticExpression(t *testing.T) {
	// "1+1 is a valid AQL query that evaluates to 2."
	q := parseOne(t, `1 + 1`).(*QueryStatement)
	be := q.Body.(*BinaryExpr)
	if be.Op != OpAdd {
		t.Errorf("op = %v", be.Op)
	}
	// Precedence: 1 + 2 * 3 parses as 1 + (2 * 3).
	q = parseOne(t, `1 + 2 * 3`).(*QueryStatement)
	be = q.Body.(*BinaryExpr)
	if be.Op != OpAdd {
		t.Fatalf("top op = %v", be.Op)
	}
	if be.Right.(*BinaryExpr).Op != OpMul {
		t.Error("multiplication should bind tighter than addition")
	}
}

func TestParseLoadStatement(t *testing.T) {
	stmt := parseOne(t, `load dataset MugshotUsers using localfs (("path"="/tmp/users.adm"),("format"="adm"));`)
	load := stmt.(*LoadStatement)
	if load.Dataset != "MugshotUsers" || load.Adaptor != "localfs" || load.Properties["format"] != "adm" {
		t.Errorf("load = %#v", load)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`for`,
		`for $x in`,
		`for $x in dataset D`,
		`create type T`,
		`create dataset D`,
		`create index I on`,
		`insert into dataset`,
		`{ "a" 1 }`,
		`for $x in dataset D return`,
		`where $x.y = 1`,
		`$x ~`,
		`for $x in dataset D return $x extra`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestStatementStrings(t *testing.T) {
	stmts, err := Parse(`
use dataverse TinySocial;
create dataset D(T) primary key id;
create index i on D(f) type rtree;
for $x in dataset D where $x.f > 1 order by $x.f limit 2 return { "v": $x.f };
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stmts {
		if s.String() == "" {
			t.Errorf("%T has empty String()", s)
		}
	}
	q := stmts[3].(*QueryStatement).String()
	for _, want := range []string{"for $x", "where", "order by", "limit 2", "return"} {
		if !strings.Contains(q, want) {
			t.Errorf("query string %q missing %q", q, want)
		}
	}
}

func TestParseQueryHelper(t *testing.T) {
	e, err := ParseQuery(`for $x in dataset D return $x`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(*FLWORExpr); !ok {
		t.Errorf("ParseQuery returned %#v", e)
	}
	if _, err := ParseQuery(`create dataverse X`); err == nil {
		t.Error("ParseQuery should reject DDL")
	}
	if _, err := ParseQuery(`1; 2`); err == nil {
		t.Error("ParseQuery should reject multiple statements")
	}
}
