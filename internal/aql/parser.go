package aql

import (
	"fmt"
	"strconv"
	"strings"

	"asterixdb/internal/adm"
)

// Parse parses one or more semicolon-separated AQL statements.
func Parse(src string) ([]Statement, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	var stmts []Statement
	for !p.at(tokEOF) {
		if p.atSymbol(";") {
			p.advance()
			continue
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, stmt)
		if p.atSymbol(";") {
			p.advance()
		}
	}
	return stmts, nil
}

// ParseQuery parses a single query expression (no DDL/DML), as used by
// function bodies and embedded callers.
func ParseQuery(src string) (Expr, error) {
	stmts, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("aql: expected a single query, got %d statements", len(stmts))
	}
	q, ok := stmts[0].(*QueryStatement)
	if !ok {
		return nil, fmt.Errorf("aql: expected a query, got %T", stmts[0])
	}
	return q.Body, nil
}

type parser struct {
	tokens []token
	pos    int
}

func (p *parser) cur() token { return p.tokens[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) at(k tokenKind) bool {
	return p.cur().kind == k
}
func (p *parser) atSymbol(s string) bool {
	return p.cur().kind == tokSymbol && p.cur().text == s
}
func (p *parser) atKeyword(kw string) bool {
	return p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, kw)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("aql: parse error near %q (offset %d): %s", p.cur().String(), p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectSymbol(s string) error {
	if !p.atSymbol(s) {
		return p.errf("expected %q", s)
	}
	p.advance()
	return nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected keyword %q", kw)
	}
	p.advance()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if !p.at(tokIdent) {
		return "", p.errf("expected identifier")
	}
	name := p.cur().text
	p.advance()
	return name, nil
}

func (p *parser) expectVariable() (string, error) {
	if !p.at(tokVariable) {
		return "", p.errf("expected variable")
	}
	name := p.cur().text
	p.advance()
	return name, nil
}

func (p *parser) expectString() (string, error) {
	if !p.at(tokString) {
		return "", p.errf("expected string literal")
	}
	s := p.cur().text
	p.advance()
	return s, nil
}

// ----------------------------------------------------------------------------
// Statements
// ----------------------------------------------------------------------------

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.atKeyword("use"):
		return p.parseUse()
	case p.atKeyword("create"):
		return p.parseCreate()
	case p.atKeyword("drop"):
		return p.parseDrop()
	case p.atKeyword("insert"):
		return p.parseInsert()
	case p.atKeyword("delete"):
		return p.parseDelete()
	case p.atKeyword("load"):
		return p.parseLoad()
	case p.atKeyword("set"):
		return p.parseSet()
	case p.atKeyword("connect"):
		return p.parseConnectFeed()
	case p.atKeyword("disconnect"):
		return p.parseDisconnectFeed()
	default:
		expr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &QueryStatement{Body: expr}, nil
	}
}

func (p *parser) parseUse() (Statement, error) {
	p.advance() // use
	if err := p.expectKeyword("dataverse"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DataverseDecl{Name: name}, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.advance() // create
	switch {
	case p.atKeyword("dataverse"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ine, err := p.parseIfNotExists()
		if err != nil {
			return nil, err
		}
		return &CreateDataverse{Name: name, IfNotExists: ine}, nil
	case p.atKeyword("type"):
		return p.parseCreateType()
	case p.atKeyword("dataset"), p.atKeyword("internal"):
		if p.atKeyword("internal") {
			p.advance()
		}
		return p.parseCreateDataset(false)
	case p.atKeyword("external"):
		p.advance()
		if err := p.expectKeyword("dataset"); err != nil {
			return nil, err
		}
		return p.parseCreateDatasetBody(true)
	case p.atKeyword("index"):
		return p.parseCreateIndex()
	case p.atKeyword("function"):
		return p.parseCreateFunction()
	case p.atKeyword("feed"):
		return p.parseCreateFeed()
	}
	return nil, p.errf("unsupported create statement")
}

func (p *parser) parseIfNotExists() (bool, error) {
	if p.atKeyword("if") {
		p.advance()
		if err := p.expectKeyword("not"); err != nil {
			return false, err
		}
		if err := p.expectKeyword("exists"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func (p *parser) parseIfExists() (bool, error) {
	if p.atKeyword("if") {
		p.advance()
		if err := p.expectKeyword("exists"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

func (p *parser) parseCreateType() (Statement, error) {
	p.advance() // type
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ine, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	open := true
	if p.atKeyword("open") {
		p.advance()
	} else if p.atKeyword("closed") {
		open = false
		p.advance()
	}
	body, err := p.parseRecordTypeBody(open)
	if err != nil {
		return nil, err
	}
	return &CreateType{Name: name, Definition: *body, IfNotExists: ine}, nil
}

func (p *parser) parseRecordTypeBody(open bool) (*RecordTypeExpr, error) {
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	body := &RecordTypeExpr{Open: open}
	for {
		if p.atSymbol("}") {
			p.advance()
			return body, nil
		}
		var fieldName string
		var err error
		if p.at(tokString) {
			fieldName, err = p.expectString()
		} else {
			fieldName, err = p.expectIdent()
		}
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(":"); err != nil {
			return nil, err
		}
		te, err := p.parseTypeExpr()
		if err != nil {
			return nil, err
		}
		optional := false
		if p.atSymbol("?") {
			optional = true
			p.advance()
		}
		body.Fields = append(body.Fields, TypeField{Name: fieldName, Type: *te, Optional: optional})
		if p.atSymbol(",") {
			p.advance()
			continue
		}
		if p.atSymbol("}") {
			p.advance()
			return body, nil
		}
		return nil, p.errf("expected ',' or '}' in type definition")
	}
}

func (p *parser) parseTypeExpr() (*TypeExpr, error) {
	switch {
	case p.atSymbol("{{"):
		p.advance()
		item, err := p.parseTypeExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("}}"); err != nil {
			return nil, err
		}
		return &TypeExpr{UnorderedItem: item}, nil
	case p.atSymbol("["):
		p.advance()
		item, err := p.parseTypeExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("]"); err != nil {
			return nil, err
		}
		return &TypeExpr{OrderedItem: item}, nil
	case p.atSymbol("{"):
		// Anonymous nested record (open by default).
		body, err := p.parseRecordTypeBody(true)
		if err != nil {
			return nil, err
		}
		return &TypeExpr{Record: body}, nil
	default:
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &TypeExpr{Name: name}, nil
	}
}

func (p *parser) parseCreateDataset(external bool) (Statement, error) {
	p.advance() // dataset
	return p.parseCreateDatasetBody(external)
}

func (p *parser) parseCreateDatasetBody(external bool) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	typeName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	ine, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	ds := &CreateDataset{Name: name, TypeName: typeName, External: external, IfNotExists: ine}
	for {
		switch {
		case p.atKeyword("primary"):
			p.advance()
			if err := p.expectKeyword("key"); err != nil {
				return nil, err
			}
			for {
				f, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				ds.PrimaryKey = append(ds.PrimaryKey, f)
				if p.atSymbol(",") {
					p.advance()
					continue
				}
				break
			}
		case p.atKeyword("using"):
			p.advance()
			adaptor, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			props, err := p.parsePropertyList()
			if err != nil {
				return nil, err
			}
			ds.Adaptor, ds.Properties = adaptor, props
		default:
			return ds, nil
		}
	}
}

// parsePropertyList parses (("k"="v"),("k2"="v2")).
func (p *parser) parsePropertyList() (map[string]string, error) {
	props := map[string]string{}
	if !p.atSymbol("(") {
		return props, nil
	}
	p.advance()
	for {
		if p.atSymbol(")") {
			p.advance()
			return props, nil
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		k, err := p.expectString()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		v, err := p.expectString()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		props[k] = v
		if p.atSymbol(",") {
			p.advance()
		}
	}
}

func (p *parser) parseCreateIndex() (Statement, error) {
	p.advance() // index
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ine, err := p.parseIfNotExists()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("on"); err != nil {
		return nil, err
	}
	dataset, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	idx := &CreateIndex{Name: name, Dataset: dataset, Kind: IndexBTree, IfNotExists: ine}
	for {
		f, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		idx.Fields = append(idx.Fields, f)
		if p.atSymbol(",") {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if p.atKeyword("type") {
		p.advance()
		kind, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(kind) {
		case "btree":
			idx.Kind = IndexBTree
		case "rtree":
			idx.Kind = IndexRTree
		case "keyword":
			idx.Kind = IndexKeyword
		case "ngram":
			idx.Kind = IndexNGram
			idx.GramLength = 3
			if p.atSymbol("(") {
				p.advance()
				if !p.at(tokInt) {
					return nil, p.errf("expected gram length")
				}
				n, _ := strconv.Atoi(p.cur().text)
				idx.GramLength = n
				p.advance()
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
		default:
			return nil, p.errf("unknown index type %q", kind)
		}
	}
	return idx, nil
}

func (p *parser) parseCreateFunction() (Statement, error) {
	p.advance() // function
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	fn := &CreateFunction{Name: name}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for !p.atSymbol(")") {
		v, err := p.expectVariable()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, v)
		if p.atSymbol(",") {
			p.advance()
		}
	}
	p.advance() // ')'
	if err := p.expectSymbol("{"); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	if err := p.expectSymbol("}"); err != nil {
		return nil, err
	}
	return fn, nil
}

func (p *parser) parseCreateFeed() (Statement, error) {
	p.advance() // feed
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("using"); err != nil {
		return nil, err
	}
	adaptor, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	props, err := p.parsePropertyList()
	if err != nil {
		return nil, err
	}
	feed := &CreateFeed{Name: name, Adaptor: adaptor, Properties: props}
	if p.atKeyword("apply") {
		p.advance()
		if err := p.expectKeyword("function"); err != nil {
			return nil, err
		}
		fn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		feed.ApplyFunction = fn
	}
	return feed, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.advance() // drop
	switch {
	case p.atKeyword("dataverse"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ie, err := p.parseIfExists()
		if err != nil {
			return nil, err
		}
		return &DropDataverse{Name: name, IfExists: ie}, nil
	case p.atKeyword("type"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ie, err := p.parseIfExists()
		if err != nil {
			return nil, err
		}
		return &DropType{Name: name, IfExists: ie}, nil
	case p.atKeyword("dataset"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ie, err := p.parseIfExists()
		if err != nil {
			return nil, err
		}
		return &DropDataset{Name: name, IfExists: ie}, nil
	case p.atKeyword("index"):
		p.advance()
		ds, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("."); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ie, err := p.parseIfExists()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Dataset: ds, Name: name, IfExists: ie}, nil
	case p.atKeyword("function"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ie, err := p.parseIfExists()
		if err != nil {
			return nil, err
		}
		return &DropFunction{Name: name, IfExists: ie}, nil
	case p.atKeyword("feed"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &DropFeed{Name: name}, nil
	}
	return nil, p.errf("unsupported drop statement")
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // insert
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("dataset"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	// The body may be parenthesised (as in the paper) or bare.
	paren := false
	if p.atSymbol("(") {
		paren = true
		p.advance()
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if paren {
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	return &InsertStatement{Dataset: name, Body: body}, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.advance() // delete
	v, err := p.expectVariable()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("dataset"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &DeleteStatement{Var: v, Dataset: name}
	if p.atKeyword("where") {
		p.advance()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = cond
	}
	return del, nil
}

func (p *parser) parseLoad() (Statement, error) {
	p.advance() // load
	if err := p.expectKeyword("dataset"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("using"); err != nil {
		return nil, err
	}
	adaptor, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	props, err := p.parsePropertyList()
	if err != nil {
		return nil, err
	}
	return &LoadStatement{Dataset: name, Adaptor: adaptor, Properties: props}, nil
}

func (p *parser) parseSet() (Statement, error) {
	p.advance() // set
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	val, err := p.expectString()
	if err != nil {
		return nil, err
	}
	return &SetStatement{Name: name, Value: val}, nil
}

func (p *parser) parseConnectFeed() (Statement, error) {
	p.advance() // connect
	if err := p.expectKeyword("feed"); err != nil {
		return nil, err
	}
	feed, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("to"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("dataset"); err != nil {
		return nil, err
	}
	ds, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &ConnectFeed{Feed: feed, Dataset: ds}, nil
}

func (p *parser) parseDisconnectFeed() (Statement, error) {
	p.advance() // disconnect
	if err := p.expectKeyword("feed"); err != nil {
		return nil, err
	}
	feed, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("dataset"); err != nil {
		return nil, err
	}
	ds, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DisconnectFeed{Feed: feed, Dataset: ds}, nil
}

// ----------------------------------------------------------------------------
// Expressions
// ----------------------------------------------------------------------------

// Reserved words that terminate a value expression inside FLWOR contexts.
var clauseKeywords = map[string]bool{
	"for": true, "let": true, "where": true, "group": true, "order": true,
	"limit": true, "return": true, "satisfies": true, "with": true,
	"then": true, "else": true, "desc": true, "asc": true, "offset": true,
	"at": true, "in": true, "to": true, "from": true,
}

func (p *parser) parseExpr() (Expr, error) {
	switch {
	case p.atKeyword("for"), p.atKeyword("let"):
		return p.parseFLWOR()
	case p.atKeyword("some"), p.atKeyword("every"):
		return p.parseQuantified()
	case p.atKeyword("if"):
		return p.parseIf()
	default:
		return p.parseOr()
	}
}

func (p *parser) parseFLWOR() (Expr, error) {
	fl := &FLWORExpr{}
	for {
		switch {
		case p.atKeyword("for"):
			p.advance()
			v, err := p.expectVariable()
			if err != nil {
				return nil, err
			}
			posVar := ""
			if p.atKeyword("at") {
				p.advance()
				posVar, err = p.expectVariable()
				if err != nil {
					return nil, err
				}
			}
			if err := p.expectKeyword("in"); err != nil {
				return nil, err
			}
			src, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			fl.Clauses = append(fl.Clauses, &ForClause{Var: v, PosVar: posVar, Source: src})
		case p.atKeyword("let"):
			p.advance()
			v, err := p.expectVariable()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(":="); err != nil {
				return nil, err
			}
			e, err := p.parseExprOperand()
			if err != nil {
				return nil, err
			}
			fl.Clauses = append(fl.Clauses, &LetClause{Var: v, Expr: e})
		case p.atKeyword("where"):
			p.advance()
			cond, err := p.parseExprOperand()
			if err != nil {
				return nil, err
			}
			fl.Clauses = append(fl.Clauses, &WhereClause{Cond: cond})
		case p.atKeyword("group"):
			p.advance()
			if err := p.expectKeyword("by"); err != nil {
				return nil, err
			}
			gb := &GroupByClause{}
			for {
				v, err := p.expectVariable()
				if err != nil {
					return nil, err
				}
				if err := p.expectSymbol(":="); err != nil {
					return nil, err
				}
				e, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				gb.Keys = append(gb.Keys, GroupKey{Var: v, Expr: e})
				if p.atSymbol(",") {
					p.advance()
					continue
				}
				break
			}
			if err := p.expectKeyword("with"); err != nil {
				return nil, err
			}
			for {
				v, err := p.expectVariable()
				if err != nil {
					return nil, err
				}
				gb.With = append(gb.With, v)
				if p.atSymbol(",") {
					p.advance()
					continue
				}
				break
			}
			fl.Clauses = append(fl.Clauses, gb)
		case p.atKeyword("order"):
			p.advance()
			if err := p.expectKeyword("by"); err != nil {
				return nil, err
			}
			ob := &OrderByClause{}
			for {
				e, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				term := OrderTerm{Expr: e}
				if p.atKeyword("desc") {
					term.Desc = true
					p.advance()
				} else if p.atKeyword("asc") {
					p.advance()
				}
				ob.Terms = append(ob.Terms, term)
				if p.atSymbol(",") {
					p.advance()
					continue
				}
				break
			}
			fl.Clauses = append(fl.Clauses, ob)
		case p.atKeyword("limit"):
			p.advance()
			lim, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			lc := &LimitClause{Limit: lim}
			if p.atKeyword("offset") {
				p.advance()
				off, err := p.parseOr()
				if err != nil {
					return nil, err
				}
				lc.Offset = off
			}
			fl.Clauses = append(fl.Clauses, lc)
		case p.atKeyword("return"):
			p.advance()
			ret, err := p.parseExprOperand()
			if err != nil {
				return nil, err
			}
			fl.Return = ret
			if len(fl.Clauses) == 0 {
				return nil, p.errf("FLWOR expression needs at least one for/let clause")
			}
			return fl, nil
		default:
			return nil, p.errf("expected FLWOR clause or return")
		}
	}
}

// parseExprOperand parses an expression that may itself be a nested FLWOR,
// quantified or if expression (e.g. the right-hand side of let, the return
// expression, or a where condition containing a quantifier).
func (p *parser) parseExprOperand() (Expr, error) {
	switch {
	case p.atKeyword("for"), p.atKeyword("let"):
		return p.parseFLWOR()
	case p.atKeyword("if"):
		return p.parseIf()
	default:
		return p.parseOr()
	}
}

func (p *parser) parseQuantified() (Expr, error) {
	every := p.atKeyword("every")
	p.advance()
	v, err := p.expectVariable()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	src, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("satisfies"); err != nil {
		return nil, err
	}
	sat, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	return &QuantifiedExpr{Every: every, Var: v, Source: src, Satisfies: sat}, nil
}

func (p *parser) parseIf() (Expr, error) {
	p.advance() // if
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExprOperand()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprOperand()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprOperand()
	if err != nil {
		return nil, err
	}
	return &IfExpr{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		p.advance()
		right, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

var comparisonOps = map[string]BinaryOp{
	"=": OpEq, "!=": OpNeq, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe, "~=": OpFuzzyEq,
}

func (p *parser) parseComparison() (Expr, error) {
	// A quantified expression may appear as a comparison operand, e.g.
	// "where some $e in ... satisfies ... and ...".
	if p.atKeyword("some") || p.atKeyword("every") {
		return p.parseQuantified()
	}
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	hint := ""
	if p.at(tokHint) {
		hint = p.cur().text
		p.advance()
	}
	if p.cur().kind == tokSymbol {
		if op, ok := comparisonOps[p.cur().text]; ok {
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right, Hint: hint}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "+" || p.cur().text == "-") {
		op := OpAdd
		if p.cur().text == "-" {
			op = OpSub
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokSymbol && (p.cur().text == "*" || p.cur().text == "/" || p.cur().text == "%") {
		var op BinaryOp
		switch p.cur().text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		default:
			op = OpMod
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.atKeyword("not") {
		p.advance()
		// not may be written with or without parentheses.
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "not", Operand: operand}, nil
	}
	if p.atSymbol("-") {
		p.advance()
		operand, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Operand: operand}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atSymbol("."):
			p.advance()
			var name string
			if p.at(tokString) {
				name, err = p.expectString()
			} else {
				name, err = p.expectIdent()
			}
			if err != nil {
				return nil, err
			}
			e = &FieldAccess{Base: e, Field: name}
		case p.atSymbol("["):
			p.advance()
			idx, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol("]"); err != nil {
				return nil, err
			}
			e = &IndexAccess{Base: e, Index: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.kind {
	case tokVariable:
		p.advance()
		return &VariableRef{Name: tok.text}, nil
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal: %v", err)
		}
		if n >= -2147483648 && n <= 2147483647 {
			return &Literal{Value: adm.Int32(n)}, nil
		}
		return &Literal{Value: adm.Int64(n)}, nil
	case tokFloat:
		p.advance()
		f, err := strconv.ParseFloat(tok.text, 64)
		if err != nil {
			return nil, p.errf("bad float literal: %v", err)
		}
		return &Literal{Value: adm.Double(f)}, nil
	case tokString:
		p.advance()
		return &Literal{Value: adm.String(tok.text)}, nil
	case tokSymbol:
		switch tok.text {
		case "(":
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "{{":
			p.advance()
			lc := &ListConstructor{Ordered: false}
			for !p.atSymbol("}}") {
				item, err := p.parseExprOperand()
				if err != nil {
					return nil, err
				}
				lc.Items = append(lc.Items, item)
				if p.atSymbol(",") {
					p.advance()
				}
			}
			p.advance()
			return lc, nil
		case "[":
			p.advance()
			lc := &ListConstructor{Ordered: true}
			for !p.atSymbol("]") {
				item, err := p.parseExprOperand()
				if err != nil {
					return nil, err
				}
				lc.Items = append(lc.Items, item)
				if p.atSymbol(",") {
					p.advance()
				}
			}
			p.advance()
			return lc, nil
		case "{":
			return p.parseRecordConstructor()
		}
	case tokIdent:
		word := tok.text
		lower := strings.ToLower(word)
		if lower == "dataset" {
			p.advance()
			first, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.atSymbol(".") {
				p.advance()
				second, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				return &DatasetRef{Dataverse: first, Name: second}, nil
			}
			return &DatasetRef{Name: first}, nil
		}
		if lower == "true" {
			p.advance()
			return &Literal{Value: adm.Boolean(true)}, nil
		}
		if lower == "false" {
			p.advance()
			return &Literal{Value: adm.Boolean(false)}, nil
		}
		if lower == "null" {
			p.advance()
			return &Literal{Value: adm.Null{}}, nil
		}
		if lower == "missing" {
			p.advance()
			return &Literal{Value: adm.Missing{}}, nil
		}
		if clauseKeywords[lower] {
			return nil, p.errf("unexpected keyword %q", word)
		}
		p.advance()
		// Function call?
		if p.atSymbol("(") {
			p.advance()
			call := &CallExpr{Func: word}
			for !p.atSymbol(")") {
				arg, err := p.parseExprOperand()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.atSymbol(",") {
					p.advance()
				}
			}
			p.advance()
			// Constructor calls with a single string literal argument fold
			// into ADM literals right here (datetime("..."), point("...")).
			if len(call.Args) == 1 {
				if lit, ok := call.Args[0].(*Literal); ok {
					if s, ok := lit.Value.(adm.String); ok {
						if v, err := adm.Construct(word, string(s)); err == nil {
							return &Literal{Value: v}, nil
						}
					}
				}
			}
			return call, nil
		}
		return nil, p.errf("unexpected identifier %q", word)
	}
	return nil, p.errf("unexpected token")
}

func (p *parser) parseRecordConstructor() (Expr, error) {
	p.advance() // '{'
	rc := &RecordConstructor{}
	for {
		if p.atSymbol("}") {
			p.advance()
			return rc, nil
		}
		var name string
		var err error
		if p.at(tokString) {
			name, err = p.expectString()
		} else {
			name, err = p.expectIdent()
		}
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(":"); err != nil {
			return nil, err
		}
		val, err := p.parseExprOperand()
		if err != nil {
			return nil, err
		}
		rc.Fields = append(rc.Fields, RecordConstructorField{Name: name, Value: val})
		if p.atSymbol(",") {
			p.advance()
			continue
		}
		if p.atSymbol("}") {
			p.advance()
			return rc, nil
		}
		return nil, p.errf("expected ',' or '}' in record constructor")
	}
}
