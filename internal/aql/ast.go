// Package aql implements the Asterix Query Language (AQL): the lexer, the
// abstract syntax tree, and a recursive-descent parser for the FLWOR-based
// query dialect described in Section 3 of the paper, plus the DDL and DML
// statements from Section 2 (dataverses, types, datasets, indexes, feeds,
// functions, external datasets, insert, delete, load).
package aql

import (
	"fmt"
	"strings"

	"asterixdb/internal/adm"
)

// Statement is any top-level AQL statement.
type Statement interface {
	stmtNode()
	// String renders the statement approximately in AQL syntax (used by
	// error messages, EXPLAIN output and tests).
	String() string
}

// Expr is any AQL expression.
type Expr interface {
	exprNode()
	String() string
}

// ----------------------------------------------------------------------------
// DDL statements
// ----------------------------------------------------------------------------

// DataverseDecl is "use dataverse <name>;".
type DataverseDecl struct{ Name string }

// CreateDataverse is "create dataverse <name> [if not exists];".
type CreateDataverse struct {
	Name        string
	IfNotExists bool
}

// DropDataverse is "drop dataverse <name> [if exists];".
type DropDataverse struct {
	Name     string
	IfExists bool
}

// TypeField is one field in a record type definition.
type TypeField struct {
	Name     string
	Type     TypeExpr
	Optional bool
}

// TypeExpr describes a type reference in DDL: a named type, a nested record,
// or a collection of another type expression.
type TypeExpr struct {
	// Name is the primitive or user type name when the expression is a plain
	// reference (e.g. "int32", "EmploymentType").
	Name string
	// Record is non-nil for an inline nested record definition.
	Record *RecordTypeExpr
	// OrderedItem / UnorderedItem are non-nil for [T] / {{T}} collections.
	OrderedItem   *TypeExpr
	UnorderedItem *TypeExpr
}

// RecordTypeExpr is an inline record type definition body.
type RecordTypeExpr struct {
	Open   bool
	Fields []TypeField
}

// CreateType is "create type <name> as [open|closed] { ... };".
type CreateType struct {
	Name        string
	Definition  RecordTypeExpr
	IfNotExists bool
}

// DropType is "drop type <name> [if exists];".
type DropType struct {
	Name     string
	IfExists bool
}

// CreateDataset is "create [external] dataset <name>(<type>) primary key <field>;"
// or, for external datasets, "... using <adaptor> ((...properties...));".
type CreateDataset struct {
	Name        string
	TypeName    string
	PrimaryKey  []string
	External    bool
	Adaptor     string
	Properties  map[string]string
	IfNotExists bool
}

// DropDataset is "drop dataset <name> [if exists];".
type DropDataset struct {
	Name     string
	IfExists bool
}

// IndexKind enumerates the supported secondary index types.
type IndexKind string

// Index kinds supported by "create index ... type <kind>".
const (
	IndexBTree   IndexKind = "btree"
	IndexRTree   IndexKind = "rtree"
	IndexKeyword IndexKind = "keyword"
	IndexNGram   IndexKind = "ngram"
)

// CreateIndex is "create index <name> on <dataset>(<fields>) [type <kind>];".
type CreateIndex struct {
	Name        string
	Dataset     string
	Fields      []string
	Kind        IndexKind
	GramLength  int // for ngram(k)
	IfNotExists bool
}

// DropIndex is "drop index <dataset>.<name> [if exists];".
type DropIndex struct {
	Dataset  string
	Name     string
	IfExists bool
}

// CreateFunction is "create function <name>(<params>) { <body> };".
type CreateFunction struct {
	Name   string
	Params []string
	Body   Expr
}

// DropFunction is "drop function <name> [if exists];".
type DropFunction struct {
	Name     string
	IfExists bool
}

// CreateFeed is "create feed <name> using <adaptor> ((...));".
type CreateFeed struct {
	Name       string
	Adaptor    string
	Properties map[string]string
	// ApplyFunction optionally names a UDF applied to each record.
	ApplyFunction string
}

// DropFeed is "drop feed <name>;".
type DropFeed struct{ Name string }

// ConnectFeed is "connect feed <feed> to dataset <dataset>;".
type ConnectFeed struct {
	Feed    string
	Dataset string
}

// DisconnectFeed is "disconnect feed <feed> from dataset <dataset>;".
type DisconnectFeed struct {
	Feed    string
	Dataset string
}

// ----------------------------------------------------------------------------
// DML statements
// ----------------------------------------------------------------------------

// InsertStatement is "insert into dataset <name> ( <expr> );".
type InsertStatement struct {
	Dataset string
	Body    Expr
}

// DeleteStatement is "delete $var from dataset <name> [where <expr>];".
type DeleteStatement struct {
	Var     string
	Dataset string
	Where   Expr
}

// LoadStatement is "load dataset <name> using localfs ((...));".
type LoadStatement struct {
	Dataset    string
	Adaptor    string
	Properties map[string]string
}

// SetStatement is the "set <param> <value>;" query prologue (e.g.
// set simfunction "jaccard"; set simthreshold "0.3";).
type SetStatement struct {
	Name  string
	Value string
}

// QueryStatement wraps a bare expression evaluated as a query.
type QueryStatement struct{ Body Expr }

func (*DataverseDecl) stmtNode()   {}
func (*CreateDataverse) stmtNode() {}
func (*DropDataverse) stmtNode()   {}
func (*CreateType) stmtNode()      {}
func (*DropType) stmtNode()        {}
func (*CreateDataset) stmtNode()   {}
func (*DropDataset) stmtNode()     {}
func (*CreateIndex) stmtNode()     {}
func (*DropIndex) stmtNode()       {}
func (*CreateFunction) stmtNode()  {}
func (*DropFunction) stmtNode()    {}
func (*CreateFeed) stmtNode()      {}
func (*DropFeed) stmtNode()        {}
func (*ConnectFeed) stmtNode()     {}
func (*DisconnectFeed) stmtNode()  {}
func (*InsertStatement) stmtNode() {}
func (*DeleteStatement) stmtNode() {}
func (*LoadStatement) stmtNode()   {}
func (*SetStatement) stmtNode()    {}
func (*QueryStatement) stmtNode()  {}

func (s *DataverseDecl) String() string   { return "use dataverse " + s.Name }
func (s *CreateDataverse) String() string { return "create dataverse " + s.Name }
func (s *DropDataverse) String() string   { return "drop dataverse " + s.Name }
func (s *CreateType) String() string      { return "create type " + s.Name }
func (s *DropType) String() string        { return "drop type " + s.Name }
func (s *CreateDataset) String() string {
	kind := "dataset"
	if s.External {
		kind = "external dataset"
	}
	return fmt.Sprintf("create %s %s(%s)", kind, s.Name, s.TypeName)
}
func (s *DropDataset) String() string { return "drop dataset " + s.Name }
func (s *CreateIndex) String() string {
	return fmt.Sprintf("create index %s on %s(%s) type %s", s.Name, s.Dataset, strings.Join(s.Fields, ","), s.Kind)
}
func (s *DropIndex) String() string      { return "drop index " + s.Dataset + "." + s.Name }
func (s *CreateFunction) String() string { return "create function " + s.Name }
func (s *DropFunction) String() string   { return "drop function " + s.Name }
func (s *CreateFeed) String() string     { return "create feed " + s.Name }
func (s *DropFeed) String() string       { return "drop feed " + s.Name }
func (s *ConnectFeed) String() string    { return "connect feed " + s.Feed + " to dataset " + s.Dataset }
func (s *DisconnectFeed) String() string {
	return "disconnect feed " + s.Feed + " from dataset " + s.Dataset
}
func (s *InsertStatement) String() string { return "insert into dataset " + s.Dataset }
func (s *DeleteStatement) String() string { return "delete $" + s.Var + " from dataset " + s.Dataset }
func (s *LoadStatement) String() string   { return "load dataset " + s.Dataset }
func (s *SetStatement) String() string    { return "set " + s.Name + " " + quoteString(s.Value) }
func (s *QueryStatement) String() string  { return s.Body.String() }

func quoteString(s string) string { return `"` + s + `"` }

// ----------------------------------------------------------------------------
// Expressions
// ----------------------------------------------------------------------------

// Literal is a constant ADM value appearing in the query text.
type Literal struct{ Value adm.Value }

// VariableRef is a reference to a bound variable, e.g. $user.
type VariableRef struct{ Name string }

// FieldAccess is <expr>.<field>.
type FieldAccess struct {
	Base  Expr
	Field string
}

// IndexAccess is <expr>[<index expr>].
type IndexAccess struct {
	Base  Expr
	Index Expr
}

// DatasetRef is "dataset <name>" (optionally "dataset Dataverse.Name").
type DatasetRef struct {
	Dataverse string
	Name      string
}

// CallExpr is a function call, either built-in or user-defined.
type CallExpr struct {
	Func string
	Args []Expr
}

// RecordConstructor is { "a": <expr>, ... }.
type RecordConstructor struct {
	Fields []RecordConstructorField
}

// RecordConstructorField is a single field of a record constructor.
type RecordConstructorField struct {
	Name  string
	Value Expr
}

// ListConstructor is [ ... ] (ordered) or {{ ... }} (unordered).
type ListConstructor struct {
	Ordered bool
	Items   []Expr
}

// BinaryOp enumerates binary operators.
type BinaryOp string

// Binary operators.
const (
	OpAnd BinaryOp = "and"
	OpOr  BinaryOp = "or"
	OpEq  BinaryOp = "="
	OpNeq BinaryOp = "!="
	OpLt  BinaryOp = "<"
	OpLe  BinaryOp = "<="
	OpGt  BinaryOp = ">"
	OpGe  BinaryOp = ">="
	OpAdd BinaryOp = "+"
	OpSub BinaryOp = "-"
	OpMul BinaryOp = "*"
	OpDiv BinaryOp = "/"
	OpMod BinaryOp = "%"
	// OpFuzzyEq is the ~= fuzzy-match operator whose semantics are set by the
	// simfunction / simthreshold prologue parameters.
	OpFuzzyEq BinaryOp = "~="
)

// BinaryExpr is <left> <op> <right>. Hint carries an optimizer hint comment
// attached to the operator (e.g. /*+ indexnl */ on a join predicate).
type BinaryExpr struct {
	Op    BinaryOp
	Left  Expr
	Right Expr
	Hint  string
}

// UnaryExpr is "not <expr>" or "-<expr>".
type UnaryExpr struct {
	Op      string // "not" or "-"
	Operand Expr
}

// QuantifiedExpr is "some|every $var in <source> satisfies <predicate>".
type QuantifiedExpr struct {
	Every     bool
	Var       string
	Source    Expr
	Satisfies Expr
}

// IfExpr is "if (<cond>) then <then> else <else>".
type IfExpr struct {
	Cond Expr
	Then Expr
	Else Expr
}

// FLWORClause is one clause of a FLWOR expression.
type FLWORClause interface{ clauseNode() }

// ForClause is "for $var [at $pos] in <source>".
type ForClause struct {
	Var    string
	PosVar string // positional variable, "" when absent
	Source Expr
}

// LetClause is "let $var := <expr>".
type LetClause struct {
	Var  string
	Expr Expr
}

// WhereClause is "where <expr>".
type WhereClause struct{ Cond Expr }

// GroupByClause is "group by $key := <expr>, ... with $var, ...".
type GroupByClause struct {
	Keys []GroupKey
	With []string
}

// GroupKey is one grouping key binding.
type GroupKey struct {
	Var  string
	Expr Expr
}

// OrderByClause is "order by <expr> [asc|desc], ...".
type OrderByClause struct{ Terms []OrderTerm }

// OrderTerm is a single ordering expression.
type OrderTerm struct {
	Expr Expr
	Desc bool
}

// LimitClause is "limit <n> [offset <m>]".
type LimitClause struct {
	Limit  Expr
	Offset Expr
}

func (*ForClause) clauseNode()     {}
func (*LetClause) clauseNode()     {}
func (*WhereClause) clauseNode()   {}
func (*GroupByClause) clauseNode() {}
func (*OrderByClause) clauseNode() {}
func (*LimitClause) clauseNode()   {}

// FLWORExpr is a full for-let-where-group by-order by-limit-return expression.
type FLWORExpr struct {
	Clauses []FLWORClause
	Return  Expr
}

func (*Literal) exprNode()           {}
func (*VariableRef) exprNode()       {}
func (*FieldAccess) exprNode()       {}
func (*IndexAccess) exprNode()       {}
func (*DatasetRef) exprNode()        {}
func (*CallExpr) exprNode()          {}
func (*RecordConstructor) exprNode() {}
func (*ListConstructor) exprNode()   {}
func (*BinaryExpr) exprNode()        {}
func (*UnaryExpr) exprNode()         {}
func (*QuantifiedExpr) exprNode()    {}
func (*IfExpr) exprNode()            {}
func (*FLWORExpr) exprNode()         {}

func (e *Literal) String() string     { return e.Value.String() }
func (e *VariableRef) String() string { return "$" + e.Name }
func (e *FieldAccess) String() string { return e.Base.String() + "." + e.Field }
func (e *IndexAccess) String() string { return e.Base.String() + "[" + e.Index.String() + "]" }
func (e *DatasetRef) String() string {
	if e.Dataverse != "" {
		return "dataset " + e.Dataverse + "." + e.Name
	}
	return "dataset " + e.Name
}
func (e *CallExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Func + "(" + strings.Join(args, ", ") + ")"
}
func (e *RecordConstructor) String() string {
	parts := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		parts[i] = `"` + f.Name + `": ` + f.Value.String()
	}
	return "{ " + strings.Join(parts, ", ") + " }"
}
func (e *ListConstructor) String() string {
	parts := make([]string, len(e.Items))
	for i, it := range e.Items {
		parts[i] = it.String()
	}
	if e.Ordered {
		return "[ " + strings.Join(parts, ", ") + " ]"
	}
	return "{{ " + strings.Join(parts, ", ") + " }}"
}
func (e *BinaryExpr) String() string {
	hint := ""
	if e.Hint != "" {
		hint = " /*+ " + e.Hint + " */"
	}
	return "(" + e.Left.String() + hint + " " + string(e.Op) + " " + e.Right.String() + ")"
}
func (e *UnaryExpr) String() string {
	if e.Op == "not" {
		return "not(" + e.Operand.String() + ")"
	}
	return e.Op + e.Operand.String()
}
func (e *QuantifiedExpr) String() string {
	q := "some"
	if e.Every {
		q = "every"
	}
	return q + " $" + e.Var + " in " + e.Source.String() + " satisfies " + e.Satisfies.String()
}
func (e *IfExpr) String() string {
	return "if (" + e.Cond.String() + ") then " + e.Then.String() + " else " + e.Else.String()
}
func (e *FLWORExpr) String() string {
	var sb strings.Builder
	for _, c := range e.Clauses {
		switch x := c.(type) {
		case *ForClause:
			sb.WriteString("for $" + x.Var)
			if x.PosVar != "" {
				sb.WriteString(" at $" + x.PosVar)
			}
			sb.WriteString(" in " + x.Source.String() + " ")
		case *LetClause:
			sb.WriteString("let $" + x.Var + " := " + x.Expr.String() + " ")
		case *WhereClause:
			sb.WriteString("where " + x.Cond.String() + " ")
		case *GroupByClause:
			sb.WriteString("group by ")
			for i, k := range x.Keys {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString("$" + k.Var + " := " + k.Expr.String())
			}
			sb.WriteString(" with " + "$" + strings.Join(x.With, ", $") + " ")
		case *OrderByClause:
			sb.WriteString("order by ")
			for i, t := range x.Terms {
				if i > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(t.Expr.String())
				if t.Desc {
					sb.WriteString(" desc")
				}
			}
			sb.WriteString(" ")
		case *LimitClause:
			sb.WriteString("limit " + x.Limit.String())
			if x.Offset != nil {
				sb.WriteString(" offset " + x.Offset.String())
			}
			sb.WriteString(" ")
		}
	}
	sb.WriteString("return " + e.Return.String())
	return sb.String()
}
