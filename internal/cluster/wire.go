// Package cluster is the multi-process runtime of the paper's architecture:
// a Cluster Controller (Controller) that owns the catalog, compiles AQL into
// Hyracks jobs and coordinates their execution, and Node Controllers (Node)
// that each own a subset of the storage partitions and run the operator
// instances placed on them. Frames cross node boundaries over TCP through
// the length-prefixed wire protocol in this file; same-node edges keep using
// the in-process channel connectors.
package cluster

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"asterixdb"
	"asterixdb/internal/adm"
	"asterixdb/internal/hyracks"
)

// Record kinds on a data-plane connection. An edge connection (NC -> NC)
// carries recFrame (a=target consumer instance) and recEOS (one per finished
// producer instance). A result connection (NC -> CC) carries recFrame
// (a=sink operator index, b=sink instance partition), optionally recProfile
// (payload is the node's JSON JobProfile, sent before the completion record
// when the job ran with profiling), and recDone (payload is a JSON
// wireError, empty on success).
const (
	recFrame   = byte(1)
	recEOS     = byte(2)
	recDone    = byte(3)
	recProfile = byte(4)
)

// maxWirePayload bounds a single record's payload so a corrupt or hostile
// length prefix cannot drive an arbitrarily large allocation.
const maxWirePayload = 64 << 20

// corruptf mints the typed error every wire-decode failure returns: corrupt
// or truncated input is a protocol-level invalid-data condition, never a
// panic or a silent short read.
func corruptf(format string, args ...any) error {
	return &asterixdb.Error{Code: asterixdb.CodeInvalid, Message: fmt.Sprintf(format, args...)}
}

// encodeTuples appends the wire encoding of a frame's tuples to dst:
// uvarint tuple count, then per tuple a uvarint column count and per column
// a presence byte (0 = nil column) followed by the adm value encoding.
func encodeTuples(dst []byte, tuples []hyracks.Tuple) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(tuples)))
	for _, t := range tuples {
		dst = binary.AppendUvarint(dst, uint64(len(t)))
		for _, col := range t {
			if col == nil {
				dst = append(dst, 0)
				continue
			}
			dst = append(dst, 1)
			var err error
			dst, err = adm.EncodeValue(dst, col)
			if err != nil {
				return nil, err
			}
		}
	}
	return dst, nil
}

// decodeTuples decodes a recFrame payload. Corrupt or truncated input
// returns a typed error; it never panics and never fabricates partial
// tuples.
func decodeTuples(payload []byte) ([]hyracks.Tuple, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 {
		return nil, corruptf("cluster: frame payload missing tuple count")
	}
	payload = payload[used:]
	// Every tuple costs at least one payload byte (its column-count varint),
	// so a count beyond the remaining payload is corrupt — checked before the
	// allocation it would size.
	if n > uint64(len(payload)) {
		return nil, corruptf("cluster: frame tuple count %d exceeds payload", n)
	}
	tuples := make([]hyracks.Tuple, 0, n)
	for i := uint64(0); i < n; i++ {
		ncols, used := binary.Uvarint(payload)
		if used <= 0 {
			return nil, corruptf("cluster: frame tuple %d missing column count", i)
		}
		payload = payload[used:]
		// Each column costs at least its presence byte; bound the allocation
		// by the bytes actually present.
		if ncols > uint64(len(payload)) {
			return nil, corruptf("cluster: frame tuple %d column count %d exceeds payload", i, ncols)
		}
		t := make(hyracks.Tuple, ncols)
		for c := range t {
			if len(payload) == 0 {
				return nil, corruptf("cluster: frame tuple %d truncated at column %d", i, c)
			}
			presence := payload[0]
			payload = payload[1:]
			switch presence {
			case 0:
				// nil column
			case 1:
				v, used, err := adm.DecodeValue(payload)
				if err != nil {
					return nil, corruptf("cluster: frame tuple %d column %d: %v", i, c, err)
				}
				t[c] = v
				payload = payload[used:]
			default:
				return nil, corruptf("cluster: frame tuple %d column %d has presence byte %d", i, c, presence)
			}
		}
		tuples = append(tuples, t)
	}
	if len(payload) != 0 {
		return nil, corruptf("cluster: frame payload has %d trailing bytes", len(payload))
	}
	return tuples, nil
}

// writeRecord assembles one data-plane record — kind byte, two uvarint
// header fields, uvarint payload length, payload — into a single buffer and
// writes it with one Write call, so records from concurrent producers
// serialized by the connection mutex never interleave.
func writeRecord(w io.Writer, kind byte, a, b uint64, payload []byte) error {
	buf := make([]byte, 0, 1+3*binary.MaxVarintLen64+len(payload))
	buf = append(buf, kind)
	buf = binary.AppendUvarint(buf, a)
	buf = binary.AppendUvarint(buf, b)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	return err
}

// readRecord reads one data-plane record. Every read goes through
// io.ReadFull, so a slow peer can never cause a silent short read; a corrupt
// length prefix returns a typed error before any allocation it would size.
func readRecord(br *bufio.Reader) (kind byte, a, b uint64, payload []byte, err error) {
	var kb [1]byte
	if _, err = io.ReadFull(br, kb[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	kind = kb[0]
	if kind != recFrame && kind != recEOS && kind != recDone && kind != recProfile {
		return 0, 0, 0, nil, corruptf("cluster: unknown record kind %d", kind)
	}
	if a, err = binary.ReadUvarint(br); err != nil {
		return 0, 0, 0, nil, err
	}
	if b, err = binary.ReadUvarint(br); err != nil {
		return 0, 0, 0, nil, err
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	if n > maxWirePayload {
		return 0, 0, 0, nil, corruptf("cluster: record payload length %d exceeds limit", n)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err = io.ReadFull(br, payload); err != nil {
			return 0, 0, 0, nil, err
		}
	}
	return kind, a, b, payload, nil
}

// newDataReader wraps an inbound data-plane connection for record reads.
func newDataReader(r io.Reader) *bufio.Reader {
	return bufio.NewReaderSize(r, 64<<10)
}

// mustJSON marshals a value that cannot fail (plain structs of strings).
func mustJSON(v any) []byte {
	buf, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return buf
}

// dataHandshake is the first line of a data-plane connection, identifying
// which job and edge (or result stream) the binary records that follow
// belong to.
type dataHandshake struct {
	Job  string `json:"job"`
	From string `json:"from"`
	// Edge is the post-splice edge index for NC->NC connections; -1 marks a
	// result connection to the coordinator.
	Edge int `json:"edge"`
}

// writeHandshake sends the handshake as one newline-terminated JSON line.
func writeHandshake(w io.Writer, h dataHandshake) error {
	buf, err := json.Marshal(h)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// readHandshake reads the handshake line (bounded, via the bufio reader).
func readHandshake(br *bufio.Reader) (dataHandshake, error) {
	line, err := br.ReadBytes('\n')
	if err != nil {
		return dataHandshake{}, err
	}
	var h dataHandshake
	if err := json.Unmarshal(line, &h); err != nil {
		return dataHandshake{}, corruptf("cluster: bad data handshake: %v", err)
	}
	return h, nil
}
