package cluster

// Placement maps every operator instance of a job onto a node, identically
// on every node of the cluster: instance p of any operator runs on node
// p % N over the SORTED node list. The rule has two load-bearing
// consequences:
//
//   - Storage alignment. A node with sorted-rank k owns exactly the storage
//     partitions p with p % N == k (Node.ownsPartition), and a scan or
//     secondary-index operator's instance p reads storage partition p — so
//     every data-access instance lands on the node that physically holds its
//     partition, and no base data ever crosses the wire unshuffled.
//
//   - Fusion stays legal. Operators joined by a OneToOne connector have
//     equal parallelism, so instance p of both sides maps to the same node;
//     one-to-one edges therefore never cross nodes and FuseJob's collapsed
//     chains execute unchanged. Only shuffle/merge/replicate edges go remote.
//
// Parallelism-1 operators (global aggregates, the final merge/sort, metadata
// scans) pin to node 0 (0 % N).
type placement struct {
	nodes int
}

// nodeOf returns the sorted-rank of the node running instance p.
func (pl placement) nodeOf(p int) int { return p % pl.nodes }

// hasInstance reports whether node rank t runs any instance of an operator
// with the given parallelism: instance p = t exists iff t < par.
func (pl placement) hasInstance(t, par int) bool { return t < par }
