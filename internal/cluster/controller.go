package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"asterixdb"
	"asterixdb/internal/aql"
	"asterixdb/internal/hyracks"
	"asterixdb/internal/metrics"
)

// ControllerConfig configures the cluster controller process.
type ControllerConfig struct {
	// CtrlAddr is the control-plane listen address node controllers dial.
	CtrlAddr string
	// DataAddr is the data-plane listen address result streams dial.
	DataAddr string
	// ExpectNodes is the cluster size; queries are refused until this many
	// nodes have registered, and refused again if any of them dies.
	ExpectNodes int
	// HeartbeatInterval is the ping cadence to each node (default 2s).
	HeartbeatInterval time.Duration
	// HeartbeatTimeout bounds silence on a node's control connection before
	// the node is declared dead (default 15s).
	HeartbeatTimeout time.Duration
	// RPCTimeout bounds every statement/job round trip to a node and the
	// post-cancel drain of a failed job's result streams (default 30s).
	RPCTimeout time.Duration
	// WriteTimeout bounds every control-plane write (default 10s).
	WriteTimeout time.Duration
}

// Controller is the cluster controller: it owns the catalog (a local
// instance that never stores base data), compiles and validates every
// request, fans statements and jobs out to the node controllers, and gathers
// result frames into cursors. It implements the server.Engine surface, so
// the HTTP API fronts a cluster exactly as it fronts a single process.
type Controller struct {
	inst *asterixdb.Instance
	cfg  ControllerConfig

	ctrlLn net.Listener
	dataLn net.Listener

	formed chan struct{} // closed once ExpectNodes nodes registered

	mu      sync.Mutex
	nodes   map[string]*ncPeer
	order   []nodeInfo // sorted; fixed at formation
	jobs    map[string]*gatherJob
	penders map[string]chan ctrlMsg // rpc key -> reply

	nextID     int64
	nodeDeaths atomic.Int64 // nodes declared dead since startup (metrics)
	closed     chan struct{}
	once       sync.Once
	wg         sync.WaitGroup
}

// ncPeer is the controller's view of one registered node.
type ncPeer struct {
	name     string
	dataAddr string
	conn     *ctrlConn
	dead     chan struct{}
	deadOnce sync.Once
}

func (p *ncPeer) alive() bool {
	select {
	case <-p.dead:
		return false
	default:
		return true
	}
}

// NewController opens the catalog instance's listeners and starts serving
// registrations. inst must have been opened with DistributedNode set and an
// OwnsPartition that owns nothing — the controller's instance is the catalog
// replica and compile authority, never a data host.
func NewController(inst *asterixdb.Instance, cfg ControllerConfig) (*Controller, error) {
	if cfg.ExpectNodes <= 0 {
		return nil, &asterixdb.Error{Code: asterixdb.CodeInvalid, Message: "cluster: controller needs ExpectNodes > 0"}
	}
	if cfg.CtrlAddr == "" {
		cfg.CtrlAddr = "127.0.0.1:0"
	}
	if cfg.DataAddr == "" {
		cfg.DataAddr = "127.0.0.1:0"
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 2 * time.Second
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 15 * time.Second
	}
	if cfg.RPCTimeout <= 0 {
		cfg.RPCTimeout = 30 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	ctrlLn, err := net.Listen("tcp", cfg.CtrlAddr)
	if err != nil {
		return nil, err
	}
	dataLn, err := net.Listen("tcp", cfg.DataAddr)
	if err != nil {
		ctrlLn.Close()
		return nil, err
	}
	c := &Controller{
		inst:    inst,
		cfg:     cfg,
		ctrlLn:  ctrlLn,
		dataLn:  dataLn,
		formed:  make(chan struct{}),
		nodes:   map[string]*ncPeer{},
		jobs:    map[string]*gatherJob{},
		penders: map[string]chan ctrlMsg{},
		closed:  make(chan struct{}),
	}
	go c.acceptCtrl()
	go c.acceptData()
	go c.heartbeatLoop()
	return c, nil
}

// CtrlAddr returns the bound control-plane address (for host:0 configs).
func (c *Controller) CtrlAddr() string { return c.ctrlLn.Addr().String() }

// DataAddr returns the bound data-plane address.
func (c *Controller) DataAddr() string { return c.dataLn.Addr().String() }

// WaitReady blocks until the cluster has formed or the timeout elapses.
func (c *Controller) WaitReady(timeout time.Duration) error {
	select {
	case <-c.formed:
		return nil
	case <-c.closed:
		return unavailablef("cluster: controller closed before formation")
	case <-time.After(timeout):
		return unavailablef("cluster: %d nodes did not register within %v", c.cfg.ExpectNodes, timeout)
	}
}

// Close shuts the controller down: listeners and node connections close, and
// every in-flight job fails over to a typed unavailable error.
func (c *Controller) Close() error {
	c.once.Do(func() {
		close(c.closed)
		c.ctrlLn.Close()
		c.dataLn.Close()
		c.mu.Lock()
		peers := make([]*ncPeer, 0, len(c.nodes))
		for _, p := range c.nodes {
			peers = append(peers, p)
		}
		c.mu.Unlock()
		for _, p := range peers {
			p.conn.Close()
		}
		c.failJobs(nil, unavailablef("cluster: controller shutting down"))
	})
	c.wg.Wait()
	return nil
}

// Health reports nil once the cluster has formed; the controller stays
// healthy through node deaths (queries fail typed instead) so that
// monitoring can distinguish "CC down" from "cluster degraded".
func (c *Controller) Health() error {
	select {
	case <-c.formed:
		return nil
	default:
		return unavailablef("cluster: waiting for %d node(s) to register", c.missingNodes())
	}
}

func (c *Controller) missingNodes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.cfg.ExpectNodes - len(c.nodes)
	if n < 0 {
		n = 0
	}
	return n
}

// RegisterMetrics adds the controller's cluster-state gauges — roster,
// formation, in-flight gathers, node deaths — plus the catalog instance's
// engine gauges to r; the HTTP server calls it when building /metrics.
func (c *Controller) RegisterMetrics(r *metrics.Registry) {
	asterixdb.RegisterInstanceMetrics(r, func() *asterixdb.Instance { return c.inst })
	r.GaugeFunc("asterix_cluster_nodes_expected",
		"Configured cluster size.",
		func() float64 { return float64(c.cfg.ExpectNodes) })
	r.GaugeFunc("asterix_cluster_nodes_alive",
		"Node controllers currently registered and responding.",
		func() float64 { return float64(len(c.alivePeers())) })
	r.GaugeFunc("asterix_cluster_formed",
		"1 once every expected node has registered.",
		func() float64 {
			select {
			case <-c.formed:
				return 1
			default:
				return 0
			}
		})
	r.GaugeFunc("asterix_cluster_jobs_active",
		"Distributed jobs currently gathering results.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.jobs))
		})
	r.CounterFunc("asterix_cluster_node_deaths_total",
		"Nodes declared dead since controller start.",
		func() float64 { return float64(c.nodeDeaths.Load()) })
}

// SpillDir exposes the catalog instance's spill directory (server.Engine).
func (c *Controller) SpillDir() string { return c.inst.SpillDir() }

// MemoryBudget exposes the catalog instance's budget (server.Engine).
func (c *Controller) MemoryBudget() int64 { return c.inst.MemoryBudget() }

// Explain compiles on the controller's catalog replica (server.Engine).
func (c *Controller) Explain(src string) (string, error) { return c.inst.Explain(src) }

// ----------------------------------------------------------------------------
// cluster formation and liveness
// ----------------------------------------------------------------------------

func (c *Controller) acceptCtrl() {
	for {
		conn, err := c.ctrlLn.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleCtrl(conn)
		}()
	}
}

// handleCtrl serves one node's control connection: a register message admits
// the node, then the read loop dispatches its acks and pongs until the
// connection dies — at which point the node is declared dead and every job
// it participates in fails.
func (c *Controller) handleCtrl(conn net.Conn) {
	cc := newCtrlConn(conn, c.cfg.WriteTimeout)
	m, err := cc.read(c.cfg.HeartbeatTimeout)
	if err != nil || m.Type != msgRegister || m.Node == "" || m.DataAddr == "" {
		cc.Close()
		return
	}
	peer := &ncPeer{name: m.Node, dataAddr: m.DataAddr, conn: cc, dead: make(chan struct{})}
	if err := c.admit(peer, m.Partitions); err != nil {
		cc.Close()
		return
	}
	for {
		m, err := cc.read(c.cfg.HeartbeatTimeout)
		if err != nil {
			break
		}
		switch m.Type {
		case msgPong:
			// The read deadline reset is the liveness signal.
		case msgStmtAck, msgJobAck:
			c.mu.Lock()
			ch := c.penders[rpcKey(m.ID, peer.name)]
			c.mu.Unlock()
			if ch != nil {
				select {
				case ch <- m:
				default:
				}
			}
		}
	}
	c.nodeDied(peer)
}

// admit registers a node; the cluster forms (and the sorted order freezes)
// when the expected count is reached.
func (c *Controller) admit(peer *ncPeer, partitions int) error {
	c.mu.Lock()
	if old, ok := c.nodes[peer.name]; ok && old.alive() {
		c.mu.Unlock()
		return fmt.Errorf("cluster: duplicate node name %q", peer.name)
	}
	if len(c.order) > 0 {
		// Post-formation re-registration: accept only a known name at the
		// same data address, so a restarted node can rejoin its slot.
		found := false
		for i := range c.order {
			if c.order[i].Name == peer.name {
				c.order[i].DataAddr = peer.dataAddr
				found = true
			}
		}
		if !found {
			c.mu.Unlock()
			return fmt.Errorf("cluster: node %q not part of the formed cluster", peer.name)
		}
	}
	c.nodes[peer.name] = peer
	formed := len(c.order) == 0 && len(c.nodes) >= c.cfg.ExpectNodes
	if formed {
		c.order = make([]nodeInfo, 0, len(c.nodes))
		for _, p := range c.nodes {
			c.order = append(c.order, nodeInfo{Name: p.name, DataAddr: p.dataAddr})
		}
		sort.Slice(c.order, func(i, j int) bool { return c.order[i].Name < c.order[j].Name })
	}
	order := append([]nodeInfo(nil), c.order...)
	rejoining := !formed && len(order) > 0
	peers := c.alivePeersLocked()
	c.mu.Unlock()

	if formed {
		ready := ctrlMsg{Type: msgReady, Nodes: order, DataAddr: c.DataAddr()}
		for _, p := range peers {
			if err := p.conn.write(ready); err != nil {
				c.nodeDied(p)
			}
		}
		close(c.formed)
	} else if rejoining {
		// Rejoin of a formed cluster: hand the (updated) roster to the node.
		if err := peer.conn.write(ctrlMsg{Type: msgReady, Nodes: order, DataAddr: c.DataAddr()}); err != nil {
			c.nodeDied(peer)
		}
	}
	return nil
}

func (c *Controller) alivePeersLocked() []*ncPeer {
	peers := make([]*ncPeer, 0, len(c.nodes))
	for _, p := range c.nodes {
		if p.alive() {
			peers = append(peers, p)
		}
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].name < peers[j].name })
	return peers
}

func (c *Controller) alivePeers() []*ncPeer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alivePeersLocked()
}

// nodeDied marks a node dead (once) and fails every job it participates in
// with a typed unavailable error, cancelling the survivors' slices.
func (c *Controller) nodeDied(peer *ncPeer) {
	peer.deadOnce.Do(func() {
		close(peer.dead)
		peer.conn.Close()
		c.nodeDeaths.Add(1)
		c.failJobs(peer, unavailablef("cluster: node %s died mid-query", peer.name))
	})
}

// failJobs fails every unfinished job (peer == nil) or every unfinished job
// the given peer had not yet completed its slice of.
func (c *Controller) failJobs(peer *ncPeer, err error) {
	c.mu.Lock()
	jobs := make([]*gatherJob, 0, len(c.jobs))
	for _, g := range c.jobs {
		jobs = append(jobs, g)
	}
	c.mu.Unlock()
	for _, g := range jobs {
		if peer != nil && g.nodeFinished(peer.name) {
			continue
		}
		c.abortJob(g, err)
		if peer != nil {
			// The dead node will never send its completion record; mark its
			// slot done so the gather finishes as soon as the survivors
			// acknowledge the cancellation instead of waiting out the backstop.
			c.nodeDone(g, peer.name, err)
		}
	}
}

func (c *Controller) heartbeatLoop() {
	ticker := time.NewTicker(c.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-ticker.C:
		}
		for _, p := range c.alivePeers() {
			if err := p.conn.write(ctrlMsg{Type: msgPing}); err != nil {
				c.nodeDied(p)
			}
		}
	}
}

// requireCluster returns the full live roster or a typed unavailable error:
// every statement and query needs all ExpectNodes nodes, since each owns an
// exclusive slice of the data.
func (c *Controller) requireCluster() ([]*ncPeer, error) {
	select {
	case <-c.formed:
	default:
		return nil, unavailablef("cluster: not formed yet (%d node(s) missing)", c.missingNodes())
	}
	peers := c.alivePeers()
	if len(peers) < c.cfg.ExpectNodes {
		return nil, unavailablef("cluster: %d of %d nodes are down", c.cfg.ExpectNodes-len(peers), c.cfg.ExpectNodes)
	}
	return peers, nil
}

// ----------------------------------------------------------------------------
// RPC plumbing
// ----------------------------------------------------------------------------

func rpcKey(id, node string) string { return id + "|" + node }

func (c *Controller) newID(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, atomic.AddInt64(&c.nextID, 1))
}

// rpc sends one message to one node and waits for its ack, bounded by the
// node's liveness and the RPC deadline.
func (c *Controller) rpc(ctx context.Context, p *ncPeer, m ctrlMsg) (ctrlMsg, error) {
	key := rpcKey(m.ID, p.name)
	ch := make(chan ctrlMsg, 1)
	c.mu.Lock()
	c.penders[key] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.penders, key)
		c.mu.Unlock()
	}()
	if err := p.conn.write(m); err != nil {
		c.nodeDied(p)
		return ctrlMsg{}, unavailablef("cluster: node %s unreachable: %v", p.name, err)
	}
	timer := time.NewTimer(c.cfg.RPCTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r, nil
	case <-p.dead:
		return ctrlMsg{}, unavailablef("cluster: node %s died during request", p.name)
	case <-timer.C:
		c.nodeDied(p)
		return ctrlMsg{}, unavailablef("cluster: node %s did not answer within %v", p.name, c.cfg.RPCTimeout)
	case <-ctx.Done():
		return ctrlMsg{}, ctx.Err()
	case <-c.closed:
		return ctrlMsg{}, unavailablef("cluster: controller shutting down")
	}
}

// broadcast runs the same RPC against every peer concurrently and returns
// the acks (indexed like peers) and the first error.
func (c *Controller) broadcast(ctx context.Context, peers []*ncPeer, m ctrlMsg) ([]ctrlMsg, error) {
	acks := make([]ctrlMsg, len(peers))
	errs := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p *ncPeer) {
			defer wg.Done()
			acks[i], errs[i] = c.rpc(ctx, p, m)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return acks, err
		}
	}
	for i, ack := range acks {
		if err := ack.Err.Err(); err != nil {
			return acks, fmt.Errorf("cluster: node %s: %w", peers[i].name, err)
		}
	}
	return acks, nil
}

// ----------------------------------------------------------------------------
// server.Engine: statements
// ----------------------------------------------------------------------------

// ExecuteContext runs AQL statements cluster-wide: the controller's catalog
// replica applies them first (so malformed requests are rejected before any
// node sees them), then every node executes the same source against its
// partition slice. DML counts sum across nodes; everything else (DDL,
// queries through the statement path) reports the controller's local result.
func (c *Controller) ExecuteContext(ctx context.Context, src string) (*asterixdb.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	peers, err := c.requireCluster()
	if err != nil {
		return nil, err
	}
	res, err := c.inst.ExecuteContext(ctx, src)
	if err != nil {
		return nil, err
	}
	acks, err := c.broadcast(ctx, peers, ctrlMsg{Type: msgStmt, ID: c.newID("s"), Src: src})
	if err != nil {
		return nil, err
	}
	switch res.Kind {
	case "insert", "delete", "load":
		// Each node stored only the records of the partitions it owns (and
		// the controller's catalog replica stored none), so the cluster-wide
		// count is the sum of the node counts.
		total := 0
		for _, ack := range acks {
			total += ack.Count
		}
		res.Count = total
	}
	return res, nil
}

// ----------------------------------------------------------------------------
// server.Engine: streaming queries
// ----------------------------------------------------------------------------

// QueryStream plans and runs a query across the cluster, returning a cursor
// over the gathered result stream. Leading statements execute through the
// statement path first; the final query compiles on the controller (for
// validation and typed compile errors), then ships as source to every node,
// which each execute their slice of the job and stream sink frames back.
// Queries the planner cannot compile (bare expressions, interpreter-only
// shapes) fall back to local evaluation on the controller — legal because
// such queries never read base data (readDataset is rejected on distributed
// catalogs).
func (c *Controller) QueryStream(ctx context.Context, src string) (*asterixdb.Cursor, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	stmts, err := aql.Parse(src)
	if err != nil {
		return nil, &asterixdb.Error{Code: asterixdb.CodeSyntax, Message: err.Error()}
	}
	if len(stmts) == 0 {
		return asterixdb.NewValuesCursor(ctx, nil), nil
	}
	if _, isQuery := stmts[len(stmts)-1].(*aql.QueryStatement); !isQuery {
		res, err := c.ExecuteContext(ctx, src)
		if err != nil {
			return nil, err
		}
		return asterixdb.NewValuesCursor(ctx, res.Values), nil
	}
	peers, err := c.requireCluster()
	if err != nil {
		return nil, err
	}
	// Execute the leading statements on the catalog replica and compile the
	// trailing query for validation; the nodes will repeat both steps against
	// the same source, reaching the identical catalog state and plan.
	q, err := c.inst.ExecuteForQuery(ctx, src)
	if err != nil {
		return nil, err
	}
	if _, err := c.inst.CompileQueryJob(q); err != nil {
		if len(stmts) == 1 {
			// A single uncompilable statement is an expression-only query
			// (no base data access is possible — the distributed catalog
			// rejects readDataset) and evaluates locally.
			return c.inst.QueryStream(ctx, src)
		}
		return nil, err
	}
	// The nodes replay the full source — leading statements included — inside
	// the job message, which keeps statement + query requests atomic per node.
	return c.runDistributedQuery(ctx, peers, src)
}

// runDistributedQuery drives one job through its prepare / launch / gather
// phases. When the caller's context requests profiling, the flag rides the
// job message and each node ships its slice's profile back with the result
// stream; the gather merges them into one cluster-wide profile.
func (c *Controller) runDistributedQuery(ctx context.Context, peers []*ncPeer, src string) (*asterixdb.Cursor, error) {
	id := c.newID("j")
	profile := asterixdb.ProfilingRequested(ctx)
	cur, push, finish := hyracks.NewGatherCursor()
	g := newGatherJob(id, peers, cur, push, finish)
	c.mu.Lock()
	c.jobs[id] = g
	c.mu.Unlock()
	cleanup := func() {
		c.mu.Lock()
		delete(c.jobs, id)
		c.mu.Unlock()
	}
	go func() {
		<-g.finished
		cleanup()
	}()

	// Prepare: every node executes the leading statements, compiles the
	// query, and registers the run so peer data connections can attach.
	if _, err := c.broadcast(ctx, peers, ctrlMsg{Type: msgJob, ID: id, Src: src, Profile: profile}); err != nil {
		c.abortJob(g, err)
		return nil, err
	}
	// Launch. A write failure marks the node dead, which fails the job.
	for _, p := range peers {
		if err := p.conn.write(ctrlMsg{Type: msgGo, ID: id}); err != nil {
			c.nodeDied(p)
		}
	}
	return asterixdb.NewJobCursor(ctx, cur), nil
}

// abortJob fails a job exactly once: cancel fan-out to the live nodes, then
// a backstop timer forces the gather to finish even if no node ever reports
// back (so a consumer blocked in Close can never hang forever).
func (c *Controller) abortJob(g *gatherJob, err error) {
	g.abortOnce.Do(func() {
		g.setErr(err)
		msg := ctrlMsg{Type: msgCancel, ID: g.id, Err: toWireError(err)}
		for _, p := range c.alivePeers() {
			if g.participant(p.name) {
				_ = p.conn.write(msg)
			}
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			timer := time.NewTimer(c.cfg.RPCTimeout)
			defer timer.Stop()
			select {
			case <-g.finished:
			case <-timer.C:
				g.finish(g.firstError())
			case <-c.closed:
				g.finish(g.firstError())
			}
		}()
	})
}

// ----------------------------------------------------------------------------
// result gathering
// ----------------------------------------------------------------------------

// gatherJob tracks one distributed job's result collection: which nodes have
// reported completion, the first terminal error, and the accepted result
// connections (closed at finish so their handler goroutines always exit).
type gatherJob struct {
	id       string
	expect   int
	names    map[string]bool // participants
	cur      *hyracks.Cursor
	push     func(hyracks.Frame) bool
	finishFn func(error)
	finished chan struct{}

	abortOnce  sync.Once
	finishOnce sync.Once

	mu       sync.Mutex
	done     map[string]bool
	firstErr error
	conns    []net.Conn
	profiles []*hyracks.JobProfile // per-node slice profiles, merge at finish
}

func newGatherJob(id string, peers []*ncPeer, cur *hyracks.Cursor, push func(hyracks.Frame) bool, finish func(error)) *gatherJob {
	names := make(map[string]bool, len(peers))
	for _, p := range peers {
		names[p.name] = true
	}
	return &gatherJob{
		id:       id,
		expect:   len(peers),
		names:    names,
		cur:      cur,
		push:     push,
		finishFn: finish,
		finished: make(chan struct{}),
		done:     map[string]bool{},
	}
}

// addProfile records one node's slice profile for the merge at finish.
func (g *gatherJob) addProfile(p *hyracks.JobProfile) {
	g.mu.Lock()
	g.profiles = append(g.profiles, p)
	g.mu.Unlock()
}

func (g *gatherJob) participant(name string) bool { return g.names[name] }

func (g *gatherJob) nodeFinished(name string) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.done[name]
}

func (g *gatherJob) setErr(err error) {
	g.mu.Lock()
	if g.firstErr == nil && err != nil {
		g.firstErr = err
	}
	g.mu.Unlock()
}

func (g *gatherJob) firstError() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.firstErr
}

func (g *gatherJob) addConn(conn net.Conn) {
	g.mu.Lock()
	g.conns = append(g.conns, conn)
	g.mu.Unlock()
}

// finish terminates the gather cursor (once) and closes every result
// connection so blocked handler goroutines unwind. The per-node profiles
// merge into the cursor's cluster-wide profile first — SetProfile must
// precede the cursor's done signal.
func (g *gatherJob) finish(err error) {
	g.finishOnce.Do(func() {
		g.setErr(err)
		g.mu.Lock()
		profiles := g.profiles
		g.mu.Unlock()
		if merged := hyracks.MergeProfiles(profiles); merged != nil {
			g.cur.SetProfile(merged)
		}
		g.finishFn(g.firstError())
		g.mu.Lock()
		conns := g.conns
		g.conns = nil
		g.mu.Unlock()
		for _, conn := range conns {
			conn.Close()
		}
		close(g.finished)
	})
}

// nodeDone records one node's completion report; the gather finishes when
// every participant has reported. A non-nil error is terminal for the whole
// job: it aborts the remaining slices immediately.
func (c *Controller) nodeDone(g *gatherJob, name string, err error) {
	g.mu.Lock()
	if g.done[name] || !g.names[name] {
		g.mu.Unlock()
		return
	}
	g.done[name] = true
	if err != nil && g.firstErr == nil {
		g.firstErr = err
	}
	complete := len(g.done) >= g.expect
	g.mu.Unlock()
	if err != nil && !complete {
		c.abortJob(g, err)
	}
	if complete {
		g.finish(g.firstError())
	}
}

func (c *Controller) acceptData() {
	for {
		conn, err := c.dataLn.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleResult(conn)
		}()
	}
}

// lookupJob retries briefly: a node's result connection can arrive while the
// job registration (same goroutine as the broadcast) is still in flight.
func (c *Controller) lookupJob(id string) *gatherJob {
	deadline := time.Now().Add(c.cfg.RPCTimeout)
	for {
		c.mu.Lock()
		g := c.jobs[id]
		c.mu.Unlock()
		if g != nil {
			return g
		}
		select {
		case <-c.closed:
			return nil
		default:
		}
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// handleResult drains one node's result stream: frames push into the gather
// cursor (keeping their sink operator/partition tags for deterministic
// ordering), and the trailing done record carries the node's terminal error.
// When the consumer walks away (push reports false) the handler aborts the
// job but keeps draining so the node is never blocked on a full TCP window
// mid-teardown; finish closes the connection, unblocking any pending read.
func (c *Controller) handleResult(conn net.Conn) {
	defer conn.Close()
	br := newDataReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(c.cfg.HeartbeatTimeout))
	h, err := readHandshake(br)
	if err != nil || h.Edge != -1 {
		return
	}
	g := c.lookupJob(h.Job)
	if g == nil {
		return
	}
	g.addConn(conn)
	_ = conn.SetReadDeadline(time.Time{})
	pushing := true
	for {
		kind, a, b, payload, err := readRecord(br)
		if err != nil {
			// Connection lost without a done record: the control-plane
			// liveness tracking decides whether the node died; here we only
			// stop serving the stream.
			return
		}
		switch kind {
		case recFrame:
			if !pushing {
				continue
			}
			tuples, derr := decodeTuples(payload)
			if derr != nil {
				c.abortJob(g, derr)
				return
			}
			if !g.push(hyracks.Frame{Op: int(a), Partition: int(b), Tuples: tuples}) {
				// The consumer closed the cursor: stop the cluster-wide job,
				// then drain the remaining records without pushing.
				pushing = false
				c.abortJob(g, nil)
			}
		case recProfile:
			p := new(hyracks.JobProfile)
			if jerr := json.Unmarshal(payload, p); jerr == nil {
				g.addProfile(p)
			}
		case recDone:
			var werr *wireError
			if len(payload) > 0 {
				werr = new(wireError)
				if jerr := json.Unmarshal(payload, werr); jerr != nil {
					werr = &wireError{Code: asterixdb.CodeInternal, Message: "cluster: undecodable completion record"}
				}
			}
			c.nodeDone(g, h.From, werr.Err())
			return
		default:
			c.abortJob(g, corruptf("cluster: unexpected record kind %d on result connection", kind))
			return
		}
	}
}
