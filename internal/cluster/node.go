package cluster

import (
	"context"
	"errors"
	"net"
	"sort"
	"sync"
	"time"

	"asterixdb"
	"asterixdb/internal/hyracks"
	"asterixdb/internal/metrics"
)

// NodeConfig configures one node controller process.
type NodeConfig struct {
	// Name identifies the node; the cluster's placement is defined over the
	// SORTED node names, so names must be unique and stable.
	Name string
	// CCAddr is the coordinator's control-plane address to register with.
	CCAddr string
	// DataAddr is the address the node's data-plane listener binds
	// (host:0 picks a free port; the chosen address is sent to the CC).
	DataAddr string
	// DataDir roots this node's local LSM storage.
	DataDir string
	// Partitions is the cluster-wide storage partition count; it must match
	// the coordinator's.
	Partitions int
	// MemoryBudget is the per-query memory budget (see asterixdb.Config).
	MemoryBudget int64
	// HeartbeatTimeout bounds silence on the control connection before the
	// coordinator is considered dead (default 15s).
	HeartbeatTimeout time.Duration
	// WriteTimeout bounds every data- and control-plane write (default 10s).
	WriteTimeout time.Duration
}

// Node is one node controller: it registers with the coordinator, owns the
// storage partitions its sorted rank maps to, runs the operator instances
// placed on it, exchanges frames with peer nodes over TCP, and streams its
// sink output back to the coordinator.
type Node struct {
	cfg  NodeConfig
	inst *asterixdb.Instance
	ctrl *ctrlConn

	dataLn net.Listener
	nodes  []nodeInfo // sorted; fixed at cluster formation
	ccData string     // coordinator's data-plane address (result streams)
	self   int        // this node's sorted rank
	pl     placement

	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*jobRun
	wg   sync.WaitGroup // job executors and data handlers
}

// NewNode validates the config and returns an unstarted node; Run does the
// actual registration and serving.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" || cfg.CCAddr == "" {
		return nil, &asterixdb.Error{Code: asterixdb.CodeInvalid, Message: "cluster: node needs a name and a coordinator address"}
	}
	if cfg.DataAddr == "" {
		cfg.DataAddr = "127.0.0.1:0"
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 15 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	return &Node{cfg: cfg, jobs: map[string]*jobRun{}}, nil
}

// Instance returns the node's local asterixdb instance (nil before the
// cluster has formed).
func (n *Node) Instance() *asterixdb.Instance { return n.inst }

// RegisterMetrics adds the node's engine gauges and its active-job count to
// r; the asterixnc daemon serves them on its own /metrics listener. Lazy
// instance lookup tolerates scrapes before cluster formation.
func (n *Node) RegisterMetrics(r *metrics.Registry) {
	asterixdb.RegisterInstanceMetrics(r, n.Instance)
	r.GaugeFunc("asterix_cluster_jobs_active",
		"Job slices currently running on this node.",
		func() float64 {
			n.mu.Lock()
			defer n.mu.Unlock()
			return float64(len(n.jobs))
		})
}

// Run registers with the coordinator, waits for cluster formation, opens the
// node's partition-owning storage instance, and serves control messages and
// peer data connections until ctx is cancelled or the coordinator connection
// dies. It always returns a non-nil error describing why it stopped.
func (n *Node) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	n.ctx, n.cancel = context.WithCancel(ctx)
	defer n.cancel()

	ln, err := net.Listen("tcp", n.cfg.DataAddr)
	if err != nil {
		return err
	}
	n.dataLn = ln
	defer ln.Close()

	conn, err := net.Dial("tcp", n.cfg.CCAddr)
	if err != nil {
		return err
	}
	n.ctrl = newCtrlConn(conn, n.cfg.WriteTimeout)
	defer n.ctrl.Close()

	// Cancellation unblocks the reads below by closing the sockets.
	go func() {
		<-n.ctx.Done()
		n.ctrl.Close()
		ln.Close()
	}()

	if err := n.ctrl.write(ctrlMsg{
		Type: msgRegister, Node: n.cfg.Name,
		DataAddr: ln.Addr().String(), Partitions: n.cfg.Partitions,
	}); err != nil {
		return err
	}
	// Wait for the ready broadcast (the coordinator may be waiting for other
	// nodes; pings keep the read deadline honest in the meantime).
	var ready ctrlMsg
	for {
		m, err := n.ctrl.read(n.cfg.HeartbeatTimeout)
		if err != nil {
			return unavailablef("cluster: node %s: coordinator lost before formation: %v", n.cfg.Name, err)
		}
		if m.Type == msgPing {
			if err := n.ctrl.write(ctrlMsg{Type: msgPong, Node: n.cfg.Name}); err != nil {
				return err
			}
			continue
		}
		if m.Type == msgReady {
			ready = m
			break
		}
	}
	n.nodes = append([]nodeInfo(nil), ready.Nodes...)
	sort.Slice(n.nodes, func(i, j int) bool { return n.nodes[i].Name < n.nodes[j].Name })
	n.ccData = ready.DataAddr
	n.self = -1
	for i, ni := range n.nodes {
		if ni.Name == n.cfg.Name {
			n.self = i
		}
	}
	if n.self < 0 {
		return unavailablef("cluster: node %s missing from formation broadcast", n.cfg.Name)
	}
	n.pl = placement{nodes: len(n.nodes)}
	self := n.self
	N := len(n.nodes)
	inst, err := asterixdb.Open(asterixdb.Config{
		DataDir:         n.cfg.DataDir,
		Partitions:      n.cfg.Partitions,
		MemoryBudget:    n.cfg.MemoryBudget,
		OwnsPartition:   func(p int) bool { return p%N == self },
		DistributedNode: true,
	})
	if err != nil {
		return err
	}
	n.inst = inst
	defer inst.Close()

	go n.acceptData()

	err = n.controlLoop()
	n.cancel()
	n.failAllJobs(unavailablef("cluster: node %s shutting down: %v", n.cfg.Name, err))
	n.wg.Wait()
	return err
}

// controlLoop serves coordinator messages until the connection dies.
func (n *Node) controlLoop() error {
	for {
		m, err := n.ctrl.read(n.cfg.HeartbeatTimeout)
		if err != nil {
			return unavailablef("cluster: node %s: coordinator connection lost: %v", n.cfg.Name, err)
		}
		switch m.Type {
		case msgPing:
			if err := n.ctrl.write(ctrlMsg{Type: msgPong, Node: n.cfg.Name}); err != nil {
				return err
			}
		case msgStmt:
			n.wg.Add(1)
			go func(m ctrlMsg) {
				defer n.wg.Done()
				res, err := n.inst.ExecuteContext(n.ctx, m.Src)
				ack := ctrlMsg{Type: msgStmtAck, ID: m.ID, Node: n.cfg.Name, Err: toWireError(err)}
				if err == nil {
					ack.Kind, ack.Count = res.Kind, res.Count
				}
				_ = n.ctrl.write(ack)
			}(m)
		case msgJob:
			n.wg.Add(1)
			go func(m ctrlMsg) {
				defer n.wg.Done()
				err := n.prepareJob(m.ID, m.Src, m.Profile)
				_ = n.ctrl.write(ctrlMsg{Type: msgJobAck, ID: m.ID, Node: n.cfg.Name, Err: toWireError(err)})
			}(m)
		case msgGo:
			if jr := n.lookupJob(m.ID); jr != nil {
				n.wg.Add(1)
				go func() {
					defer n.wg.Done()
					n.executeJob(jr)
				}()
			}
		case msgCancel:
			if jr := n.lookupJob(m.ID); jr != nil {
				err := m.Err.Err()
				if err == nil {
					err = context.Canceled
				}
				jr.fail(err)
			}
		}
	}
}

// prepareJob executes the request's leading statements locally, compiles its
// final query, and registers the run so peer data connections can attach.
// profile turns on per-operator instrumentation for this slice.
func (n *Node) prepareJob(id, src string, profile bool) error {
	q, err := n.inst.ExecuteForQuery(n.ctx, src)
	if err != nil {
		return err
	}
	if q == nil {
		return &asterixdb.Error{Code: asterixdb.CodeInvalid, Message: "cluster: job request carries no query"}
	}
	job, err := n.inst.CompileQueryJob(q)
	if err != nil {
		return err
	}
	job.Profile = profile
	edges, _ := hyracks.PlanEdges(job)
	jr := &jobRun{
		id:      id,
		node:    n,
		job:     job,
		edges:   edges,
		started: make(chan struct{}),
		done:    make(chan struct{}),
		conns:   map[connKey]*dataConn{},
	}
	n.mu.Lock()
	n.jobs[id] = jr
	n.mu.Unlock()
	return nil
}

func (n *Node) lookupJob(id string) *jobRun {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.jobs[id]
}

func (n *Node) dropJob(id string) {
	n.mu.Lock()
	delete(n.jobs, id)
	n.mu.Unlock()
}

func (n *Node) failAllJobs(err error) {
	n.mu.Lock()
	jobs := make([]*jobRun, 0, len(n.jobs))
	for _, jr := range n.jobs {
		jobs = append(jobs, jr)
	}
	n.mu.Unlock()
	for _, jr := range jobs {
		jr.fail(err)
	}
}

// executeJob runs the node's slice of a prepared job and streams its sink
// frames to the coordinator, followed by a completion record carrying the
// job's terminal error (nil on success). Every path closes the job's data
// connections and unregisters the run.
func (n *Node) executeJob(jr *jobRun) {
	defer close(jr.done)
	defer n.dropJob(jr.id)
	defer jr.closeConns()

	spec := &hyracks.DistSpec{
		Local:   func(op, p int) bool { return n.pl.nodeOf(p) == n.self },
		Send:    jr.send,
		SendEOS: jr.sendEOS,
	}
	cur, run, err := hyracks.ExecuteStreamDist(n.ctx, jr.job, spec)
	if err != nil {
		close(jr.started)
		jr.reportDone(err)
		return
	}
	jr.setRun(run)

	for {
		f, ok := cur.NextFrame()
		if !ok {
			break
		}
		rc, err := jr.resultConn()
		if err != nil {
			cur.Close()
			jr.reportDone(err)
			return
		}
		if err := rc.writeFrame(uint64(f.Op), uint64(f.Partition), f.Tuples, n.cfg.WriteTimeout); err != nil {
			// The coordinator stopped listening (consumer closed the stream
			// or the CC died); tear the job down.
			jr.fail(err)
			cur.Close()
			jr.reportDone(err)
			return
		}
	}
	err = cur.Close()
	if cerr := jr.cancelReason(); cerr != nil {
		// Cancellation may surface as a bare context error on the cursor;
		// report the typed reason the coordinator sent instead.
		err = cerr
	}
	if err == nil && jr.job.Profile {
		// Ship this slice's profile ahead of the completion record on the
		// same connection, so the coordinator has it before it counts the
		// node done.
		jr.shipProfile(cur.Profile())
	}
	jr.reportDone(err)
}

// shipProfile stamps the node's name onto its slice profile and sends it to
// the coordinator; best-effort — a send failure is covered by the
// completion-record path that follows.
func (jr *jobRun) shipProfile(p *hyracks.JobProfile) {
	if p == nil {
		return
	}
	p.SetNode(jr.node.cfg.Name)
	rc, err := jr.resultConn()
	if err != nil {
		return
	}
	_ = rc.writeProfile(mustJSON(p), jr.node.cfg.WriteTimeout)
}

// acceptData serves the node's data-plane listener: peer nodes dial one
// connection per (job, edge) pair they ship frames to us on.
func (n *Node) acceptData() {
	for {
		conn, err := n.dataLn.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleData(conn)
		}()
	}
}

// handleData drains one inbound edge connection, injecting its frames and
// end-of-stream records into the job's local run. A decode failure or an
// inject on corrupt coordinates fails the job with a typed error — never a
// panic. The loop uses short read deadlines so the handler exits promptly
// once the job is done even if the peer never closes the connection.
func (n *Node) handleData(conn net.Conn) {
	defer conn.Close()
	br := newDataReader(conn)
	_ = conn.SetReadDeadline(time.Now().Add(n.cfg.HeartbeatTimeout))
	h, err := readHandshake(br)
	if err != nil {
		return
	}
	jr := n.waitJob(h.Job)
	if jr == nil {
		return
	}
	select {
	case <-jr.started:
	case <-jr.done:
		return
	case <-n.ctx.Done():
		return
	}
	run := jr.getRun()
	if run == nil {
		return
	}
	for {
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		kind, a, _, payload, err := readRecord(br)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				select {
				case <-jr.done:
					return
				case <-n.ctx.Done():
					return
				default:
					continue
				}
			}
			// EOF: the peer closed the connection, which is the normal end of
			// an edge stream (after its final EOS record). Anything the job
			// still owed us is accounted for by the coordinator's failure
			// detection, so just exit.
			return
		}
		switch kind {
		case recFrame:
			tuples, derr := decodeTuples(payload)
			if derr != nil {
				run.Fail(derr)
				return
			}
			if err := run.Inject(h.Edge, int(a), tuples); err != nil {
				run.Fail(&asterixdb.Error{Code: asterixdb.CodeInvalid, Message: err.Error()})
				return
			}
		case recEOS:
			if err := run.InjectEOS(h.Edge); err != nil {
				run.Fail(&asterixdb.Error{Code: asterixdb.CodeInvalid, Message: err.Error()})
				return
			}
		default:
			run.Fail(corruptf("cluster: unexpected record kind %d on edge connection", kind))
			return
		}
	}
}

// waitJob looks the job up, briefly retrying: a peer that received its go
// message a beat before us may dial while our registration is in flight.
func (n *Node) waitJob(id string) *jobRun {
	deadline := time.Now().Add(n.cfg.HeartbeatTimeout)
	for {
		if jr := n.lookupJob(id); jr != nil {
			return jr
		}
		if time.Now().After(deadline) || n.ctx.Err() != nil {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ----------------------------------------------------------------------------
// jobRun: one job's per-node execution state
// ----------------------------------------------------------------------------

type connKey struct {
	edge int // post-splice edge index; -1 for the result stream to the CC
	node int // target node rank; -1 for the coordinator
}

type jobRun struct {
	id      string
	node    *Node
	job     *hyracks.Job
	edges   []hyracks.Edge
	started chan struct{} // closed once run is available (or startup failed)
	done    chan struct{} // closed when the executor goroutine exits

	mu        sync.Mutex
	run       *hyracks.DistRun
	cancelErr error
	conns     map[connKey]*dataConn
	reported  bool
}

// setRun publishes the DistRun to data handlers; a cancel that arrived
// before the job started is applied immediately.
func (jr *jobRun) setRun(run *hyracks.DistRun) {
	jr.mu.Lock()
	jr.run = run
	cancelErr := jr.cancelErr
	jr.mu.Unlock()
	close(jr.started)
	if cancelErr != nil {
		run.Fail(cancelErr)
	}
}

func (jr *jobRun) getRun() *hyracks.DistRun {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	return jr.run
}

// fail aborts the job: the first reason wins and is surfaced through the
// run's failure signal (which unblocks every consumer and producer).
func (jr *jobRun) fail(err error) {
	jr.mu.Lock()
	if jr.cancelErr == nil {
		jr.cancelErr = err
	}
	run := jr.run
	jr.mu.Unlock()
	if run != nil {
		run.Fail(err)
	}
}

func (jr *jobRun) cancelReason() error {
	jr.mu.Lock()
	defer jr.mu.Unlock()
	return jr.cancelErr
}

// conn returns the (lazily dialed) data connection for one edge and target
// node; edge -1 / node -1 addresses the coordinator's result stream.
func (jr *jobRun) conn(key connKey) (*dataConn, error) {
	jr.mu.Lock()
	if dc, ok := jr.conns[key]; ok {
		jr.mu.Unlock()
		return dc, nil
	}
	jr.mu.Unlock()
	addr := jr.node.ccData
	if key.node >= 0 {
		addr = jr.node.nodes[key.node].DataAddr
	}
	c, err := net.DialTimeout("tcp", addr, jr.node.cfg.WriteTimeout)
	if err != nil {
		return nil, unavailablef("cluster: node %s: dialing %s for job %s: %v", jr.node.cfg.Name, addr, jr.id, err)
	}
	dc := &dataConn{conn: c}
	if err := dc.writeHandshake(dataHandshake{Job: jr.id, From: jr.node.cfg.Name, Edge: key.edge}, jr.node.cfg.WriteTimeout); err != nil {
		c.Close()
		return nil, err
	}
	jr.mu.Lock()
	if existing, ok := jr.conns[key]; ok {
		// Another producer instance won the race; keep its connection.
		jr.mu.Unlock()
		c.Close()
		return existing, nil
	}
	jr.conns[key] = dc
	jr.mu.Unlock()
	return dc, nil
}

func (jr *jobRun) resultConn() (*dataConn, error) {
	return jr.conn(connKey{edge: -1, node: -1})
}

func (jr *jobRun) closeConns() {
	jr.mu.Lock()
	conns := make([]*dataConn, 0, len(jr.conns))
	for _, dc := range jr.conns {
		conns = append(conns, dc)
	}
	jr.conns = map[connKey]*dataConn{}
	jr.mu.Unlock()
	for _, dc := range conns {
		dc.conn.Close()
	}
}

// send implements DistSpec.Send: serialize one frame to the node running the
// target consumer instance.
func (jr *jobRun) send(edge, toPart int, tuples []hyracks.Tuple) error {
	dc, err := jr.conn(connKey{edge: edge, node: jr.node.pl.nodeOf(toPart)})
	if err != nil {
		return err
	}
	return dc.writeTuples(uint64(toPart), tuples, jr.node.cfg.WriteTimeout)
}

// sendEOS implements DistSpec.SendEOS: announce a finished producer instance
// to every remote node holding consumer instances it could target. The
// routing mirrors the runtime's remote-producer accounting exactly — M:N
// connectors reach every consumer-holding node, partition-preserving
// connectors only the node owning instance fromPart % consumerParallelism.
func (jr *jobRun) sendEOS(edge, fromPart int) error {
	e := jr.edges[edge]
	consPar := jr.job.Operators[e.To].Parallelism()
	targets := make([]int, 0, len(jr.node.nodes))
	switch e.Connector.Kind {
	case hyracks.MToNPartitioning, hyracks.HashPartitioningShuffle,
		hyracks.MToNReplicating, hyracks.MToNPartitioningMerging:
		for t := range jr.node.nodes {
			if t != jr.node.self && jr.node.pl.hasInstance(t, consPar) {
				targets = append(targets, t)
			}
		}
	default: // OneToOne, LocalityAwareMToNPartition
		if t := jr.node.pl.nodeOf(fromPart % consPar); t != jr.node.self {
			targets = append(targets, t)
		}
	}
	var firstErr error
	for _, t := range targets {
		dc, err := jr.conn(connKey{edge: edge, node: t})
		if err == nil {
			err = dc.writeEOS(jr.node.cfg.WriteTimeout)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// reportDone sends the job's completion record to the coordinator (at most
// once).
func (jr *jobRun) reportDone(err error) {
	jr.mu.Lock()
	if jr.reported {
		jr.mu.Unlock()
		return
	}
	jr.reported = true
	jr.mu.Unlock()
	rc, cerr := jr.resultConn()
	if cerr != nil {
		return // the coordinator's failure detection covers us
	}
	_ = rc.writeDone(err, jr.node.cfg.WriteTimeout)
}

// dataConn is one outbound data-plane connection: whole records are written
// under the mutex so frames from concurrent producer instances never
// interleave, and the encode buffer is reused across frames.
type dataConn struct {
	mu   sync.Mutex
	conn net.Conn
	buf  []byte
}

func (dc *dataConn) writeHandshake(h dataHandshake, timeout time.Duration) error {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if err := dc.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	return writeHandshake(dc.conn, h)
}

func (dc *dataConn) writeTuples(toPart uint64, tuples []hyracks.Tuple, timeout time.Duration) error {
	return dc.writeFrame(toPart, 0, tuples, timeout)
}

func (dc *dataConn) writeFrame(a, b uint64, tuples []hyracks.Tuple, timeout time.Duration) error {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	payload, err := encodeTuples(dc.buf[:0], tuples)
	if err != nil {
		return err
	}
	dc.buf = payload[:0]
	if err := dc.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	return writeRecord(dc.conn, recFrame, a, b, payload)
}

func (dc *dataConn) writeProfile(payload []byte, timeout time.Duration) error {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if err := dc.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	return writeRecord(dc.conn, recProfile, 0, 0, payload)
}

func (dc *dataConn) writeEOS(timeout time.Duration) error {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	if err := dc.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	return writeRecord(dc.conn, recEOS, 0, 0, nil)
}

func (dc *dataConn) writeDone(jobErr error, timeout time.Duration) error {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	var payload []byte
	if w := toWireError(jobErr); w != nil {
		payload = mustJSON(w)
	}
	if err := dc.conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return err
	}
	return writeRecord(dc.conn, recDone, 0, 0, payload)
}
