package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"asterixdb"
	"asterixdb/internal/adm"
	"asterixdb/internal/hyracks"
)

// testDDL is the paper's TinySocial schema (Data definition 1 + 2), the same
// corpus the root package's differential tests run, so the distributed
// executor is held to the single-process executor's exact results across
// every access path: parallel scans, secondary btree/rtree/keyword/ngram
// indexes, hash joins, group-by, sort and the aggregation split.
const testDDL = `
drop dataverse TinySocial if exists;
create dataverse TinySocial;
use dataverse TinySocial;

create type EmploymentType as open {
  organization-name: string,
  start-date: date,
  end-date: date?
}

create type MugshotUserType as {
  id: int32,
  alias: string,
  name: string,
  user-since: datetime,
  address: {
    street: string,
    city: string,
    state: string,
    zip: string,
    country: string
  },
  friend-ids: {{ int32 }},
  employment: [EmploymentType]
}

create type MugshotMessageType as closed {
  message-id: int32,
  author-id: int32,
  timestamp: datetime,
  in-response-to: int32?,
  sender-location: point?,
  tags: {{ string }},
  message: string
}

create dataset MugshotUsers(MugshotUserType) primary key id;
create dataset MugshotMessages(MugshotMessageType) primary key message-id;

create index msUserSinceIdx on MugshotUsers(user-since);
create index msTimestampIdx on MugshotMessages(timestamp);
create index msAuthorIdx on MugshotMessages(author-id) type btree;
create index msSenderLocIndex on MugshotMessages(sender-location) type rtree;
create index msMessageIdx on MugshotMessages(message) type keyword;
create index msMessageNGramIdx on MugshotMessages(message) type ngram(3);
`

var testUsers = []string{
	`{ "id": 1, "alias": "Margarita", "name": "MargaritaStoddard",
	   "address": { "street": "234 Thomas Ave", "city": "San Hugo", "zip": "98765", "state": "CA", "country": "USA" },
	   "user-since": datetime("2012-08-20T10:10:00"),
	   "friend-ids": {{ 2, 3, 6, 10 }},
	   "employment": [ { "organization-name": "Codetechno", "start-date": date("2006-08-06") } ] }`,
	`{ "id": 2, "alias": "Isbel", "name": "IsbelDull",
	   "address": { "street": "345 Forest St", "city": "Portland", "zip": "98765", "state": "OR", "country": "USA" },
	   "user-since": datetime("2011-01-22T10:10:00"),
	   "friend-ids": {{ 1, 4 }},
	   "employment": [ { "organization-name": "Hexviafind", "start-date": date("2010-04-27"), "end-date": date("2014-01-01") } ] }`,
	`{ "id": 3, "alias": "Emory", "name": "EmoryUnk",
	   "address": { "street": "456 Hill St", "city": "Portland", "zip": "98765", "state": "OR", "country": "USA" },
	   "user-since": datetime("2012-07-10T10:10:00"),
	   "friend-ids": {{ 1, 5, 8, 9 }},
	   "employment": [ { "organization-name": "geomedia", "start-date": date("2010-06-17"), "end-date": date("2010-01-26"), "job-kind": "part-time" } ] }`,
	`{ "id": 4, "alias": "Nicholas", "name": "NicholasStroh",
	   "address": { "street": "99 Third St", "city": "Irvine", "zip": "92617", "state": "CA", "country": "USA" },
	   "user-since": datetime("2010-12-27T10:10:00"),
	   "friend-ids": {{ 2 }},
	   "employment": [ { "organization-name": "Zamcorporation", "start-date": date("2010-06-08") } ] }`,
}

var testMessages = []string{
	`{ "message-id": 1, "author-id": 1, "timestamp": datetime("2014-02-20T08:00:00"),
	   "in-response-to": null, "sender-location": point("41.66,80.87"),
	   "tags": {{ "big-data", "systems" }}, "message": " love big data systems tonight" }`,
	`{ "message-id": 2, "author-id": 1, "timestamp": datetime("2014-02-20T09:00:00"),
	   "in-response-to": 1, "sender-location": point("41.66,80.89"),
	   "tags": {{ "big-data" }}, "message": " big data is the future" }`,
	`{ "message-id": 3, "author-id": 2, "timestamp": datetime("2014-02-20T18:30:00"),
	   "in-response-to": null, "sender-location": point("37.73,97.04"),
	   "tags": {{ "databases" }}, "message": " going out tonite " }`,
	`{ "message-id": 4, "author-id": 3, "timestamp": datetime("2014-01-05T12:00:00"),
	   "in-response-to": null, "sender-location": point("24.55,88.41"),
	   "tags": {{ "systems", "databases" }}, "message": " parallel database systems rock" }`,
	`{ "message-id": 5, "author-id": 4, "timestamp": datetime("2013-12-30T23:00:00"),
	   "in-response-to": 2, "sender-location": point("41.67,80.88"),
	   "tags": {{ "big-data", "systems" }}, "message": " one size fits a bunch " }`,
}

func loadTestCorpus(t *testing.T, exec func(string) error) {
	t.Helper()
	if err := exec(testDDL); err != nil {
		t.Fatalf("DDL: %v", err)
	}
	for _, u := range testUsers {
		if err := exec(`use dataverse TinySocial; insert into dataset MugshotUsers (` + u + `);`); err != nil {
			t.Fatalf("insert user: %v", err)
		}
	}
	for _, m := range testMessages {
		if err := exec(`use dataverse TinySocial; insert into dataset MugshotMessages (` + m + `);`); err != nil {
			t.Fatalf("insert message: %v", err)
		}
	}
}

// differentialQueries holds every corpus query that compiles into a
// distributable job. Queries whose plans evaluate a correlated subquery over
// a dataset through the interpreter are excluded: the distributed catalog
// rejects expression-level dataset reads by design.
var differentialQueries = []struct {
	name    string
	query   string
	ordered bool
}{
	{"full-scan", `for $u in dataset MugshotUsers return $u;`, false},
	{"range-index-scan", `
for $user in dataset MugshotUsers
where $user.user-since >= datetime('2010-07-22T00:00:00')
  and $user.user-since <= datetime('2012-07-29T23:59:59')
return $user;`, false},
	{"equijoin", `
for $user in dataset MugshotUsers
for $message in dataset MugshotMessages
where $message.author-id = $user.id
  and $user.user-since >= datetime('2010-07-22T00:00:00')
  and $user.user-since <= datetime('2012-07-29T23:59:59')
return { "uname": $user.name, "message": $message.message };`, false},
	{"indexnl-join-degrades-to-hash", `
for $user in dataset MugshotUsers
for $message in dataset MugshotMessages
where $message.author-id /*+ indexnl */ = $user.id
return { "uname": $user.name, "message": $message.message };`, false},
	{"group-by", `
for $m in dataset MugshotMessages
group by $aid := $m.author-id with $m
return { "author": $aid, "cnt": count($m) };`, false},
	{"group-order-limit", `
for $msg in dataset MugshotMessages
where $msg.timestamp >= datetime("2014-02-20T00:00:00")
  and $msg.timestamp < datetime("2014-02-21T00:00:00")
group by $aid := $msg.author-id with $msg
let $cnt := count($msg)
order by $cnt desc, $aid
limit 3
return { "author": $aid, "no messages": $cnt };`, true},
	{"order-limit", `
for $m in dataset MugshotMessages
order by $m.message-id desc
limit 3
return $m.message-id;`, true},
	{"order-limit-offset", `
for $m in dataset MugshotMessages
order by $m.message-id
limit 2 offset 2
return $m.message-id;`, true},
	{"let-first", `
let $cutoff := datetime("2014-01-01T00:00:00")
for $m in dataset MugshotMessages
where $m.timestamp >= $cutoff
return $m.message-id;`, false},
	{"self-join", `
for $a in dataset MugshotMessages
for $b in dataset MugshotMessages
where $a.author-id = $b.author-id
return { "a": $a.message-id, "b": $b.message-id };`, false},
	{"rtree-spatial", `
for $m in dataset MugshotMessages
where spatial-intersect($m.sender-location, create-rectangle(create-point(41.0, 80.0), create-point(42.0, 81.0)))
return $m.message-id;`, false},
	{"contains-ngram", `
for $m in dataset MugshotMessages
where contains($m.message, "data")
return $m.message-id;`, false},
	{"keyword-some", `
for $m in dataset MugshotMessages
where (some $w in word-tokens($m.message) satisfies $w = "tonight")
return $m.message-id;`, false},
	{"unnest-tags", `
for $m in dataset MugshotMessages
for $t in $m.tags
return { "id": $m.message-id, "tag": $t };`, false},
	{"unnest-group", `
for $m in dataset MugshotMessages
for $t in $m.tags
group by $tag := $t with $m
return { "tag": $tag, "cnt": count($m) };`, false},
	{"unnest-employment", `
for $u in dataset MugshotUsers
for $e in $u.employment
return { "u": $u.id, "org": $e.organization-name };`, false},
	// Positional variables distribute: the per-partition scan instances stay
	// on their owner nodes tagging (partition, seq), and the single-instance
	// sort + position counter above them reproduces the global partition-
	// concatenation order across the cluster.
	{"positional-scan", `
for $m at $i in dataset MugshotMessages
order by $i
return { "i": $i, "id": $m.message-id };`, true},
	{"positional-unnest", `
for $m in dataset MugshotMessages
for $t at $j in $m.tags
return { "id": $m.message-id, "j": $j, "tag": $t };`, false},
	{"metadata-scan", `for $ds in dataset Metadata.Dataset return $ds;`, false},
	{"agg-avg", `avg(for $m in dataset MugshotMessages return string-length($m.message))`, true},
	{"agg-count", `count(for $m in dataset MugshotMessages return $m.message-id)`, true},
	{"agg-min", `min(for $m in dataset MugshotMessages return $m.message-id)`, true},
	{"agg-max", `max(for $m in dataset MugshotMessages return $m.timestamp)`, true},
	{"agg-over-index-path", `
avg(
  for $m in dataset MugshotMessages
  where $m.timestamp >= datetime("2014-01-01T00:00:00")
    and $m.timestamp < datetime("2014-04-01T00:00:00")
  return string-length($m.message)
)`, true},
}

// testCluster is one in-process cluster: a controller plus node controllers
// running as goroutines, every boundary a real loopback TCP connection.
type testCluster struct {
	cc    *Controller
	inst  *asterixdb.Instance
	nodes []*Node
	stops []context.CancelFunc
	runs  []chan struct{}
}

func startCluster(t *testing.T, nNodes, partitions int) *testCluster {
	t.Helper()
	inst, err := asterixdb.Open(asterixdb.Config{
		DataDir:         t.TempDir(),
		Partitions:      partitions,
		OwnsPartition:   func(int) bool { return false },
		DistributedNode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewController(inst, ControllerConfig{
		ExpectNodes:       nNodes,
		HeartbeatInterval: 200 * time.Millisecond,
		HeartbeatTimeout:  10 * time.Second,
		RPCTimeout:        20 * time.Second,
	})
	if err != nil {
		inst.Close()
		t.Fatal(err)
	}
	tc := &testCluster{cc: cc, inst: inst}
	for i := 0; i < nNodes; i++ {
		node, err := NewNode(NodeConfig{
			Name:             fmt.Sprintf("nc%d", i+1),
			CCAddr:           cc.CtrlAddr(),
			DataDir:          t.TempDir(),
			Partitions:       partitions,
			HeartbeatTimeout: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = node.Run(ctx)
		}()
		tc.nodes = append(tc.nodes, node)
		tc.stops = append(tc.stops, cancel)
		tc.runs = append(tc.runs, done)
	}
	t.Cleanup(tc.shutdown)
	if err := cc.WaitReady(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	return tc
}

func (tc *testCluster) shutdown() {
	for _, stop := range tc.stops {
		stop()
	}
	for _, done := range tc.runs {
		<-done
	}
	tc.cc.Close()
	tc.inst.Close()
}

// stopNode tears one node down (graceful close of its sockets, as a crashed
// process's OS would) and waits for its goroutines to exit.
func (tc *testCluster) stopNode(i int) {
	tc.stops[i]()
	<-tc.runs[i]
}

func drainCursor(cur *asterixdb.Cursor) ([]string, error) {
	defer cur.Close()
	var out []string
	for cur.Next() {
		out = append(out, string(adm.AppendJSON(nil, cur.Value())))
	}
	return out, cur.Err()
}

// TestClusterDifferential is the core acceptance test of the distributed
// runtime: every corpus query must return results identical to a
// single-process instance holding the same data — exact sequence for ordered
// queries, equal multisets otherwise.
func TestClusterDifferential(t *testing.T) {
	tc := startCluster(t, 2, 4)
	loadTestCorpus(t, func(src string) error {
		_, err := tc.cc.ExecuteContext(context.Background(), src)
		return err
	})

	ref, err := asterixdb.Open(asterixdb.Config{DataDir: t.TempDir(), Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	loadTestCorpus(t, func(src string) error {
		_, err := ref.Execute(src)
		return err
	})

	ctx := context.Background()
	for _, q := range differentialQueries {
		t.Run(q.name, func(t *testing.T) {
			src := "use dataverse TinySocial;\n" + q.query
			distCur, err := tc.cc.QueryStream(ctx, src)
			if err != nil {
				t.Fatalf("cluster query: %v", err)
			}
			dist, err := drainCursor(distCur)
			if err != nil {
				t.Fatalf("cluster stream: %v", err)
			}
			refCur, err := ref.QueryStream(ctx, src)
			if err != nil {
				t.Fatalf("reference query: %v", err)
			}
			want, err := drainCursor(refCur)
			if err != nil {
				t.Fatalf("reference stream: %v", err)
			}
			if !q.ordered {
				sort.Strings(dist)
				sort.Strings(want)
			}
			if len(dist) != len(want) {
				t.Fatalf("result count differs: cluster %d, single-process %d\ncluster: %v\nsingle:  %v",
					len(dist), len(want), dist, want)
			}
			for i := range want {
				if dist[i] != want[i] {
					t.Errorf("result %d differs:\n  cluster: %s\n  single:  %s", i, dist[i], want[i])
				}
			}
		})
	}
}

// TestClusterProfileParity is the acceptance test of distributed profiling:
// a profiled query on a 2-node cluster must report per-operator tuple counts
// identical to a single-process instance holding the same data, with every
// row labelled by the node that ran it — so profile=true output looks the
// same distributed as local, plus node labels.
func TestClusterProfileParity(t *testing.T) {
	tc := startCluster(t, 2, 4)
	ctx := context.Background()
	loadTestCorpus(t, func(src string) error {
		_, err := tc.cc.ExecuteContext(ctx, src)
		return err
	})
	ref, err := asterixdb.Open(asterixdb.Config{DataDir: t.TempDir(), Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	loadTestCorpus(t, func(src string) error {
		_, err := ref.Execute(src)
		return err
	})

	profiled := func(open func(context.Context, string) (*asterixdb.Cursor, error), src string) (*hyracks.JobProfile, int) {
		t.Helper()
		cur, err := open(asterixdb.WithProfiling(ctx), src)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := drainCursor(cur)
		if err != nil {
			t.Fatal(err)
		}
		p := cur.Profile()
		if p == nil {
			t.Fatal("profiled query yielded no profile")
		}
		return p, len(rows)
	}

	for _, q := range []struct{ name, query string }{
		{"full-scan", `for $u in dataset MugshotUsers return $u;`},
		{"group-by", `
for $m in dataset MugshotMessages
group by $aid := $m.author-id with $m
return { "author": $aid, "cnt": count($m) };`},
		{"equijoin", `
for $user in dataset MugshotUsers
for $message in dataset MugshotMessages
where $message.author-id = $user.id
return { "uname": $user.name, "message": $message.message };`},
	} {
		t.Run(q.name, func(t *testing.T) {
			src := "use dataverse TinySocial;\n" + q.query
			dist, distRows := profiled(tc.cc.QueryStream, src)
			local, localRows := profiled(ref.QueryStream, src)
			if distRows != localRows {
				t.Fatalf("row counts differ: cluster %d, single-process %d", distRows, localRows)
			}
			do, lo := dist.OutByName(), local.OutByName()
			if len(do) != len(lo) {
				t.Fatalf("operator sets differ:\ncluster: %v\nsingle:  %v", do, lo)
			}
			for name, n := range lo {
				if do[name] != n {
					t.Errorf("%s: cluster out %d != single-process out %d", name, do[name], n)
				}
			}
			di, li := dist.InByName(), local.InByName()
			for name, n := range li {
				if di[name] != n {
					t.Errorf("%s: cluster in %d != single-process in %d", name, di[name], n)
				}
			}
			// Every distributed row carries the label of the node that ran it.
			seen := map[string]bool{}
			for _, r := range dist.Operators {
				if r.Node != "nc1" && r.Node != "nc2" {
					t.Fatalf("row %q has node label %q, want nc1 or nc2", r.Name, r.Node)
				}
				seen[r.Node] = true
			}
			if len(seen) != 2 {
				t.Errorf("profile rows came from %v, want both nodes", seen)
			}
			for _, r := range local.Operators {
				if r.Node != "" {
					t.Fatalf("single-process row %q unexpectedly labelled %q", r.Name, r.Node)
				}
			}
		})
	}

	// The scan count in the distributed profile is the dataset cardinality.
	dist, _ := profiled(tc.cc.QueryStream, "use dataverse TinySocial;\nfor $u in dataset MugshotUsers return $u;")
	if got := dist.OutByName()["datasource-scan(MugshotUsers)"]; got != int64(len(testUsers)) {
		t.Fatalf("scan out = %d, want %d", got, len(testUsers))
	}
}

// TestClusterDMLCounts checks that DML counts aggregate across the cluster:
// each node stores only its owned partitions, and the controller (owning
// none) sums the node counts back to the cluster-wide total.
func TestClusterDMLCounts(t *testing.T) {
	tc := startCluster(t, 2, 4)
	ctx := context.Background()
	mustExec := func(src string) *asterixdb.Result {
		t.Helper()
		res, err := tc.cc.ExecuteContext(ctx, src)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mustExec(`
drop dataverse Counts if exists;
create dataverse Counts;
use dataverse Counts;
create type T as { id: int64 }
create dataset D(T) primary key id;`)

	var recs []string
	for i := 0; i < 40; i++ {
		recs = append(recs, fmt.Sprintf(`{ "id": %d }`, i))
	}
	res := mustExec(`use dataverse Counts; insert into dataset D ([` + strings.Join(recs, ",") + `]);`)
	if res.Count != 40 {
		t.Fatalf("insert count = %d, want 40 (summed across nodes)", res.Count)
	}

	cur, err := tc.cc.QueryStream(ctx, `use dataverse Counts; count(for $d in dataset D return $d)`)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := drainCursor(cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != "40" {
		t.Fatalf("count query = %v, want [40]", vals)
	}

	res = mustExec(`use dataverse Counts; delete $d from dataset D where $d.id < 10;`)
	if res.Count != 10 {
		t.Fatalf("delete count = %d, want 10", res.Count)
	}
}

// TestClusterStatementErrors checks that a malformed statement is rejected
// on the controller's catalog before any node sees it, with the same typed
// error a single process returns.
func TestClusterStatementErrors(t *testing.T) {
	tc := startCluster(t, 2, 4)
	ctx := context.Background()
	if _, err := tc.cc.ExecuteContext(ctx, `this is not AQL`); asterixdb.ErrorCode(err) != asterixdb.CodeSyntax {
		t.Fatalf("syntax error code = %q (%v), want %q", asterixdb.ErrorCode(err), err, asterixdb.CodeSyntax)
	}
	// An unknown dataset surfaces through the cursor, exactly as a single
	// process reports it.
	cur, err := tc.cc.QueryStream(ctx, `for $x in dataset NoSuchDataset return $x;`)
	if err != nil {
		if asterixdb.ErrorCode(err) != asterixdb.CodeNotFound {
			t.Fatalf("unknown dataset open error = %v, want not-found", err)
		}
		return
	}
	if _, err := drainCursor(cur); asterixdb.ErrorCode(err) != asterixdb.CodeNotFound {
		t.Fatalf("unknown dataset code = %q (%v), want %q", asterixdb.ErrorCode(err), err, asterixdb.CodeNotFound)
	}
}

// TestClusterExpressionFallback: a query with no dataset access evaluates on
// the controller alone and still streams through the uniform cursor API.
func TestClusterExpressionFallback(t *testing.T) {
	tc := startCluster(t, 2, 4)
	cur, err := tc.cc.QueryStream(context.Background(), `1 + 2`)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := drainCursor(cur)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 1 || vals[0] != "3" {
		t.Fatalf("expression fallback = %v, want [3]", vals)
	}
}

// TestClusterNotFormed: statements against a cluster still waiting for nodes
// fail fast with the typed unavailable error (HTTP 503 through the server).
func TestClusterNotFormed(t *testing.T) {
	inst, err := asterixdb.Open(asterixdb.Config{
		DataDir:         t.TempDir(),
		Partitions:      4,
		OwnsPartition:   func(int) bool { return false },
		DistributedNode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	cc, err := NewController(inst, ControllerConfig{ExpectNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.Health(); asterixdb.ErrorCode(err) != asterixdb.CodeUnavailable {
		t.Fatalf("health before formation = %v, want unavailable", err)
	}
	if _, err := cc.ExecuteContext(context.Background(), `create dataverse X;`); asterixdb.ErrorCode(err) != asterixdb.CodeUnavailable {
		t.Fatalf("statement before formation = %v, want unavailable", err)
	}
}

// TestClusterNodeDownRefusesQueries: once a node dies, the cluster refuses
// new queries with a typed unavailable error (its data slice is gone), while
// the controller itself stays healthy.
func TestClusterNodeDownRefusesQueries(t *testing.T) {
	tc := startCluster(t, 2, 4)
	ctx := context.Background()
	loadTestCorpus(t, func(src string) error {
		_, err := tc.cc.ExecuteContext(ctx, src)
		return err
	})
	tc.stopNode(1)
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := tc.cc.QueryStream(ctx, `use dataverse TinySocial; for $u in dataset MugshotUsers return $u;`)
		if asterixdb.ErrorCode(err) == asterixdb.CodeUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("query after node death = %v, want unavailable", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := tc.cc.Health(); err != nil {
		t.Fatalf("controller health after node death = %v, want nil (degraded, not down)", err)
	}
}
