package cluster

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"asterixdb"
)

// TestHelperNC is not a test: it is the node-controller process body the
// kill test re-executes this test binary into. Guarded by an environment
// variable so normal test runs skip it.
func TestHelperNC(t *testing.T) {
	if os.Getenv("ASTERIX_NC_HELPER") != "1" {
		t.Skip("helper process body, not a test")
	}
	partitions, _ := strconv.Atoi(os.Getenv("ASTERIX_NC_PARTITIONS"))
	node, err := NewNode(NodeConfig{
		Name:       os.Getenv("ASTERIX_NC_NAME"),
		CCAddr:     os.Getenv("ASTERIX_NC_CC"),
		DataDir:    os.Getenv("ASTERIX_NC_DATA"),
		Partitions: partitions,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Runs until the coordinator connection dies or the process is killed.
	_ = node.Run(context.Background())
	os.Exit(0)
}

func spawnNC(t *testing.T, name, ccAddr, dataDir string, partitions int) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestHelperNC$", "-test.v")
	cmd.Env = append(os.Environ(),
		"ASTERIX_NC_HELPER=1",
		"ASTERIX_NC_NAME="+name,
		"ASTERIX_NC_CC="+ccAddr,
		"ASTERIX_NC_DATA="+dataDir,
		fmt.Sprintf("ASTERIX_NC_PARTITIONS=%d", partitions),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	return cmd
}

// spillFiles lists the run files currently present under a spill directory.
func spillFiles(dir string) []string {
	var files []string
	_ = filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && info != nil && !info.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	return files
}

// TestClusterKillNodeMidQuery is the failure-semantics acceptance test: the
// node controllers run as real OS processes, one is SIGKILLed while a large
// query is streaming, and the coordinator must (a) surface a typed
// unavailable error through the open cursor, (b) leak no goroutines, run
// files or open cursors, and (c) stay healthy itself.
func TestClusterKillNodeMidQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test")
	}
	const partitions = 4
	inst, err := asterixdb.Open(asterixdb.Config{
		DataDir:         t.TempDir(),
		Partitions:      partitions,
		OwnsPartition:   func(int) bool { return false },
		DistributedNode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()
	cc, err := NewController(inst, ControllerConfig{
		ExpectNodes:       2,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		RPCTimeout:        15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	spawnNC(t, "nc1", cc.CtrlAddr(), t.TempDir(), partitions)
	victim := spawnNC(t, "nc2", cc.CtrlAddr(), t.TempDir(), partitions)
	if err := cc.WaitReady(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	mustExec := func(src string) {
		t.Helper()
		if _, err := cc.ExecuteContext(ctx, src); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`
drop dataverse Kill if exists;
create dataverse Kill;
use dataverse Kill;
create type T as { id: int64, grp: int64 }
create dataset D(T) primary key id;`)
	// 1500 rows in 5 groups: the self-join below produces 5 x 300^2 = 450k
	// result tuples, far more than the stream buffer, so the query is
	// reliably mid-flight when the victim dies.
	for base := 0; base < 1500; base += 100 {
		var recs []string
		for i := base; i < base+100; i++ {
			recs = append(recs, fmt.Sprintf(`{ "id": %d, "grp": %d }`, i, i%5))
		}
		mustExec(`use dataverse Kill; insert into dataset D ([` + strings.Join(recs, ",") + `]);`)
	}

	baseline := runtime.NumGoroutine()

	cur, err := cc.QueryStream(ctx, `
use dataverse Kill;
for $a in dataset D
for $b in dataset D
where $a.grp = $b.grp
return { "a": $a.id, "b": $b.id };`)
	if err != nil {
		t.Fatal(err)
	}
	// Prove the stream is live, then kill -9 the victim node mid-query.
	if !cur.Next() {
		t.Fatalf("no first result before kill: %v", cur.Err())
	}
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = victim.Process.Wait()

	for cur.Next() {
		// Drain until the failure surfaces.
	}
	err = cur.Err()
	if asterixdb.ErrorCode(err) != asterixdb.CodeUnavailable {
		t.Fatalf("mid-query kill error = %v (code %q), want code %q",
			err, asterixdb.ErrorCode(err), asterixdb.CodeUnavailable)
	}
	if !strings.Contains(err.Error(), "nc2") {
		t.Errorf("error should name the dead node: %v", err)
	}
	cur.Close()

	// No leaked goroutines on the coordinator: every job goroutine, result
	// handler and backstop timer must unwind promptly.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(100 * time.Millisecond)
	}

	// No run files left behind on the coordinator.
	if files := spillFiles(cc.SpillDir()); len(files) != 0 {
		t.Fatalf("coordinator spill dir not clean after failed query: %v", files)
	}

	// The coordinator itself stays healthy (degraded cluster, live CC)...
	if err := cc.Health(); err != nil {
		t.Fatalf("controller health after node kill = %v, want nil", err)
	}
	// ...while new queries are refused with the typed unavailable error.
	qErr := func() error {
		cur, err := cc.QueryStream(ctx, `use dataverse Kill; for $d in dataset D return $d;`)
		if err != nil {
			return err
		}
		_, err = drainCursor(cur)
		return err
	}()
	if asterixdb.ErrorCode(qErr) != asterixdb.CodeUnavailable {
		t.Fatalf("query after node kill = %v, want unavailable", qErr)
	}
}
