package cluster

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"asterixdb"
	"asterixdb/internal/adm"
	"asterixdb/internal/hyracks"
)

// allKindValues holds one exemplar of every adm value kind the wire codec
// must carry, including nested structured values.
func allKindValues() []adm.Value {
	return []adm.Value{
		adm.Missing{},
		adm.Null{},
		adm.Boolean(true),
		adm.Boolean(false),
		adm.Int8(-8),
		adm.Int16(1 << 12),
		adm.Int32(-(1 << 23)),
		adm.Int64(1 << 60),
		adm.Float(1.5),
		adm.Double(-2.25e100),
		adm.String(""),
		adm.String("big data systems — ünïcödé"),
		adm.Binary{},
		adm.Binary{0x00, 0xff, 0x7f},
		adm.UUID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
		adm.Date(16_000),
		adm.Time(86_399_000),
		adm.Datetime(1_393_891_200_000),
		adm.Duration{Months: 14, Millis: 123_456},
		adm.YearMonthDuration(25),
		adm.DayTimeDuration(-7_200_000),
		adm.Interval{PointTag: adm.TagDatetime, Start: 100, End: 10_000},
		adm.Point{X: 41.66, Y: 80.87},
		adm.Line{A: adm.Point{X: 0, Y: 0}, B: adm.Point{X: 1, Y: 1}},
		adm.Rectangle{LowerLeft: adm.Point{X: -1, Y: -1}, UpperRight: adm.Point{X: 2, Y: 3}},
		adm.Circle{Center: adm.Point{X: 41.66, Y: 80.88}, Radius: 0.5},
		adm.Polygon{Points: []adm.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0.5, Y: 1}}},
		adm.NewRecord(
			adm.Field{Name: "id", Value: adm.Int64(7)},
			adm.Field{Name: "nested", Value: adm.NewRecord(adm.Field{Name: "tags", Value: &adm.UnorderedList{Items: []adm.Value{adm.String("a"), adm.String("b")}}})},
		),
		&adm.OrderedList{Items: []adm.Value{adm.Int32(1), adm.Null{}, adm.String("x")}},
		&adm.UnorderedList{Items: []adm.Value{adm.Double(3.14), adm.Missing{}}},
	}
}

func roundTrip(t *testing.T, tuples []hyracks.Tuple) []hyracks.Tuple {
	t.Helper()
	payload, err := encodeTuples(nil, tuples)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeTuples(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func sameTuples(t *testing.T, got, want []hyracks.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("tuple count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("tuple %d: column count got %d, want %d", i, len(got[i]), len(want[i]))
		}
		for c := range want[i] {
			if (got[i][c] == nil) != (want[i][c] == nil) {
				t.Fatalf("tuple %d col %d: nil-ness differs", i, c)
			}
			if want[i][c] == nil {
				continue
			}
			g := string(adm.AppendJSON(nil, got[i][c]))
			w := string(adm.AppendJSON(nil, want[i][c]))
			if g != w || got[i][c].Tag() != want[i][c].Tag() {
				t.Fatalf("tuple %d col %d: got %s (%v), want %s (%v)", i, c, g, got[i][c].Tag(), w, want[i][c].Tag())
			}
		}
	}
}

// TestWireCodecAllKinds round-trips one tuple containing every adm value
// kind, a nil column, and the empty-frame / empty-tuple edge cases.
func TestWireCodecAllKinds(t *testing.T) {
	kinds := allKindValues()
	one := make(hyracks.Tuple, 0, len(kinds)+1)
	one = append(one, kinds...)
	one = append(one, nil) // absent column
	cases := [][]hyracks.Tuple{
		{one},
		{},                  // empty frame
		{{}},                // empty tuple
		{{nil}, {nil, nil}}, // nil-only tuples
	}
	for _, tuples := range cases {
		sameTuples(t, roundTrip(t, tuples), tuples)
	}
}

// randomValue generates an arbitrary adm value, recursing into structured
// kinds up to the given depth.
func randomValue(rng *rand.Rand, depth int) adm.Value {
	kinds := allKindValues()
	if depth > 0 && rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			n := rng.Intn(4)
			fields := make([]adm.Field, n)
			for i := range fields {
				fields[i] = adm.Field{Name: string(rune('a' + i)), Value: randomValue(rng, depth-1)}
			}
			return adm.NewRecord(fields...)
		case 1:
			n := rng.Intn(4)
			items := make([]adm.Value, n)
			for i := range items {
				items[i] = randomValue(rng, depth-1)
			}
			return &adm.OrderedList{Items: items}
		default:
			n := rng.Intn(4)
			items := make([]adm.Value, n)
			for i := range items {
				items[i] = randomValue(rng, depth-1)
			}
			return &adm.UnorderedList{Items: items}
		}
	}
	return kinds[rng.Intn(len(kinds))]
}

// TestWireCodecRandomTuples is the property test: arbitrary frames of
// arbitrary nested values round-trip exactly.
func TestWireCodecRandomTuples(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		tuples := make([]hyracks.Tuple, rng.Intn(6))
		for i := range tuples {
			tuples[i] = make(hyracks.Tuple, rng.Intn(5))
			for c := range tuples[i] {
				if rng.Intn(8) == 0 {
					continue // nil column
				}
				tuples[i][c] = randomValue(rng, 3)
			}
		}
		sameTuples(t, roundTrip(t, tuples), tuples)
	}
}

// TestWireCodecTruncation checks that every strict prefix of a valid payload
// decodes to a typed error — never a panic, never a silent partial frame.
func TestWireCodecTruncation(t *testing.T) {
	tuples := []hyracks.Tuple{append(hyracks.Tuple{nil}, allKindValues()...)}
	payload, err := encodeTuples(nil, tuples)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(payload); n++ {
		if _, err := decodeTuples(payload[:n]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", n, len(payload))
		} else if asterixdb.ErrorCode(err) != asterixdb.CodeInvalid {
			t.Fatalf("truncation at %d: error %v has code %q, want %q", n, err, asterixdb.ErrorCode(err), asterixdb.CodeInvalid)
		}
	}
}

// TestReadRecordTruncation checks the record framing layer: every strict
// prefix of a valid record stream errors out (io.ErrUnexpectedEOF or a typed
// error) instead of short-reading or blocking.
func TestReadRecordTruncation(t *testing.T) {
	var buf bytes.Buffer
	payload, err := encodeTuples(nil, []hyracks.Tuple{{adm.Int64(1), adm.String("x")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeRecord(&buf, recFrame, 3, 0, payload); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		br := bufio.NewReader(bytes.NewReader(full[:n]))
		if _, _, _, _, err := readRecord(br); err == nil {
			t.Fatalf("record prefix of %d/%d bytes read without error", n, len(full))
		}
	}
	// The full record reads back intact.
	br := bufio.NewReader(bytes.NewReader(full))
	kind, a, _, got, err := readRecord(br)
	if err != nil || kind != recFrame || a != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("full record: kind=%d a=%d err=%v", kind, a, err)
	}
}

// TestReadRecordHostileLength checks that a length prefix beyond the wire
// cap errors before any allocation it would size.
func TestReadRecordHostileLength(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteByte(recFrame)
	buf.Write([]byte{0, 0})                                     // a, b
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // huge payload length
	br := bufio.NewReader(bytes.NewReader(buf.Bytes()))
	_, _, _, _, err := readRecord(br)
	var ae *asterixdb.Error
	if !errors.As(err, &ae) || ae.Code != asterixdb.CodeInvalid {
		t.Fatalf("hostile length error = %v, want typed %q", err, asterixdb.CodeInvalid)
	}
}

// FuzzFrameCodec drives decodeTuples with arbitrary bytes: it must never
// panic, and anything it accepts must re-encode and decode to the same
// frame (the codec is canonical).
func FuzzFrameCodec(f *testing.F) {
	seed := [][]hyracks.Tuple{
		{},
		{{}},
		{{nil}},
		{append(hyracks.Tuple{nil}, allKindValues()...)},
		{{adm.Int64(1)}, {adm.String("two"), nil, adm.Double(3)}},
	}
	for _, tuples := range seed {
		payload, err := encodeTuples(nil, tuples)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		tuples, err := decodeTuples(payload)
		if err != nil {
			var ae *asterixdb.Error
			if !errors.As(err, &ae) {
				t.Fatalf("decode error is not typed: %v", err)
			}
			return
		}
		re, err := encodeTuples(nil, tuples)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		again, err := decodeTuples(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(tuples) {
			t.Fatalf("re-decode tuple count %d != %d", len(again), len(tuples))
		}
	})
}
