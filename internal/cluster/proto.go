package cluster

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"asterixdb"
)

// Control-plane message types. The control plane is newline-delimited JSON
// over a single TCP connection per node controller, dialed NC -> CC.
const (
	msgRegister = "register" // NC -> CC: node name + data-plane address
	msgReady    = "ready"    // CC -> NC: cluster formed; sorted node list
	msgStmt     = "stmt"     // CC -> NC: execute statements (DDL/DML)
	msgStmtAck  = "stmt_ack" // NC -> CC: statement result
	msgJob      = "job"      // CC -> NC: prepare a job (leading stmts + compile)
	msgJobAck   = "job_ack"  // NC -> CC: job registered (or compile error)
	msgGo       = "go"       // CC -> NC: start the prepared job
	msgCancel   = "cancel"   // CC -> NC: abort a job
	msgPing     = "ping"     // CC -> NC heartbeat
	msgPong     = "pong"     // NC -> CC heartbeat reply
)

// nodeInfo describes one node controller to the rest of the cluster.
type nodeInfo struct {
	Name     string `json:"name"`
	DataAddr string `json:"dataAddr"`
}

// wireError ships a typed asterixdb error across a connection.
type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func toWireError(err error) *wireError {
	if err == nil {
		return nil
	}
	return &wireError{Code: asterixdb.ErrorCode(err), Message: err.Error()}
}

func (w *wireError) Err() error {
	if w == nil {
		return nil
	}
	return &asterixdb.Error{Code: w.Code, Message: w.Message}
}

// ctrlMsg is the single envelope for every control-plane message; unused
// fields are omitted per type.
type ctrlMsg struct {
	Type       string     `json:"type"`
	Node       string     `json:"node,omitempty"`
	DataAddr   string     `json:"dataAddr,omitempty"`
	Partitions int        `json:"partitions,omitempty"`
	Nodes      []nodeInfo `json:"nodes,omitempty"`
	ID         string     `json:"id,omitempty"`
	Src        string     `json:"src,omitempty"`
	Kind       string     `json:"kind,omitempty"`
	Count      int        `json:"count,omitempty"`
	// Profile, on a job message, asks the node to run its slice with
	// per-operator instrumentation and ship the profile back with the
	// result stream.
	Profile bool       `json:"profile,omitempty"`
	Err     *wireError `json:"err,omitempty"`
}

// ctrlConn wraps a control-plane connection: serialized line writes with a
// per-write deadline, and line reads with a liveness deadline.
type ctrlConn struct {
	conn net.Conn
	br   *bufio.Reader

	writeMu      sync.Mutex
	writeTimeout time.Duration
}

func newCtrlConn(conn net.Conn, writeTimeout time.Duration) *ctrlConn {
	return &ctrlConn{conn: conn, br: bufio.NewReader(conn), writeTimeout: writeTimeout}
}

// write sends one message under the connection's write mutex and deadline.
func (c *ctrlConn) write(m ctrlMsg) error {
	buf, err := json.Marshal(m)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.writeTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return err
		}
	}
	_, err = c.conn.Write(buf)
	return err
}

// read returns the next message, enforcing the given liveness deadline: a
// peer that sends nothing (not even heartbeats) within it is considered
// dead.
func (c *ctrlConn) read(timeout time.Duration) (ctrlMsg, error) {
	if timeout > 0 {
		if err := c.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return ctrlMsg{}, err
		}
	}
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return ctrlMsg{}, err
	}
	var m ctrlMsg
	if err := json.Unmarshal(line, &m); err != nil {
		return ctrlMsg{}, corruptf("cluster: bad control message: %v", err)
	}
	return m, nil
}

func (c *ctrlConn) Close() error { return c.conn.Close() }

// unavailablef mints the typed error surfaced when a node or the cluster as
// a whole cannot serve a request.
func unavailablef(format string, args ...any) error {
	return &asterixdb.Error{Code: asterixdb.CodeUnavailable, Message: fmt.Sprintf(format, args...)}
}
