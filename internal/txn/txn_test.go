package txn

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestLockManagerExclusion(t *testing.T) {
	lm := NewLockManager()
	key := []byte("pk-1")
	lm.Lock(1, key)
	if !lm.Held(key) {
		t.Fatal("lock should be held")
	}
	// A second transaction must block until the first releases.
	var acquired atomic.Bool
	done := make(chan struct{})
	go func() {
		lm.Lock(2, key)
		acquired.Store(true)
		lm.Unlock(2, key)
		close(done)
	}()
	if acquired.Load() {
		t.Fatal("second transaction acquired the lock while held")
	}
	lm.Unlock(1, key)
	<-done
	if !acquired.Load() {
		t.Fatal("waiter never acquired the lock")
	}
	if lm.Held(key) {
		t.Error("lock should be free after both transactions")
	}
}

func TestLockManagerReentrantAndUnheldUnlock(t *testing.T) {
	lm := NewLockManager()
	key := []byte("k")
	lm.Lock(7, key)
	lm.Lock(7, key) // re-acquire by the same transaction is a no-op
	lm.Unlock(99, key)
	if !lm.Held(key) {
		t.Error("unlock by a non-holder must not release the lock")
	}
	lm.Unlock(7, key)
	if lm.Held(key) {
		t.Error("lock should be released")
	}
}

func TestLockManagerConcurrentCounter(t *testing.T) {
	lm := NewLockManager()
	key := []byte("counter")
	counter := 0
	var wg sync.WaitGroup
	const workers = 16
	const iters = 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tid := ID(id*1000 + i + 1)
				lm.Lock(tid, key)
				counter++
				lm.Unlock(tid, key)
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*iters {
		t.Errorf("counter = %d, want %d (lost updates)", counter, workers*iters)
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	t1 := w.Begin()
	w.Append(LogRecord{Txn: t1, Kind: OpInsert, Dataset: "D", Partition: 2, Key: []byte("k1"), Value: []byte("v1")})
	if err := w.Commit(t1); err != nil {
		t.Fatal(err)
	}
	// An uncommitted transaction: its operations must not be replayed.
	t2 := w.Begin()
	w.Append(LogRecord{Txn: t2, Kind: OpInsert, Dataset: "D", Partition: 0, Key: []byte("k2"), Value: []byte("v2")})
	t3 := w.Begin()
	w.Append(LogRecord{Txn: t3, Kind: OpDelete, Dataset: "D", Partition: 1, Key: []byte("k3")})
	w.Commit(t3)
	w.Close()

	w2, err := OpenWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var replayed []LogRecord
	if err := w2.Replay(func(rec LogRecord) error {
		replayed = append(replayed, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(replayed) != 2 {
		t.Fatalf("replayed %d records, want 2 (uncommitted ops skipped)", len(replayed))
	}
	if replayed[0].Kind != OpInsert || string(replayed[0].Key) != "k1" || string(replayed[0].Value) != "v1" || replayed[0].Partition != 2 {
		t.Errorf("record 0 = %+v", replayed[0])
	}
	if replayed[1].Kind != OpDelete || string(replayed[1].Key) != "k3" {
		t.Errorf("record 1 = %+v", replayed[1])
	}
	// New transaction ids continue after the replayed ones.
	if id := w2.Begin(); id <= t3 {
		t.Errorf("Begin after replay = %d, want > %d", id, t3)
	}
}

func TestWALTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tid := w.Begin()
	w.Append(LogRecord{Txn: tid, Kind: OpInsert, Dataset: "D", Key: []byte("k"), Value: []byte("v")})
	w.Commit(tid)
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := w.Replay(func(LogRecord) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("replayed %d records after truncate", count)
	}
}

func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	tid := w.Begin()
	w.Append(LogRecord{Txn: tid, Kind: OpInsert, Dataset: "D", Key: []byte("k"), Value: []byte("v")})
	w.Commit(tid)
	// Simulate a torn write at the tail of the log.
	w.file.Write([]byte{0x55, 0x01})
	w.Close()

	w2, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	count := 0
	if err := w2.Replay(func(LogRecord) error { count++; return nil }); err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	if count != 1 {
		t.Errorf("replayed %d records, want 1", count)
	}
}

func TestLogRecordRoundTrip(t *testing.T) {
	rec := LogRecord{Txn: 42, Kind: OpInsert, Dataset: "MugshotUsers", Partition: 3, Key: []byte{1, 2, 3}, Value: []byte("payload")}
	buf := encodeLogRecord(rec)
	records, committed, err := decodeLog(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 {
		t.Fatalf("decoded %d records", len(records))
	}
	got := records[0]
	if got.Txn != rec.Txn || got.Kind != rec.Kind || got.Dataset != rec.Dataset ||
		got.Partition != rec.Partition || string(got.Key) != string(rec.Key) || string(got.Value) != string(rec.Value) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if len(committed) != 0 {
		t.Error("no commit records were written")
	}
}
