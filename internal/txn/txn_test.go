package txn

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestLockManagerExclusion(t *testing.T) {
	lm := NewLockManager()
	key := []byte("pk-1")
	lm.Lock(1, key)
	if !lm.Held(key) {
		t.Fatal("lock should be held")
	}
	// A second transaction must block until the first releases.
	var acquired atomic.Bool
	done := make(chan struct{})
	go func() {
		lm.Lock(2, key)
		acquired.Store(true)
		lm.Unlock(2, key)
		close(done)
	}()
	if acquired.Load() {
		t.Fatal("second transaction acquired the lock while held")
	}
	lm.Unlock(1, key)
	<-done
	if !acquired.Load() {
		t.Fatal("waiter never acquired the lock")
	}
	if lm.Held(key) {
		t.Error("lock should be free after both transactions")
	}
}

func TestLockManagerReentrantAndUnheldUnlock(t *testing.T) {
	lm := NewLockManager()
	key := []byte("k")
	lm.Lock(7, key)
	lm.Lock(7, key) // re-acquire by the same transaction is a no-op
	lm.Unlock(99, key)
	if !lm.Held(key) {
		t.Error("unlock by a non-holder must not release the lock")
	}
	lm.Unlock(7, key)
	if lm.Held(key) {
		t.Error("lock should be released")
	}
}

func TestLockManagerConcurrentCounter(t *testing.T) {
	lm := NewLockManager()
	key := []byte("counter")
	counter := 0
	var wg sync.WaitGroup
	const workers = 16
	const iters = 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				tid := ID(id*1000 + i + 1)
				lm.Lock(tid, key)
				counter++
				lm.Unlock(tid, key)
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*iters {
		t.Errorf("counter = %d, want %d (lost updates)", counter, workers*iters)
	}
}

func TestWALAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	t1 := w.Begin()
	w.Append(LogRecord{Txn: t1, Kind: OpInsert, Dataset: "D", Partition: 2, Key: []byte("k1"), Value: []byte("v1")})
	if err := w.Commit(t1); err != nil {
		t.Fatal(err)
	}
	// An uncommitted transaction: its operations must not be replayed.
	t2 := w.Begin()
	w.Append(LogRecord{Txn: t2, Kind: OpInsert, Dataset: "D", Partition: 0, Key: []byte("k2"), Value: []byte("v2")})
	t3 := w.Begin()
	w.Append(LogRecord{Txn: t3, Kind: OpDelete, Dataset: "D", Partition: 1, Key: []byte("k3")})
	w.Commit(t3)
	w.Close()

	w2, err := OpenWAL(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var replayed []LogRecord
	stats, err := w2.Replay(func(_ uint64, rec LogRecord) error {
		replayed = append(replayed, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 2 || stats.Records != 3 {
		t.Errorf("stats = %+v, want Applied=2 Records=3", stats)
	}
	if len(replayed) != 2 {
		t.Fatalf("replayed %d records, want 2 (uncommitted ops skipped)", len(replayed))
	}
	if replayed[0].Kind != OpInsert || string(replayed[0].Key) != "k1" || string(replayed[0].Value) != "v1" || replayed[0].Partition != 2 {
		t.Errorf("record 0 = %+v", replayed[0])
	}
	if replayed[1].Kind != OpDelete || string(replayed[1].Key) != "k3" {
		t.Errorf("record 1 = %+v", replayed[1])
	}
	// New transaction ids continue after the replayed ones.
	if id := w2.Begin(); id <= t3 {
		t.Errorf("Begin after replay = %d, want > %d", id, t3)
	}
}

func TestWALTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tid := w.Begin()
	w.Append(LogRecord{Txn: tid, Kind: OpInsert, Dataset: "D", Key: []byte("k"), Value: []byte("v")})
	w.Commit(tid)
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	count := 0
	if _, err := w.Replay(func(uint64, LogRecord) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Errorf("replayed %d records after truncate", count)
	}
}

func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	tid := w.Begin()
	w.Append(LogRecord{Txn: tid, Kind: OpInsert, Dataset: "D", Key: []byte("k"), Value: []byte("v")})
	w.Commit(tid)
	// Simulate a torn write at the tail of the log.
	w.file.WriteAt([]byte{0x55, 0x01}, w.size)
	w.Close()

	w2, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	count := 0
	if _, err := w2.Replay(func(uint64, LogRecord) error { count++; return nil }); err != nil {
		t.Fatalf("replay with torn tail: %v", err)
	}
	if count != 1 {
		t.Errorf("replayed %d records, want 1", count)
	}
}

func TestLogRecordRoundTrip(t *testing.T) {
	rec := LogRecord{Txn: 42, Kind: OpInsert, Dataset: "MugshotUsers", Index: "sk_idx", Partition: 3, Key: []byte{1, 2, 3}, Value: []byte("payload")}
	buf := encodeLogRecord(rec)
	records, lsns, committed, goodLen := decodeLog(buf, 7)
	if len(records) != 1 {
		t.Fatalf("decoded %d records", len(records))
	}
	if goodLen != int64(len(buf)) {
		t.Errorf("goodLen = %d, want %d", goodLen, len(buf))
	}
	if len(lsns) != 1 || lsns[0] != 7 {
		t.Errorf("lsns = %v, want [7]", lsns)
	}
	got := records[0]
	if got.Txn != rec.Txn || got.Kind != rec.Kind || got.Dataset != rec.Dataset || got.Index != rec.Index ||
		got.Partition != rec.Partition || string(got.Key) != string(rec.Key) || string(got.Value) != string(rec.Value) {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if len(committed) != 0 {
		t.Error("no commit records were written")
	}
}

func TestWALCRCFlippedByte(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	var offsets []int64
	for i := 0; i < 3; i++ {
		offsets = append(offsets, w.size)
		tid := w.Begin()
		w.Append(LogRecord{Txn: tid, Kind: OpInsert, Dataset: "D", Key: []byte{byte(i)}, Value: []byte("v")})
		w.Commit(tid)
	}
	// Flip one byte inside the second record's payload: the frame length
	// still parses, so only the CRC can catch it.
	var b [1]byte
	corruptAt := offsets[1] + 3
	if _, err := w.file.ReadAt(b[:], corruptAt); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := w.file.WriteAt(b[:], corruptAt); err != nil {
		t.Fatal(err)
	}
	w.Close()

	w2, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var warned bool
	w2.Warnf = func(string, ...any) { warned = true }
	count := 0
	stats, err := w2.Replay(func(uint64, LogRecord) error { count++; return nil })
	if err != nil {
		t.Fatalf("replay with corrupt record: %v", err)
	}
	if count != 1 {
		t.Errorf("replayed %d records, want 1 (log truncated at first bad record)", count)
	}
	if !warned {
		t.Error("corruption did not produce a warning")
	}
	if stats.TruncatedAt == 0 {
		t.Error("stats.TruncatedAt = 0, want the corruption LSN")
	}
	// The file was physically truncated: a second replay is clean.
	w2.Warnf = func(format string, args ...any) { t.Errorf("unexpected warning: "+format, args...) }
	count = 0
	if _, err := w2.Replay(func(uint64, LogRecord) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Errorf("second replay saw %d records, want 1", count)
	}
	// And the truncated log accepts new appends cleanly.
	tid := w2.Begin()
	if _, err := w2.Append(LogRecord{Txn: tid, Kind: OpInsert, Dataset: "D", Key: []byte("new")}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Commit(tid); err != nil {
		t.Fatal(err)
	}
	count = 0
	if _, err := w2.Replay(func(uint64, LogRecord) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("after append, replay saw %d records, want 2", count)
	}
}

func TestWALLowWaterTracksInflightAppends(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.LowWater() != w.End() {
		t.Fatalf("idle LowWater = %d, want End = %d", w.LowWater(), w.End())
	}
	tid := w.Begin()
	lsns, release, err := w.AppendGroup([]LogRecord{
		{Txn: tid, Kind: OpInsert, Dataset: "D", Key: []byte("a")},
		{Txn: tid, Kind: OpInsert, Dataset: "D", Index: "ix", Key: []byte("b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lsns) != 2 || lsns[1] <= lsns[0] {
		t.Fatalf("lsns = %v, want two increasing", lsns)
	}
	// While the group is unapplied, LowWater must not advance past it even
	// though later records exist.
	if _, err := w.Append(LogRecord{Txn: tid, Kind: OpCommit}); err != nil {
		t.Fatal(err)
	}
	if got := w.LowWater(); got != lsns[0] {
		t.Errorf("LowWater with in-flight group = %d, want %d", got, lsns[0])
	}
	release()
	release() // idempotent
	if got, end := w.LowWater(), w.End(); got != end {
		t.Errorf("LowWater after release = %d, want End = %d", got, end)
	}
}

func TestWALCompactKeepsSuffixAndBase(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	for i := 0; i < 4; i++ {
		tid := w.Begin()
		lsn, err := w.Append(LogRecord{Txn: tid, Kind: OpInsert, Dataset: "D", Key: []byte{byte(i)}})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
		w.Commit(tid)
	}
	if err := w.Compact(lsns[2]); err != nil {
		t.Fatal(err)
	}
	var keys []byte
	var gotLSNs []uint64
	if _, err := w.Replay(func(lsn uint64, rec LogRecord) error {
		keys = append(keys, rec.Key[0])
		gotLSNs = append(gotLSNs, lsn)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if string(keys) != string([]byte{2, 3}) {
		t.Errorf("after compact, replayed keys %v, want [2 3]", keys)
	}
	if len(gotLSNs) != 2 || gotLSNs[0] != lsns[2] || gotLSNs[1] != lsns[3] {
		t.Errorf("after compact, LSNs %v, want [%d %d] (stable across compaction)", gotLSNs, lsns[2], lsns[3])
	}
	w.Close()

	// LSNs survive a reopen too: the base lives in the file header.
	w2, err := OpenWAL(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	gotLSNs = nil
	if _, err := w2.Replay(func(lsn uint64, _ LogRecord) error {
		gotLSNs = append(gotLSNs, lsn)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(gotLSNs) != 2 || gotLSNs[0] != lsns[2] {
		t.Errorf("after reopen, LSNs %v, want first = %d", gotLSNs, lsns[2])
	}
	if w2.End() != w.End() {
		t.Errorf("End after reopen = %d, want %d", w2.End(), w.End())
	}
}
