// Package txn provides AsterixDB's record-level transaction support
// (Section 4.4 of the paper): a node-local lock manager used for primary-key
// locks, a write-ahead log with LSM-index-level logical log records under a
// no-steal/no-force policy, and log-replay recovery that cooperates with the
// LSM components' validity-bit shadowing.
package txn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sync"

	"asterixdb/internal/crashpoint"
	"asterixdb/internal/fsutil"
)

// ID identifies one record-level transaction.
type ID uint64

// LockManager implements node-local two-phase locking on primary keys.
// Locks are exclusive: AsterixDB only locks for modifications of primary
// indexes, and record-level transactions touch a single key, so shared locks
// and deadlock detection are unnecessary (lock acquisition is totally ordered
// per key and each transaction holds at most a handful of locks).
type LockManager struct {
	mu    sync.Mutex
	locks map[string]*lockEntry
}

type lockEntry struct {
	holder  ID
	waiters []chan struct{}
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	return &LockManager{locks: map[string]*lockEntry{}}
}

// Lock acquires the exclusive lock on key for txn, blocking until available.
// Re-acquiring a lock already held by the same transaction is a no-op.
func (lm *LockManager) Lock(txn ID, key []byte) {
	k := string(key)
	for {
		lm.mu.Lock()
		entry, held := lm.locks[k]
		if !held {
			lm.locks[k] = &lockEntry{holder: txn}
			lm.mu.Unlock()
			return
		}
		if entry.holder == txn {
			lm.mu.Unlock()
			return
		}
		wait := make(chan struct{})
		entry.waiters = append(entry.waiters, wait)
		lm.mu.Unlock()
		<-wait
	}
}

// Unlock releases the lock on key held by txn. Releasing a lock that is not
// held is a no-op (it can happen when a transaction aborts before acquiring).
func (lm *LockManager) Unlock(txn ID, key []byte) {
	k := string(key)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	entry, held := lm.locks[k]
	if !held || entry.holder != txn {
		return
	}
	delete(lm.locks, k)
	for _, w := range entry.waiters {
		close(w)
	}
}

// Held reports whether any transaction currently holds a lock on key.
func (lm *LockManager) Held(key []byte) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	_, held := lm.locks[string(key)]
	return held
}

// ----------------------------------------------------------------------------
// Write-ahead log
// ----------------------------------------------------------------------------

// OpKind is the kind of a logical log record.
type OpKind uint8

// Logical operation kinds. Each corresponds to one LSM-index-level update,
// matching the paper's "each LSM-index-level update operation generates a
// single log record".
const (
	OpInsert OpKind = iota + 1
	OpDelete
	OpCommit
)

// LogRecord is one entry in the WAL.
type LogRecord struct {
	Txn       ID
	Kind      OpKind
	Dataset   string
	Partition int
	// Index names the secondary index this record targets; empty means the
	// primary index. One dataset operation logs one record per LSM index it
	// touches (the paper's LSM-index-level logging), carrying the exact
	// derived key bytes so recovery never re-derives secondary entries from
	// a primary state that may reflect a different flush boundary.
	Index string
	Key   []byte
	Value []byte
}

// walMagic identifies a WAL file; the 8 bytes after it hold the base LSN of
// the first record (little-endian). Compaction rewrites the file with a
// higher base, so LSNs are stable across the file's lifetime.
var walMagic = []byte("AWALV001")

const walHeaderLen = 16

// WAL is an append-only write-ahead log. Writes follow the WAL protocol: the
// storage layer appends the logical record (and the commit record) before the
// in-memory component is modified and before the statement returns.
//
// Every record is assigned a log sequence number (LSN): a byte position in
// the log's address space that survives compaction. LSNs order log records
// against LSM component flushes — a component stamped with LSN s contains
// the effects of every operation with LSN < s.
type WAL struct {
	mu      sync.Mutex
	path    string
	file    *os.File
	base    uint64 // LSN of the first byte after the header
	size    int64  // current file size including header
	nextTxn ID
	// journaled controls whether every commit is fsync'd. It mirrors the
	// "write concern: journaled" durability setting used for the insert
	// comparison in Table 4.
	journaled bool
	// inflight holds LSNs of records appended but not yet applied to their
	// in-memory components. LowWater uses it to bound flush stamps: a flush
	// that starts between a record's append and its apply must not claim to
	// contain it.
	inflight map[uint64]int
	// Warnf receives corruption warnings during Replay. Nil means log.Printf.
	// Set it before the WAL is shared across goroutines.
	Warnf func(format string, args ...any)
}

// OpenWAL opens (or creates) the log file in dir.
func OpenWAL(dir string, journaled bool) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("txn: open wal: %w", err)
	}
	path := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("txn: open wal: %w", err)
	}
	w := &WAL{path: path, file: f, nextTxn: 1, journaled: journaled, inflight: map[uint64]int{}}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("txn: open wal: %w", err)
	}
	switch {
	case st.Size() < walHeaderLen:
		// Fresh log, or a crash mid-header-write: no record was ever
		// appended (appends require a complete header), so start over.
		if err := w.writeHeader(0); err != nil {
			f.Close()
			return nil, err
		}
	default:
		var hdr [walHeaderLen]byte
		if _, err := f.ReadAt(hdr[:], 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("txn: read wal header: %w", err)
		}
		if !bytes.Equal(hdr[:len(walMagic)], walMagic) {
			f.Close()
			return nil, fmt.Errorf("txn: %s is not a WAL file (bad magic)", path)
		}
		w.base = binary.LittleEndian.Uint64(hdr[len(walMagic):])
		w.size = st.Size()
	}
	return w, nil
}

// writeHeader truncates the file to a bare header with the given base LSN.
// Caller holds w.mu (or the WAL is not yet shared).
func (w *WAL) writeHeader(base uint64) error {
	var hdr [walHeaderLen]byte
	copy(hdr[:], walMagic)
	binary.LittleEndian.PutUint64(hdr[len(walMagic):], base)
	if err := w.file.Truncate(0); err != nil {
		return fmt.Errorf("txn: wal header: %w", err)
	}
	if _, err := w.file.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("txn: wal header: %w", err)
	}
	w.base = base
	w.size = walHeaderLen
	return nil
}

// Begin allocates a transaction id.
func (w *WAL) Begin() ID {
	w.mu.Lock()
	defer w.mu.Unlock()
	id := w.nextTxn
	w.nextTxn++
	return id
}

// End returns the LSN one past the last appended record — the LSN the next
// record will receive.
func (w *WAL) End() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.endLocked()
}

func (w *WAL) endLocked() uint64 {
	return w.base + uint64(w.size-walHeaderLen)
}

// LowWater returns a lower bound on the LSNs of operations not yet applied
// to in-memory components: the smallest in-flight append LSN, or End() when
// nothing is in flight. Every operation with LSN < LowWater() has been
// applied, so LowWater is the correct stamp for a flush or checkpoint
// watermark taken at this instant.
func (w *WAL) LowWater() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	low := w.endLocked()
	for lsn := range w.inflight {
		if lsn < low {
			low = lsn
		}
	}
	return low
}

// SizeBytes returns the number of record bytes in the log (excluding the
// header) — the quantity a WAL-size checkpoint trigger watches.
func (w *WAL) SizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size - walHeaderLen
}

// Append writes a log record and returns its LSN.
func (w *WAL) Append(rec LogRecord) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appendLocked(rec)
}

func (w *WAL) appendLocked(rec LogRecord) (uint64, error) {
	lsn := w.endLocked()
	buf := encodeLogRecord(rec)
	if _, err := w.file.WriteAt(buf, w.size); err != nil {
		return 0, fmt.Errorf("txn: wal append: %w", err)
	}
	w.size += int64(len(buf))
	crashpoint.Hit("wal-append")
	return lsn, nil
}

// AppendGroup appends the records of one record-level transaction and marks
// their LSNs in flight until release is called. The caller appends, applies
// the records to the in-memory components, then releases: a concurrent flush
// stamping itself with LowWater() can then never claim an applied-later
// record. release is idempotent and must be called exactly once per group on
// every path (including errors after a successful append).
func (w *WAL) AppendGroup(recs []LogRecord) (lsns []uint64, release func(), err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	lsns = make([]uint64, 0, len(recs))
	for _, rec := range recs {
		lsn, err := w.appendLocked(rec)
		if err != nil {
			w.releaseLocked(lsns)
			return nil, nil, err
		}
		lsns = append(lsns, lsn)
		w.inflight[lsn]++
	}
	released := false
	release = func() {
		w.mu.Lock()
		defer w.mu.Unlock()
		if released {
			return
		}
		released = true
		w.releaseLocked(lsns)
	}
	return lsns, release, nil
}

func (w *WAL) releaseLocked(lsns []uint64) {
	for _, lsn := range lsns {
		if w.inflight[lsn] > 1 {
			w.inflight[lsn]--
		} else {
			delete(w.inflight, lsn)
		}
	}
}

// Commit writes the commit record for txn and, when journaled, syncs the log
// to stable storage before returning.
func (w *WAL) Commit(txn ID) error {
	if err := w.CommitNoSync(txn); err != nil {
		return err
	}
	return w.Sync()
}

// CommitNoSync writes the commit record without forcing it to stable storage.
// Batched statements commit each record-level transaction this way and call
// Sync once at the end, which is the mechanism behind the Table 4 batching
// speed-up.
func (w *WAL) CommitNoSync(txn ID) error {
	_, err := w.Append(LogRecord{Txn: txn, Kind: OpCommit})
	return err
}

// Sync forces the log to stable storage when the WAL is journaled.
func (w *WAL) Sync() error {
	if !w.journaled {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.file.Sync(); err != nil {
		return err
	}
	crashpoint.Hit("wal-sync")
	return nil
}

// Close closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.file.Close()
}

// Truncate empties the log, preserving the LSN address space (the new base
// is the current end). The storage layer calls it after all datasets have
// flushed their in-memory components (a checkpoint): everything the log
// protects is then inside valid disk components.
func (w *WAL) Truncate() error {
	return w.Compact(w.End())
}

// Compact atomically discards every record with LSN < keep: the retained
// suffix is rewritten to a temp file with an updated base and renamed over
// the log. The caller guarantees that discarded records are durable in
// flushed components (keep must not exceed any component stamp it protects).
// keep is clamped to [base, End()] and always lands on a record boundary
// because LSNs are assigned at record starts.
func (w *WAL) Compact(keep uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if end := w.endLocked(); keep > end {
		keep = end
	}
	if keep <= w.base {
		return nil // nothing to discard
	}
	suffixLen := w.size - walHeaderLen - int64(keep-w.base)
	buf := make([]byte, walHeaderLen+suffixLen)
	copy(buf, walMagic)
	binary.LittleEndian.PutUint64(buf[len(walMagic):], keep)
	if suffixLen > 0 {
		if _, err := w.file.ReadAt(buf[walHeaderLen:], walHeaderLen+int64(keep-w.base)); err != nil {
			return fmt.Errorf("txn: wal compact: %w", err)
		}
	}
	crashpoint.Hit("wal-compact-pre")
	if err := fsutil.WriteFileAtomic(w.path, buf, 0o644); err != nil {
		return fmt.Errorf("txn: wal compact: %w", err)
	}
	crashpoint.Hit("wal-compact-post")
	// The old fd points at the unlinked inode; reopen the renamed file.
	f, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("txn: wal compact reopen: %w", err)
	}
	w.file.Close()
	w.file = f
	w.base = keep
	w.size = int64(len(buf))
	return nil
}

// ReplayStats summarizes one Replay pass for the recovery metrics.
type ReplayStats struct {
	// Records is the number of operation records decoded (commit records and
	// uncommitted operations excluded from Applied but included here).
	Records int
	// Applied is the number of committed operation records handed to apply.
	Applied int
	// TruncatedAt is the LSN at which a corrupt record was found and the log
	// was truncated; zero when the log was clean.
	TruncatedAt uint64
}

// Replay reads the log and invokes apply for every operation belonging to a
// committed transaction, in log order, passing each record's LSN. Operations
// of uncommitted transactions are ignored (no-steal means they can never
// have reached disk). A record whose CRC does not match is treated as the
// end of the log: everything from it onward is discarded and the file is
// truncated at the last good record, with a warning — a torn tail write and
// mid-log bit rot look the same to recovery.
//
// The log is read and decoded under the WAL latch, but apply runs after it
// is released: apply re-enters the storage layer, and a caller-supplied
// callback must never run under a lock it did not take itself (the
// ScanPartition deadlock class).
func (w *WAL) Replay(apply func(lsn uint64, rec LogRecord) error) (ReplayStats, error) {
	var stats ReplayStats
	w.mu.Lock()
	data, err := os.ReadFile(w.path)
	if err != nil {
		w.mu.Unlock()
		return stats, err
	}
	if len(data) < walHeaderLen {
		w.mu.Unlock()
		return stats, nil
	}
	records, lsns, committed, goodLen := decodeLog(data[walHeaderLen:], w.base)
	if goodLen < int64(len(data))-walHeaderLen {
		stats.TruncatedAt = w.base + uint64(goodLen)
		w.warnf("txn: wal corrupt at lsn %d: truncating %d byte(s)",
			stats.TruncatedAt, int64(len(data))-walHeaderLen-goodLen)
		if err := w.file.Truncate(walHeaderLen + goodLen); err != nil {
			w.mu.Unlock()
			return stats, fmt.Errorf("txn: wal truncate after corruption: %w", err)
		}
		// Make the truncate durable: without it, a crash during recovery
		// could resurrect the corrupt bytes (harmless but inconsistent with
		// the fsync discipline everywhere else in this file).
		if err := w.file.Sync(); err != nil {
			w.mu.Unlock()
			return stats, fmt.Errorf("txn: wal sync after corruption truncate: %w", err)
		}
		w.size = walHeaderLen + goodLen
	}
	maxTxn := w.nextTxn
	for _, rec := range records {
		if rec.Txn >= maxTxn {
			maxTxn = rec.Txn + 1
		}
	}
	w.nextTxn = maxTxn
	w.mu.Unlock()
	for i, rec := range records {
		if rec.Kind == OpCommit {
			continue
		}
		stats.Records++
		if !committed[rec.Txn] {
			continue
		}
		stats.Applied++
		if err := apply(lsns[i], rec); err != nil {
			return stats, err
		}
	}
	return stats, nil
}

func (w *WAL) warnf(format string, args ...any) {
	if w.Warnf != nil {
		w.Warnf(format, args...)
		return
	}
	log.Printf(format, args...)
}

var crcTable = crc32.MakeTable(crc32.IEEE)

// encodeLogRecord frames a record as uvarint(len) ‖ payload ‖ crc32(payload).
// The length bounds a torn tail; the CRC catches bit corruption inside an
// intact-looking frame.
func encodeLogRecord(rec LogRecord) []byte {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	writeUvarint(uint64(rec.Txn))
	buf.WriteByte(byte(rec.Kind))
	writeUvarint(uint64(len(rec.Dataset)))
	buf.WriteString(rec.Dataset)
	writeUvarint(uint64(len(rec.Index)))
	buf.WriteString(rec.Index)
	writeUvarint(uint64(rec.Partition))
	writeUvarint(uint64(len(rec.Key)))
	buf.Write(rec.Key)
	writeUvarint(uint64(len(rec.Value)))
	buf.Write(rec.Value)
	var framed bytes.Buffer
	n := binary.PutUvarint(scratch[:], uint64(buf.Len()))
	framed.Write(scratch[:n])
	framed.Write(buf.Bytes())
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(buf.Bytes(), crcTable))
	framed.Write(crc[:])
	return framed.Bytes()
}

// decodeLog decodes records sequentially, computing each record's LSN from
// base + offset. It stops at the first torn or corrupt frame and returns the
// byte length of the good prefix.
func decodeLog(data []byte, base uint64) (records []LogRecord, lsns []uint64, committed map[ID]bool, goodLen int64) {
	committed = map[ID]bool{}
	offset := int64(0)
	for offset < int64(len(data)) {
		rest := data[offset:]
		frameLen, n := binary.Uvarint(rest)
		if n <= 0 {
			break // torn length prefix
		}
		total := int64(n) + int64(frameLen) + 4
		if int64(len(rest)) < total {
			break // torn tail: ignore the partial record
		}
		frame := rest[n : int64(n)+int64(frameLen)]
		wantCRC := binary.LittleEndian.Uint32(rest[int64(n)+int64(frameLen):])
		if crc32.Checksum(frame, crcTable) != wantCRC {
			break // corrupt record: treat as end of log
		}
		rec, err := decodeLogRecord(frame)
		if err != nil {
			break // undecodable despite a good CRC: treat as end of log
		}
		records = append(records, rec)
		lsns = append(lsns, base+uint64(offset))
		if rec.Kind == OpCommit {
			committed[rec.Txn] = true
		}
		offset += total
	}
	return records, lsns, committed, offset
}

func decodeLogRecord(frame []byte) (LogRecord, error) {
	rd := bytes.NewReader(frame)
	var rec LogRecord
	txn, err := binary.ReadUvarint(rd)
	if err != nil {
		return rec, err
	}
	rec.Txn = ID(txn)
	kind, err := rd.ReadByte()
	if err != nil {
		return rec, err
	}
	rec.Kind = OpKind(kind)
	ds, err := readString(rd)
	if err != nil {
		return rec, err
	}
	rec.Dataset = ds
	idx, err := readString(rd)
	if err != nil {
		return rec, err
	}
	rec.Index = idx
	part, err := binary.ReadUvarint(rd)
	if err != nil {
		return rec, err
	}
	rec.Partition = int(part)
	rec.Key, err = readBytes(rd)
	if err != nil {
		return rec, err
	}
	rec.Value, err = readBytes(rd)
	if err != nil {
		return rec, err
	}
	return rec, nil
}

func readString(rd *bytes.Reader) (string, error) {
	b, err := readBytes(rd)
	return string(b), err
}

func readBytes(rd *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	// io.ReadFull, not rd.Read: a bare Read on a reader with fewer than n
	// bytes left returns short with a nil error, silently truncating the
	// field (the same latent bug fixed in lsm.readBlob).
	if _, err := io.ReadFull(rd, out); err != nil {
		return nil, fmt.Errorf("txn: short read: %w", err)
	}
	return out, nil
}
