// Package txn provides AsterixDB's record-level transaction support
// (Section 4.4 of the paper): a node-local lock manager used for primary-key
// locks, a write-ahead log with LSM-index-level logical log records under a
// no-steal/no-force policy, and log-replay recovery that cooperates with the
// LSM components' validity-bit shadowing.
package txn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// ID identifies one record-level transaction.
type ID uint64

// LockManager implements node-local two-phase locking on primary keys.
// Locks are exclusive: AsterixDB only locks for modifications of primary
// indexes, and record-level transactions touch a single key, so shared locks
// and deadlock detection are unnecessary (lock acquisition is totally ordered
// per key and each transaction holds at most a handful of locks).
type LockManager struct {
	mu    sync.Mutex
	locks map[string]*lockEntry
}

type lockEntry struct {
	holder  ID
	waiters []chan struct{}
}

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	return &LockManager{locks: map[string]*lockEntry{}}
}

// Lock acquires the exclusive lock on key for txn, blocking until available.
// Re-acquiring a lock already held by the same transaction is a no-op.
func (lm *LockManager) Lock(txn ID, key []byte) {
	k := string(key)
	for {
		lm.mu.Lock()
		entry, held := lm.locks[k]
		if !held {
			lm.locks[k] = &lockEntry{holder: txn}
			lm.mu.Unlock()
			return
		}
		if entry.holder == txn {
			lm.mu.Unlock()
			return
		}
		wait := make(chan struct{})
		entry.waiters = append(entry.waiters, wait)
		lm.mu.Unlock()
		<-wait
	}
}

// Unlock releases the lock on key held by txn. Releasing a lock that is not
// held is a no-op (it can happen when a transaction aborts before acquiring).
func (lm *LockManager) Unlock(txn ID, key []byte) {
	k := string(key)
	lm.mu.Lock()
	defer lm.mu.Unlock()
	entry, held := lm.locks[k]
	if !held || entry.holder != txn {
		return
	}
	delete(lm.locks, k)
	for _, w := range entry.waiters {
		close(w)
	}
}

// Held reports whether any transaction currently holds a lock on key.
func (lm *LockManager) Held(key []byte) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	_, held := lm.locks[string(key)]
	return held
}

// ----------------------------------------------------------------------------
// Write-ahead log
// ----------------------------------------------------------------------------

// OpKind is the kind of a logical log record.
type OpKind uint8

// Logical operation kinds. Each corresponds to one LSM-index-level update,
// matching the paper's "each LSM-index-level update operation generates a
// single log record".
const (
	OpInsert OpKind = iota + 1
	OpDelete
	OpCommit
)

// LogRecord is one entry in the WAL.
type LogRecord struct {
	Txn       ID
	Kind      OpKind
	Dataset   string
	Partition int
	Key       []byte
	Value     []byte
}

// WAL is an append-only write-ahead log. Writes follow the WAL protocol: the
// storage layer appends the logical record (and the commit record) before the
// in-memory component is modified and before the statement returns.
type WAL struct {
	mu      sync.Mutex
	path    string
	file    *os.File
	nextTxn ID
	// journaled controls whether every commit is fsync'd. It mirrors the
	// "write concern: journaled" durability setting used for the insert
	// comparison in Table 4.
	journaled bool
}

// OpenWAL opens (or creates) the log file in dir.
func OpenWAL(dir string, journaled bool) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("txn: open wal: %w", err)
	}
	path := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("txn: open wal: %w", err)
	}
	return &WAL{path: path, file: f, nextTxn: 1, journaled: journaled}, nil
}

// Begin allocates a transaction id.
func (w *WAL) Begin() ID {
	w.mu.Lock()
	defer w.mu.Unlock()
	id := w.nextTxn
	w.nextTxn++
	return id
}

// Append writes a log record.
func (w *WAL) Append(rec LogRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	buf := encodeLogRecord(rec)
	if _, err := w.file.Write(buf); err != nil {
		return fmt.Errorf("txn: wal append: %w", err)
	}
	return nil
}

// Commit writes the commit record for txn and, when journaled, syncs the log
// to stable storage before returning.
func (w *WAL) Commit(txn ID) error {
	if err := w.CommitNoSync(txn); err != nil {
		return err
	}
	return w.Sync()
}

// CommitNoSync writes the commit record without forcing it to stable storage.
// Batched statements commit each record-level transaction this way and call
// Sync once at the end, which is the mechanism behind the Table 4 batching
// speed-up.
func (w *WAL) CommitNoSync(txn ID) error {
	return w.Append(LogRecord{Txn: txn, Kind: OpCommit})
}

// Sync forces the log to stable storage when the WAL is journaled.
func (w *WAL) Sync() error {
	if !w.journaled {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.file.Sync()
}

// Close closes the log file.
func (w *WAL) Close() error { return w.file.Close() }

// Truncate empties the log. The storage layer calls it after all datasets
// have flushed their in-memory components (a checkpoint): everything the log
// protects is then inside valid disk components.
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.file.Truncate(0); err != nil {
		return err
	}
	_, err := w.file.Seek(0, 0)
	return err
}

// Replay reads the log and invokes apply for every operation belonging to a
// committed transaction, in log order. Operations of uncommitted transactions
// are ignored (no-steal means they can never have reached disk).
//
// The log is read and decoded under the WAL latch, but apply runs after it
// is released: apply re-enters the storage layer, and a caller-supplied
// callback must never run under a lock it did not take itself (the
// ScanPartition deadlock class).
func (w *WAL) Replay(apply func(LogRecord) error) error {
	w.mu.Lock()
	data, err := os.ReadFile(w.path)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	records, committed, err := decodeLog(data)
	if err != nil {
		w.mu.Unlock()
		return err
	}
	maxTxn := w.nextTxn
	for _, rec := range records {
		if rec.Txn >= maxTxn {
			maxTxn = rec.Txn + 1
		}
	}
	w.nextTxn = maxTxn
	w.mu.Unlock()
	for _, rec := range records {
		if rec.Kind == OpCommit || !committed[rec.Txn] {
			continue
		}
		if err := apply(rec); err != nil {
			return err
		}
	}
	return nil
}

func encodeLogRecord(rec LogRecord) []byte {
	var buf bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:n])
	}
	writeUvarint(uint64(rec.Txn))
	buf.WriteByte(byte(rec.Kind))
	writeUvarint(uint64(len(rec.Dataset)))
	buf.WriteString(rec.Dataset)
	writeUvarint(uint64(rec.Partition))
	writeUvarint(uint64(len(rec.Key)))
	buf.Write(rec.Key)
	writeUvarint(uint64(len(rec.Value)))
	buf.Write(rec.Value)
	// Frame the record with its length so a torn tail write is detectable.
	var framed bytes.Buffer
	n := binary.PutUvarint(scratch[:], uint64(buf.Len()))
	framed.Write(scratch[:n])
	framed.Write(buf.Bytes())
	return framed.Bytes()
}

func decodeLog(data []byte) ([]LogRecord, map[ID]bool, error) {
	var records []LogRecord
	committed := map[ID]bool{}
	rd := bytes.NewReader(data)
	for rd.Len() > 0 {
		frameLen, err := binary.ReadUvarint(rd)
		if err != nil {
			break // torn tail
		}
		if uint64(rd.Len()) < frameLen {
			break // torn tail: ignore the partial record
		}
		frame := make([]byte, frameLen)
		if _, err := io.ReadFull(rd, frame); err != nil {
			break // torn tail
		}
		rec, err := decodeLogRecord(frame)
		if err != nil {
			return nil, nil, err
		}
		records = append(records, rec)
		if rec.Kind == OpCommit {
			committed[rec.Txn] = true
		}
	}
	return records, committed, nil
}

func decodeLogRecord(frame []byte) (LogRecord, error) {
	rd := bytes.NewReader(frame)
	var rec LogRecord
	txn, err := binary.ReadUvarint(rd)
	if err != nil {
		return rec, err
	}
	rec.Txn = ID(txn)
	kind, err := rd.ReadByte()
	if err != nil {
		return rec, err
	}
	rec.Kind = OpKind(kind)
	ds, err := readString(rd)
	if err != nil {
		return rec, err
	}
	rec.Dataset = ds
	part, err := binary.ReadUvarint(rd)
	if err != nil {
		return rec, err
	}
	rec.Partition = int(part)
	rec.Key, err = readBytes(rd)
	if err != nil {
		return rec, err
	}
	rec.Value, err = readBytes(rd)
	if err != nil {
		return rec, err
	}
	return rec, nil
}

func readString(rd *bytes.Reader) (string, error) {
	b, err := readBytes(rd)
	return string(b), err
}

func readBytes(rd *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	// io.ReadFull, not rd.Read: a bare Read on a reader with fewer than n
	// bytes left returns short with a nil error, silently truncating the
	// field (the same latent bug fixed in lsm.readBlob).
	if _, err := io.ReadFull(rd, out); err != nil {
		return nil, fmt.Errorf("txn: short read: %w", err)
	}
	return out, nil
}
