package spatial

import (
	"math"
	"testing"
	"testing/quick"

	"asterixdb/internal/adm"
)

func TestDistance(t *testing.T) {
	if d := Distance(adm.Point{X: 0, Y: 0}, adm.Point{X: 3, Y: 4}); d != 5 {
		t.Errorf("Distance = %v", d)
	}
	got, err := SpatialDistance(adm.Point{X: 1, Y: 1}, adm.Point{X: 1, Y: 1})
	if err != nil || got != 0 {
		t.Errorf("SpatialDistance same point = %v, %v", got, err)
	}
	if _, err := SpatialDistance(adm.Point{}, adm.String("x")); err == nil {
		t.Error("SpatialDistance should reject non-points")
	}
}

func TestArea(t *testing.T) {
	cases := []struct {
		v    adm.Value
		want float64
	}{
		{adm.Point{X: 1, Y: 2}, 0},
		{adm.Line{A: adm.Point{X: 0, Y: 0}, B: adm.Point{X: 1, Y: 1}}, 0},
		{adm.Rectangle{LowerLeft: adm.Point{X: 0, Y: 0}, UpperRight: adm.Point{X: 2, Y: 3}}, 6},
		{adm.Circle{Center: adm.Point{X: 0, Y: 0}, Radius: 2}, 4 * math.Pi},
		{adm.Polygon{Points: []adm.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 3}, {X: 0, Y: 3}}}, 12},
		{adm.Polygon{Points: []adm.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 0, Y: 2}}}, 2},
	}
	for _, c := range cases {
		got, err := Area(c.v)
		if err != nil {
			t.Fatalf("Area(%v): %v", c.v, err)
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Area(%v) = %v, want %v", c.v, got, c.want)
		}
	}
	if _, err := Area(adm.String("x")); err == nil {
		t.Error("Area should reject non-spatial values")
	}
}

func TestCell(t *testing.T) {
	cell, err := Cell(adm.Point{X: 5.5, Y: -2.5}, adm.Point{X: 0, Y: 0}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cell.LowerLeft != (adm.Point{X: 4, Y: -4}) || cell.UpperRight != (adm.Point{X: 6, Y: -2}) {
		t.Errorf("Cell = %+v", cell)
	}
	if !RectContainsPoint(cell, adm.Point{X: 5.5, Y: -2.5}) {
		t.Error("cell must contain its defining point")
	}
	if _, err := Cell(adm.Point{}, adm.Point{}, 0, 1); err == nil {
		t.Error("zero cell size should fail")
	}
}

func TestCellProperty(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.Abs(x) > 1e9 || math.Abs(y) > 1e9 {
			return true
		}
		cell, err := Cell(adm.Point{X: x, Y: y}, adm.Point{X: 0, Y: 0}, 3, 3)
		if err != nil {
			return false
		}
		return RectContainsPoint(cell, adm.Point{X: x, Y: y})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMBR(t *testing.T) {
	mbr, err := MBR(adm.Circle{Center: adm.Point{X: 1, Y: 1}, Radius: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mbr.LowerLeft != (adm.Point{X: -1, Y: -1}) || mbr.UpperRight != (adm.Point{X: 3, Y: 3}) {
		t.Errorf("circle MBR = %+v", mbr)
	}
	mbr, err = MBR(adm.Polygon{Points: []adm.Point{{X: 0, Y: 5}, {X: 2, Y: 1}, {X: -1, Y: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if mbr.LowerLeft != (adm.Point{X: -1, Y: 1}) || mbr.UpperRight != (adm.Point{X: 2, Y: 5}) {
		t.Errorf("polygon MBR = %+v", mbr)
	}
	if _, err := MBR(adm.Polygon{}); err == nil {
		t.Error("empty polygon should have no MBR")
	}
	if _, err := MBR(adm.Int32(1)); err == nil {
		t.Error("MBR of non-spatial value should fail")
	}
}

func TestRectPredicates(t *testing.T) {
	a := adm.Rectangle{LowerLeft: adm.Point{X: 0, Y: 0}, UpperRight: adm.Point{X: 10, Y: 10}}
	b := adm.Rectangle{LowerLeft: adm.Point{X: 5, Y: 5}, UpperRight: adm.Point{X: 15, Y: 15}}
	c := adm.Rectangle{LowerLeft: adm.Point{X: 20, Y: 20}, UpperRight: adm.Point{X: 30, Y: 30}}
	if !RectIntersects(a, b) || RectIntersects(a, c) {
		t.Error("RectIntersects misreports")
	}
	// Reversed corners should be normalized.
	d := adm.Rectangle{LowerLeft: adm.Point{X: 10, Y: 10}, UpperRight: adm.Point{X: 0, Y: 0}}
	if !RectIntersects(d, b) {
		t.Error("RectIntersects should normalize reversed corners")
	}
	if !RectContainsPoint(a, adm.Point{X: 10, Y: 10}) || RectContainsPoint(a, adm.Point{X: 11, Y: 5}) {
		t.Error("RectContainsPoint misreports")
	}
}

func TestIntersect(t *testing.T) {
	cases := []struct {
		a, b adm.Value
		want bool
	}{
		{adm.Point{X: 1, Y: 1}, adm.Point{X: 1, Y: 1}, true},
		{adm.Point{X: 1, Y: 1}, adm.Point{X: 1, Y: 2}, false},
		{adm.Point{X: 1, Y: 1}, adm.Circle{Center: adm.Point{X: 0, Y: 0}, Radius: 2}, true},
		{adm.Point{X: 5, Y: 5}, adm.Circle{Center: adm.Point{X: 0, Y: 0}, Radius: 2}, false},
		{adm.Circle{Center: adm.Point{X: 0, Y: 0}, Radius: 2}, adm.Point{X: 1, Y: 1}, true},
		{adm.Point{X: 1, Y: 1}, adm.Rectangle{LowerLeft: adm.Point{X: 0, Y: 0}, UpperRight: adm.Point{X: 2, Y: 2}}, true},
		{adm.Point{X: 0.5, Y: 0.5}, adm.Polygon{Points: []adm.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}}, true},
		{adm.Point{X: 5, Y: 5}, adm.Polygon{Points: []adm.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}}, false},
		{
			adm.Circle{Center: adm.Point{X: 0, Y: 0}, Radius: 2},
			adm.Circle{Center: adm.Point{X: 3, Y: 0}, Radius: 2},
			true,
		},
		{
			adm.Rectangle{LowerLeft: adm.Point{X: 0, Y: 0}, UpperRight: adm.Point{X: 1, Y: 1}},
			adm.Rectangle{LowerLeft: adm.Point{X: 2, Y: 2}, UpperRight: adm.Point{X: 3, Y: 3}},
			false,
		},
		{
			adm.Line{A: adm.Point{X: 0, Y: 0}, B: adm.Point{X: 2, Y: 2}},
			adm.Rectangle{LowerLeft: adm.Point{X: 1, Y: 1}, UpperRight: adm.Point{X: 3, Y: 3}},
			true,
		},
	}
	for _, c := range cases {
		got, err := Intersect(c.a, c.b)
		if err != nil {
			t.Fatalf("Intersect(%v, %v): %v", c.a, c.b, err)
		}
		if got != c.want {
			t.Errorf("Intersect(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestIntersectSymmetryProperty(t *testing.T) {
	f := func(x1, y1, r1, x2, y2, r2 float64) bool {
		if anyBad(x1, y1, r1, x2, y2, r2) {
			return true
		}
		a := adm.Circle{Center: adm.Point{X: x1, Y: y1}, Radius: math.Abs(r1)}
		b := adm.Circle{Center: adm.Point{X: x2, Y: y2}, Radius: math.Abs(r2)}
		g1, err1 := Intersect(a, b)
		g2, err2 := Intersect(b, a)
		return err1 == nil && err2 == nil && g1 == g2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true
		}
	}
	return false
}
