// Package spatial implements AsterixDB's spatial types and functions
// (Table 1 of the paper): spatial-distance, spatial-area, spatial-intersect
// and spatial-cell over points, lines, rectangles, circles, and polygons.
package spatial

import (
	"fmt"
	"math"

	"asterixdb/internal/adm"
)

// Distance returns the Euclidean distance between two points.
func Distance(a, b adm.Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// SpatialDistance is the AQL spatial-distance function: it accepts two point
// values and returns their distance as a double.
func SpatialDistance(a, b adm.Value) (adm.Double, error) {
	pa, ok1 := a.(adm.Point)
	pb, ok2 := b.(adm.Point)
	if !ok1 || !ok2 {
		return 0, fmt.Errorf("spatial: spatial-distance expects two points, got %s and %s", a.Tag(), b.Tag())
	}
	return adm.Double(Distance(pa, pb)), nil
}

// Area returns the area of a spatial value. Points and lines have area 0.
func Area(v adm.Value) (float64, error) {
	switch x := v.(type) {
	case adm.Point, adm.Line:
		return 0, nil
	case adm.Rectangle:
		return math.Abs((x.UpperRight.X - x.LowerLeft.X) * (x.UpperRight.Y - x.LowerLeft.Y)), nil
	case adm.Circle:
		return math.Pi * x.Radius * x.Radius, nil
	case adm.Polygon:
		return polygonArea(x.Points), nil
	}
	return 0, fmt.Errorf("spatial: spatial-area over %s not supported", v.Tag())
}

// polygonArea computes the shoelace-formula area of a simple polygon.
func polygonArea(pts []adm.Point) float64 {
	if len(pts) < 3 {
		return 0
	}
	sum := 0.0
	for i := range pts {
		j := (i + 1) % len(pts)
		sum += pts[i].X*pts[j].Y - pts[j].X*pts[i].Y
	}
	return math.Abs(sum) / 2
}

// Cell returns the grid cell (as a rectangle) that contains point p, where the
// grid is anchored at origin and cells have the given x/y extents. This is the
// spatial-cell function used for grouped spatial aggregation.
func Cell(p adm.Point, origin adm.Point, xSize, ySize float64) (adm.Rectangle, error) {
	if xSize <= 0 || ySize <= 0 {
		return adm.Rectangle{}, fmt.Errorf("spatial: cell sizes must be positive")
	}
	ix := math.Floor((p.X - origin.X) / xSize)
	iy := math.Floor((p.Y - origin.Y) / ySize)
	ll := adm.Point{X: origin.X + ix*xSize, Y: origin.Y + iy*ySize}
	return adm.Rectangle{LowerLeft: ll, UpperRight: adm.Point{X: ll.X + xSize, Y: ll.Y + ySize}}, nil
}

// MBR returns the minimum bounding rectangle of any spatial value. Secondary
// R-tree indexes store MBRs as their keys.
func MBR(v adm.Value) (adm.Rectangle, error) {
	switch x := v.(type) {
	case adm.Point:
		return adm.Rectangle{LowerLeft: x, UpperRight: x}, nil
	case adm.Line:
		return rectFromPoints([]adm.Point{x.A, x.B}), nil
	case adm.Rectangle:
		return normalizeRect(x), nil
	case adm.Circle:
		return adm.Rectangle{
			LowerLeft:  adm.Point{X: x.Center.X - x.Radius, Y: x.Center.Y - x.Radius},
			UpperRight: adm.Point{X: x.Center.X + x.Radius, Y: x.Center.Y + x.Radius},
		}, nil
	case adm.Polygon:
		if len(x.Points) == 0 {
			return adm.Rectangle{}, fmt.Errorf("spatial: empty polygon has no MBR")
		}
		return rectFromPoints(x.Points), nil
	}
	return adm.Rectangle{}, fmt.Errorf("spatial: MBR over %s not supported", v.Tag())
}

func rectFromPoints(pts []adm.Point) adm.Rectangle {
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := pts[0].X, pts[0].Y
	for _, p := range pts[1:] {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	return adm.Rectangle{LowerLeft: adm.Point{X: minX, Y: minY}, UpperRight: adm.Point{X: maxX, Y: maxY}}
}

func normalizeRect(r adm.Rectangle) adm.Rectangle {
	return rectFromPoints([]adm.Point{r.LowerLeft, r.UpperRight})
}

// RectIntersects reports whether two rectangles share any point.
func RectIntersects(a, b adm.Rectangle) bool {
	a, b = normalizeRect(a), normalizeRect(b)
	return a.LowerLeft.X <= b.UpperRight.X && b.LowerLeft.X <= a.UpperRight.X &&
		a.LowerLeft.Y <= b.UpperRight.Y && b.LowerLeft.Y <= a.UpperRight.Y
}

// RectContainsPoint reports whether rectangle r contains point p (inclusive).
func RectContainsPoint(r adm.Rectangle, p adm.Point) bool {
	r = normalizeRect(r)
	return p.X >= r.LowerLeft.X && p.X <= r.UpperRight.X &&
		p.Y >= r.LowerLeft.Y && p.Y <= r.UpperRight.Y
}

// Intersect is the AQL spatial-intersect function. It supports every pairing
// of point, line, rectangle, circle and polygon by comparing exact geometry
// where easy (point/rect/circle) and falling back to MBR intersection for the
// line/polygon pairings, which is the filter step a spatial index performs.
func Intersect(a, b adm.Value) (bool, error) {
	// Normalize so the switch below only handles one ordering.
	rank := func(v adm.Value) int {
		switch v.Tag() {
		case adm.TagPoint:
			return 0
		case adm.TagCircle:
			return 1
		case adm.TagRectangle:
			return 2
		default:
			return 3
		}
	}
	if rank(a) > rank(b) {
		a, b = b, a
	}
	switch x := a.(type) {
	case adm.Point:
		switch y := b.(type) {
		case adm.Point:
			return x.X == y.X && x.Y == y.Y, nil
		case adm.Circle:
			return Distance(x, y.Center) <= y.Radius, nil
		case adm.Rectangle:
			return RectContainsPoint(y, x), nil
		case adm.Polygon:
			return pointInPolygon(x, y.Points), nil
		case adm.Line:
			mbr, _ := MBR(y)
			return RectContainsPoint(mbr, x), nil
		}
	case adm.Circle:
		switch y := b.(type) {
		case adm.Circle:
			return Distance(x.Center, y.Center) <= x.Radius+y.Radius, nil
		case adm.Rectangle:
			mbr, _ := MBR(x)
			return RectIntersects(mbr, y), nil
		}
	case adm.Rectangle:
		if y, ok := b.(adm.Rectangle); ok {
			return RectIntersects(x, y), nil
		}
	}
	// Fallback: MBR test.
	ma, err := MBR(a)
	if err != nil {
		return false, err
	}
	mb, err := MBR(b)
	if err != nil {
		return false, err
	}
	return RectIntersects(ma, mb), nil
}

// pointInPolygon uses the even-odd ray casting rule.
func pointInPolygon(p adm.Point, poly []adm.Point) bool {
	inside := false
	n := len(poly)
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		pi, pj := poly[i], poly[j]
		if (pi.Y > p.Y) != (pj.Y > p.Y) &&
			p.X < (pj.X-pi.X)*(p.Y-pi.Y)/(pj.Y-pi.Y)+pi.X {
			inside = !inside
		}
	}
	return inside
}
