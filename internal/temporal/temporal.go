// Package temporal implements AsterixDB's date/time/datetime/duration/interval
// functions (Table 1 of the paper): current-date/time/datetime, datetime
// arithmetic, interval construction and binning, Allen's interval relations,
// and timezone adjustment.
package temporal

import (
	"fmt"
	"time"

	"asterixdb/internal/adm"
)

// Clock abstracts "now" so queries using current-datetime() are testable.
type Clock interface {
	Now() time.Time
}

// SystemClock reads the real wall clock.
type SystemClock struct{}

// Now implements Clock.
func (SystemClock) Now() time.Time { return time.Now().UTC() }

// FixedClock always returns the same instant; used in tests and benchmarks so
// results are deterministic.
type FixedClock struct{ T time.Time }

// Now implements Clock.
func (c FixedClock) Now() time.Time { return c.T }

// CurrentDatetime returns the current instant as an ADM datetime.
func CurrentDatetime(c Clock) adm.Datetime { return adm.Datetime(c.Now().UnixMilli()) }

// CurrentDate returns the current day as an ADM date.
func CurrentDate(c Clock) adm.Date { return adm.Date(c.Now().UnixMilli() / 86400000) }

// CurrentTime returns the current time of day as an ADM time.
func CurrentTime(c Clock) adm.Time {
	n := c.Now()
	return adm.Time(int32(n.Hour()*3600000 + n.Minute()*60000 + n.Second()*1000 + n.Nanosecond()/1e6))
}

// DatetimeFromDate converts a date to the datetime at midnight of that day.
func DatetimeFromDate(d adm.Date) adm.Datetime { return adm.Datetime(int64(d) * 86400000) }

// DateFromDatetime truncates a datetime to its day.
func DateFromDatetime(dt adm.Datetime) adm.Date {
	ms := int64(dt)
	if ms < 0 && ms%86400000 != 0 {
		return adm.Date(ms/86400000 - 1)
	}
	return adm.Date(ms / 86400000)
}

// AddDuration adds a duration to a temporal point value (date, time or
// datetime) and returns a value of the same type.
func AddDuration(v adm.Value, d adm.Duration) (adm.Value, error) {
	switch x := v.(type) {
	case adm.Datetime:
		t := time.UnixMilli(int64(x)).UTC().AddDate(0, int(d.Months), 0)
		return adm.Datetime(t.UnixMilli() + d.Millis), nil
	case adm.Date:
		dt, err := AddDuration(DatetimeFromDate(x), d)
		if err != nil {
			return nil, err
		}
		return DateFromDatetime(dt.(adm.Datetime)), nil
	case adm.Time:
		if d.Months != 0 {
			return nil, fmt.Errorf("temporal: cannot add month-bearing duration to a time")
		}
		ms := (int64(x) + d.Millis) % 86400000
		if ms < 0 {
			ms += 86400000
		}
		return adm.Time(int32(ms)), nil
	}
	return nil, fmt.Errorf("temporal: cannot add duration to %s", v.Tag())
}

// SubtractDuration subtracts a duration from a temporal point value.
func SubtractDuration(v adm.Value, d adm.Duration) (adm.Value, error) {
	return AddDuration(v, adm.Duration{Months: -d.Months, Millis: -d.Millis})
}

// Subtract returns the duration between two temporal point values of the same
// tag (a - b), as a day-time duration expressed in milliseconds (or days for
// dates, converted to milliseconds).
func Subtract(a, b adm.Value) (adm.Duration, error) {
	if a.Tag() != b.Tag() {
		return adm.Duration{}, fmt.Errorf("temporal: subtract requires matching types, got %s and %s", a.Tag(), b.Tag())
	}
	switch x := a.(type) {
	case adm.Datetime:
		return adm.Duration{Millis: int64(x) - int64(b.(adm.Datetime))}, nil
	case adm.Date:
		return adm.Duration{Millis: (int64(x) - int64(b.(adm.Date))) * 86400000}, nil
	case adm.Time:
		return adm.Duration{Millis: int64(x) - int64(b.(adm.Time))}, nil
	}
	return adm.Duration{}, fmt.Errorf("temporal: cannot subtract %s values", a.Tag())
}

// AdjustDatetimeForTimezone shifts a datetime by a timezone offset string such
// as "+08:00" or "-0500" and returns the shifted datetime.
func AdjustDatetimeForTimezone(dt adm.Datetime, tz string) (adm.Datetime, error) {
	off, err := parseTZOffset(tz)
	if err != nil {
		return 0, err
	}
	return adm.Datetime(int64(dt) + off), nil
}

// AdjustTimeForTimezone shifts a time-of-day by a timezone offset string.
func AdjustTimeForTimezone(t adm.Time, tz string) (adm.Time, error) {
	off, err := parseTZOffset(tz)
	if err != nil {
		return 0, err
	}
	ms := (int64(t) + off) % 86400000
	if ms < 0 {
		ms += 86400000
	}
	return adm.Time(int32(ms)), nil
}

func parseTZOffset(tz string) (int64, error) {
	if tz == "Z" || tz == "z" {
		return 0, nil
	}
	if len(tz) < 3 {
		return 0, fmt.Errorf("temporal: bad timezone %q", tz)
	}
	sign := int64(1)
	switch tz[0] {
	case '+':
	case '-':
		sign = -1
	default:
		return 0, fmt.Errorf("temporal: bad timezone %q", tz)
	}
	rest := tz[1:]
	var h, m int
	if len(rest) == 5 && rest[2] == ':' {
		if _, err := fmt.Sscanf(rest, "%02d:%02d", &h, &m); err != nil {
			return 0, fmt.Errorf("temporal: bad timezone %q", tz)
		}
	} else if len(rest) == 4 {
		if _, err := fmt.Sscanf(rest, "%02d%02d", &h, &m); err != nil {
			return 0, fmt.Errorf("temporal: bad timezone %q", tz)
		}
	} else {
		return 0, fmt.Errorf("temporal: bad timezone %q", tz)
	}
	return sign * (int64(h)*3600000 + int64(m)*60000), nil
}

// IntervalFromDatetimes builds an interval between two datetimes.
func IntervalFromDatetimes(start, end adm.Datetime) (adm.Interval, error) {
	v, err := adm.NewInterval(start, end)
	if err != nil {
		return adm.Interval{}, err
	}
	return v.(adm.Interval), nil
}

// IntervalStartFromDate builds an interval starting at a date for the given
// duration (the interval-start-from-date function family in Table 1).
func IntervalStartFromDate(start adm.Date, d adm.Duration) (adm.Interval, error) {
	end, err := AddDuration(start, d)
	if err != nil {
		return adm.Interval{}, err
	}
	v, err := adm.NewInterval(start, end)
	if err != nil {
		return adm.Interval{}, err
	}
	return v.(adm.Interval), nil
}

// IntervalStartFromDatetime builds an interval starting at a datetime for the
// given duration.
func IntervalStartFromDatetime(start adm.Datetime, d adm.Duration) (adm.Interval, error) {
	end, err := AddDuration(start, d)
	if err != nil {
		return adm.Interval{}, err
	}
	v, err := adm.NewInterval(start, end)
	if err != nil {
		return adm.Interval{}, err
	}
	return v.(adm.Interval), nil
}

// IntervalBin returns the bin interval containing chronon v, where bins are
// aligned at anchor and have width binSize. This is the interval-bin function
// the behavioural-data pilot in Section 5.2 motivated (temporal binning /
// time-windowed aggregation).
func IntervalBin(v adm.Value, anchor adm.Value, binSize adm.Duration) (adm.Interval, error) {
	if v.Tag() != anchor.Tag() {
		return adm.Interval{}, fmt.Errorf("temporal: interval-bin value and anchor must match, got %s and %s", v.Tag(), anchor.Tag())
	}
	if binSize.Months != 0 {
		return intervalBinMonths(v, anchor, binSize)
	}
	var chronon, anchorC int64
	var scale int64 = 1
	switch x := v.(type) {
	case adm.Datetime:
		chronon, anchorC = int64(x), int64(anchor.(adm.Datetime))
	case adm.Date:
		chronon, anchorC = int64(x), int64(anchor.(adm.Date))
		scale = 86400000
	case adm.Time:
		chronon, anchorC = int64(x), int64(anchor.(adm.Time))
	default:
		return adm.Interval{}, fmt.Errorf("temporal: interval-bin over %s not supported", v.Tag())
	}
	width := binSize.Millis / scale
	if width <= 0 {
		return adm.Interval{}, fmt.Errorf("temporal: interval-bin width must be positive")
	}
	offset := chronon - anchorC
	idx := offset / width
	if offset < 0 && offset%width != 0 {
		idx--
	}
	start := anchorC + idx*width
	return adm.Interval{PointTag: v.Tag(), Start: start, End: start + width}, nil
}

func intervalBinMonths(v adm.Value, anchor adm.Value, binSize adm.Duration) (adm.Interval, error) {
	toTime := func(x adm.Value) (time.Time, error) {
		switch t := x.(type) {
		case adm.Datetime:
			return time.UnixMilli(int64(t)).UTC(), nil
		case adm.Date:
			return time.UnixMilli(int64(t) * 86400000).UTC(), nil
		}
		return time.Time{}, fmt.Errorf("temporal: month bins over %s not supported", x.Tag())
	}
	vt, err := toTime(v)
	if err != nil {
		return adm.Interval{}, err
	}
	at, err := toTime(anchor)
	if err != nil {
		return adm.Interval{}, err
	}
	months := (vt.Year()-at.Year())*12 + int(vt.Month()) - int(at.Month())
	idx := months / int(binSize.Months)
	if months < 0 && months%int(binSize.Months) != 0 {
		idx--
	}
	start := at.AddDate(0, idx*int(binSize.Months), 0)
	end := at.AddDate(0, (idx+1)*int(binSize.Months), 0)
	if v.Tag() == adm.TagDate {
		return adm.Interval{PointTag: adm.TagDate, Start: start.UnixMilli() / 86400000, End: end.UnixMilli() / 86400000}, nil
	}
	return adm.Interval{PointTag: adm.TagDatetime, Start: start.UnixMilli(), End: end.UnixMilli()}, nil
}

// ----------------------------------------------------------------------------
// Allen's interval relations
// ----------------------------------------------------------------------------

// Before reports whether interval a ends strictly before interval b starts.
func Before(a, b adm.Interval) bool { return a.End < b.Start }

// After reports whether interval a starts strictly after interval b ends.
func After(a, b adm.Interval) bool { return Before(b, a) }

// Meets reports whether interval a ends exactly where b starts.
func Meets(a, b adm.Interval) bool { return a.End == b.Start }

// MetBy reports whether interval a starts exactly where b ends.
func MetBy(a, b adm.Interval) bool { return Meets(b, a) }

// Overlaps reports whether a starts before b, they intersect, and a ends
// before b ends (the strict Allen "overlaps").
func Overlaps(a, b adm.Interval) bool {
	return a.Start < b.Start && a.End > b.Start && a.End < b.End
}

// OverlappedBy is the converse of Overlaps.
func OverlappedBy(a, b adm.Interval) bool { return Overlaps(b, a) }

// Overlapping reports whether the two intervals share any instant (the
// non-Allen convenience predicate AQL exposes as interval-overlapping).
func Overlapping(a, b adm.Interval) bool { return a.Start < b.End && b.Start < a.End }

// Starts reports whether a and b start together and a ends first.
func Starts(a, b adm.Interval) bool { return a.Start == b.Start && a.End < b.End }

// StartedBy is the converse of Starts.
func StartedBy(a, b adm.Interval) bool { return Starts(b, a) }

// Finishes reports whether a and b end together and a starts later.
func Finishes(a, b adm.Interval) bool { return a.End == b.End && a.Start > b.Start }

// FinishedBy is the converse of Finishes.
func FinishedBy(a, b adm.Interval) bool { return Finishes(b, a) }

// During reports whether a lies strictly inside b.
func During(a, b adm.Interval) bool { return a.Start > b.Start && a.End < b.End }

// Covers reports whether a contains b (the Allen "contains").
func Covers(a, b adm.Interval) bool { return During(b, a) }

// Equals reports whether the two intervals are identical.
func Equals(a, b adm.Interval) bool { return a.Start == b.Start && a.End == b.End }
