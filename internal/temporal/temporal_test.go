package temporal

import (
	"testing"
	"testing/quick"
	"time"

	"asterixdb/internal/adm"
)

func dt(s string) adm.Datetime {
	v, err := adm.ParseDatetime(s)
	if err != nil {
		panic(err)
	}
	return v.(adm.Datetime)
}

func date(s string) adm.Date {
	v, err := adm.ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v.(adm.Date)
}

func TestCurrentFunctions(t *testing.T) {
	clock := FixedClock{T: time.Date(2014, 2, 20, 10, 30, 15, 0, time.UTC)}
	if got := CurrentDatetime(clock); got != dt("2014-02-20T10:30:15") {
		t.Errorf("CurrentDatetime = %v", got)
	}
	if got := CurrentDate(clock); got != date("2014-02-20") {
		t.Errorf("CurrentDate = %v", got)
	}
	want := adm.Time(10*3600000 + 30*60000 + 15*1000)
	if got := CurrentTime(clock); got != want {
		t.Errorf("CurrentTime = %v, want %v", got, want)
	}
}

func TestDateDatetimeConversions(t *testing.T) {
	d := date("2014-02-20")
	if got := DateFromDatetime(DatetimeFromDate(d)); got != d {
		t.Errorf("round trip date conversion = %v, want %v", got, d)
	}
	if got := DateFromDatetime(dt("2014-02-20T23:59:59")); got != d {
		t.Errorf("DateFromDatetime truncation = %v, want %v", got, d)
	}
	// Negative chronon (before epoch) still truncates toward the day start.
	if got := DateFromDatetime(dt("1969-12-31T12:00:00")); got != date("1969-12-31") {
		t.Errorf("pre-epoch truncation = %v", got)
	}
}

func TestAddSubtractDuration(t *testing.T) {
	start := dt("2014-01-01T00:00:00")
	plus30d, err := AddDuration(start, adm.Duration{Millis: 30 * 86400000})
	if err != nil {
		t.Fatal(err)
	}
	if plus30d.(adm.Datetime) != dt("2014-01-31T00:00:00") {
		t.Errorf("start + P30D = %v", plus30d)
	}
	plus2mo, err := AddDuration(start, adm.Duration{Months: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plus2mo.(adm.Datetime) != dt("2014-03-01T00:00:00") {
		t.Errorf("start + P2M = %v", plus2mo)
	}
	back, err := SubtractDuration(plus30d, adm.Duration{Millis: 30 * 86400000})
	if err != nil {
		t.Fatal(err)
	}
	if back.(adm.Datetime) != start {
		t.Errorf("subtract did not invert add: %v", back)
	}
	d2, err := AddDuration(date("2014-01-01"), adm.Duration{Millis: 86400000})
	if err != nil {
		t.Fatal(err)
	}
	if d2.(adm.Date) != date("2014-01-02") {
		t.Errorf("date + P1D = %v", d2)
	}
	tm, err := AddDuration(adm.Time(23*3600000), adm.Duration{Millis: 2 * 3600000})
	if err != nil {
		t.Fatal(err)
	}
	if tm.(adm.Time) != adm.Time(1*3600000) {
		t.Errorf("time wraparound = %v", tm)
	}
	if _, err := AddDuration(adm.Time(0), adm.Duration{Months: 1}); err == nil {
		t.Error("adding months to a time should fail")
	}
	if _, err := AddDuration(adm.String("x"), adm.Duration{}); err == nil {
		t.Error("adding duration to a string should fail")
	}
}

func TestSubtract(t *testing.T) {
	d, err := Subtract(dt("2014-02-01T00:00:00"), dt("2014-01-01T00:00:00"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Millis != 31*86400000 {
		t.Errorf("datetime subtraction = %v", d)
	}
	d, err = Subtract(date("2014-01-31"), date("2014-01-01"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Millis != 30*86400000 {
		t.Errorf("date subtraction = %v", d)
	}
	if _, err := Subtract(dt("2014-01-01T00:00:00"), date("2014-01-01")); err == nil {
		t.Error("mixed-type subtraction should fail")
	}
}

func TestTimezoneAdjustment(t *testing.T) {
	base := dt("2014-01-01T12:00:00")
	got, err := AdjustDatetimeForTimezone(base, "+08:00")
	if err != nil {
		t.Fatal(err)
	}
	if got != dt("2014-01-01T20:00:00") {
		t.Errorf("adjust +08:00 = %v", got)
	}
	got, err = AdjustDatetimeForTimezone(base, "-0500")
	if err != nil {
		t.Fatal(err)
	}
	if got != dt("2014-01-01T07:00:00") {
		t.Errorf("adjust -0500 = %v", got)
	}
	tmGot, err := AdjustTimeForTimezone(adm.Time(23*3600000), "+02:00")
	if err != nil {
		t.Fatal(err)
	}
	if tmGot != adm.Time(1*3600000) {
		t.Errorf("time adjust wraps = %v", tmGot)
	}
	if _, err := AdjustDatetimeForTimezone(base, "bogus"); err == nil {
		t.Error("bad timezone should fail")
	}
}

func TestIntervalConstruction(t *testing.T) {
	iv, err := IntervalStartFromDatetime(dt("2014-01-01T00:00:00"), adm.Duration{Millis: 3600000})
	if err != nil {
		t.Fatal(err)
	}
	if iv.End-iv.Start != 3600000 {
		t.Errorf("interval width = %d", iv.End-iv.Start)
	}
	ivd, err := IntervalStartFromDate(date("2014-01-01"), adm.Duration{Millis: 7 * 86400000})
	if err != nil {
		t.Fatal(err)
	}
	if ivd.PointTag != adm.TagDate || ivd.End-ivd.Start != 7 {
		t.Errorf("date interval = %+v", ivd)
	}
	if _, err := IntervalFromDatetimes(dt("2014-01-02T00:00:00"), dt("2014-01-01T00:00:00")); err == nil {
		t.Error("reversed interval should fail")
	}
}

func TestIntervalBin(t *testing.T) {
	anchor := dt("2014-01-01T00:00:00")
	v := dt("2014-01-01T10:30:00")
	bin, err := IntervalBin(v, anchor, adm.Duration{Millis: 3600000})
	if err != nil {
		t.Fatal(err)
	}
	if adm.Datetime(bin.Start) != dt("2014-01-01T10:00:00") || adm.Datetime(bin.End) != dt("2014-01-01T11:00:00") {
		t.Errorf("hour bin = %+v", bin)
	}
	// A value before the anchor falls into a bin that still contains it.
	early := dt("2013-12-31T23:30:00")
	bin, err = IntervalBin(early, anchor, adm.Duration{Millis: 3600000})
	if err != nil {
		t.Fatal(err)
	}
	if !(bin.Start <= int64(early) && int64(early) < bin.End) {
		t.Errorf("pre-anchor bin %+v does not contain %v", bin, early)
	}
	// Month-granularity bins.
	mbin, err := IntervalBin(dt("2014-02-20T00:00:00"), anchor, adm.Duration{Months: 1})
	if err != nil {
		t.Fatal(err)
	}
	if adm.Datetime(mbin.Start) != dt("2014-02-01T00:00:00") || adm.Datetime(mbin.End) != dt("2014-03-01T00:00:00") {
		t.Errorf("month bin = %+v", mbin)
	}
	if _, err := IntervalBin(v, anchor, adm.Duration{}); err == nil {
		t.Error("zero-width bin should fail")
	}
	if _, err := IntervalBin(v, date("2014-01-01"), adm.Duration{Millis: 1}); err == nil {
		t.Error("mismatched bin anchor type should fail")
	}
}

func TestIntervalBinProperty(t *testing.T) {
	anchor := int64(0)
	f := func(chronon int64, width uint32) bool {
		w := int64(width%100000) + 1
		bin, err := IntervalBin(adm.Datetime(chronon), adm.Datetime(anchor), adm.Duration{Millis: w})
		if err != nil {
			return false
		}
		return bin.Start <= chronon && chronon < bin.End && bin.End-bin.Start == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllenRelations(t *testing.T) {
	mk := func(s, e int64) adm.Interval {
		return adm.Interval{PointTag: adm.TagDatetime, Start: s, End: e}
	}
	a, b := mk(0, 10), mk(20, 30)
	if !Before(a, b) || Before(b, a) || !After(b, a) {
		t.Error("Before/After misreport")
	}
	if !Meets(mk(0, 10), mk(10, 20)) || !MetBy(mk(10, 20), mk(0, 10)) {
		t.Error("Meets/MetBy misreport")
	}
	if !Overlaps(mk(0, 15), mk(10, 30)) || Overlaps(mk(10, 30), mk(0, 15)) {
		t.Error("Overlaps misreports")
	}
	if !OverlappedBy(mk(10, 30), mk(0, 15)) {
		t.Error("OverlappedBy misreports")
	}
	if !Overlapping(mk(0, 15), mk(10, 30)) || Overlapping(mk(0, 10), mk(10, 20)) {
		t.Error("Overlapping misreports")
	}
	if !Starts(mk(0, 5), mk(0, 10)) || !StartedBy(mk(0, 10), mk(0, 5)) {
		t.Error("Starts/StartedBy misreport")
	}
	if !Finishes(mk(5, 10), mk(0, 10)) || !FinishedBy(mk(0, 10), mk(5, 10)) {
		t.Error("Finishes/FinishedBy misreport")
	}
	if !During(mk(2, 8), mk(0, 10)) || !Covers(mk(0, 10), mk(2, 8)) {
		t.Error("During/Covers misreport")
	}
	if !Equals(mk(1, 2), mk(1, 2)) || Equals(mk(1, 2), mk(1, 3)) {
		t.Error("Equals misreports")
	}
}

func TestAllenRelationsMutuallyExclusiveProperty(t *testing.T) {
	// For any two proper intervals exactly one of the 13 Allen relations holds.
	f := func(s1, w1, s2, w2 uint16) bool {
		a := adm.Interval{Start: int64(s1), End: int64(s1) + int64(w1%50) + 1}
		b := adm.Interval{Start: int64(s2), End: int64(s2) + int64(w2%50) + 1}
		count := 0
		for _, holds := range []bool{
			Before(a, b), After(a, b), Meets(a, b), MetBy(a, b),
			Overlaps(a, b), OverlappedBy(a, b), Starts(a, b), StartedBy(a, b),
			Finishes(a, b), FinishedBy(a, b), During(a, b), Covers(a, b), Equals(a, b),
		} {
			if holds {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
