// Package crashpoint provides fault-injection points for the crash-torture
// harness. Durability-critical code paths call Hit at the moments a crash
// would be most damaging (after a WAL append, between a component's temp
// write and its rename, mid-checkpoint). In normal operation a Hit is one
// atomic increment; when the ASTERIX_CRASHPOINT environment variable is set
// to N, the Nth Hit kills the process with SIGKILL — no deferred functions,
// no user-space flushes, the process simply stops mid-operation.
//
// This tests PROCESS-crash semantics, not power failure: dirty pages the
// process wrote before the SIGKILL still reach disk via the OS page cache,
// so a write that was never fsync'd can survive a kill -9 but would be lost
// (or torn) when the machine itself dies. The fsync discipline that covers
// the power-failure case — force the WAL before any component flush, fsync
// components before their atomic rename — is enforced by code ordering and
// asserted separately; the harness exercises every crash point's recovery
// path but cannot observe a missing fsync.
package crashpoint

import (
	"os"
	"strconv"
	"sync/atomic"
)

// EnvVar names the environment variable selecting the fatal hit count.
// Unset or non-positive disables killing; hits are still counted so a
// calibration run can report how many crash opportunities a workload has.
const EnvVar = "ASTERIX_CRASHPOINT"

var (
	count  atomic.Int64
	target int64
)

func init() {
	if v := os.Getenv(EnvVar); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			target = n
		}
	}
}

// Hit records one crash opportunity. The name labels the call site; it is
// not interpreted, but keeping distinct names makes kill sites identifiable
// when a torture cycle is replayed under a debugger.
func Hit(name string) {
	_ = name
	n := count.Add(1)
	if target > 0 && n == target {
		p, err := os.FindProcess(os.Getpid())
		if err == nil {
			p.Kill()
		}
		// SIGKILL delivery is asynchronous; never let this goroutine
		// proceed past the crash point.
		select {}
	}
}

// Count reports how many crash opportunities the process has hit so far.
func Count() int64 { return count.Load() }

// Armed reports whether a fatal hit count is configured.
func Armed() bool { return target > 0 }
