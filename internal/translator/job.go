package translator

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"asterixdb/internal/adm"
	"asterixdb/internal/algebra"
	"asterixdb/internal/aql"
	"asterixdb/internal/expr"
	"asterixdb/internal/hyracks"
	"asterixdb/internal/runfile"
	"asterixdb/internal/storage"
)

// JobOptions configures job generation.
type JobOptions struct {
	// Partitions is the storage partition count (job parallelism).
	Partitions int
	// MemoryBudget is the per-job memory budget in bytes for blocking
	// operators, divided evenly among the instances of the job's spillable
	// operators (sort, hybrid hash join, hash group-by). Zero means
	// unconstrained. It also derives the job's frame size, so constrained
	// jobs ship proportionally smaller frames.
	MemoryBudget int64
	// SpillDir is the directory run files are created under when operators
	// spill (a job-private subdirectory is created lazily). Empty falls back
	// to the system temp directory.
	SpillDir string
	// DisableFusion skips the one-to-one operator fusion pass, leaving each
	// pipelined operator as its own goroutine-per-partition instance (the
	// pre-fusion execution shape, kept for differential testing and
	// benchmarking).
	DisableFusion bool
	// Distributed marks job generation for a multi-node cluster run, where an
	// operator instance sees only the storage partitions of the node it is
	// placed on. Plan shapes that probe the whole dataset from one instance —
	// the index nested-loop join's per-probe lookups — degrade to their
	// shuffled equivalents (hybrid hash join), which partition by key and
	// stay correct across nodes. Per-partition access paths (primary scans,
	// secondary index searches) are unaffected: their instances are placed on
	// the node owning the partition.
	Distributed bool
}

// BuildJob converts an optimized physical plan into an executable Hyracks
// job: every operator in the returned job carries a runnable closure over the
// runtime's storage partitions and the expression evaluator, wired with the
// connector structure of Figure 6. Every access path compiles to partitioned
// operators: B+-tree, R-tree, and inverted-index secondary searches each run
// as per-partition secondary-search -> PK-sort -> primary-search stages,
// correlated subplan sources (for $y in $x.list) compile to an unnest
// operator, and positional variables (for $v at $i in ...) compile to
// position-tagging sources (see buildPositionalScan). BuildJob reports an
// error only for plans that genuinely have no physical operator; the engine
// falls back to the reference expression interpreter for those.
//
// When opts.MemoryBudget is set, the job runs out-of-core: the budget is
// divided among the blocking operators' instances, each of which spills to
// run files (managed by the job's runfile.Manager, closed by the runtime on
// every termination path) instead of growing past its share.
func BuildJob(plan *algebra.Plan, rt Runtime, opts JobOptions) (*hyracks.Job, error) {
	if opts.Partitions <= 0 {
		opts.Partitions = 1
	}
	if plan.Root == nil || plan.Root.Kind != algebra.OpDistribute {
		return nil, fmt.Errorf("translator: plan has no distribute-result root")
	}
	b := &jobBuilder{
		job:         &hyracks.Job{},
		rt:          rt,
		partitions:  opts.Partitions,
		ctx:         rt.EvalContext(),
		query:       plan.Query,
		distributed: opts.Distributed,
	}
	// Decide whether the plan's group-by can fold its aggregates
	// incrementally; the consumer build functions read the resulting
	// expression rewrites through b.rewritten.
	b.prepareGroupFold(plan)
	if _, err := b.buildDistribute(plan.Root); err != nil {
		return nil, err
	}
	assignMemoryBudget(b.job, opts)
	job := b.job
	if !opts.DisableFusion {
		// Collapse one-to-one pipelined chains (scan -> select -> assign ->
		// distribute, and limit tails at parallelism 1) into single fused
		// operators: one goroutine and zero frame handoffs per chain instance.
		job = hyracks.FuseJob(job)
	}
	return job, nil
}

// assignMemoryBudget divides the job's memory budget evenly among the
// instances of its spillable blocking operators and attaches the job's spill
// manager, turning the blocking operators into their out-of-core variants.
// It also derives the job frame size from the budget so channel buffering
// scales down with it.
func assignMemoryBudget(job *hyracks.Job, opts JobOptions) {
	if opts.MemoryBudget <= 0 {
		return
	}
	job.FrameSize = hyracks.FrameSizeForBudget(opts.MemoryBudget)
	instances := 0
	for _, op := range job.Operators {
		switch o := op.(type) {
		case *hyracks.SortOp:
			instances += o.Partitions
		case *hyracks.HybridHashJoinOp:
			instances += o.Partitions
		case *hyracks.HashGroupOp:
			instances += o.Partitions
		case *crossJoinOp:
			instances += o.par
		}
	}
	if instances == 0 {
		return
	}
	mgr := runfile.NewManager(opts.SpillDir, opts.MemoryBudget)
	job.Spill = mgr
	share := opts.MemoryBudget / int64(instances)
	if share < 1 {
		share = 1
	}
	// Each operator gets its own Budget (same manager and share) so its
	// SpillObserver attributes run files and resident peaks per operator
	// in job profiles.
	opBudget := func() *runfile.Budget {
		return &runfile.Budget{M: mgr, PerInstance: share, Obs: &runfile.SpillObserver{}}
	}
	for _, op := range job.Operators {
		switch o := op.(type) {
		case *hyracks.SortOp:
			o.Spill = opBudget()
		case *hyracks.HybridHashJoinOp:
			o.Spill = opBudget()
		case *hyracks.HashGroupOp:
			o.Spill = opBudget()
		case *crossJoinOp:
			o.spill = opBudget()
		}
	}
}

// jobBuilder accumulates operators and connectors while walking a plan tree
// bottom-up.
type jobBuilder struct {
	job         *hyracks.Job
	rt          Runtime
	partitions  int
	ctx         *expr.Context
	query       *aql.FLWORExpr
	distributed bool
	// scanBounds holds per-scan emit bounds pushed down from a limit clause
	// (offset+limit per partition): buildLimit records them before building
	// its input, and buildScan caps each partition's scan accordingly.
	scanBounds map[*algebra.Node]int
	// groupFold is the incremental-aggregate plan for the job's group-by (nil
	// when the group-by materializes bags), and exprRewrites maps consumer
	// expressions to their fold-rewritten forms (agg calls over with-variables
	// replaced by synthetic column references). See groupfold.go.
	groupFold    *groupFold
	exprRewrites map[aql.Expr]aql.Expr
}

// stream describes the output of a built subtree: the producing operator,
// its parallelism, and the tuple schema it emits.
type stream struct {
	op     int
	par    int
	schema Schema
}

// connect wires prev -> op on port 0 with the given connector and returns the
// new stream.
func (b *jobBuilder) connect(prev stream, op int, par int, schema Schema, c hyracks.Connector) stream {
	b.job.Connect(prev.op, op, c)
	return stream{op: op, par: par, schema: schema}
}

// gatherConnector merges an N-way stream into a single consumer instance.
func gatherConnector(par int) hyracks.Connector {
	if par == 1 {
		return hyracks.Connector{Kind: hyracks.OneToOne}
	}
	return hyracks.Connector{Kind: hyracks.MToNPartitioningMerging}
}

// bindInto overwrites env with the tuple's bindings under the schema.
func bindInto(env expr.Env, schema Schema, t hyracks.Tuple) {
	for i, name := range schema {
		if i < len(t) && t[i] != nil {
			env[name] = t[i]
		} else {
			delete(env, name)
		}
	}
}

// tupleBlock is the number of single-column tuples that share one backing
// allocation in tupleAllocator and the datasource scan.
const tupleBlock = 512

// tupleAllocator returns a per-instance maker of one-column tuples packed
// into shared blocks: one backing allocation per tupleBlock tuples instead of
// one per tuple. Each slot is written exactly once and the three-index cap
// keeps a downstream append from aliasing the next tuple. Instances must call
// it only from their own partition p, which is the operator contract anyway.
func tupleAllocator(par int) func(p int, v adm.Value) hyracks.Tuple {
	blks := make([][]adm.Value, par)
	return func(p int, v adm.Value) hyracks.Tuple {
		blk := blks[p]
		if len(blk) == cap(blk) {
			blk = make([]adm.Value, 0, tupleBlock)
		}
		blk = append(blk, v)
		blks[p] = blk
		i := len(blk) - 1
		return hyracks.Tuple(blk[i : i+1 : i+1])
	}
}

// envBinder returns a per-partition tuple-to-environment binder that reuses
// one map per operator instance. The evaluator never retains an environment
// beyond the Eval call (Env.With copies), so streaming operators can
// overwrite the same map for every tuple instead of allocating one each —
// the dominant per-tuple cost otherwise. Operators that materialize
// environments (group-by, sort) must use Schema.Env instead.
func envBinder(schema Schema, par int) func(p int, t hyracks.Tuple) expr.Env {
	envs := make([]expr.Env, par)
	return func(p int, t hyracks.Tuple) expr.Env {
		env := envs[p]
		if env == nil {
			env = make(expr.Env, len(schema)+4)
			envs[p] = env
		}
		bindInto(env, schema, t)
		return env
	}
}

func (b *jobBuilder) build(n *algebra.Node) (stream, error) {
	switch n.Kind {
	case algebra.OpScan:
		return b.buildScan(n)
	case algebra.OpSubplan:
		return b.buildSubplan(n)
	case algebra.OpUnnest:
		return b.buildUnnest(n)
	case algebra.OpIndexSearch:
		return b.buildIndexSearch(n)
	case algebra.OpRTreeSearch:
		return b.buildRTreeSearch(n)
	case algebra.OpInvertedSearch:
		return b.buildInvertedSearch(n)
	case algebra.OpSortPK:
		return b.buildSortPK(n)
	case algebra.OpPrimarySearch:
		return b.buildPrimarySearch(n)
	case algebra.OpSelect:
		return b.buildSelect(n)
	case algebra.OpAssign:
		return b.buildAssign(n)
	case algebra.OpJoin:
		return b.buildJoin(n)
	case algebra.OpGroupBy:
		return b.buildGroupBy(n)
	case algebra.OpOrder:
		return b.buildOrder(n)
	case algebra.OpLimit:
		return b.buildLimit(n)
	case algebra.OpLocalAgg:
		return b.buildLocalAgg(n)
	case algebra.OpGlobalAgg:
		return b.buildGlobalAgg(n)
	case algebra.OpAggregate:
		return b.buildAggregate(n)
	}
	return stream{}, fmt.Errorf("translator: no executable operator for %s", n.Kind)
}

// buildInput builds the node's primary input, or a constant single-empty-
// tuple source for input-less operators (queries that begin with let
// clauses).
func (b *jobBuilder) buildInput(n *algebra.Node) (stream, error) {
	if len(n.Inputs) == 0 {
		op := b.job.Add(&hyracks.SourceOp{
			Label:      "empty-tuple-source",
			Partitions: 1,
			Produce: func(_ int, emit func(hyracks.Tuple) bool) error {
				emit(hyracks.Tuple{})
				return nil
			},
		})
		return stream{op: op, par: 1, schema: Schema{}}, nil
	}
	return b.build(n.Inputs[0])
}

// ----------------------------------------------------------------------------
// Sources
// ----------------------------------------------------------------------------

func (b *jobBuilder) buildScan(n *algebra.Node) (stream, error) {
	schema := Schema{n.Variable}
	bound, bounded := b.scanBounds[n]
	if ds, ok := b.rt.LookupDataset(n.Dataverse, n.Dataset); ok {
		if n.PosVar != "" {
			return b.buildPositionalScan(n, bound, bounded, ds)
		}
		// Internal dataset: one scan instance per storage partition. A
		// pushed-down limit bound stops each partition's scan at exactly
		// offset+limit emitted records, instead of overrunning by a frame
		// until the limit's upstream cancellation arrives.
		mk := tupleAllocator(b.partitions)
		op := b.job.Add(&hyracks.SourceOp{
			Label:      fmt.Sprintf("datasource-scan(%s)", n.Dataset),
			Partitions: b.partitions,
			Produce: func(p int, emit func(hyracks.Tuple) bool) error {
				emitted := 0
				return ds.ScanPartition(p, func(rec adm.Value) bool {
					if bounded && emitted >= bound {
						return false
					}
					emitted++
					return emit(mk(p, rec))
				})
			},
		})
		return stream{op: op, par: b.partitions, schema: schema}, nil
	}
	// Metadata and external datasets have no storage partitions; the runtime
	// materializes them into a single-instance source. Unknown datasets
	// surface their error when the job runs, like the interpreter. The
	// materialized order IS the iteration order, so a positional variable is
	// a plain counter here.
	if n.PosVar != "" {
		schema = Schema{n.Variable, n.PosVar}
	}
	posVar, dataverse, dataset := n.PosVar, n.Dataverse, n.Dataset
	op := b.job.Add(&hyracks.SourceOp{
		Label:      fmt.Sprintf("datasource-scan(%s)", n.Dataset),
		Partitions: 1,
		Produce: func(_ int, emit func(hyracks.Tuple) bool) error {
			recs, err := b.rt.ReadDatasetRecords(dataverse, dataset)
			if err != nil {
				return err
			}
			if bounded && bound < len(recs) {
				recs = recs[:bound]
			}
			for i, rec := range recs {
				t := hyracks.Tuple{rec}
				if posVar != "" {
					t = append(t, adm.Int64(i+1))
				}
				if !emit(t) {
					return nil
				}
			}
			return nil
		},
	})
	return stream{op: op, par: 1, schema: schema}, nil
}

// buildPositionalScan compiles `for $v at $i in dataset D`: the interpreter
// defines $i as the record's 1-based position in the concatenation of the
// partition scans (partition 0 first, each in scan order). The per-partition
// scan instances are kept — they stay aligned with storage ownership, which a
// distributed run relies on — and each tags its records with (partition,
// sequence); a single-instance stable sort on that pair reproduces the
// concatenation order, and a counter operator above it binds the positions.
// A pushed-down limit bound remains sound: each partition's first `bound`
// records are a superset of the global first `bound` in concatenation order.
func (b *jobBuilder) buildPositionalScan(n *algebra.Node, bound int, bounded bool, ds *storage.Dataset) (stream, error) {
	tagged := Schema{n.Variable, "#part", "#seq"}
	scanOp := b.job.Add(&hyracks.SourceOp{
		Label:      fmt.Sprintf("datasource-scan(%s)", n.Dataset),
		Partitions: b.partitions,
		Produce: func(p int, emit func(hyracks.Tuple) bool) error {
			emitted := 0
			return ds.ScanPartition(p, func(rec adm.Value) bool {
				if bounded && emitted >= bound {
					return false
				}
				emitted++
				return emit(hyracks.Tuple{rec, adm.Int64(p), adm.Int64(emitted)})
			})
		},
	})
	scan := stream{op: scanOp, par: b.partitions, schema: tagged}
	sortOp := b.job.Add(&hyracks.SortOp{
		Label:      "sort(partition, seq)",
		Partitions: 1,
		Columns:    []int{1, 2},
	})
	sorted := b.connect(scan, sortOp, 1, tagged, gatherConnector(scan.par))
	// Single instance, run once per job: the closure counter is safe.
	pos := 0
	posVar := n.PosVar
	asg := b.job.Add(&hyracks.FlatMapOp{
		Label:      fmt.Sprintf("assign-positions($%s)", posVar),
		Partitions: 1,
		Fn: func(_ int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error {
			pos++
			emit(hyracks.Tuple{t[0], adm.Int64(pos)})
			return nil
		},
	})
	return b.connect(sorted, asg, 1, Schema{n.Variable, posVar}, hyracks.Connector{Kind: hyracks.OneToOne}), nil
}

func (b *jobBuilder) buildSubplan(n *algebra.Node) (stream, error) {
	src := n.Exprs[0]
	if vars := algebra.FreeVarsOf(src); len(vars) > 0 {
		// A source with free variable references (e.g. iterating a field of an
		// outer binding) cannot run as a standalone datasource; algebra.Build
		// compiles those as unnest operators, so this is only a safety net.
		return stream{}, fmt.Errorf("translator: correlated subplan source references $%s", vars[0])
	}
	schema := Schema{n.Variable}
	if n.PosVar != "" {
		schema = Schema{n.Variable, n.PosVar}
	}
	posVar := n.PosVar
	op := b.job.Add(&hyracks.SourceOp{
		Label:      "subplan",
		Partitions: 1,
		Produce: func(_ int, emit func(hyracks.Tuple) bool) error {
			v, err := expr.Eval(b.ctx, expr.Env{}, src)
			if err != nil {
				return err
			}
			for i, it := range expr.IterationItems(v) {
				t := hyracks.Tuple{it}
				if posVar != "" {
					t = append(t, adm.Int64(i+1))
				}
				if !emit(t) {
					return nil
				}
			}
			return nil
		},
	})
	return stream{op: op, par: 1, schema: schema}, nil
}

// buildUnnest compiles a correlated subplan source (for $y in $x.list): for
// every input tuple it evaluates the source expression under the tuple's
// bindings and emits one widened tuple per item, mirroring the interpreter's
// for-clause semantics (an unknown source contributes nothing; a non-list
// source contributes itself).
func (b *jobBuilder) buildUnnest(n *algebra.Node) (stream, error) {
	in, err := b.buildInput(n)
	if err != nil {
		return stream{}, err
	}
	src, inSchema := b.rewritten(n.Exprs[0]), in.schema
	outSchema := append(append(Schema{}, inSchema...), n.Variable)
	if n.PosVar != "" {
		// `for $y at $i in $x.list`: the position restarts at 1 for every
		// input tuple, exactly the interpreter's per-binding iteration.
		outSchema = append(outSchema, n.PosVar)
	}
	posVar := n.PosVar
	bind := envBinder(inSchema, in.par)
	op := b.job.Add(&hyracks.FlatMapOp{
		Label:      fmt.Sprintf("unnest($%s)", n.Variable),
		Partitions: in.par,
		Fn: func(p int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error {
			v, err := expr.Eval(b.ctx, bind(p, t), src)
			if err != nil {
				return err
			}
			for i, it := range expr.IterationItems(v) {
				out := make(hyracks.Tuple, len(t), len(t)+2)
				copy(out, t)
				out = append(out, it)
				if posVar != "" {
					out = append(out, adm.Int64(i+1))
				}
				if !emit(out) {
					return nil
				}
			}
			return nil
		},
	})
	return b.connect(in, op, in.par, outSchema, hyracks.Connector{Kind: hyracks.OneToOne}), nil
}

// pkSchema is the synthetic single-column schema that encoded primary keys
// flow in between the stages of the secondary-index access path.
var pkSchema = Schema{"#pk"}

// buildIndexSearch is the first stage of the compiled secondary B+-tree
// access path: one search instance per storage partition, each searching its
// partition-local secondary index and emitting the matching encoded primary
// keys. The PK sort and primary search stages above run per-partition too, so
// the whole access path executes at full parallelism.
func (b *jobBuilder) buildIndexSearch(n *algebra.Node) (stream, error) {
	ds, ok := b.rt.LookupDataset(n.Dataverse, n.Dataset)
	if !ok {
		return stream{}, fmt.Errorf("translator: dataset %q has no stored partitions for index search", n.Dataset)
	}
	index, loExpr, hiExpr := n.Index, n.LoExpr, n.HiExpr
	// The bounds are evaluated once per job (not once per partition instance):
	// a volatile bound such as current-datetime() must not make the instances
	// search different ranges.
	bounds := onceValue(func() ([2]adm.Value, error) {
		var lohi [2]adm.Value
		for i, e := range []aql.Expr{loExpr, hiExpr} {
			if e == nil {
				continue
			}
			v, err := expr.Eval(b.ctx, expr.Env{}, e)
			if err != nil {
				return lohi, err
			}
			lohi[i] = v
		}
		return lohi, nil
	})
	op := b.job.Add(&hyracks.SourceOp{
		Label:      fmt.Sprintf("btree-search(%s)", index),
		Partitions: b.partitions,
		Produce: func(p int, emit func(hyracks.Tuple) bool) error {
			lohi, err := bounds()
			if err != nil {
				return err
			}
			return ds.SearchSecondaryRangePartition(p, index, lohi[0], lohi[1], func(pk []byte) bool {
				return emit(hyracks.Tuple{adm.Binary(pk)})
			})
		},
	})
	return stream{op: op, par: b.partitions, schema: pkSchema}, nil
}

// onceValue wraps a computation so every partition instance of a search
// operator shares one evaluation (and one result) per job run.
func onceValue[T any](f func() (T, error)) func() (T, error) {
	var once sync.Once
	var v T
	var err error
	return func() (T, error) {
		once.Do(func() { v, err = f() })
		return v, err
	}
}

// buildRTreeSearch is the R-tree analogue of buildIndexSearch: each instance
// searches its partition-local R-tree with the MBR of the probe value and
// emits matching primary keys. An unknown or non-spatial probe matches
// nothing (the predicate above would evaluate to false/null everywhere).
func (b *jobBuilder) buildRTreeSearch(n *algebra.Node) (stream, error) {
	ds, ok := b.rt.LookupDataset(n.Dataverse, n.Dataset)
	if !ok {
		return stream{}, fmt.Errorf("translator: dataset %q has no stored partitions for rtree search", n.Dataset)
	}
	index, probeExpr := n.Index, n.ProbeExpr
	probe := onceValue(func() (adm.Value, error) {
		return expr.Eval(b.ctx, expr.Env{}, probeExpr)
	})
	op := b.job.Add(&hyracks.SourceOp{
		Label:      fmt.Sprintf("rtree-search(%s)", index),
		Partitions: b.partitions,
		Produce: func(p int, emit func(hyracks.Tuple) bool) error {
			v, err := probe()
			if err != nil {
				return err
			}
			mbr, ok := storage.SpatialProbeMBR(v)
			if !ok {
				return nil // unknown or non-spatial probe matches nothing
			}
			return ds.SearchRTreePartition(p, index, mbr, func(pk []byte) bool {
				return emit(hyracks.Tuple{adm.Binary(pk)})
			})
		},
	})
	return stream{op: op, par: b.partitions, schema: pkSchema}, nil
}

// buildInvertedSearch is the inverted-index analogue of buildIndexSearch:
// each instance probes its partition-local keyword or ngram index for the
// conservative candidate set (every token / every gram of the probe) and
// emits matching primary keys; the select above post-validates the exact
// predicate. An unknown or non-string probe matches nothing.
func (b *jobBuilder) buildInvertedSearch(n *algebra.Node) (stream, error) {
	ds, ok := b.rt.LookupDataset(n.Dataverse, n.Dataset)
	if !ok {
		return stream{}, fmt.Errorf("translator: dataset %q has no stored partitions for inverted search", n.Dataset)
	}
	index, probeExpr := n.Index, n.ProbeExpr
	probe := onceValue(func() (adm.Value, error) {
		return expr.Eval(b.ctx, expr.Env{}, probeExpr)
	})
	op := b.job.Add(&hyracks.SourceOp{
		Label:      fmt.Sprintf("inverted-search(%s)", index),
		Partitions: b.partitions,
		Produce: func(p int, emit func(hyracks.Tuple) bool) error {
			v, err := probe()
			if err != nil {
				return err
			}
			s, ok := storage.StringProbe(v)
			if !ok {
				return nil // unknown or non-string probe matches nothing
			}
			return ds.SearchInvertedPartition(p, index, s, func(pk []byte) bool {
				return emit(hyracks.Tuple{adm.Binary(pk)})
			})
		},
	})
	return stream{op: op, par: b.partitions, schema: pkSchema}, nil
}

// buildSortPK compiles the sort between the secondary and primary index
// searches: a per-partition blocking sort of the encoded primary keys, which
// turns the primary-search stage's lookups into a sequential access pattern.
func (b *jobBuilder) buildSortPK(n *algebra.Node) (stream, error) {
	in, err := b.build(n.Inputs[0])
	if err != nil {
		return stream{}, err
	}
	op := b.job.Add(&hyracks.SortOp{
		Label:      "sort(primary-keys)",
		Partitions: in.par,
		Columns:    []int{0},
	})
	return b.connect(in, op, in.par, in.schema, hyracks.Connector{Kind: hyracks.OneToOne}), nil
}

// buildPrimarySearch compiles the primary-index search stage: each instance
// resolves the encoded primary keys flowing from its partition's secondary
// search against the same partition's primary B+-tree (secondary indexes are
// co-located with their records, so instance p only ever touches partition p)
// and emits the fetched records.
func (b *jobBuilder) buildPrimarySearch(n *algebra.Node) (stream, error) {
	in, err := b.build(n.Inputs[0])
	if err != nil {
		return stream{}, err
	}
	ds, ok := b.rt.LookupDataset(n.Dataverse, n.Dataset)
	if !ok {
		return stream{}, fmt.Errorf("translator: dataset %q has no stored partitions for primary search", n.Dataset)
	}
	op := b.job.Add(&hyracks.FlatMapOp{
		Label:      fmt.Sprintf("btree-search(%s)", n.Dataset),
		Partitions: in.par,
		Fn: func(p int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error {
			pk, ok := t[0].(adm.Binary)
			if !ok {
				return fmt.Errorf("translator: primary search expected an encoded key, got %s", t[0].Tag())
			}
			rec, found, err := ds.FetchPKPartition(p, pk)
			if err != nil {
				return err
			}
			if found {
				emit(hyracks.Tuple{rec})
			}
			return nil
		},
	})
	return b.connect(in, op, in.par, Schema{n.Variable}, hyracks.Connector{Kind: hyracks.OneToOne}), nil
}

// ----------------------------------------------------------------------------
// Pipelined operators
// ----------------------------------------------------------------------------

func (b *jobBuilder) buildSelect(n *algebra.Node) (stream, error) {
	in, err := b.buildInput(n)
	if err != nil {
		return stream{}, err
	}
	cond, schema := b.rewritten(n.Condition), in.schema
	bind := envBinder(schema, in.par)
	op := b.job.Add(&hyracks.FlatMapOp{
		Label:      "select",
		Partitions: in.par,
		Fn: func(p int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error {
			keep, err := expr.EvalBool(b.ctx, bind(p, t), cond)
			if err != nil {
				return err
			}
			if keep {
				emit(t)
			}
			return nil
		},
	})
	return b.connect(in, op, in.par, schema, hyracks.Connector{Kind: hyracks.OneToOne}), nil
}

func (b *jobBuilder) buildAssign(n *algebra.Node) (stream, error) {
	in, err := b.buildInput(n)
	if err != nil {
		return stream{}, err
	}
	vars, inSchema := n.Vars, in.schema
	exprs := make([]aql.Expr, len(n.Exprs))
	for i, e := range n.Exprs {
		exprs[i] = b.rewritten(e)
	}
	outSchema := append(append(Schema{}, inSchema...), vars...)
	bind := envBinder(inSchema, in.par)
	op := b.job.Add(&hyracks.FlatMapOp{
		Label:      "assign",
		Partitions: in.par,
		Fn: func(p int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error {
			env := bind(p, t)
			out := make(hyracks.Tuple, len(t), len(t)+len(vars))
			copy(out, t)
			for i, v := range vars {
				val, err := expr.Eval(b.ctx, env, exprs[i])
				if err != nil {
					return err
				}
				env[v] = val // later expressions see earlier assignments
				out = append(out, val)
			}
			emit(out)
			return nil
		},
	})
	return b.connect(in, op, in.par, outSchema, hyracks.Connector{Kind: hyracks.OneToOne}), nil
}

// ----------------------------------------------------------------------------
// Joins
// ----------------------------------------------------------------------------

func (b *jobBuilder) buildJoin(n *algebra.Node) (stream, error) {
	left, err := b.build(n.Inputs[0])
	if err != nil {
		return stream{}, err
	}
	method := n.Method
	if (method == algebra.HybridHashJoin || method == algebra.IndexNestedLoop) &&
		(n.LeftKey == nil || n.RightKey == nil) {
		method = algebra.NestedLoopJoin
	}
	if method == algebra.IndexNestedLoop && b.distributed {
		// An index nested-loop probe looks the key up in the locally visible
		// partitions only; on a cluster node that is a subset of the dataset,
		// so degrade to the hybrid hash join, which shuffles both sides by
		// key and stays correct across nodes.
		method = algebra.HybridHashJoin
	}
	if method == algebra.IndexNestedLoop {
		if s, ok, err := b.buildIndexNLJoin(n, left); err != nil || ok {
			return s, err
		}
		// The right side has no usable primary key or index: degrade to a
		// hybrid hash join, like the interpreter's fallback.
		method = algebra.HybridHashJoin
	}
	if method == algebra.HybridHashJoin {
		return b.buildHashJoin(n, left)
	}
	return b.buildNestedLoopJoin(n, left)
}

// keyAssign appends the evaluated join key as a synthetic trailing column so
// partitioning connectors can hash on it. Tuples whose key is NULL or MISSING
// are dropped, matching equijoin semantics.
func (b *jobBuilder) keyAssign(in stream, key aql.Expr, label string) stream {
	inSchema := in.schema
	outSchema := append(append(Schema{}, inSchema...), "#join-key")
	bind := envBinder(inSchema, in.par)
	op := b.job.Add(&hyracks.FlatMapOp{
		Label:      label,
		Partitions: in.par,
		Fn: func(p int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error {
			v, err := expr.Eval(b.ctx, bind(p, t), key)
			if err != nil {
				return err
			}
			if adm.IsUnknown(v) {
				return nil // drop: unknown keys never join
			}
			out := make(hyracks.Tuple, len(t), len(t)+1)
			copy(out, t)
			emit(append(out, v))
			return nil
		},
	})
	return b.connect(in, op, in.par, outSchema, hyracks.Connector{Kind: hyracks.OneToOne})
}

// buildHashJoin wires the paper's hybrid hash join: both sides are hash-
// partitioned on the join key (the probe into port 0, the build into port 1)
// so equal keys meet in the same join instance.
func (b *jobBuilder) buildHashJoin(n *algebra.Node, left stream) (stream, error) {
	right, err := b.build(n.Inputs[1])
	if err != nil {
		return stream{}, err
	}
	probe := b.keyAssign(left, n.LeftKey, "assign(probe-key)")
	build := b.keyAssign(right, n.RightKey, "assign(build-key)")
	probeCol, buildCol := len(left.schema), len(right.schema)
	outSchema := append(append(Schema{}, left.schema...), right.schema...)
	join := b.job.Add(&hyracks.HybridHashJoinOp{
		Label:      fmt.Sprintf("join(%s)", algebra.HybridHashJoin),
		Partitions: b.partitions,
		ProbeKey:   func(t hyracks.Tuple) adm.Value { return t[probeCol] },
		BuildKey:   func(t hyracks.Tuple) adm.Value { return t[buildCol] },
		Combine: func(p, bd hyracks.Tuple) hyracks.Tuple {
			out := make(hyracks.Tuple, 0, probeCol+buildCol)
			out = append(out, p[:probeCol]...)
			return append(out, bd[:buildCol]...)
		},
	})
	b.job.Connect(probe.op, join, hyracks.Connector{Kind: hyracks.MToNPartitioning, HashColumns: []int{probeCol}})
	b.job.ConnectPort(build.op, join, 1, hyracks.Connector{Kind: hyracks.MToNPartitioning, HashColumns: []int{buildCol}})
	return stream{op: join, par: b.partitions, schema: outSchema}, nil
}

// buildIndexNLJoin compiles the /*+ indexnl */ join: for every probe tuple it
// looks the join key up in the right dataset's primary index or a secondary
// B+-tree index. It reports ok=false when the right side is not index-
// probeable, in which case the caller degrades to a hash join.
func (b *jobBuilder) buildIndexNLJoin(n *algebra.Node, left stream) (stream, bool, error) {
	rightNode := n.Inputs[1]
	// A positional right scan cannot be replaced by index probes: they emit
	// only matching records, losing the full-scan positions.
	if rightNode.Kind != algebra.OpScan || rightNode.PosVar != "" {
		return stream{}, false, nil
	}
	ds, ok := b.rt.LookupDataset(rightNode.Dataverse, rightNode.Dataset)
	if !ok {
		return stream{}, false, nil
	}
	field, ok := fieldOfVar(n.RightKey, rightNode.Variable)
	if !ok {
		return stream{}, false, nil
	}
	spec := ds.Spec()
	pkProbe := len(spec.PrimaryKey) == 1 && spec.PrimaryKey[0] == field
	indexName := ""
	if !pkProbe {
		ix, found := ds.IndexOnField(field, storage.BTreeIndex)
		if !found {
			return stream{}, false, nil
		}
		indexName = ix.Name
	}
	leftKey, leftSchema := n.LeftKey, left.schema
	outSchema := append(append(Schema{}, left.schema...), rightNode.Variable)
	bind := envBinder(leftSchema, left.par)
	op := b.job.Add(&hyracks.FlatMapOp{
		Label:      fmt.Sprintf("join(%s)", algebra.IndexNestedLoop),
		Partitions: left.par,
		Fn: func(p int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error {
			v, err := expr.Eval(b.ctx, bind(p, t), leftKey)
			if err != nil {
				return err
			}
			if adm.IsUnknown(v) {
				return nil
			}
			var matches []*adm.Record
			if pkProbe {
				rec, found, err := ds.LookupPK(v)
				if err != nil {
					return err
				}
				if found {
					matches = []*adm.Record{rec}
				}
			} else {
				matches, err = ds.SearchSecondaryRange(indexName, v, v)
				if err != nil {
					return err
				}
			}
			for _, m := range matches {
				out := make(hyracks.Tuple, len(t), len(t)+1)
				copy(out, t)
				if !emit(append(out, m)) {
					return nil
				}
			}
			return nil
		},
	})
	s := b.connect(left, op, left.par, outSchema, hyracks.Connector{Kind: hyracks.OneToOne})
	return s, true, nil
}

// crossJoinOp is the nested-loop (cross product) join: the right side is
// broadcast to every instance over input port 1 and buffered, then each probe
// tuple from port 0 is combined with every buffered right tuple. A residual
// select above applies any non-equi predicate.
//
// With a spill budget the broadcast buffer is accounted; once it exceeds the
// instance's share the overflow is written to a run file and the join runs
// as a block nested loop — left tuples batch into budget-sized chunks and
// the spilled right side re-streams once per chunk, so resident memory stays
// bounded by the budget at the cost of extra sequential passes.
type crossJoinOp struct {
	label string
	par   int
	spill *runfile.Budget
}

func (o *crossJoinOp) Name() string     { return o.label }
func (o *crossJoinOp) Parallelism() int { return o.par }
func (o *crossJoinOp) Blocking() bool   { return true }

// SpillBudget implements hyracks.SpillBudgeted for job profiles.
func (o *crossJoinOp) SpillBudget() *runfile.Budget { return o.spill }

// combine concatenates a left and right tuple.
func combineCross(l, r hyracks.Tuple) hyracks.Tuple {
	out := make(hyracks.Tuple, 0, len(l)+len(r))
	out = append(out, l...)
	return append(out, r...)
}

func (o *crossJoinOp) Run(_ int, ins []*hyracks.In, emit func(hyracks.Tuple) bool) error {
	if len(ins) < 2 {
		return fmt.Errorf("hyracks: %s requires a build input on port 1", o.label)
	}
	var mem *runfile.Instance
	if o.spill != nil {
		mem = o.spill.NewInstance()
		defer mem.Close()
	}
	var resident []hyracks.Tuple
	var w *runfile.Writer
	for {
		t, more := ins[1].Next()
		if !more {
			break
		}
		sz := runfile.TupleMemSize(t)
		if w == nil && mem != nil && !mem.Fits(sz) {
			nw, err := o.spill.NewRun()
			if err != nil {
				return err
			}
			w = nw
		}
		if w != nil {
			if err := w.Write(t); err != nil {
				w.Abort()
				return err
			}
			continue
		}
		if mem != nil {
			mem.Add(sz)
		}
		resident = append(resident, t)
	}
	if w == nil {
		// Everything resident: stream the left side straight through.
		for {
			t, more := ins[0].Next()
			if !more {
				return nil
			}
			for _, r := range resident {
				if !emit(combineCross(t, r)) {
					return nil
				}
			}
		}
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	defer run.Release()
	// Block nested loop: batch left tuples within the remaining budget and
	// re-stream the spilled right rows once per batch.
	for {
		var chunk []hyracks.Tuple
		var chunkBytes int64
		for {
			t, more := ins[0].Next()
			if !more {
				break
			}
			sz := runfile.TupleMemSize(t)
			if mem != nil {
				mem.Add(sz)
			}
			chunkBytes += sz
			chunk = append(chunk, t)
			if mem != nil && !mem.Fits(1) {
				break
			}
		}
		if len(chunk) == 0 {
			return nil
		}
		stop := false
		for _, l := range chunk {
			for _, r := range resident {
				if !emit(combineCross(l, r)) {
					stop = true
					break
				}
			}
			if stop {
				break
			}
		}
		if !stop {
			rd, err := run.Open()
			if err != nil {
				if mem != nil {
					mem.Release(chunkBytes)
				}
				return err
			}
			for !stop {
				cols, err := rd.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					rd.Close()
					if mem != nil {
						mem.Release(chunkBytes)
					}
					return err
				}
				r := hyracks.Tuple(cols)
				for _, l := range chunk {
					if !emit(combineCross(l, r)) {
						stop = true
						break
					}
				}
			}
			rd.Close()
		}
		if mem != nil {
			mem.Release(chunkBytes)
		}
		if stop {
			return nil
		}
	}
}

func (b *jobBuilder) buildNestedLoopJoin(n *algebra.Node, left stream) (stream, error) {
	right, err := b.build(n.Inputs[1])
	if err != nil {
		return stream{}, err
	}
	outSchema := append(append(Schema{}, left.schema...), right.schema...)
	join := b.job.Add(&crossJoinOp{
		label: fmt.Sprintf("join(%s)", algebra.NestedLoopJoin),
		par:   left.par,
	})
	b.job.Connect(left.op, join, hyracks.Connector{Kind: hyracks.OneToOne})
	b.job.ConnectPort(right.op, join, 1, hyracks.Connector{Kind: hyracks.MToNReplicating})
	return stream{op: join, par: left.par, schema: outSchema}, nil
}

// ----------------------------------------------------------------------------
// Group, order, limit
// ----------------------------------------------------------------------------

// buildGroupBy hash-partitions the input on its grouping keys and applies the
// interpreter's group-by semantics within each partition; co-partitioning
// guarantees each group is complete in exactly one instance.
func (b *jobBuilder) buildGroupBy(n *algebra.Node) (stream, error) {
	in, err := b.buildInput(n)
	if err != nil {
		return stream{}, err
	}
	keys := n.GroupKeys
	inSchema := in.schema
	// Synthetic key columns for the shuffle.
	shuffleSchema := append(Schema{}, inSchema...)
	cols := make([]int, len(keys))
	for i := range keys {
		cols[i] = len(inSchema) + i
		shuffleSchema = append(shuffleSchema, fmt.Sprintf("#group-key-%d", i))
	}
	bind := envBinder(inSchema, in.par)
	keyOp := b.job.Add(&hyracks.FlatMapOp{
		Label:      "assign(group-keys)",
		Partitions: in.par,
		Fn: func(p int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error {
			env := bind(p, t)
			out := make(hyracks.Tuple, len(t), len(t)+len(keys))
			copy(out, t)
			for _, k := range keys {
				v, err := expr.Eval(b.ctx, env, k.Expr)
				if err != nil {
					return err
				}
				out = append(out, v)
			}
			emit(out)
			return nil
		},
	})
	keyed := b.connect(in, keyOp, in.par, shuffleSchema, hyracks.Connector{Kind: hyracks.OneToOne})

	// A single-partition input needs no repartitioning: every group is
	// already complete in the one instance, so skip the shuffle.
	groupPar := b.partitions
	groupConn := hyracks.Connector{Kind: hyracks.HashPartitioningShuffle, HashColumns: cols}
	if in.par == 1 {
		groupPar = 1
		groupConn = hyracks.Connector{Kind: hyracks.OneToOne}
	}

	// Fold-as-you-go path: every with-variable consumer is an aggregate call
	// (prepareGroupFold proved it and rewrote the consumers to read the
	// synthetic columns), so the group-by keeps one accumulator per (group,
	// aggregate) and never materializes a bag.
	if b.groupFold != nil && b.groupFold.node == n {
		aggs := make([]hyracks.GroupAgg, 0, len(b.groupFold.specs))
		outSchema := Schema{}
		for _, k := range keys {
			outSchema = append(outSchema, k.Var)
		}
		for _, sp := range b.groupFold.specs {
			col, ok := columnOfVariable(&aql.VariableRef{Name: sp.With}, inSchema)
			if !ok {
				return stream{}, fmt.Errorf("translator: group-by with-variable $%s is not bound", sp.With)
			}
			aggs = append(aggs, hyracks.GroupAgg{Func: sp.Func, Col: col})
			outSchema = append(outSchema, sp.Name)
		}
		groupOp := b.job.Add(&hyracks.HashGroupOp{
			Label:      "hash-group-by(incremental)",
			Partitions: groupPar,
			KeyColumns: cols,
			Aggs:       aggs,
		})
		return b.connect(keyed, groupOp, groupPar, outSchema, groupConn), nil
	}

	// The with-variables' tuple columns, resolved against the input schema.
	withCols := make([]int, len(n.GroupWith))
	for i, w := range n.GroupWith {
		col, ok := columnOfVariable(&aql.VariableRef{Name: w}, inSchema)
		if !ok {
			return stream{}, fmt.Errorf("translator: group-by with-variable $%s is not bound", w)
		}
		withCols[i] = col
	}
	outSchema := Schema{}
	for _, k := range keys {
		outSchema = append(outSchema, k.Var)
	}
	outSchema = append(outSchema, n.GroupWith...)
	// Group over tuples with the library's HashGroupOp: the key values were
	// computed by the assign above (so the shuffle and the grouping agree),
	// and each with-variable becomes the bag of its column's values across
	// the group, exactly the interpreter's applyGroupBy semantics in
	// first-encounter order.
	groupOp := b.job.Add(&hyracks.HashGroupOp{
		Label:      "hash-group-by",
		Partitions: groupPar,
		KeyColumns: cols,
		Reduce: func(key hyracks.Tuple, rows []hyracks.Tuple) (hyracks.Tuple, error) {
			out := make(hyracks.Tuple, 0, len(keys)+len(withCols))
			out = append(out, key...)
			for _, c := range withCols {
				items := make([]adm.Value, len(rows))
				for i, r := range rows {
					items[i] = r[c]
				}
				out = append(out, &adm.OrderedList{Items: items})
			}
			return out, nil
		},
	})
	return b.connect(keyed, groupOp, groupPar, outSchema, groupConn), nil
}

// buildOrder compiles order-by onto the library's SortOp so every sort —
// bare-variable and computed terms alike — gets the external merge sort
// under a memory budget. Bare-variable terms sort existing tuple columns
// directly; other terms are evaluated once per tuple into synthetic trailing
// columns by an assign below the sort, mirroring the interpreter's
// applyOrderBy (keys evaluated once, then a stable adm.Compare sort).
func (b *jobBuilder) buildOrder(n *algebra.Node) (stream, error) {
	in, err := b.buildInput(n)
	if err != nil {
		return stream{}, err
	}
	schema := in.schema
	orderTerms := make([]aql.OrderTerm, len(n.OrderTerms))
	for i, term := range n.OrderTerms {
		orderTerms[i] = aql.OrderTerm{Expr: b.rewritten(term.Expr), Desc: term.Desc}
	}
	colSort := true
	sortCols := make([]int, len(orderTerms))
	sortDesc := make([]bool, len(orderTerms))
	for i, term := range orderTerms {
		col, ok := columnOfVariable(term.Expr, schema)
		if !ok {
			colSort = false
			break
		}
		sortCols[i], sortDesc[i] = col, term.Desc
	}
	sortIn, outSchema := in, schema
	if !colSort {
		terms := orderTerms
		outSchema = append(Schema{}, schema...)
		for i, term := range terms {
			sortCols[i], sortDesc[i] = len(schema)+i, term.Desc
			outSchema = append(outSchema, fmt.Sprintf("#order-key-%d", i))
		}
		bind := envBinder(schema, in.par)
		keyOp := b.job.Add(&hyracks.FlatMapOp{
			Label:      "assign(order-keys)",
			Partitions: in.par,
			Fn: func(p int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error {
				env := bind(p, t)
				out := make(hyracks.Tuple, len(t), len(t)+len(terms))
				copy(out, t)
				for _, term := range terms {
					v, err := expr.Eval(b.ctx, env, term.Expr)
					if err != nil {
						return err
					}
					out = append(out, v)
				}
				emit(out)
				return nil
			},
		})
		sortIn = b.connect(in, keyOp, in.par, outSchema, hyracks.Connector{Kind: hyracks.OneToOne})
	}
	op := b.job.Add(&hyracks.SortOp{
		Label:      "sort",
		Partitions: 1,
		Columns:    sortCols,
		Desc:       sortDesc,
	})
	// The synthetic key columns ride along in the output schema; downstream
	// operators resolve variables by name, so the extra trailing columns are
	// inert.
	return b.connect(sortIn, op, 1, outSchema, gatherConnector(sortIn.par)), nil
}

// buildLimit compiles the limit clause onto the library's cancelling
// LimitOp. Limit and offset expressions never see tuple bindings (the
// interpreter's applyLimit evaluates them in an empty environment too), so
// they are folded to constants here at build time.
//
// When the limit sits directly above a scan (possibly through assign
// operators, which are exactly one-to-one), the bound offset+limit is pushed
// into the scan itself: each partition's scan stops emitting at the bound
// instead of overrunning by a frame until cancellation propagates back.
// Selects, unnests, joins and blocking operators between the limit and the
// scan block the pushdown — they change cardinality, so the scan cannot know
// how many records the limit needs.
func (b *jobBuilder) buildLimit(n *algebra.Node) (stream, error) {
	limV, err := expr.Eval(b.ctx, expr.Env{}, n.LimitExpr)
	if err != nil {
		return stream{}, err
	}
	lim, ok := adm.NumericAsInt64(limV)
	if !ok {
		return stream{}, fmt.Errorf("translator: limit must be numeric")
	}
	offset := int64(0)
	if n.OffsetExpr != nil {
		offV, err := expr.Eval(b.ctx, expr.Env{}, n.OffsetExpr)
		if err != nil {
			return stream{}, err
		}
		offset, _ = adm.NumericAsInt64(offV)
	}
	// Push the bound down only when offset+limit is sane: a huge limit used
	// as an "unbounded" idiom could overflow the sum (or an int on 32-bit
	// platforms) into a scan-nothing bound, and gains nothing from pushdown.
	if bound := max(lim, 0) + max(offset, 0); bound >= 0 && bound <= 1<<31-1 {
		if scan := limitPushdownScan(n); scan != nil {
			if b.scanBounds == nil {
				b.scanBounds = map[*algebra.Node]int{}
			}
			b.scanBounds[scan] = int(bound)
		}
	}
	in, err := b.buildInput(n)
	if err != nil {
		return stream{}, err
	}
	op := b.job.Add(&hyracks.LimitOp{
		Label:      "limit",
		Partitions: 1,
		N:          int(max(lim, 0)),
		Offset:     int(max(offset, 0)),
	})
	return b.connect(in, op, 1, in.schema, gatherConnector(in.par)), nil
}

// limitPushdownScan walks from a limit node toward its source and returns
// the scan the bound may be pushed into, or nil when any operator on the way
// is not exactly one-to-one (a select drops tuples, an unnest multiplies
// them, joins and blocking operators reshape the stream entirely).
func limitPushdownScan(n *algebra.Node) *algebra.Node {
	if len(n.Inputs) != 1 {
		return nil
	}
	cur := n.Inputs[0]
	for cur != nil {
		switch cur.Kind {
		case algebra.OpAssign:
			if len(cur.Inputs) != 1 {
				return nil
			}
			cur = cur.Inputs[0]
		case algebra.OpScan:
			return cur
		default:
			return nil
		}
	}
	return nil
}

// ----------------------------------------------------------------------------
// Aggregation
// ----------------------------------------------------------------------------

// aggSchema is the synthetic single-column schema aggregate results flow in.
var aggSchema = Schema{"#agg"}

// aggState is the O(1) streaming state behind every aggregate fold: the
// local half of the split, and the unsplit ablation aggregate. It mirrors
// the builtin aggregate's null semantics exactly — under AQL semantics an
// unknown item (or one that fails numeric conversion or comparison) poisons
// the aggregate to null; under SQL semantics unknowns are skipped.
type aggState struct {
	base string // count, sum, avg, min or max
	sql  bool   // sql- variant: skip unknowns instead of poisoning

	n    int64
	sum  float64
	best adm.Value
	bad  bool
}

// add folds one evaluated item into the state.
func (s *aggState) add(v adm.Value) {
	if s.base == "count" {
		s.n++ // count counts every item, unknowns included
		return
	}
	if s.bad {
		return
	}
	if adm.IsUnknown(v) {
		if !s.sql {
			s.bad = true
		}
		return
	}
	switch s.base {
	case "sum", "avg":
		d, ok := adm.NumericAsDouble(v)
		if !ok {
			s.bad = true
			return
		}
		s.sum += d
		s.n++
	case "min", "max":
		if s.best == nil {
			s.best = v
			return
		}
		c, err := adm.Compare(v, s.best)
		if err != nil {
			s.bad = true
			return
		}
		if (s.base == "max" && c > 0) || (s.base == "min" && c < 0) {
			s.best = v
		}
	}
}

// partial renders the state as the partial tuple the global half merges.
// Layout: count -> {n}; sum/avg -> {sum, n, bad}; min/max -> {best, present, bad}.
func (s *aggState) partial() (hyracks.Tuple, error) {
	switch s.base {
	case "count":
		return hyracks.Tuple{adm.Int64(s.n)}, nil
	case "sum", "avg":
		return hyracks.Tuple{adm.Double(s.sum), adm.Int64(s.n), adm.Boolean(s.bad)}, nil
	case "min", "max":
		best := s.best
		if best == nil {
			best = adm.Null{}
		}
		return hyracks.Tuple{best, adm.Boolean(s.best != nil), adm.Boolean(s.bad)}, nil
	}
	return nil, fmt.Errorf("translator: no partial aggregate for %q", s.base)
}

// final renders the state as the finished aggregate value — combine applied
// to a single partial, which is exactly the builtin aggregate's result.
func (s *aggState) final() (hyracks.Tuple, error) {
	switch s.base {
	case "count":
		return hyracks.Tuple{adm.Int64(s.n)}, nil
	case "sum", "avg":
		if s.bad || s.n == 0 {
			return hyracks.Tuple{adm.Null{}}, nil
		}
		if s.base == "avg" {
			return hyracks.Tuple{adm.Double(s.sum / float64(s.n))}, nil
		}
		return hyracks.Tuple{adm.Double(s.sum)}, nil
	case "min", "max":
		if s.bad || s.best == nil {
			return hyracks.Tuple{adm.Null{}}, nil
		}
		return hyracks.Tuple{s.best}, nil
	}
	return nil, fmt.Errorf("translator: no aggregate for %q", s.base)
}

// aggFold builds the streaming fold for an aggregate evaluated over the
// query's return expression. The local half of the split renders its state
// as a partial tuple for the global combiner; the unsplit ablation aggregate
// (final) renders the finished value directly. Each instance run gets fresh
// state and its own binding environment, so parallel partitions never share.
func (b *jobBuilder) aggFold(fn string, ret aql.Expr, schema Schema, final bool) func() (func(hyracks.Tuple) error, func() (hyracks.Tuple, error)) {
	base := strings.TrimPrefix(fn, "sql-")
	sql := strings.HasPrefix(fn, "sql-")
	return func() (func(hyracks.Tuple) error, func() (hyracks.Tuple, error)) {
		env := make(expr.Env, len(schema)+1)
		st := &aggState{base: base, sql: sql}
		step := func(t hyracks.Tuple) error {
			bindInto(env, schema, t)
			v, err := expr.Eval(b.ctx, env, ret)
			if err != nil {
				return err
			}
			st.add(v)
			return nil
		}
		if final {
			return step, st.final
		}
		return step, st.partial
	}
}

// aggCombine is the global half: it merges the per-partition partials into
// the final aggregate value, streaming one partial at a time. A poisoned
// partial (bad flag set) or a merge failure resolves the whole aggregate to
// null; remaining partials are drained without further folding.
func aggCombine(fn string) func() (func(hyracks.Tuple) error, func() (hyracks.Tuple, error)) {
	base := strings.TrimPrefix(fn, "sql-")
	return func() (func(hyracks.Tuple) error, func() (hyracks.Tuple, error)) {
		var (
			sum  float64
			n    int64
			best adm.Value
			bad  bool
		)
		step := func(t hyracks.Tuple) error {
			switch base {
			case "count":
				c, _ := adm.NumericAsInt64(t[0])
				n += c
			case "sum", "avg":
				if bad {
					return nil
				}
				if bool(t[2].(adm.Boolean)) {
					bad = true
					return nil
				}
				d, _ := adm.NumericAsDouble(t[0])
				c, _ := adm.NumericAsInt64(t[1])
				sum += d
				n += c
			case "min", "max":
				if bad {
					return nil
				}
				if bool(t[2].(adm.Boolean)) {
					bad = true
					return nil
				}
				if !bool(t[1].(adm.Boolean)) {
					return nil
				}
				if best == nil {
					best = t[0]
					return nil
				}
				c, err := adm.Compare(t[0], best)
				if err != nil {
					bad = true
					return nil
				}
				if (base == "max" && c > 0) || (base == "min" && c < 0) {
					best = t[0]
				}
			}
			return nil
		}
		finish := func() (hyracks.Tuple, error) {
			switch base {
			case "count":
				return hyracks.Tuple{adm.Int64(n)}, nil
			case "sum", "avg":
				if bad || n == 0 {
					return hyracks.Tuple{adm.Null{}}, nil
				}
				if base == "avg" {
					return hyracks.Tuple{adm.Double(sum / float64(n))}, nil
				}
				return hyracks.Tuple{adm.Double(sum)}, nil
			case "min", "max":
				if bad || best == nil {
					return hyracks.Tuple{adm.Null{}}, nil
				}
				return hyracks.Tuple{best}, nil
			}
			return nil, fmt.Errorf("translator: no global aggregate for %q", fn)
		}
		return step, finish
	}
}

func (b *jobBuilder) buildLocalAgg(n *algebra.Node) (stream, error) {
	in, err := b.buildInput(n)
	if err != nil {
		return stream{}, err
	}
	if b.query == nil {
		return stream{}, fmt.Errorf("translator: aggregate plan has no source query")
	}
	op := b.job.Add(&hyracks.AggregateOp{
		Label:      fmt.Sprintf("aggregate(local-%s)", n.AggFunc),
		Partitions: in.par,
		NewFold:    b.aggFold(n.AggFunc, b.rewritten(b.query.Return), in.schema, false),
	})
	return b.connect(in, op, in.par, aggSchema, hyracks.Connector{Kind: hyracks.OneToOne}), nil
}

func (b *jobBuilder) buildGlobalAgg(n *algebra.Node) (stream, error) {
	in, err := b.buildInput(n)
	if err != nil {
		return stream{}, err
	}
	op := b.job.Add(&hyracks.AggregateOp{
		Label:      fmt.Sprintf("aggregate(global-%s)", n.AggFunc),
		Partitions: 1,
		NewFold:    aggCombine(n.AggFunc),
	})
	// The n:1 replicating connector of Figure 6 gathers the partials.
	return b.connect(in, op, 1, aggSchema, hyracks.Connector{Kind: hyracks.MToNReplicating}), nil
}

// buildAggregate is the unsplit aggregate (ablation path): gather everything
// into one instance and fold it there. The streaming aggState reproduces the
// builtin aggregate's semantics value-for-value (final is combine applied to
// a single partial), so this path no longer materializes the gathered input
// into an OrderedList before aggregating.
func (b *jobBuilder) buildAggregate(n *algebra.Node) (stream, error) {
	in, err := b.buildInput(n)
	if err != nil {
		return stream{}, err
	}
	if b.query == nil {
		return stream{}, fmt.Errorf("translator: aggregate plan has no source query")
	}
	op := b.job.Add(&hyracks.AggregateOp{
		Label:      fmt.Sprintf("aggregate(%s)", n.AggFunc),
		Partitions: 1,
		NewFold:    b.aggFold(n.AggFunc, b.rewritten(b.query.Return), in.schema, true),
	})
	return b.connect(in, op, 1, aggSchema, gatherConnector(in.par)), nil
}

// ----------------------------------------------------------------------------
// Distribute
// ----------------------------------------------------------------------------

// buildDistribute caps the job: for ordinary queries it evaluates the FLWOR's
// return expression over each binding tuple; for aggregate-wrapped plans the
// aggregate value passes through unchanged.
func (b *jobBuilder) buildDistribute(n *algebra.Node) (stream, error) {
	child := n.Inputs[0]
	in, err := b.build(child)
	if err != nil {
		return stream{}, err
	}
	aggregated := child.Kind == algebra.OpGlobalAgg || child.Kind == algebra.OpAggregate
	if !aggregated && b.query == nil {
		return stream{}, fmt.Errorf("translator: plan has no source query for distribute-result")
	}
	var fn func(p int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error
	switch {
	case aggregated:
		// The aggregate value already sits alone in column 0.
	default:
		ret, schema := b.rewritten(b.query.Return), in.schema
		if col, ok := columnOfVariable(ret, schema); ok {
			// "return $m" needs no evaluation: project the column. A width-1
			// tuple is already in result layout and passes through untouched.
			if col != 0 || len(schema) != 1 {
				fn = func(_ int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error {
					emit(hyracks.Tuple{t[col]})
					return nil
				}
			}
			break
		}
		if fa, ok := ret.(*aql.FieldAccess); ok {
			if col, ok := columnOfVariable(fa.Base, schema); ok {
				// "return $x.field" resolves the field straight off the tuple
				// column — for a lazy record, one slot lookup in the byte slab
				// — skipping environment binding and expression dispatch.
				mk := tupleAllocator(in.par)
				name, field := schema[col], fa.Field
				fn = func(p int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error {
					if col >= len(t) || t[col] == nil {
						return fmt.Errorf("expr: unbound variable $%s", name)
					}
					emit(mk(p, expr.FieldOf(t[col], field)))
					return nil
				}
				break
			}
		}
		bind := envBinder(schema, in.par)
		mk := tupleAllocator(in.par)
		fn = func(p int, t hyracks.Tuple, emit func(hyracks.Tuple) bool) error {
			v, err := expr.Eval(b.ctx, bind(p, t), ret)
			if err != nil {
				return err
			}
			emit(mk(p, v))
			return nil
		}
	}
	var op int
	if fn == nil {
		op = b.job.Add(&hyracks.PassthroughOp{Label: "distribute-result", Partitions: in.par})
	} else {
		op = b.job.Add(&hyracks.FlatMapOp{
			Label:      "distribute-result",
			Partitions: in.par,
			Fn:         fn,
		})
	}
	return b.connect(in, op, in.par, Schema{"#result"}, hyracks.Connector{Kind: hyracks.OneToOne}), nil
}

// columnOfVariable reports the tuple column a bare variable-reference
// expression reads from; later schema columns shadow earlier ones, like
// environment binding order.
func columnOfVariable(e aql.Expr, schema Schema) (int, bool) {
	vr, ok := e.(*aql.VariableRef)
	if !ok {
		return 0, false
	}
	for i := len(schema) - 1; i >= 0; i-- {
		if schema[i] == vr.Name {
			return i, true
		}
	}
	return 0, false
}

// fieldOfVar recognizes expressions of the form $var.field and returns the
// field name.
func fieldOfVar(e aql.Expr, variable string) (string, bool) {
	fa, ok := e.(*aql.FieldAccess)
	if !ok {
		return "", false
	}
	vr, ok := fa.Base.(*aql.VariableRef)
	if !ok || vr.Name != variable {
		return "", false
	}
	return fa.Field, true
}
