package translator

import (
	"asterixdb/internal/algebra"
	"asterixdb/internal/aql"
)

// This file decides when a group-by can run fold-as-you-go (the ROADMAP's
// incremental-aggregate follow-up) and rewrites the plan's consumer
// expressions accordingly. A with-variable whose every use above the group-by
// is an aggregate call — count($w), sum($w), avg($w), min($w), max($w), or
// their sql- variants — never needs its bag materialized: the group-by
// operator folds a constant-size accumulator per group instead, and the
// aggregate calls are rewritten to references to synthetic output columns
// carrying the folded results. A with-variable used any other way (iterated,
// returned whole, passed to another function) keeps the materializing path.
// The rewrite is all-or-nothing per group-by: one bag-like use means rows
// must be materialized anyway, so folding the rest would not save memory.

// groupFoldFuncs are the aggregate builtins with a one-pass accumulator.
var groupFoldFuncs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"sql-count": true, "sql-sum": true, "sql-avg": true, "sql-min": true, "sql-max": true,
}

// foldSpec is one (with-variable, aggregate) pair folded by the group-by.
type foldSpec struct {
	With string // the with-variable folded
	Func string // the aggregate function
	Name string // the synthetic output column carrying the result
}

// groupFold is the fold plan attached to a jobBuilder when its plan's
// group-by qualifies.
type groupFold struct {
	node  *algebra.Node
	specs []foldSpec
}

// spineFoldKinds are the operator kinds allowed between the plan root and
// the group-by for the analysis to proceed: their expressions are exactly
// the places a with-variable can be consumed.
var spineFoldKinds = map[algebra.OpKind]bool{
	algebra.OpDistribute: true, algebra.OpSelect: true, algebra.OpAssign: true,
	algebra.OpOrder: true, algebra.OpLimit: true, algebra.OpUnnest: true,
	algebra.OpLocalAgg: true, algebra.OpGlobalAgg: true, algebra.OpAggregate: true,
}

// prepareGroupFold inspects the plan for a group-by whose with-variables are
// consumed only by foldable aggregate calls. On success it records the fold
// plan (read by buildGroupBy) and the expression rewrites (read by the
// consumer build functions through b.rewritten).
func (b *jobBuilder) prepareGroupFold(plan *algebra.Plan) {
	var spine []*algebra.Node
	n := plan.Root
	var gb *algebra.Node
	for n != nil {
		if n.Kind == algebra.OpGroupBy {
			gb = n
			break
		}
		if !spineFoldKinds[n.Kind] || len(n.Inputs) != 1 {
			return
		}
		spine = append(spine, n)
		n = n.Inputs[0]
	}
	if gb == nil || len(gb.GroupWith) == 0 {
		return
	}

	// Consumers: every expression evaluated above the group-by. The query's
	// return expression is included unconditionally — distribute-result and
	// the aggregate operators evaluate it over post-group tuples.
	var consumers []aql.Expr
	for _, sn := range spine {
		switch sn.Kind {
		case algebra.OpSelect:
			consumers = append(consumers, sn.Condition)
		case algebra.OpAssign, algebra.OpUnnest:
			consumers = append(consumers, sn.Exprs...)
			// An assign or unnest rebinding a with-variable's name above the
			// group-by makes use-site scoping order-dependent; bail to the
			// materializing path.
			for _, v := range append(append([]string{}, sn.Vars...), sn.Variable) {
				for _, w := range gb.GroupWith {
					if v == w {
						return
					}
				}
			}
		case algebra.OpOrder:
			for _, term := range sn.OrderTerms {
				consumers = append(consumers, term.Expr)
			}
		}
	}
	if plan.Query != nil && plan.Query.Return != nil {
		consumers = append(consumers, plan.Query.Return)
	}

	targets := map[string]bool{}
	for _, w := range gb.GroupWith {
		targets[w] = true
	}
	funcsByVar := map[string][]string{}
	foldable := true
	for _, e := range consumers {
		scanFoldUses(e, targets, nil, func(w, fn string, ok bool) {
			if !ok {
				foldable = false
				return
			}
			for _, have := range funcsByVar[w] {
				if have == fn {
					return
				}
			}
			funcsByVar[w] = append(funcsByVar[w], fn)
		})
	}
	if !foldable {
		return
	}

	specs := []foldSpec{}
	repl := map[string]map[string]string{}
	for _, w := range gb.GroupWith {
		for _, fn := range funcsByVar[w] {
			name := "#agg:" + fn + ":" + w
			specs = append(specs, foldSpec{With: w, Func: fn, Name: name})
			if repl[w] == nil {
				repl[w] = map[string]string{}
			}
			repl[w][fn] = name
		}
	}
	b.exprRewrites = map[aql.Expr]aql.Expr{}
	for _, e := range consumers {
		if r := rewriteFoldCalls(e, repl, nil); r != e {
			b.exprRewrites[e] = r
		}
	}
	b.groupFold = &groupFold{node: gb, specs: specs}
}

// rewritten returns the fold-rewritten form of a consumer expression, or the
// expression unchanged when no rewrite applies.
func (b *jobBuilder) rewritten(e aql.Expr) aql.Expr {
	if r, ok := b.exprRewrites[e]; ok {
		return r
	}
	return e
}

// bindNames extends a shadow set (copy-on-write; nil means empty).
func bindNames(bound map[string]bool, names ...string) map[string]bool {
	next := make(map[string]bool, len(bound)+len(names))
	for k := range bound {
		next[k] = true
	}
	for _, n := range names {
		if n != "" {
			next[n] = true
		}
	}
	return next
}

// scanFoldUses reports every free use of a target with-variable in e: uses
// of the exact shape aggfn($w) come back with ok=true and the function name;
// any other use (bare reference, iteration source, nested with-collection)
// comes back with ok=false. The walk is scope-aware: a nested binding of the
// same name shadows the target.
func scanFoldUses(e aql.Expr, targets, bound map[string]bool, use func(w, fn string, ok bool)) {
	switch x := e.(type) {
	case nil:
		return
	case *aql.Literal, *aql.DatasetRef:
		return
	case *aql.VariableRef:
		if targets[x.Name] && !bound[x.Name] {
			use(x.Name, "", false)
		}
	case *aql.FieldAccess:
		scanFoldUses(x.Base, targets, bound, use)
	case *aql.IndexAccess:
		scanFoldUses(x.Base, targets, bound, use)
		scanFoldUses(x.Index, targets, bound, use)
	case *aql.BinaryExpr:
		scanFoldUses(x.Left, targets, bound, use)
		scanFoldUses(x.Right, targets, bound, use)
	case *aql.UnaryExpr:
		scanFoldUses(x.Operand, targets, bound, use)
	case *aql.CallExpr:
		if groupFoldFuncs[x.Func] && len(x.Args) == 1 {
			if vr, ok := x.Args[0].(*aql.VariableRef); ok && targets[vr.Name] && !bound[vr.Name] {
				use(vr.Name, x.Func, true)
				return
			}
		}
		for _, a := range x.Args {
			scanFoldUses(a, targets, bound, use)
		}
	case *aql.RecordConstructor:
		for _, f := range x.Fields {
			scanFoldUses(f.Value, targets, bound, use)
		}
	case *aql.ListConstructor:
		for _, it := range x.Items {
			scanFoldUses(it, targets, bound, use)
		}
	case *aql.QuantifiedExpr:
		scanFoldUses(x.Source, targets, bound, use)
		scanFoldUses(x.Satisfies, targets, bindNames(bound, x.Var), use)
	case *aql.IfExpr:
		scanFoldUses(x.Cond, targets, bound, use)
		scanFoldUses(x.Then, targets, bound, use)
		scanFoldUses(x.Else, targets, bound, use)
	case *aql.FLWORExpr:
		inner := bound
		for _, c := range x.Clauses {
			switch cl := c.(type) {
			case *aql.ForClause:
				scanFoldUses(cl.Source, targets, inner, use)
				inner = bindNames(inner, cl.Var, cl.PosVar)
			case *aql.LetClause:
				scanFoldUses(cl.Expr, targets, inner, use)
				inner = bindNames(inner, cl.Var)
			case *aql.WhereClause:
				scanFoldUses(cl.Cond, targets, inner, use)
			case *aql.GroupByClause:
				var names []string
				for _, k := range cl.Keys {
					scanFoldUses(k.Expr, targets, inner, use)
					names = append(names, k.Var)
				}
				// "with $w" in a nested FLWOR collects the outer $w into a
				// bag — a non-foldable use of a target.
				for _, w := range cl.With {
					if targets[w] && !inner[w] {
						use(w, "", false)
					}
				}
				inner = bindNames(inner, append(names, cl.With...)...)
			case *aql.OrderByClause:
				for _, term := range cl.Terms {
					scanFoldUses(term.Expr, targets, inner, use)
				}
			case *aql.LimitClause:
				scanFoldUses(cl.Limit, targets, inner, use)
				scanFoldUses(cl.Offset, targets, inner, use)
			}
		}
		scanFoldUses(x.Return, targets, inner, use)
	default:
		// Unknown expression kind: assume it could reference anything.
		for w := range targets {
			if !bound[w] {
				use(w, "", false)
			}
		}
	}
}

// rewriteFoldCalls returns e with every foldable aggregate call over a
// variable in repl replaced by a reference to its synthetic column. Unchanged
// subtrees are shared; the original expression is never mutated (the same
// AST backs the interpreter fallback and differential oracles).
func rewriteFoldCalls(e aql.Expr, repl map[string]map[string]string, bound map[string]bool) aql.Expr {
	switch x := e.(type) {
	case nil:
		return e
	case *aql.Literal, *aql.VariableRef, *aql.DatasetRef:
		return e
	case *aql.FieldAccess:
		if base := rewriteFoldCalls(x.Base, repl, bound); base != x.Base {
			return &aql.FieldAccess{Base: base, Field: x.Field}
		}
		return e
	case *aql.IndexAccess:
		base := rewriteFoldCalls(x.Base, repl, bound)
		idx := rewriteFoldCalls(x.Index, repl, bound)
		if base != x.Base || idx != x.Index {
			return &aql.IndexAccess{Base: base, Index: idx}
		}
		return e
	case *aql.BinaryExpr:
		l := rewriteFoldCalls(x.Left, repl, bound)
		r := rewriteFoldCalls(x.Right, repl, bound)
		if l != x.Left || r != x.Right {
			return &aql.BinaryExpr{Op: x.Op, Left: l, Right: r, Hint: x.Hint}
		}
		return e
	case *aql.UnaryExpr:
		if op := rewriteFoldCalls(x.Operand, repl, bound); op != x.Operand {
			return &aql.UnaryExpr{Op: x.Op, Operand: op}
		}
		return e
	case *aql.CallExpr:
		if groupFoldFuncs[x.Func] && len(x.Args) == 1 {
			if vr, ok := x.Args[0].(*aql.VariableRef); ok && !bound[vr.Name] {
				if name, ok := repl[vr.Name][x.Func]; ok {
					return &aql.VariableRef{Name: name}
				}
			}
		}
		args := x.Args
		changed := false
		for i, a := range x.Args {
			if r := rewriteFoldCalls(a, repl, bound); r != a {
				if !changed {
					args = append([]aql.Expr(nil), x.Args...)
					changed = true
				}
				args[i] = r
			}
		}
		if changed {
			return &aql.CallExpr{Func: x.Func, Args: args}
		}
		return e
	case *aql.RecordConstructor:
		fields := x.Fields
		changed := false
		for i, f := range x.Fields {
			if r := rewriteFoldCalls(f.Value, repl, bound); r != f.Value {
				if !changed {
					fields = append([]aql.RecordConstructorField(nil), x.Fields...)
					changed = true
				}
				fields[i] = aql.RecordConstructorField{Name: f.Name, Value: r}
			}
		}
		if changed {
			return &aql.RecordConstructor{Fields: fields}
		}
		return e
	case *aql.ListConstructor:
		items := x.Items
		changed := false
		for i, it := range x.Items {
			if r := rewriteFoldCalls(it, repl, bound); r != it {
				if !changed {
					items = append([]aql.Expr(nil), x.Items...)
					changed = true
				}
				items[i] = r
			}
		}
		if changed {
			return &aql.ListConstructor{Ordered: x.Ordered, Items: items}
		}
		return e
	case *aql.QuantifiedExpr:
		src := rewriteFoldCalls(x.Source, repl, bound)
		sat := rewriteFoldCalls(x.Satisfies, repl, bindNames(bound, x.Var))
		if src != x.Source || sat != x.Satisfies {
			return &aql.QuantifiedExpr{Every: x.Every, Var: x.Var, Source: src, Satisfies: sat}
		}
		return e
	case *aql.IfExpr:
		c := rewriteFoldCalls(x.Cond, repl, bound)
		th := rewriteFoldCalls(x.Then, repl, bound)
		el := rewriteFoldCalls(x.Else, repl, bound)
		if c != x.Cond || th != x.Then || el != x.Else {
			return &aql.IfExpr{Cond: c, Then: th, Else: el}
		}
		return e
	case *aql.FLWORExpr:
		inner := bound
		clauses := x.Clauses
		changed := false
		set := func(i int, c aql.FLWORClause) {
			if !changed {
				clauses = append([]aql.FLWORClause(nil), x.Clauses...)
				changed = true
			}
			clauses[i] = c
		}
		for i, c := range x.Clauses {
			switch cl := c.(type) {
			case *aql.ForClause:
				if r := rewriteFoldCalls(cl.Source, repl, inner); r != cl.Source {
					set(i, &aql.ForClause{Var: cl.Var, PosVar: cl.PosVar, Source: r})
				}
				inner = bindNames(inner, cl.Var, cl.PosVar)
			case *aql.LetClause:
				if r := rewriteFoldCalls(cl.Expr, repl, inner); r != cl.Expr {
					set(i, &aql.LetClause{Var: cl.Var, Expr: r})
				}
				inner = bindNames(inner, cl.Var)
			case *aql.WhereClause:
				if r := rewriteFoldCalls(cl.Cond, repl, inner); r != cl.Cond {
					set(i, &aql.WhereClause{Cond: r})
				}
			case *aql.GroupByClause:
				keys := cl.Keys
				kchanged := false
				var names []string
				for j, k := range cl.Keys {
					if r := rewriteFoldCalls(k.Expr, repl, inner); r != k.Expr {
						if !kchanged {
							keys = append([]aql.GroupKey(nil), cl.Keys...)
							kchanged = true
						}
						keys[j] = aql.GroupKey{Var: k.Var, Expr: r}
					}
					names = append(names, k.Var)
				}
				if kchanged {
					set(i, &aql.GroupByClause{Keys: keys, With: cl.With})
				}
				inner = bindNames(inner, append(names, cl.With...)...)
			case *aql.OrderByClause:
				terms := cl.Terms
				tchanged := false
				for j, term := range cl.Terms {
					if r := rewriteFoldCalls(term.Expr, repl, inner); r != term.Expr {
						if !tchanged {
							terms = append([]aql.OrderTerm(nil), cl.Terms...)
							tchanged = true
						}
						terms[j] = aql.OrderTerm{Expr: r, Desc: term.Desc}
					}
				}
				if tchanged {
					set(i, &aql.OrderByClause{Terms: terms})
				}
			case *aql.LimitClause:
				l := rewriteFoldCalls(cl.Limit, repl, inner)
				o := rewriteFoldCalls(cl.Offset, repl, inner)
				if l != cl.Limit || o != cl.Offset {
					set(i, &aql.LimitClause{Limit: l, Offset: o})
				}
			}
		}
		ret := rewriteFoldCalls(x.Return, repl, inner)
		if changed || ret != x.Return {
			return &aql.FLWORExpr{Clauses: clauses, Return: ret}
		}
		return e
	default:
		return e
	}
}
