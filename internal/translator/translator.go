// Package translator turns AQL query expressions into optimized algebra plans
// and Hyracks job descriptions (the code-generation step of Section 4.2).
// The job descriptions carry the operator and connector structure of
// Figure 6; the engine executes the corresponding physical plan with the
// storage layer's access paths and the expr evaluator.
package translator

import (
	"fmt"

	"asterixdb/internal/algebra"
	"asterixdb/internal/aql"
	"asterixdb/internal/hyracks"
)

// Compile builds and optimizes the algebra plan for a FLWOR query. When the
// query is a single aggregate call wrapped around a FLWOR (Query 10's shape),
// the aggregate is split into local and global halves.
func Compile(e aql.Expr, cat algebra.Catalog, opts algebra.Options) (*algebra.Plan, error) {
	switch q := e.(type) {
	case *aql.FLWORExpr:
		plan, err := algebra.Build(q)
		if err != nil {
			return nil, err
		}
		return algebra.Optimize(plan, cat, opts), nil
	case *aql.CallExpr:
		if len(q.Args) == 1 {
			if inner, ok := q.Args[0].(*aql.FLWORExpr); ok && isAggregate(q.Func) {
				plan, err := algebra.Build(inner)
				if err != nil {
					return nil, err
				}
				plan = algebra.Optimize(plan, cat, opts)
				return algebra.WrapAggregate(plan, q.Func, opts.DisableAggSplit), nil
			}
		}
	}
	return nil, fmt.Errorf("translator: expression is not a compilable query: %T", e)
}

func isAggregate(name string) bool {
	switch name {
	case "avg", "sum", "count", "min", "max", "sql-avg", "sql-sum", "sql-count", "sql-min", "sql-max":
		return true
	}
	return false
}

// BuildJob converts an optimized plan into a Hyracks job description whose
// operators and connectors mirror the plan's physical structure. The job is a
// description (its operators carry no runnable closures); the engine executes
// the plan against storage and wires live closures where needed. Describe()
// on the returned job reproduces the structure of Figure 6 for Query 10.
func BuildJob(plan *algebra.Plan, partitions int) *hyracks.Job {
	job := &hyracks.Job{}
	buildJobNode(job, plan.Root, partitions)
	return job
}

// buildJobNode appends the operators for n (bottom-up) and returns the index
// of the operator producing n's output.
func buildJobNode(job *hyracks.Job, n *algebra.Node, partitions int) int {
	if n == nil {
		return -1
	}
	var inputIdx []int
	for _, in := range n.Inputs {
		inputIdx = append(inputIdx, buildJobNode(job, in, partitions))
	}
	par := partitions
	label := ""
	connector := hyracks.Connector{Kind: hyracks.OneToOne}
	switch n.Kind {
	case algebra.OpScan:
		label = fmt.Sprintf("datasource-scan(%s)", n.Dataset)
	case algebra.OpIndexSearch:
		label = fmt.Sprintf("btree-search(%s)", n.Index)
	case algebra.OpRTreeSearch:
		label = fmt.Sprintf("rtree-search(%s)", n.Index)
	case algebra.OpSortPK:
		label = "sort(primary-keys)"
	case algebra.OpPrimarySearch:
		label = fmt.Sprintf("btree-search(%s)", n.Dataset)
	case algebra.OpSelect:
		label = "select"
	case algebra.OpAssign:
		label = "assign"
	case algebra.OpJoin:
		label = fmt.Sprintf("join(%s)", n.Method)
		connector = hyracks.Connector{Kind: hyracks.MToNPartitioning}
	case algebra.OpGroupBy:
		label = "hash-group-by"
		connector = hyracks.Connector{Kind: hyracks.HashPartitioningShuffle}
	case algebra.OpOrder:
		label = "sort"
	case algebra.OpLimit:
		label = "limit"
		par = 1
	case algebra.OpLocalAgg:
		label = fmt.Sprintf("aggregate(local-%s)", n.AggFunc)
	case algebra.OpGlobalAgg:
		label = fmt.Sprintf("aggregate(global-%s)", n.AggFunc)
		par = 1
		connector = hyracks.Connector{Kind: hyracks.MToNReplicating}
	case algebra.OpAggregate:
		label = fmt.Sprintf("aggregate(%s)", n.AggFunc)
		par = 1
	case algebra.OpSubplan:
		label = "subplan"
	case algebra.OpDistribute:
		label = "distribute-result"
		par = 1
	default:
		label = string(n.Kind)
	}
	idx := job.Add(&descriptorOp{label: label, partitions: par})
	for _, in := range inputIdx {
		if in >= 0 {
			job.Connect(in, idx, connector)
		}
	}
	return idx
}

// descriptorOp is a structural placeholder operator used in job descriptions.
type descriptorOp struct {
	label      string
	partitions int
}

// Name implements hyracks.Operator.
func (d *descriptorOp) Name() string { return d.label }

// Parallelism implements hyracks.Operator.
func (d *descriptorOp) Parallelism() int { return d.partitions }

// Blocking implements hyracks.Operator.
func (d *descriptorOp) Blocking() bool { return false }

// Run implements hyracks.Operator. Descriptor operators are not executable.
func (d *descriptorOp) Run(int, <-chan hyracks.Tuple, func(hyracks.Tuple)) error {
	return fmt.Errorf("translator: %s is a job description operator, not executable", d.label)
}
