// Package translator turns AQL query expressions into optimized algebra plans
// and executable Hyracks jobs (the code-generation step of Section 4.2).
//
// The pipeline is:
//
//	AQL FLWOR  --algebra.Build-->  logical plan
//	           --algebra.Optimize-->  physical plan (access paths, join
//	                                  methods, aggregation split)
//	           --BuildJob-->  hyracks.Job of runnable operator instances
//	           --hyracks.Execute-->  result tuples
//
// BuildJob maps every physical operator to a concrete Hyracks operator:
// datasource scans read storage partitions in parallel, selects and assigns
// evaluate AQL expressions against tuple schemas, joins are hybrid-hash
// (build side wired to input port 1 through a partitioning connector),
// index nested-loop or broadcast nested-loop, group-by hash-partitions on its
// keys, and aggregates split into per-partition local and single global
// halves exactly as in Figure 6. A Schema tracks which tuple column carries
// which plan variable so expressions compiled from the query can be evaluated
// against flowing tuples.
package translator

import (
	"fmt"

	"asterixdb/internal/adm"
	"asterixdb/internal/algebra"
	"asterixdb/internal/aql"
	"asterixdb/internal/expr"
	"asterixdb/internal/hyracks"
	"asterixdb/internal/storage"
)

// Runtime is what a compiled job needs from the hosting instance when it
// runs: dataset access for scans and index probes, plus the expression
// evaluation context (clock, similarity settings, user functions, dataset
// reader for correlated subqueries).
type Runtime interface {
	// EvalContext returns the instance's expression evaluation context.
	EvalContext() *expr.Context
	// LookupDataset resolves an internal (stored, partitioned) dataset.
	// It reports false for external datasets and the Metadata dataverse.
	LookupDataset(dataverse, name string) (*storage.Dataset, bool)
	// ReadDatasetRecords materializes a dataset that has no storage
	// partitions: external datasets and the Metadata datasets. It reports an
	// error for datasets that do not exist.
	ReadDatasetRecords(dataverse, name string) ([]*adm.Record, error)
}

// Schema maps plan variables to tuple columns: column i of a tuple carries
// the value bound to variable Schema[i]. It is the bridge between the
// algebra's named variables and the runtime's positional tuples.
type Schema []string

// Env converts a tuple into a variable-binding environment for the
// expression evaluator. Columns holding nil (possible for synthetic columns)
// are left unbound, matching the interpreter's sparse environments.
func (s Schema) Env(t hyracks.Tuple) expr.Env {
	env := make(expr.Env, len(s))
	for i, name := range s {
		if i < len(t) && t[i] != nil {
			env[name] = t[i]
		}
	}
	return env
}

// Tuple converts an environment back into a tuple laid out by the schema.
func (s Schema) Tuple(env expr.Env) hyracks.Tuple {
	t := make(hyracks.Tuple, len(s))
	for i, name := range s {
		t[i] = env[name]
	}
	return t
}

// Compile builds and optimizes the algebra plan for a FLWOR query. When the
// query is a single aggregate call wrapped around a FLWOR (Query 10's shape),
// the aggregate is split into local and global halves.
func Compile(e aql.Expr, cat algebra.Catalog, opts algebra.Options) (*algebra.Plan, error) {
	switch q := e.(type) {
	case *aql.FLWORExpr:
		plan, err := algebra.Build(q)
		if err != nil {
			return nil, err
		}
		return algebra.Optimize(plan, cat, opts), nil
	case *aql.CallExpr:
		if len(q.Args) == 1 {
			if inner, ok := q.Args[0].(*aql.FLWORExpr); ok && isAggregate(q.Func) {
				plan, err := algebra.Build(inner)
				if err != nil {
					return nil, err
				}
				plan = algebra.Optimize(plan, cat, opts)
				return algebra.WrapAggregate(plan, q.Func, opts.DisableAggSplit), nil
			}
		}
	}
	return nil, fmt.Errorf("translator: expression is not a compilable query: %T", e)
}

func isAggregate(name string) bool {
	switch name {
	case "avg", "sum", "count", "min", "max", "sql-avg", "sql-sum", "sql-count", "sql-min", "sql-max":
		return true
	}
	return false
}
