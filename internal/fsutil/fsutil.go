// Package fsutil provides the small crash-safe filesystem idioms the
// storage stack builds on: temp-file + fsync + atomic-rename writes and
// directory syncs. A file written through WriteFileAtomic is either absent
// (or its previous version) or complete — a crash can never surface a torn
// file, which is the invariant the LSM component and checkpoint formats
// rely on instead of checksumming their own contents.
package fsutil

import (
	"fmt"
	"os"
	"path/filepath"

	"asterixdb/internal/crashpoint"
)

// TmpSuffix is the suffix of in-progress files written by WriteFileAtomic.
// Crash recovery deletes leftovers matching it.
const TmpSuffix = ".tmp"

// WriteFileAtomic writes data to path via a temp file in the same directory:
// write + fsync the temp file, rename over path, fsync the directory. The
// temp name is deterministic (path + ".tmp"), so a crash leaves at most one
// leftover per target, removable by a "*.tmp" cleanup sweep.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + TmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, perm)
	if err != nil {
		return fmt.Errorf("fsutil: write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsutil: write %s: %w", path, err)
	}
	crashpoint.Hit("fsutil-temp-written")
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fsutil: sync %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsutil: close %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fsutil: rename %s: %w", path, err)
	}
	crashpoint.Hit("fsutil-renamed")
	return SyncDir(filepath.Dir(path))
}

// SyncDir fsyncs a directory so a preceding rename/creation in it is durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("fsutil: sync dir %s: %w", dir, err)
	}
	syncErr := d.Sync()
	closeErr := d.Close()
	if syncErr != nil {
		return fmt.Errorf("fsutil: sync dir %s: %w", dir, syncErr)
	}
	if closeErr != nil {
		return fmt.Errorf("fsutil: sync dir %s: %w", dir, closeErr)
	}
	return nil
}

// RemoveTempFiles deletes "*.tmp" leftovers under dir (non-recursive):
// residue of WriteFileAtomic calls interrupted before their rename.
func RemoveTempFiles(dir string) error {
	names, err := filepath.Glob(filepath.Join(dir, "*"+TmpSuffix))
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := os.Remove(name); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}
