package lint

import (
	"go/ast"
	"go/types"
)

// ReadFull flags io.Reader.Read calls whose byte count is discarded. Read is
// allowed to return fewer bytes than the buffer holds even with a nil error,
// so code that drops n and then uses the whole buffer silently processes
// stale or zeroed bytes on a short read. That is exactly how truncated LSM
// component files corrupted reads before the decode helpers moved to
// io.ReadFull: the framed-record reader got a partial frame from a crashed
// writer's file and decoded garbage. The fix is io.ReadFull (error on short
// read) or honoring n.
var ReadFull = &Analyzer{
	Name: "readfull",
	Doc: "flags io.Reader.Read calls whose result length is discarded; " +
		"a short read silently truncates the buffer — use io.ReadFull in decode paths " +
		"(the truncated-component corruption class)",
	Run: runReadFull,
}

func runReadFull(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				// r.Read(buf) as a bare statement: both results dropped.
				if call, ok := s.X.(*ast.CallExpr); ok && isReaderRead(pass.TypesInfo, call) {
					reportDiscardedRead(pass, call)
				}
			case *ast.AssignStmt:
				// _, err := r.Read(buf) (and `=` form): n dropped.
				if len(s.Rhs) != 1 || len(s.Lhs) != 2 {
					return true
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok || !isReaderRead(pass.TypesInfo, call) {
					return true
				}
				if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name == "_" {
					reportDiscardedRead(pass, call)
				}
			}
			return true
		})
	}
	return nil
}

func reportDiscardedRead(pass *Pass, call *ast.CallExpr) {
	recv := "reader"
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recv = types.ExprString(sel.X)
	}
	pass.Reportf(call.Pos(),
		"result of %s.Read is discarded but Read may fill only part of the buffer; use io.ReadFull or check n", recv)
}

// isReaderRead reports whether call invokes a method named Read with the
// io.Reader shape: func([]byte) (int, error).
func isReaderRead(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Read" {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Type() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil { // package functions (rand.Read) are fine
		return false
	}
	if sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	p, ok := sig.Params().At(0).Type().(*types.Slice)
	if !ok {
		return false
	}
	if b, ok := p.Elem().(*types.Basic); !ok || b.Kind() != types.Byte {
		return false
	}
	r0, ok := sig.Results().At(0).Type().(*types.Basic)
	if !ok || r0.Kind() != types.Int {
		return false
	}
	return isErrorType(sig.Results().At(1).Type())
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
