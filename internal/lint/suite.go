package lint

import (
	"sort"
)

// All returns the full analyzer suite in deterministic (alphabetical) order.
func All() []*Analyzer {
	return []*Analyzer{
		BudgetAlloc,
		LockedCallback,
		MustClose,
		ReadFull,
		TypedErrors,
	}
}

// ByName resolves analyzer names (comma-free, without the asterixlint/
// prefix) to analyzers; unknown names come back in the second result.
func ByName(names []string) (found []*Analyzer, unknown []string) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	for _, name := range names {
		if a, ok := byName[name]; ok {
			found = append(found, a)
		} else {
			unknown = append(unknown, name)
		}
	}
	return found, unknown
}

// RunPackage runs the given analyzers over one loaded package, applies the
// ignore directives, and returns every diagnostic — suppressed ones
// included, marked — sorted by position.
func RunPackage(l *Loader, pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      l.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
	}
	diags = dedupe(diags)
	directives, problems := parseIgnores(l.Fset, pkg.Files)
	diags = applyIgnores(diags, directives)
	diags = append(diags, problems...)
	sortDiagnostics(diags)
	return diags, nil
}

// dedupe drops exact-duplicate findings (an analyzer can legitimately visit
// a node twice, e.g. an immediately-invoked literal walked inline and as its
// own unit).
func dedupe(diags []Diagnostic) []Diagnostic {
	seen := map[Diagnostic]bool{}
	out := diags[:0]
	for _, d := range diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

// RunSuite loads every package under the loader's module root and runs the
// analyzers over each. The returned diagnostics include suppressed findings
// (marked as such) so callers can audit suppressions in force.
func RunSuite(l *Loader, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := l.LoadAll()
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := RunPackage(l, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sortDiagnostics(all)
	return all, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
