package lint

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// All analyzer tests share one loader: the expensive part of a run is
// type-checking the standard library through the source importer, and the
// loader memoizes packages, so the cost is paid once per `go test` process.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loaderVal, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// runAnalyzerTest diffs one analyzer against the `// want` expectations of
// its testdata package.
func runAnalyzerTest(t *testing.T, a *Analyzer, pkg string) {
	t.Helper()
	problems, err := AnalyzerTestResult(testLoader(t), []*Analyzer{a}, pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestLockedCallback(t *testing.T) { runAnalyzerTest(t, LockedCallback, "lockedcallback") }
func TestMustClose(t *testing.T)      { runAnalyzerTest(t, MustClose, "mustclose") }
func TestReadFull(t *testing.T)       { runAnalyzerTest(t, ReadFull, "readfull") }
func TestTypedErrors(t *testing.T)    { runAnalyzerTest(t, TypedErrors, "typederrors") }
func TestBudgetAlloc(t *testing.T)    { runAnalyzerTest(t, BudgetAlloc, "budgetalloc") }

// TestIgnoreDirectives checks the suppression machinery end to end: same-line
// and line-above directives suppress (with their reasons preserved), findings
// without a directive stay live, and a stale directive becomes a finding.
func TestIgnoreDirectives(t *testing.T) {
	l := testLoader(t)
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", "ignore"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage(l, pkg, All())
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, live, stale int
	for _, d := range diags {
		switch {
		case d.Suppressed:
			suppressed++
			if d.SuppressReason == "" {
				t.Errorf("suppressed diagnostic lost its reason: %s", d)
			}
		case d.Analyzer == "ignore":
			stale++
			if !strings.Contains(d.Message, "matches no diagnostic") {
				t.Errorf("unexpected ignore diagnostic: %s", d)
			}
		default:
			live++
			if d.Analyzer != "readfull" {
				t.Errorf("unexpected live diagnostic: %s", d)
			}
		}
	}
	if suppressed != 2 || live != 1 || stale != 1 {
		t.Errorf("suppressed/live/stale = %d/%d/%d, want 2/1/1 in:", suppressed, live, stale)
		for _, d := range diags {
			t.Logf("  %s", d.String())
		}
	}
}

// TestRepositoryIsClean runs the whole suite over the module, the same
// invocation CI uses: the tree must carry no live findings, and any
// suppression in force must still match a diagnostic.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-tree analysis in -short mode")
	}
	diags, err := RunSuite(testLoader(t), All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("%s", d)
		}
	}
}
