// Package lint is asterixlint: a suite of static analyzers that encode the
// engine's structural invariants — the bug classes this repository has fixed
// by hand, turned into machine-checked rules so they stay fixed.
//
// The framework mirrors the golang.org/x/tools/go/analysis API (Analyzer,
// Pass, Diagnostic, an analysistest-style golden harness) but is
// self-contained on the standard library: packages are parsed with go/parser
// and type-checked with go/types, module-local imports resolved straight from
// the repository tree and standard-library imports through the source
// importer. This keeps the module dependency-free; if the tree ever vendors
// x/tools, each analyzer's Run function ports over unchanged because the Pass
// surface is the same.
//
// The five analyzers and the PR that motivated each:
//
//   - lockedcallback: a visitor/emit-style function parameter is invoked (or
//     forwarded into a traversal) while a sync.Mutex/RWMutex acquired in the
//     same function is still held — the PR 1 self-join deadlock, where
//     storage.ScanPartition ran its visitor under the partition latch.
//   - mustclose: a runfile.Writer/Reader, result Cursor, or os.File is not
//     closed on every path out of the function that acquired it — the PR 4
//     spill-file leak class.
//   - readfull: an io.Reader.Read result length is discarded and the buffer
//     used as if fully read — the PR 5 short-read corruption in lsm.readBlob.
//   - typederrors: errors matched by string (strings.Contains/== on
//     err.Error()) or re-wrapped without %w, defeating the errors.Is
//     sentinels introduced in PR 3.
//   - budgetalloc: an operator Run body accumulates tuples without holding a
//     runfile budget — the unaccounted materialization PRs 4 and 5 hunted.
//
// False positives are suppressed in place with
//
//	//lint:ignore asterixlint/<name> <reason>
//
// on, or immediately above, the offending line; the driver honors the
// directive and cmd/asterixlint -ignored lists every suppression in force.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check. The shape matches
// golang.org/x/tools/go/analysis.Analyzer so checks port across frameworks.
type Analyzer struct {
	// Name is the analyzer's short name; diagnostics are reported (and
	// suppressed) as "asterixlint/<Name>".
	Name string
	// Doc is a one-paragraph description of the invariant, shown by
	// cmd/asterixlint -list.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees (non-test files, with comments).
	Files []*ast.File
	// Pkg and TypesInfo are the go/types results for the package.
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name (without the asterixlint/
	// prefix).
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks diagnostics silenced by a lint:ignore directive; the
	// driver keeps them so tooling can list suppressions in force.
	Suppressed bool
	// SuppressReason is the directive's free-text justification.
	SuppressReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (asterixlint/%s)",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// ----------------------------------------------------------------------------
// Shared type helpers
// ----------------------------------------------------------------------------

// namedType returns the named type behind t, unwrapping one level of pointer,
// or nil.
func namedType(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeIs reports whether t (possibly behind a pointer) is the named type
// pkgPath.name. pkgPath matches the package's import path exactly or as a
// trailing "/"-separated suffix, so "internal/runfile.Writer" matches both
// the in-module path and a test module's copy.
func typeIs(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	return pathMatches(n.Obj().Pkg().Path(), pkgPath)
}

// pathMatches reports whether the import path matches want exactly or ends in
// "/"+want.
func pathMatches(path, want string) bool {
	if path == want {
		return true
	}
	return len(path) > len(want)+1 && path[len(path)-len(want)-1] == '/' &&
		path[len(path)-len(want):] == want
}

// funcTyped reports whether t's underlying type is a function signature.
func funcTyped(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// calleeFunc resolves a call expression to the *types.Func it invokes (method
// or package function), or nil for calls of function values and built-ins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// objectOf resolves an expression to the variable object it names (through
// parens), or nil: identifiers and field selections only.
func objectOf(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}
