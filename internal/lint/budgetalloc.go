package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BudgetAlloc flags unbounded tuple accumulation in operator bodies that is
// not accounted against a runfile budget. Operators run under an instance
// memory budget (PR 4); any []Tuple that grows with input size must either
// charge runfile.Budget (and spill when denied) or stream. The analyzer
// looks at methods of operator-shaped types — receivers that also have the
// Name/Blocking/Run methods of hyracks.Operator — and reports self-appends
// that accumulate tuples across loop iterations (or inside emit closures) in
// functions with no reference to the runfile package at all. A method that
// touches runfile is presumed to be doing its accounting; getting that
// accounting right is the spill tests' job, not syntax analysis.
var BudgetAlloc = &Analyzer{
	Name: "budgetalloc",
	Doc: "flags unbounded append accumulation of tuple slices inside operator " +
		"Run/push bodies that hold no runfile.Budget (the unaccounted " +
		"materialization class)",
	Run: runBudgetAlloc,
}

func runBudgetAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			if !operatorShaped(pass, fd) {
				continue
			}
			if referencesRunfile(pass, fd.Body) {
				continue
			}
			checkTupleAppends(pass, fd)
		}
	}
	return nil
}

// operatorShaped reports whether the method's receiver type looks like a
// hyracks operator: its method set carries Run, Blocking and Name. The check
// is structural rather than interface-based so testdata packages and future
// operator variants are covered without importing hyracks.
func operatorShaped(pass *Pass, fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	n := namedType(tv.Type)
	if n == nil {
		return false
	}
	mset := types.NewMethodSet(types.NewPointer(n))
	for _, want := range []string{"Run", "Blocking", "Name"} {
		if mset.Lookup(n.Obj().Pkg(), want) == nil {
			return false
		}
	}
	return true
}

// referencesRunfile reports whether the body mentions anything from the
// runfile package: the package itself, or a value whose type comes from it
// (a *runfile.Budget field, a runfile.Writer local, ...).
func referencesRunfile(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		if pn, ok := obj.(*types.PkgName); ok {
			if pathMatches(pn.Imported().Path(), "runfile") || pathMatches(pn.Imported().Path(), "internal/runfile") {
				found = true
			}
			return !found
		}
		if t := obj.Type(); t != nil && strings.Contains(t.String(), "runfile.") {
			found = true
		}
		return !found
	})
	return found
}

// checkTupleAppends reports `x = append(x, ...)` growing a []Tuple where x
// outlives the loop (or emit closure) doing the appending.
func checkTupleAppends(pass *Pass, fd *ast.FuncDecl) {
	// Walk with an explicit stack so each append knows its innermost
	// enclosing loop or function literal.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if as, ok := n.(*ast.AssignStmt); ok {
			checkAppendStmt(pass, fd, as, stack)
		}
		return true
	})
}

func checkAppendStmt(pass *Pass, fd *ast.FuncDecl, as *ast.AssignStmt, stack []ast.Node) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fn.Name != "append" {
		return
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	// Self-append: append target and assignment target are the same lvalue.
	lhs := types.ExprString(as.Lhs[0])
	if types.ExprString(call.Args[0]) != lhs {
		return
	}
	// Element type must be the engine's Tuple.
	tv, ok := pass.TypesInfo.Types[as.Lhs[0]]
	if !ok {
		return
	}
	slice, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return
	}
	elem := namedType(slice.Elem())
	if elem == nil || elem.Obj().Name() != "Tuple" {
		return
	}
	if !accumulates(pass, as, stack) {
		return
	}
	recv := "operator"
	if n := namedType(pass.TypesInfo.Types[fd.Recv.List[0].Type].Type); n != nil {
		recv = n.Obj().Name()
	}
	pass.Reportf(as.Pos(),
		"unbudgeted accumulation of tuples (%s) in %s.%s: charge a runfile.Budget and spill when denied, or stream",
		lhs, recv, fd.Name.Name)
}

// accumulates decides whether the append grows storage that outlives one
// iteration: the target is a field or indexed location, or a variable
// declared outside the innermost enclosing loop or function literal. An
// append with no enclosing loop/closure runs once and is not accumulation.
func accumulates(pass *Pass, as *ast.AssignStmt, stack []ast.Node) bool {
	switch t := ast.Unparen(as.Lhs[0]).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		// o.rows / groups[k]: lives beyond any iteration.
		_ = t
		return true
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[t]
		if obj == nil {
			obj = pass.TypesInfo.Defs[t]
		}
		if obj == nil {
			return false
		}
		// Find the innermost loop or closure containing the append.
		for i := len(stack) - 1; i >= 0; i-- {
			switch stack[i].(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
				scope := stack[i]
				return obj.Pos() < scope.Pos() || obj.Pos() > scope.End()
			}
		}
		return false
	}
	return false
}
