package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// This file is the analysistest-style golden harness: testdata packages
// under internal/lint/testdata/src/<pkg> carry `// want "regexp"` comments
// on the lines where an analyzer must report (several quoted regexps may
// follow one want), and AnalyzerTestResult diffs the analyzer's actual
// diagnostics against them — unexpected findings and unmatched expectations
// are both failures. Suppressed diagnostics count as absent, so testdata can
// exercise the lint:ignore directive too.

// wantExpectation is one expected diagnostic.
type wantExpectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// AnalyzerTestResult runs the analyzers over the testdata package dir
// (relative to testdata/src) and returns one message per mismatch between
// actual diagnostics and `// want` expectations. An empty result is a pass.
func AnalyzerTestResult(l *Loader, analyzers []*Analyzer, pkg string) ([]string, error) {
	dir := filepath.Join("testdata", "src", pkg)
	loaded, err := l.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	diags, err := RunPackage(l, loaded, analyzers)
	if err != nil {
		return nil, err
	}
	wants, err := parseWants(l, loaded.Files)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && !w.matched && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matching %q",
				w.file, w.line, w.pattern))
		}
	}
	return problems, nil
}

// parseWants extracts `// want "re" ["re" ...]` expectations from the
// package's comments. The expectation anchors to the line the comment sits
// on.
func parseWants(l *Loader, files []*ast.File) ([]*wantExpectation, error) {
	var wants []*wantExpectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := l.Fset.Position(c.Pos())
				patterns, err := splitQuoted(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want comment: %w", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, p, err)
					}
					wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants, nil
}

// splitQuoted parses a sequence of space-separated double-quoted or
// backquoted strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			return nil, fmt.Errorf("expected quoted pattern, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated pattern in %q", s)
		}
		raw := s[:end+2]
		if quote == '"' {
			unq, err := strconv.Unquote(raw)
			if err != nil {
				return nil, err
			}
			out = append(out, unq)
		} else {
			out = append(out, raw[1:len(raw)-1])
		}
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}
