package lockedcallback

import "sync"

// This file reproduces the historical ScanPartition self-join deadlock in
// shape: ScanPartition ran the caller's visitor inside the tree traversal
// while holding the partition latch, so a visitor that re-entered the same
// dataset (the self-join's inner scan) blocked on the latch it was already
// under.

type record struct{ key, val string }

type tree struct{ recs []record }

func (t *tree) rangeScan(lo, hi string, visit func(k, v string) bool) {
	for _, r := range t.recs {
		if r.key < lo || r.key > hi {
			continue
		}
		if !visit(r.key, r.val) {
			return
		}
	}
}

type partition struct {
	mu      sync.RWMutex
	primary *tree
}

// scanPartitionDeadlock is the bug as shipped.
func (p *partition) scanPartitionDeadlock(lo, hi string, visit func(k, v string) bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	p.primary.rangeScan(lo, hi, func(k, v string) bool { // want `callback \(func.* literal\) forwarded into p\.primary\.rangeScan while p\.mu is held`
		return visit(k, v)
	})
}

// scanPartitionFixed is the fix: collect under the latch, visit after.
func (p *partition) scanPartitionFixed(lo, hi string, visit func(k, v string) bool) {
	p.mu.RLock()
	var chunk []record
	p.primary.rangeScan(lo, hi, func(k, v string) bool {
		chunk = append(chunk, record{k, v})
		return true
	})
	p.mu.RUnlock()
	for _, r := range chunk {
		if !visit(r.key, r.val) {
			return
		}
	}
}
