// Package lockedcallback exercises asterixlint/lockedcallback: a
// caller-supplied callback must never run while a lock acquired in the same
// function is held.
package lockedcallback

import "sync"

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// scan is a package-local traversal that runs its visitor per element;
// forwarding a caller's callback into it under the latch is the deadlock
// shape.
func (s *store) scan(visit func(string, int) bool) {
	for k, v := range s.data {
		if !visit(k, v) {
			return
		}
	}
}

// directCallUnderLock invokes the visitor with the latch held.
func (s *store) directCallUnderLock(visit func(string, int) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.data {
		visit(k, v) // want `callback visit invoked while s\.mu is held`
	}
}

// readUnderRLock: a read latch deadlocks a re-entrant visitor just the same.
func (s *store) readUnderRLock(emit func(int)) {
	s.rw.RLock()
	for _, v := range s.data {
		emit(v) // want `callback emit invoked while s\.rw is held`
	}
	s.rw.RUnlock()
}

// forwardUnderLock hands a closure over the visitor to a traversal while the
// latch is held: the traversal will run the caller's code under the lock.
func (s *store) forwardUnderLock(visit func(string, int) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scan(func(k string, v int) bool { // want `callback \(func.* literal\) forwarded into s\.scan while s\.mu is held`
		return visit(k, v)
	})
}

// forwardBareParam forwards the parameter itself.
func (s *store) forwardBareParam(visit func(string, int) bool) {
	s.mu.Lock()
	s.scan(visit) // want `callback visit forwarded into s\.scan while s\.mu is held`
	s.mu.Unlock()
}

// aliasTaint: a local alias of the callback is just as dangerous.
func (s *store) aliasTaint(visit func(string, int) bool) {
	cb := visit
	s.mu.Lock()
	cb("x", 1) // want `callback cb invoked while s\.mu is held`
	s.mu.Unlock()
}

// branchUnlock: an early-unlock branch must not clear the lock state on the
// fall-through path.
func (s *store) branchUnlock(visit func(string, int) bool, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		return
	}
	visit("", 0) // want `callback visit invoked while s\.mu is held`
	s.mu.Unlock()
}

// lockedGoroutine: a goroutine body is its own unit but still captures the
// caller's visitor.
func (s *store) lockedGoroutine(emit func(int)) {
	go func() {
		s.mu.Lock()
		emit(1) // want `callback emit invoked while s\.mu is held`
		s.mu.Unlock()
	}()
}

// collectThenVisit is the engine's idiom and must stay clean: gather matches
// under the latch, invoke the visitor after releasing it.
func (s *store) collectThenVisit(visit func(string, int) bool) {
	type kv struct {
		k string
		v int
	}
	s.mu.Lock()
	var out []kv
	for k, v := range s.data {
		out = append(out, kv{k, v})
	}
	s.mu.Unlock()
	for _, e := range out {
		if !visit(e.k, e.v) {
			return
		}
	}
}

// localClosureIsFine: a purely local closure cannot re-enter through the
// caller, so running it under the latch is not flagged.
func (s *store) localClosureIsFine() int {
	total := 0
	s.mu.Lock()
	s.scan(func(k string, v int) bool {
		total += v
		return true
	})
	s.mu.Unlock()
	return total
}
