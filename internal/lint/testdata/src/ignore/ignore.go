// Package ignore exercises the lint:ignore suppression directive: same-line
// and line-above placements suppress, unsuppressed findings stay live, and a
// stale directive is itself a finding.
package ignore

import "io"

func sameLine(r io.Reader) []byte {
	buf := make([]byte, 4)
	r.Read(buf) //lint:ignore asterixlint/readfull the ring buffer always holds 4 bytes here
	return buf
}

func lineAbove(r io.Reader) []byte {
	buf := make([]byte, 4)
	//lint:ignore asterixlint/readfull framing is validated by the caller
	r.Read(buf)
	return buf
}

func unsuppressed(r io.Reader) []byte {
	buf := make([]byte, 4)
	r.Read(buf)
	return buf
}

func stale(r io.Reader) (int, error) {
	buf := make([]byte, 4)
	//lint:ignore asterixlint/readfull stale: the count is checked now
	return r.Read(buf)
}
