// Package budgetalloc exercises asterixlint/budgetalloc: operator bodies
// must not accumulate tuples without charging a runfile budget.
package budgetalloc

import "asterixdb/internal/runfile"

type Tuple []int

// collectOp is operator-shaped: its pointer method set carries Run, Blocking
// and Name, like a hyracks operator.
type collectOp struct {
	rows []Tuple
}

func (o *collectOp) Name() string   { return "collect" }
func (o *collectOp) Blocking() bool { return true }

// Run materializes its whole input with no budget in sight.
func (o *collectOp) Run(in <-chan Tuple, emit func(Tuple) bool) error {
	for t := range in {
		o.rows = append(o.rows, t) // want `unbudgeted accumulation of tuples \(o\.rows\) in collectOp\.Run`
	}
	for _, t := range o.rows {
		if !emit(t) {
			return nil
		}
	}
	return nil
}

// drain grows a local that outlives the loop: same class.
func (o *collectOp) drain(in <-chan Tuple) []Tuple {
	var buf []Tuple
	for t := range in {
		buf = append(buf, t) // want `unbudgeted accumulation of tuples \(buf\) in collectOp\.drain`
	}
	return buf
}

// pairs appends only within one iteration — the slice is born and dies inside
// the loop body, so nothing accumulates: clean.
func (o *collectOp) pairs(in [][2]Tuple) int {
	n := 0
	for _, p := range in {
		var pair []Tuple
		pair = append(pair, p[0])
		pair = append(pair, p[1])
		n += len(pair)
	}
	return n
}

// budgetedOp charges a runfile.Instance before buffering; any method that
// references the runfile package is presumed to do its accounting, and the
// accounting itself is the spill tests' job: clean.
type budgetedOp struct {
	rows []Tuple
	mem  *runfile.Instance
}

func (o *budgetedOp) Name() string   { return "budgeted" }
func (o *budgetedOp) Blocking() bool { return true }

func (o *budgetedOp) Run(in <-chan Tuple, spill func([]Tuple) error) error {
	for t := range in {
		if !o.mem.Fits(int64(len(t))) {
			if err := spill(o.rows); err != nil {
				return err
			}
			o.mem.Release(o.mem.Used())
			o.rows = o.rows[:0]
		}
		o.mem.Add(int64(len(t)))
		o.rows = append(o.rows, t)
	}
	return spill(o.rows)
}

// plainBuffer is not operator-shaped (no Run/Blocking/Name), so its buffering
// is out of scope: clean.
type plainBuffer struct {
	rows []Tuple
}

func (b *plainBuffer) add(ts []Tuple) {
	for _, t := range ts {
		b.rows = append(b.rows, t)
	}
}
