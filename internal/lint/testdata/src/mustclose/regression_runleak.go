package mustclose

import (
	"asterixdb/internal/adm"
	"asterixdb/internal/runfile"
)

// This file reproduces the historical spill run-file leak in shape: the
// external sort spilled a sorted run, and a write error between NewRun and
// Finish returned early, leaving the run file on disk with its bytes still
// charged against the manager's spill budget.

// spillRunLeak is the bug as shipped.
func spillRunLeak(m *runfile.Manager, rows [][]adm.Value) (*runfile.Run, error) {
	w, err := m.NewRun()
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return nil, err // want `may return with w open`
		}
	}
	return w.Finish()
}

// spillRunFixed aborts the writer on the error path, deleting the partial run
// and releasing its budget charge.
func spillRunFixed(m *runfile.Manager, rows [][]adm.Value) (*runfile.Run, error) {
	w, err := m.NewRun()
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			w.Abort()
			return nil, err
		}
	}
	return w.Finish()
}

// runNeverFinished writes tuples but neither finishes nor aborts.
func runNeverFinished(m *runfile.Manager, row []adm.Value) error {
	w, err := m.NewRun() // want `w \(\*runfile\.Writer\) is never closed: call Finish or Abort`
	if err != nil {
		return err
	}
	return w.Write(row)
}

type spill struct{ w *runfile.Writer }

// structTransfer stores the writer in a struct for a later Finish: ownership
// moved, so the function is clean.
func structTransfer(m *runfile.Manager) (*spill, error) {
	w, err := m.NewRun()
	if err != nil {
		return nil, err
	}
	return &spill{w: w}, nil
}
