// Package mustclose exercises asterixlint/mustclose: run files, cursors and
// temp files must be released on every path or explicitly handed off.
package mustclose

import (
	"os"

	"asterixdb/internal/hyracks"
)

// leakTemp never closes the temp file.
func leakTemp(dir string) (string, error) {
	f, err := os.CreateTemp(dir, "spill-*") // want `f \(\*os\.File\) is never closed`
	if err != nil {
		return "", err
	}
	return f.Name(), nil
}

// earlyReturnLeak closes on the happy path only.
func earlyReturnLeak(dir string, fail bool) error {
	f, err := os.CreateTemp(dir, "spill-*")
	if err != nil {
		return err
	}
	if fail {
		return os.ErrInvalid // want `may return with f open`
	}
	return f.Close()
}

// deferredClose is the idiomatic shape and stays clean.
func deferredClose(dir string, data []byte) error {
	f, err := os.CreateTemp(dir, "sort-*")
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

// returnTransfer hands the open file to the caller; the callee is no longer
// responsible for closing it.
func returnTransfer(dir string) (*os.File, error) {
	f, err := os.CreateTemp(dir, "run-*")
	if err != nil {
		return nil, err
	}
	return f, nil
}

func openCursor() *hyracks.Cursor { return nil }

// cursorLeak drains a streaming cursor without ever closing it, leaving the
// job's goroutines parked on their output channels.
func cursorLeak() int {
	cur := openCursor() // want `cur \(\*hyracks\.Cursor\) is never closed`
	n := 0
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
		n++
	}
	return n
}

// cursorDrained defers the close before draining: clean.
func cursorDrained() (int, error) {
	cur := openCursor()
	defer cur.Close()
	n := 0
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
		n++
	}
	return n, cur.Err()
}
