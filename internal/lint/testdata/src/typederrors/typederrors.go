// Package typederrors exercises asterixlint/typederrors: sentinel errors are
// matched with errors.Is and propagated with %w, never by message text.
package typederrors

import (
	"errors"
	"fmt"
	"strings"
)

var errNotFound = errors.New("typederrors: not found")

func open(name string) error {
	if name == "" {
		return errNotFound
	}
	return nil
}

// matchByContains greps the message.
func matchByContains(name string) bool {
	err := open(name)
	return err != nil && strings.Contains(err.Error(), "not found") // want `error matched by message text`
}

// matchByEquality compares the full message.
func matchByEquality(name string) bool {
	err := open(name)
	return err != nil && err.Error() == "typederrors: not found" // want `error matched by message text`
}

// wrapWithoutW formats the cause with %v, severing the errors.Is chain.
func wrapWithoutW(name string) error {
	if err := open(name); err != nil {
		return fmt.Errorf("open %s: %v", name, err) // want `fmt\.Errorf wraps an error without %w`
	}
	return nil
}

// wrapWithW is the idiomatic propagation: clean.
func wrapWithW(name string) error {
	if err := open(name); err != nil {
		return fmt.Errorf("open %s: %w", name, err)
	}
	return nil
}

// matchWithIs is the idiomatic sentinel check: clean.
func matchWithIs(name string) bool {
	return errors.Is(open(name), errNotFound)
}

// plainStrings: matching ordinary strings is fine.
func plainStrings(s string) bool {
	return strings.Contains(s, "not found")
}

// logMessage passes no error-typed argument to Errorf at all: clean.
func logMessage(n int) error {
	return fmt.Errorf("bad frame count %d", n)
}
