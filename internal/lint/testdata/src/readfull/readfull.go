// Package readfull exercises asterixlint/readfull: the result of a bare
// io.Reader.Read must not be assumed to fill the buffer.
package readfull

import (
	"crypto/rand"
	"io"
	"os"
)

// discardBoth ignores the result entirely.
func discardBoth(f *os.File) []byte {
	buf := make([]byte, 16)
	f.Read(buf) // want `result of f\.Read is discarded`
	return buf
}

// discardCount keeps the error but blanks the byte count.
func discardCount(r io.Reader) error {
	buf := make([]byte, 8)
	_, err := r.Read(buf) // want `result of r\.Read is discarded`
	return err
}

// checked uses the count: clean.
func checked(r io.Reader) ([]byte, error) {
	buf := make([]byte, 8)
	n, err := r.Read(buf)
	return buf[:n], err
}

// full uses io.ReadFull, which owns the short-read loop: clean.
func full(r io.Reader) error {
	buf := make([]byte, 8)
	_, err := io.ReadFull(r, buf)
	return err
}

// packageFuncIsFine: rand.Read is a package function, not an io.Reader
// method, and is documented to fill the buffer.
func packageFuncIsFine() []byte {
	buf := make([]byte, 8)
	rand.Read(buf)
	return buf
}
