package readfull

import (
	"encoding/binary"
	"io"
)

// This file reproduces the historical truncated-component bug in shape: the
// decoder read a length prefix and then assumed a single Read filled the
// frame, mis-decoding any frame that straddled a page boundary.

// decodeFrameShortRead is the bug as shipped.
func decodeFrameShortRead(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	frame := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	r.Read(frame) // want `result of r\.Read is discarded`
	return frame, nil
}

// decodeFrameFixed is the fix.
func decodeFrameFixed(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	frame := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
