package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// TypedErrors flags stringly-typed error handling. The storage layer exports
// sentinel errors (storage.ErrExists, storage.ErrNotFound) precisely so that
// callers can use errors.Is across wrapping layers; matching on err.Error()
// substrings or re-wrapping with %v instead of %w severs that chain, and the
// match silently breaks the next time a message is reworded.
var TypedErrors = &Analyzer{
	Name: "typederrors",
	Doc: "flags strings.Contains/== matching on err.Error() and fmt.Errorf wrapping " +
		"an error without %w; use errors.Is/As against sentinel errors instead",
	Run: runTypedErrors,
}

func runTypedErrors(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				checkStringMatchCall(pass, e)
				checkErrorfWrap(pass, e)
			case *ast.BinaryExpr:
				if e.Op == token.EQL || e.Op == token.NEQ {
					if call := errorStringCall(pass.TypesInfo, e.X); call != nil {
						reportStringMatch(pass, call)
					} else if call := errorStringCall(pass.TypesInfo, e.Y); call != nil {
						reportStringMatch(pass, call)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkStringMatchCall flags strings.* matching applied to err.Error().
func checkStringMatchCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "strings" {
		return
	}
	switch fn.Name() {
	case "Contains", "HasPrefix", "HasSuffix", "Index", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		var hit *ast.CallExpr
		ast.Inspect(arg, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok && hit == nil {
				if errCall := errorStringCall(pass.TypesInfo, c); errCall != nil {
					hit = errCall
				}
			}
			return hit == nil
		})
		if hit != nil {
			reportStringMatch(pass, hit)
			return
		}
	}
}

func reportStringMatch(pass *Pass, call *ast.CallExpr) {
	pass.Reportf(call.Pos(),
		"error matched by message text; match the sentinel with errors.Is (message strings are not API)")
}

// errorStringCall returns the call expression if e is `x.Error()` on an
// error-typed x, or nil.
func errorStringCall(info *types.Info, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return nil
	}
	if tv, ok := info.Types[sel.X]; ok && implementsError(tv.Type) {
		return call
	}
	return nil
}

// checkErrorfWrap flags fmt.Errorf calls that format an error argument
// without a %w verb, which strips the errors.Is/As chain.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && implementsError(tv.Type) {
			pass.Reportf(call.Pos(),
				"fmt.Errorf wraps an error without %%w, severing the errors.Is chain to sentinels like storage.ErrNotFound")
			return
		}
	}
}

// implementsError reports whether t satisfies the error interface (or is it).
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if isErrorType(t) {
		return true
	}
	iface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface)
}
