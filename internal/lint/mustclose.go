package lint

import (
	"go/ast"
	"go/types"
)

// MustClose flags resources acquired in a function and not released on every
// path out of it. The PR 4 external-runtime work leaked spill run files
// exactly this way: a writer was Finished on the happy path but an early
// error return left the temp file on disk and the budget charged. The
// analyzer tracks the engine's closable types from their acquisition call to
// one of:
//
//   - a deferred close (covers every subsequent path),
//   - a close on each straight-line path (branches that return while the
//     resource is open are reported), or
//   - an ownership transfer: the value is returned, stored into a struct or
//     composite literal, assigned onward, or passed to another call — after
//     which the new owner is responsible and this function is off the hook.
//
// The `if err != nil` branch guarding the acquisition's own error is exempt:
// on that path the resource was never acquired. lsm.Iterator is deliberately
// not tracked — it is latch-scoped and has no Close.
var MustClose = &Analyzer{
	Name: "mustclose",
	Doc: "flags runfile writers/readers, cursors and os temp files not closed on " +
		"every path (the spill run-file leak class); recognizes defer and ownership " +
		"transfer via return/store/call",
	Run: runMustClose,
}

// closable describes one tracked resource type.
type closable struct {
	pkgPath string // matched with pathMatches
	name    string
	closers []string // any one of these releases the resource
	// osOnly restricts acquisitions to calls of package functions in "os"
	// (Open/Create/CreateTemp...), so files received from elsewhere are the
	// sender's responsibility.
	osOnly bool
}

var closables = []closable{
	{pkgPath: "os", name: "File", closers: []string{"Close"}, osOnly: true},
	{pkgPath: "internal/runfile", name: "Writer", closers: []string{"Finish", "Abort"}},
	{pkgPath: "internal/runfile", name: "Reader", closers: []string{"Close"}},
	{pkgPath: "internal/hyracks", name: "Cursor", closers: []string{"Close"}},
	{pkgPath: "asterixdb", name: "Cursor", closers: []string{"Close"}},
}

func classify(t types.Type) *closable {
	for i := range closables {
		if typeIs(t, closables[i].pkgPath, closables[i].name) {
			return &closables[i]
		}
	}
	return nil
}

func runMustClose(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkCloseUnit(pass, fd.Body)
			}
		}
	}
	return nil
}

// acquisition is one tracked resource binding inside a function.
type acquisition struct {
	obj    types.Object // the resource variable
	errObj types.Object // error bound by the same assignment, if any
	stmt   *ast.AssignStmt
	class  *closable
}

// checkCloseUnit analyzes one function body; nested literals are analyzed as
// their own units for acquisitions, but closes/transfers inside them count
// for the enclosing unit (closure capture).
func checkCloseUnit(pass *Pass, body *ast.BlockStmt) {
	for _, acq := range findAcquisitions(pass, body) {
		checkAcquisition(pass, body, acq)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkCloseUnit(pass, lit.Body)
			return false
		}
		return true
	})
}

// findAcquisitions collects tracked-resource bindings at this unit's level
// (not inside nested function literals).
func findAcquisitions(pass *Pass, body *ast.BlockStmt) []*acquisition {
	var acqs []*acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		var errObj types.Object
		var resources []*acquisition
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			if class := classify(obj.Type()); class != nil {
				if class.osOnly && !isOSAcquire(pass.TypesInfo, call) {
					continue
				}
				resources = append(resources, &acquisition{obj: obj, stmt: as, class: class})
			} else if isErrorType(obj.Type()) {
				errObj = obj
			}
		}
		for _, r := range resources {
			r.errObj = errObj
			acqs = append(acqs, r)
		}
		return true
	})
	return acqs
}

// isOSAcquire reports whether the call is a package-level function of os
// (Open, Create, CreateTemp, OpenFile...). Files obtained any other way are
// not treated as acquisitions.
func isOSAcquire(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil && fn.Pkg().Path() == "os"
}

// checkAcquisition classifies every use of the resource in the unit and
// applies the policy described in the analyzer doc.
func checkAcquisition(pass *Pass, body *ast.BlockStmt, acq *acquisition) {
	uses := collectUses(pass, body, acq)
	if uses.transferred {
		return
	}
	if len(uses.closes) == 0 {
		pass.Reportf(acq.stmt.Pos(),
			"%s (*%s.%s) is never closed: call %s, defer it, or transfer ownership",
			acq.obj.Name(), packageShort(acq.class.pkgPath), acq.class.name, closerList(acq.class))
		return
	}
	if uses.deferred {
		return
	}
	walkClosePaths(pass, body, acq, uses)
}

type resourceUses struct {
	closes      map[*ast.CallExpr]bool // close calls on the resource
	deferred    bool                   // at least one close runs via defer
	transferred bool                   // ownership left the function
}

// collectUses scans the whole unit (nested literals included — they capture
// the variable) for closes and ownership transfers of acq.obj.
func collectUses(pass *Pass, body *ast.BlockStmt, acq *acquisition) *resourceUses {
	uses := &resourceUses{closes: map[*ast.CallExpr]bool{}}
	isRes := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == acq.obj
	}
	var deferDepth int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.DeferStmt:
				deferDepth++
				walk(x.Call)
				deferDepth--
				return false
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && isRes(sel.X) {
					for _, closer := range acq.class.closers {
						if sel.Sel.Name == closer {
							uses.closes[x] = true
							if deferDepth > 0 {
								uses.deferred = true
							}
							return true
						}
					}
					// Other method calls on the resource are plain uses.
					return true
				}
				for _, arg := range x.Args {
					if escapes(pass, arg, acq.obj) {
						uses.transferred = true
					}
				}
			case *ast.ReturnStmt:
				for _, e := range x.Results {
					if escapes(pass, e, acq.obj) {
						uses.transferred = true
					}
				}
			case *ast.AssignStmt:
				if x == acq.stmt {
					return true
				}
				for _, rhs := range x.Rhs {
					if escapes(pass, rhs, acq.obj) {
						uses.transferred = true
					}
				}
			case *ast.SendStmt:
				if escapes(pass, x.Value, acq.obj) {
					uses.transferred = true
				}
			case *ast.FuncLit:
				// Closure capture: a close inside a nested literal counts,
				// and the defer context carries through so that
				// defer func() { r.Close() }() registers as deferred.
				walk(x.Body)
				return false
			}
			return true
		})
	}
	walk(body)
	return uses
}

// escapes reports whether evaluating e hands the resource value itself to a
// new owner: the bare variable, its address, or a composite literal carrying
// it. Derived values (w.Name(), w.Size()) do not transfer ownership.
func escapes(pass *Pass, e ast.Expr, obj types.Object) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[x] == obj
	case *ast.UnaryExpr:
		return escapes(pass, x.X, obj)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if escapes(pass, el, obj) {
				return true
			}
		}
	}
	return false
}

// containsResource reports whether the expression mentions the resource
// variable anywhere (including inside composite literals and unary &x).
func containsResource(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// walkClosePaths runs the straight-line path check: after the acquisition,
// every return must happen with the resource closed, and falling off the end
// of the acquisition's block must leave it closed (a leak across loop
// iterations otherwise).
func walkClosePaths(pass *Pass, body *ast.BlockStmt, acq *acquisition, uses *resourceUses) {
	block, idx := enclosingBlock(body, acq.stmt)
	if block == nil {
		return
	}
	w := &closeWalker{pass: pass, acq: acq, uses: uses}
	open := w.walkStmts(block.List[idx+1:], true)
	if open && !w.reported {
		pass.Reportf(acq.stmt.Pos(),
			"%s is closed on some paths but not all: a path falls out of this block with it open",
			acq.obj.Name())
	}
}

// enclosingBlock finds the innermost block statement list containing stmt
// and its index in it.
func enclosingBlock(body *ast.BlockStmt, stmt ast.Stmt) (*ast.BlockStmt, int) {
	var foundBlock *ast.BlockStmt
	foundIdx := -1
	ast.Inspect(body, func(n ast.Node) bool {
		if foundBlock != nil {
			return false
		}
		if b, ok := n.(*ast.BlockStmt); ok {
			for i, s := range b.List {
				if s == stmt {
					foundBlock, foundIdx = b, i
					return false
				}
			}
		}
		return true
	})
	return foundBlock, foundIdx
}

type closeWalker struct {
	pass     *Pass
	acq      *acquisition
	uses     *resourceUses
	reported bool
}

// walkStmts walks one statement list with the resource in state open,
// returning the open state at the end of the list. Returns while open are
// reported.
func (w *closeWalker) walkStmts(stmts []ast.Stmt, open bool) bool {
	for _, s := range stmts {
		open = w.walkStmt(s, open)
	}
	return open
}

func (w *closeWalker) walkStmt(s ast.Stmt, open bool) bool {
	if !open {
		return false
	}
	if w.stmtCloses(s) {
		return false
	}
	switch s := s.(type) {
	case *ast.ReturnStmt:
		w.reported = true
		w.pass.Reportf(s.Pos(),
			"may return with %s open; close it on this path or defer the close (spill run-file leak class)",
			w.acq.obj.Name())
		return open
	case *ast.BlockStmt:
		return w.walkStmts(s.List, open)
	case *ast.IfStmt:
		if w.acq.errObj != nil && usesObject(w.pass, s.Cond, w.acq.errObj) {
			// The acquisition's own error check: on that branch the resource
			// was never valid.
			return open
		}
		bodyOpen := w.walkStmts(s.Body.List, open)
		elseOpen := open
		if s.Else != nil {
			elseOpen = w.walkStmt(s.Else, open)
		}
		// Optimistic merge: a close on either branch clears the state, which
		// under-reports interleavings but never flags correct code.
		if terminates(s.Body) {
			return elseOpen
		}
		return bodyOpen && elseOpen
	case *ast.ForStmt:
		return w.walkStmts(s.Body.List, open)
	case *ast.RangeStmt:
		return w.walkStmts(s.Body.List, open)
	case *ast.SwitchStmt:
		return w.walkCases(s.Body, open)
	case *ast.TypeSwitchStmt:
		return w.walkCases(s.Body, open)
	case *ast.SelectStmt:
		return w.walkCases(s.Body, open)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, open)
	}
	return open
}

func (w *closeWalker) walkCases(body *ast.BlockStmt, open bool) bool {
	result := open
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
		case *ast.CommClause:
			stmts = cc.Body
		}
		if !w.walkStmts(stmts, open) {
			result = false
		}
	}
	return result
}

// stmtCloses reports whether the statement directly contains a close call on
// the resource (not inside a nested function literal).
func (w *closeWalker) stmtCloses(s ast.Stmt) bool {
	closes := false
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && w.uses.closes[call] {
			closes = true
		}
		return !closes
	})
	return closes
}

func usesObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	return containsResource(pass, e, obj)
}

// terminates reports whether a block always transfers control out (its last
// statement is a return, panic-like call, or unguarded control transfer).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func packageShort(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

func closerList(c *closable) string {
	s := c.closers[0]
	for _, extra := range c.closers[1:] {
		s += " or " + extra
	}
	return s
}
