package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The suppression directive is
//
//	//lint:ignore asterixlint/<name> <reason>
//
// placed on the flagged line or on the line directly above it (a contiguous
// comment block directly above also counts, matching how staticcheck scopes
// its directives). The analyzer name may be "all" to silence every analyzer
// for that line. A reason is required: a bare directive is itself reported,
// so suppressions stay auditable.

// ignoreDirective is one parsed lint:ignore comment.
type ignoreDirective struct {
	analyzer string // analyzer name without the asterixlint/ prefix, or "all"
	reason   string
	line     int    // line the comment sits on
	file     string // filename the comment sits in
	used     bool
}

const directivePrefix = "lint:ignore"

// parseIgnores collects every lint:ignore directive in the package's files.
// Malformed directives (missing analyzer or reason) are reported as
// diagnostics in their own right via the returned problems slice.
func parseIgnores(fset *token.FileSet, files []*ast.File) (directives []*ignoreDirective, problems []Diagnostic) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				name = strings.TrimPrefix(name, "asterixlint/")
				reason = strings.TrimSpace(reason)
				if name == "" || reason == "" {
					problems = append(problems, Diagnostic{
						Analyzer: "ignore",
						Pos:      pos,
						Message:  "malformed lint:ignore directive: want //lint:ignore asterixlint/<analyzer> <reason>",
					})
					continue
				}
				directives = append(directives, &ignoreDirective{
					analyzer: name,
					reason:   reason,
					line:     pos.Line,
					file:     pos.Filename,
				})
			}
		}
	}
	return directives, problems
}

// applyIgnores marks diagnostics matched by a directive as suppressed and
// reports directives that matched nothing (stale suppressions are themselves
// findings, so ignores cannot rot in place).
func applyIgnores(diags []Diagnostic, directives []*ignoreDirective) []Diagnostic {
	for i := range diags {
		d := &diags[i]
		for _, dir := range directives {
			if dir.matches(*d) {
				d.Suppressed = true
				d.SuppressReason = dir.reason
				dir.used = true
				break
			}
		}
	}
	for _, dir := range directives {
		if !dir.used {
			diags = append(diags, Diagnostic{
				Analyzer: "ignore",
				Pos:      token.Position{Filename: dir.file, Line: dir.line, Column: 1},
				Message:  "lint:ignore directive matches no diagnostic (asterixlint/" + dir.analyzer + "); remove it",
			})
		}
	}
	return diags
}

// matches reports whether the directive covers the diagnostic: same file,
// same analyzer (or "all"), and the directive sits on the diagnostic's line
// or directly above it.
func (dir *ignoreDirective) matches(d Diagnostic) bool {
	if d.Suppressed || dir.file != d.Pos.Filename {
		return false
	}
	if dir.analyzer != "all" && dir.analyzer != d.Analyzer {
		return false
	}
	return dir.line == d.Pos.Line || dir.line == d.Pos.Line-1
}
