package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of the asterixdb module without
// external tooling. Imports are resolved through a two-way chain: paths
// inside the module are mapped to repository directories and type-checked
// recursively; everything else (the standard library) goes through Go's
// source importer. The loader memoizes packages, so a whole-tree run
// type-checks each package once.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod ("asterixdb").
	ModulePath string

	Fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*Package
}

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path (or a synthetic path for testdata
	// packages loaded by the analysistest harness).
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewLoader returns a loader rooted at the module containing dir. It walks
// parent directories until it finds go.mod, mirroring the go tool.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		std:        std,
		cache:      map[string]*Package{},
	}, nil
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// LoadAll loads every package under the module root, skipping testdata,
// hidden directories, and directories with no non-test Go files. This is the
// "./..." of cmd/asterixlint. Packages come back sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir loads the package in one directory. The import path is derived
// from the directory's position under the module root; directories outside
// the module (testdata trees) get a synthetic path from their base name.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path := l.importPathFor(abs)
	return l.load(path, abs)
}

// importPathFor maps a repository directory to its import path.
func (l *Loader) importPathFor(abs string) string {
	if abs == l.ModuleRoot {
		return l.ModulePath
	}
	if rel, err := filepath.Rel(l.ModuleRoot, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return filepath.Base(abs)
}

// load parses and type-checks one package, memoized by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.cache[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test Go file in dir, with comments, in file-name
// order so diagnostics are deterministic.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && isSourceFile(e.Name()) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// isSourceFile reports whether name is a Go file the analyzers look at:
// _test.go files are excluded (they exercise invariants deliberately and are
// compiled separately by the go tool).
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// Import implements types.Importer; the type checker calls it for dot-free
// import paths in older code paths.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom, chaining module-local resolution
// with the standard-library source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		dir := l.ModuleRoot
		if path != l.ModulePath {
			dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
		}
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
