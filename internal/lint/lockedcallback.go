package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockedCallback flags caller-supplied callbacks run under a lock. The
// engine's storage idiom is strict: traversals collect matches while holding
// the partition latch and invoke the caller's visitor only after releasing
// it, because a visitor that re-enters the same dataset (a self-join's inner
// scan) would block on the latch it is already under — the ScanPartition
// self-deadlock. The analyzer reports, inside any region where a
// sync.Mutex/RWMutex acquired in the same function is still held:
//
//   - a direct call of a function-typed parameter (or a local alias of one),
//     and
//   - a call into module-local code that forwards such a parameter (bare or
//     captured by a closure) — the "exported method that invokes the
//     visitor" shape.
//
// Purely local closures passed to traversals under a latch are not flagged:
// they cannot re-enter through the caller.
var LockedCallback = &Analyzer{
	Name: "lockedcallback",
	Doc: "flags visitor/emit-style function parameters invoked (or forwarded into a " +
		"traversal) while a sync.Mutex/RWMutex acquired in the same function is held " +
		"(the ScanPartition self-join deadlock class)",
	Run: runLockedCallback,
}

func runLockedCallback(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkLockedUnit(pass, fd.Type, fd.Body, nil)
			}
		}
	}
	return nil
}

// checkLockedUnit analyzes one function body. outer carries func-typed
// parameter objects captured from enclosing functions (for nested literals).
func checkLockedUnit(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt, outer map[types.Object]bool) {
	tainted := map[types.Object]bool{}
	for o := range outer {
		tainted[o] = true
	}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil && funcTyped(obj.Type()) {
					tainted[obj] = true
				}
			}
		}
	}
	st := &lockState{pass: pass, tainted: tainted, held: map[string]bool{}}
	st.walkStmts(body.List)
	// Nested function literals form their own units (a goroutine body that
	// locks and then emits is just as deadlock-prone as its parent).
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkLockedUnit(pass, lit.Type, lit.Body, tainted)
			return false
		}
		return true
	})
}

type lockState struct {
	pass    *Pass
	tainted map[types.Object]bool
	// held maps the source rendering of a mutex expression ("p.mu") to
	// whether that lock is currently held on this path.
	held map[string]bool
}

func (st *lockState) clone() *lockState {
	held := make(map[string]bool, len(st.held))
	for k, v := range st.held {
		held[k] = v
	}
	return &lockState{pass: st.pass, tainted: st.tainted, held: held}
}

func (st *lockState) anyHeld() (string, bool) {
	for k, h := range st.held {
		if h {
			return k, true
		}
	}
	return "", false
}

// walkStmts processes a statement list in order, tracking lock transitions.
// Branch bodies run on cloned state so an early-unlock-and-return branch does
// not clear the lock on the fall-through path.
func (st *lockState) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		st.walkStmt(s)
	}
}

func (st *lockState) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		st.walkStmts(s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			st.walkStmt(s.Init)
		}
		st.checkExpr(s.Cond)
		st.clone().walkStmt(s.Body)
		if s.Else != nil {
			st.clone().walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st.walkStmt(s.Init)
		}
		if s.Cond != nil {
			st.checkExpr(s.Cond)
		}
		st.clone().walkStmt(s.Body)
	case *ast.RangeStmt:
		st.checkExpr(s.X)
		st.clone().walkStmt(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st.walkStmt(s.Init)
		}
		if s.Tag != nil {
			st.checkExpr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				sub := st.clone()
				for _, e := range cc.List {
					sub.checkExpr(e)
				}
				sub.walkStmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st.walkStmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				st.clone().walkStmts(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				sub := st.clone()
				if cc.Comm != nil {
					sub.walkStmt(cc.Comm)
				}
				sub.walkStmts(cc.Body)
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function; any other deferred call is checked in place.
		if recv, kind := mutexCall(st.pass.TypesInfo, s.Call); kind == lockRelease && recv != "" {
			return
		}
		st.checkExpr(s.Call)
	case *ast.GoStmt:
		st.checkExpr(s.Call)
	case *ast.ExprStmt:
		st.applyExpr(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			st.checkExpr(rhs)
		}
		st.propagateTaint(s)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			st.checkExpr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st.checkExpr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		st.walkStmt(s.Stmt)
	}
}

// applyExpr handles an expression statement: lock transitions mutate state,
// everything else is checked for callback misuse.
func (st *lockState) applyExpr(e ast.Expr) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if recv, kind := mutexCall(st.pass.TypesInfo, call); recv != "" {
			switch kind {
			case lockAcquire:
				st.held[recv] = true
			case lockRelease:
				st.held[recv] = false
			}
			return
		}
	}
	st.checkExpr(e)
}

type lockKind int

const (
	lockNone lockKind = iota
	lockAcquire
	lockRelease
)

// mutexCall recognizes m.Lock/RLock/Unlock/RUnlock on sync.Mutex/RWMutex and
// returns the rendered receiver expression ("p.mu") plus the transition kind.
func mutexCall(info *types.Info, call *ast.CallExpr) (string, lockKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) != 0 {
		return "", lockNone
	}
	var kind lockKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockAcquire
	case "Unlock", "RUnlock":
		kind = lockRelease
	default:
		return "", lockNone
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", lockNone
	}
	return types.ExprString(sel.X), kind
}

// checkExpr looks for callback misuse inside an expression while a lock is
// held. Function literal bodies are not descended into (they are analyzed as
// their own units, and a literal is only dangerous here when forwarded into
// a call, which taintedExpr catches) unless immediately invoked.
func (st *lockState) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	lock, heldNow := st.anyHeld()
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if !heldNow {
				return true
			}
			// Immediately-invoked literal: execute inline.
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				sub := st.clone()
				sub.walkStmts(lit.Body.List)
			}
			if name, ok := st.taintedCallee(x); ok {
				st.pass.Reportf(x.Pos(),
					"callback %s invoked while %s is held; collect under the latch and invoke after unlocking", name, lock)
				return true
			}
			if argName, ok := st.taintedArg(x); ok && moduleLocalCallee(st.pass, x) {
				st.pass.Reportf(x.Pos(),
					"callback %s forwarded into %s while %s is held; the traversal will run it under the latch",
					argName, types.ExprString(ast.Unparen(x.Fun)), lock)
			}
		}
		return true
	})
}

// propagateTaint marks locals assigned from tainted values as tainted:
// v := visit, or v := func(){ ... visit(...) ... }.
func (st *lockState) propagateTaint(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if !st.taintedExpr(s.Rhs[i]) {
			continue
		}
		if obj := st.pass.TypesInfo.Defs[id]; obj != nil {
			st.tainted[obj] = true
		} else if obj := st.pass.TypesInfo.Uses[id]; obj != nil {
			st.tainted[obj] = true
		}
	}
}

// taintedCallee reports whether the call invokes a tainted function value.
func (st *lockState) taintedCallee(call *ast.CallExpr) (string, bool) {
	fun := ast.Unparen(call.Fun)
	if id, ok := fun.(*ast.Ident); ok {
		if obj := st.pass.TypesInfo.Uses[id]; obj != nil && st.tainted[obj] {
			return id.Name, true
		}
	}
	return "", false
}

// taintedArg returns the first argument that carries a tainted function
// value, bare or captured inside a function literal.
func (st *lockState) taintedArg(call *ast.CallExpr) (string, bool) {
	for _, arg := range call.Args {
		if st.taintedExpr(arg) {
			return types.ExprString(ast.Unparen(arg)), true
		}
	}
	return "", false
}

// taintedExpr reports whether e evaluates to (or captures) a tainted
// function value.
func (st *lockState) taintedExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := st.pass.TypesInfo.Uses[x]
		return obj != nil && st.tainted[obj]
	case *ast.FuncLit:
		found := false
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := st.pass.TypesInfo.Uses[id]; obj != nil && st.tainted[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	return false
}

// moduleLocalCallee reports whether the call's target is engine code (the
// current package or another package of this module) — the only callees whose
// traversal semantics the analyzer assumes. Forwarding a callback into the
// standard library (sort.Slice and friends) is synchronous, lock-free, and
// not flagged.
func moduleLocalCallee(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if fn.Pkg() == pass.Pkg {
		return true
	}
	return path == "asterixdb" || strings.HasPrefix(path, "asterixdb/")
}
