package fuzzy

import (
	"testing"
	"testing/quick"

	"asterixdb/internal/adm"
)

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"tonight", "tonite", 3},
		{"same", "same", 0},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := EditDistance(c.a, c.b); got != c.want {
			t.Errorf("EditDistance(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEditDistanceProperties(t *testing.T) {
	symmetric := func(a, b string) bool {
		return EditDistance(a, b) == EditDistance(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	identity := func(a string) bool { return EditDistance(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Error(err)
	}
	triangle := func(a, b, c string) bool {
		if len(a) > 30 || len(b) > 30 || len(c) > 30 {
			return true
		}
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEditDistanceCheck(t *testing.T) {
	ok, d := EditDistanceCheck("tonight", "tonite", 3)
	if !ok || d != 3 {
		t.Errorf("EditDistanceCheck = %v, %d", ok, d)
	}
	if ok, _ := EditDistanceCheck("completely", "different!", 3); ok {
		t.Error("distant strings should fail the check")
	}
	if ok, _ := EditDistanceCheck("abcdefgh", "abc", 2); ok {
		t.Error("length difference beyond threshold should fail fast")
	}
	if ok, _ := EditDistanceCheck("a", "b", -1); ok {
		t.Error("negative threshold should fail")
	}
	// Consistency with the full computation.
	f := func(a, b string) bool {
		if len(a) > 20 || len(b) > 20 {
			return true
		}
		d := EditDistance(a, b)
		ok, got := EditDistanceCheck(a, b, d)
		return ok && got == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEditDistanceContains(t *testing.T) {
	msg := "going out tonite with friends"
	if !EditDistanceContains(msg, "tonight", 3) {
		t.Error("should find fuzzy word match")
	}
	if EditDistanceContains(msg, "zzzzzzzz", 1) {
		t.Error("should not match unrelated probe")
	}
}

func TestWordTokens(t *testing.T) {
	got := WordTokens("Hello, World! AsterixDB-2014 rocks")
	want := []string{"hello", "world", "asterixdb", "2014", "rocks"}
	if len(got) != len(want) {
		t.Fatalf("WordTokens = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(WordTokens("")) != 0 {
		t.Error("empty string should have no tokens")
	}
}

func TestNGramTokens(t *testing.T) {
	grams := NGramTokens("ab", 3)
	want := []string{"##a", "#ab", "ab#", "b##"}
	if len(grams) != len(want) {
		t.Fatalf("NGramTokens = %v", grams)
	}
	for i := range want {
		if grams[i] != want[i] {
			t.Errorf("gram %d = %q, want %q", i, grams[i], want[i])
		}
	}
	if NGramTokens("abc", 0) != nil {
		t.Error("k=0 should produce no grams")
	}
}

func TestJaccard(t *testing.T) {
	if sim := Jaccard([]string{"a", "b", "c"}, []string{"b", "c", "d"}); sim != 0.5 {
		t.Errorf("Jaccard = %v", sim)
	}
	if sim := Jaccard(nil, nil); sim != 1 {
		t.Errorf("Jaccard of empties = %v", sim)
	}
	if sim := Jaccard([]string{"a"}, nil); sim != 0 {
		t.Errorf("Jaccard with one empty = %v", sim)
	}
	if ok, sim := JaccardCheck([]string{"a", "b"}, []string{"a", "b"}, 0.9); !ok || sim != 1 {
		t.Errorf("JaccardCheck = %v, %v", ok, sim)
	}
	if ok, _ := JaccardCheck([]string{"a"}, []string{"b"}, 0.3); ok {
		t.Error("disjoint sets should fail a 0.3 threshold")
	}
}

func TestJaccardProperties(t *testing.T) {
	symmetric := func(a, b []string) bool {
		return Jaccard(a, b) == Jaccard(b, a)
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	bounded := func(a, b []string) bool {
		s := Jaccard(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Error(err)
	}
}

func TestSimilarityJaccardOverADM(t *testing.T) {
	a := &adm.UnorderedList{Items: []adm.Value{adm.String("x"), adm.String("y")}}
	b := &adm.OrderedList{Items: []adm.Value{adm.String("y"), adm.String("z")}}
	sim, err := SimilarityJaccard(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sim < 0.33 || sim > 0.34 {
		t.Errorf("SimilarityJaccard = %v", sim)
	}
	// Strings are tokenized into words.
	sim, err = SimilarityJaccard(adm.String("big data systems"), adm.String("data systems rock"))
	if err != nil {
		t.Fatal(err)
	}
	if sim != 0.5 {
		t.Errorf("string SimilarityJaccard = %v", sim)
	}
	if _, err := SimilarityJaccard(adm.Int32(1), a); err == nil {
		t.Error("non-collection argument should fail")
	}
}

func TestStringPredicates(t *testing.T) {
	if !Contains("asterixdb", "rix") || Contains("asterixdb", "xyz") {
		t.Error("Contains misreports")
	}
	if !Like("JohnDoe", "John%") || !Like("JohnDoe", "%Doe") || !Like("JohnDoe", "J_hnDoe") {
		t.Error("Like should match")
	}
	if Like("JohnDoe", "Jane%") || Like("abc", "a_") {
		t.Error("Like should not match")
	}
	if !Matches("hello world", "hello.*") || !Matches("cat", "c.t") {
		t.Error("Matches should match")
	}
	if Matches("cat", "d.g") {
		t.Error("Matches should not match")
	}
	if Replace("a-b-c", "-", "+") != "a+b+c" {
		t.Error("Replace failed")
	}
	if Replace("abc", "", "x") != "abc" {
		t.Error("Replace with empty old should be a no-op")
	}
}
