// Package fuzzy implements AsterixDB's similarity functions (Table 1 of the
// paper): edit distance over strings, Jaccard similarity over bags/lists,
// their *-check variants with early exit, word tokenization, and the n-gram
// tokenizer used by the ngram(k) inverted index.
package fuzzy

import (
	"strings"
	"unicode"

	"asterixdb/internal/adm"
)

// EditDistance returns the Levenshtein distance between two strings.
func EditDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = minInt(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
		}
		prev, curr = curr, prev
	}
	return prev[len(rb)]
}

// EditDistanceCheck reports whether the edit distance between a and b is at
// most threshold, and returns that distance when it is. It exits early (the
// edit-distance-check function from Table 1) by bailing out as soon as every
// entry of a row exceeds the threshold.
func EditDistanceCheck(a, b string, threshold int) (bool, int) {
	if threshold < 0 {
		return false, 0
	}
	ra, rb := []rune(a), []rune(b)
	if abs(len(ra)-len(rb)) > threshold {
		return false, 0
	}
	prev := make([]int, len(rb)+1)
	curr := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		curr[0] = i
		rowMin := curr[0]
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			curr[j] = minInt(prev[j]+1, curr[j-1]+1, prev[j-1]+cost)
			if curr[j] < rowMin {
				rowMin = curr[j]
			}
		}
		if rowMin > threshold {
			return false, 0
		}
		prev, curr = curr, prev
	}
	d := prev[len(rb)]
	return d <= threshold, d
}

// EditDistanceContains reports whether some word token of text is within the
// given edit distance of the probe (the edit-distance-contains function).
func EditDistanceContains(text, probe string, threshold int) bool {
	for _, w := range WordTokens(text) {
		if ok, _ := EditDistanceCheck(w, probe, threshold); ok {
			return true
		}
	}
	return false
}

// WordTokens splits a string into lower-cased word tokens, the tokenization
// used by AQL's word-tokens() and the inverted keyword index.
func WordTokens(s string) []string {
	var tokens []string
	var sb strings.Builder
	flush := func() {
		if sb.Len() > 0 {
			tokens = append(tokens, sb.String())
			sb.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			sb.WriteRune(unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// NGramTokens returns the k-grams of the lower-cased string, padding the ends
// with '#' markers as the AsterixDB ngram(k) tokenizer does.
func NGramTokens(s string, k int) []string {
	if k <= 0 {
		return nil
	}
	padded := strings.Repeat("#", k-1) + strings.ToLower(s) + strings.Repeat("#", k-1)
	runes := []rune(padded)
	if len(runes) < k {
		return nil
	}
	grams := make([]string, 0, len(runes)-k+1)
	for i := 0; i+k <= len(runes); i++ {
		grams = append(grams, string(runes[i:i+k]))
	}
	return grams
}

// Jaccard returns the Jaccard similarity (|A∩B| / |A∪B|) of two token
// multisets, treating them as sets.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	setA := make(map[string]struct{}, len(a))
	for _, t := range a {
		setA[t] = struct{}{}
	}
	setB := make(map[string]struct{}, len(b))
	for _, t := range b {
		setB[t] = struct{}{}
	}
	inter := 0
	for t := range setA {
		if _, ok := setB[t]; ok {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// JaccardCheck reports whether the Jaccard similarity of a and b is at least
// threshold, returning the similarity when it is.
func JaccardCheck(a, b []string, threshold float64) (bool, float64) {
	sim := Jaccard(a, b)
	return sim >= threshold, sim
}

// SimilarityJaccard computes Jaccard similarity over two ADM list values
// (ordered or unordered), comparing elements by their canonical string form.
func SimilarityJaccard(a, b adm.Value) (float64, error) {
	ta, err := listTokens(a)
	if err != nil {
		return 0, err
	}
	tb, err := listTokens(b)
	if err != nil {
		return 0, err
	}
	return Jaccard(ta, tb), nil
}

func listTokens(v adm.Value) ([]string, error) {
	var items []adm.Value
	switch l := v.(type) {
	case *adm.OrderedList:
		items = l.Items
	case *adm.UnorderedList:
		items = l.Items
	case adm.String:
		return WordTokens(string(l)), nil
	default:
		return nil, &TypeError{Got: v.Tag()}
	}
	out := make([]string, len(items))
	for i, it := range items {
		if s, ok := it.(adm.String); ok {
			out[i] = string(s)
		} else {
			out[i] = it.String()
		}
	}
	return out, nil
}

// TypeError reports a similarity function applied to a non-collection value.
type TypeError struct{ Got adm.TypeTag }

// Error implements error.
func (e *TypeError) Error() string {
	return "fuzzy: similarity-jaccard expects a list or string, got " + e.Got.String()
}

// Contains reports whether s contains substr (the AQL contains() function).
func Contains(s, substr string) bool { return strings.Contains(s, substr) }

// Like evaluates a SQL LIKE pattern with % and _ wildcards against s.
func Like(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Dynamic-programming LIKE matcher over runes.
	rs, rp := []rune(s), []rune(p)
	dp := make([][]bool, len(rs)+1)
	for i := range dp {
		dp[i] = make([]bool, len(rp)+1)
	}
	dp[0][0] = true
	for j := 1; j <= len(rp); j++ {
		if rp[j-1] == '%' {
			dp[0][j] = dp[0][j-1]
		}
	}
	for i := 1; i <= len(rs); i++ {
		for j := 1; j <= len(rp); j++ {
			switch rp[j-1] {
			case '%':
				dp[i][j] = dp[i][j-1] || dp[i-1][j]
			case '_':
				dp[i][j] = dp[i-1][j-1]
			default:
				dp[i][j] = dp[i-1][j-1] && rs[i-1] == rp[j-1]
			}
		}
	}
	return dp[len(rs)][len(rp)]
}

// Matches reports whether s matches the simplified regular expression pattern
// supported by AQL's matches() (we accept the LIKE dialect plus '.' as a
// single-character wildcard and '.*' as any run).
func Matches(s, pattern string) bool {
	pattern = strings.ReplaceAll(pattern, ".*", "%")
	pattern = strings.ReplaceAll(pattern, ".", "_")
	return likeMatch(s, pattern)
}

// Replace replaces every occurrence of old in s with new (AQL replace()).
func Replace(s, old, new string) string {
	if old == "" {
		return s
	}
	return strings.ReplaceAll(s, old, new)
}

func minInt(vals ...int) int {
	m := vals[0]
	for _, v := range vals[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
