// Package comparators implements scaled-down stand-ins for the three systems
// AsterixDB is compared against in Section 5.3 of the paper:
//
//   - RowStore  — System-X, a shared-nothing parallel RDBMS: nested records
//     are normalized into flat side tables, rows are stored positionally
//     (no field names, no per-value tags), B+-tree primary and secondary
//     indexes are available, and equijoins use a hash join or an index
//     nested-loop join picked by a tiny cost rule.
//   - DocStore  — MongoDB: nested documents stored self-describing (every
//     field name in every document), primary and secondary B+-tree indexes,
//     no join operator (callers perform client-side joins).
//   - ScanStore — Hive + ORC: column-grouped storage with dictionary
//     compression, no indexes, every query is a full scan that also pays a
//     fixed job start-up latency.
//
// These baselines reproduce the *behaviours* the paper attributes to each
// system (storage footprint ordering, index vs. scan gap, client-side join
// degradation, scan-only execution), not their absolute performance.
package comparators

import (
	"fmt"
	"sort"
	"time"

	"asterixdb/internal/adm"
	"asterixdb/internal/btree"
)

// ----------------------------------------------------------------------------
// RowStore (System-X stand-in)
// ----------------------------------------------------------------------------

// RowStore is the parallel-RDBMS stand-in.
type RowStore struct {
	// users and messages are the flat base tables keyed by primary key.
	users    *btree.Tree
	messages *btree.Tree
	// addresses and employment are the normalized side tables (nested fields
	// split out, as the paper did for System-X).
	addresses  *btree.Tree
	employment *btree.Tree
	// tsIndex is the secondary index on message timestamps.
	tsIndex *btree.Tree
	// authorIndex is the secondary index on message author-id.
	authorIndex *btree.Tree
	bytes       int64
}

// NewRowStore returns an empty row store.
func NewRowStore() *RowStore {
	return &RowStore{
		users: btree.New(), messages: btree.New(),
		addresses: btree.New(), employment: btree.New(),
		tsIndex: btree.New(), authorIndex: btree.New(),
	}
}

// rowEncode stores values positionally with a 1-byte tag each (no names).
func rowEncode(values ...adm.Value) []byte {
	var out []byte
	for _, v := range values {
		b, err := adm.EncodeValue(nil, v)
		if err != nil {
			continue
		}
		out = append(out, b...)
	}
	return out
}

// LoadUsers loads user records, normalizing address and employment.
func (s *RowStore) LoadUsers(users []*adm.Record) {
	for _, u := range users {
		pk := adm.EncodeKey(nil, u.Get("id"))
		base := rowEncode(u.Get("id"), u.Get("alias"), u.Get("name"), u.Get("user-since"))
		s.users.Put(pk, base)
		s.bytes += int64(len(base))
		if addr, ok := u.Get("address").(*adm.Record); ok {
			row := rowEncode(u.Get("id"), addr.Get("street"), addr.Get("city"), addr.Get("state"), addr.Get("zip"), addr.Get("country"))
			s.addresses.Put(pk, row)
			s.bytes += int64(len(row))
		}
		if emp, ok := u.Get("employment").(*adm.OrderedList); ok {
			for i, e := range emp.Items {
				er := e.(*adm.Record)
				key := append(append([]byte(nil), pk...), byte(i))
				row := rowEncode(u.Get("id"), er.Get("organization-name"), er.Get("start-date"), er.Get("end-date"))
				s.employment.Put(key, row)
				s.bytes += int64(len(row))
			}
		}
	}
}

// LoadMessages loads message records (tags are flattened into a joined string
// column, matching how a flat schema would store them).
func (s *RowStore) LoadMessages(messages []*adm.Record) {
	for _, m := range messages {
		pk := adm.EncodeKey(nil, m.Get("message-id"))
		row := rowEncode(m.Get("message-id"), m.Get("author-id"), m.Get("timestamp"),
			m.Get("in-response-to"), m.Get("sender-location"), m.Get("message"))
		s.messages.Put(pk, row)
		s.bytes += int64(len(row))
	}
}

// BuildIndexes creates the secondary indexes used by the "with IX" rows of
// Table 3. It must be called after loading.
func (s *RowStore) BuildIndexes(messages []*adm.Record) {
	for _, m := range messages {
		pk := adm.EncodeKey(nil, m.Get("message-id"))
		tsKey := append(adm.EncodeKey(nil, m.Get("timestamp")), pk...)
		s.tsIndex.Put(tsKey, pk)
		auKey := append(adm.EncodeKey(nil, m.Get("author-id")), pk...)
		s.authorIndex.Put(auKey, pk)
	}
}

// SizeBytes returns the stored size of all tables (Table 2).
func (s *RowStore) SizeBytes() int64 { return s.bytes }

// RecordLookup fetches a user row plus its normalized side rows (the extra
// joins the paper notes System-X needs for the record lookup query).
func (s *RowStore) RecordLookup(id adm.Value) (found bool) {
	pk := adm.EncodeKey(nil, id)
	_, ok := s.users.Get(pk)
	if !ok {
		return false
	}
	s.addresses.Get(pk)
	s.employment.Range(pk, append(append([]byte(nil), pk...), 0xFF), func(btree.Entry) bool { return true })
	return true
}

// RangeScanMessages counts messages in a timestamp range, optionally using
// the secondary index.
func (s *RowStore) RangeScanMessages(lo, hi adm.Datetime, useIndex bool) int {
	count := 0
	if useIndex {
		loK := adm.EncodeKey(nil, lo)
		hiK := append(adm.EncodeKey(nil, hi), 0xFF)
		s.tsIndex.Range(loK, hiK, func(e btree.Entry) bool {
			if _, ok := s.messages.Get(e.Value); ok {
				count++
			}
			return true
		})
		return count
	}
	s.messages.Scan(func(e btree.Entry) bool {
		if tsInRange(e.Value, lo, hi) {
			count++
		}
		return true
	})
	return count
}

// tsInRange decodes the positional message row far enough to test the
// timestamp column.
func tsInRange(row []byte, lo, hi adm.Datetime) bool {
	// Row layout: message-id, author-id, timestamp, ...
	pos := 0
	var ts adm.Datetime
	for i := 0; i < 3; i++ {
		v, n, err := adm.DecodeValue(row[pos:])
		if err != nil {
			return false
		}
		pos += n
		if i == 2 {
			t, ok := v.(adm.Datetime)
			if !ok {
				return false
			}
			ts = t
		}
	}
	return ts >= lo && ts <= hi
}

// SelectJoin runs the Table 3 select-join: messages in a timestamp range
// joined to their authors. The cost rule mirrors System-X's optimizer: with
// an index and a selective predicate it picks an index nested-loop join,
// otherwise a hash join over full scans.
func (s *RowStore) SelectJoin(lo, hi adm.Datetime, useIndex bool) int {
	matches := 0
	probe := func(row []byte) {
		// author-id is the second column.
		v, n, err := adm.DecodeValue(row)
		if err != nil {
			return
		}
		_ = v
		author, _, err := adm.DecodeValue(row[n:])
		if err != nil {
			return
		}
		if _, ok := s.users.Get(adm.EncodeKey(nil, author)); ok {
			matches++
		}
	}
	if useIndex {
		loK := adm.EncodeKey(nil, lo)
		hiK := append(adm.EncodeKey(nil, hi), 0xFF)
		s.tsIndex.Range(loK, hiK, func(e btree.Entry) bool {
			if row, ok := s.messages.Get(e.Value); ok {
				probe(row)
			}
			return true
		})
		return matches
	}
	// Hash join: build on users, probe with a full message scan.
	build := map[string]bool{}
	s.users.Scan(func(e btree.Entry) bool {
		build[string(e.Key)] = true
		return true
	})
	s.messages.Scan(func(e btree.Entry) bool {
		if !tsInRange(e.Value, lo, hi) {
			return true
		}
		_, n, err := adm.DecodeValue(e.Value)
		if err != nil {
			return true
		}
		author, _, err := adm.DecodeValue(e.Value[n:])
		if err != nil {
			return true
		}
		if build[string(adm.EncodeKey(nil, author))] {
			matches++
		}
		return true
	})
	return matches
}

// Aggregate computes the average message length over a timestamp range.
func (s *RowStore) Aggregate(lo, hi adm.Datetime, useIndex bool) float64 {
	sum, n := 0, 0
	consume := func(row []byte) {
		pos := 0
		var msg string
		for i := 0; i < 6; i++ {
			v, adv, err := adm.DecodeValue(row[pos:])
			if err != nil {
				return
			}
			pos += adv
			if i == 5 {
				if sv, ok := v.(adm.String); ok {
					msg = string(sv)
				}
			}
		}
		sum += len(msg)
		n++
	}
	if useIndex {
		loK := adm.EncodeKey(nil, lo)
		hiK := append(adm.EncodeKey(nil, hi), 0xFF)
		s.tsIndex.Range(loK, hiK, func(e btree.Entry) bool {
			if row, ok := s.messages.Get(e.Value); ok {
				consume(row)
			}
			return true
		})
	} else {
		s.messages.Scan(func(e btree.Entry) bool {
			if tsInRange(e.Value, lo, hi) {
				consume(e.Value)
			}
			return true
		})
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Insert adds one message row (and maintains the secondary indexes), syncing
// per batch like the journaled configurations of Table 4.
func (s *RowStore) Insert(m *adm.Record) {
	pk := adm.EncodeKey(nil, m.Get("message-id"))
	row := rowEncode(m.Get("message-id"), m.Get("author-id"), m.Get("timestamp"),
		m.Get("in-response-to"), m.Get("sender-location"), m.Get("message"))
	s.messages.Put(pk, row)
	s.tsIndex.Put(append(adm.EncodeKey(nil, m.Get("timestamp")), pk...), pk)
	s.authorIndex.Put(append(adm.EncodeKey(nil, m.Get("author-id")), pk...), pk)
	s.bytes += int64(len(row))
}

// ----------------------------------------------------------------------------
// DocStore (MongoDB stand-in)
// ----------------------------------------------------------------------------

// DocStore is the document-store stand-in: nested, self-describing documents.
type DocStore struct {
	users    *btree.Tree
	messages *btree.Tree
	tsIndex  *btree.Tree
	bytes    int64
}

// NewDocStore returns an empty document store.
func NewDocStore() *DocStore {
	return &DocStore{users: btree.New(), messages: btree.New(), tsIndex: btree.New()}
}

// LoadUsers stores user documents with nesting intact.
func (s *DocStore) LoadUsers(users []*adm.Record) {
	for _, u := range users {
		pk := adm.EncodeKey(nil, u.Get("id"))
		doc, _ := adm.EncodeValue(nil, u)
		s.users.Put(pk, doc)
		s.bytes += int64(len(doc))
	}
}

// LoadMessages stores message documents.
func (s *DocStore) LoadMessages(messages []*adm.Record) {
	for _, m := range messages {
		pk := adm.EncodeKey(nil, m.Get("message-id"))
		doc, _ := adm.EncodeValue(nil, m)
		s.messages.Put(pk, doc)
		s.bytes += int64(len(doc))
	}
}

// BuildIndexes creates the timestamp secondary index.
func (s *DocStore) BuildIndexes(messages []*adm.Record) {
	for _, m := range messages {
		pk := adm.EncodeKey(nil, m.Get("message-id"))
		s.tsIndex.Put(append(adm.EncodeKey(nil, m.Get("timestamp")), pk...), pk)
	}
}

// SizeBytes returns the stored collection size (Table 2).
func (s *DocStore) SizeBytes() int64 { return s.bytes }

// RecordLookup fetches one document by primary key; nesting means no joins.
func (s *DocStore) RecordLookup(id adm.Value) bool {
	_, ok := s.users.Get(adm.EncodeKey(nil, id))
	return ok
}

// RangeScanMessages counts messages in a timestamp range.
func (s *DocStore) RangeScanMessages(lo, hi adm.Datetime, useIndex bool) int {
	count := 0
	if useIndex {
		loK := adm.EncodeKey(nil, lo)
		hiK := append(adm.EncodeKey(nil, hi), 0xFF)
		s.tsIndex.Range(loK, hiK, func(e btree.Entry) bool {
			count++
			return true
		})
		return count
	}
	s.messages.Scan(func(e btree.Entry) bool {
		if docTimestampInRange(e.Value, lo, hi) {
			count++
		}
		return true
	})
	return count
}

func decodeDoc(raw []byte) *adm.Record {
	v, _, err := adm.DecodeValue(raw)
	if err != nil {
		return nil
	}
	rec, _ := v.(*adm.Record)
	return rec
}

func docTimestampInRange(raw []byte, lo, hi adm.Datetime) bool {
	rec := decodeDoc(raw)
	if rec == nil {
		return false
	}
	ts, ok := rec.Get("timestamp").(adm.Datetime)
	return ok && ts >= lo && ts <= hi
}

// ClientSideJoin reproduces the paper's MongoDB join: the "client" first
// finds the matching message documents, collects the author ids, and then
// performs a bulk lookup against the users collection. The per-document
// decode overhead on the client is what makes it degrade at large
// selectivities.
func (s *DocStore) ClientSideJoin(lo, hi adm.Datetime, useIndex bool) int {
	// Step 1: select matching messages (server side).
	var authorIDs []adm.Value
	collect := func(raw []byte) {
		rec := decodeDoc(raw)
		if rec == nil {
			return
		}
		authorIDs = append(authorIDs, rec.Get("author-id"))
	}
	if useIndex {
		loK := adm.EncodeKey(nil, lo)
		hiK := append(adm.EncodeKey(nil, hi), 0xFF)
		s.tsIndex.Range(loK, hiK, func(e btree.Entry) bool {
			if raw, ok := s.messages.Get(e.Value); ok {
				collect(raw)
			}
			return true
		})
	} else {
		s.messages.Scan(func(e btree.Entry) bool {
			if docTimestampInRange(e.Value, lo, hi) {
				collect(e.Value)
			}
			return true
		})
	}
	// Step 2: client-side bulk lookup of the other collection, decoding every
	// fetched document (the client cannot avoid materializing them).
	matches := 0
	for _, id := range authorIDs {
		if raw, ok := s.users.Get(adm.EncodeKey(nil, id)); ok {
			if decodeDoc(raw) != nil {
				matches++
			}
		}
	}
	return matches
}

// AggregateMapReduce computes the average message length with a simulated
// map-reduce pass (the paper notes MongoDB needed its map-reduce operation
// for this query): every candidate document is decoded and mapped.
func (s *DocStore) AggregateMapReduce(lo, hi adm.Datetime, useIndex bool) float64 {
	sum, n := 0, 0
	mapper := func(raw []byte) {
		rec := decodeDoc(raw)
		if rec == nil {
			return
		}
		if msg, ok := rec.Get("message").(adm.String); ok {
			sum += len(msg)
			n++
		}
	}
	if useIndex {
		loK := adm.EncodeKey(nil, lo)
		hiK := append(adm.EncodeKey(nil, hi), 0xFF)
		s.tsIndex.Range(loK, hiK, func(e btree.Entry) bool {
			if raw, ok := s.messages.Get(e.Value); ok {
				mapper(raw)
			}
			return true
		})
	} else {
		s.messages.Scan(func(e btree.Entry) bool {
			if docTimestampInRange(e.Value, lo, hi) {
				mapper(e.Value)
			}
			return true
		})
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Insert adds one message document (journaled write concern).
func (s *DocStore) Insert(m *adm.Record) {
	pk := adm.EncodeKey(nil, m.Get("message-id"))
	doc, _ := adm.EncodeValue(nil, m)
	s.messages.Put(pk, doc)
	s.tsIndex.Put(append(adm.EncodeKey(nil, m.Get("timestamp")), pk...), pk)
	s.bytes += int64(len(doc))
}

// ----------------------------------------------------------------------------
// ScanStore (Hive + ORC stand-in)
// ----------------------------------------------------------------------------

// ScanStore stores messages column-grouped with dictionary compression and
// supports only full scans with a per-query start-up latency.
type ScanStore struct {
	// Column vectors.
	ids        []int32
	authors    []int32
	timestamps []int64
	// messageDict dictionary-encodes message texts (ORC-style compression).
	messageDict  []string
	dictIDs      map[string]int32
	messageCodes []int32
	// StartupLatency models Hadoop job submission overhead per query.
	StartupLatency time.Duration
}

// NewScanStore returns an empty scan store with a 2ms simulated job start-up.
func NewScanStore() *ScanStore {
	return &ScanStore{dictIDs: map[string]int32{}, StartupLatency: 2 * time.Millisecond}
}

// LoadMessages loads the message dataset into columnar form.
func (s *ScanStore) LoadMessages(messages []*adm.Record) {
	for _, m := range messages {
		id, _ := adm.NumericAsInt64(m.Get("message-id"))
		author, _ := adm.NumericAsInt64(m.Get("author-id"))
		ts, _ := m.Get("timestamp").(adm.Datetime)
		msg, _ := m.Get("message").(adm.String)
		s.ids = append(s.ids, int32(id))
		s.authors = append(s.authors, int32(author))
		s.timestamps = append(s.timestamps, int64(ts))
		code, ok := s.dictIDs[string(msg)]
		if !ok {
			code = int32(len(s.messageDict))
			s.dictIDs[string(msg)] = code
			s.messageDict = append(s.messageDict, string(msg))
		}
		s.messageCodes = append(s.messageCodes, code)
	}
}

// SizeBytes returns the compressed columnar footprint (Table 2's smallest).
func (s *ScanStore) SizeBytes() int64 {
	size := int64(len(s.ids)*4 + len(s.authors)*4 + len(s.timestamps)*8 + len(s.messageCodes)*4)
	for _, m := range s.messageDict {
		size += int64(len(m))
	}
	return size
}

// startJob simulates Hadoop job submission latency.
func (s *ScanStore) startJob() {
	if s.StartupLatency > 0 {
		time.Sleep(s.StartupLatency)
	}
}

// RecordLookup scans all rows for the id (Hive has no indexes).
func (s *ScanStore) RecordLookup(id int32) bool {
	s.startJob()
	for _, v := range s.ids {
		if v == id {
			return true
		}
	}
	return false
}

// RangeScanMessages counts rows in the timestamp range with a full scan.
func (s *ScanStore) RangeScanMessages(lo, hi adm.Datetime) int {
	s.startJob()
	count := 0
	for _, ts := range s.timestamps {
		if ts >= int64(lo) && ts <= int64(hi) {
			count++
		}
	}
	return count
}

// SelectJoin joins messages in the range to a sorted author list (Hive's
// common-join as a sort-merge over the scan output).
func (s *ScanStore) SelectJoin(lo, hi adm.Datetime, userIDs []int32) int {
	s.startJob()
	sorted := append([]int32(nil), userIDs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	matches := 0
	for i, ts := range s.timestamps {
		if ts < int64(lo) || ts > int64(hi) {
			continue
		}
		author := s.authors[i]
		idx := sort.Search(len(sorted), func(j int) bool { return sorted[j] >= author })
		if idx < len(sorted) && sorted[idx] == author {
			matches++
		}
	}
	return matches
}

// Aggregate computes the average message length over the range with a scan;
// the columnar layout means only the needed columns are touched.
func (s *ScanStore) Aggregate(lo, hi adm.Datetime) float64 {
	s.startJob()
	sum, n := 0, 0
	for i, ts := range s.timestamps {
		if ts >= int64(lo) && ts <= int64(hi) {
			sum += len(s.messageDict[s.messageCodes[i]])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// String implements fmt.Stringer for diagnostics.
func (s *ScanStore) String() string {
	return fmt.Sprintf("scanstore{rows: %d, dict: %d}", len(s.ids), len(s.messageDict))
}
