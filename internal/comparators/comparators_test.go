package comparators

import (
	"testing"

	"asterixdb/internal/adm"
	"asterixdb/internal/workload"
)

func testData(t *testing.T) (*workload.Generator, []*adm.Record, []*adm.Record) {
	t.Helper()
	gen := workload.New(workload.Config{Users: 100, Messages: 500, Seed: 3})
	return gen, gen.Users(), gen.Messages()
}

func TestRowStoreOperations(t *testing.T) {
	gen, users, messages := testData(t)
	rs := NewRowStore()
	rs.LoadUsers(users)
	rs.LoadMessages(messages)
	rs.BuildIndexes(messages)
	if rs.SizeBytes() == 0 {
		t.Fatal("size should be non-zero")
	}
	if !rs.RecordLookup(adm.Int32(1)) || rs.RecordLookup(adm.Int32(9999)) {
		t.Error("RecordLookup misreports")
	}
	p := gen.Params()
	scan := rs.RangeScanMessages(p.SmallLo, p.SmallHi, false)
	indexed := rs.RangeScanMessages(p.SmallLo, p.SmallHi, true)
	if scan == 0 || scan != indexed {
		t.Errorf("range scan: scan=%d indexed=%d", scan, indexed)
	}
	if j1, j2 := rs.SelectJoin(p.SmallLo, p.SmallHi, false), rs.SelectJoin(p.SmallLo, p.SmallHi, true); j1 != j2 || j1 == 0 {
		t.Errorf("join: %d vs %d", j1, j2)
	}
	if a1, a2 := rs.Aggregate(p.LargeLo, p.LargeHi, false), rs.Aggregate(p.LargeLo, p.LargeHi, true); a1 != a2 || a1 == 0 {
		t.Errorf("aggregate: %v vs %v", a1, a2)
	}
	before := rs.SizeBytes()
	rs.Insert(gen.Message(1).Set("message-id", adm.Int32(100000)))
	if rs.SizeBytes() <= before {
		t.Error("insert did not grow the store")
	}
}

func TestDocStoreOperations(t *testing.T) {
	gen, users, messages := testData(t)
	ds := NewDocStore()
	ds.LoadUsers(users)
	ds.LoadMessages(messages)
	ds.BuildIndexes(messages)
	if !ds.RecordLookup(adm.Int32(1)) {
		t.Error("RecordLookup failed")
	}
	p := gen.Params()
	if n1, n2 := ds.RangeScanMessages(p.SmallLo, p.SmallHi, false), ds.RangeScanMessages(p.SmallLo, p.SmallHi, true); n1 != n2 || n1 == 0 {
		t.Errorf("range scan: %d vs %d", n1, n2)
	}
	if j1, j2 := ds.ClientSideJoin(p.LargeLo, p.LargeHi, false), ds.ClientSideJoin(p.LargeLo, p.LargeHi, true); j1 != j2 || j1 == 0 {
		t.Errorf("client-side join: %d vs %d", j1, j2)
	}
	if a := ds.AggregateMapReduce(p.LargeLo, p.LargeHi, true); a == 0 {
		t.Error("map-reduce aggregate returned zero")
	}
	ds.Insert(gen.Message(1).Set("message-id", adm.Int32(100000)))
}

func TestScanStoreOperations(t *testing.T) {
	gen, _, messages := testData(t)
	ss := NewScanStore()
	ss.StartupLatency = 0 // keep the test fast
	ss.LoadMessages(messages)
	if ss.SizeBytes() == 0 {
		t.Fatal("size should be non-zero")
	}
	if !ss.RecordLookup(1) || ss.RecordLookup(999999) {
		t.Error("RecordLookup misreports")
	}
	p := gen.Params()
	if n := ss.RangeScanMessages(p.SmallLo, p.SmallHi); n == 0 {
		t.Error("range scan returned zero")
	}
	userIDs := make([]int32, 100)
	for i := range userIDs {
		userIDs[i] = int32(i + 1)
	}
	if j := ss.SelectJoin(p.LargeLo, p.LargeHi, userIDs); j == 0 {
		t.Error("join returned zero")
	}
	if a := ss.Aggregate(p.LargeLo, p.LargeHi); a == 0 {
		t.Error("aggregate returned zero")
	}
	if ss.String() == "" {
		t.Error("String should describe the store")
	}
}

// TestTable2SizeOrdering asserts the storage-footprint shape of Table 2:
// scan-store (Hive/ORC) is the smallest, the row store (System-X, normalized
// and positional) is smaller than the self-describing document store (Mongo).
func TestTable2SizeOrdering(t *testing.T) {
	_, users, messages := testData(t)
	rs := NewRowStore()
	rs.LoadUsers(users)
	rs.LoadMessages(messages)
	ds := NewDocStore()
	ds.LoadUsers(users)
	ds.LoadMessages(messages)
	ss := NewScanStore()
	ss.LoadMessages(messages)
	if !(ss.SizeBytes() < rs.SizeBytes() && rs.SizeBytes() < ds.SizeBytes()) {
		t.Errorf("size ordering violated: hive=%d systemx=%d mongo=%d",
			ss.SizeBytes(), rs.SizeBytes(), ds.SizeBytes())
	}
}
