package server

import (
	"log"
	"sort"
	"strconv"
	"strings"
	"time"

	"asterixdb/internal/hyracks"
	"asterixdb/internal/metrics"
)

// MetricsRegistrar is optionally implemented by engines that expose their
// own gauges (the local instance's LSM/spill state, the controller's
// roster); New merges them into the server's /metrics registry.
type MetricsRegistrar interface {
	RegisterMetrics(r *metrics.Registry)
}

// serverMetrics is the HTTP layer's own instrumentation: query counts and
// latencies by delivery mode, in-flight queries, and result-handle state.
type serverMetrics struct {
	reg      *metrics.Registry
	active   *metrics.Gauge
	duration *metrics.Histogram
	queries  map[string]*metrics.Counter // "mode|status"
}

const (
	outcomeSuccess  = "success"
	outcomeError    = "error"
	outcomeCanceled = "canceled"
)

func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{reg: reg, queries: map[string]*metrics.Counter{}}
	for _, mode := range []string{"synchronous", "asynchronous", "deferred"} {
		for _, st := range []string{outcomeSuccess, outcomeError, outcomeCanceled} {
			m.queries[mode+"|"+st] = reg.Counter("asterix_queries_total",
				"Completed /query requests by delivery mode and outcome.",
				metrics.L("mode", mode), metrics.L("status", st))
		}
	}
	m.duration = reg.Histogram("asterix_query_duration_seconds",
		"Query latency from request to last result row.", metrics.DurationBuckets)
	m.active = reg.Gauge("asterix_queries_active",
		"Queries currently executing (all delivery modes).")
	reg.GaugeFunc("asterix_result_handles",
		"Async/deferred result handles currently in the table.",
		func() float64 { return float64(s.handles.size()) })
	reg.CounterFunc("asterix_result_handles_expired_total",
		"Result handles evicted by TTL expiry before delivery.",
		func() float64 { return float64(s.handles.expirations()) })
	return m
}

// record counts one finished query. A request ended by its own context
// (client went away, deadline) is canceled, not an engine error.
func (m *serverMetrics) record(mode string, dur time.Duration, err error) {
	st := outcomeSuccess
	switch {
	case err == nil:
	case isContextEnd(err):
		st = outcomeCanceled
	default:
		st = outcomeError
	}
	m.queries[mode+"|"+st].Inc()
	m.duration.Observe(dur.Seconds())
}

// finishQuery records a query's metrics and, past the slow-query
// threshold, logs it with a profile summary.
func (s *Server) finishQuery(mode, src string, start time.Time, prof *hyracks.JobProfile, err error) {
	dur := time.Since(start)
	s.metrics.record(mode, dur, err)
	if s.opts.SlowQueryThreshold > 0 && dur >= s.opts.SlowQueryThreshold {
		lg := s.opts.Logger
		if lg == nil {
			lg = log.Default()
		}
		lg.Printf("slow query (%s, %v): %s%s", mode, dur.Round(time.Millisecond),
			truncateStatement(src), profileSummary(prof))
	}
}

// truncateStatement collapses a statement onto one log line.
func truncateStatement(src string) string {
	src = strings.Join(strings.Fields(src), " ")
	const max = 300
	if len(src) > max {
		src = src[:max] + "..."
	}
	return src
}

// profileSummary renders the top operators by wall time for the slow-query
// log: " | top ops: sort wall=92ms out=10000; ...". Rows are aggregated by
// operator name (max wall across partitions, summed output).
func profileSummary(prof *hyracks.JobProfile) string {
	if prof == nil || len(prof.Operators) == 0 {
		return ""
	}
	type agg struct {
		name string
		wall int64
		out  int64
	}
	byName := map[string]*agg{}
	var order []*agg
	for _, r := range prof.Operators {
		a := byName[r.Name]
		if a == nil {
			a = &agg{name: r.Name}
			byName[r.Name] = a
			order = append(order, a)
		}
		if r.WallNanos > a.wall {
			a.wall = r.WallNanos
		}
		a.out += r.TuplesOut
	}
	sort.Slice(order, func(i, j int) bool { return order[i].wall > order[j].wall })
	if len(order) > 3 {
		order = order[:3]
	}
	var b strings.Builder
	b.WriteString(" | top ops:")
	for i, a := range order {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(" ")
		b.WriteString(a.name)
		b.WriteString(" wall=")
		b.WriteString(time.Duration(a.wall).Round(time.Millisecond).String())
		b.WriteString(" out=")
		b.WriteString(formatInt(a.out))
	}
	if prof.JobSpill != nil && prof.JobSpill.BytesSpilled > 0 {
		b.WriteString(" | spilled ")
		b.WriteString(formatInt(prof.JobSpill.BytesSpilled))
		b.WriteString(" bytes in ")
		b.WriteString(formatInt(int64(prof.JobSpill.RunsCreated)))
		b.WriteString(" runs")
	}
	return b.String()
}

func formatInt(n int64) string {
	return strconv.FormatInt(n, 10)
}
