package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"asterixdb/internal/adm"
)

// Result-handle states for asynchronous and deferred queries.
const (
	statusRunning = "running"
	statusSuccess = "success"
	statusFailed  = "failed"
)

// handle is one asynchronous or deferred query's server-side state: its
// lifecycle status and, once finished, either the materialized result values
// or the error.
type handle struct {
	id      string
	mode    string
	created time.Time

	mu     sync.Mutex
	status string
	values []adm.Value
	err    error
}

func (h *handle) finish(values []adm.Value, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		h.status, h.err = statusFailed, err
		return
	}
	h.status, h.values = statusSuccess, values
}

// snapshot returns the handle's current status, values and error.
func (h *handle) snapshot() (string, []adm.Value, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.status, h.values, h.err
}

// handleTable stores result handles and evicts them when their TTL expires
// (measured from creation, refreshed on every access, so a client that keeps
// polling does not lose its handle). Fetching a result also evicts: results
// are delivered exactly once, as in the paper's deferred mode.
type handleTable struct {
	ttl time.Duration
	now func() time.Time

	mu      sync.Mutex
	entries map[string]*handle
	touched map[string]time.Time

	stop    chan struct{}
	stopped sync.Once
}

func newHandleTable(ttl time.Duration, now func() time.Time) *handleTable {
	if now == nil {
		now = time.Now
	}
	t := &handleTable{
		ttl:     ttl,
		now:     now,
		entries: map[string]*handle{},
		touched: map[string]time.Time{},
		stop:    make(chan struct{}),
	}
	go t.janitor()
	return t
}

// create registers a new handle in the running state.
func (t *handleTable) create(mode string) *handle {
	h := &handle{id: newHandleID(), mode: mode, created: t.now(), status: statusRunning}
	t.mu.Lock()
	t.entries[h.id] = h
	t.touched[h.id] = h.created
	t.mu.Unlock()
	return h
}

// get returns the handle and refreshes its TTL; expired handles are gone.
func (t *handleTable) get(id string) (*handle, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok := t.entries[id]
	if !ok {
		return nil, false
	}
	if t.now().Sub(t.touched[id]) > t.ttl {
		delete(t.entries, id)
		delete(t.touched, id)
		return nil, false
	}
	t.touched[id] = t.now()
	return h, true
}

// take atomically claims a finished handle for result delivery: when the
// handle exists and has finished, it is removed from the table and returned
// with taken=true, so of two concurrent fetches exactly one delivers. A
// still-running handle is returned un-evicted with taken=false; a missing or
// expired handle reports ok=false.
func (t *handleTable) take(id string) (h *handle, ok, taken bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	h, ok = t.entries[id]
	if !ok {
		return nil, false, false
	}
	if t.now().Sub(t.touched[id]) > t.ttl {
		delete(t.entries, id)
		delete(t.touched, id)
		return nil, false, false
	}
	h.mu.Lock()
	finished := h.status != statusRunning
	h.mu.Unlock()
	if !finished {
		t.touched[id] = t.now()
		return h, true, false
	}
	delete(t.entries, id)
	delete(t.touched, id)
	return h, true, true
}

// evict removes a handle (result delivered, or delivery failed for good).
func (t *handleTable) evict(id string) {
	t.mu.Lock()
	delete(t.entries, id)
	delete(t.touched, id)
	t.mu.Unlock()
}

// sweep drops every expired handle; the janitor calls it periodically so
// abandoned handles do not pin their results forever.
func (t *handleTable) sweep() {
	now := t.now()
	t.mu.Lock()
	for id, at := range t.touched {
		if now.Sub(at) > t.ttl {
			delete(t.entries, id)
			delete(t.touched, id)
		}
	}
	t.mu.Unlock()
}

func (t *handleTable) janitor() {
	interval := t.ttl / 2
	if interval < time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.sweep()
		case <-t.stop:
			return
		}
	}
}

func (t *handleTable) close() {
	t.stopped.Do(func() { close(t.stop) })
}

func newHandleID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero handle is
		// still functional (just predictable) if it somehow does.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}
