package server

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"asterixdb/internal/runfile"
)

// Result-handle states for asynchronous and deferred queries.
const (
	statusRunning = "running"
	statusSuccess = "success"
	statusFailed  = "failed"
)

// handle is one asynchronous or deferred query's server-side state: its
// lifecycle status and, once finished, either a spill-file run holding the
// serialized result or the error. Results are never materialized in memory —
// the executing query streams into the run file and /query/result streams it
// back out — so a handle's resident cost is independent of its result size.
type handle struct {
	id      string
	mode    string
	created time.Time

	mu        sync.Mutex
	status    string
	run       *runfile.Run
	count     int
	profile   []byte // pre-marshalled NDJSON profile trailer, or nil
	err       error
	discarded bool
}

// finish records the query's outcome. If the handle was discarded while the
// query was still running (TTL expiry, table shutdown), the arriving run is
// released immediately — nobody can fetch it anymore.
func (h *handle) finish(run *runfile.Run, count int, profile []byte, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		h.status, h.err = statusFailed, err
		return
	}
	h.status, h.run, h.count, h.profile = statusSuccess, run, count, profile
	if h.discarded && h.run != nil {
		h.run.Release()
		h.run = nil
	}
}

// snapshot returns the handle's current status, result run, tuple count and
// error.
func (h *handle) snapshot() (string, *runfile.Run, int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.status, h.run, h.count, h.err
}

// trailer returns the handle's profile trailer line, if the query was run
// with profiling.
func (h *handle) trailer() []byte {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.profile
}

// discard releases the handle's result run (if any) and marks the handle so
// a result that finishes later is released on arrival.
func (h *handle) discard() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.discarded = true
	if h.run != nil {
		h.run.Release()
		h.run = nil
	}
}

// handleTable stores result handles and evicts them when their TTL expires
// (measured from creation, refreshed on every access, so a client that keeps
// polling does not lose its handle). Fetching a result also evicts: results
// are delivered exactly once, as in the paper's deferred mode. Every eviction
// path discards the handle, releasing its result spill file.
type handleTable struct {
	ttl time.Duration
	now func() time.Time

	mu      sync.Mutex
	entries map[string]*handle
	touched map[string]time.Time

	// expired counts handles evicted by TTL before delivery (metrics).
	expired atomic.Int64

	stop    chan struct{}
	stopped sync.Once
}

// size reports the number of live handles in the table.
func (t *handleTable) size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// expirations reports how many handles have been TTL-evicted undelivered.
func (t *handleTable) expirations() int64 { return t.expired.Load() }

func newHandleTable(ttl time.Duration, now func() time.Time) *handleTable {
	if now == nil {
		now = time.Now
	}
	t := &handleTable{
		ttl:     ttl,
		now:     now,
		entries: map[string]*handle{},
		touched: map[string]time.Time{},
		stop:    make(chan struct{}),
	}
	go t.janitor()
	return t
}

// create registers a new handle in the running state.
func (t *handleTable) create(mode string) *handle {
	h := &handle{id: newHandleID(), mode: mode, created: t.now(), status: statusRunning}
	t.mu.Lock()
	t.entries[h.id] = h
	t.touched[h.id] = h.created
	t.mu.Unlock()
	return h
}

// get returns the handle and refreshes its TTL; expired handles are gone.
func (t *handleTable) get(id string) (*handle, bool) {
	t.mu.Lock()
	h, ok := t.entries[id]
	if !ok {
		t.mu.Unlock()
		return nil, false
	}
	if t.now().Sub(t.touched[id]) > t.ttl {
		delete(t.entries, id)
		delete(t.touched, id)
		t.expired.Add(1)
		t.mu.Unlock()
		h.discard()
		return nil, false
	}
	t.touched[id] = t.now()
	t.mu.Unlock()
	return h, true
}

// take atomically claims a finished handle for result delivery: when the
// handle exists and has finished, it is removed from the table and returned
// with taken=true, so of two concurrent fetches exactly one delivers. A
// still-running handle is returned un-evicted with taken=false; a missing or
// expired handle reports ok=false. The caller that takes a handle owns its
// result run and must discard the handle after serving it.
func (t *handleTable) take(id string) (h *handle, ok, taken bool) {
	t.mu.Lock()
	h, ok = t.entries[id]
	if !ok {
		t.mu.Unlock()
		return nil, false, false
	}
	if t.now().Sub(t.touched[id]) > t.ttl {
		delete(t.entries, id)
		delete(t.touched, id)
		t.expired.Add(1)
		t.mu.Unlock()
		h.discard()
		return nil, false, false
	}
	h.mu.Lock()
	finished := h.status != statusRunning
	h.mu.Unlock()
	if !finished {
		t.touched[id] = t.now()
		t.mu.Unlock()
		return h, true, false
	}
	delete(t.entries, id)
	delete(t.touched, id)
	t.mu.Unlock()
	return h, true, true
}

// evict removes a handle (result delivered, or delivery failed for good) and
// releases its result run.
func (t *handleTable) evict(id string) {
	t.mu.Lock()
	h := t.entries[id]
	delete(t.entries, id)
	delete(t.touched, id)
	t.mu.Unlock()
	if h != nil {
		h.discard()
	}
}

// sweep drops every expired handle; the janitor calls it periodically so
// abandoned handles do not pin their result spill files forever.
func (t *handleTable) sweep() {
	now := t.now()
	var dead []*handle
	t.mu.Lock()
	for id, at := range t.touched {
		if now.Sub(at) > t.ttl {
			dead = append(dead, t.entries[id])
			delete(t.entries, id)
			delete(t.touched, id)
			t.expired.Add(1)
		}
	}
	t.mu.Unlock()
	for _, h := range dead {
		h.discard()
	}
}

func (t *handleTable) janitor() {
	interval := t.ttl / 2
	if interval < time.Second {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			t.sweep()
		case <-t.stop:
			return
		}
	}
}

// close stops the janitor and discards every remaining handle.
func (t *handleTable) close() {
	t.stopped.Do(func() { close(t.stop) })
	t.mu.Lock()
	remaining := make([]*handle, 0, len(t.entries))
	for _, h := range t.entries {
		remaining = append(remaining, h)
	}
	t.entries = map[string]*handle{}
	t.touched = map[string]time.Time{}
	t.mu.Unlock()
	for _, h := range remaining {
		h.discard()
	}
}

func newHandleID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero handle is
		// still functional (just predictable) if it somehow does.
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}
