package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"asterixdb"
)

func TestMetricsEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	loadItems(t, s, 10)
	if w := do(t, s, "POST", "/query", `for $i in dataset Items return $i.id;`); w.Code != http.StatusOK {
		t.Fatalf("query: %d %s", w.Code, w.Body)
	}
	w := do(t, s, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition format", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		`asterix_queries_total{mode="synchronous",status="success"} 1`,
		"asterix_query_duration_seconds_bucket",
		"asterix_query_duration_seconds_count 1",
		"asterix_queries_active 0",
		"asterix_result_handles 0",
		"asterix_result_handles_expired_total 0",
		// Engine gauges registered through MetricsRegistrar.
		"asterix_memory_budget_bytes",
		"asterix_spill_runs_total",
		`asterix_lsm_components{dataset="Items"}`,
		"# TYPE asterix_queries_total counter",
		"# HELP asterix_queries_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}

func TestMetricsCountsErrors(t *testing.T) {
	s, _ := newTestServer(t)
	if w := do(t, s, "POST", "/query", `for $x in dataset NoSuch return $x;`); w.Code != http.StatusNotFound {
		t.Fatalf("bad query: %d %s", w.Code, w.Body)
	}
	body := do(t, s, "GET", "/metrics", "").Body.String()
	if !strings.Contains(body, `asterix_queries_total{mode="synchronous",status="error"} 1`) {
		t.Errorf("/metrics did not count the failed query:\n%s", body)
	}
}

// profileLine returns the decoded {"profile": ...} object from the last
// NDJSON line, failing if it is absent or malformed.
func profileLine(t *testing.T, body string) map[string]any {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(body), "\n")
	last := lines[len(lines)-1]
	var m map[string]any
	if err := json.Unmarshal([]byte(last), &m); err != nil {
		t.Fatalf("last line %q is not JSON: %v", last, err)
	}
	prof, ok := m["profile"].(map[string]any)
	if !ok {
		t.Fatalf("last line %q is not a profile trailer", last)
	}
	return prof
}

// assertProfileShape checks the trailer has operator rows with nonzero
// counters and that the source row accounts for every stored record.
func assertProfileShape(t *testing.T, prof map[string]any, cardinality float64) {
	t.Helper()
	ops, ok := prof["operators"].([]any)
	if !ok || len(ops) == 0 {
		t.Fatalf("profile has no operator rows: %v", prof)
	}
	var scanOut float64
	for _, o := range ops {
		row := o.(map[string]any)
		if row["wallNanos"].(float64) <= 0 {
			t.Errorf("operator %v has no wall time", row["name"])
		}
		if name, _ := row["name"].(string); strings.HasPrefix(name, "datasource-scan") {
			scanOut += row["tuplesOut"].(float64)
		}
	}
	if scanOut != cardinality {
		t.Errorf("scan tuplesOut = %v, want %v", scanOut, cardinality)
	}
}

func TestSynchronousProfileTrailer(t *testing.T) {
	s, _ := newTestServer(t)
	loadItems(t, s, 12)
	w := do(t, s, "POST", "/query?profile=true", `for $i in dataset Items return $i.id;`)
	if w.Code != http.StatusOK {
		t.Fatalf("query: %d %s", w.Code, w.Body)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 13 { // 12 rows + 1 trailer
		t.Fatalf("got %d lines, want 13:\n%s", len(lines), w.Body.String())
	}
	assertProfileShape(t, profileLine(t, w.Body.String()), 12)

	// Without profile=true there is no trailer.
	w = do(t, s, "POST", "/query", `for $i in dataset Items return $i.id;`)
	if got := len(strings.Split(strings.TrimSpace(w.Body.String()), "\n")); got != 12 {
		t.Fatalf("unprofiled query has %d lines, want 12", got)
	}
}

func TestDeferredProfileTrailer(t *testing.T) {
	s, _ := newTestServer(t)
	loadItems(t, s, 7)
	w := do(t, s, "POST", "/query?mode=deferred&profile=true", `for $i in dataset Items return $i.id;`)
	if w.Code != http.StatusOK {
		t.Fatalf("deferred submit: %d %s", w.Code, w.Body)
	}
	handle, _ := decodeJSON(t, w.Body.String())["handle"].(string)
	w = do(t, s, "GET", "/query/result?handle="+handle, "")
	if w.Code != http.StatusOK {
		t.Fatalf("result: %d %s", w.Code, w.Body)
	}
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 8 { // 7 rows + 1 trailer
		t.Fatalf("got %d result lines, want 8:\n%s", len(lines), w.Body.String())
	}
	assertProfileShape(t, profileLine(t, w.Body.String()), 7)
}

func TestAsynchronousProfileTrailer(t *testing.T) {
	s, _ := newTestServer(t)
	loadItems(t, s, 5)
	w := do(t, s, "POST", "/query?mode=asynchronous&profile=true", `for $i in dataset Items return $i.id;`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", w.Code, w.Body)
	}
	handle, _ := decodeJSON(t, w.Body.String())["handle"].(string)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := decodeJSON(t, do(t, s, "GET", "/query/status?handle="+handle, "").Body.String())["status"].(string)
		if st == statusSuccess {
			break
		}
		if st == statusFailed || time.Now().After(deadline) {
			t.Fatalf("async query state %q", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	w = do(t, s, "GET", "/query/result?handle="+handle, "")
	assertProfileShape(t, profileLine(t, w.Body.String()), 5)
}

// recordingLogger captures slow-query lines for assertions.
type recordingLogger struct {
	mu    sync.Mutex
	lines []string
}

func (l *recordingLogger) Printf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func TestSlowQueryLogging(t *testing.T) {
	inst, err := asterixdb.Open(asterixdb.Config{DataDir: t.TempDir(), Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inst.Close() })
	lg := &recordingLogger{}
	s := New(inst, Options{HandleTTL: time.Minute, SlowQueryThreshold: time.Nanosecond, Logger: lg})
	t.Cleanup(func() { s.Close() })
	loadItems(t, s, 20)
	if w := do(t, s, "POST", "/query", `for $i in dataset Items return $i.id;`); w.Code != http.StatusOK {
		t.Fatalf("query: %d %s", w.Code, w.Body)
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	var got string
	for _, ln := range lg.lines {
		if strings.Contains(ln, "for $i in dataset Items") {
			got = ln
		}
	}
	if got == "" {
		t.Fatalf("no slow-query line for the query; log: %v", lg.lines)
	}
	if !strings.Contains(got, "slow query (synchronous") {
		t.Errorf("slow-query line missing mode: %q", got)
	}
	if !strings.Contains(got, "top ops:") || !strings.Contains(got, "datasource-scan") {
		t.Errorf("slow-query line missing profile summary: %q", got)
	}
	if !strings.Contains(got, "out=20") {
		t.Errorf("slow-query line should report the 20 scanned tuples as a plain count: %q", got)
	}
}
