// Package server exposes an AsterixDB engine — a local asterixdb.Instance
// or a cluster.Controller — over HTTP, following the
// paper's Cluster-Controller API shape (Section 4): clients POST AQL to
// statement endpoints and results stream back as NDJSON. Three
// result-delivery modes are supported on /query, as in the paper:
//
//   - synchronous (default): the response body streams results as the
//     executing job produces them, chunk-flushed so the first rows arrive
//     before the scan finishes;
//   - asynchronous: the response returns a handle immediately; the client
//     polls /query/status and fetches /query/result when done;
//   - deferred: the query runs to completion, then a handle to the stored
//     result is returned and fetched once via /query/result.
//
// Handles live in a TTL-evicting table; fetching a result evicts its handle
// (exactly-once delivery). Errors map the asterixdb typed-error contract
// onto status codes: not-found 404, exists 409, syntax/invalid 400,
// everything else 500, with a JSON body {"error":{"code","message"}}.
//
// Endpoints:
//
//	POST /query?mode=synchronous|asynchronous|deferred   AQL query text
//	GET  /query/status?handle=...                        poll an async handle
//	GET  /query/result?handle=...                        fetch + evict a handle
//	POST /ddl                                            DDL statements
//	POST /update                                         insert/delete/load
//	POST /explain                                        optimized plan + job (text)
//	GET  /health                                         liveness probe
//	GET  /metrics                                        Prometheus text metrics
//
// Adding profile=true to /query (any mode) runs the job with per-operator
// instrumentation; the response gains a final NDJSON line
// {"profile":{"operators":[...]}} after the result rows (for async and
// deferred, on the /query/result stream).
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"asterixdb"
	"asterixdb/internal/adm"
	"asterixdb/internal/hyracks"
	"asterixdb/internal/metrics"
	"asterixdb/internal/runfile"
)

// Engine is the statement-execution surface the server fronts: a local
// *asterixdb.Instance in single-process mode, or a *cluster.Controller when
// the HTTP API faces a distributed deployment. Both satisfy it without
// adapters.
type Engine interface {
	QueryStream(ctx context.Context, src string) (*asterixdb.Cursor, error)
	ExecuteContext(ctx context.Context, src string) (*asterixdb.Result, error)
	Explain(src string) (string, error)
	SpillDir() string
	MemoryBudget() int64
}

// HealthChecker is optionally implemented by engines whose liveness is more
// than process-up — the cluster controller reports an error until the
// cluster has formed. /health returns 503 while Health errors.
type HealthChecker interface {
	Health() error
}

// Options configure a Server.
type Options struct {
	// HandleTTL is how long an untouched async/deferred result handle
	// survives before eviction (default 2 minutes).
	HandleTTL time.Duration
	// FlushEvery is the number of NDJSON lines written between explicit
	// flushes of a synchronous stream (default 64, one per frame).
	FlushEvery int
	// MaxBodyBytes caps statement bodies (default 8 MiB).
	MaxBodyBytes int64
	// SlowQueryThreshold, when positive, logs every query slower than it —
	// statement, duration and a per-operator profile summary. Queries are
	// then always run with profiling so the summary is available (the
	// instrumentation is cheap: a handful of counters per frame).
	SlowQueryThreshold time.Duration
	// Logger receives slow-query lines (default log.Default()).
	Logger interface {
		Printf(format string, args ...any)
	}
	// Now overrides the handle table's clock (tests).
	Now func() time.Time
}

// Server is the HTTP face of one AsterixDB engine.
type Server struct {
	inst    Engine
	opts    Options
	mux     *http.ServeMux
	handles *handleTable
	// spill holds the run files that store async/deferred results between
	// query completion and result fetch, registered against the instance's
	// memory budget so handle results never materialize in memory.
	spill *runfile.Manager
	// async tracks detached asynchronous-query goroutines so Close can wait
	// for them before the caller tears down the instance under their feet.
	async sync.WaitGroup
	// metrics backs GET /metrics: the server's own query/handle series plus
	// whatever the engine registers through MetricsRegistrar.
	metrics *serverMetrics
}

// New wraps an engine in a Server. The caller keeps ownership of the
// engine; Server.Close stops the handle janitor but does not close the
// engine.
func New(inst Engine, opts Options) *Server {
	if opts.HandleTTL <= 0 {
		opts.HandleTTL = 2 * time.Minute
	}
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = 64
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	s := &Server{
		inst:    inst,
		opts:    opts,
		mux:     http.NewServeMux(),
		handles: newHandleTable(opts.HandleTTL, opts.Now),
		spill:   runfile.NewManager(filepath.Join(inst.SpillDir(), "handles"), inst.MemoryBudget()),
	}
	s.metrics = newServerMetrics(s)
	if mr, ok := inst.(MetricsRegistrar); ok {
		mr.RegisterMetrics(s.metrics.reg)
	}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("GET /query/status", s.handleStatus)
	s.mux.HandleFunc("GET /query/result", s.handleResult)
	s.mux.HandleFunc("POST /ddl", s.handleDDL)
	s.mux.HandleFunc("POST /update", s.handleUpdate)
	s.mux.HandleFunc("POST /explain", s.handleExplain)
	s.mux.HandleFunc("GET /health", s.handleHealth)
	s.mux.Handle("GET /metrics", metrics.Handler(s.metrics.reg))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close waits for detached asynchronous queries to finish, stops the handle
// table's eviction janitor, and removes any handle-result spill files still
// on disk. Call it before closing the instance.
func (s *Server) Close() error {
	s.async.Wait()
	s.handles.close()
	return s.spill.Close()
}

// ----------------------------------------------------------------------------
// Statement endpoints
// ----------------------------------------------------------------------------

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src, err := s.readBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	mode := r.URL.Query().Get("mode")
	switch mode {
	case "", "synchronous":
		s.querySynchronous(w, r, src)
	case "asynchronous":
		s.queryAsynchronous(w, r, src)
	case "deferred":
		s.queryDeferred(w, r, src)
	default:
		writeError(w, &asterixdb.Error{Code: asterixdb.CodeInvalid,
			Message: fmt.Sprintf("unknown mode %q (want synchronous, asynchronous or deferred)", mode)})
	}
}

// querySynchronous streams results as the job produces them. The first row
// is prefetched before the status line goes out, so an error that strikes
// before any output (unknown dataset, failed compile, a runtime error on the
// first tuple) still maps onto a real status code. Once streaming has begun
// the status can no longer change; a mid-stream failure is reported as a
// final NDJSON error line ({"error":{...}}), which clients detect by its
// shape.
func (s *Server) querySynchronous(w http.ResponseWriter, r *http.Request, src string) {
	wantProfile := profileRequested(r)
	start := time.Now()
	s.metrics.active.Inc()
	defer s.metrics.active.Dec()
	cur, err := s.inst.QueryStream(s.queryContext(r.Context(), wantProfile), src)
	if err != nil {
		s.finishQuery("synchronous", src, start, nil, err)
		writeError(w, err)
		return
	}
	defer cur.Close()
	hasFirst := cur.Next()
	if !hasFirst {
		if err := cur.Err(); err != nil && !isContextEnd(err) {
			s.finishQuery("synchronous", src, start, cur.Profile(), err)
			writeError(w, err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	var trailer func() []byte
	if wantProfile {
		// Evaluated after the stream drains, when the finished cursor has
		// its profile.
		trailer = func() []byte { return profileTrailer(cur.Profile()) }
	}
	s.streamCursor(w, cur, hasFirst, trailer)
	s.finishQuery("synchronous", src, start, cur.Profile(), cur.Err())
}

// profileRequested reports whether the request asked for a per-operator
// profile trailer (profile=true).
func profileRequested(r *http.Request) bool {
	return r.URL.Query().Get("profile") == "true"
}

// queryContext marks ctx for job profiling when the client asked for a
// profile or slow-query logging needs one.
func (s *Server) queryContext(ctx context.Context, wantProfile bool) context.Context {
	if wantProfile || s.opts.SlowQueryThreshold > 0 {
		ctx = asterixdb.WithProfiling(ctx)
	}
	return ctx
}

// profileTrailer renders the profile as the final NDJSON response line:
// {"profile":{"operators":[...],...}}. Nil (nothing to write) when the job
// produced no profile — a fallback path, or profiling off.
func profileTrailer(p *hyracks.JobProfile) []byte {
	if p == nil {
		return nil
	}
	b, err := json.Marshal(struct {
		Profile *hyracks.JobProfile `json:"profile"`
	}{p})
	if err != nil {
		return nil
	}
	return append(b, '\n')
}

// queryAsynchronous registers a handle and runs the query in the background;
// the client polls /query/status and fetches /query/result. The background
// execution deliberately detaches from the request context — the whole point
// of the mode is that the client disconnects while the query runs.
func (s *Server) queryAsynchronous(w http.ResponseWriter, r *http.Request, src string) {
	wantProfile := profileRequested(r)
	h := s.handles.create("asynchronous")
	s.async.Add(1)
	s.metrics.active.Inc()
	start := time.Now()
	go func() {
		defer s.async.Done()
		defer s.metrics.active.Dec()
		run, count, prof, err := s.spoolResult(context.Background(), src, wantProfile)
		var trailer []byte
		if wantProfile {
			trailer = profileTrailer(prof)
		}
		h.finish(run, count, trailer, err)
		s.finishQuery("asynchronous", src, start, prof, err)
	}()
	writeJSONStatus(w, http.StatusAccepted, map[string]any{"handle": h.id, "status": statusRunning})
}

// queryDeferred runs the query to completion, stores the result under a
// handle, and returns the handle; the client fetches the result exactly once.
func (s *Server) queryDeferred(w http.ResponseWriter, r *http.Request, src string) {
	wantProfile := profileRequested(r)
	start := time.Now()
	s.metrics.active.Inc()
	defer s.metrics.active.Dec()
	run, count, prof, err := s.spoolResult(r.Context(), src, wantProfile)
	s.finishQuery("deferred", src, start, prof, err)
	if err != nil {
		writeError(w, err)
		return
	}
	h := s.handles.create("deferred")
	var trailer []byte
	if wantProfile {
		trailer = profileTrailer(prof)
	}
	h.finish(run, count, trailer, nil)
	writeJSON(w, map[string]any{"handle": h.id, "status": statusSuccess})
}

// spoolResult executes the statement and streams its result values into a
// fresh handle spill run, one single-column tuple per value, so an arbitrary
// result size costs one run-writer buffer of memory rather than the whole
// materialized value slice. A failure anywhere (including mid-stream, after
// rows were already spooled) aborts the run and reports the error. The
// returned profile is non-nil when profiling was on and the query compiled
// to a job.
func (s *Server) spoolResult(ctx context.Context, src string, wantProfile bool) (*runfile.Run, int, *hyracks.JobProfile, error) {
	cur, err := s.inst.QueryStream(s.queryContext(ctx, wantProfile), src)
	if err != nil {
		return nil, 0, nil, err
	}
	defer cur.Close()
	w, err := s.spill.NewRun()
	if err != nil {
		return nil, 0, nil, err
	}
	count := 0
	for cur.Next() {
		if err := w.Write([]adm.Value{cur.Value()}); err != nil {
			w.Abort()
			return nil, 0, cur.Profile(), err
		}
		count++
	}
	if err := cur.Err(); err != nil {
		w.Abort()
		return nil, 0, cur.Profile(), err
	}
	run, err := w.Finish()
	if err != nil {
		return nil, 0, cur.Profile(), err
	}
	return run, count, cur.Profile(), nil
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	h, ok := s.handles.get(r.URL.Query().Get("handle"))
	if !ok {
		writeError(w, &asterixdb.Error{Code: asterixdb.CodeNotFound, Message: "unknown or expired handle"})
		return
	}
	status, _, _, err := h.snapshot()
	body := map[string]any{"handle": h.id, "status": status}
	if err != nil {
		body["error"] = errorBody(err)
	}
	writeJSON(w, body)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("handle")
	// take is atomic: of two concurrent fetches, exactly one gets the
	// finished handle (taken=true); the other sees not-found.
	h, ok, taken := s.handles.take(id)
	if !ok {
		writeError(w, &asterixdb.Error{Code: asterixdb.CodeNotFound, Message: "unknown or expired handle"})
		return
	}
	if !taken {
		writeJSONStatus(w, http.StatusConflict, map[string]any{"handle": h.id, "status": statusRunning,
			"error": map[string]any{"code": "running", "message": "query still running; poll /query/status"}})
		return
	}
	// The handle is ours now; its result run is released when we're done.
	defer h.discard()
	status, run, _, err := h.snapshot()
	switch status {
	case statusFailed:
		writeError(w, err)
	default:
		w.Header().Set("Content-Type", "application/x-ndjson")
		bw := bufio.NewWriter(w)
		failed := false
		if run != nil {
			rd, err := run.Open()
			if err != nil {
				writeError(w, err)
				return
			}
			defer rd.Close()
			flusher, _ := w.(http.Flusher)
			var line []byte
			n := 0
			for {
				cols, err := rd.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					// Headers may be out; report as a trailing NDJSON error line.
					line = line[:0]
					line = append(line, `{"error":`...)
					line = appendErrorJSON(line, err)
					line = append(line, '}', '\n')
					bw.Write(line)
					failed = true
					break
				}
				if len(cols) > 0 {
					line = adm.AppendJSON(line[:0], cols[0])
					bw.Write(line)
					bw.WriteByte('\n')
				}
				n++
				if n%s.opts.FlushEvery == 0 {
					bw.Flush()
					if flusher != nil {
						flusher.Flush()
					}
				}
			}
		}
		if t := h.trailer(); !failed && t != nil {
			bw.Write(t)
		}
		bw.Flush()
	}
}

func (s *Server) handleDDL(w http.ResponseWriter, r *http.Request) {
	src, err := s.readBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if _, err := s.inst.ExecuteContext(r.Context(), src); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]any{"status": "success"})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	src, err := s.readBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	res, err := s.inst.ExecuteContext(r.Context(), src)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]any{"status": "success", "kind": res.Kind, "count": res.Count})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	src, err := s.readBody(r)
	if err != nil {
		writeError(w, err)
		return
	}
	plan, err := s.inst.Explain(src)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, plan)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if hc, ok := s.inst.(HealthChecker); ok {
		if err := hc.Health(); err != nil {
			writeJSONStatus(w, http.StatusServiceUnavailable,
				map[string]any{"status": "unavailable", "error": errorBody(err)})
			return
		}
	}
	writeJSON(w, map[string]any{"status": "ok"})
}

// ----------------------------------------------------------------------------
// Wire helpers
// ----------------------------------------------------------------------------

func (s *Server) readBody(r *http.Request) (string, error) {
	defer r.Body.Close()
	b, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodyBytes+1))
	if err != nil {
		return "", &asterixdb.Error{Code: asterixdb.CodeInvalid, Message: "reading request body: " + err.Error()}
	}
	if int64(len(b)) > s.opts.MaxBodyBytes {
		return "", &asterixdb.Error{Code: asterixdb.CodeInvalid,
			Message: fmt.Sprintf("statement body exceeds %d bytes", s.opts.MaxBodyBytes)}
	}
	return string(b), nil
}

// streamCursor writes the cursor as NDJSON with chunked flushes, so a client
// reading a long result sees rows while the job is still running. hasFirst
// reports whether the caller already advanced the cursor to a prefetched
// first value. trailer, when non-nil, is evaluated after the stream ends
// cleanly and its bytes (a complete NDJSON line, or nil) are appended.
func (s *Server) streamCursor(w http.ResponseWriter, cur *asterixdb.Cursor, hasFirst bool, trailer func() []byte) {
	flusher, _ := w.(http.Flusher)
	bw := bufio.NewWriter(w)
	var line []byte
	n := 0
	for hasFirst || cur.Next() {
		hasFirst = false
		line = adm.AppendJSON(line[:0], cur.Value())
		bw.Write(line)
		bw.WriteByte('\n')
		n++
		if n%s.opts.FlushEvery == 0 {
			bw.Flush()
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	if err := cur.Err(); err != nil && !isContextEnd(err) {
		// Headers are out; report the failure as a trailing NDJSON error line.
		line = line[:0]
		line = append(line, `{"error":`...)
		line = appendErrorJSON(line, err)
		line = append(line, '}', '\n')
		bw.Write(line)
	} else if trailer != nil {
		if t := trailer(); t != nil {
			bw.Write(t)
		}
	}
	bw.Flush()
	if flusher != nil {
		flusher.Flush()
	}
}

// isContextEnd reports whether the error is the request context ending —
// the client cancelled or its deadline expired — which deserves no error
// payload of its own.
func isContextEnd(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

func statusFor(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	switch asterixdb.ErrorCode(err) {
	case asterixdb.CodeNotFound:
		return http.StatusNotFound
	case asterixdb.CodeExists:
		return http.StatusConflict
	case asterixdb.CodeSyntax, asterixdb.CodeInvalid:
		return http.StatusBadRequest
	case asterixdb.CodeUnavailable:
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

func errorBody(err error) map[string]any {
	return map[string]any{"code": asterixdb.ErrorCode(err), "message": err.Error()}
}

func appendErrorJSON(dst []byte, err error) []byte {
	rec := adm.NewRecord(
		adm.Field{Name: "code", Value: adm.String(asterixdb.ErrorCode(err))},
		adm.Field{Name: "message", Value: adm.String(err.Error())},
	)
	return adm.AppendJSON(dst, rec)
}

func writeError(w http.ResponseWriter, err error) {
	writeJSONStatus(w, statusFor(err), map[string]any{"error": errorBody(err)})
}

// writeJSONStatus sets the Content-Type before the status line goes out
// (headers written after WriteHeader are silently dropped).
func writeJSONStatus(w http.ResponseWriter, status int, body map[string]any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSON(w, body)
}

func writeJSON(w http.ResponseWriter, body map[string]any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	b, err := json.Marshal(body)
	if err != nil {
		b = []byte(`{"error":{"code":"internal","message":"encoding response"}}`)
	}
	b = append(b, '\n')
	w.Write(b)
}
