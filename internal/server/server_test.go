package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"asterixdb"
)

const testDDL = `
create type ItemType as closed { id: int32, k: int32, label: string };
create dataset Items(ItemType) primary key id;
create index itemKIdx on Items(k);
`

func newTestServer(t *testing.T) (*Server, *asterixdb.Instance) {
	t.Helper()
	inst, err := asterixdb.Open(asterixdb.Config{DataDir: t.TempDir(), Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inst.Close() })
	s := New(inst, Options{HandleTTL: time.Minute})
	t.Cleanup(func() { s.Close() })
	return s, inst
}

func do(t *testing.T, s *Server, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, target, nil)
	} else {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decodeJSON(t *testing.T, body string) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("bad JSON %q: %v", body, err)
	}
	return m
}

func loadItems(t *testing.T, s *Server, n int) {
	t.Helper()
	if w := do(t, s, "POST", "/ddl", testDDL); w.Code != http.StatusOK {
		t.Fatalf("ddl: %d %s", w.Code, w.Body)
	}
	var sb strings.Builder
	sb.WriteString("insert into dataset Items ([")
	for i := 1; i <= n; i++ {
		if i > 1 {
			sb.WriteString(",")
		}
		sb.WriteString(`{ "id": ` + itoa(i) + `, "k": ` + itoa(i%10) + `, "label": "item" }`)
	}
	sb.WriteString("]);")
	if w := do(t, s, "POST", "/update", sb.String()); w.Code != http.StatusOK {
		t.Fatalf("update: %d %s", w.Code, w.Body)
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func TestSynchronousQueryStreamsNDJSON(t *testing.T) {
	s, _ := newTestServer(t)
	loadItems(t, s, 25)
	w := do(t, s, "POST", "/query", `for $i in dataset Items where $i.k = 3 return $i.id;`)
	if w.Code != http.StatusOK {
		t.Fatalf("query: %d %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := strings.Fields(strings.TrimSpace(w.Body.String()))
	if len(lines) != 3 { // ids 3, 13, 23
		t.Fatalf("got %d NDJSON lines: %q", len(lines), w.Body.String())
	}
	for _, ln := range lines {
		var v any
		if err := json.Unmarshal([]byte(ln), &v); err != nil {
			t.Errorf("line %q is not JSON: %v", ln, err)
		}
	}
}

func TestAsynchronousLifecycle(t *testing.T) {
	s, _ := newTestServer(t)
	loadItems(t, s, 10)
	w := do(t, s, "POST", "/query?mode=asynchronous", `for $i in dataset Items return $i.id;`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("async submit: %d %s", w.Code, w.Body)
	}
	handle, _ := decodeJSON(t, w.Body.String())["handle"].(string)
	if handle == "" {
		t.Fatalf("no handle in %s", w.Body)
	}
	// Poll status until success.
	deadline := time.Now().Add(5 * time.Second)
	for {
		w = do(t, s, "GET", "/query/status?handle="+handle, "")
		if w.Code != http.StatusOK {
			t.Fatalf("status: %d %s", w.Code, w.Body)
		}
		st, _ := decodeJSON(t, w.Body.String())["status"].(string)
		if st == statusSuccess {
			break
		}
		if st == statusFailed {
			t.Fatalf("query failed: %s", w.Body)
		}
		if time.Now().After(deadline) {
			t.Fatal("async query did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Fetch the result; the handle must be evicted afterwards.
	w = do(t, s, "GET", "/query/result?handle="+handle, "")
	if w.Code != http.StatusOK {
		t.Fatalf("result: %d %s", w.Code, w.Body)
	}
	if got := len(strings.Fields(strings.TrimSpace(w.Body.String()))); got != 10 {
		t.Errorf("result has %d lines, want 10", got)
	}
	w = do(t, s, "GET", "/query/result?handle="+handle, "")
	if w.Code != http.StatusNotFound {
		t.Errorf("second fetch = %d, want 404 (handle evicted)", w.Code)
	}
}

func TestDeferredLifecycle(t *testing.T) {
	s, _ := newTestServer(t)
	loadItems(t, s, 5)
	w := do(t, s, "POST", "/query?mode=deferred", `for $i in dataset Items return $i.id;`)
	if w.Code != http.StatusOK {
		t.Fatalf("deferred submit: %d %s", w.Code, w.Body)
	}
	body := decodeJSON(t, w.Body.String())
	if body["status"] != statusSuccess {
		t.Errorf("deferred status = %v", body["status"])
	}
	handle, _ := body["handle"].(string)
	w = do(t, s, "GET", "/query/result?handle="+handle, "")
	if w.Code != http.StatusOK {
		t.Fatalf("result: %d %s", w.Code, w.Body)
	}
	if got := len(strings.Fields(strings.TrimSpace(w.Body.String()))); got != 5 {
		t.Errorf("result has %d lines, want 5", got)
	}
}

func TestAsyncResultWhileRunningConflicts(t *testing.T) {
	s, _ := newTestServer(t)
	h := s.handles.create("asynchronous") // never finished: permanently running
	w := do(t, s, "GET", "/query/result?handle="+h.id, "")
	if w.Code != http.StatusConflict {
		t.Errorf("result while running = %d, want 409", w.Code)
	}
}

func TestErrorStatusMapping(t *testing.T) {
	s, _ := newTestServer(t)
	loadItems(t, s, 1)
	cases := []struct {
		name, method, target, body string
		want                       int
	}{
		{"unknown dataset", "POST", "/query", `for $x in dataset Nope return $x;`, http.StatusNotFound},
		{"syntax error", "POST", "/query", `for $x in in in;`, http.StatusBadRequest},
		{"duplicate dataset", "POST", "/ddl", `create dataset Items(ItemType) primary key id;`, http.StatusConflict},
		{"duplicate index", "POST", "/ddl", `create index itemKIdx on Items(k);`, http.StatusConflict},
		{"drop missing function", "POST", "/ddl", `drop function nosuchfn;`, http.StatusNotFound},
		{"drop missing type", "POST", "/ddl", `drop type NoSuchType;`, http.StatusNotFound},
		{"bad mode", "POST", "/query?mode=sideways", `1 + 1`, http.StatusBadRequest},
		{"unknown handle", "GET", "/query/status?handle=deadbeef", "", http.StatusNotFound},
	}
	for _, c := range cases {
		w := do(t, s, c.method, c.target, c.body)
		if w.Code != c.want {
			t.Errorf("%s: status = %d, want %d (%s)", c.name, w.Code, c.want, w.Body)
		}
		body := decodeJSON(t, w.Body.String())
		if _, ok := body["error"]; !ok {
			t.Errorf("%s: no error object in %s", c.name, w.Body)
		}
	}
}

// TestConcurrentResultFetchDeliversOnce: of N racing fetches of one finished
// handle, exactly one receives the result (take is atomic).
func TestConcurrentResultFetchDeliversOnce(t *testing.T) {
	s, _ := newTestServer(t)
	loadItems(t, s, 5)
	w := do(t, s, "POST", "/query?mode=deferred", `for $i in dataset Items return $i.id;`)
	if w.Code != http.StatusOK {
		t.Fatalf("deferred: %d %s", w.Code, w.Body)
	}
	handle, _ := decodeJSON(t, w.Body.String())["handle"].(string)
	const fetchers = 8
	codes := make(chan int, fetchers)
	var wg sync.WaitGroup
	for i := 0; i < fetchers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes <- do(t, s, "GET", "/query/result?handle="+handle, "").Code
		}()
	}
	wg.Wait()
	close(codes)
	delivered := 0
	for code := range codes {
		if code == http.StatusOK {
			delivered++
		} else if code != http.StatusNotFound {
			t.Errorf("unexpected status %d", code)
		}
	}
	if delivered != 1 {
		t.Errorf("result delivered %d times, want exactly 1", delivered)
	}
}

// TestHandleResultLargerThanBudgetStaysOnDisk is the regression test for
// handle materialization: async/deferred results used to be held as a
// []adm.Value for the handle's whole lifetime, unbounded by any budget. Now
// they spool into a budget-registered spill run, so a result far larger than
// the memory budget must (a) hit the handle spill manager's disk accounting,
// (b) stream back complete, and (c) leave no run files behind once fetched.
func TestHandleResultLargerThanBudgetStaysOnDisk(t *testing.T) {
	const budget = 4 << 10
	inst, err := asterixdb.Open(asterixdb.Config{DataDir: t.TempDir(), Partitions: 2, MemoryBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inst.Close() })
	s := New(inst, Options{HandleTTL: time.Minute})
	t.Cleanup(func() { s.Close() })

	const rows = 500 // ~60 bytes of record each: >30KiB against a 4KiB budget
	loadItems(t, s, rows)
	w := do(t, s, "POST", "/query?mode=deferred", `for $i in dataset Items return $i;`)
	if w.Code != http.StatusOK {
		t.Fatalf("deferred: %d %s", w.Code, w.Body)
	}
	handle, _ := decodeJSON(t, w.Body.String())["handle"].(string)

	st := s.spill.Stats()
	if st.BytesSpilled <= budget {
		t.Fatalf("result not spooled to disk: %d bytes spilled, budget %d", st.BytesSpilled, budget)
	}
	if st.LiveRuns != 1 {
		t.Fatalf("want 1 live handle run before fetch, have %d", st.LiveRuns)
	}

	w = do(t, s, "GET", "/query/result?handle="+handle, "")
	if w.Code != http.StatusOK {
		t.Fatalf("result: %d %s", w.Code, w.Body)
	}
	got := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(got) != rows {
		t.Fatalf("result has %d lines, want %d", len(got), rows)
	}
	for _, ln := range got {
		var v map[string]any
		if err := json.Unmarshal([]byte(ln), &v); err != nil {
			t.Fatalf("line %q is not JSON: %v", ln, err)
		}
	}
	if st := s.spill.Stats(); st.LiveRuns != 0 {
		t.Errorf("%d handle runs still live after the result was delivered", st.LiveRuns)
	}
}

// TestHandleEvictionReleasesSpillRun: a handle that expires unfetched must
// not pin its result run on disk.
func TestHandleEvictionReleasesSpillRun(t *testing.T) {
	var mu sync.Mutex
	now := time.Now()
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	inst, err := asterixdb.Open(asterixdb.Config{DataDir: t.TempDir(), Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inst.Close() })
	s := New(inst, Options{HandleTTL: time.Minute, Now: clock})
	t.Cleanup(func() { s.Close() })
	loadItems(t, s, 10)

	w := do(t, s, "POST", "/query?mode=deferred", `for $i in dataset Items return $i;`)
	if w.Code != http.StatusOK {
		t.Fatalf("deferred: %d %s", w.Code, w.Body)
	}
	handle, _ := decodeJSON(t, w.Body.String())["handle"].(string)
	if st := s.spill.Stats(); st.LiveRuns != 1 {
		t.Fatalf("want 1 live run, have %d", st.LiveRuns)
	}
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if w := do(t, s, "GET", "/query/result?handle="+handle, ""); w.Code != http.StatusNotFound {
		t.Fatalf("expired fetch = %d, want 404", w.Code)
	}
	if st := s.spill.Stats(); st.LiveRuns != 0 {
		t.Errorf("expired handle still pins %d spill runs", st.LiveRuns)
	}
}

func TestErrorResponsesAreJSONTyped(t *testing.T) {
	s, _ := newTestServer(t)
	w := do(t, s, "GET", "/query/status?handle=nope", "")
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("error response Content-Type = %q, want application/json", ct)
	}
	w = do(t, s, "POST", "/query?mode=asynchronous", `1 + 1`)
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("202 response Content-Type = %q, want application/json", ct)
	}
}

func TestHandleTTLEviction(t *testing.T) {
	var mu sync.Mutex
	now := time.Now()
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	inst, err := asterixdb.Open(asterixdb.Config{DataDir: t.TempDir(), Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { inst.Close() })
	s := New(inst, Options{HandleTTL: time.Minute, Now: clock})
	t.Cleanup(func() { s.Close() })

	w := do(t, s, "POST", "/query?mode=deferred", `1 + 1`)
	if w.Code != http.StatusOK {
		t.Fatalf("deferred: %d %s", w.Code, w.Body)
	}
	handle, _ := decodeJSON(t, w.Body.String())["handle"].(string)
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	w = do(t, s, "GET", "/query/result?handle="+handle, "")
	if w.Code != http.StatusNotFound {
		t.Errorf("expired handle fetch = %d, want 404", w.Code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	s, _ := newTestServer(t)
	loadItems(t, s, 1)
	w := do(t, s, "POST", "/explain", `for $i in dataset Items where $i.k >= 1 and $i.k <= 3 return $i.id;`)
	if w.Code != http.StatusOK {
		t.Fatalf("explain: %d %s", w.Code, w.Body)
	}
	for _, want := range []string{"btree-search", "distribute-result"} {
		if !strings.Contains(w.Body.String(), want) {
			t.Errorf("explain output missing %q:\n%s", want, w.Body)
		}
	}
}

func TestUpdateEndpointReportsCount(t *testing.T) {
	s, _ := newTestServer(t)
	loadItems(t, s, 4)
	w := do(t, s, "POST", "/update", `delete $i from dataset Items where $i.k = 1;`)
	if w.Code != http.StatusOK {
		t.Fatalf("delete: %d %s", w.Code, w.Body)
	}
	body := decodeJSON(t, w.Body.String())
	if body["kind"] != "delete" || body["count"] != float64(1) {
		t.Errorf("delete response = %s", w.Body)
	}
}

func TestSynchronousStreamErrorLine(t *testing.T) {
	s, _ := newTestServer(t)
	// An open dataset whose records mostly carry a numeric v but one (late in
	// id order) carries a string: `$x.v + 1` streams good rows, then fails at
	// run time after headers are out. The failure must surface as a trailing
	// NDJSON error line.
	if w := do(t, s, "POST", "/ddl", `
create type OpenType as open { id: int32 };
create dataset Mixed(OpenType) primary key id;`); w.Code != http.StatusOK {
		t.Fatalf("ddl: %d %s", w.Code, w.Body)
	}
	var sb strings.Builder
	sb.WriteString("insert into dataset Mixed ([")
	for i := 1; i <= 100; i++ {
		if i > 1 {
			sb.WriteString(",")
		}
		sb.WriteString(`{ "id": ` + itoa(i) + `, "v": ` + itoa(i) + ` }`)
	}
	sb.WriteString(`,{ "id": 101, "v": "boom" }]);`)
	if w := do(t, s, "POST", "/update", sb.String()); w.Code != http.StatusOK {
		t.Fatalf("insert: %d %s", w.Code, w.Body)
	}
	w := do(t, s, "POST", "/query", `for $x in dataset Mixed order by $x.id return $x.v + 1;`)
	if w.Code != http.StatusOK {
		// Acceptable alternative: the error won the race before the first row.
		return
	}
	if !strings.Contains(w.Body.String(), `"error"`) {
		t.Errorf("mid-stream failure not reported: %q", w.Body.String())
	}
}
