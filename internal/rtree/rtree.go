// Package rtree implements an in-memory R-tree over 2-d rectangles, used as
// the component structure for AsterixDB's LSM-ified spatial secondary indexes
// (the "type rtree" indexes of Section 2.2 / 4.3 of the paper).
package rtree

import (
	"bytes"
	"math"
)

// Rect is an axis-aligned bounding rectangle.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	return r.MinX <= s.MinX && r.MinY <= s.MinY && r.MaxX >= s.MaxX && r.MaxY >= s.MaxY
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// union returns the smallest rectangle covering both r and s.
func (r Rect) union(s Rect) Rect {
	return Rect{
		MinX: math.Min(r.MinX, s.MinX),
		MinY: math.Min(r.MinY, s.MinY),
		MaxX: math.Max(r.MaxX, s.MaxX),
		MaxY: math.Max(r.MaxY, s.MaxY),
	}
}

// area returns the area of r.
func (r Rect) area() float64 { return (r.MaxX - r.MinX) * (r.MaxY - r.MinY) }

// enlargement returns how much r would have to grow to cover s.
func (r Rect) enlargement(s Rect) float64 { return r.union(s).area() - r.area() }

// PointRect returns the degenerate rectangle for a point.
func PointRect(x, y float64) Rect { return Rect{MinX: x, MinY: y, MaxX: x, MaxY: y} }

// Entry is a rectangle key with an opaque payload (typically an encoded
// primary key).
type Entry struct {
	Rect  Rect
	Value []byte
}

// maxEntries is the node fan-out; minEntries the underflow bound used by the
// quadratic split.
const (
	maxEntries = 16
	minEntries = 4
)

// Tree is an in-memory R-tree. Like the B+-tree component it is not safe for
// concurrent mutation; the LSM layer provides the necessary isolation.
type Tree struct {
	root *rnode
	size int
}

type rnode struct {
	leaf     bool
	rects    []Rect
	values   [][]byte // leaf only
	children []*rnode // interior only
}

// New returns an empty R-tree.
func New() *Tree {
	return &Tree{root: &rnode{leaf: true}}
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Insert adds an entry to the tree.
func (t *Tree) Insert(r Rect, value []byte) {
	t.size++
	left, right := t.insert(t.root, r, value)
	if right != nil {
		t.root = &rnode{
			rects:    []Rect{nodeMBR(left), nodeMBR(right)},
			children: []*rnode{left, right},
		}
	}
}

func (t *Tree) insert(n *rnode, r Rect, value []byte) (*rnode, *rnode) {
	if n.leaf {
		n.rects = append(n.rects, r)
		n.values = append(n.values, value)
		if len(n.rects) > maxEntries {
			return n.splitLeaf()
		}
		return n, nil
	}
	best := chooseSubtree(n, r)
	left, right := t.insert(n.children[best], r, value)
	n.rects[best] = nodeMBR(left)
	if right != nil {
		n.rects = append(n.rects, nodeMBR(right))
		n.children = append(n.children, right)
		if len(n.children) > maxEntries {
			return n.splitInterior()
		}
	}
	return n, nil
}

// chooseSubtree picks the child needing the least enlargement to cover r.
func chooseSubtree(n *rnode, r Rect) int {
	best := 0
	bestEnlargement := math.Inf(1)
	bestArea := math.Inf(1)
	for i, cr := range n.rects {
		e := cr.enlargement(r)
		a := cr.area()
		if e < bestEnlargement || (e == bestEnlargement && a < bestArea) {
			best, bestEnlargement, bestArea = i, e, a
		}
	}
	return best
}

func nodeMBR(n *rnode) Rect {
	mbr := n.rects[0]
	for _, r := range n.rects[1:] {
		mbr = mbr.union(r)
	}
	return mbr
}

// splitLeaf performs a quadratic split of an overflowing leaf.
func (n *rnode) splitLeaf() (*rnode, *rnode) {
	seedA, seedB := pickSeeds(n.rects)
	a := &rnode{leaf: true}
	b := &rnode{leaf: true}
	for i, r := range n.rects {
		switch {
		case i == seedA:
			a.rects = append(a.rects, r)
			a.values = append(a.values, n.values[i])
		case i == seedB:
			b.rects = append(b.rects, r)
			b.values = append(b.values, n.values[i])
		default:
			if assignToA(a, b, r) {
				a.rects = append(a.rects, r)
				a.values = append(a.values, n.values[i])
			} else {
				b.rects = append(b.rects, r)
				b.values = append(b.values, n.values[i])
			}
		}
	}
	*n = *a
	return n, b
}

func (n *rnode) splitInterior() (*rnode, *rnode) {
	seedA, seedB := pickSeeds(n.rects)
	a := &rnode{}
	b := &rnode{}
	for i, r := range n.rects {
		switch {
		case i == seedA:
			a.rects = append(a.rects, r)
			a.children = append(a.children, n.children[i])
		case i == seedB:
			b.rects = append(b.rects, r)
			b.children = append(b.children, n.children[i])
		default:
			if assignToA(a, b, r) {
				a.rects = append(a.rects, r)
				a.children = append(a.children, n.children[i])
			} else {
				b.rects = append(b.rects, r)
				b.children = append(b.children, n.children[i])
			}
		}
	}
	*n = *a
	return n, b
}

// pickSeeds returns the pair of rectangles that would waste the most area if
// grouped together (the classic quadratic-split seed choice).
func pickSeeds(rects []Rect) (int, int) {
	worst := -math.MaxFloat64
	a, b := 0, 1
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			waste := rects[i].union(rects[j]).area() - rects[i].area() - rects[j].area()
			if waste > worst {
				worst, a, b = waste, i, j
			}
		}
	}
	return a, b
}

// assignToA balances group sizes and otherwise minimizes enlargement.
func assignToA(a, b *rnode, r Rect) bool {
	if len(a.rects) == 0 {
		return true
	}
	if len(b.rects) == 0 {
		return false
	}
	if len(a.rects)+minEntries >= maxEntries {
		return false
	}
	if len(b.rects)+minEntries >= maxEntries {
		return true
	}
	return nodeMBR(a).enlargement(r) <= nodeMBR(b).enlargement(r)
}

// Delete removes one entry with exactly the given rectangle and value,
// reporting whether one was found. The tree is not re-condensed; the LSM
// layer expresses deletes as antimatter entries, so in-place deletion is only
// exercised by the in-memory component.
func (t *Tree) Delete(r Rect, value []byte) bool {
	if t.delete(t.root, r, value) {
		t.size--
		return true
	}
	return false
}

func (t *Tree) delete(n *rnode, r Rect, value []byte) bool {
	if n.leaf {
		for i := range n.rects {
			if n.rects[i] == r && bytes.Equal(n.values[i], value) {
				n.rects = append(n.rects[:i], n.rects[i+1:]...)
				n.values = append(n.values[:i], n.values[i+1:]...)
				return true
			}
		}
		return false
	}
	for i, cr := range n.rects {
		if cr.Contains(r) || cr.Intersects(r) {
			if t.delete(n.children[i], r, value) {
				if len(n.children[i].rects) > 0 {
					n.rects[i] = nodeMBR(n.children[i])
				}
				return true
			}
		}
	}
	return false
}

// SearchIntersect visits every entry whose rectangle intersects probe until
// visit returns false.
func (t *Tree) SearchIntersect(probe Rect, visit func(Entry) bool) {
	t.search(t.root, probe, visit)
}

func (t *Tree) search(n *rnode, probe Rect, visit func(Entry) bool) bool {
	for i, r := range n.rects {
		if !r.Intersects(probe) {
			continue
		}
		if n.leaf {
			if !visit(Entry{Rect: r, Value: n.values[i]}) {
				return false
			}
		} else if !t.search(n.children[i], probe, visit) {
			return false
		}
	}
	return true
}

// Scan visits every entry in the tree until visit returns false.
func (t *Tree) Scan(visit func(Entry) bool) {
	t.search(t.root, Rect{MinX: math.Inf(-1), MinY: math.Inf(-1), MaxX: math.Inf(1), MaxY: math.Inf(1)}, visit)
}
