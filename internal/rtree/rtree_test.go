package rtree

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertSearch(t *testing.T) {
	tr := New()
	const n = 500
	rng := rand.New(rand.NewSource(1))
	type item struct {
		r Rect
		v string
	}
	items := make([]item, n)
	for i := range items {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		items[i] = item{r: PointRect(x, y), v: fmt.Sprintf("v%d", i)}
		tr.Insert(items[i].r, []byte(items[i].v))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	// A query rectangle should return exactly the points it contains.
	probe := Rect{MinX: 100, MinY: 100, MaxX: 400, MaxY: 400}
	want := map[string]bool{}
	for _, it := range items {
		if probe.Intersects(it.r) {
			want[it.v] = true
		}
	}
	got := map[string]bool{}
	tr.SearchIntersect(probe, func(e Entry) bool {
		got[string(e.Value)] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("search returned %d results, want %d", len(got), len(want))
	}
	for v := range want {
		if !got[v] {
			t.Errorf("missing result %s", v)
		}
	}
}

func TestSearchEmptyAndEarlyStop(t *testing.T) {
	tr := New()
	count := 0
	tr.SearchIntersect(Rect{MaxX: 10, MaxY: 10}, func(Entry) bool { count++; return true })
	if count != 0 {
		t.Error("search of empty tree should visit nothing")
	}
	for i := 0; i < 100; i++ {
		tr.Insert(PointRect(float64(i), float64(i)), []byte{byte(i)})
	}
	count = 0
	tr.SearchIntersect(Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, func(Entry) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	for i := 0; i < 50; i++ {
		tr.Insert(PointRect(float64(i), 0), []byte{byte(i)})
	}
	if !tr.Delete(PointRect(10, 0), []byte{10}) {
		t.Fatal("Delete of present entry failed")
	}
	if tr.Delete(PointRect(10, 0), []byte{10}) {
		t.Error("Delete of absent entry should fail")
	}
	if tr.Len() != 49 {
		t.Errorf("Len = %d", tr.Len())
	}
	found := false
	tr.SearchIntersect(PointRect(10, 0), func(e Entry) bool {
		if e.Value[0] == 10 {
			found = true
		}
		return true
	})
	if found {
		t.Error("deleted entry still returned by search")
	}
}

func TestScan(t *testing.T) {
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Insert(PointRect(float64(i%20), float64(i/20)), []byte{byte(i)})
	}
	count := 0
	tr.Scan(func(Entry) bool { count++; return true })
	if count != 200 {
		t.Errorf("Scan visited %d entries", count)
	}
}

func TestRectHelpers(t *testing.T) {
	a := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	b := Rect{MinX: 5, MinY: 5, MaxX: 15, MaxY: 15}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("Intersects misreports")
	}
	if a.Contains(b) {
		t.Error("Contains misreports")
	}
	if !a.Contains(Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}) {
		t.Error("Contains should hold for nested rect")
	}
	u := a.union(b)
	if u.MinX != 0 || u.MaxX != 15 {
		t.Errorf("union = %+v", u)
	}
}

func TestSearchMatchesLinearScanProperty(t *testing.T) {
	// For random points and a random probe rectangle the R-tree must return
	// exactly what a linear scan returns.
	f := func(seed int64, probeX, probeY uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New()
		pts := make([]Rect, 120)
		for i := range pts {
			pts[i] = PointRect(rng.Float64()*100, rng.Float64()*100)
			tr.Insert(pts[i], []byte{byte(i)})
		}
		probe := Rect{
			MinX: float64(probeX % 100), MinY: float64(probeY % 100),
			MaxX: float64(probeX%100) + 25, MaxY: float64(probeY%100) + 25,
		}
		want := 0
		for _, p := range pts {
			if probe.Intersects(p) {
				want++
			}
		}
		got := 0
		tr.SearchIntersect(probe, func(Entry) bool { got++; return true })
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
