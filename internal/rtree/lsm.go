// LSM persistence for the R-tree secondary index. The durable truth is an
// lsm.Tree whose keys are a fixed 32-byte rectangle encoding followed by the
// encoded primary key (making every entry unique per record), with the same
// flush/antimatter/merge/recovery lifecycle as the primary index. The
// in-memory R-tree is kept alongside purely as a search accelerator for
// intersection probes; it is rebuilt on open from the LSM tree's own
// (memory-resident) components — never by rescanning the primary index.

package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"asterixdb/internal/lsm"
)

// entryKeyRectLen is the fixed size of the rectangle prefix in an entry key.
const entryKeyRectLen = 32

// EncodeEntryKey builds the LSM key for one R-tree entry: the four rectangle
// coordinates as big-endian float bits, then the primary key. The encoding
// is canonical (one rect+pk pair has exactly one key), which is what lets
// WAL replay re-apply entries idempotently.
func EncodeEntryKey(r Rect, pk []byte) []byte {
	key := make([]byte, entryKeyRectLen, entryKeyRectLen+len(pk))
	binary.BigEndian.PutUint64(key[0:], math.Float64bits(r.MinX))
	binary.BigEndian.PutUint64(key[8:], math.Float64bits(r.MinY))
	binary.BigEndian.PutUint64(key[16:], math.Float64bits(r.MaxX))
	binary.BigEndian.PutUint64(key[24:], math.Float64bits(r.MaxY))
	return append(key, pk...)
}

// DecodeEntryKey splits an LSM entry key back into rectangle and primary key.
func DecodeEntryKey(key []byte) (Rect, []byte, error) {
	if len(key) < entryKeyRectLen {
		return Rect{}, nil, fmt.Errorf("rtree: entry key too short (%d bytes)", len(key))
	}
	r := Rect{
		MinX: math.Float64frombits(binary.BigEndian.Uint64(key[0:])),
		MinY: math.Float64frombits(binary.BigEndian.Uint64(key[8:])),
		MaxX: math.Float64frombits(binary.BigEndian.Uint64(key[16:])),
		MaxY: math.Float64frombits(binary.BigEndian.Uint64(key[24:])),
	}
	return r, key[entryKeyRectLen:], nil
}

// LSM is a persistent R-tree index partition. Callers must serialize all
// operations (the storage layer's partition latch), same as lsm.Tree.
type LSM struct {
	tree  *lsm.Tree
	accel *Tree
}

// OpenLSM creates or reopens a persistent R-tree rooted at dir and rebuilds
// the in-memory search accelerator from the live LSM entries.
func OpenLSM(dir string, opts lsm.Options) (*LSM, error) {
	tree, err := lsm.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	ix := &LSM{tree: tree, accel: New()}
	var rebuildErr error
	tree.Scan(func(key, _ []byte) bool {
		r, pk, err := DecodeEntryKey(key)
		if err != nil {
			rebuildErr = err
			return false
		}
		ix.accel.Insert(r, append([]byte(nil), pk...))
		return true
	})
	if rebuildErr != nil {
		return nil, fmt.Errorf("rtree: rebuild accelerator from %s: %w", dir, rebuildErr)
	}
	return ix, nil
}

// Tree exposes the underlying LSM tree for flush/merge scheduling and
// durability watermark queries.
func (ix *LSM) Tree() *lsm.Tree { return ix.tree }

// Insert adds one (rect, pk) entry.
func (ix *LSM) Insert(r Rect, pk []byte) error {
	return ix.ApplyEntry(EncodeEntryKey(r, pk), false)
}

// Delete removes one (rect, pk) entry.
func (ix *LSM) Delete(r Rect, pk []byte) error {
	return ix.ApplyEntry(EncodeEntryKey(r, pk), true)
}

// ApplyEntry applies one raw LSM entry (an encoded rect+pk key, as logged in
// the WAL) to the index: an upsert, or an antimatter delete. It keeps the
// accelerator exactly mirroring the LSM tree's live set, so re-applying an
// entry during recovery is a no-op.
func (ix *LSM) ApplyEntry(key []byte, antimatter bool) error {
	r, pk, err := DecodeEntryKey(key)
	if err != nil {
		return err
	}
	_, present := ix.tree.Get(key)
	if antimatter {
		if present {
			ix.accel.Delete(r, pk)
		}
		return ix.tree.Delete(key)
	}
	if !present {
		ix.accel.Insert(r, append([]byte(nil), pk...))
	}
	return ix.tree.Insert(key, nil)
}

// SearchIntersect visits every entry whose rectangle intersects probe.
func (ix *LSM) SearchIntersect(probe Rect, visit func(Entry) bool) {
	ix.accel.SearchIntersect(probe, visit)
}

// Scan visits every entry.
func (ix *LSM) Scan(visit func(Entry) bool) { ix.accel.Scan(visit) }

// Len returns the number of live entries.
func (ix *LSM) Len() int { return ix.accel.Len() }
