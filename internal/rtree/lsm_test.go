package rtree

import (
	"bytes"
	"fmt"
	"testing"

	"asterixdb/internal/lsm"
)

func TestEntryKeyRoundTrip(t *testing.T) {
	r := Rect{MinX: -1.5, MinY: 2.25, MaxX: 3, MaxY: 4e10}
	pk := []byte("pk-bytes")
	key := EncodeEntryKey(r, pk)
	gotR, gotPK, err := DecodeEntryKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if gotR != r || !bytes.Equal(gotPK, pk) {
		t.Fatalf("round trip = %+v %q", gotR, gotPK)
	}
	if _, _, err := DecodeEntryKey(key[:10]); err == nil {
		t.Fatal("short key decoded without error")
	}
}

func TestLSMPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	ix, err := OpenLSM(dir, lsm.Options{Background: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r := PointRect(float64(i), float64(i))
		if err := ix.Insert(r, []byte(fmt.Sprintf("pk%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Delete(PointRect(5, 5), []byte("pk05")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Tree().FlushStamped(42); err != nil {
		t.Fatal(err)
	}
	// More mutations after the flush, left un-flushed: a real reopen only
	// sees the durable part (recovery replays the rest from the WAL).
	if err := ix.Insert(PointRect(100, 100), []byte("pk-unflushed")); err != nil {
		t.Fatal(err)
	}

	ix2, err := OpenLSM(dir, lsm.Options{Background: true})
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Tree().DurableLSN() != 42 {
		t.Errorf("DurableLSN after reopen = %d, want 42", ix2.Tree().DurableLSN())
	}
	if ix2.Len() != 19 {
		t.Errorf("Len after reopen = %d, want 19", ix2.Len())
	}
	var hits [][]byte
	ix2.SearchIntersect(Rect{MinX: 3, MinY: 3, MaxX: 7, MaxY: 7}, func(e Entry) bool {
		hits = append(hits, e.Value)
		return true
	})
	want := map[string]bool{"pk03": true, "pk04": true, "pk06": true, "pk07": true}
	if len(hits) != len(want) {
		t.Fatalf("intersect hits = %q, want keys of %v", hits, want)
	}
	for _, h := range hits {
		if !want[string(h)] {
			t.Errorf("unexpected hit %q (deleted pk05 resurrected?)", h)
		}
	}
}

func TestLSMApplyEntryIdempotent(t *testing.T) {
	ix, err := OpenLSM(t.TempDir(), lsm.Options{Background: true})
	if err != nil {
		t.Fatal(err)
	}
	key := EncodeEntryKey(PointRect(1, 2), []byte("pk"))
	for i := 0; i < 3; i++ {
		if err := ix.ApplyEntry(key, false); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 1 {
		t.Fatalf("Len after re-applied inserts = %d, want 1 (idempotent)", ix.Len())
	}
	for i := 0; i < 2; i++ {
		if err := ix.ApplyEntry(key, true); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != 0 {
		t.Fatalf("Len after re-applied deletes = %d, want 0", ix.Len())
	}
}
